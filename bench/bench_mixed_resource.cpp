// Extension experiment (the paper's future-work direction): wire cutting
// with NOISY (mixed) NME resources. We depolarize the Bell pair with Werner
// noise p and compare
//  * the mixed-resource cut's overhead κ_mixed = (1+p)/(1−p),
//  * the Theorem-1 lower bound 2/f(ρ) − 1 evaluated via the fully entangled
//    fraction, and
//  * the measured estimation error at a fixed shot budget.
// Expected: κ_mixed tracks the bound with a modest constant gap, error grows
// smoothly with noise, and the estimator stays exactly unbiased throughout.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/cut/mixed_cut.hpp"
#include "qcut/ent/measures.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"
#include "qcut/sim/noise.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const int n_states = static_cast<int>(cli.get_int("states", 200));
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 2000));

  std::printf("=== Mixed-resource wire cut: Werner-noisy Bell pairs, %d states x %llu shots ===\n\n",
              n_states, static_cast<unsigned long long>(shots));
  std::printf("%8s %8s %12s %14s %12s %10s %12s\n", "p", "q_I", "kappa_mixed", "2/FEF-1 bound",
              "mean_error", "sem", "bias");
  qcut::CsvWriter csv("mixed_resource.csv",
                      {"p", "q_identity", "kappa_mixed", "theorem1_bound", "mean_error", "sem",
                       "bias"});

  for (Real p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const qcut::Matrix res = qcut::noisy_phi_k(1.0, p);
    const qcut::MixedNmeCut cut(res);
    const Real fef = qcut::fully_entangled_fraction(res);
    const Real bound = 2.0 / fef - 1.0;

    qcut::RunningStats err;
    qcut::RunningStats bias;  // signed error — must center on zero
    for (int s = 0; s < n_states; ++s) {
      qcut::Rng rng(777, static_cast<std::uint64_t>(s));
      qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
      const Real exact = qcut::uncut_expectation(input);
      const qcut::Qpd qpd = cut.build_qpd(input);
      const auto probs = qcut::exact_term_prob_one(qpd);
      const auto resu = qcut::estimate_allocated_fast(qpd, probs, shots, rng);
      err.add(std::abs(resu.estimate - exact));
      bias.add(resu.estimate - exact);
    }
    std::printf("%8.2f %8.4f %12.4f %14.4f %12.6f %10.6f %12.2e\n", p, cut.q_identity(),
                cut.kappa(), bound, err.mean(), err.sem(), bias.mean());
    csv.row(std::vector<Real>{p, cut.q_identity(), cut.kappa(), bound, err.mean(), err.sem(),
                              bias.mean()});
  }
  std::printf(
      "\nExpected: unbiased at every noise level (bias ~ 0 within ~sem); kappa_mixed >=\n"
      "Theorem-1 bound, both rising with p; mean error tracks kappa/sqrt(N).\n");
  std::printf("wrote mixed_resource.csv\n");
  return 0;
}
