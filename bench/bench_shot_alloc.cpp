// Ablation: shot-allocation rules. The paper distributes the budget across
// subcircuits proportionally to |c_i| (Sec. IV); we compare that against
// largest-remainder rounding and Neyman allocation (which uses the exact
// per-term outcome variances — the statistically optimal split).
//
// All three rules run through the execution engine's plan abstraction:
// ShotPlan::allocated handles the split (including Neyman's σ weights) and a
// shared BatchedBranchBackend serves every budget from one branch
// enumeration per state.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const int n_states = static_cast<int>(cli.get_int("states", 250));
  const Real f = cli.get_real("f", 0.7);
  const Real k = qcut::k_for_overlap(f);
  const qcut::NmeCut proto(k);

  std::printf("=== Shot allocation ablation at f = %.2f (kappa = %.4f) ===\n\n", f,
              proto.kappa());
  std::printf("%8s %-18s %12s %10s\n", "shots", "rule", "mean_error", "sem");
  qcut::CsvWriter csv("shot_alloc.csv", {"shots", "rule", "mean_error", "sem"});

  const std::vector<std::pair<qcut::AllocRule, const char*>> rules = {
      {qcut::AllocRule::kProportional, "proportional"},
      {qcut::AllocRule::kLargestRemainder, "largest-remainder"},
      {qcut::AllocRule::kNeyman, "neyman"},
  };
  const std::vector<std::uint64_t> budgets = {200, 1000, 5000};

  // err[budget][rule]
  std::vector<std::vector<qcut::RunningStats>> err(
      budgets.size(), std::vector<qcut::RunningStats>(rules.size()));

  for (int s = 0; s < n_states; ++s) {
    qcut::Rng state_rng(808, static_cast<std::uint64_t>(s));
    const qcut::CutInput input{qcut::haar_unitary(2, state_rng), 'Z'};
    const Real exact = qcut::uncut_expectation(input);
    const qcut::Qpd qpd = proto.build_qpd(input);
    const qcut::BatchedBranchBackend backend(qpd);
    const auto probs = backend.cache().all_prob_one();

    // Neyman weights: per-term outcome std deviations σ_i = 2√(p(1−p)).
    std::vector<Real> sigmas;
    sigmas.reserve(qpd.size());
    for (Real p : probs) {
      sigmas.push_back(2.0 * std::sqrt(p * (1.0 - p)));
    }

    for (std::size_t b = 0; b < budgets.size(); ++b) {
      for (std::size_t r = 0; r < rules.size(); ++r) {
        const auto plan = qcut::ShotPlan::allocated(
            qpd, budgets[b], rules[r].first,
            rules[r].first == qcut::AllocRule::kNeyman ? &sigmas : nullptr,
            qcut::ShotPlan::kNoSplit);
        // Identical rng per rule at fixed (state, budget): paired comparison.
        qcut::Rng rng(808 + budgets[b], static_cast<std::uint64_t>(s));
        const auto res = qcut::run_plan_with_rng(qpd, plan, backend, rng);
        err[b][r].add(std::abs(res.estimate - exact));
      }
    }
  }

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::printf("%8llu %-18s %12.6f %10.6f\n",
                  static_cast<unsigned long long>(budgets[b]), rules[r].second,
                  err[b][r].mean(), err[b][r].sem());
      csv.row(std::vector<std::string>{std::to_string(budgets[b]), rules[r].second,
                                       qcut::format_real(err[b][r].mean()),
                                       qcut::format_real(err[b][r].sem())});
    }
  }
  std::printf(
      "\nExpected: proportional (the paper's rule) and largest-remainder agree; Neyman is\n"
      "equal or slightly better since it exploits per-term variances.\n");
  std::printf("wrote shot_alloc.csv\n");
  return 0;
}
