// Ablation: shot-allocation rules. The paper distributes the budget across
// subcircuits proportionally to |c_i| (Sec. IV); we compare that against
// largest-remainder rounding and Neyman allocation (which uses the exact
// per-term outcome variances — the statistically optimal split).
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const int n_states = static_cast<int>(cli.get_int("states", 250));
  const Real f = cli.get_real("f", 0.7);
  const Real k = qcut::k_for_overlap(f);
  const qcut::NmeCut proto(k);

  std::printf("=== Shot allocation ablation at f = %.2f (kappa = %.4f) ===\n\n", f,
              proto.kappa());
  std::printf("%8s %-18s %12s %10s\n", "shots", "rule", "mean_error", "sem");
  qcut::CsvWriter csv("shot_alloc.csv", {"shots", "rule", "mean_error", "sem"});

  const std::vector<std::pair<qcut::AllocRule, const char*>> rules = {
      {qcut::AllocRule::kProportional, "proportional"},
      {qcut::AllocRule::kLargestRemainder, "largest-remainder"},
      {qcut::AllocRule::kNeyman, "neyman"},
  };

  for (std::uint64_t shots : {200ULL, 1000ULL, 5000ULL}) {
    for (const auto& [rule, label] : rules) {
      qcut::RunningStats err;
      for (int s = 0; s < n_states; ++s) {
        qcut::Rng rng(808, static_cast<std::uint64_t>(s));
        qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
        const Real exact = qcut::uncut_expectation(input);
        const qcut::Qpd qpd = proto.build_qpd(input);
        const auto probs = qcut::exact_term_prob_one(qpd);

        qcut::EstimationResult res;
        if (rule == qcut::AllocRule::kNeyman) {
          // Neyman needs per-term outcome std deviations: σ_i = 2√(p(1−p)).
          std::vector<Real> sigmas;
          std::vector<Real> weights;
          for (std::size_t i = 0; i < qpd.size(); ++i) {
            sigmas.push_back(2.0 * std::sqrt(probs[i] * (1.0 - probs[i])));
            weights.push_back(std::abs(qpd.terms()[i].coefficient));
          }
          const auto alloc = qcut::allocate_shots(weights, shots, rule, &sigmas);
          // Recombine manually with the custom allocation.
          Real estimate = 0.0;
          for (std::size_t i = 0; i < qpd.size(); ++i) {
            if (alloc[i] == 0) {
              continue;
            }
            const std::uint64_t ones = rng.binomial(alloc[i], probs[i]);
            estimate += qpd.terms()[i].coefficient *
                        (1.0 - 2.0 * static_cast<Real>(ones) / static_cast<Real>(alloc[i]));
          }
          res.estimate = estimate;
        } else {
          res = qcut::estimate_allocated_fast(qpd, probs, shots, rng, rule);
        }
        err.add(std::abs(res.estimate - exact));
      }
      std::printf("%8llu %-18s %12.6f %10.6f\n", static_cast<unsigned long long>(shots), label,
                  err.mean(), err.sem());
      csv.row(std::vector<std::string>{std::to_string(shots), label,
                                       qcut::format_real(err.mean()),
                                       qcut::format_real(err.sem())});
    }
  }
  std::printf(
      "\nExpected: proportional (the paper's rule) and largest-remainder agree; Neyman is\n"
      "equal or slightly better since it exploits per-term variances.\n");
  std::printf("wrote shot_alloc.csv\n");
  return 0;
}
