// Multi-cut scaling (Sec. V / the paper's motivation): cutting n wires
// independently costs κ_total = κⁿ — exponential in n — and the error at a
// fixed budget grows accordingly. NME resources shrink the base κ, taming the
// exponential. We cut n ∈ {1..4} wires and report theoretical κⁿ plus the
// measured error of the joint parity estimate.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/cut/multiwire.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/qpd/estimator.hpp"
#include "qcut/sim/gates.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 3000));
  const int trials = static_cast<int>(cli.get_int("trials", 80));

  std::printf("=== Multi-wire cuts: kappa^n scaling, %llu shots, %d trials ===\n\n",
              static_cast<unsigned long long>(shots), trials);
  std::printf("%8s %6s %12s %12s %12s\n", "f", "wires", "kappa_tot", "mean_error", "sem");
  qcut::CsvWriter csv("multicut.csv", {"f", "wires", "kappa_total", "mean_error", "sem"});

  for (Real f : {0.5, 0.8, 1.0}) {
    const Real k = qcut::k_for_overlap(f);
    const qcut::NmeCut proto(k);
    for (int wires = 1; wires <= 4; ++wires) {
      std::vector<const qcut::WireCutProtocol*> protos(static_cast<std::size_t>(wires), &proto);
      std::vector<qcut::CutInput> inputs;
      Real exact = 1.0;
      for (int w = 0; w < wires; ++w) {
        const Real theta = 0.5 + 0.3 * static_cast<Real>(w);
        inputs.push_back({qcut::gates::ry(theta), 'Z'});
        exact *= std::cos(theta);
      }
      const qcut::Qpd joint = qcut::product_qpd(protos, inputs);
      const auto probs = qcut::exact_term_prob_one(joint);

      qcut::RunningStats err;
      for (int t = 0; t < trials; ++t) {
        qcut::Rng rng(31337, static_cast<std::uint64_t>(t) * 100 + static_cast<std::uint64_t>(wires));
        const auto res = qcut::estimate_sampled_fast(joint, probs, shots, rng);
        err.add(std::abs(res.estimate - exact));
      }
      std::printf("%8.2f %6d %12.4f %12.6f %12.6f\n", f, wires, joint.kappa(), err.mean(),
                  err.sem());
      csv.row(std::vector<Real>{f, static_cast<Real>(wires), joint.kappa(), err.mean(),
                                err.sem()});
    }
  }
  std::printf(
      "\nExpected: kappa_tot = kappa^n (81 at f=0.5, n=4; exactly 1 at f=1.0 for all n);\n"
      "error grows ~kappa^n/sqrt(N) — NME resources tame the exponential.\n");
  std::printf("wrote multicut.csv\n");
  return 0;
}
