// Cut-planner harness: plan quality and planned-vs-uncut estimation error
// across circuit families.
//
// Families:
//  * ghz      — GHZ lines h(0), cx(0,1), ..., cx(n-2,n-1): one candidate per
//    wire, the paper's canonical chain workload;
//  * qft      — QFT-like ladders h(q) + nearest-neighbor controlled-phase
//    chain: denser timelines, more candidates per wire;
//  * brick    — random brickwork of Haar 2-qubit gates (alternating pairs);
//  * cpgate / cpwire — two 2q halves joined only by one diagonal cp gate,
//    planned with gate cuts allowed vs wire-only: the gate-cut row should
//    beat the wire-only row (Mitarai–Fujii κ(θ) < the κ-3 chains the
//    reconnecting cx structure forces on wire plans);
//  * hetdev   — GHZ on two explicit 4-qubit QPUs (heterogeneous DeviceModel
//    caps instead of a uniform width bound);
//  * hetlink  — GHZ over two entangled links of different quality: the
//    planner must grant the best (lowest-κ) slot first.
//
// For every instance the planner runs under a width cap; reported per row:
// candidate count, chosen cuts, total κ, overhead Π κ_i², search nodes,
// planning time, and (small instances) the measured |estimate − exact| of the
// planned multi-cut execution at the predicted κ²/ε² budget, plus an
// optimality check against brute-force subset enumeration.
//
// Usage: bench_planner [--smoke] [--eps 0.05] [--f 0.85] [--budget 2]
//                      [--out PATH] [--seed N]
// The JSON record defaults to planner_bench.json *next to the executable*
// (the build tree), so running from a source checkout leaves no stray file;
// --out (or the legacy --json) overrides the destination.
// --smoke runs the small deterministic subset and exits non-zero when a plan
// misses brute-force optimality or the executed error leaves the 3ε band —
// the CI gate.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/obs/run_report.hpp"
#include "qcut/plan/circuit_graph.hpp"
#include "qcut/plan/cut_planner.hpp"
#include "qcut/plan/planned_executor.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace qcut;

Circuit ghz_line(int n) {
  Circuit c(n, 0);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  return c;
}

Matrix cphase(Real theta) {
  Matrix m = Matrix::identity(4);
  m(3, 3) = std::polar<Real>(1.0, theta);
  return m;
}

Circuit qft_ladder(int n) {
  Circuit c(n, 0);
  for (int q = 0; q < n; ++q) {
    c.h(q);
    if (q + 1 < n) {
      c.gate(cphase(kPi / 2.0), {q, q + 1}, "cp");
    }
  }
  return c;
}

Circuit brickwork(int n, int depth, Rng& rng) {
  Circuit c(n, 0);
  for (int d = 0; d < depth; ++d) {
    for (int q = d % 2; q + 1 < n; q += 2) {
      c.gate(haar_unitary(4, rng), {q, q + 1}, "U2");
    }
  }
  return c;
}

// Two entangling halves {0,1} and {2,3} whose only bridge is a single
// diagonal cp(0.6) on {1,2}: one ZZ gate cut (κ = 1 + 2 sin 0.3 ≈ 1.59)
// separates them, while the cx gates on both sides reconnect any wire cut.
Circuit cp_linked_halves() {
  Circuit c(4, 0);
  for (int q = 0; q < 4; ++q) {
    c.h(q);
  }
  c.cx(0, 1);
  c.cx(2, 3);
  c.gate(cphase(0.6), {1, 2}, "cp");
  c.cx(0, 1);
  c.cx(2, 3);
  return c;
}

struct Row {
  std::string family;
  int n = 0;
  int width_cap = 0;
  std::size_t candidates = 0;
  std::size_t cuts = 0;
  std::size_t gate_cuts = 0;
  Real kappa = 0.0;
  Real overhead = 0.0;
  Real predicted_shots = 0.0;
  int max_sim_width = 0;
  std::size_t nodes = 0;
  double plan_ms = 0.0;
  bool brute_checked = false;
  bool brute_optimal = true;
  bool executed = false;
  Real abs_error = 0.0;
};

std::string all_z(int n) { return std::string(static_cast<std::size_t>(n), 'Z'); }

Row run_instance(const std::string& family, const Circuit& circ, const PlannerConfig& pcfg,
                 bool execute, bool brute_check, std::uint64_t seed) {
  Row row;
  row.family = family;
  row.n = circ.n_qubits();
  row.width_cap = pcfg.max_fragment_width;

  const CutPlanner planner(circ, pcfg);
  // The search space (wire gaps + gate candidates when allowed) — also the
  // brute-force oracle's domain, so the <= 16 guard below bounds its 2^m scan.
  row.candidates = planner.search_candidates().size();
  const auto start = Clock::now();
  const CutPlan plan = planner.plan();
  row.plan_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  row.cuts = plan.cuts.size();
  row.gate_cuts = plan.gate_cut_count();
  row.kappa = plan.total_kappa;
  row.overhead = plan.total_overhead;
  row.predicted_shots = plan.predicted_shots;
  row.max_sim_width = plan.max_sim_width;
  row.nodes = plan.nodes_explored;

  if (brute_check && row.candidates <= 16) {
    row.brute_checked = true;
    const Real ref = planner.reference_overhead();  // bitmask scan of all subsets
    row.brute_optimal = std::abs(plan.total_overhead - ref) <= 1e-9 * (1.0 + ref);
  }
  if (execute) {
    const PlannedExecutor exec(circ, plan);
    CutRunConfig rcfg;
    rcfg.shots = 0;  // planner-predicted budget
    rcfg.seed = seed;
    row.executed = true;
    row.abs_error = exec.run(all_z(circ.n_qubits()), rcfg).abs_error;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const Real eps = cli.get_real("eps", 0.05);
  const Real f = cli.get_real("f", 0.85);
  const int budget = static_cast<int>(cli.get_int("budget", 2));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string json_path = cli.output_path("json", "planner_bench.json");

  PlannerConfig base;
  base.resource_overlap = f;
  base.pair_budget = budget;
  base.target_accuracy = eps;

  Rng brick_rng(11);
  std::vector<Row> rows;

  // Small instances: brute-force-checked and executed end-to-end.
  for (int n : {4, 5, 6}) {
    PlannerConfig cfg = base;
    cfg.max_fragment_width = (n + 1) / 2;
    rows.push_back(run_instance("ghz", ghz_line(n), cfg, /*execute=*/true,
                                /*brute_check=*/true, seed));
  }
  {
    PlannerConfig cfg = base;
    cfg.max_fragment_width = 3;
    rows.push_back(run_instance("qft", qft_ladder(5), cfg, true, true, seed));
    rows.push_back(run_instance("brick", brickwork(5, 2, brick_rng), cfg, true, true, seed));
  }

  // Gate cut vs wire-only on the same instance. The wire-only plan can be
  // orders of magnitude more expensive (every wire plan must sever the
  // reconnecting cx chains at κ = 3 each), so only the gate-cut row executes.
  Real cpgate_overhead = 0.0;
  Real cpwire_overhead = 0.0;
  {
    PlannerConfig cfg = base;
    cfg.max_fragment_width = 2;
    rows.push_back(run_instance("cpgate", cp_linked_halves(), cfg, true, true, seed));
    cpgate_overhead = rows.back().overhead;
    cfg.allow_gate_cuts = false;
    rows.push_back(run_instance("cpwire", cp_linked_halves(), cfg, false, true, seed));
    cpwire_overhead = rows.back().overhead;
  }

  // Heterogeneous device caps: ghz(7) on two explicit 4-qubit QPUs — only
  // the {4,3}-width cut gives a fragment-per-device matching.
  {
    PlannerConfig cfg = base;
    cfg.max_fragment_width = 4;  // display only; the explicit devices govern
    cfg.device_model.devices = {{4, "qpu-a"}, {4, "qpu-b"}};
    cfg.device_model.links = {{f, budget, LinkFamily::kNme}};
    rows.push_back(run_instance("hetdev", ghz_line(7), cfg, true, true, seed));
  }

  // Heterogeneous links: one perfect pair (κ = 1) and one f = 0.8 pair
  // (κ = 1.5); the two cuts ghz(6)@cap-3 needs should be granted best first.
  {
    PlannerConfig cfg = base;
    cfg.max_fragment_width = 3;
    cfg.device_model.links = {{0.8, 1, LinkFamily::kNme}, {1.0, 1, LinkFamily::kNme}};
    rows.push_back(run_instance("hetlink", ghz_line(6), cfg, true, true, seed));
  }

  if (!smoke) {
    // Larger planning-only instances (execution cost grows exponentially with
    // the spliced width; the planner itself stays cheap). The IR allows up to
    // Circuit::kMaxQubits wires — wide plans are what the fragment-local
    // execution path consumes.
    for (int n : {10, 14, 18, 20, 30, 40}) {
      PlannerConfig cfg = base;
      cfg.max_fragment_width = (n + 2) / 3;
      cfg.max_cuts = 10;
      rows.push_back(run_instance("ghz", ghz_line(n), cfg, false, n <= 14, seed));
    }
    for (int n : {8, 10, 12}) {
      PlannerConfig cfg = base;
      cfg.max_fragment_width = (n + 1) / 2;
      rows.push_back(run_instance("qft", qft_ladder(n), cfg, false, n <= 10, seed));
    }
    {
      PlannerConfig cfg = base;
      cfg.max_fragment_width = 4;
      rows.push_back(run_instance("brick", brickwork(7, 2, brick_rng), cfg, false, true, seed));
    }
  }

  std::printf("=== Cut planner: overhead-optimal multi-cut discovery ===\n");
  std::printf("eps=%.3f  resource f=%.2f  pair budget=%d\n\n", eps, f, budget);
  std::printf("%-7s %4s %5s %6s %5s %6s %9s %10s %12s %5s %7s %9s %8s %8s\n", "family", "n",
              "cap", "cands", "cuts", "gcuts", "kappa", "overhead", "pred.shots", "simw", "nodes",
              "plan(ms)", "optimal", "|error|");
  bool all_optimal = true;
  bool all_within_band = true;
  for (const auto& r : rows) {
    if (r.brute_checked && !r.brute_optimal) {
      all_optimal = false;
    }
    if (r.executed && r.abs_error > 3.0 * eps) {
      all_within_band = false;
    }
    char err_buf[16] = "-";
    if (r.executed) {
      std::snprintf(err_buf, sizeof(err_buf), "%.4f", r.abs_error);
    }
    std::printf("%-7s %4d %5d %6zu %5zu %6zu %9.4f %10.3f %12.0f %5d %7zu %9.3f %8s %8s\n",
                r.family.c_str(), r.n, r.width_cap, r.candidates, r.cuts, r.gate_cuts, r.kappa,
                r.overhead, r.predicted_shots, r.max_sim_width, r.nodes, r.plan_ms,
                r.brute_checked ? (r.brute_optimal ? "yes" : "NO") : "-", err_buf);
  }

  std::ofstream json(json_path);
  json << "{\n  \"provenance\": " << obs::provenance_json(2) << ",\n  \"eps\": " << eps
       << ",\n  \"resource_f\": " << f << ",\n  \"pair_budget\": " << budget
       << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"family\": \"" << r.family << "\", \"n\": " << r.n
         << ", \"width_cap\": " << r.width_cap << ", \"candidates\": " << r.candidates
         << ", \"cuts\": " << r.cuts << ", \"gate_cuts\": " << r.gate_cuts
         << ", \"kappa\": " << r.kappa << ", \"overhead\": " << r.overhead
         << ", \"predicted_shots\": " << r.predicted_shots
         << ", \"max_sim_width\": " << r.max_sim_width << ", \"nodes\": " << r.nodes
         << ", \"plan_ms\": " << r.plan_ms
         << ", \"brute_optimal\": " << (r.brute_checked ? (r.brute_optimal ? "true" : "false")
                                                        : "null")
         << ", \"abs_error\": " << (r.executed ? r.abs_error : -1.0) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!all_optimal) {
    std::printf("ERROR: a plan missed the brute-force optimum\n");
    return 1;
  }
  if (!all_within_band) {
    std::printf("ERROR: an executed plan left the 3*eps error band at the predicted budget\n");
    return 1;
  }
  if (cpgate_overhead >= cpwire_overhead) {
    std::printf("ERROR: the gate-cut plan (%.3f) did not beat the wire-only plan (%.3f)\n",
                cpgate_overhead, cpwire_overhead);
    return 1;
  }
  std::printf("all plans brute-force optimal; executed errors within 3*eps at predicted "
              "budgets; gate cut beat wire-only %.3f < %.3f\n",
              cpgate_overhead, cpwire_overhead);
  return 0;
}
