// Regenerates the paper's closed-form curves:
//  * Eq. (10): f(Φk) vs k,
//  * Corollary 1: γ^{Φk}(I) vs k and vs f — the continuum between wire
//    cutting (γ = 3) and teleportation (γ = 1),
//  * the pair-consumption weight 1/f of Sec. III.
#include <cstdio>

#include "qcut/common/csv.hpp"
#include "qcut/core/continuum.hpp"
#include "qcut/core/overhead.hpp"
#include "qcut/ent/measures.hpp"

int main() {
  using qcut::Real;

  std::printf("=== Eq. (10) & Corollary 1: the wire-cutting <-> teleportation continuum ===\n\n");
  std::printf("%8s %10s %12s %12s %14s\n", "k", "f(Phi_k)", "gamma(I)", "shots~k^2", "pairs 1/f");
  qcut::CsvWriter csv("overhead_curves.csv", {"k", "f", "gamma", "shots_rel", "pairs_weight"});
  for (int i = 0; i <= 40; ++i) {
    const Real k = static_cast<Real>(i) / 40.0;
    const Real f = qcut::f_phi_k(k);
    const Real gamma = qcut::optimal_overhead_phi_k(k);
    std::printf("%8.3f %10.5f %12.5f %12.5f %14.5f\n", k, f, gamma, gamma * gamma, 1.0 / f);
    csv.row(std::vector<Real>{k, f, gamma, gamma * gamma, 1.0 / f});
  }

  std::printf("\nEndpoints: gamma(k=0) = %.4f (optimal entanglement-free cut, Brenner et al.)\n",
              qcut::optimal_overhead_phi_k(0.0));
  std::printf("           gamma(k=1) = %.4f (quantum teleportation)\n",
              qcut::optimal_overhead_phi_k(1.0));

  std::printf("\n=== Theorem 1 sampled on the f axis ===\n");
  std::printf("%8s %8s %10s %14s %18s\n", "f", "k", "gamma", "rel. shots", "pairs/sample");
  for (const auto& p : qcut::continuum_sweep(11)) {
    std::printf("%8.3f %8.4f %10.5f %14.5f %18.5f\n", p.f, p.k, p.kappa, p.shots_rel,
                p.pairs_per_sample);
  }
  std::printf("\nwrote overhead_curves.csv\n");
  return 0;
}
