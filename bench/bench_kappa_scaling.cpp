// Validates the sampling-overhead law behind Eq. (12): the estimator error
// decays as ε ≈ c·κ/√N. For each entanglement level we fit
// log ε = α·log N + β over the Fig. 6 sweep; α should be ≈ −1/2 and
// exp(β) ∝ κ. This regenerates the quantitative content of the Fig. 6
// discussion (error curves differ exactly by their κ ratio).
#include <cmath>
#include <cstdio>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/core/experiment.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);

  qcut::Fig6Config cfg;
  cfg.n_states = static_cast<int>(cli.get_int("states", 300));
  cfg.shot_grid = {250, 500, 1000, 2000, 4000};
  cfg.overlaps = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  cfg.seed = 99;
  const auto rows = qcut::run_fig6(cfg);

  std::printf("=== kappa-scaling: fit log(error) = alpha*log(shots) + beta per f ===\n\n");
  std::printf("%8s %10s %12s %12s %16s\n", "f", "kappa", "alpha", "exp(beta)", "exp(beta)/kappa");
  qcut::CsvWriter csv("kappa_scaling.csv", {"f", "kappa", "alpha", "prefactor", "ratio"});

  Real first_ratio = 0.0;
  for (Real f : cfg.overlaps) {
    std::vector<Real> log_n, log_e;
    Real kappa = 0.0;
    for (const auto& r : rows) {
      if (r.f == f && r.mean_error > 0.0) {
        log_n.push_back(std::log(static_cast<Real>(r.shots)));
        log_e.push_back(std::log(r.mean_error));
        kappa = r.kappa;
      }
    }
    const qcut::LinearFit fit = qcut::linear_fit(log_n, log_e);
    const Real prefactor = std::exp(fit.intercept);
    const Real ratio = prefactor / kappa;
    if (first_ratio == 0.0) {
      first_ratio = ratio;
    }
    std::printf("%8.2f %10.4f %12.4f %12.5f %16.5f\n", f, kappa, fit.slope, prefactor, ratio);
    csv.row(std::vector<Real>{f, kappa, fit.slope, prefactor, ratio});
  }
  std::printf("\nExpected: alpha ~ -0.5 for every f; prefactor/kappa constant across f\n");
  std::printf("(constant ~ sqrt(2/pi)*avg over inputs; the paper's curves differ only by kappa)\n");
  std::printf("wrote kappa_scaling.csv\n");
  return 0;
}
