// Gate cut vs wire cut (Sec. V: "depending on the characteristics of the
// circuit, either a wire cut or gate cut can be more favorable").
//
// Scenario: two devices each own one qubit of a two-qubit circuit with a
// single CZ crossing the partition. Options:
//  * gate-cut the CZ (Mitarai-Fujii, κ = 3, no entanglement needed);
//  * wire-cut the control wire around the CZ so the whole interaction happens
//    on device B (κ = 2/f − 1 with an NME resource of quality f).
// Expected crossover: the wire cut wins once f > 1/2 — entanglement buys
// down the overhead, which plain gate cutting cannot; at f = 1/2 both sit at
// κ = 3. Extending the NME advantage to gate cuts is the paper's stated
// open question.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/cut/gate_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const int n_states = static_cast<int>(cli.get_int("states", 150));
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 2000));

  std::printf("=== Gate cut vs NME wire cut on a partition-crossing CZ ===\n");
  std::printf("%d random two-qubit pre-circuits, %llu shots, observable ZZ\n\n", n_states,
              static_cast<unsigned long long>(shots));
  std::printf("%-24s %8s %12s %10s\n", "strategy", "kappa", "mean_error", "sem");
  qcut::CsvWriter csv("gate_vs_wire.csv", {"strategy", "kappa", "mean_error", "sem"});

  // Shared workload: U(2q) then CZ(0,1), estimate <ZZ>.
  auto make_base = [](qcut::Rng& rng) {
    qcut::Circuit base(2, 0);
    base.gate(qcut::haar_unitary(4, rng), {0, 1}, "U");
    return base;
  };

  // --- strategy 1: gate-cut the CZ ---
  {
    qcut::RunningStats err;
    Real kappa = 0.0;
    for (int s = 0; s < n_states; ++s) {
      qcut::Rng rng(1212, static_cast<std::uint64_t>(s));
      qcut::Circuit base = make_base(rng);
      qcut::Circuit with_cz = base;
      with_cz.cz(0, 1);
      const qcut::Qpd qpd = qcut::cut_cz_gate(base, 1, 0, 1, "ZZ");
      kappa = qpd.kappa();
      const auto probs = qcut::exact_term_prob_one(qpd);
      const auto res = qcut::estimate_sampled_fast(qpd, probs, shots, rng);
      err.add(std::abs(res.estimate - qcut::uncut_circuit_expectation(with_cz, "ZZ")));
    }
    std::printf("%-24s %8.4f %12.6f %10.6f\n", "gate-cut CZ", kappa, err.mean(), err.sem());
    csv.row(std::vector<std::string>{"gate-cut", qcut::format_real(kappa),
                                     qcut::format_real(err.mean()),
                                     qcut::format_real(err.sem())});
  }

  // --- strategy 2: wire-cut qubit 0's wire before the CZ, per NME quality ---
  for (Real f : {0.5, 0.7, 0.9, 1.0}) {
    const qcut::NmeCut proto(qcut::k_for_overlap(f));
    qcut::RunningStats err;
    for (int s = 0; s < n_states; ++s) {
      qcut::Rng rng(1212, static_cast<std::uint64_t>(s));
      qcut::Circuit base = make_base(rng);
      qcut::Circuit with_cz = base;
      with_cz.cz(0, 1);
      // Cut wire 0 after the pre-circuit; the CZ then runs on device B.
      const qcut::Qpd qpd = qcut::cut_circuit(with_cz, {1, 0}, proto, "ZZ");
      const auto probs = qcut::exact_term_prob_one(qpd);
      const auto res = qcut::estimate_sampled_fast(qpd, probs, shots, rng);
      err.add(std::abs(res.estimate - qcut::uncut_circuit_expectation(with_cz, "ZZ")));
    }
    char label[48];
    std::snprintf(label, sizeof(label), "wire-cut f=%.2f", f);
    std::printf("%-24s %8.4f %12.6f %10.6f\n", label, proto.kappa(), err.mean(), err.sem());
    csv.row(std::vector<std::string>{label, qcut::format_real(proto.kappa()),
                                     qcut::format_real(err.mean()),
                                     qcut::format_real(err.sem())});
  }
  std::printf(
      "\nExpected: gate cut ~ wire cut at f = 0.5 (both kappa = 3); with any real\n"
      "entanglement (f > 1/2) the paper's NME wire cut wins.\n");
  std::printf("wrote gate_vs_wire.csv\n");
  return 0;
}
