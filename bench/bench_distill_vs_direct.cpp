// Ablation (Sec. V, related work): teleporting over a virtually distilled
// Bell pair (the Theorem-1 upper-bound construction, "distill") achieves the
// same optimal κ as the direct Theorem-2 cut ("nme") — but needs two extra
// qubits, one extra Bell measurement, and two extra classical bits per
// branch. Same statistics, more hardware: the reason the paper's direct
// construction matters.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/core/cut_executor.hpp"
#include "qcut/cut/distill_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"

namespace {

struct CircuitCost {
  int max_qubits = 0;
  int max_cbits = 0;
  std::size_t total_ops = 0;
};

CircuitCost cost_of(const qcut::Qpd& qpd) {
  CircuitCost c;
  for (const auto& t : qpd.terms()) {
    c.max_qubits = std::max(c.max_qubits, t.circuit.n_qubits());
    c.max_cbits = std::max(c.max_cbits, t.circuit.n_cbits());
    c.total_ops += t.circuit.size();
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 2000));
  const int n_states = static_cast<int>(cli.get_int("states", 200));

  std::printf("=== Direct Theorem-2 cut vs distill-then-teleport, %d states x %llu shots ===\n\n",
              n_states, static_cast<unsigned long long>(shots));
  std::printf("%8s %-10s %8s %8s %8s %8s %12s %10s\n", "f", "variant", "kappa", "qubits",
              "cbits", "ops", "mean_error", "sem");
  qcut::CsvWriter csv("distill_vs_direct.csv",
                      {"f", "variant", "kappa", "qubits", "cbits", "ops", "mean_error", "sem"});

  for (Real f : {0.5, 0.7, 0.9}) {
    const Real k = qcut::k_for_overlap(f);
    for (int variant = 0; variant < 2; ++variant) {
      std::shared_ptr<const qcut::WireCutProtocol> proto;
      const char* label = variant == 0 ? "direct" : "distill";
      if (variant == 0) {
        proto = std::make_shared<qcut::NmeCut>(k);
      } else {
        proto = std::make_shared<qcut::DistillCut>(k);
      }
      qcut::RunningStats err;
      CircuitCost cost;
      for (int s = 0; s < n_states; ++s) {
        qcut::Rng rng(555 + static_cast<std::uint64_t>(variant) * 1000003ULL,
                      static_cast<std::uint64_t>(s));
        qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
        const Real exact = qcut::uncut_expectation(input);
        const qcut::Qpd qpd = proto->build_qpd(input);
        if (s == 0) {
          cost = cost_of(qpd);
        }
        const auto probs = qcut::exact_term_prob_one(qpd);
        const auto res = qcut::estimate_allocated_fast(qpd, probs, shots, rng);
        err.add(std::abs(res.estimate - exact));
      }
      std::printf("%8.2f %-10s %8.4f %8d %8d %8zu %12.6f %10.6f\n", f, label, proto->kappa(),
                  cost.max_qubits, cost.max_cbits, cost.total_ops, err.mean(), err.sem());
      csv.row(std::vector<std::string>{
          qcut::format_real(f), label, qcut::format_real(proto->kappa()),
          std::to_string(cost.max_qubits), std::to_string(cost.max_cbits),
          std::to_string(cost.total_ops), qcut::format_real(err.mean()),
          qcut::format_real(err.sem())});
    }
  }
  std::printf(
      "\nExpected: identical kappa and statistically identical error per f, but the distill\n"
      "variant uses 5 qubits / 5 cbits per branch vs 3 / 3 for the direct Theorem-2 cut.\n");
  std::printf("wrote distill_vs_direct.csv\n");
  return 0;
}
