// Baseline comparison (Fig. 2 vs Fig. 5 protocols): mean error at a fixed
// shot budget for
//  * Peng et al. measure-and-prepare cut (κ = 4),
//  * Harada et al. optimal entanglement-free cut (κ = 3, the paper's f = 0.5
//    endpoint),
//  * Theorem-2 NME cuts across the f sweep,
//  * teleportation with a physical Bell pair (κ = 1, the f = 1.0 endpoint).
// Expected: errors ordered by κ; nme(f=0.5) ≈ harada; nme(f=1.0) ≈ teleport.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/common/stats.hpp"
#include "qcut/core/cut_executor.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"

namespace {

struct Entry {
  std::string label;
  std::shared_ptr<const qcut::WireCutProtocol> proto;
};

}  // namespace

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const int n_states = static_cast<int>(cli.get_int("states", 250));
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 2000));

  std::vector<Entry> entries;
  entries.push_back(
      {"peng (kappa=4)", qcut::make_wire_protocol({qcut::ProtocolId::kPeng, 0.0})});
  entries.push_back(
      {"harada (kappa=3)", qcut::make_wire_protocol({qcut::ProtocolId::kHarada, 0.0})});
  for (Real f : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const Real k = qcut::k_for_overlap(f);
    entries.push_back({"nme f=" + std::to_string(f).substr(0, 4),
                       qcut::make_wire_protocol({qcut::ProtocolId::kNme, k})});
  }
  entries.push_back(
      {"teleport (kappa=1)", qcut::make_wire_protocol({qcut::ProtocolId::kTeleport, 0.0})});

  std::printf("=== Baselines: mean |error| of <Z>, %d random states, %llu shots each ===\n\n",
              n_states, static_cast<unsigned long long>(shots));
  std::printf("%-22s %8s %12s %10s %14s\n", "protocol", "kappa", "mean_error", "sem",
              "err*sqrt(N)/k");
  qcut::CsvWriter csv("baselines.csv", {"protocol", "kappa", "mean_error", "sem"});

  for (const auto& e : entries) {
    qcut::RunningStats err;
    for (int s = 0; s < n_states; ++s) {
      qcut::Rng rng(4242, static_cast<std::uint64_t>(s));
      qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
      const Real exact = qcut::uncut_expectation(input);
      const qcut::Qpd qpd = e.proto->build_qpd(input);
      const auto probs = qcut::exact_term_prob_one(qpd);
      const auto res = qcut::estimate_allocated_fast(qpd, probs, shots, rng);
      err.add(std::abs(res.estimate - exact));
    }
    const Real kappa = e.proto->kappa();
    std::printf("%-22s %8.4f %12.6f %10.6f %14.4f\n", e.label.c_str(), kappa, err.mean(),
                err.sem(), err.mean() * std::sqrt(static_cast<Real>(shots)) / kappa);
    csv.row(std::vector<std::string>{e.label, qcut::format_real(kappa),
                                     qcut::format_real(err.mean()), qcut::format_real(err.sem())});
  }
  std::printf("\nExpected: error ordered by kappa; the last column (normalized error) is ~flat.\n");
  std::printf("wrote baselines.csv\n");
  return 0;
}
