// Service throughput: an in-process qcut-server on an ephemeral port, driven
// by wire-protocol clients at several concurrency levels over a repeated
// workload mix. Reports requests/sec per phase, the cross-request cache-hit
// trajectory (every request's plan/eval flags, plus the server's /metrics
// counters), and enforces the service invariants:
//  * every server answer is bit-identical to the in-process plan_and_run
//    path (svc::estimate without caches) for the same request;
//  * the warm phases see a > 0 plan- and eval-cache hit rate (caching across
//    requests actually happens);
//  * the metrics dump parses as "qcut_<name> <value>" lines.
// Exit status is the gate: non-zero on any violated invariant (--smoke runs
// a reduced load for CI).
//
// --chaos switches to the chaos harness: concurrent clients under
// deterministic fault injection, mid-request disconnects, and a graceful
// drain under load. Its gates: no crash, no hang (the run itself completing
// within its budgets), every surviving answer bit-identical to the
// in-process plan_and_run reference, and drain() answering every accepted
// request within the budget.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/common/error.hpp"
#include "qcut/common/fault.hpp"
#include "qcut/obs/run_report.hpp"
#include "qcut/sim/qasm.hpp"
#include "qcut/svc/api.hpp"
#include "qcut/svc/server.hpp"

namespace {

using qcut::Circuit;
using qcut::Real;

/// The canonical chain workload at several widths: distinct circuits so the
/// caches hold several entries, identical repeats so they hit.
Circuit ghz_line(int n) {
  Circuit c(n, 0);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  return c;
}

qcut::svc::WireEstimateRequest make_request(int width, std::uint64_t shots) {
  qcut::svc::WireEstimateRequest req;
  req.circuit_qasm = qcut::to_qasm(ghz_line(width));
  req.observable = std::string(static_cast<std::size_t>(width), 'Z');
  req.max_fragment_width = 3;  // forces >= 1 cut on every workload width
  req.shots = shots;
  req.seed = 20240808;
  return req;
}

struct PhaseResult {
  std::string name;
  int concurrency = 0;
  std::uint64_t requests = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t eval_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t errors = 0;
  double seconds = 0.0;
  double rps = 0.0;
  /// Cumulative plan-hit count after each request, in completion order — the
  /// cache-hit trajectory (flat 0 while cold, slope ~1 once warm).
  std::vector<std::uint64_t> trajectory;
};

/// Sends `repeats` rounds of the workload mix through `concurrency` clients
/// (each client owns one connection and a disjoint slice of the rounds).
PhaseResult run_phase(const std::string& name, int port, const std::vector<int>& widths,
                      std::uint64_t shots, int repeats, int concurrency) {
  PhaseResult out;
  out.name = name;
  out.concurrency = concurrency;

  std::vector<std::vector<qcut::svc::WireEstimateResponse>> responses(
      static_cast<std::size_t>(concurrency));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < concurrency; ++c) {
    threads.emplace_back([&, c] {
      qcut::svc::QcutClient client("127.0.0.1", port);
      for (int r = c; r < repeats; r += concurrency) {
        for (int w : widths) {
          qcut::svc::WireEstimateResponse resp = client.estimate(make_request(w, shots));
          // Admission rejections carry a backoff hint; honor it and retry.
          int attempts = 0;
          while (resp.status ==
                     static_cast<std::uint8_t>(qcut::svc::WireStatus::kRetryAfter) &&
                 ++attempts < 50) {
            std::this_thread::sleep_for(std::chrono::milliseconds(resp.retry_after_ms));
            resp = client.estimate(make_request(w, shots));
          }
          responses[static_cast<std::size_t>(c)].push_back(std::move(resp));
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (const auto& per_client : responses) {
    for (const auto& resp : per_client) {
      ++out.requests;
      if (resp.status != static_cast<std::uint8_t>(qcut::svc::WireStatus::kOk)) {
        ++out.errors;
        std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
        continue;
      }
      out.plan_hits += resp.plan_cache_hit;
      out.eval_hits += resp.eval_cache_hit;
      out.coalesced += resp.coalesced;
      out.trajectory.push_back(out.plan_hits);
    }
  }
  out.rps = out.seconds > 0.0 ? static_cast<double>(out.requests) / out.seconds : 0.0;
  return out;
}

std::uint64_t bits_of(Real v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

// ---- chaos harness ---------------------------------------------------------

int raw_connect(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (fd >= 0) {
      ::close(fd);
    }
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// The chaos harness; returns true when every invariant held.
bool run_chaos(qcut::svc::QcutServer& server, const std::vector<int>& widths,
               std::uint64_t shots, int repeats,
               const std::vector<qcut::svc::EstimateResult>& refs) {
  bool ok = true;

  // Phase 1: concurrent clients with probabilistic faults armed on three
  // pipeline sites. Faulted requests must come back as typed errors over a
  // surviving connection; the rest must match the fault-free references bit
  // for bit (fault decisions never touch the simulation RNG).
  std::printf("chaos phase 1: concurrent clients under injected faults\n");
  qcut::fault::arm_faults(
      "svc.plan:throw:0.3:101,exec.batch:throw:0.15:102,cache.insert:throw:0.2:103");
  std::atomic<std::uint64_t> survivors{0}, faulted{0}, transport_errors{0}, mismatches{0};
  {
    constexpr int kClients = 6;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        try {
          qcut::svc::QcutClient client("127.0.0.1", server.port());
          for (int r = c; r < repeats; r += kClients) {
            for (std::size_t i = 0; i < widths.size(); ++i) {
              const qcut::svc::WireEstimateResponse resp =
                  client.estimate(make_request(widths[i], shots));
              if (resp.status == static_cast<std::uint8_t>(qcut::svc::WireStatus::kOk)) {
                ++survivors;
                if (bits_of(resp.estimate) != bits_of(refs[i].estimate) ||
                    resp.shots_used != refs[i].shots_used) {
                  ++mismatches;
                }
              } else {
                ++faulted;
              }
            }
          }
        } catch (const std::exception& e) {
          ++transport_errors;
          std::fprintf(stderr, "chaos client %d transport error: %s\n", c, e.what());
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  qcut::fault::disarm_faults();
  std::printf("  survivors=%llu faulted=%llu mismatches=%llu transport_errors=%llu\n",
              static_cast<unsigned long long>(survivors.load()),
              static_cast<unsigned long long>(faulted.load()),
              static_cast<unsigned long long>(mismatches.load()),
              static_cast<unsigned long long>(transport_errors.load()));
  if (mismatches.load() > 0) {
    std::fprintf(stderr, "FAIL: %llu surviving answers differ from plan_and_run\n",
                 static_cast<unsigned long long>(mismatches.load()));
    ok = false;
  }
  if (transport_errors.load() > 0) {
    std::fprintf(stderr, "FAIL: injected faults broke connections instead of framing errors\n");
    ok = false;
  }
  if (faulted.load() == 0) {
    std::fprintf(stderr, "FAIL: fault injection armed but nothing fired\n");
    ok = false;
  }

  // Phase 2: mid-request disconnects — full frames sent, sockets slammed
  // shut without reading the answer. The server must neither crash nor leak
  // the abandoned work into later answers.
  std::printf("chaos phase 2: mid-request disconnects\n");
  for (int i = 0; i < 8; ++i) {
    const int fd = raw_connect(server.port());
    if (fd < 0) {
      std::fprintf(stderr, "FAIL: chaos disconnect client could not connect\n");
      ok = false;
      break;
    }
    qcut::svc::WireEstimateRequest req = make_request(widths[0], shots);
    req.seed = 900000 + static_cast<std::uint64_t>(i);  // never coalesces with real work
    const std::vector<std::uint8_t> frame = qcut::svc::encode_frame(
        qcut::svc::Frame{qcut::svc::MsgType::kEstimateRequest,
                         qcut::svc::encode_estimate_request(req)});
    (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);  // vanish immediately
  }
  {
    // Healthy after the ambush, and still bit-identical.
    qcut::svc::QcutClient client("127.0.0.1", server.port());
    const qcut::svc::WireEstimateResponse resp = client.estimate(make_request(widths[0], shots));
    if (resp.status != 0 || bits_of(resp.estimate) != bits_of(refs[0].estimate)) {
      std::fprintf(stderr, "FAIL: server unhealthy after disconnect ambush: %s\n",
                   resp.error.c_str());
      ok = false;
    }
  }

  // Phase 3: graceful drain under load. A dedicated slow server (so requests
  // are provably in flight when the plug is pulled) must answer every
  // accepted request — completed, cancelled, or retryable — within budget.
  std::printf("chaos phase 3: drain under load\n");
  {
    qcut::svc::ServerConfig dcfg;
    dcfg.workers = 2;
    dcfg.debug_request_delay_ms = 2000;
    qcut::svc::QcutServer slow(dcfg);
    slow.start();
    constexpr int kClients = 4;
    std::atomic<int> answered{0}, dropped{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        try {
          qcut::svc::QcutClient client("127.0.0.1", slow.port());
          qcut::svc::WireEstimateRequest req = make_request(widths[0], shots);
          req.seed = 700000 + static_cast<std::uint64_t>(c);
          (void)client.estimate(req);  // any decoded response counts
          ++answered;
        } catch (const std::exception&) {
          ++dropped;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const auto t0 = std::chrono::steady_clock::now();
    const bool clean = slow.drain(250);
    const double drain_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (auto& t : threads) {
      t.join();
    }
    std::printf("  drain: clean=%s in %.3fs, answered=%d dropped=%d\n", json_bool(clean),
                drain_s, answered.load(), dropped.load());
    if (!clean || drain_s > 2.0 || answered.load() != kClients || dropped.load() != 0) {
      std::fprintf(stderr, "FAIL: drain dropped requests or blew its budget\n");
      ok = false;
    }
  }

  std::printf("\nchaos verdict: %s\n", ok ? "all invariants held" : "INVARIANT VIOLATED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  qcut::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const bool chaos = cli.get_bool("chaos", false);
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", smoke ? 5000 : 100000));
  const int repeats = static_cast<int>(cli.get_int("repeats", smoke ? 4 : 16));
  const std::size_t workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  const std::string json_path = cli.output_path("json", "service_bench.json");
  const std::vector<int> widths = {4, 5, 6};

  qcut::svc::ServerConfig scfg;
  scfg.workers = workers;
  qcut::svc::QcutServer server(scfg);
  server.start();
  std::printf("=== Service bench: qcut-server on 127.0.0.1:%d, %zu workers ===\n\n",
              server.port(), workers);

  // In-process references: the plan_and_run path (svc::estimate, no caches)
  // for each workload — the bits every server answer must reproduce.
  std::vector<qcut::svc::EstimateResult> refs;
  for (int w : widths) {
    const qcut::svc::WireEstimateRequest wire = make_request(w, shots);
    qcut::svc::EstimateRequest req;
    req.circuit_qasm = wire.circuit_qasm;
    req.observable = qcut::Observable::parse(wire.observable);
    req.planner.max_fragment_width = wire.max_fragment_width;
    req.run_cfg.shots = wire.shots;
    req.run_cfg.seed = wire.seed;
    refs.push_back(qcut::svc::estimate(req, nullptr));
  }

  // Chaos mode replaces the throughput sweep: the references above were
  // computed BEFORE any fault was armed, so they are the undisturbed truth.
  if (chaos) {
    const bool chaos_ok = run_chaos(server, widths, shots, repeats, refs);
    server.stop();
    return chaos_ok ? 0 : 1;
  }

  // Phase sweep: one cold pass fills the caches, then warm passes at rising
  // client concurrency measure steady-state throughput.
  std::vector<PhaseResult> phases;
  phases.push_back(run_phase("cold", server.port(), widths, shots, 1, 1));
  for (int concurrency : {1, 2, 8}) {
    phases.push_back(run_phase("warm_c" + std::to_string(concurrency), server.port(), widths,
                               shots, repeats, concurrency));
  }

  std::printf("%-10s %6s %10s %10s %10s %10s %10s %10s\n", "phase", "conc", "requests",
              "seconds", "req/sec", "plan_hits", "eval_hits", "coalesced");
  for (const auto& p : phases) {
    std::printf("%-10s %6d %10llu %10.4f %10.1f %10llu %10llu %10llu\n", p.name.c_str(),
                p.concurrency, static_cast<unsigned long long>(p.requests), p.seconds, p.rps,
                static_cast<unsigned long long>(p.plan_hits),
                static_cast<unsigned long long>(p.eval_hits),
                static_cast<unsigned long long>(p.coalesced));
  }

  // ---- invariants ----------------------------------------------------------
  bool ok = true;

  // Every answered request is bit-identical to its in-process reference.
  // (Spot-check through a fresh client: one request per workload, warm.)
  {
    qcut::svc::QcutClient client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const qcut::svc::WireEstimateResponse resp =
          client.estimate(make_request(widths[i], shots));
      if (resp.status != 0 || bits_of(resp.estimate) != bits_of(refs[i].estimate) ||
          resp.shots_used != refs[i].shots_used) {
        std::fprintf(stderr,
                     "FAIL: width-%d server answer differs from plan_and_run "
                     "(%.17g vs %.17g)\n",
                     widths[i], resp.estimate, refs[i].estimate);
        ok = false;
      }
    }
  }

  std::uint64_t total_errors = 0;
  for (const auto& p : phases) {
    total_errors += p.errors;
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %llu requests errored\n",
                 static_cast<unsigned long long>(total_errors));
    ok = false;
  }

  // Repeated workloads must actually hit the cross-request caches.
  for (std::size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].requests > 0 && (phases[i].plan_hits == 0 || phases[i].eval_hits == 0)) {
      std::fprintf(stderr, "FAIL: phase %s saw no cache hits\n", phases[i].name.c_str());
      ok = false;
    }
  }

  // The metrics dump parses: "qcut_<name> <value>" per line.
  std::uint64_t metrics_lines = 0;
  {
    qcut::svc::QcutClient client("127.0.0.1", server.port());
    std::istringstream lines(client.metrics());
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos || line.rfind("qcut_", 0) != 0 ||
          line.find_first_not_of("0123456789", space + 1) != std::string::npos) {
        std::fprintf(stderr, "FAIL: bad metrics line '%s'\n", line.c_str());
        ok = false;
        break;
      }
      ++metrics_lines;
    }
  }

  std::printf("\nbit-identical to plan_and_run: %s; metrics lines: %llu\n",
              ok ? "yes" : "NO", static_cast<unsigned long long>(metrics_lines));

  // ---- machine-readable record ---------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"provenance\": " << qcut::obs::provenance_json(2) << ",\n";
  json << "  \"workload\": \"ghz_line_w4_5_6_maxwidth3\",\n";
  json << "  \"shots_per_request\": " << shots << ",\n  \"workers\": " << workers << ",\n";
  json << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    json << "    {\"name\": \"" << p.name << "\", \"concurrency\": " << p.concurrency
         << ", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
         << ", \"requests_per_sec\": " << p.rps << ", \"plan_cache_hits\": " << p.plan_hits
         << ", \"eval_cache_hits\": " << p.eval_hits << ", \"coalesced\": " << p.coalesced
         << ", \"hit_trajectory\": [";
    for (std::size_t j = 0; j < p.trajectory.size(); ++j) {
      json << p.trajectory[j] << (j + 1 < p.trajectory.size() ? "," : "");
    }
    json << "]}" << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"bit_identical_to_plan_and_run\": " << json_bool(ok) << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  server.stop();
  return ok ? 0 : 1;
}
