// QASM corpus round-trip gate — the deterministic CI check behind the
// importer: every circuit in tests/qasm_corpus/ must import, re-export, and
// re-import to an equivalent circuit; narrow measurement-free circuits must
// additionally preserve their total unitary up to global phase.
//
// On failure the offending circuit and its diagnostic are copied into the
// fail directory so CI can upload them as an artifact:
//   ./bench_qasm_corpus [--corpus <dir>] [--fail-dir <dir>] [--out <json>]
// Exit code: 0 = all green, 1 = at least one failure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/obs/run_report.hpp"
#include "qcut/sim/qasm.hpp"
#include "qcut/sim/qasm_import.hpp"

#ifndef QCUT_QASM_CORPUS_DIR
#define QCUT_QASM_CORPUS_DIR "tests/qasm_corpus"
#endif

namespace fs = std::filesystem;
using namespace qcut;

namespace {

/// Width cap for the total-unitary cross-check (dense 2^n matrices).
constexpr int kUnitaryCheckMax = 10;

bool unitary_only(const Circuit& c) {
  for (const auto& op : c.ops()) {
    if (op.kind != OpKind::kUnitary) {
      return false;
    }
  }
  return true;
}

struct Failure {
  fs::path file;
  std::string diagnostic;
};

std::string check_file(const fs::path& path) {
  Circuit c1;
  try {
    c1 = import_qasm_file(path.string());
  } catch (const Error& e) {
    return std::string("import failed: ") + e.what();
  }
  if (c1.size() == 0) {
    return "import produced an empty circuit";
  }
  std::string exported;
  try {
    exported = to_qasm(c1);
  } catch (const Error& e) {
    return std::string("export of the imported circuit failed: ") + e.what();
  }
  Circuit c2;
  try {
    c2 = import_qasm(exported, path.filename().string() + ":reimport");
  } catch (const Error& e) {
    return std::string("re-import of export failed: ") + e.what() +
           "\n--- exported program ---\n" + exported;
  }
  std::string why;
  if (!circuits_equivalent(c1, c2, 1e-9, &why)) {
    return "export(import(P)) is not re-import stable: " + why +
           "\n--- exported program ---\n" + exported;
  }
  // Byte-identity across generations is not guaranteed — zyz_decompose can
  // move an angle by one ulp when re-deriving it from the u3 matrix — but the
  // drift must never accumulate into a semantic difference: every further
  // generation still has to match the first import.
  std::string exported2;
  try {
    exported2 = to_qasm(c2);
  } catch (const Error& e) {
    return std::string("second-generation export failed: ") + e.what();
  }
  if (exported2 != exported) {
    Circuit c3;
    try {
      c3 = import_qasm(exported2, path.filename().string() + ":gen3");
    } catch (const Error& e) {
      return std::string("third-generation import failed: ") + e.what();
    }
    if (!circuits_equivalent(c1, c3, 1e-9, &why)) {
      return "round-trip drift accumulated beyond tolerance: " + why;
    }
  }
  if (unitary_only(c1) && c1.n_qubits() <= kUnitaryCheckMax) {
    if (!matrix_equal_up_to_phase(c1.to_unitary(), c2.to_unitary(), 1e-8)) {
      return "total unitary changed across the round trip";
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const fs::path corpus = cli.get("corpus", QCUT_QASM_CORPUS_DIR);
  const fs::path fail_dir = cli.get("fail-dir", "qasm_corpus_failures");
  const std::string out_json = cli.output_path("json", "qasm_corpus.json");

  std::vector<fs::path> files;
  if (!fs::is_directory(corpus)) {
    std::fprintf(stderr, "corpus directory '%s' does not exist\n", corpus.string().c_str());
    return 1;
  }
  for (const auto& e : fs::directory_iterator(corpus)) {
    if (e.path().extension() == ".qasm") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.size() < 20) {
    std::fprintf(stderr, "corpus has only %zu circuits (expected >= 20) — refusing to pass\n",
                 files.size());
    return 1;
  }

  std::vector<Failure> failures;
  for (const auto& f : files) {
    const std::string diag = check_file(f);
    std::printf("%-28s %s\n", f.filename().string().c_str(), diag.empty() ? "ok" : "FAIL");
    if (!diag.empty()) {
      failures.push_back({f, diag});
    }
  }

  if (!failures.empty()) {
    fs::create_directories(fail_dir);
    for (const auto& fail : failures) {
      fs::copy_file(fail.file, fail_dir / fail.file.filename(),
                    fs::copy_options::overwrite_existing);
      std::ofstream diag(fail_dir / (fail.file.stem().string() + ".diag.txt"));
      diag << fail.diagnostic << "\n";
      std::fprintf(stderr, "\n%s:\n%s\n", fail.file.filename().string().c_str(),
                   fail.diagnostic.c_str());
    }
    std::fprintf(stderr, "\n%zu/%zu corpus circuits failed; evidence in %s/\n", failures.size(),
                 files.size(), fail_dir.string().c_str());
  }

  std::string corpus_escaped;
  for (const char ch : corpus.string()) {
    if (ch == '"' || ch == '\\') {
      corpus_escaped += '\\';
    }
    corpus_escaped += ch;
  }
  std::ofstream json(out_json);
  json << "{\n  \"provenance\": " << obs::provenance_json(2) << ",\n  \"corpus\": \""
       << corpus_escaped << "\",\n  \"circuits\": " << files.size()
       << ",\n  \"failures\": " << failures.size() << "\n}\n";
  std::printf("\n%zu circuits, %zu failures (summary: %s)\n", files.size(), failures.size(),
              out_json.c_str());
  return failures.empty() ? 0 : 1;
}
