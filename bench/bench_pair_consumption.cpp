// Entangled-pair consumption (Sec. III, final paragraph): the number of |Φk⟩
// pairs consumed per QPD sample is 2a/κ with 2a = ⟨Φ|Φk|Φ⟩⁻¹ = 1/f; pairs
// needed for fixed accuracy scale as (κ²/ε²)·(2a/κ) = 2aκ/ε².
// We measure pair usage empirically from the estimator bookkeeping and print
// it against the closed form.
#include <cmath>
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/core/overhead.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"

int main(int argc, char** argv) {
  using qcut::Real;
  qcut::Cli cli(argc, argv);
  const std::uint64_t shots = static_cast<std::uint64_t>(cli.get_int("shots", 40000));

  std::printf("=== Pair consumption of the Theorem-2 cut ===\n\n");
  std::printf("%8s %8s %14s %14s %16s %18s\n", "f", "k", "pairs/sample", "measured", "2a = 1/f",
              "pairs for eps=0.05");
  qcut::CsvWriter csv("pair_consumption.csv",
                      {"f", "k", "pairs_per_sample_theory", "pairs_per_sample_measured",
                       "pair_weight", "pairs_for_eps005"});

  for (Real f : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Real k = qcut::k_for_overlap(f);
    const qcut::NmeCut proto(k);
    qcut::Rng rng(7, static_cast<std::uint64_t>(f * 100));
    qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
    const qcut::Qpd qpd = proto.build_qpd(input);
    const auto probs = qcut::exact_term_prob_one(qpd);
    const auto res = qcut::estimate_sampled_fast(qpd, probs, shots, rng);

    const Real theory = qcut::expected_pairs_per_sample_phi_k(k);
    const Real measured = static_cast<Real>(res.entangled_pairs_used) / static_cast<Real>(shots);
    const Real weight = qcut::pair_consumption_weight(k);
    const Real eps = 0.05;
    const Real pairs_for_eps =
        qcut::shots_for_accuracy(proto.kappa(), eps) * theory;  // 2aκ/ε²
    std::printf("%8.2f %8.4f %14.5f %14.5f %16.5f %18.1f\n", f, k, theory, measured, weight,
                pairs_for_eps);
    csv.row(std::vector<Real>{f, k, theory, measured, weight, pairs_for_eps});
  }
  std::printf(
      "\nExpected: measured matches theory; pairs/sample RISES with f while pairs needed for\n"
      "fixed accuracy FALLS with f (fewer total samples dominate) — the paper's trade-off.\n");
  std::printf("wrote pair_consumption.csv\n");
  return 0;
}
