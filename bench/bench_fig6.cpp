// Reproduces Figure 6: average error of the cut ⟨Z⟩ estimate vs total shots,
// for entanglement levels f(Φk) ∈ {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}.
//
// Defaults run a 200-state sweep (seconds); pass --paper for the full
// 1000-state configuration of Sec. IV. Output: aligned table on stdout plus
// fig6.csv for replotting.
//
// Expected shape (paper): curves ordered by f — higher entanglement, lower
// error; f = 1.0 is the pure-teleportation statistical floor; f = 0.5 is
// entanglement-free wire cutting with κ = 3.
#include <cstdio>

#include "qcut/common/cli.hpp"
#include "qcut/common/csv.hpp"
#include "qcut/core/experiment.hpp"

int main(int argc, char** argv) {
  qcut::Cli cli(argc, argv);
  qcut::Fig6Config cfg;
  // Default IS the paper's configuration (1000 Haar-random states); --states
  // overrides for quick sweeps. (--paper retained for compatibility.)
  cfg.n_states = cli.get_bool("paper", false) ? 1000 : static_cast<int>(cli.get_int("states", 1000));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 20240320));
  // 0 → hardware concurrency. Results are thread-count independent (per-state
  // RNG streams; branch-cached execution inside each state task).
  const auto n_threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  qcut::ThreadPool pool(n_threads);

  std::printf("=== Fig. 6: average error vs shots, by entanglement level f(Phi_k) ===\n");
  std::printf("states per point: %d, shot grid 250..5000, observable Z, %zu threads\n",
              cfg.n_states, pool.size());

  const auto rows = qcut::run_fig6(cfg, &pool);
  std::printf("%s\n", qcut::format_fig6(rows).c_str());

  qcut::CsvWriter csv("fig6.csv", {"f", "shots", "mean_error", "sem", "kappa"});
  for (const auto& r : rows) {
    csv.row(std::vector<qcut::Real>{r.f, static_cast<qcut::Real>(r.shots), r.mean_error, r.sem,
                                    r.kappa});
  }
  std::printf("wrote %s\n", csv.path().c_str());

  // Shape assertions (who wins, by roughly what factor) so a regression is
  // loud even in an unattended run.
  const auto& last_block = rows;
  qcut::Real err_low_f = 0, err_high_f = 0;
  for (const auto& r : last_block) {
    if (r.shots == 5000 && r.f == 0.5) {
      err_low_f = r.mean_error;
    }
    if (r.shots == 5000 && r.f == 1.0) {
      err_high_f = r.mean_error;
    }
  }
  std::printf("error(f=0.5)/error(f=1.0) at 5000 shots: %.2f (theory ~ kappa ratio = 3)\n",
              err_low_f / err_high_f);
  return 0;
}
