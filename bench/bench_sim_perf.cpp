// Engine performance harness: shots/sec of every execution path on the
// Theorem-2 workload, plus statevector gate-kernel throughput.
//
// Backends measured on one NmeCut(f=0.6) QPD (Haar-random input, observable
// Z, proportional allocation):
//  * serial           — SerialShotBackend, single stream (legacy semantics);
//  * batched          — BatchedBranchBackend through the engine, pool size 1;
//  * parallel         — BatchedBranchBackend through the engine on an
//    N-thread pool (same bit-identical result by construction);
//  * parallel-serial  — SerialShotBackend through the engine on the pool
//    (per-shot simulation, batch-parallel).
//
// Output: aligned table on stdout plus machine-readable sim_perf.json so
// future PRs have a perf trajectory to regress against. The headline number
// is speedup_batched_over_serial (acceptance floor: >= 10x).
//
// Usage: bench_sim_perf [--serial-shots N] [--batched-shots N] [--threads N]
//                       [--out PATH] [--seed N]
// sim_perf.json defaults to the executable's directory (the build tree), so
// running from a source checkout leaves no stray file; --out (or the legacy
// --json) overrides the destination.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/statevector.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BackendRow {
  std::string name;
  std::uint64_t shots = 0;
  std::size_t threads = 1;
  double seconds = 0.0;
  double shots_per_sec = 0.0;
  qcut::Real estimate = 0.0;
};

BackendRow measure(const std::string& name, const qcut::Qpd& qpd, const qcut::ShotPlan& plan,
                   const qcut::ExecutionBackend& backend, const qcut::ExecutionEngine& engine,
                   std::size_t threads, std::uint64_t seed) {
  BackendRow row;
  row.name = name;
  row.shots = plan.total_shots;
  row.threads = threads;
  const auto start = Clock::now();
  const qcut::EstimationResult res = engine.run(qpd, plan, backend, seed);
  row.seconds = seconds_since(start);
  row.shots_per_sec = row.seconds > 0.0 ? static_cast<double>(row.shots) / row.seconds : 0.0;
  row.estimate = res.estimate;
  return row;
}

struct KernelRow {
  std::string name;
  int qubits = 0;
  double amps_per_sec = 0.0;  ///< amplitude updates per second
};

KernelRow measure_kernel(const std::string& name, int n, const qcut::Matrix& u,
                         const std::vector<int>& qubits_step, int reps) {
  qcut::Rng rng(17);
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  const auto start = Clock::now();
  for (int r = 0; r < reps; ++r) {
    std::vector<int> qs = qubits_step;
    for (auto& q : qs) {
      q = (q + r) % n;
    }
    sv.apply(u, qs);
  }
  const double secs = seconds_since(start);
  KernelRow row;
  row.name = name;
  row.qubits = n;
  row.amps_per_sec =
      secs > 0.0 ? static_cast<double>(reps) * static_cast<double>(qcut::Index{1} << n) / secs
                 : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  qcut::Cli cli(argc, argv);
  const std::uint64_t serial_shots = static_cast<std::uint64_t>(cli.get_int("serial-shots", 20000));
  const std::uint64_t batched_shots =
      static_cast<std::uint64_t>(cli.get_int("batched-shots", 2000000));
  const std::size_t threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string json_path = cli.output_path("json", "sim_perf.json");

  // The Theorem-2 workload of the paper's experiment.
  qcut::Rng setup_rng(3);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, setup_rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);

  std::printf("=== Engine perf: NmeCut(0.6) workload, %zu QPD terms ===\n\n", qpd.size());
  std::printf("%-16s %12s %8s %12s %16s\n", "backend", "shots", "threads", "seconds",
              "shots/sec");

  std::vector<BackendRow> rows;
  qcut::ThreadPool pool1(1), poolN(threads);

  {
    const qcut::SerialShotBackend serial(qpd);
    qcut::EngineConfig ec;
    ec.pool = &pool1;  // backend object is passed to run() explicitly
    const qcut::ExecutionEngine engine(ec);
    const auto plan = qcut::ShotPlan::allocated(qpd, serial_shots, qcut::AllocRule::kProportional);
    rows.push_back(measure("serial", qpd, plan, serial, engine, 1, seed));

    qcut::EngineConfig ecp = ec;
    ecp.pool = &poolN;
    const qcut::ExecutionEngine engine_par(ecp);
    rows.push_back(measure("parallel-serial", qpd, plan, serial, engine_par, poolN.size(), seed));
  }
  {
    const qcut::BatchedBranchBackend batched(qpd);
    // Prewarm: force the one-time branch enumeration out of the timed region
    // so the batched and parallel rows measure steady-state sampling cost
    // symmetrically (the JSON is a perf trajectory — keep it unbiased).
    batched.cache().all_prob_one();
    qcut::EngineConfig ec;
    ec.pool = &pool1;
    const qcut::ExecutionEngine engine(ec);
    const auto plan = qcut::ShotPlan::allocated(qpd, batched_shots, qcut::AllocRule::kProportional);
    rows.push_back(measure("batched", qpd, plan, batched, engine, 1, seed));

    qcut::EngineConfig ecp = ec;
    ecp.pool = &poolN;
    const qcut::ExecutionEngine engine_par(ecp);
    rows.push_back(measure("parallel", qpd, plan, batched, engine_par, poolN.size(), seed));
  }

  for (const auto& r : rows) {
    std::printf("%-16s %12llu %8zu %12.4f %16.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.shots), r.threads, r.seconds, r.shots_per_sec);
  }

  const double speedup = rows[0].shots_per_sec > 0.0
                             ? rows[2].shots_per_sec / rows[0].shots_per_sec
                             : 0.0;
  std::printf("\nspeedup batched/serial: %.1fx (acceptance floor: 10x)\n", speedup);

  std::printf("\n=== Statevector kernel throughput ===\n");
  std::printf("%-16s %8s %18s\n", "kernel", "qubits", "amp-updates/sec");
  std::vector<KernelRow> kernels;
  for (int n : {8, 12, 16}) {
    kernels.push_back(measure_kernel("1q-hadamard", n, qcut::gates::h(), {0}, 2000));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(measure_kernel("2q-cnot", n, qcut::gates::cx(), {0, 1}, 2000));
  }
  for (const auto& kr : kernels) {
    std::printf("%-16s %8d %18.0f\n", kr.name.c_str(), kr.qubits, kr.amps_per_sec);
  }

  // Machine-readable record for perf-trajectory tracking across PRs.
  std::ofstream json(json_path);
  json << "{\n  \"workload\": \"nme_f0.6_haar_Z\",\n  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"shots\": " << r.shots
         << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
         << ", \"shots_per_sec\": " << r.shots_per_sec << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_batched_over_serial\": " << speedup << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& kr = kernels[i];
    json << "    {\"name\": \"" << kr.name << "\", \"qubits\": " << kr.qubits
         << ", \"amps_per_sec\": " << kr.amps_per_sec << "}"
         << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  // Gates LAST, after the JSON record is on disk — a regressing run must
  // still leave its perf trajectory behind for diagnosis.
  // (1) Same seed + same plan must give bit-identical estimates across pool
  // sizes. (2) The batched backend must clear the 10x acceptance floor,
  // unless a degenerate budget makes the ratio meaningless.
  if (rows[0].estimate != rows[1].estimate || rows[2].estimate != rows[3].estimate) {
    std::printf("ERROR: parallel estimate differs from single-thread estimate\n");
    return 1;
  }
  if (serial_shots > 0 && batched_shots > 0 && speedup < 10.0) {
    std::printf("ERROR: batched/serial speedup %.1fx is below the 10x acceptance floor\n",
                speedup);
    return 1;
  }
  return 0;
}
