// Engine performance harness: shots/sec of every execution path on the
// Theorem-2 workload, statevector gate-kernel throughput, and the wide-run
// fragment-path throughput.
//
// Backends measured on one NmeCut(f=0.6) QPD (Haar-random input, observable
// Z, proportional allocation):
//  * serial           — SerialShotBackend, single stream (legacy semantics);
//  * batched          — BatchedBranchBackend through the engine, pool size 1;
//  * parallel         — BatchedBranchBackend through the engine on an
//    N-thread pool (same bit-identical result by construction);
//  * parallel-serial  — SerialShotBackend through the engine on the pool
//    (per-shot simulation, batch-parallel).
//
// Fragment path (the wide-circuit hot path): planned GHZ-30 plus QASM-corpus
// workloads, each measured two ways —
//  * serial baseline  — the PR-3 semantics: per-term fresh split_term, one
//    full branch enumeration per (fragment, read assignment), and gate
//    classification stripped (the old dense kernels). This is the yardstick
//    the speedup floor pins.
//  * optimized        — FragmentBackend: shared split skeletons, prefix-once
//    suffix-per-assignment enumeration, trailing-measure amplitude fold,
//    specialized kernels, work units across the thread pool.
// Results must be bit-identical across pool sizes {1, 2, 8} — checked here
// on every run, not just in the test suite.
//
// Kernel section: amp-updates/sec and effective GB/s per kernel, plus the
// QFT-16 workload (h + cu1 + swap — the corpus QFT gate mix) applied with
// classified dispatch vs. the dense kernels; the ratio is the pinned
// single-thread kernel win.
//
// SIMD tier section: the same kernels measured under each *forced* dispatch
// tier (scalar / AVX2 / AVX-512) — tiers the build or CPU lacks are skipped
// with an explicit row. The AVX2 dense 1q/2q GB/s must be >= 2x scalar.
//
// Fusion section: an rz-ry-rz + cx-ladder workload applied unfused vs fused
// (fuse_circuit), with op counts, wall time, and an amplitude cross-check.
//
// Output: aligned tables on stdout plus machine-readable sim_perf.json so
// future PRs have a perf trajectory to regress against. Acceptance floors
// (checked last, after the JSON is on disk): batched/serial >= 10x,
// fragment optimized/baseline >= 4x on a >= 4-thread pool, QFT-16
// classified/dense >= 1.5x, AVX2 dense kernels >= 2x scalar (when AVX2 is
// available), fusion amplitude agreement, and every bit-identity invariant.
//
// Usage: bench_sim_perf [--serial-shots N] [--batched-shots N] [--threads N]
//                       [--out PATH] [--seed N]
// sim_perf.json defaults to the executable's directory (the build tree), so
// running from a source checkout leaves no stray file; --out (or the legacy
// --json) overrides the destination.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/cut/fragment.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/run_report.hpp"
#include "qcut/plan/planned_executor.hpp"
#include "qcut/sim/fusion.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/qasm_import.hpp"
#include "qcut/sim/simd_dispatch.hpp"
#include "qcut/sim/statevector.hpp"

#ifndef QCUT_QASM_CORPUS_DIR
#define QCUT_QASM_CORPUS_DIR "tests/qasm_corpus"
#endif

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BackendRow {
  std::string name;
  std::uint64_t shots = 0;
  std::size_t threads = 1;
  double seconds = 0.0;
  double shots_per_sec = 0.0;
  qcut::Real estimate = 0.0;
};

BackendRow measure(const std::string& name, const qcut::Qpd& qpd, const qcut::ShotPlan& plan,
                   const qcut::ExecutionBackend& backend, const qcut::ExecutionEngine& engine,
                   std::size_t threads, std::uint64_t seed) {
  BackendRow row;
  row.name = name;
  row.shots = plan.total_shots;
  row.threads = threads;
  const auto start = Clock::now();
  const qcut::EstimationResult res = engine.run(qpd, plan, backend, seed);
  row.seconds = seconds_since(start);
  row.shots_per_sec = row.seconds > 0.0 ? static_cast<double>(row.shots) / row.seconds : 0.0;
  row.estimate = res.estimate;
  return row;
}

struct KernelRow {
  std::string name;
  int qubits = 0;
  double amps_per_sec = 0.0;  ///< amplitude updates (touched amps) per second
  double gb_per_sec = 0.0;    ///< effective read+write traffic on touched amps
};

/// `touched_frac` is the fraction of the 2^n amplitudes the kernel touches
/// per application (1.0 for dense/diagonal, 0.5 for cx/swap moves, 0.25 for
/// the cu1 sparse phase); the forced GateClass selects the dispatch path
/// (nullptr = classify once per gate like the circuit builder does).
KernelRow measure_kernel(const std::string& name, int n, const qcut::Matrix& u,
                         const std::vector<int>& qubits_step, int reps, double touched_frac,
                         const qcut::GateClass* forced) {
  qcut::Rng rng(17);
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  const qcut::GateClass cls = forced != nullptr ? *forced : qcut::classify_gate(u);
  const auto start = Clock::now();
  for (int r = 0; r < reps; ++r) {
    std::vector<int> qs = qubits_step;
    for (auto& q : qs) {
      q = (q + r) % n;
    }
    sv.apply(u, qs, cls);
  }
  const double secs = seconds_since(start);
  const double touched =
      static_cast<double>(reps) * touched_frac * static_cast<double>(qcut::Index{1} << n);
  KernelRow row;
  row.name = name;
  row.qubits = n;
  row.amps_per_sec = secs > 0.0 ? touched / secs : 0.0;
  // One complex read + one complex write per touched amplitude.
  row.gb_per_sec = row.amps_per_sec * 2.0 * sizeof(qcut::Cplx) / 1e9;
  return row;
}

// ---- fragment-path section --------------------------------------------------

/// The serial baseline runs on circuits with the gate classification
/// stripped: the pre-classification dense kernels are what PR 3 executed.
qcut::Qpd strip_classification(const qcut::Qpd& qpd) {
  qcut::Qpd out;
  for (const qcut::QpdTerm& t : qpd.terms()) {
    qcut::QpdTerm nt = t;
    qcut::Circuit c(t.circuit.n_qubits(), t.circuit.n_cbits());
    for (qcut::Operation op : t.circuit.ops()) {
      op.gclass = qcut::GateClass{};
      c.push_op(std::move(op));
    }
    nt.circuit = std::move(c);
    out.add(std::move(nt));
  }
  return out;
}

struct FragmentRow {
  std::string name;
  std::size_t terms = 0;
  std::size_t cuts = 0;
  int max_fragment_width = 0;
  bool has_baseline = true;
  double serial_seconds = 0.0;
  double optimized_seconds = 0.0;
  double serial_terms_per_sec = 0.0;
  double optimized_terms_per_sec = 0.0;
  double speedup = 0.0;
  bool ok = false;
  std::string error;
};

qcut::Circuit ghz_line(int n) {
  qcut::Circuit c(n, 0);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  return c;
}

/// `with_baseline = false` skips the PR-3 yardstick: workloads whose generic
/// entangled states defeat branch pruning (wide_30_brickwork) make the old
/// per-measure branch enumeration exponential — literally intractable, which
/// is the point of the trailing-measure fold. Those rows report optimized
/// throughput only and stay out of the aggregate speedup.
FragmentRow measure_fragment_workload(const std::string& name, const qcut::Circuit& circ,
                                      int width_cap, qcut::ThreadPool& pool, int reps,
                                      bool with_baseline = true) {
  FragmentRow row;
  row.name = name;
  row.has_baseline = with_baseline;
  try {
    qcut::PlannerConfig pcfg;
    pcfg.max_fragment_width = width_cap;
    pcfg.pair_budget = 0;  // entanglement-free protocols → fully splittable terms
    const qcut::CutPlanner planner(circ, pcfg);
    const qcut::CutPlan plan = planner.plan();
    const qcut::PlannedExecutor exec(circ, plan);
    const qcut::Qpd qpd =
        exec.build_qpd(std::string(static_cast<std::size_t>(circ.n_qubits()), 'Z'));
    row.terms = qpd.size();
    row.cuts = plan.cuts.size();
    row.max_fragment_width = plan.max_width;
    const double work = static_cast<double>(reps) * static_cast<double>(qpd.size());

    qcut::Real acc_base = 0.0;
    if (with_baseline) {
      const qcut::Qpd stripped = strip_classification(qpd);
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        for (const qcut::QpdTerm& t : stripped.terms()) {
          acc_base += qcut::fragment_term_prob_one_baseline(qcut::split_term(t));
        }
      }
      row.serial_seconds = seconds_since(t0);
      row.serial_terms_per_sec = row.serial_seconds > 0.0 ? work / row.serial_seconds : 0.0;
    }

    qcut::Real acc_opt = 0.0;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      const qcut::FragmentBackend frag(qpd, 0, &pool);
      frag.prewarm();
      for (std::size_t i = 0; i < qpd.size(); ++i) {
        acc_opt += frag.cache().prob_one(i);
      }
    }
    row.optimized_seconds = seconds_since(t0);
    row.optimized_terms_per_sec =
        row.optimized_seconds > 0.0 ? work / row.optimized_seconds : 0.0;

    row.ok = true;
    if (with_baseline) {
      row.speedup =
          row.optimized_seconds > 0.0 ? row.serial_seconds / row.optimized_seconds : 0.0;
      // The two evaluators must agree (they are pinned to 1e-12 per term in
      // the test suite; this is a cheap cross-check against silent drift).
      row.ok = std::abs(acc_base - acc_opt) <= 1e-9 * work;
      if (!row.ok) {
        row.error = "baseline/optimized probability drift";
      }
    }
  } catch (const std::exception& e) {
    row.ok = false;
    row.error = e.what();
  }
  return row;
}

/// Forces every term's fragment probability on a pool of the given size and
/// returns the exact per-term vector.
std::vector<qcut::Real> fragment_probs_with_pool(const qcut::Qpd& qpd, std::size_t pool_size) {
  qcut::ThreadPool pool(pool_size);
  const qcut::FragmentBackend frag(qpd, 0, &pool);
  frag.prewarm();
  return frag.cache().all_prob_one();
}

// ---- QFT kernel workload ----------------------------------------------------

qcut::Circuit build_qft(int n) {
  qcut::Circuit c(n, 0);
  for (int j = 0; j < n; ++j) {
    c.h(j);
    for (int k = j + 1; k < n; ++k) {
      const qcut::Real lam = qcut::kPi / static_cast<qcut::Real>(qcut::Index{1} << (k - j));
      c.gate(qcut::gates::controlled(qcut::gates::phase(lam)), {k, j}, "CU1");
    }
  }
  for (int j = 0; j < n / 2; ++j) {
    c.swap_gate(j, n - 1 - j);
  }
  return c;
}

struct QftKernelResult {
  int qubits = 0;
  std::size_t ops = 0;
  double dense_seconds = 0.0;
  double classified_seconds = 0.0;
  double speedup = 0.0;
};

QftKernelResult measure_qft_kernels(int n, int reps) {
  const qcut::Circuit qft = build_qft(n);
  qcut::Rng rng(23);
  QftKernelResult res;
  res.qubits = n;
  res.ops = qft.size();

  const qcut::GateClass dense{};  // forces the dense kernels
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const qcut::Operation& op : qft.ops()) {
      sv.apply(op.matrix, op.qubits, dense);
    }
  }
  res.dense_seconds = seconds_since(t0);

  qcut::Statevector sv2(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const qcut::Operation& op : qft.ops()) {
      sv2.apply(op.matrix, op.qubits, op.gclass);
    }
  }
  res.classified_seconds = seconds_since(t0);
  res.speedup =
      res.classified_seconds > 0.0 ? res.dense_seconds / res.classified_seconds : 0.0;
  return res;
}

// ---- SIMD tier section ------------------------------------------------------

struct TierKernelRow {
  std::string tier;
  std::string kernel;
  int qubits = 0;
  double gb_per_sec = 0.0;
};

// ---- fusion A/B section -----------------------------------------------------

struct FusionBench {
  int qubits = 0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t fused_1q = 0;
  std::size_t merged_diagonal = 0;
  double unfused_seconds = 0.0;
  double fused_seconds = 0.0;
  double speedup = 0.0;
  double max_amp_diff = 0.0;
};

/// rz-ry-rz Euler layers (the fusable run shape every variational ansatz
/// emits) interleaved with a brickwork cx ladder: pass 1 composes each wire's
/// three rotations into one 2x2 per layer.
FusionBench measure_fusion(int n, int layers, int reps) {
  qcut::Rng rng(29);
  qcut::Circuit c(n, 0);
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q < n; ++q) {
      c.rz(q, rng.uniform(0.0, 2.0 * qcut::kPi));
      c.ry(q, rng.uniform(0.0, 2.0 * qcut::kPi));
      c.rz(q, rng.uniform(0.0, 2.0 * qcut::kPi));
    }
    for (int q = l % 2; q + 1 < n; q += 2) {
      c.cx(q, q + 1);
    }
  }
  FusionBench res;
  res.qubits = n;
  qcut::FusionStats stats;
  const qcut::Circuit fused = qcut::fuse_circuit(c, &stats);
  res.ops_before = stats.ops_before;
  res.ops_after = stats.ops_after;
  res.fused_1q = stats.fused_1q;
  res.merged_diagonal = stats.merged_diagonal;

  const qcut::Vector init = qcut::random_statevector(qcut::Index{1} << n, rng);
  qcut::Statevector a(n, init);
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const qcut::Operation& op : c.ops()) {
      a.apply(op.matrix, op.qubits, op.gclass);
    }
  }
  res.unfused_seconds = seconds_since(t0);

  qcut::Statevector b(n, init);
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const qcut::Operation& op : fused.ops()) {
      b.apply(op.matrix, op.qubits, op.gclass);
    }
  }
  res.fused_seconds = seconds_since(t0);
  res.speedup = res.fused_seconds > 0.0 ? res.unfused_seconds / res.fused_seconds : 0.0;

  for (std::size_t i = 0; i < a.amplitudes().size(); ++i) {
    res.max_amp_diff =
        std::max(res.max_amp_diff, std::abs(a.amplitudes()[i] - b.amplitudes()[i]));
  }
  return res;
}

// ---- observability overhead section -----------------------------------------

struct ObsOverheadBench {
  int qubits = 0;
  std::size_t ops = 0;
  int reps = 0;
  double off_seconds = 0.0;  ///< best single pass, metrics disabled
  double on_seconds = 0.0;   ///< best single pass, metrics enabled
  double overhead_frac = 0.0;
};

/// Times the QFT classified-kernel workload with the metrics registry off vs
/// on, interleaved min-of-reps so frequency drift hits both sides equally.
/// The enabled cost (one relaxed fetch_add per Statevector::apply) upper
/// bounds the disabled cost (one relaxed load + branch), so gating the
/// enabled/disabled ratio at <= 2% proves the ISSUE's "compiled in but
/// disabled" budget with margin.
ObsOverheadBench measure_obs_overhead(int n, int reps) {
  const qcut::Circuit qft = build_qft(n);
  qcut::Rng rng(31);
  ObsOverheadBench res;
  res.qubits = n;
  res.ops = qft.size();
  res.reps = reps;
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));

  const bool was_enabled = qcut::obs::metrics_enabled();
  double best_off = 0.0;
  double best_on = 0.0;
  for (int r = 0; r < reps; ++r) {
    qcut::obs::set_metrics_enabled(false);
    auto t0 = Clock::now();
    for (const qcut::Operation& op : qft.ops()) {
      sv.apply(op.matrix, op.qubits, op.gclass);
    }
    const double off = seconds_since(t0);
    if (r == 0 || off < best_off) best_off = off;

    qcut::obs::set_metrics_enabled(true);
    t0 = Clock::now();
    for (const qcut::Operation& op : qft.ops()) {
      sv.apply(op.matrix, op.qubits, op.gclass);
    }
    const double on = seconds_since(t0);
    if (r == 0 || on < best_on) best_on = on;
  }
  qcut::obs::set_metrics_enabled(was_enabled);

  res.off_seconds = best_off;
  res.on_seconds = best_on;
  res.overhead_frac = best_off > 0.0 ? (best_on - best_off) / best_off : 0.0;
  return res;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  // Line-buffered stdout even when redirected: this binary is a CI gate, and
  // a hung or killed run must leave its progress in the log.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  qcut::Cli cli(argc, argv);
  const std::uint64_t serial_shots = static_cast<std::uint64_t>(cli.get_int("serial-shots", 20000));
  const std::uint64_t batched_shots =
      static_cast<std::uint64_t>(cli.get_int("batched-shots", 2000000));
  const std::size_t threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string json_path = cli.output_path("json", "sim_perf.json");

  // The Theorem-2 workload of the paper's experiment.
  qcut::Rng setup_rng(3);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, setup_rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);

  std::printf("=== Engine perf: NmeCut(0.6) workload, %zu QPD terms ===\n\n", qpd.size());
  std::printf("%-16s %12s %8s %12s %16s\n", "backend", "shots", "threads", "seconds",
              "shots/sec");

  std::vector<BackendRow> rows;
  qcut::ThreadPool pool1(1), poolN(threads);

  {
    const qcut::SerialShotBackend serial(qpd);
    qcut::EngineConfig ec;
    ec.pool = &pool1;  // backend object is passed to run() explicitly
    const qcut::ExecutionEngine engine(ec);
    const auto plan = qcut::ShotPlan::allocated(qpd, serial_shots, qcut::AllocRule::kProportional);
    rows.push_back(measure("serial", qpd, plan, serial, engine, 1, seed));

    qcut::EngineConfig ecp = ec;
    ecp.pool = &poolN;
    const qcut::ExecutionEngine engine_par(ecp);
    rows.push_back(measure("parallel-serial", qpd, plan, serial, engine_par, poolN.size(), seed));
  }
  {
    const qcut::BatchedBranchBackend batched(qpd);
    // Prewarm: force the one-time branch enumeration out of the timed region
    // so the batched and parallel rows measure steady-state sampling cost
    // symmetrically (the JSON is a perf trajectory — keep it unbiased).
    batched.cache().all_prob_one();
    qcut::EngineConfig ec;
    ec.pool = &pool1;
    const qcut::ExecutionEngine engine(ec);
    const auto plan = qcut::ShotPlan::allocated(qpd, batched_shots, qcut::AllocRule::kProportional);
    rows.push_back(measure("batched", qpd, plan, batched, engine, 1, seed));

    qcut::EngineConfig ecp = ec;
    ecp.pool = &poolN;
    const qcut::ExecutionEngine engine_par(ecp);
    rows.push_back(measure("parallel", qpd, plan, batched, engine_par, poolN.size(), seed));
  }

  for (const auto& r : rows) {
    std::printf("%-16s %12llu %8zu %12.4f %16.0f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.shots), r.threads, r.seconds, r.shots_per_sec);
  }

  const double speedup = rows[0].shots_per_sec > 0.0
                             ? rows[2].shots_per_sec / rows[0].shots_per_sec
                             : 0.0;
  std::printf("\nspeedup batched/serial: %.1fx (acceptance floor: 10x)\n", speedup);

  // ---- fragment-path throughput --------------------------------------------
  std::printf("\n=== Fragment-path throughput (serial PR-3 baseline vs optimized, %zu threads) ===\n",
              poolN.size());
  std::printf("%-24s %6s %5s %6s %14s %14s %9s\n", "workload", "terms", "cuts", "width",
              "base terms/s", "opt terms/s", "speedup");

  std::vector<FragmentRow> frag_rows;
  bool fragment_workloads_ok = true;
  double frag_serial_total = 0.0, frag_opt_total = 0.0;
  const auto report_row = [&](FragmentRow fr) {
    if (!fr.ok) {
      fragment_workloads_ok = false;
      std::printf("%-24s FAILED: %s\n", fr.name.c_str(), fr.error.c_str());
    } else if (fr.has_baseline) {
      frag_serial_total += fr.serial_seconds;
      frag_opt_total += fr.optimized_seconds;
      std::printf("%-24s %6zu %5zu %6d %14.1f %14.1f %8.2fx\n", fr.name.c_str(), fr.terms,
                  fr.cuts, fr.max_fragment_width, fr.serial_terms_per_sec,
                  fr.optimized_terms_per_sec, fr.speedup);
    } else {
      std::printf("%-24s %6zu %5zu %6d %14s %14.1f %9s\n", fr.name.c_str(), fr.terms, fr.cuts,
                  fr.max_fragment_width, "intractable", fr.optimized_terms_per_sec, "n/a");
    }
    frag_rows.push_back(std::move(fr));
  };
  report_row(measure_fragment_workload("planned-ghz-30", ghz_line(30), /*width_cap=*/12, poolN, 3));
  const auto corpus_workload = [&](const std::string& name, const char* file, int cap, int reps,
                                   bool with_baseline) {
    try {
      const qcut::Circuit c = qcut::strip_trailing_measurements(
          qcut::import_qasm_file(std::string(QCUT_QASM_CORPUS_DIR) + "/" + file));
      report_row(measure_fragment_workload(name, c, cap, poolN, reps, with_baseline));
    } catch (const std::exception& e) {
      FragmentRow fr;
      fr.name = name;
      fr.error = e.what();
      report_row(std::move(fr));
    }
  };
  corpus_workload("qasm-ghz-30-wide", "ghz_30_wide.qasm", 16, 3, true);
  corpus_workload("qasm-hwe-ansatz-8", "hwe_ansatz_8.qasm", 5, 20, true);
  // Optimized-only showcase: the pre-PR-5 enumeration is exponential in the
  // trailing measures of this workload's entangled 16-wide fragments (the
  // serial baseline does not terminate in useful time — by design, that cost
  // is what the trailing-measure fold removed).
  corpus_workload("qasm-wide-30-brickwork", "wide_30_brickwork.qasm", 16, 3, false);

  const double frag_speedup = frag_opt_total > 0.0 ? frag_serial_total / frag_opt_total : 0.0;
  std::printf("\nfragment-path speedup (aggregate): %.1fx (floor: 4x on >= 4 threads)\n",
              frag_speedup);

  // Bit-identity across pool sizes {1, 2, 8}: per-term probabilities and
  // end-to-end engine estimates must match exactly, not approximately.
  bool frag_bit_identical = true;
  {
    qcut::PlannerConfig pcfg;
    pcfg.max_fragment_width = 12;
    pcfg.pair_budget = 0;
    const qcut::Circuit circ = ghz_line(30);
    const qcut::CutPlanner planner(circ, pcfg);
    const qcut::PlannedExecutor exec(circ, planner.plan());
    const qcut::Qpd wide_qpd = exec.build_qpd(std::string(30, 'Z'));
    const std::vector<qcut::Real> p1 = fragment_probs_with_pool(wide_qpd, 1);
    const std::vector<qcut::Real> p2 = fragment_probs_with_pool(wide_qpd, 2);
    const std::vector<qcut::Real> p8 = fragment_probs_with_pool(wide_qpd, 8);
    frag_bit_identical = p1 == p2 && p1 == p8;
    qcut::Real est1 = 0.0, est2 = 0.0, est8 = 0.0;
    for (const std::size_t n_threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      qcut::ThreadPool pool(n_threads);
      const qcut::FragmentBackend frag(wide_qpd, 0, &pool);
      qcut::EngineConfig ec;
      ec.pool = &pool;
      const qcut::ExecutionEngine engine(ec);
      const auto plan =
          qcut::ShotPlan::allocated(wide_qpd, 200000, qcut::AllocRule::kProportional);
      const qcut::Real est = engine.run(wide_qpd, plan, frag, seed).estimate;
      (n_threads == 1 ? est1 : n_threads == 2 ? est2 : est8) = est;
    }
    frag_bit_identical = frag_bit_identical && est1 == est2 && est1 == est8;
    std::printf("fragment results bit-identical across pools {1, 2, 8}: %s\n",
                frag_bit_identical ? "yes" : "NO");
  }

  // ---- statevector kernels -------------------------------------------------
  std::printf("\n=== Statevector kernel throughput ===\n");
  std::printf("%-18s %8s %18s %10s\n", "kernel", "qubits", "amp-updates/sec", "GB/s");
  const qcut::GateClass dense{};
  std::vector<KernelRow> kernels;
  for (int n : {8, 12, 16}) {
    kernels.push_back(measure_kernel("1q-hadamard", n, qcut::gates::h(), {0}, 2000, 1.0, nullptr));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(
        measure_kernel("1q-rz-diag", n, qcut::gates::rz(0.7), {0}, 2000, 1.0, nullptr));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(
        measure_kernel("2q-cnot-dense", n, qcut::gates::cx(), {0, 1}, 2000, 1.0, &dense));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(
        measure_kernel("2q-cnot-perm", n, qcut::gates::cx(), {0, 1}, 2000, 0.5, nullptr));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(measure_kernel(
        "2q-cu1-sparse", n, qcut::gates::controlled(qcut::gates::phase(0.7)), {0, 1}, 2000,
        0.25, nullptr));
  }
  for (int n : {8, 12, 16}) {
    kernels.push_back(
        measure_kernel("2q-swap-perm", n, qcut::gates::swap(), {0, 1}, 2000, 0.5, nullptr));
  }
  for (const auto& kr : kernels) {
    std::printf("%-18s %8d %18.0f %10.2f\n", kr.name.c_str(), kr.qubits, kr.amps_per_sec,
                kr.gb_per_sec);
  }

  const QftKernelResult qft = measure_qft_kernels(16, 10);
  std::printf("\nQFT-%d workload (%zu ops, single thread): dense %.3fs, classified %.3fs "
              "-> %.2fx (floor: 1.5x)\n",
              qft.qubits, qft.ops, qft.dense_seconds, qft.classified_seconds, qft.speedup);

  // ---- SIMD dispatch tiers -------------------------------------------------
  const qcut::SimdTier initial_tier = qcut::active_simd_tier();
  std::printf("\n=== SIMD kernel tiers (forced dispatch, 16 qubits; active: %s) ===\n",
              qcut::simd_tier_name(initial_tier));
  std::printf("%-8s %-14s %10s\n", "tier", "kernel", "GB/s");
  std::vector<TierKernelRow> tier_rows;
  // [tier][0] = dense 1q, [1] = dense 2q — for the AVX2-vs-scalar floor.
  double dense_gbs[3][2] = {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  for (const qcut::SimdTier tier :
       {qcut::SimdTier::kScalar, qcut::SimdTier::kAvx2, qcut::SimdTier::kAvx512}) {
    const char* tname = qcut::simd_tier_name(tier);
    if (!qcut::simd_tier_available(tier)) {
      std::printf("%-8s %-14s %10s\n", tname, "-", "absent");
      continue;
    }
    qcut::force_simd_tier(tier);
    const int tn = 16;
    const struct {
      const char* name;
      qcut::Matrix u;
      std::vector<int> qubits;
      double frac;
      bool force_dense;
    } specs[] = {
        {"1q-dense", qcut::gates::h(), {0}, 1.0, false},
        {"2q-dense", qcut::gates::cx(), {0, 1}, 1.0, true},
        {"1q-diag", qcut::gates::rz(0.7), {0}, 1.0, false},
        {"2q-sparse", qcut::gates::controlled(qcut::gates::phase(0.7)), {0, 1}, 0.25, false},
    };
    int spec_idx = 0;
    for (const auto& spec : specs) {
      const KernelRow kr = measure_kernel(spec.name, tn, spec.u, spec.qubits, 2000, spec.frac,
                                          spec.force_dense ? &dense : nullptr);
      if (spec_idx < 2) {
        dense_gbs[static_cast<int>(tier)][spec_idx] = kr.gb_per_sec;
      }
      ++spec_idx;
      std::printf("%-8s %-14s %10.2f\n", tname, spec.name, kr.gb_per_sec);
      tier_rows.push_back({tname, spec.name, tn, kr.gb_per_sec});
    }
  }
  qcut::force_simd_tier(initial_tier);
  const bool avx2_measured = qcut::simd_tier_available(qcut::SimdTier::kAvx2);
  const double avx2_1q_speedup =
      avx2_measured && dense_gbs[0][0] > 0.0 ? dense_gbs[1][0] / dense_gbs[0][0] : 0.0;
  const double avx2_2q_speedup =
      avx2_measured && dense_gbs[0][1] > 0.0 ? dense_gbs[1][1] / dense_gbs[0][1] : 0.0;
  if (avx2_measured) {
    std::printf("\nAVX2/scalar dense GB/s: 1q %.2fx, 2q %.2fx (floor: 2x)\n", avx2_1q_speedup,
                avx2_2q_speedup);
  }

  // ---- gate fusion A/B -----------------------------------------------------
  const FusionBench fusion = measure_fusion(16, 8, 10);
  std::printf("\n=== Gate fusion (rz-ry-rz Euler layers + cx ladder, 16 qubits) ===\n");
  std::printf("ops %zu -> %zu (1q fused: %zu, diagonal merged: %zu)\n", fusion.ops_before,
              fusion.ops_after, fusion.fused_1q, fusion.merged_diagonal);
  std::printf("unfused %.3fs, fused %.3fs -> %.2fx; max amplitude diff %.2e\n",
              fusion.unfused_seconds, fusion.fused_seconds, fusion.speedup,
              fusion.max_amp_diff);

  // ---- observability overhead ----------------------------------------------
  const ObsOverheadBench obs_bench = measure_obs_overhead(16, 7);
  std::printf("\n=== Observability overhead (QFT-%d classified kernels, min of %d) ===\n",
              obs_bench.qubits, obs_bench.reps);
  std::printf("metrics off %.4fs, on %.4fs -> %+.2f%% (ceiling: 2%%)\n",
              obs_bench.off_seconds, obs_bench.on_seconds, 100.0 * obs_bench.overhead_frac);

  // ---- machine-readable record for perf-trajectory tracking across PRs -----
  std::ofstream json(json_path);
  json << "{\n  \"provenance\": " << qcut::obs::provenance_json(2) << ",\n";
  json << "  \"workload\": \"nme_f0.6_haar_Z\",\n  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"shots\": " << r.shots
         << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
         << ", \"shots_per_sec\": " << r.shots_per_sec << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_batched_over_serial\": " << speedup << ",\n";
  json << "  \"fragment\": {\n    \"threads\": " << poolN.size() << ",\n    \"workloads\": [\n";
  for (std::size_t i = 0; i < frag_rows.size(); ++i) {
    const auto& fr = frag_rows[i];
    json << "      {\"name\": \"" << fr.name << "\", \"ok\": " << json_bool(fr.ok)
         << ", \"terms\": " << fr.terms << ", \"cuts\": " << fr.cuts
         << ", \"max_fragment_width\": " << fr.max_fragment_width
         << ", \"baseline_tractable\": " << json_bool(fr.has_baseline)
         << ", \"serial_terms_per_sec\": " << fr.serial_terms_per_sec
         << ", \"optimized_terms_per_sec\": " << fr.optimized_terms_per_sec
         << ", \"speedup\": " << fr.speedup << "}" << (i + 1 < frag_rows.size() ? "," : "")
         << "\n";
  }
  json << "    ],\n    \"aggregate_speedup\": " << frag_speedup
       << ",\n    \"speedup_floor\": 4.0,\n    \"floor_enforced\": "
       << json_bool(poolN.size() >= 4)
       << ",\n    \"bit_identical_pools_1_2_8\": " << json_bool(frag_bit_identical)
       << "\n  },\n";
  json << "  \"qft_kernel\": {\"qubits\": " << qft.qubits << ", \"ops\": " << qft.ops
       << ", \"dense_seconds\": " << qft.dense_seconds
       << ", \"classified_seconds\": " << qft.classified_seconds
       << ", \"speedup\": " << qft.speedup << ", \"speedup_floor\": 1.5},\n";
  json << "  \"simd\": {\n    \"active\": \"" << qcut::simd_tier_name(initial_tier)
       << "\",\n    \"available\": [";
  {
    bool first = true;
    for (const qcut::SimdTier tier :
         {qcut::SimdTier::kScalar, qcut::SimdTier::kAvx2, qcut::SimdTier::kAvx512}) {
      if (qcut::simd_tier_available(tier)) {
        json << (first ? "" : ", ") << "\"" << qcut::simd_tier_name(tier) << "\"";
        first = false;
      }
    }
  }
  json << "],\n    \"tiers\": [\n";
  for (std::size_t i = 0; i < tier_rows.size(); ++i) {
    const auto& tr = tier_rows[i];
    json << "      {\"tier\": \"" << tr.tier << "\", \"kernel\": \"" << tr.kernel
         << "\", \"qubits\": " << tr.qubits << ", \"gb_per_sec\": " << tr.gb_per_sec << "}"
         << (i + 1 < tier_rows.size() ? "," : "") << "\n";
  }
  json << "    ],\n    \"avx2_dense_speedup_1q\": " << avx2_1q_speedup
       << ",\n    \"avx2_dense_speedup_2q\": " << avx2_2q_speedup
       << ",\n    \"speedup_floor\": 2.0,\n    \"floor_enforced\": " << json_bool(avx2_measured)
       << "\n  },\n";
  json << "  \"fusion\": {\"qubits\": " << fusion.qubits
       << ", \"ops_before\": " << fusion.ops_before << ", \"ops_after\": " << fusion.ops_after
       << ", \"fused_1q\": " << fusion.fused_1q
       << ", \"merged_diagonal\": " << fusion.merged_diagonal
       << ", \"unfused_seconds\": " << fusion.unfused_seconds
       << ", \"fused_seconds\": " << fusion.fused_seconds
       << ", \"speedup\": " << fusion.speedup
       << ", \"max_amp_diff\": " << fusion.max_amp_diff << "},\n";
  json << "  \"observability\": {\"qubits\": " << obs_bench.qubits
       << ", \"ops\": " << obs_bench.ops << ", \"reps\": " << obs_bench.reps
       << ", \"metrics_off_seconds\": " << obs_bench.off_seconds
       << ", \"metrics_on_seconds\": " << obs_bench.on_seconds
       << ", \"overhead_frac\": " << obs_bench.overhead_frac
       << ", \"overhead_ceiling\": 0.02},\n";
  json << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& kr = kernels[i];
    json << "    {\"name\": \"" << kr.name << "\", \"qubits\": " << kr.qubits
         << ", \"amps_per_sec\": " << kr.amps_per_sec << ", \"gb_per_sec\": " << kr.gb_per_sec
         << "}" << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  // Gates LAST, after the JSON record is on disk — a regressing run must
  // still leave its perf trajectory behind for diagnosis.
  if (rows[0].estimate != rows[1].estimate || rows[2].estimate != rows[3].estimate) {
    std::printf("ERROR: parallel estimate differs from single-thread estimate\n");
    return 1;
  }
  if (serial_shots > 0 && batched_shots > 0 && speedup < 10.0) {
    std::printf("ERROR: batched/serial speedup %.1fx is below the 10x acceptance floor\n",
                speedup);
    return 1;
  }
  if (!fragment_workloads_ok) {
    std::printf("ERROR: a fragment workload failed to plan or evaluate\n");
    return 1;
  }
  if (!frag_bit_identical) {
    std::printf("ERROR: fragment results are not bit-identical across pool sizes\n");
    return 1;
  }
  if (poolN.size() >= 4 && frag_speedup < 4.0) {
    std::printf("ERROR: fragment-path speedup %.1fx is below the 4x acceptance floor\n",
                frag_speedup);
    return 1;
  }
  if (qft.speedup < 1.5) {
    std::printf("ERROR: QFT kernel speedup %.2fx is below the 1.5x acceptance floor\n",
                qft.speedup);
    return 1;
  }
  if (avx2_measured && (avx2_1q_speedup < 2.0 || avx2_2q_speedup < 2.0)) {
    std::printf("ERROR: AVX2 dense GB/s (1q %.2fx, 2q %.2fx over scalar) is below the 2x "
                "acceptance floor\n",
                avx2_1q_speedup, avx2_2q_speedup);
    return 1;
  }
  if (fusion.ops_after >= fusion.ops_before || fusion.max_amp_diff > 1e-10) {
    std::printf("ERROR: fusion failed (ops %zu -> %zu, max amp diff %.2e)\n", fusion.ops_before,
                fusion.ops_after, fusion.max_amp_diff);
    return 1;
  }
  if (obs_bench.overhead_frac > 0.02) {
    std::printf("ERROR: metrics overhead %.2f%% on the hot kernels exceeds the 2%% ceiling\n",
                100.0 * obs_bench.overhead_frac);
    return 1;
  }
  return 0;
}
