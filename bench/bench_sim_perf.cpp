// Engine micro-benchmarks (google-benchmark): statevector gate throughput,
// shot execution of the Theorem-2 fragment circuits, exact branch
// enumeration, and end-to-end estimation. These document the substrate cost
// of the experiment harness (DESIGN.md row "engine perf").
#include <benchmark/benchmark.h>

#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/statevector.hpp"

namespace {

void BM_SingleQubitGate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qcut::Rng rng(1);
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  const qcut::Matrix h = qcut::gates::h();
  int q = 0;
  for (auto _ : state) {
    sv.apply(h, {q});
    q = (q + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * (qcut::Index{1} << n));
}
BENCHMARK(BM_SingleQubitGate)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_TwoQubitGate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qcut::Rng rng(2);
  qcut::Statevector sv(n, qcut::random_statevector(qcut::Index{1} << n, rng));
  const qcut::Matrix cx = qcut::gates::cx();
  int q = 0;
  for (auto _ : state) {
    sv.apply(cx, {q, (q + 1) % n});
    q = (q + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * (qcut::Index{1} << n));
}
BENCHMARK(BM_TwoQubitGate)->Arg(4)->Arg(8)->Arg(12);

void BM_NmeFragmentShot(benchmark::State& state) {
  // One stochastic shot of a Theorem-2 teleport fragment (3 qubits, 2
  // measurements, feed-forward).
  qcut::Rng rng(3);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);
  const qcut::Circuit& c = qpd.terms()[0].circuit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcut::run_shot(c, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NmeFragmentShot);

void BM_BranchEnumeration(benchmark::State& state) {
  qcut::Rng rng(4);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcut::exact_term_prob_one(qpd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchEnumeration);

void BM_EstimateAllocatedFast(benchmark::State& state) {
  const std::uint64_t shots = static_cast<std::uint64_t>(state.range(0));
  qcut::Rng rng(5);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);
  const auto probs = qcut::exact_term_prob_one(qpd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcut::estimate_allocated_fast(qpd, probs, shots, rng));
  }
  state.SetItemsProcessed(state.iterations() * shots);
}
BENCHMARK(BM_EstimateAllocatedFast)->Arg(1000)->Arg(5000);

void BM_EstimateAllocatedSlow(benchmark::State& state) {
  // Full per-shot statevector path, for the fast/slow cost ratio.
  const std::uint64_t shots = static_cast<std::uint64_t>(state.range(0));
  qcut::Rng rng(6);
  const qcut::NmeCut proto(0.6);
  const qcut::CutInput input{qcut::haar_unitary(2, rng), 'Z'};
  const qcut::Qpd qpd = proto.build_qpd(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcut::estimate_allocated(qpd, shots, rng));
  }
  state.SetItemsProcessed(state.iterations() * shots);
}
BENCHMARK(BM_EstimateAllocatedSlow)->Arg(200);

void BM_HaarUnitary(benchmark::State& state) {
  const qcut::Index n = state.range(0);
  qcut::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcut::haar_unitary(n, rng));
  }
}
BENCHMARK(BM_HaarUnitary)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
