// The m-distillation norm of Appendix A (Regula et al. [45, 46]) and the
// maximal LOCC overlap f(ψ) it determines for pure states (Eq. 29).
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// ∥ψ∥_[m] from Eq. (30): given the descending Schmidt coefficients of a
/// bipartite pure state, computes min over the split index j* (Eq. 31) of
/// ‖ζ_{1:j}‖₁ + √j ‖ζ_{j+1:d}‖₂.
Real distillation_norm(const std::vector<Real>& schmidt_coeffs, int m);

/// ∥ψ∥_[m] for a pure state directly (computes its Schmidt coefficients).
Real distillation_norm(const Vector& psi, int n_a, int n_b, int m);

/// f(ψ) = ½ ∥ψ∥²_[2] (Eq. 29): the maximal overlap of the pure state ψ with
/// the maximally entangled two-qubit state under LOCC.
Real max_overlap_pure(const Vector& psi, int n_a, int n_b);

}  // namespace qcut
