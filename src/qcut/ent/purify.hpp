// Purification of mixed states: any rank-r density operator ρ on dimension d
// extends to a pure state on d·r dimensions with Tr_anc |Ψ⟩⟨Ψ| = ρ. The
// mixed-resource wire cut uses this to feed mixed |Φk⟩-like resources into
// the (pure-state) simulator.
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// Purifies ρ onto `n_anc` ancilla qubits: returns |Ψ⟩ of dimension
/// dim(ρ)·2^{n_anc} with the system qubits as the high-order factor.
/// Requires 2^{n_anc} >= rank(ρ); throws otherwise.
Vector purify(const Matrix& rho, int n_anc);

/// Smallest ancilla count sufficient to purify ρ (by numerical rank).
int purification_ancillas(const Matrix& rho, Real rank_tol = 1e-10);

}  // namespace qcut
