#include "qcut/ent/measures.hpp"

#include <cmath>

#include "qcut/ent/distill_norm.hpp"
#include "qcut/ent/schmidt.hpp"
#include "qcut/linalg/decomp.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"
#include "qcut/linalg/ptrace.hpp"

namespace qcut {

Real f_phi_k(Real k) {
  QCUT_CHECK(k >= 0.0, "f_phi_k: k must be non-negative");
  return (k + 1.0) * (k + 1.0) / (2.0 * (k * k + 1.0));
}

Real max_overlap(const Vector& psi) {
  QCUT_CHECK(psi.size() == 4, "max_overlap: expects a two-qubit pure state");
  return max_overlap_pure(psi, 1, 1);
}

Real fully_entangled_fraction(const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 4 && rho.cols() == 4, "fully_entangled_fraction: two-qubit only");
  // Magic basis (Hill & Wootters): in this basis every maximally entangled
  // state is a REAL unit vector, so the maximization over maximally entangled
  // states becomes max_{v real, |v|=1} v^T Re(M) v = λ_max(Re M),
  // with M = ⟨e_i|ρ|e_j⟩.
  const Cplx i{0.0, 1.0};
  const Real r = kInvSqrt2;
  std::vector<Vector> magic = {
      {Cplx{r, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{r, 0}},         // |Φ+⟩
      {i * Cplx{r, 0}, Cplx{0, 0}, Cplx{0, 0}, -i * Cplx{r, 0}},  // i|Φ−⟩
      {Cplx{0, 0}, i * Cplx{r, 0}, i * Cplx{r, 0}, Cplx{0, 0}},   // i|Ψ+⟩
      {Cplx{0, 0}, Cplx{r, 0}, Cplx{-r, 0}, Cplx{0, 0}},          // |Ψ−⟩
  };
  Matrix m(4, 4);
  for (Index a = 0; a < 4; ++a) {
    for (Index b = 0; b < 4; ++b) {
      const Vector rb = rho * magic[static_cast<std::size_t>(b)];
      m(a, b) = inner(magic[static_cast<std::size_t>(a)], rb);
    }
  }
  // Real symmetric part.
  Matrix re(4, 4);
  for (Index a = 0; a < 4; ++a) {
    for (Index b = 0; b < 4; ++b) {
      re(a, b) = Cplx{0.5 * (m(a, b).real() + m(b, a).real()), 0.0};
    }
  }
  const EighResult eg = eigh(re, 1e-8);
  return eg.values.front();
}

Real entanglement_entropy(const Vector& psi, int n_a, int n_b) {
  const SchmidtResult s = schmidt_decompose(psi, n_a, n_b);
  Real h = 0.0;
  for (Real c : s.coeffs) {
    const Real p = c * c;
    if (p > 1e-15) {
      h -= p * std::log2(p);
    }
  }
  return h;
}

Real concurrence(const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 4 && rho.cols() == 4, "concurrence: two-qubit only");
  // Wootters: C = max(0, λ1 − λ2 − λ3 − λ4), λ_i descending square roots of
  // the eigenvalues of √ρ ρ̃ √ρ with ρ̃ = (Y⊗Y) ρ* (Y⊗Y).
  const Matrix yy = kron(pauli_y(), pauli_y());
  const Matrix rho_tilde = yy * rho.conj() * yy;

  // √ρ via eigendecomposition.
  const EighResult eg = eigh(rho, 1e-7);
  Matrix sqrt_rho(4, 4);
  for (std::size_t idx = 0; idx < eg.values.size(); ++idx) {
    const Real ev = std::max<Real>(0.0, eg.values[idx]);
    const Real s = std::sqrt(ev);
    for (Index r = 0; r < 4; ++r) {
      for (Index c = 0; c < 4; ++c) {
        sqrt_rho(r, c) += Cplx{s, 0.0} * eg.vectors(r, static_cast<Index>(idx)) *
                          std::conj(eg.vectors(c, static_cast<Index>(idx)));
      }
    }
  }
  const Matrix m = sqrt_rho * rho_tilde * sqrt_rho;
  const EighResult em = eigh(m, 1e-6);
  std::vector<Real> lam;
  for (Real v : em.values) {
    lam.push_back(std::sqrt(std::max<Real>(0.0, v)));
  }
  // em.values are descending already.
  const Real c = lam[0] - lam[1] - lam[2] - lam[3];
  return std::max<Real>(0.0, c);
}

Matrix partial_transpose_b(const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 4 && rho.cols() == 4, "partial_transpose_b: two-qubit only");
  Matrix out(4, 4);
  for (Index a = 0; a < 2; ++a) {
    for (Index b = 0; b < 2; ++b) {
      for (Index ap = 0; ap < 2; ++ap) {
        for (Index bp = 0; bp < 2; ++bp) {
          // ⟨a b|ρ^{T_B}|a' b'⟩ = ⟨a b'|ρ|a' b⟩
          out(a * 2 + b, ap * 2 + bp) = rho(a * 2 + bp, ap * 2 + b);
        }
      }
    }
  }
  return out;
}

Real negativity(const Matrix& rho) {
  const Matrix pt = partial_transpose_b(rho);
  const EighResult eg = eigh(pt, 1e-7);
  Real neg = 0.0;
  for (Real v : eg.values) {
    if (v < 0.0) {
      neg -= v;
    }
  }
  return neg;
}

}  // namespace qcut
