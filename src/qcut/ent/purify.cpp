#include "qcut/ent/purify.hpp"

#include <cmath>

#include "qcut/linalg/decomp.hpp"

namespace qcut {

Vector purify(const Matrix& rho, int n_anc) {
  QCUT_CHECK(rho.square(), "purify: density operator must be square");
  QCUT_CHECK(n_anc >= 0 && n_anc <= 10, "purify: unsupported ancilla count");
  const Index d = rho.rows();
  const Index da = Index{1} << n_anc;

  const EighResult eg = eigh(rho, 1e-7);
  // Count the eigenvalues that carry weight.
  Index rank = 0;
  for (Real v : eg.values) {
    if (v > 1e-12) {
      ++rank;
    }
    QCUT_CHECK(v > -1e-8, "purify: input is not positive semidefinite");
  }
  QCUT_CHECK(rank <= da, "purify: ancilla space too small for the state's rank");

  // |Ψ⟩ = Σ_i √λ_i |v_i⟩ ⊗ |i⟩  (system = high-order factor).
  Vector psi(static_cast<std::size_t>(d * da), Cplx{0.0, 0.0});
  for (Index i = 0; i < rank; ++i) {
    const Real lam = eg.values[static_cast<std::size_t>(i)];
    if (lam <= 1e-12) {
      continue;
    }
    const Real w = std::sqrt(lam);
    for (Index s = 0; s < d; ++s) {
      psi[static_cast<std::size_t>(s * da + i)] += Cplx{w, 0.0} * eg.vectors(s, i);
    }
  }
  // Normalize exactly (trace may differ from 1 by rounding).
  return normalized(psi);
}

int purification_ancillas(const Matrix& rho, Real rank_tol) {
  const EighResult eg = eigh(rho, 1e-7);
  Index rank = 0;
  for (Real v : eg.values) {
    if (v > rank_tol) {
      ++rank;
    }
  }
  int n = 0;
  while ((Index{1} << n) < std::max<Index>(rank, 1)) {
    ++n;
  }
  return n;
}

}  // namespace qcut
