#include "qcut/ent/distill_norm.hpp"

#include <algorithm>
#include <cmath>

#include "qcut/ent/schmidt.hpp"

namespace qcut {

Real distillation_norm(const std::vector<Real>& schmidt_coeffs, int m) {
  QCUT_CHECK(m >= 1, "distillation_norm: m must be positive");
  QCUT_CHECK(!schmidt_coeffs.empty(), "distillation_norm: empty coefficient list");
  std::vector<Real> zeta = schmidt_coeffs;
  std::sort(zeta.begin(), zeta.end(), std::greater<Real>());
  const int d = static_cast<int>(zeta.size());

  // Eq. (31): j* = argmin_{1<=j<=m} (1/j) ‖ζ↓_{m-j+1 : d}‖₂².
  auto tail_sq = [&zeta, d](int from /*1-based*/) {
    Real s = 0.0;
    for (int i = std::max(1, from); i <= d; ++i) {
      s += zeta[static_cast<std::size_t>(i - 1)] * zeta[static_cast<std::size_t>(i - 1)];
    }
    return s;
  };
  int j_star = 1;
  Real best = tail_sq(m - 1 + 1) / 1.0;
  for (int j = 2; j <= m; ++j) {
    const Real val = tail_sq(m - j + 1) / static_cast<Real>(j);
    if (val < best) {
      best = val;
      j_star = j;
    }
  }

  // Eq. (30): ‖ζ↓_{1:j*}‖₁ + √j* ‖ζ↓_{j*+1:d}‖₂.
  Real head = 0.0;
  for (int i = 1; i <= std::min(j_star, d); ++i) {
    head += zeta[static_cast<std::size_t>(i - 1)];
  }
  const Real tail = std::sqrt(tail_sq(j_star + 1));
  return head + std::sqrt(static_cast<Real>(j_star)) * tail;
}

Real distillation_norm(const Vector& psi, int n_a, int n_b, int m) {
  const SchmidtResult s = schmidt_decompose(psi, n_a, n_b);
  return distillation_norm(s.coeffs, m);
}

Real max_overlap_pure(const Vector& psi, int n_a, int n_b) {
  const Real nrm = distillation_norm(psi, n_a, n_b, 2);
  return 0.5 * nrm * nrm;
}

}  // namespace qcut
