// Entanglement measures for two-qubit states.
//
// The paper's central quantity is f(ρ): the maximal overlap with the
// maximally entangled state Φ under LOCC (Eq. 1). We provide:
//   * f(Φk) in closed form (Eq. 10),
//   * f for arbitrary pure states via the 2-distillation norm (Appendix A),
//   * the fully entangled fraction — for two-qubit states this equals the
//     singlet fraction max_Φ' ⟨Φ'|ρ|Φ'⟩ over maximally entangled Φ', which
//     lower-bounds f(ρ) for mixed states and coincides with it for the pure
//     and Bell-diagonal states used in the experiments,
// plus standard companions (entropy, concurrence, negativity).
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// f(Φk) = (k+1)² / (2(k²+1)) — Eq. (10).
Real f_phi_k(Real k);

/// f for an arbitrary two-qubit pure state via the Schmidt coefficients
/// (Appendix A); equals f_phi_k(schmidt_k(psi)).
Real max_overlap(const Vector& psi);

/// Fully entangled fraction F(ρ) = max_{U_A,U_B} ⟨Φ|(U_A⊗U_B)ρ(U_A⊗U_B)†|Φ⟩,
/// computed as the largest eigenvalue of Re(ρ) in the magic (Bell) basis
/// (Badziag et al. 2000). For pure and Bell-diagonal two-qubit states this
/// equals the paper's f(ρ); in general f(ρ) ≥ F(ρ).
Real fully_entangled_fraction(const Matrix& rho);

/// Entanglement entropy S(Tr_B |ψ⟩⟨ψ|) in bits of a bipartite pure state.
Real entanglement_entropy(const Vector& psi, int n_a, int n_b);

/// Wootters concurrence of a two-qubit density operator.
Real concurrence(const Matrix& rho);

/// Negativity: sum of |negative eigenvalues| of the partial transpose over
/// subsystem B of a two-qubit state.
Real negativity(const Matrix& rho);

/// Partial transpose over the second qubit of a two-qubit operator.
Matrix partial_transpose_b(const Matrix& rho);

}  // namespace qcut
