#include "qcut/ent/schmidt.hpp"

#include "qcut/linalg/decomp.hpp"
#include "qcut/linalg/kron.hpp"

namespace qcut {

SchmidtResult schmidt_decompose(const Vector& psi, int n_a, int n_b) {
  QCUT_CHECK(n_a >= 1 && n_b >= 1, "schmidt_decompose: both sides need at least one qubit");
  const Index da = Index{1} << n_a;
  const Index db = Index{1} << n_b;
  QCUT_CHECK(static_cast<Index>(psi.size()) == da * db, "schmidt_decompose: dimension mismatch");

  // Reshape: psi[a*db + b] = M(a, b)  (big-endian: A holds the high bits).
  Matrix m(da, db);
  for (Index a = 0; a < da; ++a) {
    for (Index b = 0; b < db; ++b) {
      m(a, b) = psi[static_cast<std::size_t>(a * db + b)];
    }
  }
  SvdResult f = svd(m);

  SchmidtResult out;
  const Index r = std::min(da, db);
  out.coeffs.assign(f.singular.begin(), f.singular.begin() + r);
  out.basis_a = Matrix(da, r);
  out.basis_b = Matrix(db, r);
  for (Index i = 0; i < r; ++i) {
    for (Index a = 0; a < da; ++a) {
      out.basis_a(a, i) = f.u(a, i);
    }
    // M = U S V†  =>  M(a,b) = Σ_i s_i U(a,i) conj(V(b,i)), so the B-side
    // Schmidt vector is the conjugated V column.
    for (Index b = 0; b < db; ++b) {
      out.basis_b(b, i) = std::conj(f.v(b, i));
    }
  }
  return out;
}

int schmidt_rank(const Vector& psi, int n_a, int n_b, Real tol) {
  const SchmidtResult s = schmidt_decompose(psi, n_a, n_b);
  int rank = 0;
  for (Real c : s.coeffs) {
    rank += (c > tol) ? 1 : 0;
  }
  return rank;
}

Real schmidt_k(const Vector& psi) {
  QCUT_CHECK(psi.size() == 4, "schmidt_k: expects a two-qubit state");
  const SchmidtResult s = schmidt_decompose(psi, 1, 1);
  QCUT_CHECK(s.coeffs[0] > 0.0, "schmidt_k: zero state");
  return s.coeffs[1] / s.coeffs[0];
}

Vector schmidt_reconstruct(const SchmidtResult& s) {
  const Index da = s.basis_a.rows();
  const Index db = s.basis_b.rows();
  Vector psi(static_cast<std::size_t>(da * db), Cplx{0.0, 0.0});
  for (std::size_t i = 0; i < s.coeffs.size(); ++i) {
    for (Index a = 0; a < da; ++a) {
      for (Index b = 0; b < db; ++b) {
        psi[static_cast<std::size_t>(a * db + b)] +=
            Cplx{s.coeffs[i], 0.0} * s.basis_a(a, static_cast<Index>(i)) *
            s.basis_b(b, static_cast<Index>(i));
      }
    }
  }
  return psi;
}

}  // namespace qcut
