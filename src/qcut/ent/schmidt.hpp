// Schmidt decomposition of bipartite pure states (Eq. 3 of the paper).
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

struct SchmidtResult {
  /// Non-negative Schmidt coefficients, descending; squared values sum to 1.
  std::vector<Real> coeffs;
  /// Columns are the A-side Schmidt vectors |ξ_i⟩.
  Matrix basis_a;
  /// Columns are the B-side Schmidt vectors |ζ_i⟩.
  Matrix basis_b;
};

/// Decomposes |ψ⟩ ∈ A ⊗ B with dim(A) = 2^{n_a}, dim(B) = 2^{n_b}:
/// |ψ⟩ = Σ_i coeffs[i] |ξ_i⟩ ⊗ |ζ_i⟩.
SchmidtResult schmidt_decompose(const Vector& psi, int n_a, int n_b);

/// Schmidt rank at tolerance `tol`.
int schmidt_rank(const Vector& psi, int n_a, int n_b, Real tol = 1e-10);

/// For a two-qubit pure state: the Schmidt parameter k = p1/p0 in Eq. (4)
/// (ratio of smaller to larger coefficient, in [0, 1]).
Real schmidt_k(const Vector& psi);

/// Reconstructs the state from a Schmidt decomposition (for tests).
Vector schmidt_reconstruct(const SchmidtResult& s);

}  // namespace qcut
