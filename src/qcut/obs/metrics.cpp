#include "qcut/obs/metrics.hpp"

#include <cstdlib>
#include <cstring>

namespace qcut {
namespace obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters{};
thread_local MetricsLocal* t_sink = nullptr;
}  // namespace detail

namespace {

// Declaration order of obs::Counter — counter_name and metrics_json index
// straight into this table.
constexpr const char* kCounterNames[kCounterCount] = {
    "branch_cache_hit",
    "branch_cache_miss",
    "skeleton_cache_hit",
    "skeleton_cache_miss",
    "fusion_ops_before",
    "fusion_ops_after",
    "fusion_fused_1q",
    "fusion_merged_diagonal",
    "fusion_merged_monomial",
    "fusion_dropped_identity",
    "dispatch_dense_1q",
    "dispatch_dense_2q",
    "dispatch_generic",
    "dispatch_diagonal",
    "dispatch_sparse_phase",
    "dispatch_permutation",
    "pool_tasks",
    "pool_queue_wait_ns",
    "pool_busy_ns",
    "branches_enumerated",
    "branches_pruned",
    "fragment_units",
    "fragment_prefix_runs",
    "shots_sampled",
    "batches_run",
    "plan_nodes_explored",
    "plan_cache_hit",
    "plan_cache_miss",
    "eval_cache_hit",
    "eval_cache_miss",
    "svc_requests",
    "svc_coalesced",
    "svc_rejected",
    "deadlines_exceeded",
    "cancellations",
    "faults_injected",
};

/// Reads QCUT_METRICS once at process start. Runs during this translation
/// unit's dynamic initialization; g_metrics_enabled itself is constant-
/// initialized to true, so counts arriving before (or without) the env read
/// are merely counted — never undefined behavior.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("QCUT_METRICS");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0)) {
      detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

const char* counter_name(Counter c) noexcept {
  const int i = static_cast<int>(c);
  return (i >= 0 && i < kCounterCount) ? kCounterNames[i] : "unknown";
}

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsSnapshot metrics_snapshot() noexcept {
  MetricsSnapshot snap;
  for (int i = 0; i < kCounterCount; ++i) {
    snap.values[static_cast<std::size_t>(i)] =
        detail::g_counters[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) noexcept {
  MetricsSnapshot d;
  for (int i = 0; i < kCounterCount; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    d.values[s] = after.values[s] >= before.values[s] ? after.values[s] - before.values[s] : 0;
  }
  return d;
}

void metrics_reset() noexcept {
  for (auto& c : detail::g_counters) {
    c.store(0, std::memory_order_relaxed);
  }
}

std::string metrics_json(const MetricsSnapshot& snap, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
  std::string out = "{\n";
  for (int i = 0; i < kCounterCount; ++i) {
    out += inner;
    out += '"';
    out += kCounterNames[i];
    out += "\": ";
    out += std::to_string(snap.values[static_cast<std::size_t>(i)]);
    out += i + 1 < kCounterCount ? ",\n" : "\n";
  }
  out += pad;
  out += '}';
  return out;
}

}  // namespace obs
}  // namespace qcut
