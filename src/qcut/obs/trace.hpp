// Opt-in scoped tracing emitting Chrome trace-event JSON.
//
// TraceSpan is an RAII complete-event ("ph": "X"): construction stamps the
// start, destruction the duration, and the event lands in a *per-thread*
// buffer — no lock, no allocation beyond the buffer's amortized growth, no
// cross-thread contention on the hot paths. Because spans are strictly
// scoped, the events of one thread always nest properly (a property
// test_obs.cpp checks on the written file).
//
// When tracing is inactive (the default) a span is one relaxed atomic load
// and a branch; nothing is recorded. Activate with start_tracing() and
// persist with write_trace(path), which stops tracing, drains every thread's
// buffer (including buffers of threads that have already exited), and writes
// a JSON file loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Env knob: QCUT_TRACE=<path> starts tracing at process start and writes the
// trace to <path> at normal process exit — tracing without touching code.
//
// Span names must have static storage duration (string literals): the buffer
// stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace qcut {
namespace obs {

namespace detail {
extern std::atomic<bool> g_tracing;

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t arg, bool has_arg) noexcept;
std::uint64_t now_ns() noexcept;
}  // namespace detail

inline bool tracing_active() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Clears any previously collected events and starts recording.
void start_tracing();

/// Stops recording; collected events are kept until written or restarted.
void stop_tracing() noexcept;

/// Stops tracing, writes every recorded event to `path` as Chrome trace-event
/// JSON, and clears the buffers. Throws qcut::Error when the file cannot be
/// written.
void write_trace(const std::string& path);

/// Number of events currently buffered across all threads (tests).
std::size_t trace_event_count();

/// RAII scoped span. `name` must be a string literal (static storage).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (tracing_active()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }

  /// With one numeric argument, emitted as {"args": {"n": arg}} — a term or
  /// unit index, a batch count, ...
  TraceSpan(const char* name, std::uint64_t arg) noexcept : TraceSpan(name) {
    arg_ = arg;
    has_arg_ = true;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, detail::now_ns(), arg_, has_arg_);
    }
  }

 private:
  const char* name_ = nullptr;  ///< null = span was constructed inactive
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace obs
}  // namespace qcut
