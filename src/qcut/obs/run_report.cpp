#include "qcut/obs/run_report.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <sstream>
#include <thread>

#include "qcut/sim/simd_dispatch.hpp"

namespace qcut {
namespace obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::string fmt_real(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Ratio with a well-defined 0 when the denominator is empty.
double safe_ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

struct JsonWriter {
  std::ostringstream os;
  std::string pad;    ///< current indentation
  bool first = true;  ///< no comma before the next member

  explicit JsonWriter(int indent) : pad(static_cast<std::size_t>(indent), ' ') {}

  void open(const char* key = nullptr) {
    sep();
    os << pad;
    if (key != nullptr) os << '"' << key << "\": ";
    os << "{\n";
    pad += "  ";
    first = true;
  }

  void close() {
    pad.resize(pad.size() - 2);
    os << '\n' << pad << '}';
    first = false;
  }

  void field(const char* key, const std::string& value) {
    sep();
    os << pad << '"' << key << "\": \"" << json_escape(value) << '"';
  }

  void field(const char* key, std::uint64_t value) {
    sep();
    os << pad << '"' << key << "\": " << value;
  }

  void field(const char* key, double value) {
    sep();
    os << pad << '"' << key << "\": " << fmt_real(value);
  }

  void field(const char* key, bool value) {
    sep();
    os << pad << '"' << key << "\": " << (value ? "true" : "false");
  }

  void sep() {
    if (!first) os << ",\n";
    first = false;
  }
};

}  // namespace

Provenance provenance() {
  Provenance p;
#ifdef QCUT_GIT_SHA
  p.git_sha = QCUT_GIT_SHA;
#else
  p.git_sha = "unknown";
#endif
#if defined(__VERSION__)
  p.compiler = __VERSION__;
#else
  p.compiler = "unknown";
#endif
#ifdef NDEBUG
  p.build_type = "release";
#else
  p.build_type = "debug";
#endif
  p.simd_tier = simd_tier_name(active_simd_tier());
  p.hardware_threads = std::thread::hardware_concurrency();
  p.timestamp_utc = utc_timestamp();
  return p;
}

std::string provenance_json(int indent) {
  const Provenance p = provenance();
  JsonWriter w(indent);
  // The opening brace sits at the caller's cursor, not at `indent`.
  w.open();
  w.os.str("");
  w.os << "{\n";
  w.field("git_sha", p.git_sha);
  w.field("compiler", p.compiler);
  w.field("build_type", p.build_type);
  w.field("simd_tier", p.simd_tier);
  w.field("hardware_threads", static_cast<std::uint64_t>(p.hardware_threads));
  w.field("timestamp_utc", p.timestamp_utc);
  w.close();
  return w.os.str();
}

std::string RunReport::to_json(int indent) const {
  const MetricsSnapshot& c = counters;
  const std::uint64_t bc_hit = c[Counter::kBranchCacheHit];
  const std::uint64_t bc_miss = c[Counter::kBranchCacheMiss];
  const std::uint64_t sk_hit = c[Counter::kSkeletonCacheHit];
  const std::uint64_t sk_miss = c[Counter::kSkeletonCacheMiss];
  const std::uint64_t ops_before = c[Counter::kFusionOpsBefore];
  const std::uint64_t ops_after = c[Counter::kFusionOpsAfter];
  const double wall_s = static_cast<double>(wall_time_ns) * 1e-9;

  JsonWriter w(indent);
  w.open();
  w.os.str("");
  w.os << "{\n";

  {
    // provenance_json re-indents itself; splice it in as a raw member.
    w.sep();
    w.os << w.pad << "\"provenance\": "
         << provenance_json(static_cast<int>(w.pad.size()));
  }

  w.open("config");
  if (!request_id.empty()) {
    w.field("request_id", request_id);
  }
  w.field("backend", backend);
  w.field("simd_tier", simd_tier);
  w.field("pool_threads", static_cast<std::uint64_t>(pool_threads));
  w.field("metrics_enabled", metrics_enabled);
  w.field("plan_cuts", static_cast<std::uint64_t>(plan_cuts));
  w.field("max_fragment_width", static_cast<std::uint64_t>(max_fragment_width));
  w.close();

  w.open("shots");
  w.field("kappa", static_cast<double>(kappa));
  w.field("sampled", shots_sampled);
  w.field("budget_kappa2_over_eps2", static_cast<double>(shots_budget));
  w.field("batches", c[Counter::kBatchesRun]);
  w.close();

  w.open("cache");
  w.field("branch_hit", bc_hit);
  w.field("branch_miss", bc_miss);
  w.field("branch_hit_rate",
          safe_ratio(static_cast<double>(bc_hit), static_cast<double>(bc_hit + bc_miss)));
  w.field("skeleton_hit", sk_hit);
  w.field("skeleton_miss", sk_miss);
  w.field("skeleton_hit_rate",
          safe_ratio(static_cast<double>(sk_hit), static_cast<double>(sk_hit + sk_miss)));
  // Cross-request caches (service layer); identically zero for in-process
  // runs that never touch src/qcut/svc/.
  w.field("plan_hit", c[Counter::kPlanCacheHit]);
  w.field("plan_miss", c[Counter::kPlanCacheMiss]);
  w.field("eval_hit", c[Counter::kEvalCacheHit]);
  w.field("eval_miss", c[Counter::kEvalCacheMiss]);
  w.close();

  w.open("fusion");
  w.field("ops_before", ops_before);
  w.field("ops_after", ops_after);
  w.field("reduction",
          safe_ratio(static_cast<double>(ops_before - (ops_after <= ops_before ? ops_after : ops_before)),
                     static_cast<double>(ops_before)));
  w.field("fused_1q", c[Counter::kFusionFused1q]);
  w.field("merged_diagonal", c[Counter::kFusionMergedDiagonal]);
  w.field("merged_monomial", c[Counter::kFusionMergedMonomial]);
  w.field("dropped_identity", c[Counter::kFusionDroppedIdentity]);
  w.close();

  w.open("kernels");
  w.field("dense_1q", c[Counter::kDispatchDense1q]);
  w.field("dense_2q", c[Counter::kDispatchDense2q]);
  w.field("generic", c[Counter::kDispatchGeneric]);
  w.field("diagonal", c[Counter::kDispatchDiagonal]);
  w.field("sparse_phase", c[Counter::kDispatchSparsePhase]);
  w.field("permutation", c[Counter::kDispatchPermutation]);
  w.close();

  w.open("pool");
  w.field("tasks", c[Counter::kPoolTasks]);
  w.field("queue_wait_ns", c[Counter::kPoolQueueWaitNanos]);
  w.field("busy_ns", c[Counter::kPoolBusyNanos]);
  // Fraction of worker-seconds spent running tasks during this run's wall
  // time; >1 cannot happen, ~0 means the run never touched the pool.
  w.field("utilization",
          safe_ratio(static_cast<double>(c[Counter::kPoolBusyNanos]),
                     wall_s > 0.0 ? static_cast<double>(wall_time_ns) *
                                        static_cast<double>(pool_threads)
                                  : 0.0));
  w.close();

  w.open("branches");
  w.field("enumerated", c[Counter::kBranchesEnumerated]);
  w.field("pruned", c[Counter::kBranchesPruned]);
  w.close();

  w.open("fragment");
  w.field("units", c[Counter::kFragmentUnits]);
  w.field("prefix_runs", c[Counter::kFragmentPrefixRuns]);
  w.close();

  w.field("wall_time_ns", wall_time_ns);

  {
    w.sep();
    w.os << w.pad << "\"counters\": "
         << metrics_json(counters, static_cast<int>(w.pad.size()));
  }

  w.close();
  return w.os.str();
}

}  // namespace obs
}  // namespace qcut
