// The always-on metrics registry: a fixed set of process-wide atomic
// counters, one relaxed fetch_add per event on the hot paths.
//
// Design constraints, in order:
//  1. The *disabled* path must be almost free — one relaxed atomic<bool> load
//     and a predicted branch — because the counters sit inside the statevector
//     kernel dispatch and the branch-enumeration loops. bench_sim_perf gates
//     the overhead at <= 2% on the hot kernels.
//  2. Counting must never perturb results: instrumentation only ever *reads*
//     simulation state, so estimates are bit-identical with metrics on or off
//     (pinned by test_obs.cpp).
//  3. Zero dependencies: <atomic>, <array>, <cstdint>, <string> only.
//
// The registry is process-global. Snapshots are cheap (kCounterCount relaxed
// loads); callers that want per-run numbers take a snapshot before and after
// and subtract (metrics_delta) — see obs/run_report.hpp. Concurrent runs in
// one process therefore see each other's counts; the engine is run-at-a-time
// today, and the service layer (ROADMAP item 1) will scope registries per
// request when that changes.
//
// Knobs: metrics start enabled; QCUT_METRICS=0 (or "off") disables them at
// process start, set_metrics_enabled() toggles at run time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace qcut {
namespace obs {

enum class Counter : int {
  // BranchCache (exec/branch_cache.cpp): per-term exact-probability lookups.
  kBranchCacheHit = 0,
  kBranchCacheMiss,
  // SplitSkeletonCache (cut/fragment.cpp): split-structure lookups.
  kSkeletonCacheHit,
  kSkeletonCacheMiss,
  // Gate fusion (sim/fusion.cpp): every fuse_range call, spliced and
  // fragment paths alike.
  kFusionOpsBefore,
  kFusionOpsAfter,
  kFusionFused1q,
  kFusionMergedDiagonal,
  kFusionMergedMonomial,
  kFusionDroppedIdentity,
  // Statevector kernel dispatch (sim/statevector.cpp): one count per
  // Statevector::apply, keyed by the GateStructure path taken.
  kDispatchDense1q,
  kDispatchDense2q,
  kDispatchGeneric,
  kDispatchDiagonal,
  kDispatchSparsePhase,
  kDispatchPermutation,
  // ThreadPool (common/threadpool.cpp).
  kPoolTasks,
  kPoolQueueWaitNanos,
  kPoolBusyNanos,
  // Branch enumeration (sim/executor.cpp): branches surviving each
  // measure/reset split vs. candidates dropped by the prune tolerance.
  kBranchesEnumerated,
  kBranchesPruned,
  // Fragment evaluation (cut/fragment.cpp).
  kFragmentUnits,
  kFragmentPrefixRuns,
  // Execution engine (exec/engine.cpp).
  kShotsSampled,
  kBatchesRun,
  // Cut planner (plan/cut_planner.cpp): search-tree nodes visited.
  kPlanNodesExplored,
  // Service layer (src/qcut/svc/): cross-request caches and request flow.
  kPlanCacheHit,      ///< plan served from the cross-request plan cache
  kPlanCacheMiss,     ///< plan search ran
  kEvalCacheHit,      ///< QPD + warm backend reused across requests
  kEvalCacheMiss,     ///< QPD built and backend constructed fresh
  kSvcRequests,       ///< estimation requests admitted
  kSvcCoalesced,      ///< requests answered by attaching to an in-flight twin
  kSvcRejected,       ///< requests rejected by admission control (retry-after)
  // Request lifecycle (common/cancel.cpp, common/fault.cpp).
  kDeadlinesExceeded,  ///< polls that tripped a request deadline
  kCancellations,      ///< polls that observed a cancelled token
  kFaultsInjected,     ///< fault-injection hooks that fired (QCUT_FAULT)
  kCount
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);

/// Stable snake_case name of a counter — the JSON key RunReport emits.
const char* counter_name(Counter c) noexcept;

/// Per-thread counter sink for request-scoped accounting (see
/// ScopedMetricsSink). Plain integers — a sink is only ever written by the
/// thread it is installed on.
struct MetricsLocal {
  std::array<std::uint64_t, kCounterCount> values{};
};

namespace detail {
// Exposed only so the count() fast path can inline; not part of the API.
extern std::atomic<bool> g_metrics_enabled;
extern std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters;
extern thread_local MetricsLocal* t_sink;
}  // namespace detail

inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Adds `n` to counter `c`. The disabled path is one relaxed load, one
/// thread-local load, and two predicted branches; the enabled path adds one
/// relaxed fetch_add (plus a plain add when a per-thread sink is installed).
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (MetricsLocal* sink = detail::t_sink) {
    sink->values[static_cast<std::size_t>(c)] += n;
  }
  if (metrics_enabled()) {
    detail::g_counters[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
}

void set_metrics_enabled(bool enabled) noexcept;

/// Point-in-time copy of every counter.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
};

MetricsSnapshot metrics_snapshot() noexcept;

/// after - before, per counter (saturating at 0 should a reset intervene).
MetricsSnapshot metrics_delta(const MetricsSnapshot& before, const MetricsSnapshot& after) noexcept;

/// Zeroes every counter (tests; not used on production paths).
void metrics_reset() noexcept;

/// RAII per-thread counter scope: while alive, every obs::count issued by
/// the *installing thread* is additionally recorded into a private local
/// array, regardless of the global enable switch. The service layer wraps
/// each request in one of these — requests execute entirely on one pool
/// worker (the engine and fragment evaluator fall back inline on their own
/// workers), so the sink captures exactly that request's counters even when
/// many requests run concurrently against the shared global registry.
/// Scopes nest (the previous sink is restored on destruction); counts from
/// OTHER threads are not captured — install only around single-threaded
/// sections.
class ScopedMetricsSink {
 public:
  ScopedMetricsSink() noexcept : prev_(detail::t_sink) { detail::t_sink = &local_; }
  ~ScopedMetricsSink() { detail::t_sink = prev_; }

  ScopedMetricsSink(const ScopedMetricsSink&) = delete;
  ScopedMetricsSink& operator=(const ScopedMetricsSink&) = delete;

  /// The counts captured so far, as a snapshot.
  MetricsSnapshot snapshot() const noexcept {
    MetricsSnapshot s;
    s.values = local_.values;
    return s;
  }

 private:
  MetricsLocal local_;
  MetricsLocal* prev_;
};

/// {"branch_cache_hit": 1, ...} — every counter, in declaration order.
std::string metrics_json(const MetricsSnapshot& snap, int indent = 0);

}  // namespace obs
}  // namespace qcut
