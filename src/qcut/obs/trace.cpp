#include "qcut/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "qcut/common/error.hpp"

namespace qcut {
namespace obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name;  ///< static storage (string literal) by contract
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t arg;
  bool has_arg;
};

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  int tid = 0;
};

// Registry of live per-thread buffers plus the events of threads that have
// already exited. The mutex guards registration, retirement, and draining —
// never the hot append path (each thread appends only to its own buffer).
struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  int next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may retire at any point of exit
  return *r;
}

/// Per-thread buffer holder: registers on first use, moves its events into
/// the retired pool when the thread exits (so a ThreadPool destroyed before
/// write_trace loses nothing).
struct TlsHolder {
  ThreadBuffer buf;

  TlsHolder() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    buf.tid = r.next_tid++;
    r.live.push_back(&buf);
  }

  ~TlsHolder() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < r.live.size(); ++i) {
      if (r.live[i] == &buf) {
        r.live.erase(r.live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    r.retired.insert(r.retired.end(), buf.events.begin(), buf.events.end());
  }
};

ThreadBuffer& local_buffer() {
  thread_local TlsHolder holder;
  return holder.buf;
}

std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

void drain_events_locked(Registry& r, std::vector<std::pair<int, TraceEvent>>& out) {
  for (ThreadBuffer* tb : r.live) {
    for (const TraceEvent& e : tb->events) {
      out.emplace_back(tb->tid, e);
    }
    tb->events.clear();
  }
  for (const TraceEvent& e : r.retired) {
    out.emplace_back(0, e);  // tid 0: thread already gone
  }
  r.retired.clear();
}

/// QCUT_TRACE=<path>: trace the whole process, write at normal exit.
struct EnvInit {
  std::string path;

  EnvInit() {
    const char* env = std::getenv("QCUT_TRACE");
    if (env != nullptr && env[0] != '\0') {
      path = env;
      start_tracing();
      std::atexit(&EnvInit::at_exit);
    }
  }

  static void at_exit() {
    // Defensive about write errors — exiting is not the moment to throw.
    try {
      write_trace(env_init().path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "QCUT_TRACE: failed to write trace: %s\n", e.what());
    }
  }

  static EnvInit& env_init() {
    // Leaked on purpose (like the Registry): the ctor registers at_exit, so a
    // destructible static would be torn down *before* at_exit runs — which
    // would leave `path` reading freed memory.
    static EnvInit* init = new EnvInit;
    return *init;
  }
};

// Force construction at load time so QCUT_TRACE covers main() from the top.
const EnvInit& g_env_init = EnvInit::env_init();

}  // namespace

namespace detail {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) -
         process_epoch_ns();
}

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t arg, bool has_arg) noexcept {
  // A span that straddles stop_tracing still records: dropping it would leave
  // a half-open nesting stack in the file. The next start_tracing clears all.
  try {
    local_buffer().events.push_back(
        {name, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0, arg, has_arg});
  } catch (...) {
    // Out of memory while tracing: drop the event, never the program.
  }
}

}  // namespace detail

void start_tracing() {
  (void)process_epoch_ns();  // pin the epoch before the first span
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (ThreadBuffer* tb : r.live) {
      tb->events.clear();
    }
    r.retired.clear();
  }
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() noexcept {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = r.retired.size();
  for (const ThreadBuffer* tb : r.live) {
    n += tb->events.size();
  }
  return n;
}

void write_trace(const std::string& path) {
  stop_tracing();
  std::vector<std::pair<int, TraceEvent>> events;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    drain_events_locked(r, events);
  }

  std::ofstream out(path);
  QCUT_CHECK(out.good(), "write_trace: cannot open '" + path + "' for writing");
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"qcut\"}}";
  char buf[256];
  for (const auto& [tid, e] : events) {
    // Timestamps are microseconds in the trace-event format; three decimals
    // keep full nanosecond resolution (the nesting test relies on it).
    std::snprintf(buf, sizeof(buf),
                  ",\n    {\"name\": \"%s\", \"cat\": \"qcut\", \"ph\": \"X\", \"pid\": 1, "
                  "\"tid\": %d, \"ts\": %llu.%03llu, \"dur\": %llu.%03llu",
                  e.name, tid, static_cast<unsigned long long>(e.start_ns / 1000),
                  static_cast<unsigned long long>(e.start_ns % 1000),
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out << buf;
    if (e.has_arg) {
      out << ", \"args\": {\"n\": " << e.arg << "}";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  out.close();
  QCUT_CHECK(out.good(), "write_trace: failed writing '" + path + "'");
}

}  // namespace obs
}  // namespace qcut
