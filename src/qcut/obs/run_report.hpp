// Machine-readable run accounting: where the shots, branches, cache hits and
// wall time of one estimation actually went.
//
// Two pieces:
//  * Provenance — who produced a number: git SHA (stamped at configure time),
//    compiler, build type, active SIMD tier, hardware threads, and a UTC
//    timestamp. Every bench JSON embeds provenance_json() so perf
//    trajectories across PRs stay attributable to a build.
//  * RunReport — the paper's resource-accounting argument made observable:
//    shots sampled vs the κ²/ε² budget, branch/skeleton cache hit rates,
//    fusion op reduction, per-structure kernel dispatch counts, thread-pool
//    task count / queue wait / utilization, and branches enumerated vs
//    pruned. run_qpd_estimate fills one per run (a metrics-registry delta
//    over the run), PlannedExecutor adds the plan's predicted budget, and
//    example_auto_cut --report writes it to disk.
//
// The counter delta is taken on the process-global registry, so two runs
// estimating concurrently in one process see each other's counts — fine for
// today's run-at-a-time drivers; the service layer will scope registries.
#pragma once

#include <cstdint>
#include <string>

#include "qcut/common/types.hpp"
#include "qcut/obs/metrics.hpp"

namespace qcut {
namespace obs {

struct Provenance {
  std::string git_sha;            ///< configure-time `git rev-parse --short HEAD`
  std::string compiler;           ///< __VERSION__
  std::string build_type;         ///< "release" (NDEBUG) or "debug"
  std::string simd_tier;          ///< active dispatch tier at call time
  std::size_t hardware_threads = 0;
  std::string timestamp_utc;      ///< ISO 8601, runtime
};

Provenance provenance();

/// Provenance as a JSON object string (no trailing newline), for embedding:
///   json << "  \"provenance\": " << obs::provenance_json(2) << ",\n";
/// `indent` is the column of the opening brace; members indent two deeper.
std::string provenance_json(int indent = 0);

struct RunReport {
  bool metrics_enabled = false;   ///< registry state during the run
  /// Service request this report belongs to (empty for in-process runs);
  /// the same id is stamped into the run's trace spans.
  std::string request_id;
  std::string backend;            ///< execution backend name
  std::string simd_tier;          ///< active SIMD tier
  std::size_t pool_threads = 0;   ///< workers of the pool the run used
  Real kappa = 0.0;               ///< QPD sampling overhead κ
  std::uint64_t shots_sampled = 0;
  /// κ²/ε² predicted by the planner; 0 for unplanned runs (no ε target).
  Real shots_budget = 0.0;
  std::uint64_t wall_time_ns = 0;
  /// Plan shape (planned runs only; 0/0 otherwise).
  std::size_t plan_cuts = 0;
  int max_fragment_width = 0;
  /// Registry delta over the run — all counters in obs/metrics.hpp.
  MetricsSnapshot counters;

  /// Full JSON document: provenance, config, shots-vs-budget, cache hit
  /// rates, fusion stats, kernel dispatch counts, pool utilization, branch
  /// accounting, and the raw counter block. `indent` as in provenance_json.
  std::string to_json(int indent = 0) const;
};

}  // namespace obs
}  // namespace qcut
