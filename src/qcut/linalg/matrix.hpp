// Dense complex matrices and vectors.
//
// A deliberately small, dependency-free linear-algebra layer sized for
// quantum-information workloads: matrices are at most 2^n x 2^n for n <= ~12
// qubits, so a straightforward row-major dense representation with O(n^3)
// kernels is the right tool (no BLAS needed at these sizes).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "qcut/common/error.hpp"
#include "qcut/common/types.hpp"

namespace qcut {

using Vector = std::vector<Cplx>;

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(Index rows, Index cols);

  /// Row-major construction from a nested initializer list.
  Matrix(std::initializer_list<std::initializer_list<Cplx>> rows);

  static Matrix identity(Index n);
  static Matrix zero(Index rows, Index cols);
  /// Diagonal matrix from a vector.
  static Matrix diag(const Vector& d);
  /// Column vector (n x 1) from a Vector.
  static Matrix col(const Vector& v);
  /// Outer product |u><v| (u * v^dagger).
  static Matrix outer(const Vector& u, const Vector& v);
  /// Rank-1 projector |v><v|.
  static Matrix projector(const Vector& v);

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  Cplx& operator()(Index r, Index c) {
    QCUT_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  Cplx operator()(Index r, Index c) const {
    QCUT_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  Cplx* data() noexcept { return data_.data(); }
  const Cplx* data() const noexcept { return data_.data(); }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(Cplx s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, Cplx s) { return lhs *= s; }
  friend Matrix operator*(Cplx s, Matrix rhs) { return rhs *= s; }
  friend Matrix operator*(Matrix lhs, Real s) { return lhs *= Cplx{s, 0.0}; }
  friend Matrix operator*(Real s, Matrix rhs) { return rhs *= Cplx{s, 0.0}; }
  Matrix operator-() const;

  /// Matrix product (classic triple loop with k-inner reordering).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product.
  friend Vector operator*(const Matrix& a, const Vector& x);

  /// Conjugate transpose.
  Matrix dagger() const;
  /// Transpose without conjugation.
  Matrix transpose() const;
  /// Entrywise complex conjugate.
  Matrix conj() const;

  Cplx trace() const;
  /// Frobenius norm.
  Real norm() const;
  /// Largest absolute entry.
  Real max_abs() const;

  bool approx_equal(const Matrix& other, Real tol = kTightTol) const;
  bool is_hermitian(Real tol = kTightTol) const;
  bool is_unitary(Real tol = kTightTol) const;
  /// Positive semidefinite check via Hermitian part + eigenvalues (declared
  /// here, implemented in decomp.cpp which owns the eigensolver).
  bool is_psd(Real tol = kDecompTol) const;

  /// Human-readable multi-line rendering (for diagnostics and examples).
  std::string to_string(int precision = 4) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Cplx> data_;
};

// ---- Vector helpers -------------------------------------------------------

/// <u|v> with conjugation on the left argument.
Cplx inner(const Vector& u, const Vector& v);
/// 2-norm.
Real vec_norm(const Vector& v);
/// v / ||v||; throws on the zero vector.
Vector normalized(const Vector& v);
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(Cplx s, const Vector& v);
bool approx_equal(const Vector& a, const Vector& b, Real tol = kTightTol);

/// Computational basis vector |i> of dimension dim.
Vector basis_vector(Index dim, Index i);

/// Density operator |v><v| of a pure state.
Matrix density(const Vector& v);

/// Expectation <v|A|v>.
Cplx expectation(const Matrix& a, const Vector& v);
/// Tr[A rho].
Cplx expectation(const Matrix& a, const Matrix& rho);

/// Fidelity between a pure state |psi> and density rho: <psi|rho|psi>.
Real fidelity(const Vector& psi, const Matrix& rho);

}  // namespace qcut
