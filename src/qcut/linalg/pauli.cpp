#include "qcut/linalg/pauli.hpp"

#include "qcut/linalg/kron.hpp"

namespace qcut {

const Matrix& pauli_i() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{1, 0}}};
  return m;
}

const Matrix& pauli_x() {
  static const Matrix m{{Cplx{0, 0}, Cplx{1, 0}}, {Cplx{1, 0}, Cplx{0, 0}}};
  return m;
}

const Matrix& pauli_y() {
  static const Matrix m{{Cplx{0, 0}, Cplx{0, -1}}, {Cplx{0, 1}, Cplx{0, 0}}};
  return m;
}

const Matrix& pauli_z() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{-1, 0}}};
  return m;
}

const Matrix& pauli_matrix(Pauli p) {
  switch (p) {
    case Pauli::I:
      return pauli_i();
    case Pauli::X:
      return pauli_x();
    case Pauli::Y:
      return pauli_y();
    case Pauli::Z:
      return pauli_z();
  }
  throw Error("pauli_matrix: invalid Pauli");
}

char pauli_char(Pauli p) {
  switch (p) {
    case Pauli::I:
      return 'I';
    case Pauli::X:
      return 'X';
    case Pauli::Y:
      return 'Y';
    case Pauli::Z:
      return 'Z';
  }
  throw Error("pauli_char: invalid Pauli");
}

Pauli pauli_from_char(char c) {
  switch (c) {
    case 'I':
      return Pauli::I;
    case 'X':
      return Pauli::X;
    case 'Y':
      return Pauli::Y;
    case 'Z':
      return Pauli::Z;
    default:
      throw Error(std::string("pauli_from_char: invalid character '") + c + "'");
  }
}

Matrix pauli_string(const std::string& s) {
  QCUT_CHECK(!s.empty(), "pauli_string: empty string");
  Matrix acc = pauli_matrix(pauli_from_char(s[0]));
  for (std::size_t i = 1; i < s.size(); ++i) {
    acc = kron(acc, pauli_matrix(pauli_from_char(s[i])));
  }
  return acc;
}

std::vector<std::string> all_pauli_strings(int n_qubits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= 8, "all_pauli_strings: unsupported qubit count");
  static constexpr char kChars[] = {'I', 'X', 'Y', 'Z'};
  std::size_t total = 1;
  for (int i = 0; i < n_qubits; ++i) {
    total *= 4;
  }
  std::vector<std::string> out;
  out.reserve(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::string s(static_cast<std::size_t>(n_qubits), 'I');
    std::size_t rem = idx;
    for (int q = n_qubits - 1; q >= 0; --q) {
      s[static_cast<std::size_t>(q)] = kChars[rem % 4];
      rem /= 4;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Cplx> pauli_coefficients(const Matrix& a) {
  QCUT_CHECK(a.square(), "pauli_coefficients: matrix must be square");
  int n = 0;
  Index dim = a.rows();
  while ((Index{1} << n) < dim) {
    ++n;
  }
  QCUT_CHECK((Index{1} << n) == dim, "pauli_coefficients: dimension must be a power of 2");
  const auto strings = all_pauli_strings(n);
  std::vector<Cplx> coeffs;
  coeffs.reserve(strings.size());
  const Real denom = static_cast<Real>(dim);
  for (const auto& s : strings) {
    const Matrix p = pauli_string(s);
    coeffs.push_back((p * a).trace() / denom);
  }
  return coeffs;
}

Matrix from_pauli_coefficients(const std::vector<Cplx>& coeffs, int n_qubits) {
  const auto strings = all_pauli_strings(n_qubits);
  QCUT_CHECK(coeffs.size() == strings.size(), "from_pauli_coefficients: wrong coefficient count");
  const Index dim = Index{1} << n_qubits;
  Matrix acc(dim, dim);
  for (std::size_t i = 0; i < strings.size(); ++i) {
    if (is_zero(coeffs[i], 0.0)) {
      continue;
    }
    acc += coeffs[i] * pauli_string(strings[i]);
  }
  return acc;
}

}  // namespace qcut
