#include "qcut/linalg/bell.hpp"

#include <cmath>

#include "qcut/linalg/kron.hpp"

namespace qcut {

Vector bell_phi() {
  return Vector{Cplx{kInvSqrt2, 0.0}, Cplx{0.0, 0.0}, Cplx{0.0, 0.0}, Cplx{kInvSqrt2, 0.0}};
}

Vector bell_state(Pauli sigma) {
  const Matrix op = kron(pauli_matrix(sigma), Matrix::identity(2));
  return op * bell_phi();
}

std::array<Vector, 4> bell_basis() {
  return {bell_state(Pauli::I), bell_state(Pauli::X), bell_state(Pauli::Y),
          bell_state(Pauli::Z)};
}

Vector phi_k_state(Real k) {
  QCUT_CHECK(k >= 0.0, "phi_k_state: k must be non-negative");
  const Real kcap = 1.0 / std::sqrt(1.0 + k * k);
  return Vector{Cplx{kcap, 0.0}, Cplx{0.0, 0.0}, Cplx{0.0, 0.0}, Cplx{kcap * k, 0.0}};
}

Matrix phi_k_density(Real k) { return density(phi_k_state(k)); }

std::array<Real, 4> bell_overlaps(const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 4 && rho.cols() == 4, "bell_overlaps: need a two-qubit density");
  std::array<Real, 4> out{};
  const auto basis = bell_basis();
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = fidelity(basis[i], rho);
  }
  return out;
}

std::array<Real, 4> phi_k_bell_overlaps(Real k) {
  const Real denom = 2.0 * (k * k + 1.0);
  return {(k + 1.0) * (k + 1.0) / denom, 0.0, 0.0, (k - 1.0) * (k - 1.0) / denom};
}

Real k_for_overlap(Real target) {
  QCUT_CHECK(target >= 0.5 - kTightTol && target <= 1.0 + kTightTol,
             "k_for_overlap: target must be in [1/2, 1]");
  if (target >= 1.0) {
    return 1.0;
  }
  if (target <= 0.5) {
    return 0.0;
  }
  // f = (k+1)^2 / (2(k^2+1))  =>  (2f-1) k^2 - 2k + (2f-1) = 0.
  const Real a = 2.0 * target - 1.0;
  const Real disc = 1.0 - a * a;
  QCUT_CHECK(disc >= 0.0, "k_for_overlap: discriminant negative");
  // Roots (1 ± sqrt(1-a^2)) / a are reciprocal; pick the one in [0, 1].
  return (1.0 - std::sqrt(disc)) / a;
}

}  // namespace qcut
