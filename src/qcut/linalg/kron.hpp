// Kronecker products for matrices and state vectors.
#pragma once

#include <vector>

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// A ⊗ B for matrices.
Matrix kron(const Matrix& a, const Matrix& b);

/// |u⟩ ⊗ |v⟩ for state vectors.
Vector kron(const Vector& u, const Vector& v);

/// Left-fold Kronecker product of a list (ops[0] ⊗ ops[1] ⊗ ...).
Matrix kron_all(const std::vector<Matrix>& ops);
Vector kron_all(const std::vector<Vector>& states);

/// Embeds a k-qubit operator acting on the given (distinct) qubit indices
/// into an n-qubit operator, identity elsewhere. Qubit 0 is the most
/// significant bit of the basis index (big-endian, matching the circuit
/// diagrams in the paper where the top wire is qubit 0).
Matrix embed(const Matrix& op, const std::vector<int>& qubits, int n_qubits);

}  // namespace qcut
