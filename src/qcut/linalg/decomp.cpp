#include "qcut/linalg/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qcut {

QrResult qr(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix r = a;
  Matrix q = Matrix::identity(m);

  // Householder reflections column by column.
  for (Index k = 0; k < std::min(m - 1, n); ++k) {
    // Build the Householder vector v for column k, rows k..m-1.
    Real xnorm2 = 0.0;
    for (Index i = k; i < m; ++i) {
      xnorm2 += norm2(r(i, k));
    }
    const Real xnorm = std::sqrt(xnorm2);
    if (xnorm <= 1e-300) {
      continue;  // column already zero below the diagonal
    }
    const Cplx x0 = r(k, k);
    // alpha = -e^{i arg(x0)} * ||x||  (choose sign to avoid cancellation)
    const Real ax0 = std::abs(x0);
    const Cplx phase = ax0 > 0.0 ? x0 / ax0 : Cplx{1.0, 0.0};
    const Cplx alpha = -phase * xnorm;

    Vector v(static_cast<std::size_t>(m - k), Cplx{0.0, 0.0});
    v[0] = x0 - alpha;
    for (Index i = k + 1; i < m; ++i) {
      v[static_cast<std::size_t>(i - k)] = r(i, k);
    }
    Real vnorm2 = 0.0;
    for (const auto& z : v) {
      vnorm2 += norm2(z);
    }
    if (vnorm2 <= 1e-300) {
      continue;
    }
    const Real beta = 2.0 / vnorm2;

    // Apply H = I - beta v v^dagger to R (rows k..m-1, all cols).
    for (Index j = 0; j < n; ++j) {
      Cplx dot{0.0, 0.0};
      for (Index i = k; i < m; ++i) {
        dot += std::conj(v[static_cast<std::size_t>(i - k)]) * r(i, j);
      }
      dot *= beta;
      for (Index i = k; i < m; ++i) {
        r(i, j) -= dot * v[static_cast<std::size_t>(i - k)];
      }
    }
    // Accumulate Q := Q H (apply H on the right of Q).
    for (Index i = 0; i < m; ++i) {
      Cplx dot{0.0, 0.0};
      for (Index j = k; j < m; ++j) {
        dot += q(i, j) * v[static_cast<std::size_t>(j - k)];
      }
      dot *= beta;
      for (Index j = k; j < m; ++j) {
        q(i, j) -= dot * std::conj(v[static_cast<std::size_t>(j - k)]);
      }
    }
  }

  // Clean numerical noise below the diagonal.
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < m; ++i) {
      r(i, j) = Cplx{0.0, 0.0};
    }
  }
  return {std::move(q), std::move(r)};
}

EighResult eigh(const Matrix& a, Real herm_tol) {
  QCUT_CHECK(a.square(), "eigh: matrix must be square");
  QCUT_CHECK(a.is_hermitian(herm_tol), "eigh: matrix must be Hermitian");
  const Index n = a.rows();

  Matrix d = a;
  Matrix v = Matrix::identity(n);

  // Symmetrize exactly to suppress drift during sweeps.
  for (Index r = 0; r < n; ++r) {
    for (Index c = r + 1; c < n; ++c) {
      const Cplx avg = (d(r, c) + std::conj(d(c, r))) * Cplx{0.5, 0.0};
      d(r, c) = avg;
      d(c, r) = std::conj(avg);
    }
    d(r, r) = Cplx{d(r, r).real(), 0.0};
  }

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    // Off-diagonal Frobenius norm.
    Real off = 0.0;
    for (Index p = 0; p < n; ++p) {
      for (Index q2 = p + 1; q2 < n; ++q2) {
        off += norm2(d(p, q2));
      }
    }
    if (off < 1e-24) {
      break;
    }
    for (Index p = 0; p < n; ++p) {
      for (Index q2 = p + 1; q2 < n; ++q2) {
        const Cplx apq = d(p, q2);
        const Real aapq = std::abs(apq);
        if (aapq < 1e-18) {
          continue;
        }
        const Real app = d(p, p).real();
        const Real aqq = d(q2, q2).real();
        // Complex Jacobi rotation: zero out d(p,q).
        const Cplx phase = apq / aapq;
        const Real tau = (aqq - app) / (2.0 * aapq);
        const Real t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const Real c = 1.0 / std::sqrt(1.0 + t * t);
        const Real s = t * c;
        const Cplx cs = Cplx{s, 0.0} * phase;  // complex "sine" with phase

        // Update rows/columns p and q of d: G^dagger d G with
        // G = [[c, cs],[-conj(cs), c]] acting on the (p,q) plane.
        for (Index i = 0; i < n; ++i) {
          const Cplx dip = d(i, p);
          const Cplx diq = d(i, q2);
          d(i, p) = Cplx{c, 0.0} * dip - std::conj(cs) * diq;
          d(i, q2) = cs * dip + Cplx{c, 0.0} * diq;
        }
        for (Index j = 0; j < n; ++j) {
          const Cplx dpj = d(p, j);
          const Cplx dqj = d(q2, j);
          d(p, j) = Cplx{c, 0.0} * dpj - cs * dqj;
          d(q2, j) = std::conj(cs) * dpj + Cplx{c, 0.0} * dqj;
        }
        // Accumulate eigenvectors: V := V G.
        for (Index i = 0; i < n; ++i) {
          const Cplx vip = v(i, p);
          const Cplx viq = v(i, q2);
          v(i, p) = Cplx{c, 0.0} * vip - std::conj(cs) * viq;
          v(i, q2) = cs * vip + Cplx{c, 0.0} * viq;
        }
        // Enforce exact Hermiticity of the rotated pair.
        d(p, q2) = Cplx{0.0, 0.0};
        d(q2, p) = Cplx{0.0, 0.0};
        d(p, p) = Cplx{d(p, p).real(), 0.0};
        d(q2, q2) = Cplx{d(q2, q2).real(), 0.0};
      }
    }
  }

  EighResult out;
  out.values.resize(static_cast<std::size_t>(n));
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&d](Index i, Index j) { return d(i, i).real() > d(j, j).real(); });

  out.vectors = Matrix(n, n);
  for (Index k = 0; k < n; ++k) {
    const Index src = order[static_cast<std::size_t>(k)];
    out.values[static_cast<std::size_t>(k)] = d(src, src).real();
    for (Index i = 0; i < n; ++i) {
      out.vectors(i, k) = v(i, src);
    }
  }
  return out;
}

SvdResult svd(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  QCUT_CHECK(m > 0 && n > 0, "svd: empty matrix");

  // Eigendecomposition of the (n x n) Gram matrix.
  const Matrix gram = a.dagger() * a;
  EighResult eg = eigh(gram, 1e-7);

  SvdResult out;
  const Index r = std::min(m, n);
  out.singular.resize(static_cast<std::size_t>(r));
  out.v = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      out.v(i, j) = eg.vectors(i, j);
    }
  }
  for (Index j = 0; j < r; ++j) {
    const Real ev = std::max<Real>(0.0, eg.values[static_cast<std::size_t>(j)]);
    out.singular[static_cast<std::size_t>(j)] = std::sqrt(ev);
  }

  // Left singular vectors: u_j = A v_j / sigma_j where sigma_j > 0;
  // the remainder of U is completed to a unitary via QR.
  Matrix u(m, m);
  const Real smax = out.singular.empty() ? 0.0 : out.singular[0];
  const Real cutoff = std::max<Real>(1e-12, smax * 1e-12);
  Index filled = 0;
  for (Index j = 0; j < r; ++j) {
    if (out.singular[static_cast<std::size_t>(j)] <= cutoff) {
      break;
    }
    for (Index i = 0; i < m; ++i) {
      Cplx acc{0.0, 0.0};
      for (Index k = 0; k < n; ++k) {
        acc += a(i, k) * out.v(k, j);
      }
      u(i, j) = acc / out.singular[static_cast<std::size_t>(j)];
    }
    ++filled;
  }
  if (filled < m) {
    // Complete: QR of [U_filled | I] spans the whole space; take Q's columns.
    Matrix aug(m, m + filled);
    for (Index j = 0; j < filled; ++j) {
      for (Index i = 0; i < m; ++i) {
        aug(i, j) = u(i, j);
      }
    }
    for (Index j = 0; j < m; ++j) {
      aug(j, filled + j) = Cplx{1.0, 0.0};
    }
    QrResult f = qr(aug);
    // First `filled` columns of Q agree with U up to phases; fix the phases so
    // that A = U S V^dagger holds exactly, then copy the orthogonal complement.
    for (Index j = 0; j < filled; ++j) {
      // phase = <q_j, u_j>
      Cplx ph{0.0, 0.0};
      for (Index i = 0; i < m; ++i) {
        ph += std::conj(f.q(i, j)) * u(i, j);
      }
      const Real aph = std::abs(ph);
      const Cplx rot = aph > 0.0 ? ph / aph : Cplx{1.0, 0.0};
      for (Index i = 0; i < m; ++i) {
        u(i, j) = f.q(i, j) * rot;
      }
    }
    for (Index j = filled; j < m; ++j) {
      for (Index i = 0; i < m; ++i) {
        u(i, j) = f.q(i, j);
      }
    }
  }
  out.u = std::move(u);
  return out;
}

bool Matrix::is_psd(Real tol) const {
  if (!square() || !is_hermitian(std::max(tol, kTightTol))) {
    return false;
  }
  EighResult eg = eigh(*this, std::max(tol, kTightTol));
  for (Real v : eg.values) {
    if (v < -tol) {
      return false;
    }
  }
  return true;
}

}  // namespace qcut
