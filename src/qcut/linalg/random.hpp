// Random quantum objects: Haar-distributed unitaries (Mezzadri's method,
// the paper's reference [30]), random pure states, and random density
// operators (Hilbert-Schmidt and Bures ensembles).
#pragma once

#include "qcut/common/rng.hpp"
#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// n x n matrix with i.i.d. standard complex Gaussian entries.
Matrix ginibre(Index n, Rng& rng);
Matrix ginibre(Index rows, Index cols, Rng& rng);

/// Haar-distributed n x n unitary: QR of a Ginibre matrix with the R-diagonal
/// phase correction from Mezzadri, "How to generate random matrices from the
/// classical compact groups" (the algorithm the paper cites).
Matrix haar_unitary(Index n, Rng& rng);

/// Haar-random pure state of dimension `dim` (normalized Gaussian vector,
/// equivalently the first column of a Haar unitary).
Vector random_statevector(Index dim, Rng& rng);

/// Random density operator from the Hilbert-Schmidt ensemble: G G^dagger
/// normalized, with G a dim x rank Ginibre matrix (rank = dim by default).
Matrix random_density(Index dim, Rng& rng, Index rank = 0);

/// Random two-qubit pure NME state with Schmidt parameter drawn uniformly.
Vector random_two_qubit_pure(Rng& rng);

}  // namespace qcut
