// Quantum channels (completely positive maps) in Kraus form, with Choi and
// superoperator representations. The cut protocols are verified by composing
// their QPD branches into channels and checking exact identities at the
// density-matrix level (no sampling noise).
#pragma once

#include <vector>

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// A completely positive map given by Kraus operators E(ρ) = Σ K ρ K†.
/// Trace-preserving iff Σ K†K = I; the cut branch maps are generally only
/// trace-nonincreasing (CPTN, matching the paper's Sec. II-A).
class Channel {
 public:
  Channel() = default;
  explicit Channel(std::vector<Matrix> kraus);

  static Channel identity(Index dim);
  static Channel from_unitary(const Matrix& u);

  const std::vector<Matrix>& kraus() const noexcept { return kraus_; }
  Index dim_in() const;
  Index dim_out() const;

  Matrix apply(const Matrix& rho) const;

  /// Functional composition: (this ∘ other)(ρ) = this(other(ρ)).
  Channel compose(const Channel& other) const;

  /// Tensor product channel acting on the joint system.
  Channel tensor(const Channel& other) const;

  bool is_trace_preserving(Real tol = kTightTol) const;
  bool is_trace_nonincreasing(Real tol = kDecompTol) const;

 private:
  std::vector<Matrix> kraus_;
};

/// Choi matrix (column-stacking convention):
/// C = Σ_{ij} |i⟩⟨j| ⊗ E(|i⟩⟨j|), a (d_in·d_out)² matrix.
Matrix channel_to_choi(const Channel& e);

/// Recovers a Kraus decomposition from a Choi matrix via its
/// eigendecomposition (eigenvalues below tol are dropped).
Channel choi_to_kraus(const Matrix& choi, Index dim_in, Index dim_out, Real tol = 1e-9);

/// Superoperator matrix with column-stacking vec: vec(E(ρ)) = S vec(ρ),
/// S = Σ conj(K) ⊗ K.
Matrix channel_to_superop(const Channel& e);

/// Average gate fidelity proxy: process fidelity between a channel and a
/// target unitary, F_pro = ⟨Φ_u| C_E/d² |Φ_u⟩ computed via Choi matrices.
Real process_fidelity(const Channel& e, const Matrix& target_unitary);

/// Linear combination of channel outputs: Σ c_i E_i(ρ). This is exactly the
/// quasiprobability reconstruction of Eq. (11); returns the resulting matrix.
Matrix quasi_mix(const std::vector<Real>& coeffs, const std::vector<Channel>& channels,
                 const Matrix& rho);

}  // namespace qcut
