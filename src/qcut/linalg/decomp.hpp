// Matrix decompositions: Householder QR, Hermitian eigendecomposition
// (cyclic Jacobi), and SVD. Sized for the small dense matrices of quantum
// information (dim <= few thousand); all algorithms are O(n^3) with good
// constants and no external dependencies.
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

struct QrResult {
  Matrix q;  ///< m x m unitary
  Matrix r;  ///< m x n upper triangular
};

/// Householder QR factorization A = Q R.
QrResult qr(const Matrix& a);

struct EighResult {
  /// Eigenvalues sorted in descending order.
  std::vector<Real> values;
  /// Columns are the corresponding orthonormal eigenvectors.
  Matrix vectors;
};

/// Eigendecomposition of a Hermitian matrix via cyclic Jacobi rotations.
/// Throws if `a` is not Hermitian to tolerance `herm_tol`.
EighResult eigh(const Matrix& a, Real herm_tol = 1e-8);

struct SvdResult {
  Matrix u;                    ///< m x m unitary
  std::vector<Real> singular;  ///< min(m,n) singular values, descending
  Matrix v;                    ///< n x n unitary (A = U diag(s) V^dagger)
};

/// Singular value decomposition via the Hermitian eigenproblem of A^dagger A,
/// with Householder completion of the left factor.
SvdResult svd(const Matrix& a);

}  // namespace qcut
