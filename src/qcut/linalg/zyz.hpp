// ZYZ (Euler) decomposition of single-qubit unitaries:
//   U = e^{iα} Rz(β) Ry(γ) Rz(δ).
// Used by the OpenQASM exporter to serialize arbitrary 2x2 gates as u3.
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

struct ZyzAngles {
  Real alpha = 0.0;  ///< global phase
  Real beta = 0.0;   ///< first Rz
  Real gamma = 0.0;  ///< middle Ry
  Real delta = 0.0;  ///< last Rz
};

/// Decomposes a single-qubit unitary; throws if `u` is not unitary.
ZyzAngles zyz_decompose(const Matrix& u);

/// Rebuilds the unitary from angles (for tests).
Matrix zyz_compose(const ZyzAngles& a);

}  // namespace qcut
