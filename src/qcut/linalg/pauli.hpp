// Pauli algebra: the single-qubit Pauli matrices, Pauli strings, and the
// Pauli (Hermitian operator) basis expansion used to verify channels and
// quasiprobability decompositions.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "qcut/linalg/matrix.hpp"

namespace qcut {

enum class Pauli : int { I = 0, X = 1, Y = 2, Z = 3 };

/// The 2x2 matrix of a single Pauli operator.
const Matrix& pauli_matrix(Pauli p);

/// Convenience accessors.
const Matrix& pauli_i();
const Matrix& pauli_x();
const Matrix& pauli_y();
const Matrix& pauli_z();

/// Parses a Pauli string like "XZI" (leftmost = qubit 0 = most significant)
/// into its 2^n x 2^n matrix.
Matrix pauli_string(const std::string& s);

/// All 4^n n-qubit Pauli strings, in lexicographic order (I < X < Y < Z).
std::vector<std::string> all_pauli_strings(int n_qubits);

/// Expansion coefficients of an operator A in the Pauli basis:
/// A = sum_P c_P P with c_P = Tr[P A] / 2^n. Order matches
/// all_pauli_strings(n).
std::vector<Cplx> pauli_coefficients(const Matrix& a);

/// Reassembles an operator from Pauli coefficients (inverse of the above).
Matrix from_pauli_coefficients(const std::vector<Cplx>& coeffs, int n_qubits);

/// Label character for a Pauli.
char pauli_char(Pauli p);
Pauli pauli_from_char(char c);

}  // namespace qcut
