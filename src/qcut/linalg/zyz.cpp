#include "qcut/linalg/zyz.hpp"

#include <cmath>

namespace qcut {

ZyzAngles zyz_decompose(const Matrix& u) {
  QCUT_CHECK(u.rows() == 2 && u.cols() == 2, "zyz_decompose: expects a 2x2 matrix");
  QCUT_CHECK(u.is_unitary(1e-8), "zyz_decompose: matrix must be unitary");

  // Write U = e^{iα} [ e^{-i(β+δ)/2} c   −e^{-i(β−δ)/2} s ]
  //               [ e^{ i(β−δ)/2} s    e^{ i(β+δ)/2} c ]
  // with c = cos(γ/2), s = sin(γ/2).
  ZyzAngles a;
  const Real c = std::sqrt(std::min<Real>(1.0, norm2(u(0, 0)) > 0 ? std::abs(u(0, 0)) * std::abs(u(0, 0)) : 0.0));
  (void)c;
  const Real m00 = std::abs(u(0, 0));
  const Real m10 = std::abs(u(1, 0));
  a.gamma = 2.0 * std::atan2(m10, m00);

  const bool c_zero = m00 < 1e-12;
  const bool s_zero = m10 < 1e-12;

  auto arg = [](Cplx z) { return std::atan2(z.imag(), z.real()); };

  if (s_zero) {
    // Diagonal: only β+δ matters; pick δ = 0.
    const Real phase_sum = arg(u(1, 1)) - arg(u(0, 0));  // = β + δ
    a.beta = phase_sum;
    a.delta = 0.0;
    a.alpha = arg(u(0, 0)) + phase_sum / 2.0;
  } else if (c_zero) {
    // Anti-diagonal: only β−δ matters; pick δ = 0.
    const Real phase_diff = arg(u(1, 0)) - arg(-u(0, 1));  // = β − δ
    a.beta = phase_diff;
    a.delta = 0.0;
    a.alpha = arg(u(1, 0)) - phase_diff / 2.0;
  } else {
    const Real p00 = arg(u(0, 0));  // α − (β+δ)/2
    const Real p10 = arg(u(1, 0));  // α + (β−δ)/2
    const Real p11 = arg(u(1, 1));  // α + (β+δ)/2
    a.alpha = (p00 + p11) / 2.0;
    const Real beta_plus_delta = p11 - p00;
    const Real beta_minus_delta = 2.0 * (p10 - a.alpha);
    a.beta = (beta_plus_delta + beta_minus_delta) / 2.0;
    a.delta = (beta_plus_delta - beta_minus_delta) / 2.0;
  }
  return a;
}

Matrix zyz_compose(const ZyzAngles& a) {
  const Real ch = std::cos(a.gamma / 2.0);
  const Real sh = std::sin(a.gamma / 2.0);
  const Cplx phase = std::exp(Cplx{0.0, a.alpha});
  Matrix u(2, 2);
  u(0, 0) = phase * std::exp(Cplx{0.0, -(a.beta + a.delta) / 2.0}) * ch;
  u(0, 1) = -phase * std::exp(Cplx{0.0, -(a.beta - a.delta) / 2.0}) * sh;
  u(1, 0) = phase * std::exp(Cplx{0.0, (a.beta - a.delta) / 2.0}) * sh;
  u(1, 1) = phase * std::exp(Cplx{0.0, (a.beta + a.delta) / 2.0}) * ch;
  return u;
}

}  // namespace qcut
