#include "qcut/linalg/random.hpp"

#include <cmath>

#include "qcut/linalg/decomp.hpp"
#include "qcut/linalg/kron.hpp"

namespace qcut {

Matrix ginibre(Index n, Rng& rng) { return ginibre(n, n, rng); }

Matrix ginibre(Index rows, Index cols, Rng& rng) {
  Matrix g(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      g(r, c) = Cplx{rng.normal(), rng.normal()} * kInvSqrt2;
    }
  }
  return g;
}

Matrix haar_unitary(Index n, Rng& rng) {
  const Matrix g = ginibre(n, rng);
  QrResult f = qr(g);
  // Mezzadri's fix: Q diag(r_ii/|r_ii|) is Haar distributed.
  Matrix u = f.q;
  for (Index j = 0; j < n; ++j) {
    const Cplx rjj = f.r(j, j);
    const Real a = std::abs(rjj);
    const Cplx phase = a > 1e-300 ? rjj / a : Cplx{1.0, 0.0};
    for (Index i = 0; i < n; ++i) {
      u(i, j) *= phase;
    }
  }
  return u;
}

Vector random_statevector(Index dim, Rng& rng) {
  Vector v(static_cast<std::size_t>(dim));
  for (auto& x : v) {
    x = Cplx{rng.normal(), rng.normal()};
  }
  return normalized(v);
}

Matrix random_density(Index dim, Rng& rng, Index rank) {
  if (rank <= 0) {
    rank = dim;
  }
  const Matrix g = ginibre(dim, rank, rng);
  Matrix rho = g * g.dagger();
  const Real tr = rho.trace().real();
  QCUT_CHECK(tr > 0.0, "random_density: degenerate sample");
  rho *= Cplx{1.0 / tr, 0.0};
  return rho;
}

Vector random_two_qubit_pure(Rng& rng) {
  // Draw Schmidt weight uniformly, then randomize local bases.
  const Real p0 = 0.5 + 0.5 * rng.uniform();  // larger coefficient in [1/2, 1]
  const Real c0 = std::sqrt(p0);
  const Real c1 = std::sqrt(1.0 - p0);
  Vector psi = {Cplx{c0, 0.0}, Cplx{0.0, 0.0}, Cplx{0.0, 0.0}, Cplx{c1, 0.0}};
  const Matrix ua = haar_unitary(2, rng);
  const Matrix ub = haar_unitary(2, rng);
  return kron(ua, ub) * psi;
}

}  // namespace qcut
