#include "qcut/linalg/matrix.hpp"

#include <cmath>
#include <sstream>

namespace qcut {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), Cplx{0.0, 0.0}) {
  QCUT_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Cplx>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    QCUT_CHECK(static_cast<Index>(r.size()) == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    m(i, i) = Cplx{1.0, 0.0};
  }
  return m;
}

Matrix Matrix::zero(Index rows, Index cols) { return Matrix(rows, cols); }

Matrix Matrix::diag(const Vector& d) {
  const Index n = static_cast<Index>(d.size());
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    m(i, i) = d[static_cast<std::size_t>(i)];
  }
  return m;
}

Matrix Matrix::col(const Vector& v) {
  Matrix m(static_cast<Index>(v.size()), 1);
  for (Index i = 0; i < m.rows(); ++i) {
    m(i, 0) = v[static_cast<std::size_t>(i)];
  }
  return m;
}

Matrix Matrix::outer(const Vector& u, const Vector& v) {
  Matrix m(static_cast<Index>(u.size()), static_cast<Index>(v.size()));
  for (Index r = 0; r < m.rows(); ++r) {
    const Cplx ur = u[static_cast<std::size_t>(r)];
    for (Index c = 0; c < m.cols(); ++c) {
      m(r, c) = ur * std::conj(v[static_cast<std::size_t>(c)]);
    }
  }
  return m;
}

Matrix Matrix::projector(const Vector& v) { return outer(v, v); }

Matrix& Matrix::operator+=(const Matrix& rhs) {
  QCUT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix addition: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  QCUT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix subtraction: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(Cplx s) {
  for (auto& x : data_) {
    x *= s;
  }
  return *this;
}

Matrix Matrix::operator-() const {
  Matrix m = *this;
  for (Index r = 0; r < m.rows_; ++r) {
    for (Index c = 0; c < m.cols_; ++c) {
      m(r, c) = -m(r, c);
    }
  }
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  QCUT_CHECK(a.cols() == b.rows(), "matrix product: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order: the inner loop strides contiguously through b and out.
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const Cplx aik = a(i, k);
      if (is_zero(aik, 0.0)) {
        continue;
      }
      const Cplx* brow = b.data() + static_cast<std::size_t>(k * b.cols());
      Cplx* orow = out.data() + static_cast<std::size_t>(i * out.cols());
      for (Index j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  QCUT_CHECK(a.cols() == static_cast<Index>(x.size()), "matvec: dimension mismatch");
  Vector y(static_cast<std::size_t>(a.rows()), Cplx{0.0, 0.0});
  for (Index i = 0; i < a.rows(); ++i) {
    Cplx acc{0.0, 0.0};
    const Cplx* arow = a.data() + static_cast<std::size_t>(i * a.cols());
    for (Index j = 0; j < a.cols(); ++j) {
      acc += arow[j] * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

Matrix Matrix::dagger() const {
  Matrix m(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) {
      m(c, r) = std::conj((*this)(r, c));
    }
  }
  return m;
}

Matrix Matrix::transpose() const {
  Matrix m(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) {
      m(c, r) = (*this)(r, c);
    }
  }
  return m;
}

Matrix Matrix::conj() const {
  Matrix m = *this;
  for (auto& x : m.data_) {
    x = std::conj(x);
  }
  return m;
}

Cplx Matrix::trace() const {
  QCUT_CHECK(square(), "trace of non-square matrix");
  Cplx t{0.0, 0.0};
  for (Index i = 0; i < rows_; ++i) {
    t += (*this)(i, i);
  }
  return t;
}

Real Matrix::norm() const {
  Real s = 0.0;
  for (const auto& x : data_) {
    s += norm2(x);
  }
  return std::sqrt(s);
}

Real Matrix::max_abs() const {
  Real m = 0.0;
  for (const auto& x : data_) {
    m = std::max(m, std::abs(x));
  }
  return m;
}

bool Matrix::approx_equal(const Matrix& other, Real tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) {
      return false;
    }
  }
  return true;
}

bool Matrix::is_hermitian(Real tol) const {
  if (!square()) {
    return false;
  }
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = r; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol) {
        return false;
      }
    }
  }
  return true;
}

bool Matrix::is_unitary(Real tol) const {
  if (!square()) {
    return false;
  }
  return (dagger() * (*this)).approx_equal(identity(rows_), tol);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (Index r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (Index c = 0; c < cols_; ++c) {
      const Cplx z = (*this)(r, c);
      os << z.real();
      if (z.imag() >= 0) {
        os << "+" << z.imag() << "i";
      } else {
        os << z.imag() << "i";
      }
      if (c + 1 < cols_) {
        os << ", ";
      }
    }
    os << (r + 1 < rows_ ? "],\n" : "]]");
  }
  return os.str();
}

Cplx inner(const Vector& u, const Vector& v) {
  QCUT_CHECK(u.size() == v.size(), "inner product: size mismatch");
  Cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < u.size(); ++i) {
    acc += std::conj(u[i]) * v[i];
  }
  return acc;
}

Real vec_norm(const Vector& v) {
  Real s = 0.0;
  for (const auto& x : v) {
    s += norm2(x);
  }
  return std::sqrt(s);
}

Vector normalized(const Vector& v) {
  const Real n = vec_norm(v);
  QCUT_CHECK(n > 0.0, "cannot normalize the zero vector");
  Vector out = v;
  for (auto& x : out) {
    x /= n;
  }
  return out;
}

Vector operator+(const Vector& a, const Vector& b) {
  QCUT_CHECK(a.size() == b.size(), "vector addition: size mismatch");
  Vector out = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    out[i] += b[i];
  }
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  QCUT_CHECK(a.size() == b.size(), "vector subtraction: size mismatch");
  Vector out = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    out[i] -= b[i];
  }
  return out;
}

Vector operator*(Cplx s, const Vector& v) {
  Vector out = v;
  for (auto& x : out) {
    x *= s;
  }
  return out;
}

bool approx_equal(const Vector& a, const Vector& b, Real tol) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) {
      return false;
    }
  }
  return true;
}

Vector basis_vector(Index dim, Index i) {
  QCUT_CHECK(i >= 0 && i < dim, "basis_vector: index out of range");
  Vector v(static_cast<std::size_t>(dim), Cplx{0.0, 0.0});
  v[static_cast<std::size_t>(i)] = Cplx{1.0, 0.0};
  return v;
}

Matrix density(const Vector& v) { return Matrix::projector(v); }

Cplx expectation(const Matrix& a, const Vector& v) { return inner(v, a * v); }

Cplx expectation(const Matrix& a, const Matrix& rho) {
  QCUT_CHECK(a.square() && rho.square() && a.rows() == rho.rows(),
             "expectation: dimension mismatch");
  // Tr[A rho] = sum_{i,j} A(i,j) rho(j,i)
  Cplx acc{0.0, 0.0};
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      acc += a(i, j) * rho(j, i);
    }
  }
  return acc;
}

Real fidelity(const Vector& psi, const Matrix& rho) {
  const Vector rp = rho * psi;
  return inner(psi, rp).real();
}

}  // namespace qcut
