// Bell states and the pure NME family |Φk⟩ = K(|00⟩ + k|11⟩) from Eq. (6).
#pragma once

#include <array>

#include "qcut/linalg/matrix.hpp"
#include "qcut/linalg/pauli.hpp"

namespace qcut {

/// |Φ⟩ = (|00⟩+|11⟩)/√2, the maximally entangled two-qubit state.
Vector bell_phi();

/// |Φσ⟩ = (σ ⊗ I)|Φ⟩ — the Bell basis labeled by Pauli σ (Sec. II-E).
Vector bell_state(Pauli sigma);

/// All four Bell basis states in Pauli order {I, X, Y, Z}.
std::array<Vector, 4> bell_basis();

/// |Φk⟩ = (|00⟩ + k|11⟩)/√(1+k²), Eq. (6). Requires k >= 0.
Vector phi_k_state(Real k);

/// Density operator Φk = |Φk⟩⟨Φk|.
Matrix phi_k_density(Real k);

/// Bell-basis overlaps ⟨Φσ|ρ|Φσ⟩ for σ ∈ {I,X,Y,Z} of a two-qubit density ρ.
/// These are the Pauli-error weights of teleportation with resource ρ (Eq. 22).
std::array<Real, 4> bell_overlaps(const Matrix& rho);

/// Closed-form overlaps of Φk with the Bell basis (Eqs. 55-58):
/// { (k+1)²/(2(k²+1)), 0, 0, (k−1)²/(2(k²+1)) }.
std::array<Real, 4> phi_k_bell_overlaps(Real k);

/// Solves f(Φk) = target for k ∈ [0, 1]: the Schmidt parameter whose pure NME
/// state has maximal overlap `target` with Φ (Eq. 10 inverted). target must
/// be in [1/2, 1]. Of the two solutions k and 1/k we return the one <= 1.
Real k_for_overlap(Real target);

}  // namespace qcut
