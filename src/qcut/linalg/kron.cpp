#include "qcut/linalg/kron.hpp"

#include <algorithm>

namespace qcut {

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (Index ar = 0; ar < a.rows(); ++ar) {
    for (Index ac = 0; ac < a.cols(); ++ac) {
      const Cplx av = a(ar, ac);
      if (is_zero(av, 0.0)) {
        continue;
      }
      for (Index br = 0; br < b.rows(); ++br) {
        for (Index bc = 0; bc < b.cols(); ++bc) {
          out(ar * b.rows() + br, ac * b.cols() + bc) = av * b(br, bc);
        }
      }
    }
  }
  return out;
}

Vector kron(const Vector& u, const Vector& v) {
  Vector out(u.size() * v.size(), Cplx{0.0, 0.0});
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = 0; j < v.size(); ++j) {
      out[i * v.size() + j] = u[i] * v[j];
    }
  }
  return out;
}

Matrix kron_all(const std::vector<Matrix>& ops) {
  QCUT_CHECK(!ops.empty(), "kron_all: empty list");
  Matrix acc = ops.front();
  for (std::size_t i = 1; i < ops.size(); ++i) {
    acc = kron(acc, ops[i]);
  }
  return acc;
}

Vector kron_all(const std::vector<Vector>& states) {
  QCUT_CHECK(!states.empty(), "kron_all: empty list");
  Vector acc = states.front();
  for (std::size_t i = 1; i < states.size(); ++i) {
    acc = kron(acc, states[i]);
  }
  return acc;
}

Matrix embed(const Matrix& op, const std::vector<int>& qubits, int n_qubits) {
  const Index k = static_cast<Index>(qubits.size());
  QCUT_CHECK(op.rows() == (Index{1} << k) && op.cols() == op.rows(),
             "embed: operator dimension does not match qubit count");
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= 20, "embed: unsupported qubit count");
  for (int q : qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits, "embed: qubit index out of range");
    QCUT_CHECK(std::count(qubits.begin(), qubits.end(), q) == 1, "embed: duplicate qubit");
  }
  const Index dim = Index{1} << n_qubits;
  Matrix out(dim, dim);

  // Big-endian bit position of qubit q in a basis index.
  auto bit_of = [n_qubits](Index state, int q) -> Index {
    return (state >> (n_qubits - 1 - q)) & 1;
  };

  for (Index col = 0; col < dim; ++col) {
    // Sub-index of the op input formed by the selected qubits.
    Index sub_in = 0;
    for (Index j = 0; j < k; ++j) {
      sub_in = (sub_in << 1) | bit_of(col, qubits[static_cast<std::size_t>(j)]);
    }
    for (Index sub_out = 0; sub_out < op.rows(); ++sub_out) {
      const Cplx v = op(sub_out, sub_in);
      if (is_zero(v, 0.0)) {
        continue;
      }
      // Replace the selected qubits' bits in `col` with sub_out's bits.
      Index row = col;
      for (Index j = 0; j < k; ++j) {
        const int q = qubits[static_cast<std::size_t>(j)];
        const Index bit = (sub_out >> (k - 1 - j)) & 1;
        const Index mask = Index{1} << (n_qubits - 1 - q);
        row = (row & ~mask) | (bit ? mask : 0);
      }
      out(row, col) += v;
    }
  }
  return out;
}

}  // namespace qcut
