#include "qcut/linalg/channel.hpp"

#include <cmath>

#include "qcut/linalg/decomp.hpp"
#include "qcut/linalg/kron.hpp"

namespace qcut {

Channel::Channel(std::vector<Matrix> kraus) : kraus_(std::move(kraus)) {
  QCUT_CHECK(!kraus_.empty(), "Channel: need at least one Kraus operator");
  const Index rows = kraus_.front().rows();
  const Index cols = kraus_.front().cols();
  for (const auto& k : kraus_) {
    QCUT_CHECK(k.rows() == rows && k.cols() == cols, "Channel: inconsistent Kraus shapes");
  }
}

Channel Channel::identity(Index dim) {
  return Channel(std::vector<Matrix>{Matrix::identity(dim)});
}

Channel Channel::from_unitary(const Matrix& u) {
  QCUT_CHECK(u.square(), "Channel::from_unitary: matrix must be square");
  return Channel(std::vector<Matrix>{u});
}

Index Channel::dim_in() const {
  QCUT_CHECK(!kraus_.empty(), "Channel: empty");
  return kraus_.front().cols();
}

Index Channel::dim_out() const {
  QCUT_CHECK(!kraus_.empty(), "Channel: empty");
  return kraus_.front().rows();
}

Matrix Channel::apply(const Matrix& rho) const {
  QCUT_CHECK(rho.rows() == dim_in() && rho.cols() == dim_in(),
             "Channel::apply: dimension mismatch");
  Matrix out(dim_out(), dim_out());
  for (const auto& k : kraus_) {
    out += k * rho * k.dagger();
  }
  return out;
}

Channel Channel::compose(const Channel& other) const {
  QCUT_CHECK(dim_in() == other.dim_out(), "Channel::compose: dimension mismatch");
  std::vector<Matrix> ks;
  ks.reserve(kraus_.size() * other.kraus_.size());
  for (const auto& a : kraus_) {
    for (const auto& b : other.kraus_) {
      ks.push_back(a * b);
    }
  }
  return Channel(std::move(ks));
}

Channel Channel::tensor(const Channel& other) const {
  std::vector<Matrix> ks;
  ks.reserve(kraus_.size() * other.kraus_.size());
  for (const auto& a : kraus_) {
    for (const auto& b : other.kraus_) {
      ks.push_back(kron(a, b));
    }
  }
  return Channel(std::move(ks));
}

bool Channel::is_trace_preserving(Real tol) const {
  Matrix acc(dim_in(), dim_in());
  for (const auto& k : kraus_) {
    acc += k.dagger() * k;
  }
  return acc.approx_equal(Matrix::identity(dim_in()), tol);
}

bool Channel::is_trace_nonincreasing(Real tol) const {
  Matrix acc(dim_in(), dim_in());
  for (const auto& k : kraus_) {
    acc += k.dagger() * k;
  }
  // I - Σ K†K must be PSD.
  Matrix gap = Matrix::identity(dim_in()) - acc;
  return gap.is_psd(tol);
}

Matrix channel_to_choi(const Channel& e) {
  const Index din = e.dim_in();
  const Index dout = e.dim_out();
  Matrix choi(din * dout, din * dout);
  for (Index i = 0; i < din; ++i) {
    for (Index j = 0; j < din; ++j) {
      Matrix eij(din, din);
      eij(i, j) = Cplx{1.0, 0.0};
      const Matrix out = e.apply(eij);
      for (Index r = 0; r < dout; ++r) {
        for (Index c = 0; c < dout; ++c) {
          choi(i * dout + r, j * dout + c) += out(r, c);
        }
      }
    }
  }
  return choi;
}

Channel choi_to_kraus(const Matrix& choi, Index dim_in, Index dim_out, Real tol) {
  QCUT_CHECK(choi.rows() == dim_in * dim_out && choi.square(),
             "choi_to_kraus: dimension mismatch");
  EighResult eg = eigh(choi, 1e-7);
  std::vector<Matrix> ks;
  for (std::size_t idx = 0; idx < eg.values.size(); ++idx) {
    const Real ev = eg.values[idx];
    QCUT_CHECK(ev > -1e-7, "choi_to_kraus: Choi matrix not PSD (not a CP map)");
    if (ev <= tol) {
      continue;
    }
    const Real scale = std::sqrt(ev);
    Matrix k(dim_out, dim_in);
    for (Index i = 0; i < dim_in; ++i) {
      for (Index r = 0; r < dim_out; ++r) {
        k(r, i) = scale * eg.vectors(i * dim_out + r, static_cast<Index>(idx));
      }
    }
    ks.push_back(std::move(k));
  }
  QCUT_CHECK(!ks.empty(), "choi_to_kraus: zero channel");
  return Channel(std::move(ks));
}

Matrix channel_to_superop(const Channel& e) {
  const Index din = e.dim_in();
  const Index dout = e.dim_out();
  Matrix s(dout * dout, din * din);
  for (const auto& k : e.kraus()) {
    s += kron(k.conj(), k);
  }
  return s;
}

Real process_fidelity(const Channel& e, const Matrix& target_unitary) {
  QCUT_CHECK(target_unitary.square(), "process_fidelity: target must be square");
  const Index d = target_unitary.rows();
  QCUT_CHECK(e.dim_in() == d && e.dim_out() == d, "process_fidelity: dimension mismatch");
  const Channel target = Channel::from_unitary(target_unitary);
  const Matrix ce = channel_to_choi(e);
  const Matrix ct = channel_to_choi(target);
  // For a unitary target the Choi matrix is rank one: C_t = d |v⟩⟨v| with
  // ⟨v|v⟩ = 1, so F = ⟨v|C_E|v⟩ / d = Tr[C_t C_E] / d².
  const Cplx overlap = (ct * ce).trace();
  return overlap.real() / static_cast<Real>(d * d);
}

Matrix quasi_mix(const std::vector<Real>& coeffs, const std::vector<Channel>& channels,
                 const Matrix& rho) {
  QCUT_CHECK(coeffs.size() == channels.size(), "quasi_mix: coefficient/channel mismatch");
  QCUT_CHECK(!channels.empty(), "quasi_mix: empty decomposition");
  Matrix acc(channels.front().dim_out(), channels.front().dim_out());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    acc += Cplx{coeffs[i], 0.0} * channels[i].apply(rho);
  }
  return acc;
}

}  // namespace qcut
