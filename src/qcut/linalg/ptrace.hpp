// Partial trace over qubit subsystems.
#pragma once

#include <vector>

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// Traces out the listed qubits (big-endian indexing: qubit 0 is the most
/// significant bit) from an n-qubit density operator. The remaining qubits
/// keep their relative order.
Matrix partial_trace(const Matrix& rho, const std::vector<int>& traced_qubits, int n_qubits);

/// Reduced density operator of the listed qubits (traces out the complement).
Matrix reduced_density(const Matrix& rho, const std::vector<int>& kept_qubits, int n_qubits);

/// Reduced density operator of a pure n-qubit state on the kept qubits.
Matrix reduced_density(const Vector& psi, const std::vector<int>& kept_qubits, int n_qubits);

}  // namespace qcut
