#include "qcut/linalg/ptrace.hpp"

#include <algorithm>

namespace qcut {

namespace {

// Scatters the bits of `packed` (k bits, big-endian over `positions`) into an
// n-qubit index at the given big-endian qubit positions.
Index scatter_bits(Index packed, const std::vector<int>& positions, int n_qubits) {
  Index out = 0;
  const int k = static_cast<int>(positions.size());
  for (int j = 0; j < k; ++j) {
    const Index bit = (packed >> (k - 1 - j)) & 1;
    out |= bit << (n_qubits - 1 - positions[static_cast<std::size_t>(j)]);
  }
  return out;
}

}  // namespace

Matrix partial_trace(const Matrix& rho, const std::vector<int>& traced_qubits, int n_qubits) {
  const Index dim = Index{1} << n_qubits;
  QCUT_CHECK(rho.rows() == dim && rho.cols() == dim, "partial_trace: dimension mismatch");
  for (int q : traced_qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits, "partial_trace: qubit out of range");
    QCUT_CHECK(std::count(traced_qubits.begin(), traced_qubits.end(), q) == 1,
               "partial_trace: duplicate qubit");
  }

  std::vector<int> kept;
  kept.reserve(static_cast<std::size_t>(n_qubits) - traced_qubits.size());
  for (int q = 0; q < n_qubits; ++q) {
    if (std::find(traced_qubits.begin(), traced_qubits.end(), q) == traced_qubits.end()) {
      kept.push_back(q);
    }
  }

  const int nk = static_cast<int>(kept.size());
  const int nt = static_cast<int>(traced_qubits.size());
  const Index kdim = Index{1} << nk;
  const Index tdim = Index{1} << nt;

  Matrix out(kdim, kdim);
  for (Index kr = 0; kr < kdim; ++kr) {
    const Index row_kept = scatter_bits(kr, kept, n_qubits);
    for (Index kc = 0; kc < kdim; ++kc) {
      const Index col_kept = scatter_bits(kc, kept, n_qubits);
      Cplx acc{0.0, 0.0};
      for (Index t = 0; t < tdim; ++t) {
        const Index tbits = scatter_bits(t, traced_qubits, n_qubits);
        acc += rho(row_kept | tbits, col_kept | tbits);
      }
      out(kr, kc) = acc;
    }
  }
  return out;
}

Matrix reduced_density(const Matrix& rho, const std::vector<int>& kept_qubits, int n_qubits) {
  std::vector<int> traced;
  for (int q = 0; q < n_qubits; ++q) {
    if (std::find(kept_qubits.begin(), kept_qubits.end(), q) == kept_qubits.end()) {
      traced.push_back(q);
    }
  }
  Matrix red = partial_trace(rho, traced, n_qubits);

  // partial_trace keeps the surviving qubits in ascending order; if the caller
  // requested a different order, permute.
  std::vector<int> sorted = kept_qubits;
  std::sort(sorted.begin(), sorted.end());
  if (sorted == kept_qubits) {
    return red;
  }
  const int nk = static_cast<int>(kept_qubits.size());
  const Index kdim = Index{1} << nk;
  // position of each requested qubit within the ascending layout
  std::vector<int> pos(kept_qubits.size());
  for (std::size_t i = 0; i < kept_qubits.size(); ++i) {
    pos[i] = static_cast<int>(std::find(sorted.begin(), sorted.end(), kept_qubits[i]) -
                              sorted.begin());
  }
  auto permute_index = [&](Index idx) {
    Index out = 0;
    for (int j = 0; j < nk; ++j) {
      const Index bit = (idx >> (nk - 1 - pos[static_cast<std::size_t>(j)])) & 1;
      out = (out << 1) | bit;
    }
    return out;
  };
  Matrix out(kdim, kdim);
  for (Index r = 0; r < kdim; ++r) {
    for (Index c = 0; c < kdim; ++c) {
      out(permute_index(r), permute_index(c)) = red(r, c);
    }
  }
  return out;
}

Matrix reduced_density(const Vector& psi, const std::vector<int>& kept_qubits, int n_qubits) {
  return reduced_density(density(psi), kept_qubits, n_qubits);
}

}  // namespace qcut
