// Deterministic fault injection for chaos testing the service pipeline.
//
// Six named sites mark the seams where distributed execution will fail in
// production (decode, plan, batch, fragment unit, cache insert, pool task).
// Arming is per-site via QCUT_FAULT at process start or arm_faults() at run
// time:
//
//   QCUT_FAULT=site:kind[:p][:seed][,site:kind...]
//
//   site  ∈ {wire.decode, svc.plan, exec.batch, fragment.unit,
//            cache.insert, pool.task}
//   kind  ∈ {throw, delay_ms=N}        (throw → qcut::Error{kInternal};
//                                       delay_ms → sleep N ms, default 10)
//   p     ∈ [0,1]                      fire probability (default 1)
//   seed  = u64                        decision-stream seed (default 1)
//
// Decisions are COUNTER-seeded, not clock- or thread-seeded: the n-th arrival
// at a site fires iff splitmix64(seed ⊕ site ⊕ n) maps below p. Re-arming
// resets the counters, so a failing run replays bit-identically from its
// (spec, seed) — the chaos harness prints both on failure.
//
// Unarmed cost is one relaxed atomic<bool> load and a predicted branch at
// each site (the same ≤2% discipline as QCUT_METRICS; sites sit at coarse
// boundaries only, never inside SIMD kernels). Injected throws land on the
// obs kFaultsInjected counter and surface as typed internal errors.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace qcut {
namespace fault {

enum class Site : int {
  kWireDecode = 0,  ///< wire.decode — estimate-request payload decode
  kSvcPlan,         ///< svc.plan — plan resolution in svc::estimate
  kExecBatch,       ///< exec.batch — engine per-batch execution
  kFragmentUnit,    ///< fragment.unit — per (fragment, read-assignment) unit
  kCacheInsert,     ///< cache.insert — service LRU cache insertion
  kPoolTask,        ///< pool.task — thread-pool task execution
  kCount
};

inline constexpr int kSiteCount = static_cast<int>(Site::kCount);

/// The spec-string spelling of a site ("wire.decode", ...).
const char* site_name(Site site) noexcept;

namespace detail {
// Exposed only so maybe_inject can inline its unarmed fast path.
extern std::atomic<bool> g_fault_armed;

/// Slow path: consumes one decision at `site` and fires (throw/delay) when
/// the site is armed and the counter-seeded draw lands below p.
void fire(Site site);
}  // namespace detail

/// The per-site hook. Unarmed → one relaxed load + predicted branch.
inline void maybe_inject(Site site) {
  if (detail::g_fault_armed.load(std::memory_order_relaxed)) {
    detail::fire(site);
  }
}

/// Parses and arms a QCUT_FAULT spec (replacing any previous arming and
/// resetting every site's decision counter). Throws qcut::Error
/// {kInvalidRequest} on a malformed spec. Empty spec → disarm_faults().
void arm_faults(const std::string& spec);

/// Disarms every site; maybe_inject returns to the one-load fast path.
void disarm_faults();

/// True when any site is armed.
bool faults_armed() noexcept;

}  // namespace fault
}  // namespace qcut
