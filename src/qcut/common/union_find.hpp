// Union-find (disjoint-set) with path halving. Shared by the planner's
// fragment-width analysis (plan/circuit_graph.cpp) and the per-term fragment
// extraction (cut/fragment.cpp).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace qcut {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace qcut
