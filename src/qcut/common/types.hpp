// Fundamental scalar types used throughout qcut.
//
// All quantum amplitudes are double-precision complex numbers. Indices into
// state vectors are 64-bit so that >32-qubit bookkeeping does not silently
// overflow (the engines themselves cap out far earlier for memory reasons).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qcut {

using Real = double;
using Cplx = std::complex<Real>;

using Index = std::int64_t;
using UIndex = std::uint64_t;

inline constexpr Cplx kI{0.0, 1.0};
inline constexpr Real kPi = 3.14159265358979323846264338327950288;
inline constexpr Real kSqrt2 = 1.41421356237309504880168872420969808;
inline constexpr Real kInvSqrt2 = 1.0 / kSqrt2;

/// Default absolute tolerance for "exact" algebraic identities that are only
/// limited by double rounding (e.g. QPD reconstruction checks).
inline constexpr Real kTightTol = 1e-10;

/// Looser tolerance for iterative decompositions (Jacobi sweeps etc.).
inline constexpr Real kDecompTol = 1e-9;

/// Squared magnitude, |z|^2, without the sqrt detour of std::abs.
inline Real norm2(Cplx z) noexcept { return z.real() * z.real() + z.imag() * z.imag(); }

/// Parity (XOR-fold) of a 64-bit word — the estimate-bit arithmetic of the
/// statevector and fragment fast paths.
inline int parity64(std::uint64_t v) noexcept {
  v ^= v >> 32;
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<int>(v & 1);
}

/// True when |z| is numerically zero at tolerance `tol`.
inline bool is_zero(Cplx z, Real tol = kTightTol) noexcept { return norm2(z) <= tol * tol; }

/// True when |a-b| <= tol.
inline bool approx_eq(Cplx a, Cplx b, Real tol = kTightTol) noexcept { return is_zero(a - b, tol); }
inline bool approx_eq(Real a, Real b, Real tol = kTightTol) noexcept {
  Real d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace qcut
