// Streaming statistics used by the Monte-Carlo estimator and the benches.
#pragma once

#include <cstddef>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

/// Welford online mean/variance accumulator. Numerically stable; supports
/// merging partial accumulators from parallel workers (Chan et al.).
class RunningStats {
 public:
  void add(Real x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  Real mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  Real variance() const noexcept;
  Real stddev() const noexcept;
  /// Standard error of the mean.
  Real sem() const noexcept;
  Real min() const noexcept { return min_; }
  Real max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  Real mean_ = 0.0;
  Real m2_ = 0.0;
  Real min_ = 0.0;
  Real max_ = 0.0;
};

/// Weighted accumulator for quasiprobability estimates: each sample carries a
/// signed weight; tracks the weighted sum and the variance of the weighted
/// samples, matching the estimator of Eq. (12) in the paper.
class WeightedStats {
 public:
  void add(Real value, Real weight) noexcept;

  std::size_t count() const noexcept { return stats_.count(); }
  /// Monte-Carlo estimate: mean of weight*value samples.
  Real estimate() const noexcept { return stats_.mean(); }
  Real variance() const noexcept { return stats_.variance(); }
  Real sem() const noexcept { return stats_.sem(); }

 private:
  RunningStats stats_;
};

/// Ordinary least squares fit y = a + b*x, with R^2. Used by the κ-scaling
/// bench to fit log(error) against log(shots).
struct LinearFit {
  Real intercept = 0.0;
  Real slope = 0.0;
  Real r_squared = 0.0;
};

LinearFit linear_fit(const std::vector<Real>& x, const std::vector<Real>& y);

/// Simple fixed-width histogram over [lo, hi); out-of-range samples clamp to
/// the edge bins. Used by diagnostics and tests of sampler correctness.
class Histogram {
 public:
  Histogram(Real lo, Real hi, std::size_t bins);

  void add(Real x) noexcept;
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  Real bin_lo(std::size_t i) const;
  Real bin_hi(std::size_t i) const;

 private:
  Real lo_;
  Real hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qcut
