// Deterministic random number generation.
//
// qcut uses xoshiro256++ streams seeded through splitmix64. Every Monte-Carlo
// task derives its own stream from (master_seed, task_id), so results are
// bit-reproducible regardless of how tasks are scheduled across threads.
//
// Rng satisfies UniformRandomBitGenerator, so the <random> distributions can
// be used directly; convenience wrappers for the distributions the library
// needs (uniform, normal, Bernoulli, binomial, categorical) are provided.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

/// splitmix64 step: the canonical seeding PRNG (Vigna). Used to expand a
/// single 64-bit seed into the 256-bit xoshiro state and into per-task seeds.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256++ engine (Blackman & Vigna). Small, fast, and passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Stream constructor: mixes `seed` and `stream` so that different streams
  /// are statistically independent. Used by ThreadPool-parallel Monte Carlo.
  Rng(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept;

  /// 2^128 jump: advances the stream as if 2^128 outputs were drawn. Allows
  /// carving non-overlapping substreams out of one seed.
  void jump() noexcept;

  /// Uniform real in [0, 1).
  Real uniform() noexcept;

  /// Uniform real in [lo, hi).
  Real uniform(Real lo, Real hi) noexcept;

  /// Uniform integer in [0, n). Uses Lemire's rejection method (unbiased).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller with caching of the second variate.
  Real normal() noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(Real p) noexcept;

  /// Binomial(n, p) sample. Exact inversion for small n·p, normal-based
  /// BTRD-style rejection is unnecessary at our sizes; for large n it uses a
  /// sum-of-inversions on the smaller tail which is O(n·min(p,1-p)) expected.
  std::uint64_t binomial(std::uint64_t n, Real p) noexcept;

  /// Draws an index from an unnormalized non-negative weight vector.
  /// O(m) per draw; use qpd::AliasSampler for repeated draws.
  std::size_t categorical(const std::vector<Real>& weights) noexcept;

 private:
  std::uint64_t s_[4];
  Real cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Multinomial sample: distributes `n` trials over `probs` (must sum to ~1).
/// Uses the conditional-binomial decomposition, which is exact.
std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t n,
                                       const std::vector<Real>& probs);

}  // namespace qcut
