#include "qcut/common/threadpool.hpp"

#include <algorithm>

#include "qcut/common/error.hpp"
#include "qcut/common/fault.hpp"
#include "qcut/obs/metrics.hpp"

namespace qcut {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  // workers_ is immutable after construction, so no lock is needed.
  const auto id = std::this_thread::get_id();
  for (const auto& w : workers_) {
    if (w.get_id() == id) {
      return true;
    }
  }
  return false;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // The fault hook lives INSIDE the packaged task: an injected throw is then
  // captured into the task's future exactly like a real task failure, instead
  // of escaping worker_loop and terminating the worker.
  std::packaged_task<void()> pt([task = std::move(task)] {
    fault::maybe_inject(fault::Site::kPoolTask);
    task();
  });
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QCUT_CHECK(!stop_, "submit on stopped ThreadPool");
    queue_.push_back({std::move(pt), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask qt;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      qt = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto picked_up = std::chrono::steady_clock::now();
    const std::uint64_t wait_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(picked_up - qt.enqueued_at)
            .count());
    qt.task();  // exceptions are captured in the packaged_task's future
    const std::uint64_t run_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - picked_up)
            .count());
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    queue_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    busy_ns_.fetch_add(run_ns, std::memory_order_relaxed);
    obs::count(obs::Counter::kPoolTasks);
    obs::count(obs::Counter::kPoolQueueWaitNanos, wait_ns);
    obs::count(obs::Counter::kPoolBusyNanos, run_ns);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end, 1, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      body(i);
    }
  });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  chunk = std::max<std::size_t>(1, chunk);
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& f : futures) {
    f.get();  // rethrows the first captured exception
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qcut
