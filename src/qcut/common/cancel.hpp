// Cooperative cancellation and deadlines for long-running estimations.
//
// A CancelToken is a caller-owned flag + optional steady-clock deadline. The
// executing pipeline polls it at COARSE quantum boundaries only — planner DFS
// node expansion (strided), engine batch starts, fragment (fragment,
// read-assignment) units, branch-enumeration op steps — never inside SIMD
// kernels, so a poll costs one thread-local load and a predicted branch when
// no token is installed (same ≤2% discipline as QCUT_METRICS, gated by
// bench_sim_perf).
//
// Propagation is by thread-local scope, mirroring ScopedMetricsSink: the
// service layer installs a ScopedCancelScope around each request, which runs
// single-threaded on one pool worker (the engine and fragment evaluator fall
// back inline there). Drivers that DO fan out re-install the current token
// inside their pool lambdas (engine batch loop, fragment unit loop), so
// worker threads poll the same token as the spawning request.
//
// A tripped poll throws qcut::Error with ErrorCode::kCancelled or
// kDeadlineExceeded — cancellation rides the existing exception path out of
// parallel_for (first exception rethrown) and up to the service layer, which
// maps the code onto the wire.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "qcut/common/error.hpp"

namespace qcut {

/// Cancellation flag + optional deadline. Thread-safe: any thread may
/// cancel(); any number of threads may poll. The deadline is an absolute
/// steady-clock instant stored as nanoseconds-since-epoch (0 = none), so
/// queue wait counts against it from the moment it is set.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_acquire); }

  /// Arms the deadline `ms` milliseconds from now. ms == 0 clears it.
  void set_deadline_after_ms(std::uint64_t ms) noexcept {
    if (ms == 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    deadline_ns_.store(now_ns + static_cast<std::int64_t>(ms) * 1000000,
                       std::memory_order_relaxed);
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool deadline_passed() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) {
      return false;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >= d;
  }

  /// kOk, or the code a poll against this token would throw right now.
  ErrorCode state() const noexcept {
    if (cancelled()) {
      return ErrorCode::kCancelled;
    }
    if (deadline_passed()) {
      return ErrorCode::kDeadlineExceeded;
    }
    return ErrorCode::kOk;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

namespace detail {
// Exposed only so cancel_poll can inline its fast path; not part of the API.
extern thread_local CancelToken* t_cancel;

/// Out-of-line slow path: checks the flag, then the clock; throws the typed
/// Error (and bumps the matching obs counter) when the token tripped.
void cancel_poll_slow(CancelToken* token);
}  // namespace detail

/// The token governing the current thread's work, or nullptr. Drivers that
/// fan out to pool workers capture this and re-install it in their lambdas.
inline CancelToken* current_cancel_token() noexcept { return detail::t_cancel; }

/// Quantum-boundary poll. No token installed → one thread-local load and a
/// predicted branch. Token installed → flag check + one steady_clock read;
/// throws qcut::Error{kCancelled | kDeadlineExceeded} when tripped.
inline void cancel_poll() {
  if (CancelToken* token = detail::t_cancel) {
    detail::cancel_poll_slow(token);
  }
}

/// RAII thread-local token scope (nests; previous token restored on exit).
/// Installing nullptr detaches the thread from any token — pool lambdas pass
/// whatever current_cancel_token() returned at capture time, attached or not.
class ScopedCancelScope {
 public:
  explicit ScopedCancelScope(CancelToken* token) noexcept : prev_(detail::t_cancel) {
    detail::t_cancel = token;
  }
  ~ScopedCancelScope() { detail::t_cancel = prev_; }

  ScopedCancelScope(const ScopedCancelScope&) = delete;
  ScopedCancelScope& operator=(const ScopedCancelScope&) = delete;

 private:
  CancelToken* prev_;
};

}  // namespace qcut
