#include "qcut/common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "qcut/common/error.hpp"

namespace qcut {

Cli::Cli(int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --key value (if the next token is not another option), else --flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto it = options_.find(key);
  if (it == options_.end()) {
    return def;
  }
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t v = std::strtoll(s, &end, 10);
  // A silent 0 from a typo'd value is a debugging trap; demand a full,
  // in-range parse. "--key" without a value stores "true" and lands here too.
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw Error("Cli: --" + key + " expects an integer, got '" + it->second + "'");
  }
  return v;
}

Real Cli::get_real(const std::string& key, Real def) const {
  auto it = options_.find(key);
  if (it == options_.end()) {
    return def;
  }
  const char* s = it->second.c_str();
  char* end = nullptr;
  const Real v = std::strtod(s, &end);
  // Overflowed ("1e999") and non-finite ("inf", "nan") spellings would
  // poison downstream budget math as silently as a typo'd 0.
  if (end == s || *end != '\0' || !std::isfinite(v)) {
    throw Error("Cli: --" + key + " expects a finite number, got '" + it->second + "'");
  }
  return v;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = options_.find(key);
  if (it == options_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::output_path(const std::string& legacy_key, const std::string& filename) const {
  if (has("out")) {
    return get("out", filename);
  }
  if (!legacy_key.empty() && has(legacy_key)) {
    return get(legacy_key, filename);
  }
  const std::string argv0 = positional_.empty() ? std::string() : positional_.front();
  return path_beside_executable(argv0, filename);
}

std::string path_beside_executable(const std::string& argv0, const std::string& filename) {
  const auto slash = argv0.find_last_of('/');
  if (slash == std::string::npos) {
    return filename;
  }
  return argv0.substr(0, slash + 1) + filename;
}

}  // namespace qcut
