#include "qcut/common/csv.hpp"

#include <sstream>

#include "qcut/common/error.hpp"

namespace qcut {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  QCUT_CHECK(out_.good(), "CsvWriter: cannot open " + path);
  QCUT_CHECK(!header.empty(), "CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<Real>& values) {
  QCUT_CHECK(values.size() == columns_, "CsvWriter: column count mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << format_real(values[i]) << (i + 1 < values.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<std::string>& values) {
  QCUT_CHECK(values.size() == columns_, "CsvWriter: column count mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
  }
}

std::string format_real(Real x) {
  std::ostringstream os;
  os.precision(12);
  os << x;
  return os.str();
}

}  // namespace qcut
