#include "qcut/common/rng.hpp"

#include <cmath>

#include "qcut/common/error.hpp"

namespace qcut {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64_next(sm);
  }
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id into the seed with a strong finalizer, then expand.
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  sm = splitmix64_next(sm) ^ stream;
  for (auto& s : s_) {
    s = splitmix64_next(sm);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Real Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<Real>((*this)() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  if (n == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Real Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  Real u1 = uniform();
  Real u2 = uniform();
  // Guard against log(0).
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const Real r = std::sqrt(-2.0 * std::log(u1));
  const Real theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::bernoulli(Real p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, Real p) noexcept {
  if (p <= 0.0 || n == 0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  // Work with q = min(p, 1-p) and flip at the end.
  const bool flipped = p > 0.5;
  const Real q = flipped ? 1.0 - p : p;

  std::uint64_t count = 0;
  if (static_cast<Real>(n) * q < 30.0) {
    // Geometric-skip ("second waiting time") method: expected O(n·q)
    // iterations. Each jump is a Geometric(q) waiting time >= 1.
    const Real log1mq = std::log1p(-q);
    std::uint64_t sum = 0;
    while (true) {
      Real u = uniform();
      while (u <= 0.0) {
        u = uniform();
      }
      const Real wait = std::floor(std::log(u) / log1mq) + 1.0;
      if (wait > static_cast<Real>(n)) {  // certainly past the end
        break;
      }
      sum += static_cast<std::uint64_t>(wait);
      if (sum > n) {
        break;
      }
      ++count;
      if (count >= n) {
        count = n;
        break;
      }
    }
  } else {
    // Normal approximation with continuity correction, clamped and
    // stochastically rounded; bias is negligible at n·q >= 30 for our use
    // (estimating means, not tail probabilities).
    const Real mean = static_cast<Real>(n) * q;
    const Real sd = std::sqrt(mean * (1.0 - q));
    Real x = mean + sd * normal();
    if (x < 0.0) {
      x = 0.0;
    }
    if (x > static_cast<Real>(n)) {
      x = static_cast<Real>(n);
    }
    const Real fl = std::floor(x);
    count = static_cast<std::uint64_t>(fl) + (bernoulli(x - fl) ? 1 : 0);
    if (count > n) {
      count = n;
    }
  }
  return flipped ? n - count : count;
}

std::size_t Rng::categorical(const std::vector<Real>& weights) noexcept {
  Real total = 0.0;
  for (Real w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  if (total <= 0.0) {
    return 0;
  }
  Real r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const Real w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) {
      return i;
    }
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t n,
                                       const std::vector<Real>& probs) {
  QCUT_CHECK(!probs.empty(), "multinomial needs at least one category");
  std::vector<std::uint64_t> counts(probs.size(), 0);
  Real remaining_p = 0.0;
  for (Real p : probs) {
    QCUT_CHECK(p >= -kTightTol, "multinomial probabilities must be non-negative");
    remaining_p += (p > 0.0 ? p : 0.0);
  }
  std::uint64_t remaining_n = n;
  for (std::size_t i = 0; i + 1 < probs.size() && remaining_n > 0; ++i) {
    const Real p = probs[i] > 0.0 ? probs[i] : 0.0;
    const Real cond = remaining_p > 0.0 ? p / remaining_p : 0.0;
    const std::uint64_t c = rng.binomial(remaining_n, cond > 1.0 ? 1.0 : cond);
    counts[i] = c;
    remaining_n -= c;
    remaining_p -= p;
  }
  counts.back() += remaining_n;
  return counts;
}

}  // namespace qcut
