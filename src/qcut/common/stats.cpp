#include "qcut/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "qcut/common/error.hpp"

namespace qcut {

void RunningStats::add(Real x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const Real delta = x - mean_;
  mean_ += delta / static_cast<Real>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const Real delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  const Real na = static_cast<Real>(n_);
  const Real nb = static_cast<Real>(other.n_);
  mean_ += delta * nb / static_cast<Real>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<Real>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

Real RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<Real>(n_ - 1) : 0.0;
}

Real RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Real RunningStats::sem() const noexcept {
  return n_ >= 2 ? stddev() / std::sqrt(static_cast<Real>(n_)) : 0.0;
}

void WeightedStats::add(Real value, Real weight) noexcept { stats_.add(value * weight); }

LinearFit linear_fit(const std::vector<Real>& x, const std::vector<Real>& y) {
  QCUT_CHECK(x.size() == y.size(), "linear_fit: size mismatch");
  QCUT_CHECK(x.size() >= 2, "linear_fit: need at least two points");
  const Real n = static_cast<Real>(x.size());
  Real sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const Real mx = sx / n;
  const Real my = sy / n;
  Real sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real dx = x[i] - mx;
    const Real dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    const Real ss_res = syy - fit.slope * sxy;
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

Histogram::Histogram(Real lo, Real hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  QCUT_CHECK(hi > lo, "Histogram: hi must exceed lo");
  QCUT_CHECK(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(Real x) noexcept {
  const Real t = (x - lo_) / (hi_ - lo_) * static_cast<Real>(counts_.size());
  std::int64_t b = static_cast<std::int64_t>(std::floor(t));
  b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  QCUT_CHECK(i < counts_.size(), "Histogram: bin out of range");
  return counts_[i];
}

Real Histogram::bin_lo(std::size_t i) const {
  QCUT_CHECK(i < counts_.size(), "Histogram: bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<Real>(i) / static_cast<Real>(counts_.size());
}

Real Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + (hi_ - lo_) / static_cast<Real>(counts_.size()); }

}  // namespace qcut
