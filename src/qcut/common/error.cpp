#include "qcut/common/error.hpp"

#include <sstream>

namespace qcut {

void throw_error(const char* /*file*/, int /*line*/, const std::string& msg) {
  throw Error(msg);
}

namespace detail {

std::string format_check_failure(const char* cond, const char* file, int line,
                                 const std::string& msg) {
  std::ostringstream os;
  os << "qcut check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}

}  // namespace detail
}  // namespace qcut
