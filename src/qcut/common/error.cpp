#include "qcut/common/error.hpp"

#include <sstream>

namespace qcut {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

void throw_error(const char* /*file*/, int /*line*/, const std::string& msg) {
  throw Error(msg);
}

namespace detail {

std::string format_check_failure(const char* cond, const char* file, int line,
                                 const std::string& msg) {
  std::ostringstream os;
  os << "qcut check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}

}  // namespace detail
}  // namespace qcut
