// Minimal CSV emission for the benchmark harness. Benches print the paper's
// data series both as human-readable tables (stdout) and machine-readable CSV
// files so the figures can be replotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends a row; the column count must match the header.
  void row(const std::vector<Real>& values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a Real with enough digits to round-trip.
std::string format_real(Real x);

}  // namespace qcut
