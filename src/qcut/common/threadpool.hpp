// A small fixed-size thread pool with a parallel_for convenience wrapper.
//
// The benchmark harness distributes Monte-Carlo trials across the pool; each
// task derives its own Rng stream from (seed, task index), so the numerical
// results are identical for any pool size, including size 1.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qcut {

class ThreadPool {
 public:
  /// Creates `n_threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// nested-parallelism guards: parallel_for from a worker would deadlock
  /// (it blocks on futures only the blocked workers could serve), so callers
  /// fall back to inline execution instead.
  bool on_worker_thread() const noexcept;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end). Reduces per-task overhead
  /// when the per-index work is tiny.
  void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t chunk,
                            const std::function<void(std::size_t, std::size_t)>& body);

  // Per-instance lifetime counters, always on (a couple of relaxed atomic
  // adds per task is noise against the lock the queue already takes). The
  // global metrics registry mirrors them under pool_tasks /
  // pool_queue_wait_ns / pool_busy_ns when metrics are enabled.
  std::uint64_t tasks_run() const noexcept { return tasks_run_.load(std::memory_order_relaxed); }
  /// Summed nanoseconds tasks spent queued before a worker picked them up.
  std::uint64_t queue_wait_ns() const noexcept {
    return queue_wait_ns_.load(std::memory_order_relaxed);
  }
  /// Summed nanoseconds workers spent inside task bodies.
  std::uint64_t busy_ns() const noexcept { return busy_ns_.load(std::memory_order_relaxed); }

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

/// Process-wide default pool (lazily constructed, sized to hardware).
ThreadPool& global_pool();

}  // namespace qcut
