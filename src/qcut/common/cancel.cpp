#include "qcut/common/cancel.hpp"

#include "qcut/obs/metrics.hpp"

namespace qcut {
namespace detail {

thread_local CancelToken* t_cancel = nullptr;

void cancel_poll_slow(CancelToken* token) {
  if (token->cancelled()) {
    obs::count(obs::Counter::kCancellations);
    throw Error("cancelled: the request was cancelled mid-execution",
                ErrorCode::kCancelled);
  }
  if (token->deadline_passed()) {
    obs::count(obs::Counter::kDeadlinesExceeded);
    throw Error("deadline_exceeded: the request's deadline passed mid-execution",
                ErrorCode::kDeadlineExceeded);
  }
}

}  // namespace detail
}  // namespace qcut
