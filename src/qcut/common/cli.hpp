// Tiny command-line option parser for benches and examples.
//
// Supports --flag, --key value and --key=value. Unknown arguments are kept
// (google-benchmark consumes its own flags from the same argv).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  Real get_real(const std::string& key, Real def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// argv entries not parsed as --options (including argv[0]).
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace qcut
