// Tiny command-line option parser for benches and examples.
//
// Supports --flag, --key value and --key=value. Unknown arguments are kept
// (google-benchmark consumes its own flags from the same argv).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  /// Typed getters return `def` when the option is absent and throw
  /// qcut::Error when it is present but does not parse in full — a typo'd
  /// value or a "--key" given without one must not silently become 0.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  Real get_real(const std::string& key, Real def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// argv entries not parsed as --options (including argv[0]).
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Resolves where a bench/example should write its output file: --out if
  /// given, then --<legacy_key> (e.g. the historical --json), then `filename`
  /// next to the executable (argv[0]'s directory — i.e. the build tree, never
  /// the caller's source checkout).
  std::string output_path(const std::string& legacy_key, const std::string& filename) const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// `filename` placed in the directory of `argv0` ("<dir>/<filename>"); just
/// `filename` when argv0 carries no directory component.
std::string path_beside_executable(const std::string& argv0, const std::string& filename);

}  // namespace qcut
