// Error handling: a single exception type plus check macros.
//
// The library throws qcut::Error for all contract violations (bad dimensions,
// invalid qubit indices, non-normalized inputs, ...). Hot loops use
// QCUT_DCHECK which compiles out in release builds.
//
// Every Error carries an ErrorCode so the service layer can ship failures
// over the wire as stable numeric statuses and clients can classify them
// (retryable vs permanent) without parsing message text.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qcut {

/// The request-lifecycle failure taxonomy, shared by the library, the wire
/// protocol (WireEstimateResponse::code), and clients. Values are wire-stable:
/// never renumber, only append.
enum class ErrorCode : std::uint8_t {
  kOk = 0,                ///< not an error (the success code on the wire)
  kInvalidRequest = 1,    ///< the request itself is malformed — permanent
  kDeadlineExceeded = 2,  ///< the request's deadline passed mid-execution
  kCancelled = 3,         ///< cancelled (caller left, server draining)
  kOverloaded = 4,        ///< admission control / drain rejection — retryable
  kInternal = 5,          ///< everything else (contract violations, faults)
};

/// Stable snake_case name of a code ("deadline_exceeded", ...).
const char* error_code_name(ErrorCode code) noexcept;

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);

namespace detail {
std::string format_check_failure(const char* cond, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace qcut

/// Always-on invariant check. Throws qcut::Error on failure.
#define QCUT_CHECK(cond, msg)                                                       \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::qcut::throw_error(__FILE__, __LINE__,                                       \
                          ::qcut::detail::format_check_failure(#cond, __FILE__,     \
                                                               __LINE__, (msg)));   \
    }                                                                               \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define QCUT_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define QCUT_DCHECK(cond, msg) QCUT_CHECK(cond, msg)
#endif
