// Error handling: a single exception type plus check macros.
//
// The library throws qcut::Error for all contract violations (bad dimensions,
// invalid qubit indices, non-normalized inputs, ...). Hot loops use
// QCUT_DCHECK which compiles out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace qcut {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);

namespace detail {
std::string format_check_failure(const char* cond, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace qcut

/// Always-on invariant check. Throws qcut::Error on failure.
#define QCUT_CHECK(cond, msg)                                                       \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::qcut::throw_error(__FILE__, __LINE__,                                       \
                          ::qcut::detail::format_check_failure(#cond, __FILE__,     \
                                                               __LINE__, (msg)));   \
    }                                                                               \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define QCUT_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define QCUT_DCHECK(cond, msg) QCUT_CHECK(cond, msg)
#endif
