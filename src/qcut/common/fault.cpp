#include "qcut/common/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "qcut/common/error.hpp"
#include "qcut/common/rng.hpp"
#include "qcut/obs/metrics.hpp"

namespace qcut {
namespace fault {

namespace {

enum class Kind : int { kNone = 0, kThrow, kDelay };

/// Per-site arming state. All fields are atomics written by arm/disarm and
/// read by fire(); relaxed ordering suffices because g_fault_armed is the
/// publication gate and chaos tests (de)arm between request waves anyway.
struct SiteState {
  std::atomic<int> kind{static_cast<int>(Kind::kNone)};
  std::atomic<std::uint64_t> threshold{0};  ///< fire iff draw <= threshold
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::uint64_t> delay_ms{0};
  std::atomic<std::uint64_t> counter{0};  ///< decisions consumed at this site
};

SiteState g_sites[kSiteCount];

constexpr const char* kSiteNames[kSiteCount] = {
    "wire.decode", "svc.plan", "exec.batch", "fragment.unit", "cache.insert", "pool.task",
};

int site_from_name(const std::string& name) {
  for (int i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      return i;
    }
  }
  return -1;
}

/// One clause: site:kind[:p][:seed]. Throws kInvalidRequest on bad syntax.
void arm_clause(const std::string& clause) {
  std::string parts[4];
  int n_parts = 0;
  std::size_t start = 0;
  while (n_parts < 4) {
    const std::size_t colon = clause.find(':', start);
    if (colon == std::string::npos) {
      parts[n_parts++] = clause.substr(start);
      break;
    }
    parts[n_parts++] = clause.substr(start, colon - start);
    start = colon + 1;
  }
  QCUT_CHECK(n_parts >= 2, "QCUT_FAULT: clause '" + clause + "' needs site:kind");

  const int site = site_from_name(parts[0]);
  if (site < 0) {
    throw Error("QCUT_FAULT: unknown site '" + parts[0] +
                    "' (wire.decode | svc.plan | exec.batch | fragment.unit | "
                    "cache.insert | pool.task)",
                ErrorCode::kInvalidRequest);
  }

  Kind kind = Kind::kNone;
  std::uint64_t delay_ms = 10;
  if (parts[1] == "throw") {
    kind = Kind::kThrow;
  } else if (parts[1].rfind("delay_ms", 0) == 0) {
    kind = Kind::kDelay;
    const std::size_t eq = parts[1].find('=');
    if (eq != std::string::npos) {
      delay_ms = std::strtoull(parts[1].c_str() + eq + 1, nullptr, 10);
    }
  } else {
    throw Error("QCUT_FAULT: unknown kind '" + parts[1] + "' (throw | delay_ms[=N])",
                ErrorCode::kInvalidRequest);
  }

  double p = 1.0;
  if (n_parts >= 3 && !parts[2].empty()) {
    p = std::strtod(parts[2].c_str(), nullptr);
    QCUT_CHECK(p >= 0.0 && p <= 1.0, "QCUT_FAULT: probability must be in [0,1]");
  }
  std::uint64_t seed = 1;
  if (n_parts >= 4 && !parts[3].empty()) {
    seed = std::strtoull(parts[3].c_str(), nullptr, 10);
  }

  SiteState& s = g_sites[site];
  s.threshold.store(p >= 1.0 ? ~0ULL
                             : static_cast<std::uint64_t>(p * 18446744073709551616.0),
                    std::memory_order_relaxed);
  s.seed.store(seed, std::memory_order_relaxed);
  s.delay_ms.store(delay_ms, std::memory_order_relaxed);
  s.counter.store(0, std::memory_order_relaxed);
  s.kind.store(static_cast<int>(kind), std::memory_order_relaxed);
}

/// Reads QCUT_FAULT once at process start (EnvInit pattern: g_fault_armed is
/// constant-initialized false, so hooks reached before this run are no-ops).
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("QCUT_FAULT");
    if (env != nullptr && env[0] != '\0') {
      try {
        arm_faults(env);
      } catch (const std::exception& e) {
        // A bad spec at static-init time must not terminate the process.
        std::fprintf(stderr, "qcut: ignoring malformed QCUT_FAULT: %s\n", e.what());
        disarm_faults();
      }
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {

std::atomic<bool> g_fault_armed{false};

void fire(Site site) {
  SiteState& s = g_sites[static_cast<int>(site)];
  const Kind kind = static_cast<Kind>(s.kind.load(std::memory_order_relaxed));
  if (kind == Kind::kNone) {
    return;  // a different site is armed
  }
  // Counter-seeded decision: the n-th arrival fires (or not) identically on
  // every run with the same spec — failures always reproduce.
  const std::uint64_t n = s.counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state = s.seed.load(std::memory_order_relaxed) ^
                        (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(site) + 1)) ^
                        (n * 0xbf58476d1ce4e5b9ULL);
  const std::uint64_t draw = splitmix64_next(state);
  if (draw > s.threshold.load(std::memory_order_relaxed)) {
    return;
  }
  obs::count(obs::Counter::kFaultsInjected);
  if (kind == Kind::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(s.delay_ms.load(std::memory_order_relaxed)));
    return;
  }
  throw Error("fault injected at " + std::string(site_name(site)) + " (hit #" +
                  std::to_string(n) + ", seed " +
                  std::to_string(s.seed.load(std::memory_order_relaxed)) + ")",
              ErrorCode::kInternal);
}

}  // namespace detail

const char* site_name(Site site) noexcept {
  const int i = static_cast<int>(site);
  return (i >= 0 && i < kSiteCount) ? kSiteNames[i] : "unknown";
}

void arm_faults(const std::string& spec) {
  disarm_faults();
  if (spec.empty()) {
    return;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string clause =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!clause.empty()) {
      arm_clause(clause);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  detail::g_fault_armed.store(true, std::memory_order_release);
}

void disarm_faults() {
  detail::g_fault_armed.store(false, std::memory_order_release);
  for (auto& s : g_sites) {
    s.kind.store(static_cast<int>(Kind::kNone), std::memory_order_relaxed);
    s.counter.store(0, std::memory_order_relaxed);
  }
}

bool faults_armed() noexcept { return detail::g_fault_armed.load(std::memory_order_acquire); }

}  // namespace fault
}  // namespace qcut
