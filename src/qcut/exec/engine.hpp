// The execution engine: one batched, parallel, cache-aware driver behind
// every shot-consuming path in qcut.
//
// An ExecutionEngine runs a ShotPlan against an ExecutionBackend:
//  * each TermBatch gets its own counter-based RNG substream
//    Rng(seed, batch.stream), so the estimate is bit-identical for any
//    thread-pool size (including 1) — randomness never depends on scheduling;
//  * per-batch outcome counts are integers, reduced per term in a fixed
//    order, so the floating-point recombination is also deterministic;
//  * the combine step implements both estimator laws (allocated / sampled)
//    from the per-term counts alone.
//
// Nesting note: the engine parallelizes over batches of ONE estimate. When
// run() is invoked from a worker of its own pool (an outer sweep already
// distributes work), it detects the re-entry and falls back to inline
// execution — same bits, no deadlock. Outer sweeps that drive a single rng
// through many estimates (e.g. run_fig6's per-state loop) use
// run_plan_with_rng instead.
#pragma once

#include <cstdint>
#include <memory>

#include "qcut/common/threadpool.hpp"
#include "qcut/exec/backend.hpp"
#include "qcut/exec/shot_plan.hpp"
#include "qcut/qpd/estimator.hpp"

namespace qcut {

struct EngineConfig {
  BackendKind backend = BackendKind::kBatchedBranch;
  /// nullptr → qcut::global_pool().
  ThreadPool* pool = nullptr;
  /// Plan split granularity (shots per batch) for the convenience entry
  /// points. Affects parallelism and stream layout, never the law.
  std::uint64_t max_batch_shots = ShotPlan::kDefaultMaxBatchShots;
  /// Plans with fewer batches run inline on the calling thread.
  std::size_t min_batches_to_parallelize = 2;
  /// When non-null, the convenience entry points (estimate_allocated /
  /// estimate_sampled) run against this caller-owned backend instead of
  /// constructing one — the service layer's cross-request reuse hook: a warm
  /// backend carries its branch/skeleton caches from prior runs of the same
  /// request. Must be bound to the Qpd passed in, and must outlive the call.
  /// `backend` is then only reported, not instantiated.
  const ExecutionBackend* shared_backend = nullptr;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineConfig cfg = {});

  const EngineConfig& config() const noexcept { return cfg_; }

  /// Paper's Sec. IV scheme on the configured backend.
  EstimationResult estimate_allocated(const Qpd& qpd, std::uint64_t shots, std::uint64_t seed,
                                      AllocRule rule = AllocRule::kProportional) const;

  /// Eq. 12 importance sampling on the configured backend. The multinomial
  /// term split draws from a dedicated plan substream of `seed`.
  EstimationResult estimate_sampled(const Qpd& qpd, std::uint64_t shots,
                                    std::uint64_t seed) const;

  /// Core driver: runs every batch of `plan` against `backend` with per-batch
  /// substreams of `seed`, then recombines. Bit-identical across pool sizes.
  EstimationResult run(const Qpd& qpd, const ShotPlan& plan, const ExecutionBackend& backend,
                       std::uint64_t seed) const;

 private:
  EngineConfig cfg_;
};

/// Recombines per-term −1-outcome counts into an EstimationResult according
/// to the plan's kind. Exposed for drivers and tests.
EstimationResult combine_counts(const Qpd& qpd, const ShotPlan& plan,
                                const std::vector<std::uint64_t>& ones_per_term);

/// Legacy serial driver: runs the plan's batches in order, drawing every
/// batch from the single caller-supplied `rng`. This reproduces the exact
/// random stream of the pre-engine estimators (and is safe inside ThreadPool
/// tasks — it never touches a pool).
EstimationResult run_plan_with_rng(const Qpd& qpd, const ShotPlan& plan,
                                   const ExecutionBackend& backend, Rng& rng);

}  // namespace qcut
