// BranchCache: one exact branch enumeration per QPD term, amortized over the
// whole run.
//
// The Monte-Carlo estimators only ever consume one number per term: the exact
// single-shot probability that the term's ±1 outcome is −1 (parity of the
// estimate cbits equals 1). Enumerating the term circuit's measurement
// branches once (run_branches) yields that probability exactly; every
// subsequent shot of the term is then a Bernoulli draw, and a whole batch is
// a single binomial draw — statistically identical in law to per-shot
// statevector simulation at a tiny fraction of the cost.
//
// The cache is lazy and thread-safe: concurrent batches of the same term
// serialize on a per-term std::call_once, while distinct terms enumerate in
// parallel.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "qcut/common/threadpool.hpp"
#include "qcut/qpd/qpd.hpp"

namespace qcut {

/// Exact P(outcome = −1) of one QPD term: the parity-one probability over the
/// term circuit's measurement branches.
Real term_prob_one(const QpdTerm& term);

class BranchCache {
 public:
  /// Computes a term's exact P(outcome = −1). The default enumerates the
  /// spliced term circuit (term_prob_one); FragmentBackend plugs in the
  /// fragment-local computation instead — same cache semantics either way.
  using ProbFn = std::function<Real(const QpdTerm&)>;

  /// Lazy cache: each term is enumerated on first use.
  explicit BranchCache(const Qpd& qpd);

  /// Lazy cache with a custom per-term probability computation.
  BranchCache(const Qpd& qpd, ProbFn prob_fn);

  /// Pre-seeded cache: `prob_one` (one entry per term) was computed
  /// externally; no enumeration will run.
  BranchCache(const Qpd& qpd, std::vector<Real> prob_one);

  const Qpd& qpd() const noexcept { return *qpd_; }

  /// Thread-safe: enumerates the term's branches on first call, then serves
  /// the cached probability.
  Real prob_one(std::size_t term) const;

  /// Forces every term and returns the full probability vector.
  std::vector<Real> all_prob_one() const;

  /// Forces every term, distributing the per-term enumerations across
  /// `pool`. Each term's value is computed exactly as prob_one would compute
  /// it (terms are independent), so the cache contents are bit-identical for
  /// any pool size. Falls back to the serial sweep from a pool worker.
  void prewarm(ThreadPool& pool) const;

  /// Number of terms enumerated so far (introspection for tests/benches).
  std::size_t computed_terms() const noexcept { return computed_.load(std::memory_order_relaxed); }

 private:
  const Qpd* qpd_;
  ProbFn prob_fn_;
  bool preseeded_ = false;
  mutable std::vector<Real> prob_;
  mutable std::unique_ptr<std::once_flag[]> once_;
  mutable std::atomic<std::size_t> computed_{0};
};

}  // namespace qcut
