#include "qcut/exec/branch_cache.hpp"

#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/fusion.hpp"

namespace qcut {

Real term_prob_one(const QpdTerm& term) {
  // Fuse before enumerating: branch enumeration pays every op once per live
  // branch, so composing 1q runs and diagonal runs up front multiplies out.
  const Circuit fused = fuse_circuit(term.circuit);
  Real acc = 0.0;
  for (const auto& b : run_branches(fused)) {
    int parity = 0;
    for (int cb : term.estimate_cbits) {
      parity ^= b.cbits[static_cast<std::size_t>(cb)];
    }
    if (parity == 1) {
      acc += b.prob;
    }
  }
  return acc;
}

BranchCache::BranchCache(const Qpd& qpd) : BranchCache(qpd, ProbFn(&term_prob_one)) {}

BranchCache::BranchCache(const Qpd& qpd, ProbFn prob_fn)
    : qpd_(&qpd),
      prob_fn_(std::move(prob_fn)),
      prob_(qpd.size(), 0.0),
      once_(new std::once_flag[qpd.size()]) {
  QCUT_CHECK(!qpd.empty(), "BranchCache: empty QPD");
  QCUT_CHECK(prob_fn_ != nullptr, "BranchCache: null probability function");
}

BranchCache::BranchCache(const Qpd& qpd, std::vector<Real> prob_one)
    : qpd_(&qpd), preseeded_(true), prob_(std::move(prob_one)) {
  QCUT_CHECK(!qpd.empty(), "BranchCache: empty QPD");
  QCUT_CHECK(prob_.size() == qpd.size(), "BranchCache: prob/term count mismatch");
  computed_.store(prob_.size(), std::memory_order_relaxed);
}

Real BranchCache::prob_one(std::size_t term) const {
  QCUT_CHECK(term < prob_.size(), "BranchCache::prob_one: term out of range");
  if (!preseeded_) {
    bool computed_here = false;
    std::call_once(once_[term], [this, term, &computed_here] {
      computed_here = true;
      obs::TraceSpan span("branch_cache.enumerate", static_cast<std::uint64_t>(term));
      prob_[term] = prob_fn_(qpd_->terms()[term]);
      computed_.fetch_add(1, std::memory_order_relaxed);
    });
    obs::count(computed_here ? obs::Counter::kBranchCacheMiss
                             : obs::Counter::kBranchCacheHit);
  } else {
    obs::count(obs::Counter::kBranchCacheHit);
  }
  return prob_[term];
}

std::vector<Real> BranchCache::all_prob_one() const {
  std::vector<Real> all(prob_.size());
  for (std::size_t i = 0; i < prob_.size(); ++i) {
    all[i] = prob_one(i);
  }
  return all;
}

void BranchCache::prewarm(ThreadPool& pool) const {
  if (preseeded_ || prob_.size() < 2 || pool.size() < 2 || pool.on_worker_thread()) {
    (void)all_prob_one();
    return;
  }
  pool.parallel_for(0, prob_.size(), [this](std::size_t i) { (void)prob_one(i); });
}

}  // namespace qcut
