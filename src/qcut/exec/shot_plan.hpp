// Shot planning: turning a Qpd plus a shot budget into a deterministic batch
// of independent work units.
//
// A ShotPlan fixes, up front and independently of how it will be executed,
// (a) how many shots each QPD term receives and (b) how those shots are split
// into TermBatch work units. Each batch carries its own RNG substream id, so
// a parallel driver produces bit-identical results for any thread-pool size
// (including 1): the randomness consumed by a batch depends only on
// (master seed, batch.stream), never on scheduling order.
//
// Two plan kinds mirror the two estimators of the paper:
//  * kAllocated — the Sec. IV experiment: the budget is split across terms by
//    an AllocRule (proportional to |c_i| by default) and the term means are
//    recombined as Σ c_i ⟨outcome⟩_i;
//  * kSampled   — textbook Eq. 12 importance sampling: term counts are drawn
//    from a multinomial over p_i = |c_i|/κ (identical in law to per-shot
//    categorical sampling) and recombined as κ·sign(c_i)·outcome averages.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "qcut/common/rng.hpp"
#include "qcut/qpd/qpd.hpp"
#include "qcut/qpd/shot_alloc.hpp"

namespace qcut {

/// One independent work unit: `shots` executions of QPD term `term`, driven
/// by RNG substream `stream` of the run's master seed.
struct TermBatch {
  std::size_t term = 0;
  std::uint64_t shots = 0;
  std::uint64_t stream = 0;
};

enum class PlanKind {
  kAllocated,  ///< fixed per-term budget, recombine Σ c_i ⟨o⟩_i
  kSampled,    ///< multinomial term counts, recombine κ Σ sign_i ⟨o⟩
};

struct ShotPlan {
  PlanKind kind = PlanKind::kAllocated;
  std::uint64_t total_shots = 0;
  std::vector<std::uint64_t> shots_per_term;  ///< one entry per QPD term
  std::vector<TermBatch> batches;             ///< only terms with shots > 0

  /// Default split granularity: large enough that per-batch overhead is
  /// negligible, small enough that typical budgets yield several batches per
  /// term for the parallel driver to spread.
  static constexpr std::uint64_t kDefaultMaxBatchShots = 4096;
  /// One batch per term (no splitting) — exact legacy shot ordering.
  static constexpr std::uint64_t kNoSplit = std::numeric_limits<std::uint64_t>::max();

  /// The paper's allocation scheme. `sigmas` is only consulted for
  /// AllocRule::kNeyman (per-term outcome standard deviations).
  static ShotPlan allocated(const Qpd& qpd, std::uint64_t shots, AllocRule rule,
                            const std::vector<Real>* sigmas = nullptr,
                            std::uint64_t max_batch_shots = kDefaultMaxBatchShots);

  /// Eq. 12 importance sampling: the multinomial term split is drawn from
  /// `rng` (plan construction is the only place a sampled plan consumes
  /// randomness outside its batches).
  static ShotPlan sampled(const Qpd& qpd, std::uint64_t shots, Rng& rng,
                          std::uint64_t max_batch_shots = kDefaultMaxBatchShots);

  /// Wraps an externally computed allocation (one entry per term) into a
  /// plan. Used by ablation benches that roll their own split.
  static ShotPlan from_allocation(PlanKind kind, const Qpd& qpd,
                                  std::vector<std::uint64_t> shots_per_term,
                                  std::uint64_t max_batch_shots = kDefaultMaxBatchShots);
};

}  // namespace qcut
