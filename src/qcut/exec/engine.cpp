#include "qcut/exec/engine.hpp"

#include <cmath>

#include "qcut/common/cancel.hpp"
#include "qcut/common/error.hpp"
#include "qcut/common/fault.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"

namespace qcut {

namespace {

/// Substream id for randomness consumed during plan construction (the sampled
/// plan's multinomial split). Far outside the dense batch-id range, so it can
/// never collide with a batch stream.
constexpr std::uint64_t kPlanStream = 0x706c616e2d69644cULL;  // "plan-idL"
}  // namespace

EstimationResult combine_counts(const Qpd& qpd, const ShotPlan& plan,
                                const std::vector<std::uint64_t>& ones_per_term) {
  QCUT_CHECK(ones_per_term.size() == qpd.size(), "combine_counts: count/term mismatch");
  obs::TraceSpan span("engine.combine");
  obs::count(obs::Counter::kShotsSampled, plan.total_shots);
  EstimationResult res;
  res.kappa = qpd.kappa();
  res.shots_per_term = plan.shots_per_term;
  res.shots_used = plan.total_shots;

  Real acc = 0.0;
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const std::uint64_t n = plan.shots_per_term[i];
    if (n == 0) {
      continue;  // term contributes nothing at this budget (matches practice)
    }
    const std::uint64_t ones = ones_per_term[i];
    const QpdTerm& term = qpd.terms()[i];
    if (plan.kind == PlanKind::kAllocated) {
      // outcome mean: (+1)(n-ones) + (-1)(ones) over n
      const Real mean = 1.0 - 2.0 * static_cast<Real>(ones) / static_cast<Real>(n);
      acc += term.coefficient * mean;
    } else {
      const Real sign = term.coefficient >= 0.0 ? 1.0 : -1.0;
      acc += res.kappa * sign *
             (static_cast<Real>(n) - 2.0 * static_cast<Real>(ones));
    }
    res.entangled_pairs_used += n * static_cast<std::uint64_t>(term.entangled_pairs);
  }
  if (plan.kind == PlanKind::kSampled && plan.total_shots > 0) {
    acc /= static_cast<Real>(plan.total_shots);
  }
  res.estimate = acc;
  return res;
}

EstimationResult run_plan_with_rng(const Qpd& qpd, const ShotPlan& plan,
                                   const ExecutionBackend& backend, Rng& rng) {
  std::vector<std::uint64_t> ones_per_term(qpd.size(), 0);
  for (const TermBatch& batch : plan.batches) {
    cancel_poll();
    ones_per_term[batch.term] += backend.run_batch(batch, rng);
  }
  return combine_counts(qpd, plan, ones_per_term);
}

ExecutionEngine::ExecutionEngine(EngineConfig cfg) : cfg_(cfg) {
  QCUT_CHECK(cfg_.max_batch_shots >= 1, "ExecutionEngine: max_batch_shots must be >= 1");
}

EstimationResult ExecutionEngine::run(const Qpd& qpd, const ShotPlan& plan,
                                      const ExecutionBackend& backend,
                                      std::uint64_t seed) const {
  QCUT_CHECK(!qpd.empty(), "ExecutionEngine::run: empty QPD");
  QCUT_CHECK(plan.shots_per_term.size() == qpd.size(),
             "ExecutionEngine::run: plan built for a different QPD");
  obs::TraceSpan run_span("engine.run", static_cast<std::uint64_t>(plan.batches.size()));
  obs::count(obs::Counter::kBatchesRun, plan.batches.size());

  // Per-batch counts first (integer, order-independent), reduced per term in
  // index order afterwards — the estimate is bit-identical for any pool size.
  std::vector<std::uint64_t> batch_ones(plan.batches.size(), 0);
  // Batch starts are the engine's cancellation quantum. The token is captured
  // here and re-installed inside the lambda: parallel_for runs it on pool
  // workers whose thread-local scope is not the requesting thread's.
  CancelToken* cancel = current_cancel_token();
  const auto run_batch = [&, cancel](std::size_t b) {
    ScopedCancelScope scope(cancel);
    cancel_poll();
    fault::maybe_inject(fault::Site::kExecBatch);
    obs::TraceSpan span("engine.batch", static_cast<std::uint64_t>(plan.batches[b].term));
    Rng rng(seed, plan.batches[b].stream);
    batch_ones[b] = backend.run_batch(plan.batches[b], rng);
  };

  // Inline fallback when already on one of the pool's workers: re-entering
  // parallel_for there would deadlock (the blocked worker is needed to serve
  // its own subtasks). Same bits either way — streams are per batch.
  ThreadPool* pool = cfg_.pool != nullptr ? cfg_.pool : &global_pool();
  if (plan.batches.size() < cfg_.min_batches_to_parallelize || pool->on_worker_thread()) {
    for (std::size_t b = 0; b < plan.batches.size(); ++b) {
      run_batch(b);
    }
  } else {
    pool->parallel_for(0, plan.batches.size(), run_batch);
  }

  std::vector<std::uint64_t> ones_per_term(qpd.size(), 0);
  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    ones_per_term[plan.batches[b].term] += batch_ones[b];
  }
  return combine_counts(qpd, plan, ones_per_term);
}

EstimationResult ExecutionEngine::estimate_allocated(const Qpd& qpd, std::uint64_t shots,
                                                     std::uint64_t seed, AllocRule rule) const {
  const ShotPlan plan =
      ShotPlan::allocated(qpd, shots, rule, /*sigmas=*/nullptr, cfg_.max_batch_shots);
  if (cfg_.shared_backend != nullptr) {
    return run(qpd, plan, *cfg_.shared_backend, seed);
  }
  // The fragment backend also gets the engine's pool: when the plan is too
  // small for batch parallelism (wide runs often have few batches and huge
  // per-term enumeration cost), the per-term (fragment, read-assignment)
  // units still spread across it. Either way the result is bit-identical.
  const auto backend = make_backend(cfg_.backend, qpd, cfg_.pool);
  return run(qpd, plan, *backend, seed);
}

EstimationResult ExecutionEngine::estimate_sampled(const Qpd& qpd, std::uint64_t shots,
                                                   std::uint64_t seed) const {
  Rng plan_rng(seed, kPlanStream);
  const ShotPlan plan = ShotPlan::sampled(qpd, shots, plan_rng, cfg_.max_batch_shots);
  if (cfg_.shared_backend != nullptr) {
    return run(qpd, plan, *cfg_.shared_backend, seed);
  }
  const auto backend = make_backend(cfg_.backend, qpd, cfg_.pool);
  return run(qpd, plan, *backend, seed);
}

}  // namespace qcut
