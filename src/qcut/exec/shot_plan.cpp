#include "qcut/exec/shot_plan.hpp"

#include <cmath>

namespace qcut {

namespace {

std::vector<Real> abs_coefficients(const Qpd& qpd) {
  std::vector<Real> w;
  w.reserve(qpd.size());
  for (const auto& t : qpd.terms()) {
    w.push_back(std::abs(t.coefficient));
  }
  return w;
}

}  // namespace

ShotPlan ShotPlan::from_allocation(PlanKind kind, const Qpd& qpd,
                                   std::vector<std::uint64_t> shots_per_term,
                                   std::uint64_t max_batch_shots) {
  QCUT_CHECK(!qpd.empty(), "ShotPlan: empty QPD");
  QCUT_CHECK(shots_per_term.size() == qpd.size(), "ShotPlan: allocation/term count mismatch");
  QCUT_CHECK(max_batch_shots >= 1, "ShotPlan: max_batch_shots must be >= 1");
  ShotPlan plan;
  plan.kind = kind;
  plan.shots_per_term = std::move(shots_per_term);
  std::uint64_t stream = 0;
  for (std::size_t i = 0; i < plan.shots_per_term.size(); ++i) {
    std::uint64_t remaining = plan.shots_per_term[i];
    plan.total_shots += remaining;
    while (remaining > 0) {
      const std::uint64_t n = remaining < max_batch_shots ? remaining : max_batch_shots;
      plan.batches.push_back(TermBatch{i, n, stream++});
      remaining -= n;
    }
  }
  return plan;
}

ShotPlan ShotPlan::allocated(const Qpd& qpd, std::uint64_t shots, AllocRule rule,
                             const std::vector<Real>* sigmas, std::uint64_t max_batch_shots) {
  QCUT_CHECK(!qpd.empty(), "ShotPlan::allocated: empty QPD");
  return from_allocation(PlanKind::kAllocated, qpd,
                         allocate_shots(abs_coefficients(qpd), shots, rule, sigmas),
                         max_batch_shots);
}

ShotPlan ShotPlan::sampled(const Qpd& qpd, std::uint64_t shots, Rng& rng,
                           std::uint64_t max_batch_shots) {
  QCUT_CHECK(!qpd.empty(), "ShotPlan::sampled: empty QPD");
  std::vector<std::uint64_t> counts(qpd.size(), 0);
  if (shots > 0) {
    counts = multinomial(rng, shots, qpd.probabilities());
  }
  return from_allocation(PlanKind::kSampled, qpd, std::move(counts), max_batch_shots);
}

}  // namespace qcut
