#include "qcut/exec/backend.hpp"

#include <string>

#include "qcut/common/error.hpp"
#include "qcut/cut/fragment.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

SerialShotBackend::SerialShotBackend(const Qpd& qpd) : qpd_(&qpd) {
  QCUT_CHECK(!qpd.empty(), "SerialShotBackend: empty QPD");
}

std::uint64_t SerialShotBackend::run_batch(const TermBatch& batch, Rng& rng) const {
  QCUT_CHECK(batch.term < qpd_->size(), "SerialShotBackend: term out of range");
  const QpdTerm& term = qpd_->terms()[batch.term];
  std::uint64_t ones = 0;
  for (std::uint64_t s = 0; s < batch.shots; ++s) {
    const ShotOutcome out = run_shot(term.circuit, rng);
    int parity = 0;
    for (int cb : term.estimate_cbits) {
      parity ^= out.cbits[static_cast<std::size_t>(cb)];
    }
    ones += static_cast<std::uint64_t>(parity);
  }
  return ones;
}

BatchedBranchBackend::BatchedBranchBackend(const Qpd& qpd)
    : qpd_(&qpd), cache_(std::make_shared<BranchCache>(qpd)) {}

BatchedBranchBackend::BatchedBranchBackend(const Qpd& qpd, std::vector<Real> prob_one)
    : qpd_(&qpd), cache_(std::make_shared<BranchCache>(qpd, std::move(prob_one))) {}

BatchedBranchBackend::BatchedBranchBackend(const Qpd& qpd, std::shared_ptr<BranchCache> cache)
    : qpd_(&qpd), cache_(std::move(cache)) {
  QCUT_CHECK(cache_ != nullptr, "BatchedBranchBackend: null cache");
  QCUT_CHECK(&cache_->qpd() == qpd_, "BatchedBranchBackend: cache bound to a different QPD");
}

std::uint64_t BatchedBranchBackend::run_batch(const TermBatch& batch, Rng& rng) const {
  QCUT_CHECK(batch.term < qpd_->size(), "BatchedBranchBackend: term out of range");
  return rng.binomial(batch.shots, cache_->prob_one(batch.term));
}

FragmentBackend::FragmentBackend(const Qpd& qpd, int max_fragment_width, ThreadPool* pool)
    : FragmentBackend(qpd, max_fragment_width, pool, nullptr, nullptr) {}

FragmentBackend::FragmentBackend(const Qpd& qpd, int max_fragment_width, ThreadPool* pool,
                                 std::shared_ptr<SplitSkeletonCache> skeletons,
                                 std::shared_ptr<BranchCache> cache)
    : qpd_(&qpd),
      max_fragment_width_(max_fragment_width > 0 ? max_fragment_width
                                                 : Statevector::kMaxQubits),
      pool_(pool),
      skeletons_(skeletons != nullptr ? std::move(skeletons)
                                      : std::make_shared<SplitSkeletonCache>()) {
  QCUT_CHECK(max_fragment_width_ <= Statevector::kMaxQubits,
             "FragmentBackend: width cap exceeds the statevector engine cap");
  if (cache != nullptr) {
    QCUT_CHECK(&cache->qpd() == qpd_, "FragmentBackend: cache bound to a different QPD");
    cache_ = std::move(cache);
    return;
  }
  const int cap = max_fragment_width_;
  const auto skels = skeletons_;
  cache_ = std::make_shared<BranchCache>(qpd, [cap, pool, skels](const QpdTerm& term) {
    FragmentSplit split = [&] {
      obs::TraceSpan span("fragment.split");
      return split_term(term, *skels->get(term.circuit));
    }();
    QCUT_CHECK(split.max_width <= cap,
               "FragmentBackend: a term fragment exceeds the width cap (" +
                   std::to_string(split.max_width) + " > " + std::to_string(cap) +
                   " qubits) — add cuts, and note that entangled-resource cuts "
                   "(nme/distill) merge both sides into one fragment: wide runs "
                   "need entanglement-free plans (pair_budget = 0)");
    // Gate fusion before evaluation: fewer full-state sweeps per branch. The
    // prefix/suffix boundary is preserved, so prefix caching is unaffected.
    fuse_split_circuits(split);
    return fragment_term_prob_one(split, pool);
  });
}

std::uint64_t FragmentBackend::run_batch(const TermBatch& batch, Rng& rng) const {
  QCUT_CHECK(batch.term < qpd_->size(), "FragmentBackend: term out of range");
  return rng.binomial(batch.shots, cache_->prob_one(batch.term));
}

void FragmentBackend::prewarm() const {
  if (pool_ != nullptr) {
    cache_->prewarm(*pool_);
  } else {
    (void)cache_->all_prob_one();
  }
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerialShot:
      return "serial-shot";
    case BackendKind::kBatchedBranch:
      return "batched-branch";
    case BackendKind::kFragment:
      return "fragment";
  }
  return "unknown";
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const Qpd& qpd,
                                               ThreadPool* pool) {
  return make_backend(kind, qpd, pool, nullptr);
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const Qpd& qpd,
                                               ThreadPool* pool,
                                               std::shared_ptr<SplitSkeletonCache> skeletons) {
  switch (kind) {
    case BackendKind::kSerialShot:
      return std::make_unique<SerialShotBackend>(qpd);
    case BackendKind::kBatchedBranch:
      return std::make_unique<BatchedBranchBackend>(qpd);
    case BackendKind::kFragment:
      // The global pool is resolved here, not by the callers, so backends
      // that never use a pool cannot construct it as a side effect.
      return std::make_unique<FragmentBackend>(qpd, /*max_fragment_width=*/0,
                                               pool != nullptr ? pool : &global_pool(),
                                               std::move(skeletons), nullptr);
  }
  throw Error("make_backend: unknown backend kind");
}

}  // namespace qcut
