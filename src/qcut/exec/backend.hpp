// Execution backends: how a TermBatch turns into an outcome count.
//
// Both backends produce the number of −1 outcomes ("ones") among the batch's
// shots. They are interchangeable in law:
//  * SerialShotBackend    — the reference semantics: every shot is a full
//    stochastic statevector simulation of the term circuit (what a quantum
//    device does). Kept for validation and as the honest-cost baseline.
//  * BatchedBranchBackend — enumerates the term's measurement branches once
//    (through a shared BranchCache) and services the whole batch with a
//    single binomial draw. Orders of magnitude fewer statevector evolutions;
//    the engine-equivalence tests pin the distributional match.
//
// Backends are bound to one Qpd and must be callable concurrently from many
// threads (they are — SerialShotBackend is stateless, BatchedBranchBackend's
// cache is thread-safe).
#pragma once

#include <memory>
#include <string>

#include "qcut/common/rng.hpp"
#include "qcut/cut/fragment.hpp"
#include "qcut/exec/branch_cache.hpp"
#include "qcut/exec/shot_plan.hpp"
#include "qcut/qpd/qpd.hpp"

namespace qcut {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string name() const = 0;

  /// Runs `batch.shots` executions of term `batch.term`, drawing all
  /// randomness from `rng`; returns the count of −1 outcomes.
  virtual std::uint64_t run_batch(const TermBatch& batch, Rng& rng) const = 0;
};

/// Per-shot stochastic statevector simulation (legacy semantics).
class SerialShotBackend final : public ExecutionBackend {
 public:
  explicit SerialShotBackend(const Qpd& qpd);

  std::string name() const override { return "serial-shot"; }
  std::uint64_t run_batch(const TermBatch& batch, Rng& rng) const override;

 private:
  const Qpd* qpd_;
};

/// Branch-cached binomial sampling (the fast default).
class BatchedBranchBackend final : public ExecutionBackend {
 public:
  explicit BatchedBranchBackend(const Qpd& qpd);
  /// Reuses precomputed per-term probabilities (e.g. across repetitions).
  BatchedBranchBackend(const Qpd& qpd, std::vector<Real> prob_one);
  /// Shares an existing cache (e.g. across shot-grid entries of one input).
  BatchedBranchBackend(const Qpd& qpd, std::shared_ptr<BranchCache> cache);

  std::string name() const override { return "batched-branch"; }
  std::uint64_t run_batch(const TermBatch& batch, Rng& rng) const override;

  const BranchCache& cache() const noexcept { return *cache_; }

 private:
  const Qpd* qpd_;
  std::shared_ptr<BranchCache> cache_;
};

/// Fragment-local branch-cached sampling: each term's exact −1-outcome
/// probability is computed by enumerating its *fragments* independently
/// (qcut/cut/fragment.hpp) and recombining through the cross-fragment
/// classical bits — the spliced state is never materialized, so memory is
/// bounded by the widest fragment instead of the total spliced width. Batches
/// then sample the same single binomial as BatchedBranchBackend, so the two
/// backends are identical in law: the exact per-term probabilities agree up
/// to float reassociation (the equivalence tests pin 1e-12).
class FragmentBackend final : public ExecutionBackend {
 public:
  /// `max_fragment_width` caps the widest fragment this backend will
  /// enumerate (0 defaults to the statevector engine's hard cap). When `pool`
  /// is non-null, each term's (fragment, read-assignment) work units are
  /// distributed across it *if* the caller is not already one of its workers
  /// (calls arriving from the engine's batch-parallel driver run inline —
  /// the engine already parallelizes across terms). Splitting reuses one
  /// SplitSkeletonCache across all terms: the 8^K gadget variants of a cut
  /// plan share their split structure, so per-term splitting is a cheap op
  /// replay. Results are bit-identical for any pool (or none).
  explicit FragmentBackend(const Qpd& qpd, int max_fragment_width = 0,
                           ThreadPool* pool = nullptr);

  /// Cross-request construction: shares a caller-owned skeleton cache (e.g.
  /// the service layer's process-lifetime cache) and, optionally, an existing
  /// BranchCache bound to the *same* Qpd object — a warm cache from a prior
  /// run of the identical request skips every enumeration. Pass nullptr for
  /// either to get a fresh private one.
  FragmentBackend(const Qpd& qpd, int max_fragment_width, ThreadPool* pool,
                  std::shared_ptr<SplitSkeletonCache> skeletons,
                  std::shared_ptr<BranchCache> cache);

  std::string name() const override { return "fragment"; }
  std::uint64_t run_batch(const TermBatch& batch, Rng& rng) const override;

  /// Forces every term's fragment enumeration, distributing terms across the
  /// constructor's pool (the serial sweep when none was given). Always the
  /// same pool as the per-term work units — two different pools would evade
  /// the worker-reentrancy guard and oversubscribe.
  void prewarm() const;

  const BranchCache& cache() const noexcept { return *cache_; }
  const SplitSkeletonCache& skeletons() const noexcept { return *skeletons_; }
  int max_fragment_width() const noexcept { return max_fragment_width_; }

 private:
  const Qpd* qpd_;
  int max_fragment_width_ = 0;
  ThreadPool* pool_ = nullptr;
  std::shared_ptr<SplitSkeletonCache> skeletons_;
  std::shared_ptr<BranchCache> cache_;
};

enum class BackendKind {
  kSerialShot,
  kBatchedBranch,
  kFragment,
};

const char* to_string(BackendKind kind);

/// Factory bound to `qpd` (which must outlive the backend). `pool` is used
/// only by kFragment (for within-term work-unit distribution); the other
/// backends ignore it.
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const Qpd& qpd,
                                               ThreadPool* pool = nullptr);

/// As above, sharing a caller-owned skeleton cache with kFragment backends
/// (ignored by the other kinds; nullptr falls back to a private cache). The
/// service layer passes its process-lifetime cache here so split skeletons
/// survive across requests.
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const Qpd& qpd,
                                               ThreadPool* pool,
                                               std::shared_ptr<SplitSkeletonCache> skeletons);

}  // namespace qcut
