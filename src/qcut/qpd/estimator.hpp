// Monte-Carlo estimation of Tr[O E(ρ)] from a quasiprobability decomposition
// (Eq. 12 of the paper).
//
// Three estimators, all unbiased (up to empty-term truncation at tiny shot
// counts, identical to practice):
//  * estimate_sampled      — per-shot term sampling i ~ p_i (textbook Eq. 12);
//  * estimate_allocated    — the paper's experiment: a fixed budget is split
//    across terms proportionally to |c_i|, each subcircuit is executed
//    shot-by-shot, and the term means are recombined as Σ c_i ⟨outcome⟩_i;
//  * estimate_allocated_fast — statistically identical to estimate_allocated
//    but samples each term's outcome count from Binomial(n_i, p_i^(1)) with
//    the exact single-shot probability computed once per term. This is what
//    lets the benches run the paper's 1000-state × 6-entanglement sweep in
//    seconds; a gtest asserts its distribution matches the slow path.
//
// All entry points are thin wrappers over the qcut::exec execution engine
// (ShotPlan + ExecutionBackend + combine_counts); use ExecutionEngine
// directly for batch-parallel, pool-size-invariant estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "qcut/common/rng.hpp"
#include "qcut/qpd/qpd.hpp"
#include "qcut/qpd/shot_alloc.hpp"

namespace qcut {

struct EstimationResult {
  Real estimate = 0.0;            ///< estimate of Tr[O E(ρ)]
  std::uint64_t shots_used = 0;   ///< total circuit executions
  Real kappa = 0.0;               ///< sampling overhead of the QPD
  std::uint64_t entangled_pairs_used = 0;  ///< NME states consumed
  std::vector<std::uint64_t> shots_per_term;
};

/// Per-shot importance sampling over terms (Eq. 12).
EstimationResult estimate_sampled(const Qpd& qpd, std::uint64_t shots, Rng& rng);

/// The paper's allocation scheme: split the budget across subcircuits
/// proportionally to |c_i| (or the requested rule), estimate each term's
/// outcome mean, recombine Σ c_i ⟨o⟩_i.
EstimationResult estimate_allocated(const Qpd& qpd, std::uint64_t shots, Rng& rng,
                                    AllocRule rule = AllocRule::kProportional);

/// Exact single-shot statistics of each term: P(outcome = -1), i.e.
/// P(estimate_cbit = 1), computed by exact branch enumeration.
std::vector<Real> exact_term_prob_one(const Qpd& qpd);

/// Fast path: like estimate_allocated but draws each term's "#ones" from a
/// binomial with the exact per-shot probability `prob_one[i]` (precompute via
/// exact_term_prob_one and reuse across repetitions/shot counts).
EstimationResult estimate_allocated_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                         std::uint64_t shots, Rng& rng,
                                         AllocRule rule = AllocRule::kProportional);

/// Per-shot-sampling fast path using the same precomputed probabilities.
EstimationResult estimate_sampled_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                       std::uint64_t shots, Rng& rng);

/// The exact value the estimators converge to: Σ c_i E[outcome_i].
Real exact_value(const Qpd& qpd);

/// Exact single-shot variance of the per-shot-sampled estimator (Eq. 12):
/// Var = κ² Σ p_i E[o_i²] − (Σ c_i E[o_i])². With ±1 outcomes E[o²]=1, so
/// Var = κ² − value². Provided for the κ-scaling bench and tests.
Real sampled_estimator_variance(const Qpd& qpd);

}  // namespace qcut
