// Shot allocation across QPD terms.
//
// The paper's experiment distributes a fixed shot budget over the subcircuits
// "proportionally to their coefficients" (Sec. IV). We implement that rule
// plus two ablations: Hamilton's largest-remainder rounding and Neyman
// allocation (proportional to |c_i|·σ_i, optimal when per-term variances are
// known).
#pragma once

#include <cstdint>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

enum class AllocRule {
  kProportional,      ///< floor(p_i N), leftovers to the largest weights (paper's rule)
  kLargestRemainder,  ///< Hamilton apportionment on the fractional parts
  kNeyman,            ///< weights |c_i|·σ_i (requires per-term std deviations)
};

/// Splits `total` shots across terms with sampling weights `weights`
/// (typically |c_i|). For kNeyman, `sigmas` must be provided (same length).
/// Every returned allocation sums to exactly `total`.
std::vector<std::uint64_t> allocate_shots(const std::vector<Real>& weights, std::uint64_t total,
                                          AllocRule rule,
                                          const std::vector<Real>* sigmas = nullptr);

}  // namespace qcut
