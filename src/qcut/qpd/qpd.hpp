// Quasiprobability decompositions (Sec. II-B).
//
// A Qpd is a list of terms E = Σ c_i F_i where each F_i is realized by a
// concrete circuit. Executing term i and recording a ±1-valued measurement
// into `estimate_cbit` yields the Monte-Carlo estimator of Eq. (12):
//   Tr[O E(ρ)] = κ Σ_i p_i sign(c_i) E[outcome_i],  κ = Σ|c_i|, p_i = |c_i|/κ.
#pragma once

#include <string>
#include <vector>

#include "qcut/sim/circuit.hpp"

namespace qcut {

struct QpdTerm {
  Real coefficient = 0.0;  ///< signed c_i
  Circuit circuit;         ///< realizes F_i including input prep + O-measurement
  /// Classical bits whose parity carries the ±1 outcome of O: outcome =
  /// (−1)^{⊕ bits}. Single-wire cuts use one bit; an n-wire cut measuring
  /// Z⊗…⊗Z uses one bit per receiver wire.
  std::vector<int> estimate_cbits{0};
  int entangled_pairs = 0; ///< NME resource states consumed per execution
  std::string label;
};

class Qpd {
 public:
  Qpd() = default;

  Qpd& add(QpdTerm term);

  const std::vector<QpdTerm>& terms() const noexcept { return terms_; }
  std::size_t size() const noexcept { return terms_.size(); }
  bool empty() const noexcept { return terms_.empty(); }

  /// Sampling overhead κ = Σ |c_i| (the variance inflation factor; shot cost
  /// scales as κ²).
  Real kappa() const;

  /// Σ c_i — equals 1 for a decomposition of a trace-preserving channel.
  Real coefficient_sum() const;

  /// Sampling probabilities p_i = |c_i| / κ.
  std::vector<Real> probabilities() const;

  /// sign(c_i) ∈ {-1, +1} per term.
  std::vector<Real> signs() const;

  /// Expected number of entangled pairs consumed per QPD sample:
  /// Σ p_i · pairs_i. For the Theorem-2 cut this equals 2(k²+1)/(k+1)²·…/κ —
  /// see bench_pair_consumption.
  Real expected_pairs_per_sample() const;

 private:
  std::vector<QpdTerm> terms_;
};

}  // namespace qcut
