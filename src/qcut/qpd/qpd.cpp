#include "qcut/qpd/qpd.hpp"

#include <cmath>

#include "qcut/common/error.hpp"

namespace qcut {

Qpd& Qpd::add(QpdTerm term) {
  QCUT_CHECK(std::abs(term.coefficient) > 0.0, "Qpd::add: zero coefficient");
  QCUT_CHECK(!term.estimate_cbits.empty(), "Qpd::add: no estimate cbits");
  for (int cb : term.estimate_cbits) {
    QCUT_CHECK(cb >= 0 && cb < term.circuit.n_cbits(), "Qpd::add: estimate cbit out of range");
  }
  terms_.push_back(std::move(term));
  return *this;
}

Real Qpd::kappa() const {
  Real k = 0.0;
  for (const auto& t : terms_) {
    k += std::abs(t.coefficient);
  }
  return k;
}

Real Qpd::coefficient_sum() const {
  Real s = 0.0;
  for (const auto& t : terms_) {
    s += t.coefficient;
  }
  return s;
}

std::vector<Real> Qpd::probabilities() const {
  const Real k = kappa();
  QCUT_CHECK(k > 0.0, "Qpd: empty decomposition");
  std::vector<Real> p;
  p.reserve(terms_.size());
  for (const auto& t : terms_) {
    p.push_back(std::abs(t.coefficient) / k);
  }
  return p;
}

std::vector<Real> Qpd::signs() const {
  std::vector<Real> s;
  s.reserve(terms_.size());
  for (const auto& t : terms_) {
    s.push_back(t.coefficient >= 0.0 ? 1.0 : -1.0);
  }
  return s;
}

Real Qpd::expected_pairs_per_sample() const {
  const auto p = probabilities();
  Real acc = 0.0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    acc += p[i] * static_cast<Real>(terms_[i].entangled_pairs);
  }
  return acc;
}

}  // namespace qcut
