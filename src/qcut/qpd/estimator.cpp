// The estimator entry points are thin wrappers over the qcut::exec layer:
// plans come from ShotPlan, shot execution from the ExecutionBackend
// implementations, and recombination from combine_counts. Single-batch-per-
// term plans driven by the caller's rng (run_plan_with_rng) reproduce the
// exact random streams of the original hand-rolled loops on the fast paths.
#include "qcut/qpd/estimator.hpp"

#include <cmath>

#include "qcut/exec/engine.hpp"
#include "qcut/obs/trace.hpp"

namespace qcut {

EstimationResult estimate_sampled(const Qpd& qpd, std::uint64_t shots, Rng& rng) {
  obs::TraceSpan span("estimator.aggregate", static_cast<std::uint64_t>(qpd.size()));
  QCUT_CHECK(!qpd.empty(), "estimate_sampled: empty QPD");
  const ShotPlan plan = ShotPlan::sampled(qpd, shots, rng, ShotPlan::kNoSplit);
  const SerialShotBackend backend(qpd);
  return run_plan_with_rng(qpd, plan, backend, rng);
}

EstimationResult estimate_allocated(const Qpd& qpd, std::uint64_t shots, Rng& rng,
                                    AllocRule rule) {
  obs::TraceSpan span("estimator.aggregate", static_cast<std::uint64_t>(qpd.size()));
  QCUT_CHECK(!qpd.empty(), "estimate_allocated: empty QPD");
  const ShotPlan plan =
      ShotPlan::allocated(qpd, shots, rule, /*sigmas=*/nullptr, ShotPlan::kNoSplit);
  const SerialShotBackend backend(qpd);
  return run_plan_with_rng(qpd, plan, backend, rng);
}

std::vector<Real> exact_term_prob_one(const Qpd& qpd) {
  obs::TraceSpan span("estimator.exact_probs", static_cast<std::uint64_t>(qpd.size()));
  std::vector<Real> p;
  p.reserve(qpd.size());
  for (const auto& t : qpd.terms()) {
    p.push_back(term_prob_one(t));
  }
  return p;
}

EstimationResult estimate_allocated_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                         std::uint64_t shots, Rng& rng, AllocRule rule) {
  obs::TraceSpan span("estimator.aggregate", static_cast<std::uint64_t>(qpd.size()));
  QCUT_CHECK(!qpd.empty(), "estimate_allocated_fast: empty QPD");
  QCUT_CHECK(prob_one.size() == qpd.size(), "estimate_allocated_fast: prob/term mismatch");
  const ShotPlan plan =
      ShotPlan::allocated(qpd, shots, rule, /*sigmas=*/nullptr, ShotPlan::kNoSplit);
  const BatchedBranchBackend backend(qpd, prob_one);
  return run_plan_with_rng(qpd, plan, backend, rng);
}

EstimationResult estimate_sampled_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                       std::uint64_t shots, Rng& rng) {
  obs::TraceSpan span("estimator.aggregate", static_cast<std::uint64_t>(qpd.size()));
  QCUT_CHECK(!qpd.empty(), "estimate_sampled_fast: empty QPD");
  QCUT_CHECK(prob_one.size() == qpd.size(), "estimate_sampled_fast: prob/term mismatch");
  const ShotPlan plan = ShotPlan::sampled(qpd, shots, rng, ShotPlan::kNoSplit);
  const BatchedBranchBackend backend(qpd, prob_one);
  return run_plan_with_rng(qpd, plan, backend, rng);
}

Real exact_value(const Qpd& qpd) {
  Real acc = 0.0;
  const auto probs = exact_term_prob_one(qpd);
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const Real mean = 1.0 - 2.0 * probs[i];
    acc += qpd.terms()[i].coefficient * mean;
  }
  return acc;
}

Real sampled_estimator_variance(const Qpd& qpd) {
  const Real v = exact_value(qpd);
  const Real k = qpd.kappa();
  return k * k - v * v;
}

}  // namespace qcut
