#include "qcut/qpd/estimator.hpp"

#include <cmath>

#include "qcut/qpd/alias_sampler.hpp"
#include "qcut/sim/executor.hpp"

namespace qcut {

namespace {

std::vector<Real> abs_coefficients(const Qpd& qpd) {
  std::vector<Real> w;
  w.reserve(qpd.size());
  for (const auto& t : qpd.terms()) {
    w.push_back(std::abs(t.coefficient));
  }
  return w;
}

}  // namespace

EstimationResult estimate_sampled(const Qpd& qpd, std::uint64_t shots, Rng& rng) {
  QCUT_CHECK(!qpd.empty(), "estimate_sampled: empty QPD");
  EstimationResult res;
  res.kappa = qpd.kappa();
  res.shots_per_term.assign(qpd.size(), 0);
  if (shots == 0) {
    return res;
  }
  const AliasSampler sampler(abs_coefficients(qpd));
  Real acc = 0.0;
  for (std::uint64_t s = 0; s < shots; ++s) {
    const std::size_t i = sampler.sample(rng);
    const QpdTerm& term = qpd.terms()[i];
    const ShotOutcome out = run_shot(term.circuit, rng);
    int parity = 0;
    for (int cb : term.estimate_cbits) {
      parity ^= out.cbits[static_cast<std::size_t>(cb)];
    }
    const Real o = parity ? -1.0 : 1.0;
    const Real sign = term.coefficient >= 0.0 ? 1.0 : -1.0;
    acc += res.kappa * sign * o;
    ++res.shots_per_term[i];
    res.entangled_pairs_used += static_cast<std::uint64_t>(term.entangled_pairs);
  }
  res.estimate = acc / static_cast<Real>(shots);
  res.shots_used = shots;
  return res;
}

EstimationResult estimate_allocated(const Qpd& qpd, std::uint64_t shots, Rng& rng,
                                    AllocRule rule) {
  QCUT_CHECK(!qpd.empty(), "estimate_allocated: empty QPD");
  EstimationResult res;
  res.kappa = qpd.kappa();
  res.shots_per_term = allocate_shots(abs_coefficients(qpd), shots, rule);
  Real estimate = 0.0;
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const QpdTerm& term = qpd.terms()[i];
    const std::uint64_t n = res.shots_per_term[i];
    if (n == 0) {
      continue;  // term contributes nothing at this budget (matches practice)
    }
    Real sum = 0.0;
    for (std::uint64_t s = 0; s < n; ++s) {
      const ShotOutcome out = run_shot(term.circuit, rng);
      int parity = 0;
      for (int cb : term.estimate_cbits) {
        parity ^= out.cbits[static_cast<std::size_t>(cb)];
      }
      sum += parity ? -1.0 : 1.0;
    }
    estimate += term.coefficient * (sum / static_cast<Real>(n));
    res.entangled_pairs_used += n * static_cast<std::uint64_t>(term.entangled_pairs);
  }
  res.estimate = estimate;
  res.shots_used = shots;
  return res;
}

std::vector<Real> exact_term_prob_one(const Qpd& qpd) {
  std::vector<Real> p;
  p.reserve(qpd.size());
  for (const auto& t : qpd.terms()) {
    Real acc = 0.0;
    for (const auto& b : run_branches(t.circuit)) {
      int parity = 0;
      for (int cb : t.estimate_cbits) {
        parity ^= b.cbits[static_cast<std::size_t>(cb)];
      }
      if (parity == 1) {
        acc += b.prob;
      }
    }
    p.push_back(acc);
  }
  return p;
}

EstimationResult estimate_allocated_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                         std::uint64_t shots, Rng& rng, AllocRule rule) {
  QCUT_CHECK(!qpd.empty(), "estimate_allocated_fast: empty QPD");
  QCUT_CHECK(prob_one.size() == qpd.size(), "estimate_allocated_fast: prob/term mismatch");
  EstimationResult res;
  res.kappa = qpd.kappa();
  res.shots_per_term = allocate_shots(abs_coefficients(qpd), shots, rule);
  Real estimate = 0.0;
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const QpdTerm& term = qpd.terms()[i];
    const std::uint64_t n = res.shots_per_term[i];
    if (n == 0) {
      continue;
    }
    const std::uint64_t ones = rng.binomial(n, prob_one[i]);
    // outcome mean: (+1)(n-ones) + (-1)(ones) over n
    const Real mean = 1.0 - 2.0 * static_cast<Real>(ones) / static_cast<Real>(n);
    estimate += term.coefficient * mean;
    res.entangled_pairs_used += n * static_cast<std::uint64_t>(term.entangled_pairs);
  }
  res.estimate = estimate;
  res.shots_used = shots;
  return res;
}

EstimationResult estimate_sampled_fast(const Qpd& qpd, const std::vector<Real>& prob_one,
                                       std::uint64_t shots, Rng& rng) {
  QCUT_CHECK(!qpd.empty(), "estimate_sampled_fast: empty QPD");
  QCUT_CHECK(prob_one.size() == qpd.size(), "estimate_sampled_fast: prob/term mismatch");
  EstimationResult res;
  res.kappa = qpd.kappa();
  res.shots_per_term.assign(qpd.size(), 0);
  if (shots == 0) {
    return res;
  }
  // Multinomial split of the budget over terms, then binomial outcomes per
  // term — identical in law to per-shot categorical sampling.
  const auto counts = multinomial(rng, shots, qpd.probabilities());
  const auto signs = qpd.signs();
  Real acc = 0.0;
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const std::uint64_t n = counts[i];
    res.shots_per_term[i] = n;
    if (n == 0) {
      continue;
    }
    const std::uint64_t ones = rng.binomial(n, prob_one[i]);
    const Real sum = static_cast<Real>(n) - 2.0 * static_cast<Real>(ones);
    acc += res.kappa * signs[i] * sum;
    res.entangled_pairs_used +=
        n * static_cast<std::uint64_t>(qpd.terms()[i].entangled_pairs);
  }
  res.estimate = acc / static_cast<Real>(shots);
  res.shots_used = shots;
  return res;
}

Real exact_value(const Qpd& qpd) {
  Real acc = 0.0;
  const auto probs = exact_term_prob_one(qpd);
  for (std::size_t i = 0; i < qpd.size(); ++i) {
    const Real mean = 1.0 - 2.0 * probs[i];
    acc += qpd.terms()[i].coefficient * mean;
  }
  return acc;
}

Real sampled_estimator_variance(const Qpd& qpd) {
  const Real v = exact_value(qpd);
  const Real k = qpd.kappa();
  return k * k - v * v;
}

}  // namespace qcut
