#include "qcut/qpd/shot_alloc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qcut/common/error.hpp"

namespace qcut {

namespace {

std::vector<std::uint64_t> apportion(const std::vector<Real>& w, std::uint64_t total,
                                     bool by_remainder) {
  const std::size_t n = w.size();
  Real sum = 0.0;
  for (Real x : w) {
    QCUT_CHECK(x >= 0.0, "allocate_shots: negative weight");
    sum += x;
  }
  QCUT_CHECK(sum > 0.0, "allocate_shots: all weights zero");

  std::vector<std::uint64_t> out(n, 0);
  std::vector<Real> frac(n, 0.0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real exact = static_cast<Real>(total) * w[i] / sum;
    out[i] = static_cast<std::uint64_t>(std::floor(exact));
    frac[i] = exact - static_cast<Real>(out[i]);
    assigned += out[i];
  }
  // Distribute the remainder.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (by_remainder) {
    std::sort(order.begin(), order.end(),
              [&frac](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  } else {
    std::sort(order.begin(), order.end(),
              [&w](std::size_t a, std::size_t b) { return w[a] > w[b]; });
  }
  std::size_t idx = 0;
  while (assigned < total) {
    ++out[order[idx % n]];
    ++assigned;
    ++idx;
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> allocate_shots(const std::vector<Real>& weights, std::uint64_t total,
                                          AllocRule rule, const std::vector<Real>* sigmas) {
  QCUT_CHECK(!weights.empty(), "allocate_shots: empty weights");
  switch (rule) {
    case AllocRule::kProportional:
      return apportion(weights, total, /*by_remainder=*/false);
    case AllocRule::kLargestRemainder:
      return apportion(weights, total, /*by_remainder=*/true);
    case AllocRule::kNeyman: {
      QCUT_CHECK(sigmas != nullptr && sigmas->size() == weights.size(),
                 "allocate_shots: Neyman rule needs per-term sigmas");
      std::vector<Real> w(weights.size());
      bool any_positive = false;
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = weights[i] * std::max<Real>(0.0, (*sigmas)[i]);
        any_positive = any_positive || w[i] > 0.0;
      }
      // If every term is deterministic (σ = 0), fall back to proportional.
      if (!any_positive) {
        return apportion(weights, total, /*by_remainder=*/false);
      }
      return apportion(w, total, /*by_remainder=*/true);
    }
  }
  throw Error("allocate_shots: invalid rule");
}

}  // namespace qcut
