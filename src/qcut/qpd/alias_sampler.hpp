// Walker alias method: O(1) categorical sampling after O(m) setup. Used to
// draw QPD term indices per shot in the sampled estimator.
#pragma once

#include <cstddef>
#include <vector>

#include "qcut/common/rng.hpp"

namespace qcut {

class AliasSampler {
 public:
  /// Builds the alias table from unnormalized non-negative weights.
  explicit AliasSampler(const std::vector<Real>& weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }
  /// Normalized probability of category i (for tests).
  Real probability(std::size_t i) const;

 private:
  std::vector<Real> prob_;         ///< acceptance probability per column
  std::vector<std::size_t> alias_; ///< alias per column
  std::vector<Real> norm_;         ///< normalized input probabilities
};

}  // namespace qcut
