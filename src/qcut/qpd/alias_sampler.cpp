#include "qcut/qpd/alias_sampler.hpp"

#include "qcut/common/error.hpp"

namespace qcut {

AliasSampler::AliasSampler(const std::vector<Real>& weights) {
  QCUT_CHECK(!weights.empty(), "AliasSampler: empty weight vector");
  const std::size_t n = weights.size();
  Real total = 0.0;
  for (Real w : weights) {
    QCUT_CHECK(w >= 0.0, "AliasSampler: negative weight");
    total += w;
  }
  QCUT_CHECK(total > 0.0, "AliasSampler: all weights zero");

  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<Real> scaled(n);
  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<Real>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) {
    prob_[i] = 1.0;
  }
  for (std::size_t i : small) {
    prob_[i] = 1.0;  // numerical leftovers
  }
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t col = static_cast<std::size_t>(rng.uniform_u64(prob_.size()));
  return rng.uniform() < prob_[col] ? col : alias_[col];
}

Real AliasSampler::probability(std::size_t i) const {
  QCUT_CHECK(i < norm_.size(), "AliasSampler: index out of range");
  return norm_[i];
}

}  // namespace qcut
