// The wire-cutting ↔ teleportation continuum (the paper's framing): for each
// entanglement level f ∈ [1/2, 1] the optimal protocol, its overhead, the
// shot cost at fixed accuracy, and the entangled-pair consumption.
#pragma once

#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {

struct ContinuumPoint {
  Real f = 0.5;       ///< maximal overlap f(Φk)
  Real k = 0.0;       ///< Schmidt parameter of |Φk⟩
  Real kappa = 3.0;   ///< optimal overhead γ (Theorem 1)
  Real shots_rel = 9.0;    ///< relative shot cost κ² (vs teleportation = 1)
  Real pairs_weight = 2.0; ///< pair-consumption factor 1/f (paper, Sec. III)
  Real pairs_per_sample = 0.0;  ///< expected |Φk⟩ per QPD sample
};

/// Evaluates the continuum at one entanglement level.
ContinuumPoint continuum_point(Real f);

/// Uniform sweep over [1/2, 1] with `n` points (endpoints included).
std::vector<ContinuumPoint> continuum_sweep(int n);

/// Given an entanglement budget (total |Φk⟩ pairs of quality f available) and
/// a target accuracy ε, the number of cut-samples affordable and whether the
/// budget or the shot count binds. Used by the entanglement-budget example.
struct BudgetPlan {
  Real shots_needed = 0.0;    ///< κ²/ε²
  Real pairs_needed = 0.0;    ///< shots · pairs_per_sample
  bool feasible = false;      ///< pairs_needed ≤ budget
};
BudgetPlan plan_budget(Real f, Real epsilon, Real pair_budget);

}  // namespace qcut
