// High-level façade: pick a protocol, run a cut experiment, get estimate and
// error. This is the API the examples and the Fig. 6 harness sit on.
//
// Estimation runs on the qcut::exec engine: shots are planned as term
// batches, executed on the configured ExecutionBackend, and recombined
// deterministically. BatchedBranchBackend (branch-cached binomial sampling,
// statistically identical in law to per-shot simulation) is the default;
// SerialShotBackend is the full per-shot statevector reference.
#pragma once

#include <memory>
#include <string>

#include "qcut/cut/wire_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/obs/run_report.hpp"
#include "qcut/qpd/estimator.hpp"

namespace qcut {

struct CutRunConfig {
  std::uint64_t shots = 1000;
  AllocRule rule = AllocRule::kProportional;  ///< the paper's allocation
  std::uint64_t seed = 1234;
  /// Execution backend. This absorbed the retired `fast` bool (PR 9): the
  /// old `fast = false` is spelled `backend = BackendKind::kSerialShot`.
  BackendKind backend = BackendKind::kBatchedBranch;
  /// Thread pool for the engine's batch-parallel driver; nullptr → global.
  ThreadPool* pool = nullptr;
  /// Shots per term batch (parallelism granularity, never affects the law).
  std::uint64_t max_batch_shots = ShotPlan::kDefaultMaxBatchShots;
  /// Planned execution only: when the spliced term circuits are wider than
  /// this many qubits and `backend` is the default BatchedBranch, the run is
  /// automatically routed through BackendKind::kFragment (per-fragment
  /// statevectors, memory bounded by the max *fragment* width). Set `backend`
  /// explicitly to force either path. 0 → the statevector engine cap.
  int auto_fragment_threshold = 0;
  /// Service-layer hook: run against this caller-owned backend (bound to the
  /// same QPD, outliving the call) instead of constructing one — a warm
  /// backend carries branch/skeleton caches across requests. `backend` must
  /// name its kind (for the report); routing is disabled when set.
  const ExecutionBackend* shared_backend = nullptr;
  /// Capture the RunReport's counters from a per-thread sink instead of a
  /// global-registry delta. Only accurate when the whole run executes on the
  /// calling thread (the service layer guarantees this by running requests
  /// on pool workers, where the engine and fragment evaluator fall back
  /// inline); the default global delta is exact for run-at-a-time drivers.
  bool scoped_report = false;

  /// Deprecated shim for the retired `fast` switch — now simply `backend`.
  BackendKind effective_backend() const noexcept { return backend; }
};

struct CutRunResult {
  Real estimate = 0.0;     ///< sampled cut estimate of ⟨O⟩
  Real exact = 0.0;        ///< true ⟨O⟩ on the uncut wire (NaN if !has_exact)
  Real abs_error = 0.0;    ///< |estimate − exact| (Eq. 28; NaN if !has_exact)
  /// False when the uncut reference is unavailable — a circuit too wide for
  /// monolithic simulation has no cheap exact ⟨O⟩ (that is the point of the
  /// fragment path); compare against an analytic value instead.
  bool has_exact = true;
  EstimationResult details;
  /// Resource accounting for this run (metrics-registry delta + config);
  /// serialize with report.to_json(). Filled whether or not metrics are
  /// enabled — disabled runs just carry zero counters.
  obs::RunReport report;
};

/// Estimates `qpd` on the engine `cfg` configures and packages the result
/// against the caller-supplied exact reference value. The shared backend of
/// CutExecutor::run and the planner's PlannedExecutor.
CutRunResult run_qpd_estimate(const Qpd& qpd, Real exact, const CutRunConfig& cfg);

/// As above without a reference value (has_exact = false): for circuits too
/// wide to simulate monolithically, where no exact ⟨O⟩ is computable.
CutRunResult run_qpd_estimate(const Qpd& qpd, const CutRunConfig& cfg);

class CutExecutor {
 public:
  explicit CutExecutor(std::shared_ptr<const WireCutProtocol> protocol);

  const WireCutProtocol& protocol() const noexcept { return *protocol_; }

  /// One estimation run with the given shot budget.
  CutRunResult run(const CutInput& input, const CutRunConfig& cfg) const;

  /// Mean absolute error over `trials` independent runs (fixed input). The
  /// QPD, plan, and branch cache are built once and shared across trials.
  Real mean_abs_error(const CutInput& input, const CutRunConfig& cfg, int trials) const;

 private:
  std::shared_ptr<const WireCutProtocol> protocol_;
};

/// Factory over the typed protocol descriptor — the single instantiation
/// point the planner and the executors share. kZzGate yields a pure-rotation
/// ZzGateCut (identity locals; the executor supplies host-specific locals
/// itself); kMixedNme instantiates the Werner resource at q_I = spec.param.
std::shared_ptr<const CutProtocol> make_protocol(const ProtocolSpec& spec);

/// Wire-cut-typed convenience over make_protocol(spec): the CutExecutor
/// constructor wants a WireCutProtocol, and every wire-cut ProtocolSpec
/// instantiates one. Throws qcut::Error for gate-cut specs (kZzGate).
std::shared_ptr<const WireCutProtocol> make_wire_protocol(const ProtocolSpec& spec);

/// Legacy factory by name: "peng", "harada", "teleport", "nme", "distill".
/// For "nme"/"distill" the `k` parameter selects the resource |Φk⟩.
/// Documented shim kept for external callers and scripts that configure
/// protocols from text; in-tree code passes typed ProtocolSpec descriptors
/// to make_protocol/make_wire_protocol instead. Delegates to the typed
/// overload — the string form can never drift from it.
std::shared_ptr<const WireCutProtocol> make_protocol(const std::string& name, Real k = 1.0);

}  // namespace qcut
