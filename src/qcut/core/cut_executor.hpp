// High-level façade: pick a protocol, run a cut experiment, get estimate and
// error. This is the API the examples and the Fig. 6 harness sit on.
//
// Estimation runs on the qcut::exec engine: shots are planned as term
// batches, executed on the configured ExecutionBackend, and recombined
// deterministically. BatchedBranchBackend (branch-cached binomial sampling,
// statistically identical in law to per-shot simulation) is the default;
// SerialShotBackend is the full per-shot statevector reference.
#pragma once

#include <memory>
#include <string>

#include "qcut/cut/wire_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/qpd/estimator.hpp"

namespace qcut {

struct CutRunConfig {
  std::uint64_t shots = 1000;
  AllocRule rule = AllocRule::kProportional;  ///< the paper's allocation
  /// Legacy switch kept for compatibility: false forces
  /// BackendKind::kSerialShot regardless of `backend`.
  bool fast = true;
  std::uint64_t seed = 1234;
  /// Execution backend (when `fast` is true).
  BackendKind backend = BackendKind::kBatchedBranch;
  /// Thread pool for the engine's batch-parallel driver; nullptr → global.
  ThreadPool* pool = nullptr;
  /// Shots per term batch (parallelism granularity, never affects the law).
  std::uint64_t max_batch_shots = ShotPlan::kDefaultMaxBatchShots;

  /// The backend actually used, honoring the legacy `fast` switch.
  BackendKind effective_backend() const noexcept {
    return fast ? backend : BackendKind::kSerialShot;
  }
};

struct CutRunResult {
  Real estimate = 0.0;     ///< sampled cut estimate of ⟨O⟩
  Real exact = 0.0;        ///< true ⟨O⟩ on the uncut wire
  Real abs_error = 0.0;    ///< |estimate − exact| (Eq. 28)
  EstimationResult details;
};

/// Estimates `qpd` on the engine `cfg` configures and packages the result
/// against the caller-supplied exact reference value. The shared backend of
/// CutExecutor::run and the planner's PlannedExecutor.
CutRunResult run_qpd_estimate(const Qpd& qpd, Real exact, const CutRunConfig& cfg);

class CutExecutor {
 public:
  explicit CutExecutor(std::shared_ptr<const WireCutProtocol> protocol);

  const WireCutProtocol& protocol() const noexcept { return *protocol_; }

  /// One estimation run with the given shot budget.
  CutRunResult run(const CutInput& input, const CutRunConfig& cfg) const;

  /// Mean absolute error over `trials` independent runs (fixed input). The
  /// QPD, plan, and branch cache are built once and shared across trials.
  Real mean_abs_error(const CutInput& input, const CutRunConfig& cfg, int trials) const;

 private:
  std::shared_ptr<const WireCutProtocol> protocol_;
};

/// Factory by name: "peng", "harada", "teleport", "nme", "distill".
/// For "nme"/"distill" the `k` parameter selects the resource |Φk⟩.
std::shared_ptr<const WireCutProtocol> make_protocol(const std::string& name, Real k = 1.0);

}  // namespace qcut
