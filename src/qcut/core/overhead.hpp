// Sampling-overhead theory: Theorem 1, Corollary 1, and the derived resource
// estimates the paper reports.
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut {

/// Theorem 1: γ^ρ(I) = 2/f(ρ) − 1 for maximal overlap f ∈ [1/2, 1].
Real optimal_overhead_from_f(Real f);

/// Corollary 1: γ^{Φk}(I) = 4(k²+1)/(k+1)² − 1.
Real optimal_overhead_phi_k(Real k);

/// γ for an arbitrary pure two-qubit resource (f computed via Appendix A).
Real optimal_overhead_pure(const Vector& resource_psi);

/// Eq. 17: optimal overhead γ̂_ρ(Φ) for simulating the maximally entangled
/// state from resource ρ — identical to Theorem 1's value (that identity *is*
/// Theorem 1's content).
Real virtual_distillation_overhead(Real f);

/// Shots needed to reach absolute accuracy ε with overhead κ, up to the
/// constant of Temme et al. [25]: N ≈ κ²/ε².
Real shots_for_accuracy(Real kappa, Real epsilon);

/// Accuracy reached with N shots at overhead κ: ε ≈ κ/√N.
Real accuracy_for_shots(Real kappa, Real shots);

/// The paper's pair-consumption factor 2(k²+1)/(k+1)² = ⟨Φ|Φk|Φ⟩⁻¹ = 1/f:
/// the (unnormalized) QPD weight of the teleportation branches, proportional
/// to the number of |Φk⟩ pairs consumed.
Real pair_consumption_weight(Real k);

/// Expected |Φk⟩ pairs consumed per QPD sample of the Theorem-2 cut:
/// 2a/κ = (1/f) / (2/f − 1).
Real expected_pairs_per_sample_phi_k(Real k);

}  // namespace qcut
