#include "qcut/core/continuum.hpp"

#include "qcut/common/error.hpp"
#include "qcut/core/overhead.hpp"
#include "qcut/linalg/bell.hpp"

namespace qcut {

ContinuumPoint continuum_point(Real f) {
  ContinuumPoint p;
  p.f = f;
  p.k = k_for_overlap(f);
  p.kappa = optimal_overhead_from_f(f);
  p.shots_rel = p.kappa * p.kappa;
  p.pairs_weight = pair_consumption_weight(p.k);
  p.pairs_per_sample = expected_pairs_per_sample_phi_k(p.k);
  return p;
}

std::vector<ContinuumPoint> continuum_sweep(int n) {
  QCUT_CHECK(n >= 2, "continuum_sweep: need at least two points");
  std::vector<ContinuumPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Real f = 0.5 + 0.5 * static_cast<Real>(i) / static_cast<Real>(n - 1);
    out.push_back(continuum_point(f));
  }
  return out;
}

BudgetPlan plan_budget(Real f, Real epsilon, Real pair_budget) {
  QCUT_CHECK(pair_budget >= 0.0, "plan_budget: negative budget");
  const ContinuumPoint p = continuum_point(f);
  BudgetPlan plan;
  plan.shots_needed = shots_for_accuracy(p.kappa, epsilon);
  plan.pairs_needed = plan.shots_needed * p.pairs_per_sample;
  plan.feasible = plan.pairs_needed <= pair_budget;
  return plan;
}

}  // namespace qcut
