#include "qcut/core/experiment.hpp"

#include <cmath>
#include <sstream>

#include "qcut/common/stats.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/exec/engine.hpp"
#include "qcut/linalg/random.hpp"

namespace qcut {

std::vector<Fig6Row> run_fig6(const Fig6Config& cfg, ThreadPool* pool) {
  QCUT_CHECK(cfg.n_states >= 1, "run_fig6: need at least one state");
  QCUT_CHECK(!cfg.shot_grid.empty(), "run_fig6: empty shot grid");
  QCUT_CHECK(!cfg.overlaps.empty(), "run_fig6: empty overlap list");
  if (pool == nullptr) {
    pool = &global_pool();
  }

  auto factory = cfg.protocol_factory;
  if (!factory) {
    factory = [](Real f) -> std::shared_ptr<const WireCutProtocol> {
      return std::make_shared<NmeCut>(NmeCut::from_overlap(f));
    };
  }

  std::vector<Fig6Row> rows;
  for (Real f : cfg.overlaps) {
    const auto protocol = factory(f);
    const Real kappa = protocol->kappa();

    // Accumulators: one slot per chunk, merged in chunk order afterwards.
    // Chunk size is pool-size independent and each task writes only its own
    // slot, so mean/sem are bit-identical for any pool size (RunningStats
    // merges are floating-point and therefore order-sensitive).
    const std::size_t n_states = static_cast<std::size_t>(cfg.n_states);
    const std::size_t chunk = 8;
    const std::size_t n_chunks = (n_states + chunk - 1) / chunk;
    std::vector<std::vector<RunningStats>> chunk_stats(
        n_chunks, std::vector<RunningStats>(cfg.shot_grid.size()));
    pool->parallel_for_chunked(0, n_states, chunk, [&](std::size_t lo, std::size_t hi) {
      std::vector<RunningStats>& local = chunk_stats[lo / chunk];
      for (std::size_t s = lo; s < hi; ++s) {
        // One deterministic stream per (overlap, state): reproducible
        // regardless of scheduling.
        Rng rng(cfg.seed ^ static_cast<std::uint64_t>(std::llround(f * 1e6)),
                static_cast<std::uint64_t>(s));
        CutInput input;
        input.prep = haar_unitary(2, rng);
        input.observable = cfg.observable;

        const Real exact = uncut_expectation(input);
        const Qpd qpd = protocol->build_qpd(input);
        // Branch-cached backend: each term circuit is enumerated once and
        // then serves every shot-grid entry of this state. The serial driver
        // keeps the per-state rng stream (we are already inside a pool task —
        // the engine's batch-parallel driver must not be nested here).
        const BatchedBranchBackend backend(qpd);

        for (std::size_t g = 0; g < cfg.shot_grid.size(); ++g) {
          const ShotPlan plan = ShotPlan::allocated(qpd, cfg.shot_grid[g], cfg.rule,
                                                    /*sigmas=*/nullptr, ShotPlan::kNoSplit);
          const auto er = run_plan_with_rng(qpd, plan, backend, rng);
          local[g].add(std::abs(er.estimate - exact));
        }
      }
    });

    std::vector<RunningStats> stats(cfg.shot_grid.size());
    for (std::size_t c = 0; c < n_chunks; ++c) {
      for (std::size_t g = 0; g < cfg.shot_grid.size(); ++g) {
        stats[g].merge(chunk_stats[c][g]);
      }
    }

    for (std::size_t g = 0; g < cfg.shot_grid.size(); ++g) {
      Fig6Row row;
      row.f = f;
      row.shots = cfg.shot_grid[g];
      row.mean_error = stats[g].mean();
      row.sem = stats[g].sem();
      row.kappa = kappa;
      rows.push_back(row);
    }
  }
  return rows;
}

std::string format_fig6(const std::vector<Fig6Row>& rows) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  Real last_f = -1.0;
  for (const auto& r : rows) {
    if (r.f != last_f) {
      os.precision(3);
      os << "\n# f(Phi_k) = " << r.f << "  (kappa = " << r.kappa << ")\n";
      os << "#   shots    mean_error      sem\n";
      last_f = r.f;
    }
    os.precision(6);
    os << "  " << r.shots;
    for (std::size_t pad = std::to_string(r.shots).size(); pad < 8; ++pad) {
      os << ' ';
    }
    os << "  " << r.mean_error << "    " << r.sem << "\n";
  }
  return os.str();
}

}  // namespace qcut
