// The Section-IV experiment harness (Fig. 6), reusable by the benches, the
// integration tests, and downstream users.
//
// Procedure (verbatim from the paper):
//  * sample a Haar-random unitary W [Mezzadri], input state W|0⟩;
//  * exact reference ⟨Z⟩ = ⟨0|W†ZW|0⟩;
//  * cut the wire with the Theorem-2 QPD at entanglement level f(Φk);
//  * allocate a fixed total shot budget across the three subcircuits
//    proportionally to their coefficients;
//  * error ε = |⟨Z⟩_sample − ⟨Z⟩| (Eq. 28), averaged over the random states.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qcut/common/threadpool.hpp"
#include "qcut/cut/wire_cut.hpp"
#include "qcut/qpd/shot_alloc.hpp"

namespace qcut {

struct Fig6Config {
  int n_states = 1000;  ///< paper: 1000 Haar-random inputs
  std::vector<std::uint64_t> shot_grid = {250,  500,  750,  1000, 1500, 2000,
                                          2500, 3000, 3500, 4000, 4500, 5000};
  std::vector<Real> overlaps = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};  ///< f(Φk)
  char observable = 'Z';
  AllocRule rule = AllocRule::kProportional;
  std::uint64_t seed = 20240320;  ///< arXiv v2 date, for reproducibility
  /// Protocol factory per overlap; defaults to the Theorem-2 NME cut.
  std::function<std::shared_ptr<const WireCutProtocol>(Real f)> protocol_factory;
};

struct Fig6Row {
  Real f = 0.0;
  std::uint64_t shots = 0;
  Real mean_error = 0.0;  ///< ⟨ε⟩ over the random states
  Real sem = 0.0;         ///< standard error of that mean
  Real kappa = 0.0;       ///< protocol overhead at this f
};

/// Runs the full sweep; rows ordered by (overlap, shots). Work is distributed
/// over `pool` (nullptr → qcut::global_pool()); per-state RNG streams make
/// the result independent of thread count.
std::vector<Fig6Row> run_fig6(const Fig6Config& cfg, ThreadPool* pool = nullptr);

/// Renders rows as an aligned text table (one block per overlap).
std::string format_fig6(const std::vector<Fig6Row>& rows);

}  // namespace qcut
