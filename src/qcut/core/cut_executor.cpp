#include "qcut/core/cut_executor.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "qcut/cut/distill_cut.hpp"
#include "qcut/cut/gate_cut.hpp"
#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/mixed_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/cut/peng_cut.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/simd_dispatch.hpp"

namespace qcut {

namespace {

EngineConfig engine_config(const CutRunConfig& cfg) {
  EngineConfig ec;
  ec.backend = cfg.backend;
  ec.pool = cfg.pool;
  ec.max_batch_shots = cfg.max_batch_shots;
  ec.shared_backend = cfg.shared_backend;
  return ec;
}

/// Independent master seed per trial, derived deterministically from the
/// run seed (batch substreams are carved from the trial seed by the engine).
std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
  return splitmix64_next(sm);
}

}  // namespace

CutRunResult run_qpd_estimate(const Qpd& qpd, Real exact, const CutRunConfig& cfg) {
  CutRunResult res;
  res.exact = exact;
  const ExecutionEngine engine(engine_config(cfg));

  // Bracket the estimation with a registry snapshot so the report carries
  // exactly this run's counter delta. Reads only — the estimate is
  // bit-identical with metrics on or off. Scoped reports capture from a
  // per-thread sink instead: exact under concurrent requests, provided the
  // run stays on this thread (the service layer's mode).
  std::optional<obs::ScopedMetricsSink> sink;
  if (cfg.scoped_report) {
    sink.emplace();
  }
  const obs::MetricsSnapshot before = obs::metrics_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::TraceSpan span("qpd.estimate", qpd.size());
    res.details = engine.estimate_allocated(qpd, cfg.shots, cfg.seed, cfg.rule);
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.estimate = res.details.estimate;
  res.abs_error = std::abs(res.estimate - res.exact);

  res.report.metrics_enabled = obs::metrics_enabled();
  res.report.counters =
      cfg.scoped_report ? sink->snapshot() : obs::metrics_delta(before, obs::metrics_snapshot());
  res.report.backend = to_string(cfg.backend);
  res.report.simd_tier = simd_tier_name(active_simd_tier());
  res.report.pool_threads = cfg.pool != nullptr ? cfg.pool->size() : global_pool().size();
  res.report.kappa = res.details.kappa;
  res.report.shots_sampled = res.details.shots_used;
  res.report.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return res;
}

CutRunResult run_qpd_estimate(const Qpd& qpd, const CutRunConfig& cfg) {
  CutRunResult res = run_qpd_estimate(qpd, std::numeric_limits<Real>::quiet_NaN(), cfg);
  res.has_exact = false;
  return res;
}

CutExecutor::CutExecutor(std::shared_ptr<const WireCutProtocol> protocol)
    : protocol_(std::move(protocol)) {
  QCUT_CHECK(protocol_ != nullptr, "CutExecutor: null protocol");
}

CutRunResult CutExecutor::run(const CutInput& input, const CutRunConfig& cfg) const {
  return run_qpd_estimate(protocol_->build_qpd(input), uncut_expectation(input), cfg);
}

Real CutExecutor::mean_abs_error(const CutInput& input, const CutRunConfig& cfg,
                                 int trials) const {
  QCUT_CHECK(trials >= 1, "mean_abs_error: need at least one trial");
  const Real exact = uncut_expectation(input);
  const Qpd qpd = protocol_->build_qpd(input);
  const ExecutionEngine engine(engine_config(cfg));
  // Plan and backend (with its branch cache) are shared across trials: the
  // term circuits are enumerated at most once for the whole sweep.
  const ShotPlan plan = ShotPlan::allocated(qpd, cfg.shots, cfg.rule, /*sigmas=*/nullptr,
                                            cfg.max_batch_shots);
  const auto backend = make_backend(cfg.backend, qpd, cfg.pool);
  Real acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    const EstimationResult er =
        engine.run(qpd, plan, *backend, trial_seed(cfg.seed, static_cast<std::uint64_t>(t)));
    acc += std::abs(er.estimate - exact);
  }
  return acc / static_cast<Real>(trials);
}

std::shared_ptr<const CutProtocol> make_protocol(const ProtocolSpec& spec) {
  switch (spec.id) {
    case ProtocolId::kPeng:
      return std::make_shared<PengCut>();
    case ProtocolId::kHarada:
      return std::make_shared<HaradaCut>();
    case ProtocolId::kTeleport:
      return std::make_shared<TeleportCut>();
    case ProtocolId::kNme:
      return std::make_shared<NmeCut>(spec.param);
    case ProtocolId::kDistill:
      return std::make_shared<DistillCut>(spec.param);
    case ProtocolId::kMixedNme:
      return std::make_shared<MixedNmeCut>(werner_resource(spec.param));
    case ProtocolId::kZzGate:
      return std::make_shared<ZzGateCut>(spec.param);
  }
  throw Error("make_protocol: unknown protocol id");
}

std::shared_ptr<const WireCutProtocol> make_wire_protocol(const ProtocolSpec& spec) {
  QCUT_CHECK(spec_kind(spec) == CutKind::kWire,
             "make_wire_protocol: '" + to_string(spec) + "' is not a wire-cut protocol");
  return std::static_pointer_cast<const WireCutProtocol>(make_protocol(spec));
}

std::shared_ptr<const WireCutProtocol> make_protocol(const std::string& name, Real k) {
  ProtocolSpec spec;
  if (name == "peng") {
    spec = ProtocolSpec{ProtocolId::kPeng, 0.0};
  } else if (name == "harada") {
    spec = ProtocolSpec{ProtocolId::kHarada, 0.0};
  } else if (name == "teleport") {
    spec = ProtocolSpec{ProtocolId::kTeleport, 0.0};
  } else if (name == "nme") {
    spec = ProtocolSpec{ProtocolId::kNme, k};
  } else if (name == "distill") {
    spec = ProtocolSpec{ProtocolId::kDistill, k};
  } else {
    throw Error("make_protocol: unknown protocol '" + name + "'");
  }
  return std::static_pointer_cast<const WireCutProtocol>(make_protocol(spec));
}

}  // namespace qcut
