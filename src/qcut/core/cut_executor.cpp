#include "qcut/core/cut_executor.hpp"

#include <cmath>

#include "qcut/cut/distill_cut.hpp"
#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/cut/peng_cut.hpp"

namespace qcut {

CutExecutor::CutExecutor(std::shared_ptr<const WireCutProtocol> protocol)
    : protocol_(std::move(protocol)) {
  QCUT_CHECK(protocol_ != nullptr, "CutExecutor: null protocol");
}

CutRunResult CutExecutor::run(const CutInput& input, const CutRunConfig& cfg) const {
  CutRunResult res;
  res.exact = uncut_expectation(input);
  const Qpd qpd = protocol_->build_qpd(input);
  Rng rng(cfg.seed);
  if (cfg.fast) {
    const auto probs = exact_term_prob_one(qpd);
    res.details = estimate_allocated_fast(qpd, probs, cfg.shots, rng, cfg.rule);
  } else {
    res.details = estimate_allocated(qpd, cfg.shots, rng, cfg.rule);
  }
  res.estimate = res.details.estimate;
  res.abs_error = std::abs(res.estimate - res.exact);
  return res;
}

Real CutExecutor::mean_abs_error(const CutInput& input, const CutRunConfig& cfg,
                                 int trials) const {
  QCUT_CHECK(trials >= 1, "mean_abs_error: need at least one trial");
  const Real exact = uncut_expectation(input);
  const Qpd qpd = protocol_->build_qpd(input);
  const auto probs = exact_term_prob_one(qpd);
  Real acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(cfg.seed, static_cast<std::uint64_t>(t));
    EstimationResult er =
        cfg.fast ? estimate_allocated_fast(qpd, probs, cfg.shots, rng, cfg.rule)
                 : estimate_allocated(qpd, cfg.shots, rng, cfg.rule);
    acc += std::abs(er.estimate - exact);
  }
  return acc / static_cast<Real>(trials);
}

std::shared_ptr<const WireCutProtocol> make_protocol(const std::string& name, Real k) {
  if (name == "peng") {
    return std::make_shared<PengCut>();
  }
  if (name == "harada") {
    return std::make_shared<HaradaCut>();
  }
  if (name == "teleport") {
    return std::make_shared<TeleportCut>();
  }
  if (name == "nme") {
    return std::make_shared<NmeCut>(k);
  }
  if (name == "distill") {
    return std::make_shared<DistillCut>(k);
  }
  throw Error("make_protocol: unknown protocol '" + name + "'");
}

}  // namespace qcut
