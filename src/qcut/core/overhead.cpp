#include "qcut/core/overhead.hpp"

#include <cmath>

#include "qcut/cut/nme_cut.hpp"
#include "qcut/ent/distill_norm.hpp"
#include "qcut/ent/measures.hpp"

namespace qcut {

Real optimal_overhead_from_f(Real f) {
  QCUT_CHECK(f >= 0.5 - kTightTol && f <= 1.0 + kTightTol,
             "optimal_overhead_from_f: f must lie in [1/2, 1]");
  return 2.0 / f - 1.0;
}

Real optimal_overhead_phi_k(Real k) { return nme_cut_overhead(k); }

Real optimal_overhead_pure(const Vector& resource_psi) {
  QCUT_CHECK(resource_psi.size() == 4, "optimal_overhead_pure: two-qubit state expected");
  return optimal_overhead_from_f(max_overlap(resource_psi));
}

Real virtual_distillation_overhead(Real f) { return optimal_overhead_from_f(f); }

Real shots_for_accuracy(Real kappa, Real epsilon) {
  QCUT_CHECK(epsilon > 0.0, "shots_for_accuracy: epsilon must be positive");
  return kappa * kappa / (epsilon * epsilon);
}

Real accuracy_for_shots(Real kappa, Real shots) {
  QCUT_CHECK(shots > 0.0, "accuracy_for_shots: shots must be positive");
  return kappa / std::sqrt(shots);
}

Real pair_consumption_weight(Real k) { return 1.0 / f_phi_k(k); }

Real expected_pairs_per_sample_phi_k(Real k) {
  return pair_consumption_weight(k) / optimal_overhead_phi_k(k);
}

}  // namespace qcut
