// Cross-request caches for the service layer (ROADMAP item 1).
//
// The daemon answers many estimation requests per process, and most fleets
// send the same few circuits over and over (parameter sweeps, retries,
// dashboards re-polling). Three artifacts are worth keeping warm across
// requests, in increasing order of cost to rebuild:
//
//  * the CutPlan — the planner's subset search over cut candidates, keyed by
//    (canonical circuit hash, planner config);
//  * the spliced QPD plus its warm ExecutionBackend — term-circuit splicing,
//    protocol instantiation, and (for branch-cached backends) the exact
//    per-term P(−1) probabilities, keyed by (plan key, observable, backend
//    routing config);
//  * the SplitSkeletonCache — per-term fragment split structure, shared by
//    every fragment-backend entry (cut/fragment.hpp owns the type; the
//    service just holds a capacity-bounded, process-lifetime instance).
//
// Reuse is always bit-identical: plans are deterministic functions of their
// key, and a warm backend holds exact probabilities (or replays exact
// per-shot simulation), so a cache hit changes wall-clock time and nothing
// else — pinned by test_service.cpp.
//
// Keys are strings: a canonical FNV-1a circuit hash plus an exact textual
// serialization of the relevant config (doubles by bit pattern, so two
// configs collide only when they are the same config). Eviction is LRU with
// a per-cache capacity; hit/miss traffic lands on the obs counters
// (kPlanCacheHit/Miss, kEvalCacheHit/Miss) at the call sites.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qcut/common/fault.hpp"
#include "qcut/cut/fragment.hpp"
#include "qcut/exec/backend.hpp"
#include "qcut/plan/cut_planner.hpp"
#include "qcut/plan/planned_executor.hpp"
#include "qcut/sim/circuit.hpp"
#include "qcut/sim/observable.hpp"

namespace qcut {
namespace svc {

/// Canonical 64-bit FNV-1a hash of a circuit's structure: register sizes and
/// every operation's kind, qubits, cbit, matrix / init-state entry bit
/// patterns. Labels are excluded — they are presentation, not semantics — so
/// a circuit imported from QASM hashes equal to the same circuit built by
/// hand. Two requests with equal hashes are treated as the same circuit
/// (a 64-bit collision is negligible next to sampling error).
std::uint64_t circuit_hash(const Circuit& circ);

/// Exact textual key of the planner configuration (scalars by bit pattern,
/// device model included): equal keys ⇔ the planner search is the same.
std::string planner_config_key(const PlannerConfig& cfg);

/// Plan-cache key: circuit identity + planner configuration.
std::string plan_key(std::uint64_t circuit_hash, const PlannerConfig& cfg);

/// Eval-cache key: plan identity + observable + the config that determines
/// backend routing (requested kind and auto-fragment threshold). Shots and
/// seed are deliberately absent — a warm backend is exact, so it serves any
/// budget and any seed bit-identically.
std::string eval_key(const std::string& plan_key, const Observable& observable,
                     const CutRunConfig& cfg);

/// Thread-safe string-keyed LRU cache of shared_ptr<V>. Lookups update
/// recency; insertion evicts the least-recently-used entry beyond capacity.
/// Values are built OUTSIDE the lock (plans and QPDs are expensive); when
/// two threads race to insert the same key, the first insert wins and both
/// get the resident value — so all concurrent users share one entry.
template <typename V>
class LruCache {
 public:
  /// capacity >= 1; the cache never exceeds it.
  explicit LruCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  std::shared_ptr<V> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it == by_key_.end()) {
      return nullptr;
    }
    it->second.last_use = ++tick_;
    return it->second.value;
  }

  /// Inserts `value` (first insert wins) and returns the resident entry.
  std::shared_ptr<V> put(const std::string& key, std::shared_ptr<V> value) {
    // Before the lock: an injected throw leaves the cache exactly as it was
    // (the entry is simply not inserted; the next request rebuilds it).
    fault::maybe_inject(fault::Site::kCacheInsert);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = by_key_.try_emplace(key);
    if (inserted) {
      it->second.value = std::move(value);
    }
    it->second.last_use = ++tick_;
    std::shared_ptr<V> resident = it->second.value;
    while (by_key_.size() > capacity_) {
      auto victim = by_key_.end();
      for (auto e = by_key_.begin(); e != by_key_.end(); ++e) {
        if (e->first != key && (victim == by_key_.end() || e->second.last_use < victim->second.last_use)) {
          victim = e;
        }
      }
      if (victim == by_key_.end()) {
        break;  // capacity 1 holding the just-inserted key
      }
      by_key_.erase(victim);
    }
    return resident;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return by_key_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    std::uint64_t last_use = 0;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t tick_ = 0;
  std::unordered_map<std::string, Entry> by_key_;
};

/// One warm evaluation context: the executor (plan protocols instantiated),
/// the spliced QPD, and an ExecutionBackend bound to it. The backend's
/// probability caches (BranchCache / skeletons) fill on first use and serve
/// every later request with the same key. All members are immutable or
/// internally synchronized after build(), so one entry serves concurrent
/// requests.
struct EvalEntry {
  PlannedExecutor executor;
  Qpd qpd;                ///< executor.build_qpd(observable); backend points at it
  BackendKind kind;       ///< the routed kind the backend realizes
  std::unique_ptr<ExecutionBackend> backend;

  EvalEntry(PlannedExecutor ex, Qpd q, BackendKind k)
      : executor(std::move(ex)), qpd(std::move(q)), kind(k) {}

  /// Builds a ready entry: routes the backend kind exactly as
  /// PlannedExecutor::run would under `cfg`, then constructs the backend
  /// against the entry's own (heap-stable) QPD. Fragment backends share
  /// `skeletons` so split structure is reused across entries.
  static std::shared_ptr<EvalEntry> build(PlannedExecutor executor, const Observable& observable,
                                          const CutRunConfig& cfg,
                                          std::shared_ptr<SplitSkeletonCache> skeletons);
};

struct ServiceCachesConfig {
  std::size_t plan_capacity = 64;
  std::size_t eval_capacity = 32;
  std::size_t skeleton_capacity = 512;
};

/// The process-lifetime cache bundle one service instance owns.
class ServiceCaches {
 public:
  explicit ServiceCaches(ServiceCachesConfig cfg = {})
      : plans(cfg.plan_capacity),
        evals(cfg.eval_capacity),
        skeletons(std::make_shared<SplitSkeletonCache>(cfg.skeleton_capacity)) {}

  LruCache<CutPlan> plans;
  LruCache<EvalEntry> evals;
  std::shared_ptr<SplitSkeletonCache> skeletons;
};

/// Shared default instance for in-process callers that opt into caching;
/// the daemon owns its own ServiceCaches instead.
ServiceCaches& global_service_caches();

}  // namespace svc
}  // namespace qcut
