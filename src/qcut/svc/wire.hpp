// The qcut-server wire protocol: length-prefixed binary frames over TCP.
//
// Frame layout (all integers little-endian):
//
//   u32 magic   = 0x54554351 ("QCUT" as bytes Q,C,U,T)
//   u16 version = 1
//   u16 type    (MsgType)
//   u32 payload_len   (<= kMaxPayload = 16 MiB)
//   u8  payload[payload_len]
//
// Payloads are flat field sequences written by WireWriter and read back by
// WireReader: fixed-width little-endian integers, doubles shipped as their
// IEEE-754 bit pattern (bit-exact round trip, NaN-safe — the "exact" field
// of a wide run is NaN on purpose), strings as u32 length + raw bytes.
// Decoding is strict: truncated fields, oversized frames, bad magic/version
// and trailing bytes all throw qcut::Error with offset diagnostics
// (property-tested in test_wire_protocol.cpp).
//
// Version policy: v1 carried the circuit as QASM text plus the planner's
// scalar configuration (an empty device model is synthesized server-side
// from the scalars, exactly as PlannerConfig documents). v2 (this build)
// appends `deadline_ms` to the request and the numeric ErrorCode `code` to
// the response — the request-lifecycle fields. Structured DeviceModel
// shipping remains a future version. Unknown versions and types are
// rejected, never skipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qcut/common/types.hpp"

namespace qcut {
namespace svc {

inline constexpr std::uint32_t kWireMagic = 0x54554351u;  // "QCUT"
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::uint32_t kMaxPayload = 16u * 1024u * 1024u;
inline constexpr std::size_t kFrameHeaderSize = 12;

enum class MsgType : std::uint16_t {
  kEstimateRequest = 1,
  kEstimateResponse = 2,
  kMetricsRequest = 3,
  kMetricsResponse = 4,
  kError = 5,  ///< payload: string diagnostic (malformed request, etc.)
};

/// Appends little-endian fields to a byte buffer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(Real v);  ///< IEEE-754 bit pattern via u64
  void str(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the fields back, throwing qcut::Error("wire: ...") with byte
/// offsets on truncation. expect_done() rejects trailing bytes — a frame
/// must decode to exactly its payload.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : p_(data), n_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Real f64();
  std::string str();

  std::size_t offset() const noexcept { return off_; }
  bool done() const noexcept { return off_ == n_; }
  void expect_done() const;

 private:
  void need(std::size_t bytes) const;

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload. Throws if the payload exceeds kMaxPayload.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

struct FrameHeader {
  MsgType type = MsgType::kError;
  std::uint32_t payload_len = 0;
};

/// Decodes and validates the 12-byte header (magic, version, type, length).
/// Throws qcut::Error on short input, bad magic, unsupported version,
/// unknown type, or an oversized declared payload.
FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t size);

/// Whole-buffer decode: header + exactly payload_len bytes. Throws on
/// truncated payloads and on trailing bytes after the frame.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

// ---- message payloads ------------------------------------------------------

/// v2 estimate request: QASM circuit + observable + policy + planner scalars
/// + deadline.
struct WireEstimateRequest {
  std::string circuit_qasm;
  std::string observable;
  Real epsilon = 0.0;
  std::uint64_t shots = 0;
  std::uint64_t shot_cap = 0;
  std::uint64_t seed = 1234;
  std::int32_t max_fragment_width = 0;
  Real resource_overlap = 0.5;
  std::int32_t pair_budget = 0;
  std::uint8_t allow_gate_cuts = 1;
  Real target_accuracy = 0.05;
  std::uint64_t max_cuts = 8;
  std::uint64_t exhaustive_limit = 12;
  std::uint64_t max_nodes = 1000000;
  std::uint8_t backend = 1;  ///< BackendKind as integer (1 = batched-branch)
  std::string request_id;
  /// Client deadline in milliseconds, measured from server admission; the
  /// server clamps it to --max-deadline-ms. 0 → none (v2).
  std::uint64_t deadline_ms = 0;
};

enum class WireStatus : std::uint8_t {
  kOk = 0,
  kRetryAfter = 1,  ///< admission control rejected; retry_after_ms is set
  kError = 2,       ///< request failed; `error` carries the diagnostic
};

struct WireEstimateResponse {
  std::uint8_t status = 0;  ///< WireStatus
  std::uint64_t retry_after_ms = 0;
  std::string error;
  Real estimate = 0.0;
  Real ci_halfwidth = 0.0;
  std::uint8_t has_exact = 0;
  Real exact = 0.0;
  std::uint64_t shots_used = 0;
  Real kappa = 1.0;
  std::uint64_t plan_cuts = 0;
  std::uint64_t plan_gate_cuts = 0;
  Real plan_total_kappa = 1.0;
  Real plan_predicted_shots = 0.0;
  std::int32_t plan_max_width = 0;
  std::int32_t plan_max_sim_width = 0;
  std::uint8_t plan_cache_hit = 0;
  std::uint8_t eval_cache_hit = 0;
  std::uint8_t coalesced = 0;
  std::string report_json;  ///< the run's RunReport document
  /// qcut::ErrorCode as its wire-stable numeric value (v2): kOk on success,
  /// the failure taxonomy code otherwise. Lets clients classify retryable
  /// (overloaded) vs permanent (invalid_request) without parsing `error`.
  std::uint8_t code = 0;
};

std::vector<std::uint8_t> encode_estimate_request(const WireEstimateRequest& req);
WireEstimateRequest decode_estimate_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_estimate_response(const WireEstimateResponse& res);
WireEstimateResponse decode_estimate_response(const std::vector<std::uint8_t>& payload);

/// Metrics request payload is empty; the response is the plaintext dump
/// (one "qcut_<counter> <value>" line per counter, plus service gauges).
std::vector<std::uint8_t> encode_metrics_response(const std::string& text);
std::string decode_metrics_response(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_error(const std::string& message);
std::string decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace svc
}  // namespace qcut
