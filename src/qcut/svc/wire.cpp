#include "qcut/svc/wire.hpp"

#include <cstdio>
#include <cstring>

#include "qcut/common/error.hpp"
#include "qcut/common/fault.hpp"

namespace qcut {
namespace svc {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f64(Real v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(Real) == sizeof bits, "Real must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  QCUT_CHECK(s.size() <= kMaxPayload, "wire: string exceeds the payload cap");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireReader::need(std::size_t bytes) const {
  QCUT_CHECK(n_ - off_ >= bytes,
             "wire: truncated field — need " + std::to_string(bytes) + " bytes at offset " +
                 std::to_string(off_) + " of " + std::to_string(n_));
}

std::uint8_t WireReader::u8() {
  need(1);
  return p_[off_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(p_[off_] | (p_[off_ + 1] << 8));
  off_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p_[off_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  off_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p_[off_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  off_ += 8;
  return v;
}

Real WireReader::f64() {
  const std::uint64_t bits = u64();
  Real v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return s;
}

void WireReader::expect_done() const {
  QCUT_CHECK(done(), "wire: " + std::to_string(n_ - off_) +
                         " trailing bytes after a complete message (offset " +
                         std::to_string(off_) + ")");
}

namespace {

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kEstimateRequest) &&
         t <= static_cast<std::uint16_t>(MsgType::kError);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  QCUT_CHECK(frame.payload.size() <= kMaxPayload,
             "wire: payload of " + std::to_string(frame.payload.size()) +
                 " bytes exceeds the " + std::to_string(kMaxPayload) + "-byte frame cap");
  WireWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t size) {
  QCUT_CHECK(size >= kFrameHeaderSize, "wire: truncated frame header — got " +
                                           std::to_string(size) + " of " +
                                           std::to_string(kFrameHeaderSize) + " bytes");
  WireReader r(data, size);
  const std::uint32_t magic = r.u32();
  QCUT_CHECK(magic == kWireMagic, "wire: bad magic 0x" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", magic);
    return std::string(buf);
  }() + " (not a qcut frame)");
  const std::uint16_t version = r.u16();
  QCUT_CHECK(version == kWireVersion, "wire: unsupported protocol version " +
                                          std::to_string(version) + " (this build speaks v" +
                                          std::to_string(kWireVersion) + ")");
  const std::uint16_t type = r.u16();
  QCUT_CHECK(known_type(type), "wire: unknown message type " + std::to_string(type));
  FrameHeader h;
  h.type = static_cast<MsgType>(type);
  h.payload_len = r.u32();
  QCUT_CHECK(h.payload_len <= kMaxPayload,
             "wire: declared payload of " + std::to_string(h.payload_len) +
                 " bytes exceeds the " + std::to_string(kMaxPayload) + "-byte frame cap");
  return h;
}

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  const FrameHeader h = decode_frame_header(bytes.data(), bytes.size());
  QCUT_CHECK(bytes.size() - kFrameHeaderSize >= h.payload_len,
             "wire: truncated payload — header declares " + std::to_string(h.payload_len) +
                 " bytes, " + std::to_string(bytes.size() - kFrameHeaderSize) + " present");
  QCUT_CHECK(bytes.size() - kFrameHeaderSize == h.payload_len,
             "wire: " + std::to_string(bytes.size() - kFrameHeaderSize - h.payload_len) +
                 " trailing bytes after the frame");
  Frame f;
  f.type = h.type;
  f.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize), bytes.end());
  return f;
}

std::vector<std::uint8_t> encode_estimate_request(const WireEstimateRequest& req) {
  WireWriter w;
  w.str(req.circuit_qasm);
  w.str(req.observable);
  w.f64(req.epsilon);
  w.u64(req.shots);
  w.u64(req.shot_cap);
  w.u64(req.seed);
  w.u32(static_cast<std::uint32_t>(req.max_fragment_width));
  w.f64(req.resource_overlap);
  w.u32(static_cast<std::uint32_t>(req.pair_budget));
  w.u8(req.allow_gate_cuts);
  w.f64(req.target_accuracy);
  w.u64(req.max_cuts);
  w.u64(req.exhaustive_limit);
  w.u64(req.max_nodes);
  w.u8(req.backend);
  w.str(req.request_id);
  w.u64(req.deadline_ms);
  return w.take();
}

WireEstimateRequest decode_estimate_request(const std::vector<std::uint8_t>& payload) {
  fault::maybe_inject(fault::Site::kWireDecode);
  WireReader r(payload);
  WireEstimateRequest req;
  req.circuit_qasm = r.str();
  req.observable = r.str();
  req.epsilon = r.f64();
  req.shots = r.u64();
  req.shot_cap = r.u64();
  req.seed = r.u64();
  req.max_fragment_width = static_cast<std::int32_t>(r.u32());
  req.resource_overlap = r.f64();
  req.pair_budget = static_cast<std::int32_t>(r.u32());
  req.allow_gate_cuts = r.u8();
  req.target_accuracy = r.f64();
  req.max_cuts = r.u64();
  req.exhaustive_limit = r.u64();
  req.max_nodes = r.u64();
  req.backend = r.u8();
  req.request_id = r.str();
  req.deadline_ms = r.u64();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_estimate_response(const WireEstimateResponse& res) {
  WireWriter w;
  w.u8(res.status);
  w.u64(res.retry_after_ms);
  w.str(res.error);
  w.f64(res.estimate);
  w.f64(res.ci_halfwidth);
  w.u8(res.has_exact);
  w.f64(res.exact);
  w.u64(res.shots_used);
  w.f64(res.kappa);
  w.u64(res.plan_cuts);
  w.u64(res.plan_gate_cuts);
  w.f64(res.plan_total_kappa);
  w.f64(res.plan_predicted_shots);
  w.u32(static_cast<std::uint32_t>(res.plan_max_width));
  w.u32(static_cast<std::uint32_t>(res.plan_max_sim_width));
  w.u8(res.plan_cache_hit);
  w.u8(res.eval_cache_hit);
  w.u8(res.coalesced);
  w.str(res.report_json);
  w.u8(res.code);
  return w.take();
}

WireEstimateResponse decode_estimate_response(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireEstimateResponse res;
  res.status = r.u8();
  res.retry_after_ms = r.u64();
  res.error = r.str();
  res.estimate = r.f64();
  res.ci_halfwidth = r.f64();
  res.has_exact = r.u8();
  res.exact = r.f64();
  res.shots_used = r.u64();
  res.kappa = r.f64();
  res.plan_cuts = r.u64();
  res.plan_gate_cuts = r.u64();
  res.plan_total_kappa = r.f64();
  res.plan_predicted_shots = r.f64();
  res.plan_max_width = static_cast<std::int32_t>(r.u32());
  res.plan_max_sim_width = static_cast<std::int32_t>(r.u32());
  res.plan_cache_hit = r.u8();
  res.eval_cache_hit = r.u8();
  res.coalesced = r.u8();
  res.report_json = r.str();
  res.code = r.u8();
  r.expect_done();
  return res;
}

std::vector<std::uint8_t> encode_metrics_response(const std::string& text) {
  WireWriter w;
  w.str(text);
  return w.take();
}

std::string decode_metrics_response(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  std::string text = r.str();
  r.expect_done();
  return text;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  WireWriter w;
  w.str(message);
  return w.take();
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  std::string message = r.str();
  r.expect_done();
  return message;
}

}  // namespace svc
}  // namespace qcut
