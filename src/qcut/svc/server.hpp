// qcut-server: a daemon answering wire-protocol estimation requests over TCP.
//
// Architecture (one process, three thread populations):
//  * the accept thread hands each connection to a detachable connection
//    thread (connections are long-lived: a client streams many frames);
//  * connection threads parse frames and submit request execution to the
//    shared ThreadPool, then block on the result — so the POOL, not the
//    connection count, bounds estimation concurrency;
//  * pool workers execute requests. The engine and the fragment evaluator
//    detect being on their own pool's worker and fall back inline, so each
//    request runs single-threaded on its worker — which is exactly what lets
//    a ScopedMetricsSink capture that request's counters precisely, and what
//    makes request throughput scale with workers without nested-parallelism
//    deadlocks. Results stay bit-identical to in-process runs because
//    randomness is per-batch counter-streams, never scheduling-dependent.
//
// Admission control: at most `max_inflight` requests may be queued-or-running
// on the pool. Beyond that the server answers kRetryAfter with a suggested
// backoff derived from an EWMA of recent service times — the client-visible
// form of the pool's queue pressure. Coalescing: fully identical in-flight
// requests (same QASM, observable, seed, budget — the whole wire key) are
// merged; followers attach to the leader's future and are answered by the
// same execution, response flagged `coalesced`. Only exact twins merge, so
// coalescing can never change any answer.
//
// Caching: the server owns a process-lifetime ServiceCaches (plans, warm
// QPD+backend entries, fragment skeletons) — see svc/cache.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "qcut/common/threadpool.hpp"
#include "qcut/svc/cache.hpp"
#include "qcut/svc/wire.hpp"

namespace qcut {
namespace svc {

/// Merges concurrent identical work: the first join() of a key is the
/// leader (it executes and must complete() or abandon() the key); later
/// joins while the key is in flight become followers sharing the leader's
/// future. Unit-testable without sockets (test_service.cpp).
template <typename R>
class CoalescingMap {
 public:
  struct Join {
    bool leader = false;
    std::shared_future<R> future;   ///< followers wait here
    std::promise<R> promise;        ///< leader fulfills this (leader only)
  };

  Join join(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      Join j;
      j.leader = false;
      j.future = it->second;
      return j;
    }
    Join j;
    j.leader = true;
    j.future = j.promise.get_future().share();
    inflight_.emplace(key, j.future);
    return j;
  }

  /// Leader-only: removes the key once its promise is fulfilled. Followers
  /// already holding the future are unaffected; new requests start fresh.
  void complete(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
  }

  std::size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_future<R>> inflight_;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;              ///< 0 → ephemeral; read the bound port from port()
  /// Estimation workers. 0 → hardware concurrency (the ThreadPool default).
  std::size_t workers = 0;
  /// Admission cap on queued-or-running requests. 0 → 4 × workers.
  std::size_t max_inflight = 0;
  ServiceCachesConfig caches;
  /// Test hook: sleep this long inside each request's execution, to make
  /// admission rejection and coalescing windows deterministic in tests.
  std::uint64_t debug_request_delay_ms = 0;
};

class QcutServer {
 public:
  explicit QcutServer(ServerConfig cfg = {});
  ~QcutServer();

  QcutServer(const QcutServer&) = delete;
  QcutServer& operator=(const QcutServer&) = delete;

  /// Binds, listens, and starts the accept thread. Throws qcut::Error on
  /// socket failures (port in use, bad host).
  void start();

  /// The bound port (after start(); resolves port = 0 to the actual one).
  int port() const noexcept { return port_; }

  /// Stops accepting, closes every connection, and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  ServiceCaches& caches() noexcept { return caches_; }

  /// The /metrics-style plaintext dump served on kMetricsRequest: one
  /// "qcut_<counter> <value>" line per obs counter plus service gauges
  /// (inflight, cache sizes). Exposed for tests.
  std::string metrics_text() const;

  /// Executes one already-decoded request in-process (no sockets): the
  /// shared implementation of the wire path, exposed so tests and the bench
  /// can drive the exact server semantics deterministically.
  WireEstimateResponse handle_estimate(const WireEstimateRequest& req);

 private:
  void accept_loop();
  void serve_connection(int fd);
  WireEstimateResponse execute(const WireEstimateRequest& req);

  ServerConfig cfg_;
  ThreadPool pool_;
  ServiceCaches caches_;
  CoalescingMap<WireEstimateResponse> coalescer_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> request_serial_{0};
  /// EWMA of request service time in microseconds (α = 1/8), seeded by the
  /// first completed request; the retry-after hint when admission rejects.
  std::atomic<std::uint64_t> ewma_service_us_{0};

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

/// Blocking client for the wire protocol. One connection, sequential
/// request/response; use one client per thread for concurrency.
class QcutClient {
 public:
  /// Connects immediately; throws qcut::Error on failure.
  QcutClient(const std::string& host, int port);
  ~QcutClient();

  QcutClient(const QcutClient&) = delete;
  QcutClient& operator=(const QcutClient&) = delete;

  /// Sends the request and waits for the response. Server-side failures
  /// come back as status = kError (or a decoded error frame), transport
  /// failures throw qcut::Error.
  WireEstimateResponse estimate(const WireEstimateRequest& req);

  /// Fetches the plaintext metrics dump.
  std::string metrics();

 private:
  Frame roundtrip(const Frame& frame);

  int fd_ = -1;
};

}  // namespace svc
}  // namespace qcut
