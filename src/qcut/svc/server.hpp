// qcut-server: a daemon answering wire-protocol estimation requests over TCP.
//
// Architecture (one process, three thread populations):
//  * the accept thread hands each connection to a detachable connection
//    thread (connections are long-lived: a client streams many frames);
//  * connection threads parse frames and submit request execution to the
//    shared ThreadPool, then block on the result — so the POOL, not the
//    connection count, bounds estimation concurrency;
//  * pool workers execute requests. The engine and the fragment evaluator
//    detect being on their own pool's worker and fall back inline, so each
//    request runs single-threaded on its worker — which is exactly what lets
//    a ScopedMetricsSink capture that request's counters precisely, and what
//    makes request throughput scale with workers without nested-parallelism
//    deadlocks. Results stay bit-identical to in-process runs because
//    randomness is per-batch counter-streams, never scheduling-dependent.
//
// Admission control: at most `max_inflight` requests may be queued-or-running
// on the pool. Beyond that the server answers kRetryAfter with a suggested
// backoff derived from an EWMA of recent service times — the client-visible
// form of the pool's queue pressure. Coalescing: fully identical in-flight
// requests (same QASM, observable, seed, budget — the whole wire key) are
// merged; followers attach to the leader's future and are answered by the
// same execution, response flagged `coalesced`. Only exact twins merge, so
// coalescing can never change any answer.
//
// Caching: the server owns a process-lifetime ServiceCaches (plans, warm
// QPD+backend entries, fragment skeletons) — see svc/cache.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "qcut/common/cancel.hpp"
#include "qcut/common/threadpool.hpp"
#include "qcut/svc/cache.hpp"
#include "qcut/svc/wire.hpp"

namespace qcut {
namespace svc {

/// Merges concurrent identical work: the first join() of a key is the
/// leader (it executes and must complete() or abandon() the key); later
/// joins while the key is in flight become followers sharing the leader's
/// future. Unit-testable without sockets (test_service.cpp).
///
/// Cancellation-aware: every join counts as a waiter; a waiter that stops
/// caring (client disconnected) calls leave(). A follower leaving never
/// cancels anything — the leader's execution is cancelled only when the LAST
/// waiter leaves (via the CancelToken the leader registered at join time).
template <typename R>
class CoalescingMap {
 public:
  struct Join {
    bool leader = false;
    std::shared_future<R> future;   ///< followers wait here
    std::promise<R> promise;        ///< leader fulfills this (leader only)
  };

  /// `cancel` (leader-supplied; ignored for followers) is the token leave()
  /// fires when the waiter count drops to zero mid-flight.
  Join join(const std::string& key, std::shared_ptr<CancelToken> cancel = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      ++it->second.waiters;
      Join j;
      j.leader = false;
      j.future = it->second.future;
      return j;
    }
    Join j;
    j.leader = true;
    j.future = j.promise.get_future().share();
    Entry entry;
    entry.future = j.future;
    entry.waiters = 1;
    entry.cancel = std::move(cancel);
    inflight_.emplace(key, std::move(entry));
    return j;
  }

  /// A waiter abandoned the key (its client hung up). When no waiters
  /// remain and the key is still in flight, the leader's token is cancelled
  /// — nobody is left to read the answer. No-op after complete().
  void leave(const std::string& key) {
    std::shared_ptr<CancelToken> fire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(key);
      if (it == inflight_.end() || it->second.waiters == 0) {
        return;
      }
      if (--it->second.waiters == 0) {
        fire = it->second.cancel;
      }
    }
    if (fire != nullptr) {
      fire->cancel();
    }
  }

  /// Leader-only: removes the key once its promise is fulfilled. Followers
  /// already holding the future are unaffected; new requests start fresh.
  void complete(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
  }

  std::size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

  /// Current waiter count of an in-flight key (0 when absent). Test hook.
  std::size_t waiters(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    return it == inflight_.end() ? 0 : it->second.waiters;
  }

 private:
  struct Entry {
    std::shared_future<R> future;
    std::size_t waiters = 0;
    std::shared_ptr<CancelToken> cancel;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> inflight_;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;              ///< 0 → ephemeral; read the bound port from port()
  /// Estimation workers. 0 → hardware concurrency (the ThreadPool default).
  std::size_t workers = 0;
  /// Admission cap on queued-or-running requests. 0 → 4 × workers.
  std::size_t max_inflight = 0;
  ServiceCachesConfig caches;
  /// Server-side ceiling on client deadlines, in ms: requests asking for
  /// more are clamped down, requests asking for nothing get exactly this.
  /// 0 → no ceiling (client deadlines pass through; none is imposed).
  std::uint64_t max_deadline_ms = 0;
  /// Default graceful-drain budget for drain(): how long in-flight requests
  /// may run to completion before the rest are cancelled.
  std::uint64_t drain_ms = 2000;
  /// Test hook: sleep this long inside each request's execution, to make
  /// admission rejection and coalescing windows deterministic in tests.
  std::uint64_t debug_request_delay_ms = 0;
};

class QcutServer {
 public:
  explicit QcutServer(ServerConfig cfg = {});
  ~QcutServer();

  QcutServer(const QcutServer&) = delete;
  QcutServer& operator=(const QcutServer&) = delete;

  /// Binds, listens, and starts the accept thread. Throws qcut::Error on
  /// socket failures (port in use, bad host).
  void start();

  /// The bound port (after start(); resolves port = 0 to the actual one).
  int port() const noexcept { return port_; }

  /// Stops accepting, closes every connection, and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Graceful shutdown (the SIGTERM path): stop accepting new connections,
  /// answer new estimate requests on live connections with a retryable
  /// `overloaded` rejection, let in-flight work finish for up to `budget_ms`
  /// (0 → cfg.drain_ms), then cancel the stragglers — their clients receive
  /// clean `cancelled` responses, never a silently dropped socket — and
  /// stop(). Returns true when every request finished or was answered within
  /// the budget (plus a bounded cancellation-settle grace).
  bool drain(std::uint64_t budget_ms = 0);

  /// True between drain() entry and stop().
  bool draining() const noexcept { return draining_.load(std::memory_order_relaxed); }

  ServiceCaches& caches() noexcept { return caches_; }

  /// The /metrics-style plaintext dump served on kMetricsRequest: one
  /// "qcut_<counter> <value>" line per obs counter plus service gauges
  /// (inflight, cache sizes). Exposed for tests.
  std::string metrics_text() const;

  /// Executes one already-decoded request in-process (no sockets): the
  /// shared implementation of the wire path, exposed so tests and the bench
  /// can drive the exact server semantics deterministically.
  WireEstimateResponse handle_estimate(const WireEstimateRequest& req);

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// The wire path's estimate handler: like handle_estimate, but when
  /// `watch_fd` >= 0 the wait additionally watches that socket for a peer
  /// hangup — a vanished client leaves the coalescing key (cancelling the
  /// execution only when it was the last waiter) and sets *client_gone so
  /// the connection is closed without a send.
  WireEstimateResponse handle_estimate_watched(const WireEstimateRequest& req, int watch_fd,
                                               bool* client_gone);
  WireEstimateResponse execute(const WireEstimateRequest& req, std::uint64_t serial);
  /// The deadline actually enforced for a request: the client's ask clamped
  /// by cfg.max_deadline_ms (which also applies when the client asked for
  /// nothing). 0 → unbounded.
  std::uint64_t effective_deadline_ms(std::uint64_t requested_ms) const noexcept;

  ServerConfig cfg_;
  ThreadPool pool_;
  ServiceCaches caches_;
  CoalescingMap<WireEstimateResponse> coalescer_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};
  /// Connections currently processing a frame (recv'd, response not yet
  /// sent): drain() waits for this to hit zero so no client loses an
  /// already-earned response to the final socket teardown.
  std::atomic<std::size_t> busy_conns_{0};
  std::atomic<std::uint64_t> request_serial_{0};
  /// EWMA of request service time in microseconds (α = 1/8), seeded by the
  /// first completed request; the retry-after hint when admission rejects.
  std::atomic<std::uint64_t> ewma_service_us_{0};

  /// Tokens of requests currently executing, for drain()'s cancel sweep.
  std::mutex tokens_mu_;
  std::map<std::uint64_t, std::shared_ptr<CancelToken>> active_tokens_;

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

/// Blocking client for the wire protocol. One connection, sequential
/// request/response; use one client per thread for concurrency.
class QcutClient {
 public:
  /// Connects immediately; throws qcut::Error on failure.
  QcutClient(const std::string& host, int port);
  ~QcutClient();

  QcutClient(const QcutClient&) = delete;
  QcutClient& operator=(const QcutClient&) = delete;

  /// Sends the request and waits for the response. Server-side failures
  /// come back as status = kError (or a decoded error frame), transport
  /// failures throw qcut::Error.
  WireEstimateResponse estimate(const WireEstimateRequest& req);

  /// Fetches the plaintext metrics dump.
  std::string metrics();

 private:
  Frame roundtrip(const Frame& frame);

  int fd_ = -1;
};

}  // namespace svc
}  // namespace qcut
