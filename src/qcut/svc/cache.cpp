#include "qcut/svc/cache.hpp"

#include <cstring>
#include <sstream>

namespace qcut {
namespace svc {

namespace {

/// Incremental FNV-1a 64.
class Fnv64 {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void real(Real v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(Real) == sizeof bits, "Real must be 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void cplx(Cplx v) {
    real(v.real());
    real(v.imag());
  }
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Doubles keyed by bit pattern: two configs get equal keys iff every field
/// is bit-equal — no formatting round-trip ambiguity.
std::string real_bits(Real v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

}  // namespace

std::uint64_t circuit_hash(const Circuit& circ) {
  Fnv64 h;
  h.i64(circ.n_qubits());
  h.i64(circ.n_cbits());
  h.u64(circ.size());
  for (const Operation& op : circ.ops()) {
    h.i64(static_cast<std::int64_t>(op.kind));
    h.u64(op.qubits.size());
    for (int q : op.qubits) {
      h.i64(q);
    }
    h.i64(op.cbit);
    h.i64(op.matrix.rows());
    h.i64(op.matrix.cols());
    const std::size_t mn = static_cast<std::size_t>(op.matrix.rows() * op.matrix.cols());
    for (std::size_t i = 0; i < mn; ++i) {
      h.cplx(op.matrix.data()[i]);
    }
    h.u64(op.init_state.size());
    for (Cplx a : op.init_state) {
      h.cplx(a);
    }
    // op.label and op.gclass are derived/presentation — excluded.
  }
  return h.value();
}

std::string planner_config_key(const PlannerConfig& cfg) {
  std::ostringstream os;
  os << "w" << cfg.max_fragment_width << ";f" << real_bits(cfg.resource_overlap) << ";p"
     << cfg.pair_budget << ";g" << (cfg.allow_gate_cuts ? 1 : 0) << ";e"
     << real_bits(cfg.target_accuracy) << ";c" << cfg.max_cuts << ";x" << cfg.exhaustive_limit
     << ";n" << cfg.max_nodes << ";dev[";
  for (const DeviceSpec& d : cfg.device_model.devices) {
    os << d.width_cap << ",";
  }
  os << "];lnk[";
  for (const LinkSpec& l : cfg.device_model.links) {
    os << real_bits(l.overlap) << "," << l.pair_budget << ","
       << static_cast<int>(l.family) << ";";
  }
  os << "]";
  return os.str();
}

std::string plan_key(std::uint64_t circuit_hash, const PlannerConfig& cfg) {
  std::ostringstream os;
  os << std::hex << circuit_hash;
  return os.str() + "|" + planner_config_key(cfg);
}

std::string eval_key(const std::string& plan_key, const Observable& observable,
                     const CutRunConfig& cfg) {
  std::ostringstream os;
  os << plan_key << "|" << observable.to_string() << "|b" << static_cast<int>(cfg.backend) << ";t"
     << cfg.auto_fragment_threshold;
  return os.str();
}

std::shared_ptr<EvalEntry> EvalEntry::build(PlannedExecutor executor, const Observable& observable,
                                            const CutRunConfig& cfg,
                                            std::shared_ptr<SplitSkeletonCache> skeletons) {
  Qpd qpd = executor.build_qpd(observable);
  const BackendKind kind = PlannedExecutor::routed_backend(qpd, cfg);
  auto entry = std::make_shared<EvalEntry>(std::move(executor), std::move(qpd), kind);
  // Bound to entry->qpd, whose address is stable for the entry's lifetime
  // (the entry is heap-allocated and the Qpd never reassigned).
  entry->backend = make_backend(kind, entry->qpd, cfg.pool, std::move(skeletons));
  return entry;
}

ServiceCaches& global_service_caches() {
  static ServiceCaches caches;
  return caches;
}

}  // namespace svc
}  // namespace qcut
