// The service front door: one typed request in, one typed result out.
//
// EstimateRequest is the single public entry point for "estimate ⟨O⟩ of this
// circuit to accuracy ε": it carries the circuit (QASM text or IR), a typed
// Observable, the accuracy/shot policy, and the planner and execution
// configuration. svc::estimate() validates the request up front (observable
// alphabet and width, identity rejection, QASM parse) so errors surface at
// the door with request-level diagnostics instead of three layers down.
//
// plan_and_run() is implemented on top of estimate() (without caches), and
// the qcut-server daemon calls estimate() with its process-lifetime
// ServiceCaches — both paths run the identical plan/splice/execute code, so
// a daemon answer is bit-identical to an in-process run of the same request
// (pinned by test_service.cpp). Cache hits only ever save time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "qcut/common/cancel.hpp"
#include "qcut/plan/cut_planner.hpp"
#include "qcut/plan/planned_executor.hpp"
#include "qcut/sim/observable.hpp"

namespace qcut {
namespace svc {

class ServiceCaches;

struct EstimateRequest {
  /// The circuit, as OpenQASM 2 text. Used when `circuit` is not set;
  /// trailing terminal measurements are stripped on import (the observable
  /// below defines the measurement).
  std::string circuit_qasm;
  /// The circuit, as IR. Wins over circuit_qasm when set.
  std::optional<Circuit> circuit;
  /// Pauli-string observable; must match the circuit width and must not be
  /// the identity (whose expectation is identically 1 — nothing to estimate).
  Observable observable;
  /// Target absolute accuracy ε. > 0 overrides planner.target_accuracy; the
  /// planner predicts (and shots = 0 runs) the κ²/ε² budget for it.
  Real epsilon = 0.0;
  /// Hard ceiling on the executed shot count, applied after the ε-predicted
  /// budget is resolved. 0 → uncapped.
  std::uint64_t shot_cap = 0;
  /// Echoed into the result's RunReport and trace spans; assign unique ids
  /// to correlate daemon-side artifacts with client requests.
  std::string request_id;
  /// Deadline in milliseconds, steady-clock, measured from whenever the
  /// deadline is armed (the daemon arms at admission so queue wait counts;
  /// in-process calls arm at estimate() entry). Exceeding it aborts the run
  /// with ErrorCode::kDeadlineExceeded at the next poll. 0 → none.
  std::uint64_t deadline_ms = 0;
  /// Caller-owned cancellation token, polled at coarse quantum boundaries
  /// throughout planning and execution; cancel() aborts the run with
  /// ErrorCode::kCancelled. Optional — when null and deadline_ms > 0,
  /// estimate() runs against an internal deadline-only token.
  CancelToken* cancel = nullptr;
  PlannerConfig planner;
  /// Execution config: shots (0 → predicted budget), seed, backend, pool.
  CutRunConfig run_cfg;
};

/// The plan's headline numbers, detached from the full CutPlan so wire
/// clients get them without shipping the plan structure.
struct PlanSummary {
  std::uint64_t cuts = 0;
  std::uint64_t gate_cuts = 0;
  Real total_kappa = 1.0;
  Real predicted_shots = 0.0;
  int max_width = 0;
  int max_sim_width = 0;
};

struct EstimateResult {
  Real estimate = 0.0;
  /// 95% CI half-width from the κ-bounded estimator variance:
  /// 1.96·sqrt(max(κ² − estimate², 0) / shots).
  Real ci_halfwidth = 0.0;
  bool has_exact = false;
  Real exact = 0.0;         ///< monolithic reference (has_exact only)
  std::uint64_t shots_used = 0;
  Real kappa = 1.0;
  PlanSummary plan_summary;
  // Cache provenance of THIS response (false on cacheless paths).
  bool plan_cache_hit = false;
  bool eval_cache_hit = false;
  bool coalesced = false;   ///< answered by an in-flight twin (daemon only)
  /// Full artifacts for in-process callers; the wire protocol ships the
  /// summary plus run.report JSON instead.
  CutPlan plan;
  CutRunResult run;
};

/// Validates and executes one request. `caches` null → plan and evaluate
/// from scratch (the plan_and_run path); non-null → serve the plan and the
/// warm QPD/backend from the caches when keys match, bit-identically.
/// Throws qcut::Error with request-level diagnostics on invalid input.
EstimateResult estimate(const EstimateRequest& req, ServiceCaches* caches = nullptr);

/// The CI half-width formula above, exposed for clients and benches.
Real ci_halfwidth(Real estimate, Real kappa, std::uint64_t shots);

}  // namespace svc
}  // namespace qcut
