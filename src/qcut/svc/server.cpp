#include "qcut/svc/server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "qcut/common/error.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/svc/api.hpp"

namespace qcut {
namespace svc {

namespace {

/// recv() until exactly `n` bytes arrive. Returns false on orderly shutdown
/// at a frame boundary (n bytes requested, 0 received so far); throws on
/// mid-frame EOF or socket errors.
bool recv_all(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      QCUT_CHECK(got == 0, "wire: connection closed mid-frame (" + std::to_string(got) + " of " +
                               std::to_string(n) + " bytes)");
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("wire: recv failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void send_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("wire: send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

void send_frame(int fd, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  send_all(fd, bytes.data(), bytes.size());
}

/// Reads one frame; false on orderly close at a frame boundary.
bool recv_frame(int fd, Frame* out) {
  std::uint8_t header[kFrameHeaderSize];
  if (!recv_all(fd, header, sizeof header)) {
    return false;
  }
  const FrameHeader h = decode_frame_header(header, sizeof header);
  out->type = h.type;
  out->payload.resize(h.payload_len);
  if (h.payload_len > 0) {
    QCUT_CHECK(recv_all(fd, out->payload.data(), out->payload.size()),
               "wire: connection closed mid-payload");
  }
  return true;
}

/// True when the peer has hung up (or the socket is dead). Non-blocking
/// MSG_PEEK: pending pipelined bytes mean the client is alive and waiting.
bool peer_closed(int fd) {
  if (fd < 0) {
    return false;
  }
  std::uint8_t b = 0;
  const ssize_t r = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
  if (r == 0) {
    return true;  // orderly shutdown from the peer
  }
  if (r < 0) {
    return !(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
  }
  return false;
}

int connect_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  QCUT_CHECK(rc == 0, "wire: cannot resolve '" + host + "': " + gai_strerror(rc));
  int fd = -1;
  std::string last_err = "no addresses";
  for (addrinfo* a = res; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_err = std::strerror(errno);
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) {
      break;
    }
    last_err = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  QCUT_CHECK(fd >= 0, "wire: cannot connect to " + host + ":" + std::to_string(port) + ": " +
                          last_err);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

QcutServer::QcutServer(ServerConfig cfg)
    : cfg_(cfg), pool_(cfg.workers), caches_(cfg.caches) {
  if (cfg_.max_inflight == 0) {
    cfg_.max_inflight = 4 * pool_.size();
  }
}

QcutServer::~QcutServer() { stop(); }

void QcutServer::start() {
  QCUT_CHECK(listen_fd_ < 0, "QcutServer: already started");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(cfg_.host.c_str(), std::to_string(cfg_.port).c_str(), &hints, &res);
  QCUT_CHECK(rc == 0, "QcutServer: cannot resolve '" + cfg_.host + "': " + gai_strerror(rc));

  listen_fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(res);
    throw Error(std::string("QcutServer: socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(listen_fd_, res->ai_addr, res->ai_addrlen) != 0 || ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::freeaddrinfo(res);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("QcutServer: cannot listen on " + cfg_.host + ":" + std::to_string(cfg_.port) +
                ": " + err);
  }
  ::freeaddrinfo(res);

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void QcutServer::stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool QcutServer::drain(std::uint64_t budget_ms) {
  if (budget_ms == 0) {
    budget_ms = cfg_.drain_ms;
  }
  if (!running_.load()) {
    return true;  // never started or already stopped: trivially drained
  }
  draining_.store(true, std::memory_order_relaxed);

  // Stop the intake: close the listen socket so no new connections arrive.
  // Live connections keep serving — their new estimate requests get the
  // retryable draining rejection, their in-flight ones run to completion.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  const auto idle = [this] {
    return inflight_.load(std::memory_order_relaxed) == 0 &&
           busy_conns_.load(std::memory_order_relaxed) == 0;
  };
  const auto wait_idle_until = [&idle](std::chrono::steady_clock::time_point end) {
    while (!idle() && std::chrono::steady_clock::now() < end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return idle();
  };

  bool clean = wait_idle_until(std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(budget_ms));
  if (!clean) {
    // Budget exhausted: cancel the stragglers. Their workers hit the next
    // poll quantum, unwind with kCancelled, and their clients receive clean
    // `cancelled` responses over still-open sockets.
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      for (auto& entry : active_tokens_) {
        entry.second->cancel();
      }
    }
    // Bounded settle: cancellation is cooperative, so give the polls a
    // moment to land and the responses a moment to flush.
    clean = wait_idle_until(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(1000));
  }
  stop();
  return clean;
}

void QcutServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void QcutServer::serve_connection(int fd) {
  // Counts connections mid-frame (request received, response not yet sent):
  // drain() refuses to tear sockets down while any response is still owed.
  struct BusyGuard {
    std::atomic<std::size_t>& c;
    explicit BusyGuard(std::atomic<std::size_t>& counter) : c(counter) {
      c.fetch_add(1, std::memory_order_relaxed);
    }
    ~BusyGuard() { c.fetch_sub(1, std::memory_order_relaxed); }
  };
  try {
    Frame frame;
    while (running_.load() && recv_frame(fd, &frame)) {
      BusyGuard busy(busy_conns_);
      switch (frame.type) {
        case MsgType::kEstimateRequest: {
          WireEstimateResponse resp;
          bool client_gone = false;
          try {
            resp = handle_estimate_watched(decode_estimate_request(frame.payload), fd,
                                           &client_gone);
          } catch (const std::exception& e) {
            // Malformed payloads get a typed error frame; the connection
            // survives (framing is still intact).
            send_frame(fd, Frame{MsgType::kError, encode_error(e.what())});
            continue;
          }
          if (client_gone) {
            continue;  // peer hung up mid-request; the recv loop sees the close
          }
          send_frame(fd, Frame{MsgType::kEstimateResponse, encode_estimate_response(resp)});
          break;
        }
        case MsgType::kMetricsRequest:
          send_frame(fd, Frame{MsgType::kMetricsResponse, encode_metrics_response(metrics_text())});
          break;
        default:
          send_frame(fd, Frame{MsgType::kError,
                               encode_error("server: unexpected message type " +
                                            std::to_string(static_cast<int>(frame.type)))});
          break;
      }
    }
  } catch (const std::exception&) {
    // Frame-desync or transport failure: drop the connection. The protocol
    // has no resync point inside a stream, so closing is the safe answer.
  }
  ::close(fd);
}

std::uint64_t QcutServer::effective_deadline_ms(std::uint64_t requested_ms) const noexcept {
  if (cfg_.max_deadline_ms == 0) {
    return requested_ms;  // no ceiling configured: the client's ask stands
  }
  return requested_ms == 0 ? cfg_.max_deadline_ms
                           : std::min(requested_ms, cfg_.max_deadline_ms);
}

WireEstimateResponse QcutServer::handle_estimate(const WireEstimateRequest& req) {
  return handle_estimate_watched(req, /*watch_fd=*/-1, /*client_gone=*/nullptr);
}

WireEstimateResponse QcutServer::handle_estimate_watched(const WireEstimateRequest& req,
                                                         int watch_fd, bool* client_gone) {
  obs::count(obs::Counter::kSvcRequests);

  // A draining server starts nothing new; the rejection is retryable so the
  // client can fail over (or wait out the restart).
  if (draining_.load(std::memory_order_relaxed)) {
    obs::count(obs::Counter::kSvcRejected);
    WireEstimateResponse resp;
    resp.status = static_cast<std::uint8_t>(WireStatus::kRetryAfter);
    resp.retry_after_ms = cfg_.drain_ms == 0 ? 1000 : cfg_.drain_ms;
    resp.code = static_cast<std::uint8_t>(ErrorCode::kOverloaded);
    resp.error = "server draining — not accepting new requests";
    return resp;
  }

  // Admission control: the pool (not the socket count) bounds concurrency;
  // past the cap the client is told to back off for about one service time.
  if (inflight_.load(std::memory_order_relaxed) >= cfg_.max_inflight) {
    obs::count(obs::Counter::kSvcRejected);
    WireEstimateResponse resp;
    resp.status = static_cast<std::uint8_t>(WireStatus::kRetryAfter);
    const std::uint64_t ewma_us = ewma_service_us_.load(std::memory_order_relaxed);
    resp.retry_after_ms = ewma_us == 0 ? 50 : (ewma_us + 999) / 1000;
    resp.code = static_cast<std::uint8_t>(ErrorCode::kOverloaded);
    resp.error = "server at capacity (" + std::to_string(cfg_.max_inflight) +
                 " requests in flight) — retry after " + std::to_string(resp.retry_after_ms) +
                 " ms";
    return resp;
  }

  // Coalescing key = the exact wire payload: only bit-identical requests
  // (including seed, budget and deadline) merge, so merged answers are the
  // answers each request would have gotten alone.
  const std::vector<std::uint8_t> payload = encode_estimate_request(req);
  const std::string key(payload.begin(), payload.end());
  auto cancel = std::make_shared<CancelToken>();
  auto join = coalescer_.join(key, cancel);
  if (!join.leader) {
    obs::count(obs::Counter::kSvcCoalesced);
    // Follower: wait on the leader's future, watching our socket when asked.
    // A vanished client leaves the key — which cancels the leader's run only
    // when nobody else is waiting — and sends nothing.
    if (watch_fd >= 0) {
      while (join.future.wait_for(std::chrono::milliseconds(10)) !=
             std::future_status::ready) {
        if (peer_closed(watch_fd)) {
          coalescer_.leave(key);
          if (client_gone != nullptr) {
            *client_gone = true;
          }
          return {};
        }
      }
    }
    WireEstimateResponse resp = join.future.get();
    resp.coalesced = 1;
    return resp;
  }

  // Leader. The deadline is armed at admission, so pool-queue wait counts
  // against it — a saturated server times out instead of silently stretching.
  const std::uint64_t deadline = effective_deadline_ms(req.deadline_ms);
  if (deadline > 0) {
    cancel->set_deadline_after_ms(deadline);
  }
  const std::uint64_t serial = request_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_[serial] = cancel;
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);

  // shared_ptr wrapper: ThreadPool::submit takes std::function, which
  // requires a copyable callable; std::promise is move-only. `fulfilled`
  // lets the leader detect a promise orphaned by a failure in the pool's own
  // wrapper (e.g. an injected pool.task fault) and rescue it below.
  auto promise = std::make_shared<std::promise<WireEstimateResponse>>(std::move(join.promise));
  auto fulfilled = std::make_shared<std::atomic<bool>>(false);
  std::future<void> task_done =
      pool_.submit([this, req, key, serial, cancel, promise, fulfilled]() {
        const auto t0 = std::chrono::steady_clock::now();
        WireEstimateResponse resp;
        // Install the request's token on this worker: every cancel_poll()
        // below estimate() — planner DFS, batch loop, fragment units — sees it.
        ScopedCancelScope cancel_scope(cancel.get());
        try {
          resp = execute(req, serial);
        } catch (const Error& e) {
          resp.status = static_cast<std::uint8_t>(WireStatus::kError);
          resp.error = e.what();
          resp.code = static_cast<std::uint8_t>(e.code());
        } catch (const std::exception& e) {
          resp.status = static_cast<std::uint8_t>(WireStatus::kError);
          resp.error = e.what();
          resp.code = static_cast<std::uint8_t>(ErrorCode::kInternal);
        }
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        const std::uint64_t prev = ewma_service_us_.load(std::memory_order_relaxed);
        const std::uint64_t sample = static_cast<std::uint64_t>(us);
        ewma_service_us_.store(prev == 0 ? sample : prev - prev / 8 + sample / 8,
                               std::memory_order_relaxed);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(tokens_mu_);
          active_tokens_.erase(serial);
        }
        // Retire the coalescing key BEFORE publishing the value: the client
        // sees the response only after set_value, so its next request can
        // never join a leader that already answered (it would inherit stale
        // cache flags).
        coalescer_.complete(key);
        promise->set_value(std::move(resp));
        fulfilled->store(true, std::memory_order_release);
      });

  // Wait on our own submission (not just join.future): if the pool wrapper
  // throws before the lambda runs, the promise is never fulfilled and every
  // waiter would hang — the get() below surfaces that and we rescue.
  bool gone = false;
  if (watch_fd >= 0) {
    while (task_done.wait_for(std::chrono::milliseconds(10)) != std::future_status::ready) {
      if (!gone && peer_closed(watch_fd)) {
        gone = true;
        if (client_gone != nullptr) {
          *client_gone = true;
        }
        // We stop caring about the answer, but stay to shepherd the task:
        // leave() cancels the run iff we were its last waiter.
        coalescer_.leave(key);
      }
    }
  } else {
    task_done.wait();
  }
  try {
    task_done.get();
  } catch (const std::exception& e) {
    if (!fulfilled->load(std::memory_order_acquire)) {
      // The pool wrapper failed before our lambda ran: redo the bookkeeping
      // it never reached so waiters get a typed answer instead of a hang.
      WireEstimateResponse resp;
      resp.status = static_cast<std::uint8_t>(WireStatus::kError);
      resp.error = e.what();
      const Error* err = dynamic_cast<const Error*>(&e);
      resp.code = static_cast<std::uint8_t>(err != nullptr ? err->code() : ErrorCode::kInternal);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(tokens_mu_);
        active_tokens_.erase(serial);
      }
      coalescer_.complete(key);
      promise->set_value(std::move(resp));
      fulfilled->store(true, std::memory_order_release);
    }
  }
  if (gone) {
    return {};
  }
  return join.future.get();
}

WireEstimateResponse QcutServer::execute(const WireEstimateRequest& wreq, std::uint64_t serial) {
  obs::TraceSpan span("svc.request", serial);

  if (cfg_.debug_request_delay_ms > 0) {
    // Sleep in 1 ms quanta with cancellation polls so a deadline or a drain
    // cancellation lands mid-delay instead of after the full artificial wait.
    const auto delay_end = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(cfg_.debug_request_delay_ms);
    while (std::chrono::steady_clock::now() < delay_end) {
      cancel_poll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (wreq.backend > 2) {
    throw Error("server: unknown backend kind " + std::to_string(wreq.backend),
                ErrorCode::kInvalidRequest);
  }

  EstimateRequest req;
  req.circuit_qasm = wreq.circuit_qasm;
  try {
    req.observable = Observable::parse(wreq.observable);
  } catch (const Error& e) {
    throw Error(e.what(), ErrorCode::kInvalidRequest);
  }
  req.epsilon = wreq.epsilon;
  req.shot_cap = wreq.shot_cap;
  req.request_id = wreq.request_id.empty() ? "req-" + std::to_string(serial) : wreq.request_id;
  req.planner.max_fragment_width = wreq.max_fragment_width;
  req.planner.resource_overlap = wreq.resource_overlap;
  req.planner.pair_budget = wreq.pair_budget;
  req.planner.allow_gate_cuts = wreq.allow_gate_cuts != 0;
  req.planner.target_accuracy = wreq.target_accuracy;
  req.planner.max_cuts = wreq.max_cuts;
  req.planner.exhaustive_limit = wreq.exhaustive_limit;
  req.planner.max_nodes = wreq.max_nodes;
  req.run_cfg.shots = wreq.shots;
  req.run_cfg.seed = wreq.seed;
  req.run_cfg.backend = static_cast<BackendKind>(wreq.backend);
  req.run_cfg.pool = &pool_;
  // Requests execute wholly on this pool worker (inline fallbacks), so a
  // per-thread sink captures exactly this request's counters.
  req.run_cfg.scoped_report = true;
  // The admission-armed token is already installed on this worker; handing
  // it to estimate() too buys the front-door poll (fail before planning).
  req.cancel = current_cancel_token();

  const EstimateResult res = estimate(req, &caches_);

  WireEstimateResponse resp;
  resp.status = static_cast<std::uint8_t>(WireStatus::kOk);
  resp.code = static_cast<std::uint8_t>(ErrorCode::kOk);
  resp.estimate = res.estimate;
  resp.ci_halfwidth = res.ci_halfwidth;
  resp.has_exact = res.has_exact ? 1 : 0;
  resp.exact = res.exact;
  resp.shots_used = res.shots_used;
  resp.kappa = res.kappa;
  resp.plan_cuts = res.plan_summary.cuts;
  resp.plan_gate_cuts = res.plan_summary.gate_cuts;
  resp.plan_total_kappa = res.plan_summary.total_kappa;
  resp.plan_predicted_shots = res.plan_summary.predicted_shots;
  resp.plan_max_width = res.plan_summary.max_width;
  resp.plan_max_sim_width = res.plan_summary.max_sim_width;
  resp.plan_cache_hit = res.plan_cache_hit ? 1 : 0;
  resp.eval_cache_hit = res.eval_cache_hit ? 1 : 0;
  resp.report_json = res.run.report.to_json(2);
  return resp;
}

std::string QcutServer::metrics_text() const {
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  std::ostringstream os;
  for (int i = 0; i < obs::kCounterCount; ++i) {
    os << "qcut_" << obs::counter_name(static_cast<obs::Counter>(i)) << " "
       << snap.values[static_cast<std::size_t>(i)] << "\n";
  }
  os << "qcut_svc_inflight " << inflight_.load(std::memory_order_relaxed) << "\n";
  os << "qcut_svc_max_inflight " << cfg_.max_inflight << "\n";
  os << "qcut_svc_draining " << (draining_.load(std::memory_order_relaxed) ? 1 : 0) << "\n";
  os << "qcut_svc_pool_workers " << pool_.size() << "\n";
  os << "qcut_plan_cache_size " << caches_.plans.size() << "\n";
  os << "qcut_eval_cache_size " << caches_.evals.size() << "\n";
  return os.str();
}

QcutClient::QcutClient(const std::string& host, int port) : fd_(connect_tcp(host, port)) {}

QcutClient::~QcutClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Frame QcutClient::roundtrip(const Frame& frame) {
  send_frame(fd_, frame);
  Frame resp;
  QCUT_CHECK(recv_frame(fd_, &resp), "wire: server closed the connection");
  return resp;
}

WireEstimateResponse QcutClient::estimate(const WireEstimateRequest& req) {
  const Frame resp = roundtrip(Frame{MsgType::kEstimateRequest, encode_estimate_request(req)});
  if (resp.type == MsgType::kError) {
    WireEstimateResponse out;
    out.status = static_cast<std::uint8_t>(WireStatus::kError);
    out.error = decode_error(resp.payload);
    return out;
  }
  QCUT_CHECK(resp.type == MsgType::kEstimateResponse,
             "wire: expected an estimate response, got type " +
                 std::to_string(static_cast<int>(resp.type)));
  return decode_estimate_response(resp.payload);
}

std::string QcutClient::metrics() {
  const Frame resp = roundtrip(Frame{MsgType::kMetricsRequest, {}});
  QCUT_CHECK(resp.type == MsgType::kMetricsResponse,
             "wire: expected a metrics response, got type " +
                 std::to_string(static_cast<int>(resp.type)));
  return decode_metrics_response(resp.payload);
}

}  // namespace svc
}  // namespace qcut
