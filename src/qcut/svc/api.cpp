#include "qcut/svc/api.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "qcut/common/cancel.hpp"
#include "qcut/common/error.hpp"
#include "qcut/common/fault.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/qasm_import.hpp"
#include "qcut/svc/cache.hpp"

namespace qcut {
namespace svc {

namespace {

Circuit resolve_circuit(const EstimateRequest& req) {
  if (req.circuit.has_value()) {
    return *req.circuit;
  }
  QCUT_CHECK(!req.circuit_qasm.empty(),
             "svc::estimate: request carries neither a circuit IR nor QASM text");
  return strip_trailing_measurements(import_qasm(req.circuit_qasm, "<request>"));
}

PlanSummary summarize(const CutPlan& plan) {
  PlanSummary s;
  s.cuts = plan.cuts.size();
  s.gate_cuts = plan.gate_cut_count();
  s.total_kappa = plan.total_kappa;
  s.predicted_shots = plan.predicted_shots;
  s.max_width = plan.max_width;
  s.max_sim_width = plan.max_sim_width;
  return s;
}

}  // namespace

Real ci_halfwidth(Real estimate, Real kappa, std::uint64_t shots) {
  if (shots == 0) {
    return 0.0;
  }
  // Per-sample outcomes are κ-bounded, so Var <= κ² − E[X]²; the 95% normal
  // quantile turns the SEM bound into a CI half-width.
  const Real var = std::max(kappa * kappa - estimate * estimate, 0.0);
  return 1.96 * std::sqrt(var / static_cast<Real>(shots));
}

EstimateResult estimate(const EstimateRequest& req, ServiceCaches* caches) {
  obs::TraceSpan span("svc.estimate");

  // Cancellation scope for the whole request: the caller's token when given,
  // else a local deadline-only token when the request carries a deadline.
  // Every layer below polls the installed token at its quantum boundary.
  CancelToken deadline_token;
  CancelToken* token = req.cancel;
  if (token == nullptr && req.deadline_ms > 0) {
    token = &deadline_token;
  }
  if (token != nullptr && req.deadline_ms > 0 && !token->has_deadline()) {
    token->set_deadline_after_ms(req.deadline_ms);
  }
  std::optional<ScopedCancelScope> cancel_scope;
  if (token != nullptr) {
    cancel_scope.emplace(token);
    cancel_poll();  // an already-tripped token fails at the door, not mid-plan
  }

  Circuit circ;
  try {
    circ = resolve_circuit(req);
  } catch (const Error& e) {
    // QASM parse problems are the requester's, not the service's.
    throw Error(e.what(), ErrorCode::kInvalidRequest);
  }

  // Front-door validation: every failure below names the request's problem
  // instead of surfacing as a cutter error three layers down, and carries
  // kInvalidRequest so wire clients can classify it as permanent.
  if (req.observable.n_qubits() != circ.n_qubits()) {
    throw Error("svc::estimate: observable '" + req.observable.to_string() + "' is " +
                    std::to_string(req.observable.n_qubits()) +
                    " qubits but the circuit has " + std::to_string(circ.n_qubits()),
                ErrorCode::kInvalidRequest);
  }
  if (req.observable.is_identity()) {
    throw Error(
        "svc::estimate: the identity observable has expectation 1 identically — "
        "nothing to estimate",
        ErrorCode::kInvalidRequest);
  }
  if (req.epsilon < 0.0) {
    throw Error("svc::estimate: epsilon must be >= 0", ErrorCode::kInvalidRequest);
  }

  fault::maybe_inject(fault::Site::kSvcPlan);

  PlannerConfig pcfg = req.planner;
  if (req.epsilon > 0.0) {
    pcfg.target_accuracy = req.epsilon;
  }

  EstimateResult res;

  // Plan: served from the cross-request cache when the (circuit, planner
  // config) key matches; the planner is deterministic, so a cached plan IS
  // the plan a fresh search would return.
  std::shared_ptr<CutPlan> plan;
  std::string pkey;
  if (caches != nullptr) {
    pkey = plan_key(circuit_hash(circ), pcfg);
    plan = caches->plans.get(pkey);
    if (plan != nullptr) {
      res.plan_cache_hit = true;
      obs::count(obs::Counter::kPlanCacheHit);
    } else {
      obs::count(obs::Counter::kPlanCacheMiss);
    }
  }
  if (plan == nullptr) {
    const CutPlanner planner(circ, pcfg);
    plan = std::make_shared<CutPlan>(planner.plan());
    if (caches != nullptr) {
      plan = caches->plans.put(pkey, plan);
    }
  }

  // Resolve the shot policy before execution so the cap can bound the
  // ε-predicted budget (run_with resolves shots == 0 identically).
  CutRunConfig rcfg = req.run_cfg;
  if (req.shot_cap > 0) {
    std::uint64_t want = rcfg.shots;
    if (want == 0) {
      const Real predicted = std::ceil(plan->predicted_shots);
      want = predicted > 1e18 ? req.shot_cap : static_cast<std::uint64_t>(predicted);
    }
    rcfg.shots = std::min(want, req.shot_cap);
  }

  if (caches != nullptr) {
    const std::string ekey = eval_key(pkey, req.observable, rcfg);
    std::shared_ptr<EvalEntry> entry = caches->evals.get(ekey);
    if (entry != nullptr) {
      res.eval_cache_hit = true;
      obs::count(obs::Counter::kEvalCacheHit);
    } else {
      obs::count(obs::Counter::kEvalCacheMiss);
      entry = caches->evals.put(
          ekey, EvalEntry::build(PlannedExecutor(circ, *plan), req.observable, rcfg,
                                 caches->skeletons));
    }
    // Run against the entry's warm backend; report the kind it realizes.
    rcfg.backend = entry->kind;
    rcfg.shared_backend = entry->backend.get();
    res.run = entry->executor.run_with(entry->qpd, req.observable, rcfg);
  } else {
    const PlannedExecutor executor(circ, *plan);
    res.run = executor.run(req.observable, rcfg);
  }

  res.run.report.request_id = req.request_id;
  res.estimate = res.run.estimate;
  res.has_exact = res.run.has_exact;
  res.exact = res.run.exact;
  res.shots_used = res.run.details.shots_used;
  res.kappa = res.run.details.kappa;
  res.ci_halfwidth = ci_halfwidth(res.estimate, res.kappa, res.shots_used);
  res.plan_summary = summarize(*plan);
  res.plan = *plan;
  return res;
}

}  // namespace svc
}  // namespace qcut
