#include "qcut/plan/circuit_graph.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/common/union_find.hpp"

namespace qcut {

CircuitGraph::CircuitGraph(const Circuit& circ) : circ_(&circ) {
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "CircuitGraph: circuit must contain only unitary/initialize ops");
    min_reachable_width_ =
        std::max(min_reachable_width_, static_cast<int>(op.qubits.size()));
  }

  wire_ops_.resize(static_cast<std::size_t>(circ.n_qubits()));
  for (std::size_t t = 0; t < circ.size(); ++t) {
    for (int q : circ.ops()[t].qubits) {
      wire_ops_[static_cast<std::size_t>(q)].push_back(t);
    }
  }

  // One candidate per inter-op gap, placed directly after the earlier op.
  // Gaps whose next op on the wire is an initialize are skipped: the
  // initialize overwrites the wire, so a cut there teleports a state that is
  // immediately discarded — the cutter rejects it as dead, and the width
  // split it buys is free anyway (the continuation is independent of the
  // sender side without any QPD).
  for (int q = 0; q < circ.n_qubits(); ++q) {
    const auto& ops = wire_ops_[static_cast<std::size_t>(q)];
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (circ.ops()[ops[i]].kind == OpKind::kInitialize) {
        continue;
      }
      candidates_.push_back(CutPoint{ops[i - 1] + 1, q});
    }
  }
  std::sort(candidates_.begin(), candidates_.end(), [](const CutPoint& a, const CutPoint& b) {
    return a.after_op != b.after_op ? a.after_op < b.after_op : a.qubit < b.qubit;
  });
}

const std::vector<std::size_t>& CircuitGraph::wire_ops(int q) const {
  QCUT_CHECK(q >= 0 && q < circ_->n_qubits(), "CircuitGraph: wire out of range");
  return wire_ops_[static_cast<std::size_t>(q)];
}

std::vector<int> CircuitGraph::fragment_widths(const std::vector<CutPoint>& cuts) const {
  const int n = circ_->n_qubits();
  // Cut positions per wire, sorted, deduplicated (cutting the same spot twice
  // chains receivers without refining the partition).
  std::vector<std::vector<std::size_t>> wire_cuts(static_cast<std::size_t>(n));
  for (const CutPoint& cp : cuts) {
    QCUT_CHECK(cp.qubit >= 0 && cp.qubit < n, "fragment_widths: cut qubit out of range");
    QCUT_CHECK(cp.after_op <= circ_->size(), "fragment_widths: cut position out of range");
    wire_cuts[static_cast<std::size_t>(cp.qubit)].push_back(cp.after_op);
  }
  std::size_t n_segments = 0;
  std::vector<std::size_t> seg_base(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    auto& pos = wire_cuts[static_cast<std::size_t>(q)];
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    seg_base[static_cast<std::size_t>(q)] = n_segments;
    n_segments += pos.size() + 1;
  }

  // Segment of wire q at op position t: #cuts on q at positions <= t.
  const auto segment_at = [&](int q, std::size_t t) {
    const auto& pos = wire_cuts[static_cast<std::size_t>(q)];
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(pos.begin(), pos.end(), t) - pos.begin());
    return seg_base[static_cast<std::size_t>(q)] + k;
  };

  UnionFind uf(n_segments);
  for (std::size_t t = 0; t < circ_->size(); ++t) {
    const auto& qs = circ_->ops()[t].qubits;
    for (std::size_t i = 1; i < qs.size(); ++i) {
      uf.unite(segment_at(qs[0], t), segment_at(qs[i], t));
    }
  }

  std::vector<int> width(n_segments, 0);
  for (std::size_t s = 0; s < n_segments; ++s) {
    ++width[uf.find(s)];
  }
  std::vector<int> out;
  for (std::size_t s = 0; s < n_segments; ++s) {
    if (width[s] > 0) {
      out.push_back(width[s]);
    }
  }
  std::sort(out.begin(), out.end(), std::greater<int>());
  return out;
}

int CircuitGraph::max_fragment_width(const std::vector<CutPoint>& cuts) const {
  const std::vector<int> widths = fragment_widths(cuts);
  return widths.empty() ? 0 : widths.front();
}

}  // namespace qcut
