#include "qcut/plan/circuit_graph.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/common/union_find.hpp"
#include "qcut/cut/gate_cut.hpp"

namespace qcut {

std::vector<int> FragmentPartition::widths_desc() const {
  std::vector<int> out = widths;
  std::sort(out.begin(), out.end(), std::greater<int>());
  return out;
}

int FragmentPartition::max_width() const {
  int w = 0;
  for (int x : widths) {
    w = std::max(w, x);
  }
  return w;
}

CircuitGraph::CircuitGraph(const Circuit& circ) : circ_(&circ) {
  for (std::size_t t = 0; t < circ.size(); ++t) {
    const auto& op = circ.ops()[t];
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "CircuitGraph: circuit must contain only unitary/initialize ops");
    const int arity = static_cast<int>(op.qubits.size());
    min_reachable_width_ = std::max(min_reachable_width_, arity);

    // Gate-cut candidates: two-qubit unitaries whose matrix is diagonal up to
    // local factors — exactly the ops zz_factor_diagonal handles. Such ops
    // are severable, so they do not raise the with-gate-cuts width floor.
    bool severable = false;
    if (op.kind == OpKind::kUnitary && op.qubits.size() == 2) {
      const ZzFactorization f = zz_factor_diagonal(op.matrix);
      if (f.ok) {
        severable = true;
        gate_candidates_.push_back(GateCandidate{t, f.theta, zz_gate_cut_overhead(f.theta)});
      }
    }
    if (!severable) {
      min_reachable_width_gate_ = std::max(min_reachable_width_gate_, arity);
    }
  }

  wire_ops_.resize(static_cast<std::size_t>(circ.n_qubits()));
  for (std::size_t t = 0; t < circ.size(); ++t) {
    for (int q : circ.ops()[t].qubits) {
      wire_ops_[static_cast<std::size_t>(q)].push_back(t);
    }
  }

  // One candidate per inter-op gap, placed directly after the earlier op.
  // Gaps whose next op on the wire is an initialize are skipped: the
  // initialize overwrites the wire, so a cut there teleports a state that is
  // immediately discarded — the cutter rejects it as dead, and the width
  // split it buys is free anyway (the continuation is independent of the
  // sender side without any QPD).
  for (int q = 0; q < circ.n_qubits(); ++q) {
    const auto& ops = wire_ops_[static_cast<std::size_t>(q)];
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (circ.ops()[ops[i]].kind == OpKind::kInitialize) {
        continue;
      }
      candidates_.push_back(CutPoint{ops[i - 1] + 1, q});
    }
  }
  std::sort(candidates_.begin(), candidates_.end(), [](const CutPoint& a, const CutPoint& b) {
    return a.after_op != b.after_op ? a.after_op < b.after_op : a.qubit < b.qubit;
  });

  // Unified list: wire candidates keep their established indices; gate
  // candidates follow, by op index.
  for (const CutPoint& p : candidates_) {
    CutCandidate c;
    c.site = CutSite::wire(p);
    all_candidates_.push_back(c);
  }
  for (const GateCandidate& g : gate_candidates_) {
    CutCandidate c;
    c.site = CutSite::gate(g.op_index);
    c.gate_theta = g.theta;
    c.gate_kappa = g.kappa;
    all_candidates_.push_back(c);
  }
}

const std::vector<std::size_t>& CircuitGraph::wire_ops(int q) const {
  QCUT_CHECK(q >= 0 && q < circ_->n_qubits(), "CircuitGraph: wire out of range");
  return wire_ops_[static_cast<std::size_t>(q)];
}

FragmentPartition CircuitGraph::partition(const std::vector<CutPoint>& wire_cuts,
                                          const std::vector<std::size_t>& gate_cut_ops) const {
  const int n = circ_->n_qubits();
  // Cut positions per wire, sorted, deduplicated (cutting the same spot twice
  // chains receivers without refining the partition).
  std::vector<std::vector<std::size_t>> per_wire(static_cast<std::size_t>(n));
  for (const CutPoint& cp : wire_cuts) {
    QCUT_CHECK(cp.qubit >= 0 && cp.qubit < n, "partition: cut qubit out of range");
    QCUT_CHECK(cp.after_op <= circ_->size(), "partition: cut position out of range");
    per_wire[static_cast<std::size_t>(cp.qubit)].push_back(cp.after_op);
  }
  std::size_t n_segments = 0;
  std::vector<std::size_t> seg_base(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    auto& pos = per_wire[static_cast<std::size_t>(q)];
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    seg_base[static_cast<std::size_t>(q)] = n_segments;
    n_segments += pos.size() + 1;
  }

  // Segment of wire q at op position t: #cuts on q at positions <= t.
  const auto segment_at = [&](int q, std::size_t t) {
    const auto& pos = per_wire[static_cast<std::size_t>(q)];
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(pos.begin(), pos.end(), t) - pos.begin());
    return seg_base[static_cast<std::size_t>(q)] + k;
  };

  std::vector<bool> severed(circ_->size(), false);
  for (std::size_t t : gate_cut_ops) {
    QCUT_CHECK(t < circ_->size(), "partition: gate-cut op out of range");
    severed[t] = true;
  }

  UnionFind uf(n_segments);
  for (std::size_t t = 0; t < circ_->size(); ++t) {
    if (severed[t]) {
      continue;  // the gate cut's branches are fully local
    }
    const auto& qs = circ_->ops()[t].qubits;
    for (std::size_t i = 1; i < qs.size(); ++i) {
      uf.unite(segment_at(qs[0], t), segment_at(qs[i], t));
    }
  }

  // Compress roots to dense fragment ids.
  std::vector<int> frag_of_root(n_segments, -1);
  FragmentPartition out;
  for (std::size_t s = 0; s < n_segments; ++s) {
    const std::size_t r = uf.find(s);
    if (frag_of_root[r] < 0) {
      frag_of_root[r] = static_cast<int>(out.widths.size());
      out.widths.push_back(0);
    }
    ++out.widths[static_cast<std::size_t>(frag_of_root[r])];
  }

  // Sender/receiver fragment of each input wire cut. A cut at position p on
  // wire q sits between the segment of ops t < p and the segment of ops
  // t >= p: with k = index of p in the deduped positions, those are
  // seg_base + k and seg_base + k + 1.
  out.cut_fragments.reserve(wire_cuts.size());
  for (const CutPoint& cp : wire_cuts) {
    const auto& pos = per_wire[static_cast<std::size_t>(cp.qubit)];
    const std::size_t k = static_cast<std::size_t>(
        std::lower_bound(pos.begin(), pos.end(), cp.after_op) - pos.begin());
    const std::size_t sender = seg_base[static_cast<std::size_t>(cp.qubit)] + k;
    const std::size_t receiver = sender + 1;
    out.cut_fragments.emplace_back(frag_of_root[uf.find(sender)],
                                   frag_of_root[uf.find(receiver)]);
  }
  return out;
}

std::vector<int> CircuitGraph::fragment_widths(const std::vector<CutPoint>& cuts) const {
  return partition(cuts, {}).widths_desc();
}

int CircuitGraph::max_fragment_width(const std::vector<CutPoint>& cuts) const {
  return partition(cuts, {}).max_width();
}

}  // namespace qcut
