// The automatic cut planner: given a circuit, a device width cap, and an
// entanglement budget, find the cut set minimizing the total sampling
// overhead Π κ_i² (Theorem 1 / Corollary 1 give κ_i per cut as a function of
// the resource overlap f) and report the predicted shot cost for a target
// accuracy (N ≈ κ²/ε², Temme et al.).
//
// Search: subsets of the canonical candidate cuts (CircuitGraph). Small
// candidate sets are scanned exhaustively; larger ones run a depth-first
// branch-and-bound where the partial product Π κ_i² is a valid lower bound
// for every extension (each additional cut multiplies the overhead by
// κ² ≥ 1). Fragment width is deliberately NOT used as a bound: it is not
// monotone under adding cuts (the halves of a split segment can reconnect
// through other wires, growing a component by a segment), so width only ever
// decides feasibility of the concrete subset at hand.
// Ties in cost resolve to the first subset in lexicographic candidate order,
// so the result is deterministic and brute-force reproducible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qcut/plan/circuit_graph.hpp"

namespace qcut {

struct PlannerConfig {
  /// Hard cap on the width (physical qubit count) of every fragment.
  /// 0 (the default) resolves to the simulation engine's ceiling
  /// (Statevector::kMaxQubits): a plan the planner accepts must be a plan
  /// the fragment evaluator can run.
  int max_fragment_width = 0;
  /// Maximal overlap f = ⟨Φ|ρ|Φ⟩ of the NME resource pairs the hardware can
  /// share, in [1/2, 1]. f = 1/2 means no useful entanglement.
  Real resource_overlap = 0.5;
  /// How many cuts may each consume one NME pair per QPD sample. Cuts inside
  /// the budget use the Theorem-2 protocol at `resource_overlap`
  /// (κ = 2/f − 1); cuts beyond it use the entanglement-free optimum (κ = 3).
  int pair_budget = 0;
  /// Target absolute accuracy ε for the predicted shot budget.
  Real target_accuracy = 0.05;
  /// Search depth cap (more cuts than this are never considered).
  std::size_t max_cuts = 8;
  /// Candidate counts up to this limit use the exhaustive subset scan;
  /// beyond it the branch-and-bound search runs.
  std::size_t exhaustive_limit = 12;
  /// Hard cap on search-tree nodes. The min_reachable_width pre-check cannot
  /// detect every infeasible instance (width is not monotone), and a hopeless
  /// cap would otherwise enumerate Σ_k C(m, k) subsets before throwing. When
  /// the budget runs out, the best feasible set found so far is returned
  /// (plan.budget_exhausted = true); with none found, plan() throws.
  std::size_t max_nodes = 1000000;
};

/// One cut of the final plan, with its assigned protocol.
struct PlannedCut {
  CutPoint point;
  std::string protocol;     ///< make_protocol name: "nme" or "harada"
  Real k = 0.0;             ///< Schmidt parameter of |Φk⟩ for "nme"
  Real kappa = 1.0;         ///< per-cut sampling overhead κ_i
  bool entangled = false;   ///< consumes one NME pair per sample
};

struct CutPlan {
  std::vector<PlannedCut> cuts;        ///< time-ordered
  Real total_kappa = 1.0;              ///< Π κ_i
  Real total_overhead = 1.0;           ///< Π κ_i² (shot-cost inflation)
  Real target_accuracy = 0.0;          ///< ε the prediction is for
  Real predicted_shots = 0.0;          ///< κ²/ε²
  std::vector<int> fragment_widths;    ///< descending
  int max_width = 0;
  std::size_t nodes_explored = 0;      ///< search-tree nodes visited
  /// True when the search stopped at PlannerConfig::max_nodes: the plan is
  /// the best feasible set found, not necessarily the global optimum.
  bool budget_exhausted = false;

  std::vector<CutPoint> points() const;
  /// Multi-line human-readable report.
  std::string to_string() const;
};

class CutPlanner {
 public:
  /// Keeps its own copy of the circuit, so the planner is self-contained
  /// (temporaries are fine). Non-copyable: the analysis references the copy.
  CutPlanner(const Circuit& circ, PlannerConfig cfg);

  CutPlanner(const CutPlanner&) = delete;
  CutPlanner& operator=(const CutPlanner&) = delete;

  const CircuitGraph& graph() const noexcept { return graph_; }
  const PlannerConfig& config() const noexcept { return cfg_; }

  /// κ of the i-th cut (0-based, time order) of any chosen set: pairs are
  /// granted greedily, so cuts [0, pair_budget) get the NME protocol and the
  /// rest the entanglement-free optimum. Exposed so tests can brute-force the
  /// identical cost model.
  Real cut_kappa(std::size_t cut_index) const;

  /// Π κ_i² of an n-cut set under cut_kappa's assignment. Non-decreasing in
  /// n — the branch-and-bound lower bound.
  Real set_overhead(std::size_t n_cuts) const;

  /// Runs the search. Throws qcut::Error when no cut set within max_cuts
  /// satisfies the width cap.
  CutPlan plan() const;

  /// Validation oracle, independent of plan()'s DFS: bitmask-enumerates ALL
  /// candidate subsets (2^m — requires m <= 20 candidates) and returns the
  /// minimal feasible Π κ_i², or -1 when no subset is feasible. The bench's
  /// optimality gate; tests pin plan() against their own copy of this scan.
  Real reference_overhead() const;

 private:
  CutPlan make_plan(const std::vector<std::size_t>& chosen, std::size_t nodes) const;

  Circuit circ_;       ///< owned copy; graph_ points into it
  CircuitGraph graph_;
  PlannerConfig cfg_;
  bool use_entanglement_ = false;  ///< f > 1/2 and budget > 0
  Real kappa_nme_ = 3.0;           ///< κ of an in-budget cut
  Real k_nme_ = 0.0;               ///< Schmidt parameter of the resource
};

}  // namespace qcut
