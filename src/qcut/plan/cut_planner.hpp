// The automatic cut planner: given a circuit and a device model (width caps
// plus entangled-link budgets), find the cut set minimizing the total
// sampling overhead Π κ_i² (Theorem 1 / Corollary 1 give κ_i per wire cut as
// a function of the resource overlap f; Mitarai–Fujii gives κ = 1 + 2|sin 2θ|
// per gate cut) and report the predicted shot cost for a target accuracy
// (N ≈ κ²/ε², Temme et al.).
//
// Candidates are unified (CircuitGraph::all_candidates): every wire-cut gap
// and every gate-cuttable (diagonal two-qubit) op. Protocol selection per
// subset is deterministic (assign_protocols): gate cuts carry their fixed
// κ(θ); wire cuts default to the entanglement-free optimum (κ = 3) and the
// best link slots (κ < 3) are granted to the earliest wire cuts, backing off
// slots when the merge-aware width check fails.
//
// Feasibility is two-tier:
//   * device: the unmerged fragment widths must fit the DeviceModel — each
//     fragment runs on one QPU, and the entangled resource is physically
//     distributed, so helper qubits stay the protocol's business;
//   * simulation: entangled-resource protocols (nme/distill/mixed) splice an
//     initialize spanning both sides of the cut, merging the two fragments in
//     the simulator. The merged component width — fragment widths plus the
//     protocols' helper extras (merge_profile) — must fit the statevector
//     engine. Plans that would previously die in the fragment backend's
//     width check at run time are now rejected (or repaired, by granting
//     fewer/no pairs) at plan time.
//
// Search: subsets of the candidates. Small candidate sets are scanned
// exhaustively; larger ones run a depth-first branch-and-bound where the
// product of per-candidate κ lower bounds is a valid cost bound (each
// additional cut multiplies the overhead by κ² >= 1). Fragment width is
// deliberately NOT used as a bound: it is not monotone under adding cuts.
// Ties in cost resolve to the first subset in lexicographic candidate order,
// so the result is deterministic and brute-force reproducible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qcut/plan/circuit_graph.hpp"
#include "qcut/plan/device_model.hpp"

namespace qcut {

struct PlannerConfig {
  /// Uniform fragment-width cap when `device_model` declares no devices.
  /// 0 (the default) resolves to the simulation engine's ceiling
  /// (Statevector::kMaxQubits): a plan the planner accepts must be a plan
  /// the fragment evaluator can run.
  int max_fragment_width = 0;
  /// Legacy scalar link config, used only when `device_model` is empty:
  /// maximal overlap f = ⟨Φ|ρ|Φ⟩ of the NME resource pairs the hardware can
  /// share, in [1/2, 1]. f = 1/2 means no useful entanglement.
  Real resource_overlap = 0.5;
  /// Legacy scalar link config, used only when `device_model` is empty: how
  /// many cuts may each consume one NME pair per QPD sample.
  int pair_budget = 0;
  /// The hardware model. Empty (default): synthesized from the scalar fields
  /// above — a uniform cap of `max_fragment_width` plus one NME link of
  /// `pair_budget` slots at `resource_overlap`.
  DeviceModel device_model;
  /// Enumerate gate-cut candidates alongside wire cuts.
  bool allow_gate_cuts = true;
  /// Target absolute accuracy ε for the predicted shot budget.
  Real target_accuracy = 0.05;
  /// Search depth cap (more cuts than this are never considered).
  std::size_t max_cuts = 8;
  /// Candidate counts up to this limit use the exhaustive subset scan;
  /// beyond it the branch-and-bound search runs.
  std::size_t exhaustive_limit = 12;
  /// Hard cap on search-tree nodes. The min_reachable_width pre-check cannot
  /// detect every infeasible instance (width is not monotone), and a hopeless
  /// cap would otherwise enumerate Σ_k C(m, k) subsets before throwing. When
  /// the budget runs out, the best feasible set found so far is returned
  /// (plan.budget_exhausted = true); with none found, plan() throws.
  std::size_t max_nodes = 1000000;
};

/// One cut of the final plan, with its assigned protocol.
struct PlannedCut {
  CutSite site;             ///< wire location or gate-cut op
  ProtocolSpec spec;        ///< typed protocol descriptor (make_protocol input)
  Real kappa = 1.0;         ///< per-cut sampling overhead κ_i
  bool entangled = false;   ///< consumes one resource pair per sample
  int link = -1;            ///< index into the model's links (entangled only)

  /// Wire cuts only: the cut location.
  const CutPoint& point() const noexcept { return site.point; }
};

/// The deterministic protocol assignment for one candidate subset — the
/// shared cost model of the DFS search and the brute-force oracle.
struct ProtocolAssignment {
  bool feasible = false;
  std::string reason;                ///< infeasibility diagnostic
  std::vector<PlannedCut> cuts;      ///< candidate order (time-ordered)
  Real overhead = 0.0;               ///< Π κ_i² (feasible only)
  std::vector<int> device_widths;    ///< unmerged fragment widths, descending
  std::vector<int> sim_widths;       ///< merged widths + helper extras, desc
};

struct CutPlan {
  std::vector<PlannedCut> cuts;        ///< time-ordered
  Real total_kappa = 1.0;              ///< Π κ_i
  Real total_overhead = 1.0;           ///< Π κ_i² (shot-cost inflation)
  Real target_accuracy = 0.0;          ///< ε the prediction is for
  Real predicted_shots = 0.0;          ///< κ²/ε²
  std::vector<int> fragment_widths;    ///< unmerged (device) widths, descending
  int max_width = 0;
  /// Merged component widths including protocol helper extras, descending —
  /// what the simulator's fragment backend will actually hold. Entangled
  /// cuts merge their two fragments; without entangled cuts these equal
  /// fragment_widths.
  std::vector<int> sim_widths;
  int max_sim_width = 0;
  std::size_t nodes_explored = 0;      ///< search-tree nodes visited
  /// True when the search stopped at PlannerConfig::max_nodes: the plan is
  /// the best feasible set found, not necessarily the global optimum.
  bool budget_exhausted = false;

  /// The wire-cut locations (gate cuts excluded).
  std::vector<CutPoint> points() const;
  /// All cut sites, plan order.
  std::vector<CutSite> sites() const;
  /// Number of gate cuts in the plan.
  std::size_t gate_cut_count() const;
  /// Multi-line human-readable report.
  std::string to_string() const;
};

class CutPlanner {
 public:
  /// Keeps its own copy of the circuit, so the planner is self-contained
  /// (temporaries are fine). Non-copyable: the analysis references the copy.
  CutPlanner(const Circuit& circ, PlannerConfig cfg);

  CutPlanner(const CutPlanner&) = delete;
  CutPlanner& operator=(const CutPlanner&) = delete;

  const CircuitGraph& graph() const noexcept { return graph_; }
  const PlannerConfig& config() const noexcept { return cfg_; }
  const DeviceModel& model() const noexcept { return model_; }

  /// The candidate list the search runs over: all_candidates() when gate
  /// cuts are allowed (and exist), else the wire candidates.
  const std::vector<CutCandidate>& search_candidates() const noexcept { return search_cands_; }

  /// The deterministic protocol assignment (and two-tier feasibility
  /// verdict) for a subset of search_candidates(), by increasing index.
  /// Exposed so tests can brute-force the identical cost model.
  ProtocolAssignment assign_protocols(const std::vector<std::size_t>& subset) const;

  /// Runs the search. Throws qcut::Error when no cut set within max_cuts
  /// satisfies the device model and the merge-aware simulation bound.
  CutPlan plan() const;

  /// Validation oracle, independent of plan()'s DFS: bitmask-enumerates ALL
  /// candidate subsets (2^m — requires m <= 20 candidates) and returns the
  /// minimal feasible Π κ_i² under assign_protocols, or -1 when no subset is
  /// feasible. The bench's optimality gate; tests pin plan() against their
  /// own copy of this scan.
  Real reference_overhead() const;

  /// Lower bound on candidate i's κ under any assignment (gate cuts: the
  /// fixed κ(θ); wire cuts: the best link slot's κ, or 3 without one). The
  /// product of these over a subset lower-bounds assign_protocols' overhead —
  /// the branch-and-bound cost bound.
  Real kappa_lower_bound(std::size_t candidate) const;

 private:
  /// One granted entangled-link slot, κ-sorted best first.
  struct LinkSlot {
    int link = -1;
    ProtocolSpec spec;
    Real kappa = 3.0;
    MergeProfile profile;
  };

  CutPlan make_plan(const ProtocolAssignment& assign, std::size_t nodes) const;

  Circuit circ_;       ///< owned copy; graph_ points into it
  CircuitGraph graph_;
  PlannerConfig cfg_;
  DeviceModel model_;  ///< effective model (legacy scalars resolved)
  std::vector<CutCandidate> search_cands_;
  std::vector<LinkSlot> slots_;  ///< useful (κ < 3) slots, best first
  Real min_wire_kappa_ = 3.0;    ///< min over {3, slot κs}
  int sim_cap_ = 0;              ///< Statevector::kMaxQubits
};

}  // namespace qcut
