#include "qcut/plan/planned_executor.hpp"

#include <algorithm>
#include <cmath>

#include "qcut/obs/trace.hpp"
#include "qcut/sim/statevector.hpp"
#include "qcut/svc/api.hpp"

namespace qcut {

PlannedExecutor::PlannedExecutor(Circuit circ, CutPlan plan)
    : circ_(std::move(circ)), plan_(std::move(plan)) {
  protocols_.reserve(plan_.cuts.size());
  for (const PlannedCut& pc : plan_.cuts) {
    if (pc.spec.id == ProtocolId::kZzGate) {
      // Re-factor the host op: the plan carries only the entangling angle θ;
      // the spliced branches also need the gate's local factors.
      QCUT_CHECK(pc.site.kind == CutKind::kGate && pc.site.op_index < circ_.size(),
                 "PlannedExecutor: gate-cut site out of range");
      const ZzFactorization f = zz_factor_diagonal(circ_.ops()[pc.site.op_index].matrix);
      QCUT_CHECK(f.ok, "PlannedExecutor: gate-cut host op is not a diagonal two-qubit unitary");
      protocols_.push_back(std::make_shared<ZzGateCut>(f.theta, f.local_a, f.local_b));
    } else {
      protocols_.push_back(make_protocol(pc.spec));
    }
  }
}

Qpd PlannedExecutor::build_qpd(const Observable& observable) const {
  if (plan_.cuts.empty()) {
    return uncut_qpd(circ_, observable.to_string());
  }
  std::vector<const CutProtocol*> protos;
  protos.reserve(protocols_.size());
  for (const auto& p : protocols_) {
    protos.push_back(p.get());
  }
  return cut_circuit_sites(circ_, plan_.sites(), protos, observable.to_string());
}

Qpd PlannedExecutor::build_qpd(const std::string& observable) const {
  return build_qpd(Observable::parse(observable));
}

BackendKind PlannedExecutor::routed_backend(const Qpd& qpd, const CutRunConfig& cfg) {
  // Route wide runs through the fragment-local backend; an explicit backend
  // choice (anything but the BatchedBranch default) is left alone.
  if (cfg.backend != BackendKind::kBatchedBranch) {
    return cfg.backend;
  }
  int spliced_width = 0;
  for (const QpdTerm& term : qpd.terms()) {
    spliced_width = std::max(spliced_width, term.circuit.n_qubits());
  }
  const int threshold = cfg.auto_fragment_threshold > 0 ? cfg.auto_fragment_threshold
                                                        : Statevector::kMaxQubits;
  return spliced_width > threshold ? BackendKind::kFragment : cfg.backend;
}

CutRunResult PlannedExecutor::run_with(const Qpd& qpd, const Observable& observable,
                                       const CutRunConfig& cfg) const {
  obs::TraceSpan run_span("planned_run", static_cast<std::uint64_t>(plan_.cuts.size()));
  CutRunConfig eff = cfg;
  if (eff.shots == 0) {
    const Real predicted = std::ceil(plan_.predicted_shots);
    // κ²/ε² grows without bound; casting past the integer range would be UB
    // and silently run a garbage shot count.
    QCUT_CHECK(predicted <= 1e18,
               "PlannedExecutor: predicted shot budget exceeds 1e18 — loosen target_accuracy "
               "or pass an explicit shot count");
    eff.shots = static_cast<std::uint64_t>(predicted);
  }
  // A caller-owned shared backend already fixes the execution path; routing
  // would report a kind the run does not use.
  if (eff.shared_backend == nullptr) {
    eff.backend = routed_backend(qpd, eff);
  }

  // The monolithic uncut reference only exists below the statevector cap —
  // above it the analytic / fragment estimate IS the answer.
  CutRunResult res;
  if (circ_.n_qubits() <= Statevector::kMaxQubits) {
    const Real exact = [this, &observable] {
      obs::TraceSpan span("exact.reference");
      return uncut_circuit_expectation(circ_, observable.to_string());
    }();
    res = run_qpd_estimate(qpd, exact, eff);
  } else {
    res = run_qpd_estimate(qpd, eff);
  }
  res.report.shots_budget = plan_.predicted_shots;
  res.report.plan_cuts = plan_.cuts.size();
  res.report.max_fragment_width = plan_.max_width;
  return res;
}

CutRunResult PlannedExecutor::run(const Observable& observable, const CutRunConfig& cfg) const {
  const Qpd qpd = [this, &observable] {
    obs::TraceSpan span("plan.build_qpd");
    return build_qpd(observable);
  }();
  return run_with(qpd, observable, cfg);
}

CutRunResult PlannedExecutor::run(const std::string& observable, const CutRunConfig& cfg) const {
  return run(Observable::parse(observable), cfg);
}

PlannedRunResult plan_and_run(const Circuit& circ, const Observable& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg) {
  // One front door: build a service request and estimate without caches. The
  // service layer runs the same code with cross-request caches plugged in —
  // and its results are pinned bit-identical to this path by test_service.
  svc::EstimateRequest req;
  req.circuit = circ;
  req.observable = observable;
  req.planner = pcfg;
  req.run_cfg = rcfg;
  const svc::EstimateResult res = svc::estimate(req, /*caches=*/nullptr);
  PlannedRunResult out;
  out.plan = res.plan;
  out.run = res.run;
  return out;
}

PlannedRunResult plan_and_run(const Circuit& circ, const std::string& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg) {
  return plan_and_run(circ, Observable::parse(observable), pcfg, rcfg);
}

}  // namespace qcut
