// The hardware model the planner optimizes against: device width caps and
// the entangled links between devices.
//
// Devices bound the *unmerged* fragment widths — each fragment runs on one
// QPU, and a protocol's helper/resource qubits are the protocol's business
// (they live on whichever side hosts the gadget). Links carry the shared
// entangled resource: each link offers `pair_budget` cuts that may consume
// one resource pair per QPD sample, at the link's overlap f (Theorem 2:
// κ = 2/f − 1 < 3 whenever f > 1/2). Heterogeneous models — devices of
// different sizes, links of different qualities — are first-class; the
// planner greedily takes the best (lowest-κ) link slots first.
#pragma once

#include <string>
#include <vector>

#include "qcut/cut/cut_protocol.hpp"

namespace qcut {

/// One QPU: a width cap and an optional display name.
struct DeviceSpec {
  int width_cap = 0;
  std::string name;
};

/// The wire-cut protocol family a link's resource supports.
enum class LinkFamily {
  kNme,      ///< Theorem-2 optimal NME protocol at the link's overlap f
  kDistill,  ///< distillation-based protocol (same κ, 2 extra qubits/branch)
  kMixed,    ///< Werner-mixed resource; `overlap` is the identity weight q_I
};

/// One entangled link: a resource quality and a per-plan budget of cuts that
/// may each consume one pair per sample.
struct LinkSpec {
  /// Overlap f = ⟨Φ|ρ|Φ⟩ for kNme/kDistill (in [1/2, 1]); the Werner identity
  /// weight q_I for kMixed (useful, κ < 3, only when q_I > 5/8).
  Real overlap = 0.5;
  int pair_budget = 0;
  LinkFamily family = LinkFamily::kNme;
};

/// The wire-cut protocol spec a link instantiates.
ProtocolSpec link_protocol_spec(const LinkSpec& link);

struct DeviceModel {
  /// Per-device width caps. Empty → a uniform cap supplied by the caller
  /// (PlannerConfig::max_fragment_width), with unlimited device count — the
  /// homogeneous model of the original planner.
  std::vector<DeviceSpec> devices;
  /// Entangled links; their slots are pooled and granted best-κ-first.
  std::vector<LinkSpec> links;

  /// No devices and no links: the caller's legacy scalar config applies.
  bool empty() const noexcept { return devices.empty() && links.empty(); }

  /// The legacy scalar config as a model: uniform cap via the fallback (no
  /// explicit devices) plus one NME link of `pair_budget` slots at `overlap`.
  static DeviceModel homogeneous(Real overlap, int pair_budget);

  /// The widest fragment any device could host (fallback_cap when no devices
  /// are declared) — the planner's feasibility floor.
  int max_cap(int fallback_cap) const;

  /// Can the fragments run on the devices? `widths_desc` sorted descending.
  /// No explicit devices: every width must fit `fallback_cap` (any number of
  /// fragments). Explicit devices: each fragment needs its own device —
  /// matching the k-th widest fragment to the k-th largest cap is optimal
  /// (a fragment fitting some cap fits every larger one), so the check is
  /// widths_desc[i] <= caps_desc[i] with widths.size() <= devices.size().
  bool fits(const std::vector<int>& widths_desc, int fallback_cap) const;

  /// One-line human-readable summary for diagnostics.
  std::string describe(int fallback_cap) const;
};

}  // namespace qcut
