#include "qcut/plan/device_model.hpp"

#include <algorithm>
#include <sstream>

#include "qcut/linalg/bell.hpp"

namespace qcut {

ProtocolSpec link_protocol_spec(const LinkSpec& link) {
  ProtocolSpec spec;
  switch (link.family) {
    case LinkFamily::kNme:
      spec.id = ProtocolId::kNme;
      spec.param = k_for_overlap(std::min<Real>(link.overlap, 1.0));
      break;
    case LinkFamily::kDistill:
      spec.id = ProtocolId::kDistill;
      spec.param = k_for_overlap(std::min<Real>(link.overlap, 1.0));
      break;
    case LinkFamily::kMixed:
      spec.id = ProtocolId::kMixedNme;
      spec.param = link.overlap;  // the Werner identity weight q_I
      break;
  }
  return spec;
}

DeviceModel DeviceModel::homogeneous(Real overlap, int pair_budget) {
  DeviceModel model;
  if (pair_budget > 0) {
    model.links.push_back(LinkSpec{overlap, pair_budget, LinkFamily::kNme});
  }
  return model;
}

int DeviceModel::max_cap(int fallback_cap) const {
  if (devices.empty()) {
    return fallback_cap;
  }
  int cap = 0;
  for (const DeviceSpec& d : devices) {
    cap = std::max(cap, d.width_cap);
  }
  return cap;
}

bool DeviceModel::fits(const std::vector<int>& widths_desc, int fallback_cap) const {
  if (devices.empty()) {
    return widths_desc.empty() || widths_desc.front() <= fallback_cap;
  }
  if (widths_desc.size() > devices.size()) {
    return false;
  }
  std::vector<int> caps;
  caps.reserve(devices.size());
  for (const DeviceSpec& d : devices) {
    caps.push_back(d.width_cap);
  }
  std::sort(caps.begin(), caps.end(), std::greater<int>());
  for (std::size_t i = 0; i < widths_desc.size(); ++i) {
    if (widths_desc[i] > caps[i]) {
      return false;
    }
  }
  return true;
}

std::string DeviceModel::describe(int fallback_cap) const {
  std::ostringstream os;
  if (devices.empty()) {
    os << "uniform cap " << fallback_cap;
  } else {
    os << devices.size() << " device(s), caps";
    for (const DeviceSpec& d : devices) {
      os << " " << d.width_cap;
    }
  }
  if (links.empty()) {
    os << ", no entangled links";
  } else {
    os << ", " << links.size() << " link(s):";
    for (const LinkSpec& l : links) {
      const ProtocolSpec spec = link_protocol_spec(l);
      os << " [" << to_string(spec) << " x" << l.pair_budget << "]";
    }
  }
  return os.str();
}

}  // namespace qcut
