// Circuit analysis for the cut planner: the qubit-interaction timeline of a
// Circuit, the candidate wire-cut locations, and the fragment partition a
// cut set induces.
//
// Model: cutting wire q at position t splits q's timeline into a sender
// segment (ops before t) and a receiver segment (ops from t on). Wire
// segments are the vertices of the fragment graph; every multi-qubit op
// connects the segments its qubits occupy at that moment. A fragment is a
// connected component, and its width — the number of segments it contains —
// is the physical qubit count a device needs to run it (gadget helper or
// resource qubits are the protocol's business, not the partition's).
#pragma once

#include <cstddef>
#include <vector>

#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/sim/circuit.hpp"

namespace qcut {

class CircuitGraph {
 public:
  /// Analyzes `circ` (unitary/initialize ops only). The circuit must outlive
  /// the graph.
  explicit CircuitGraph(const Circuit& circ);

  const Circuit& circuit() const noexcept { return *circ_; }
  int n_qubits() const noexcept { return circ_->n_qubits(); }

  /// Indices (into circuit().ops()) of the ops acting on wire q, time-ordered.
  const std::vector<std::size_t>& wire_ops(int q) const;

  /// The canonical candidate cut locations: one CutPoint per gap between two
  /// consecutive ops on a wire, placed directly after the earlier op (any
  /// other position inside the gap yields the identical partition). Gaps
  /// before a wire's first op or after its last are excluded — cutting there
  /// can never separate anything — and so are gaps feeding into an
  /// initialize, which would discard the teleported state (the cutter's
  /// dead-cut rule). Ordered by (after_op, qubit).
  const std::vector<CutPoint>& candidates() const noexcept { return candidates_; }

  /// Widths of the fragments induced by `cuts` (any subset of positions, not
  /// just candidates), sorted descending. Wires without any op count as
  /// width-1 fragments of their own. No cuts → one fragment per component of
  /// the plain interaction graph.
  std::vector<int> fragment_widths(const std::vector<CutPoint>& cuts) const;

  /// max(fragment_widths(cuts)).
  int max_fragment_width(const std::vector<CutPoint>& cuts) const;

  /// The smallest width any cut set could reach: the widest single op (a
  /// k-qubit gate is never separable), floor for the planner's feasibility
  /// pre-check.
  int min_reachable_width() const noexcept { return min_reachable_width_; }

 private:
  const Circuit* circ_;
  std::vector<std::vector<std::size_t>> wire_ops_;  // per wire, time-ordered
  std::vector<CutPoint> candidates_;
  int min_reachable_width_ = 1;
};

}  // namespace qcut
