// Circuit analysis for the cut planner: the qubit-interaction timeline of a
// Circuit, the candidate cut locations (wire AND gate cuts), and the fragment
// partition a cut set induces.
//
// Model: cutting wire q at position t splits q's timeline into a sender
// segment (ops before t) and a receiver segment (ops from t on). Wire
// segments are the vertices of the fragment graph; every multi-qubit op
// connects the segments its qubits occupy at that moment — except ops
// removed by a gate cut, whose QPD branches are fully local and therefore
// sever the interaction without splitting either wire. A fragment is a
// connected component, and its width — the number of segments it contains —
// is the physical qubit count a device needs to run it (gadget helper or
// resource qubits are the protocol's business, not the partition's).
#pragma once

#include <cstddef>
#include <vector>

#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/sim/circuit.hpp"

namespace qcut {

/// A gate-cuttable op: a two-qubit diagonal unitary (A ⊗ B)·e^{iθ Z⊗Z},
/// cut by the Mitarai–Fujii QPD at κ = 1 + 2|sin 2θ| <= 3.
struct GateCandidate {
  std::size_t op_index = 0;
  Real theta = 0.0;  ///< the entangling angle of the factorization
  Real kappa = 1.0;  ///< 1 + 2|sin 2θ|
};

/// One entry of the unified candidate list: a wire-cut location or a
/// gate-cuttable op.
struct CutCandidate {
  CutSite site;
  Real gate_theta = 0.0;  ///< gate candidates only
  Real gate_kappa = 1.0;  ///< gate candidates only: κ(θ), fixed per candidate
};

/// The fragment partition induced by a cut set, with enough structure for
/// merge-aware feasibility: per-fragment widths plus, for every wire cut,
/// the fragments its sender and receiver segments landed in (an
/// entangled-resource protocol on that cut merges the two at run time).
struct FragmentPartition {
  std::vector<int> widths;  ///< per fragment id, unsorted
  /// Per input wire cut (same order): (sender fragment id, receiver
  /// fragment id). Duplicate cut positions map to the same pair.
  std::vector<std::pair<int, int>> cut_fragments;

  std::vector<int> widths_desc() const;
  int max_width() const;
};

class CircuitGraph {
 public:
  /// Analyzes `circ` (unitary/initialize ops only). The circuit must outlive
  /// the graph.
  explicit CircuitGraph(const Circuit& circ);

  const Circuit& circuit() const noexcept { return *circ_; }
  int n_qubits() const noexcept { return circ_->n_qubits(); }

  /// Indices (into circuit().ops()) of the ops acting on wire q, time-ordered.
  const std::vector<std::size_t>& wire_ops(int q) const;

  /// The canonical candidate wire-cut locations: one CutPoint per gap between
  /// two consecutive ops on a wire, placed directly after the earlier op (any
  /// other position inside the gap yields the identical partition). Gaps
  /// before a wire's first op or after its last are excluded — cutting there
  /// can never separate anything — and so are gaps feeding into an
  /// initialize, which would discard the teleported state (the cutter's
  /// dead-cut rule). Ordered by (after_op, qubit).
  const std::vector<CutPoint>& candidates() const noexcept { return candidates_; }

  /// The gate-cuttable ops: two-qubit unitaries with a diagonal matrix (up to
  /// the factorization's locals). Ordered by op index.
  const std::vector<GateCandidate>& gate_candidates() const noexcept { return gate_candidates_; }

  /// The unified candidate list the planner searches: all wire candidates
  /// (in candidates() order), then all gate candidates (by op index).
  const std::vector<CutCandidate>& all_candidates() const noexcept { return all_candidates_; }

  /// The fragment partition induced by `wire_cuts` (any positions, not just
  /// candidates) with the ops in `gate_cut_ops` severed (their qubits not
  /// united). Wires without any op count as width-1 fragments of their own.
  FragmentPartition partition(const std::vector<CutPoint>& wire_cuts,
                              const std::vector<std::size_t>& gate_cut_ops) const;

  /// Widths of the fragments induced by `cuts`, sorted descending (wire cuts
  /// only — the pre-gate-cut API).
  std::vector<int> fragment_widths(const std::vector<CutPoint>& cuts) const;

  /// max(fragment_widths(cuts)).
  int max_fragment_width(const std::vector<CutPoint>& cuts) const;

  /// The smallest width any cut set could reach: the widest op no cut can
  /// sever. Wire cuts never split a single op, so without gate cuts this is
  /// the widest op; with gate cuts, gate-cuttable ops are severable and only
  /// the rest count. Floor for the planner's feasibility pre-check.
  int min_reachable_width(bool with_gate_cuts = false) const noexcept {
    return with_gate_cuts ? min_reachable_width_gate_ : min_reachable_width_;
  }

 private:
  const Circuit* circ_;
  std::vector<std::vector<std::size_t>> wire_ops_;  // per wire, time-ordered
  std::vector<CutPoint> candidates_;
  std::vector<GateCandidate> gate_candidates_;
  std::vector<CutCandidate> all_candidates_;
  int min_reachable_width_ = 1;
  int min_reachable_width_gate_ = 1;
};

}  // namespace qcut
