#include "qcut/plan/cut_planner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "qcut/core/overhead.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

namespace {

constexpr Real kHalfTol = 1e-12;

}  // namespace

std::vector<CutPoint> CutPlan::points() const {
  std::vector<CutPoint> out;
  out.reserve(cuts.size());
  for (const PlannedCut& c : cuts) {
    out.push_back(c.point);
  }
  return out;
}

std::string CutPlan::to_string() const {
  std::ostringstream os;
  os << "CutPlan: " << cuts.size() << " cut(s), total kappa " << total_kappa
     << ", overhead factor " << total_overhead << "\n";
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    const PlannedCut& c = cuts[i];
    os << "  cut " << i << ": wire " << c.point.qubit << " after op " << c.point.after_op
       << "  protocol=" << c.protocol;
    if (c.entangled) {
      os << "(k=" << c.k << ", 1 pair/sample)";
    }
    os << "  kappa=" << c.kappa << "\n";
  }
  os << "  fragment widths:";
  for (int w : fragment_widths) {
    os << " " << w;
  }
  os << " (max " << max_width << ")\n";
  os << "  predicted shots for eps=" << target_accuracy << ": " << predicted_shots << "\n";
  return os.str();
}

CutPlanner::CutPlanner(const Circuit& circ, PlannerConfig cfg)
    : circ_(circ), graph_(circ_), cfg_(cfg) {
  if (cfg_.max_fragment_width == 0) {
    // Defaulted cap = the simulation engine's ceiling. A plan the planner
    // accepts must be a plan the fragment evaluator can actually run.
    cfg_.max_fragment_width = Statevector::kMaxQubits;
  }
  QCUT_CHECK(cfg_.max_fragment_width >= 1, "CutPlanner: max_fragment_width must be >= 1");
  QCUT_CHECK(cfg_.resource_overlap >= 0.5 - kTightTol && cfg_.resource_overlap <= 1.0 + kTightTol,
             "CutPlanner: resource_overlap must lie in [1/2, 1]");
  QCUT_CHECK(cfg_.pair_budget >= 0, "CutPlanner: pair_budget must be non-negative");
  QCUT_CHECK(cfg_.target_accuracy > 0.0, "CutPlanner: target_accuracy must be positive");
  use_entanglement_ = cfg_.pair_budget > 0 && cfg_.resource_overlap > 0.5 + kHalfTol;
  if (use_entanglement_) {
    kappa_nme_ = optimal_overhead_from_f(cfg_.resource_overlap);
    k_nme_ = k_for_overlap(std::min<Real>(cfg_.resource_overlap, 1.0));
  }
}

Real CutPlanner::cut_kappa(std::size_t cut_index) const {
  const bool entangled =
      use_entanglement_ && cut_index < static_cast<std::size_t>(cfg_.pair_budget);
  return entangled ? kappa_nme_ : 3.0;
}

Real CutPlanner::set_overhead(std::size_t n_cuts) const {
  Real cost = 1.0;
  for (std::size_t i = 0; i < n_cuts; ++i) {
    cost *= cut_kappa(i) * cut_kappa(i);
  }
  return cost;
}

namespace {

/// Shared DFS over candidate subsets in lexicographic index order. With
/// `prune` false this is the plain exhaustive scan; with it true, the
/// branch-and-bound (cost lower bound + width-reachability bound).
class SubsetSearch {
 public:
  SubsetSearch(const CutPlanner& planner, bool prune)
      : planner_(planner),
        graph_(planner.graph()),
        cands_(graph_.candidates()),
        width_cap_(planner.config().max_fragment_width),
        max_cuts_(planner.config().max_cuts),
        max_nodes_(planner.config().max_nodes),
        prune_(prune) {}

  void run() { dfs(0); }

  bool found() const noexcept { return found_; }
  const std::vector<std::size_t>& best() const noexcept { return best_; }
  std::size_t nodes() const noexcept { return nodes_; }
  bool budget_exhausted() const noexcept { return aborted_; }

 private:
  std::vector<CutPoint> current_points() const {
    std::vector<CutPoint> pts;
    pts.reserve(current_.size());
    for (std::size_t i : current_) {
      pts.push_back(cands_[i]);
    }
    return pts;
  }

  void dfs(std::size_t start) {
    if (aborted_) {
      return;
    }
    if (nodes_ >= max_nodes_) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    // Cost first: set_overhead depends only on the cut count, so a node that
    // cannot beat the incumbent never needs the (much more expensive)
    // union-find feasibility check — recording only strict improvements makes
    // the skip behavior-identical.
    const Real cost = planner_.set_overhead(current_.size());
    const bool can_improve = !found_ || cost < best_cost_;
    if (can_improve && graph_.max_fragment_width(current_points()) <= width_cap_) {
      found_ = true;
      best_cost_ = cost;
      best_ = current_;
    }
    if (current_.size() >= max_cuts_ || start >= cands_.size()) {
      return;
    }
    if (prune_) {
      // Cost bound: every strict extension has >= size+1 cuts, and
      // set_overhead is non-decreasing in the cut count. (No width-based
      // prune: fragment width is NOT monotone under adding cuts — a split
      // segment's halves can reconnect through other wires and grow a
      // component — so only the cost bound is sound.)
      if (found_ && planner_.set_overhead(current_.size() + 1) >= best_cost_) {
        return;
      }
    }
    for (std::size_t i = start; i < cands_.size(); ++i) {
      current_.push_back(i);
      dfs(i + 1);
      current_.pop_back();
    }
  }

  const CutPlanner& planner_;
  const CircuitGraph& graph_;
  const std::vector<CutPoint>& cands_;
  int width_cap_;
  std::size_t max_cuts_;
  std::size_t max_nodes_;
  bool prune_;

  std::vector<std::size_t> current_;
  std::vector<std::size_t> best_;
  Real best_cost_ = std::numeric_limits<Real>::infinity();
  bool found_ = false;
  bool aborted_ = false;
  std::size_t nodes_ = 0;
};

}  // namespace

CutPlan CutPlanner::make_plan(const std::vector<std::size_t>& chosen, std::size_t nodes) const {
  CutPlan plan;
  plan.nodes_explored = nodes;
  // `chosen` holds increasing indices into the (time-ordered) candidate
  // list, so the plan's cuts come out time-ordered and the greedy pair grant
  // favors the earliest cuts.
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    PlannedCut pc;
    pc.point = graph_.candidates()[chosen[i]];
    pc.entangled = use_entanglement_ && i < static_cast<std::size_t>(cfg_.pair_budget);
    pc.protocol = pc.entangled ? "nme" : "harada";
    pc.k = pc.entangled ? k_nme_ : 0.0;
    pc.kappa = cut_kappa(i);
    plan.total_kappa *= pc.kappa;
    plan.cuts.push_back(std::move(pc));
  }
  plan.total_overhead = plan.total_kappa * plan.total_kappa;
  plan.target_accuracy = cfg_.target_accuracy;
  plan.predicted_shots = shots_for_accuracy(plan.total_kappa, cfg_.target_accuracy);
  plan.fragment_widths = graph_.fragment_widths(plan.points());
  plan.max_width = plan.fragment_widths.empty() ? 0 : plan.fragment_widths.front();
  return plan;
}

Real CutPlanner::reference_overhead() const {
  const auto& cands = graph_.candidates();
  const std::size_t m = cands.size();
  QCUT_CHECK(m <= 20, "reference_overhead: too many candidates for the 2^m scan");
  Real best = -1.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<CutPoint> pts;
    std::size_t count = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) {
        pts.push_back(cands[i]);
        ++count;
      }
    }
    if (count > cfg_.max_cuts) {
      continue;
    }
    if (graph_.max_fragment_width(pts) > cfg_.max_fragment_width) {
      continue;
    }
    const Real cost = set_overhead(count);
    if (best < 0.0 || cost < best) {
      best = cost;
    }
  }
  return best;
}

CutPlan CutPlanner::plan() const {
  const std::size_t m = graph_.candidates().size();
  obs::TraceSpan span("plan.search", static_cast<std::uint64_t>(m));
  // O(1) infeasibility pre-check: a fragment containing a k-qubit op always
  // holds at least k segments, so no cut set can beat the widest single op —
  // without this, a hopeless width cap would enumerate the entire subset
  // tree before it could throw.
  if (graph_.min_reachable_width() <= cfg_.max_fragment_width) {
    SubsetSearch search(*this, /*prune=*/m > cfg_.exhaustive_limit);
    search.run();
    obs::count(obs::Counter::kPlanNodesExplored, search.nodes());
    if (search.found()) {
      CutPlan plan = make_plan(search.best(), search.nodes());
      plan.budget_exhausted = search.budget_exhausted();
      return plan;
    }
    if (search.budget_exhausted()) {
      std::ostringstream os;
      os << "CutPlanner: search hit max_nodes = " << cfg_.max_nodes
         << " without a feasible cut set (width cap " << cfg_.max_fragment_width << ", " << m
         << " candidates) — the instance is likely infeasible; raise max_nodes to be sure";
      throw Error(os.str());
    }
  }
  std::ostringstream os;
  os << "CutPlanner: no cut set of <= " << cfg_.max_cuts << " cuts reaches max fragment width "
     << cfg_.max_fragment_width << " (widest single op needs " << graph_.min_reachable_width()
     << " qubits, " << m << " candidate cuts)";
  throw Error(os.str());
}

}  // namespace qcut
