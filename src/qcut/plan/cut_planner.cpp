#include "qcut/plan/cut_planner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "qcut/common/cancel.hpp"
#include "qcut/common/union_find.hpp"
#include "qcut/core/cut_executor.hpp"
#include "qcut/core/overhead.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

namespace {

constexpr Real kHalfTol = 1e-12;
constexpr Real kKappaTol = 1e-12;

}  // namespace

std::vector<CutPoint> CutPlan::points() const {
  std::vector<CutPoint> out;
  for (const PlannedCut& c : cuts) {
    if (c.site.kind == CutKind::kWire) {
      out.push_back(c.site.point);
    }
  }
  return out;
}

std::vector<CutSite> CutPlan::sites() const {
  std::vector<CutSite> out;
  out.reserve(cuts.size());
  for (const PlannedCut& c : cuts) {
    out.push_back(c.site);
  }
  return out;
}

std::size_t CutPlan::gate_cut_count() const {
  std::size_t n = 0;
  for (const PlannedCut& c : cuts) {
    n += c.site.kind == CutKind::kGate ? 1 : 0;
  }
  return n;
}

std::string CutPlan::to_string() const {
  std::ostringstream os;
  os << "CutPlan: " << cuts.size() << " cut(s), total kappa " << total_kappa
     << ", overhead factor " << total_overhead << "\n";
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    const PlannedCut& c = cuts[i];
    if (c.site.kind == CutKind::kWire) {
      os << "  cut " << i << ": wire " << c.site.point.qubit << " after op "
         << c.site.point.after_op;
    } else {
      os << "  cut " << i << ": gate at op " << c.site.op_index;
    }
    os << "  protocol=" << qcut::to_string(c.spec);
    if (c.entangled) {
      os << " (1 pair/sample";
      if (c.link >= 0) {
        os << ", link " << c.link;
      }
      os << ")";
    }
    os << "  kappa=" << c.kappa << "\n";
  }
  os << "  fragment widths:";
  for (int w : fragment_widths) {
    os << " " << w;
  }
  os << " (max " << max_width << ")\n";
  os << "  merged sim widths:";
  for (int w : sim_widths) {
    os << " " << w;
  }
  os << " (max " << max_sim_width << ")\n";
  os << "  predicted shots for eps=" << target_accuracy << ": " << predicted_shots << "\n";
  return os.str();
}

CutPlanner::CutPlanner(const Circuit& circ, PlannerConfig cfg)
    : circ_(circ), graph_(circ_), cfg_(cfg) {
  if (cfg_.max_fragment_width == 0) {
    // Defaulted cap = the simulation engine's ceiling. A plan the planner
    // accepts must be a plan the fragment evaluator can actually run.
    cfg_.max_fragment_width = Statevector::kMaxQubits;
  }
  sim_cap_ = Statevector::kMaxQubits;
  QCUT_CHECK(cfg_.max_fragment_width >= 1, "CutPlanner: max_fragment_width must be >= 1");
  QCUT_CHECK(cfg_.resource_overlap >= 0.5 - kTightTol && cfg_.resource_overlap <= 1.0 + kTightTol,
             "CutPlanner: resource_overlap must lie in [1/2, 1]");
  QCUT_CHECK(cfg_.pair_budget >= 0, "CutPlanner: pair_budget must be non-negative");
  QCUT_CHECK(cfg_.target_accuracy > 0.0, "CutPlanner: target_accuracy must be positive");

  // Resolve the effective device model: an explicit model wins; otherwise the
  // legacy scalar fields synthesize the homogeneous equivalent.
  model_ = cfg_.device_model.empty()
               ? DeviceModel::homogeneous(cfg_.resource_overlap, cfg_.pair_budget)
               : cfg_.device_model;
  for (const DeviceSpec& d : model_.devices) {
    QCUT_CHECK(d.width_cap >= 1, "CutPlanner: device width_cap must be >= 1");
  }
  for (const LinkSpec& l : model_.links) {
    QCUT_CHECK(l.pair_budget >= 0, "CutPlanner: link pair_budget must be non-negative");
    if (l.family == LinkFamily::kMixed) {
      QCUT_CHECK(l.overlap > 0.25 + kHalfTol && l.overlap <= 1.0 + kTightTol,
                 "CutPlanner: mixed-link identity weight must lie in (1/4, 1]");
    } else {
      QCUT_CHECK(l.overlap >= 0.5 - kTightTol && l.overlap <= 1.0 + kTightTol,
                 "CutPlanner: link overlap must lie in [1/2, 1]");
    }
  }

  // Expand links into per-cut slots, keeping only slots that beat the
  // entanglement-free optimum (κ < 3) — a slot that doesn't is never granted
  // (harada costs the same or less and cannot merge fragments). Slots sort
  // best-κ-first (ties: link order) and at most max_cuts can ever be used.
  for (std::size_t li = 0; li < model_.links.size(); ++li) {
    const LinkSpec& link = model_.links[li];
    if (link.pair_budget <= 0) {
      continue;
    }
    const ProtocolSpec spec = link_protocol_spec(link);
    const Real kappa = spec_kappa(spec);
    if (kappa >= 3.0 - kKappaTol) {
      continue;
    }
    // Merge semantics probed once per link from the protocol itself — the
    // feasibility model and the executor share one source of truth.
    const MergeProfile profile = merge_profile(*make_protocol(spec));
    const int copies = std::min<int>(link.pair_budget, static_cast<int>(cfg_.max_cuts));
    for (int c = 0; c < copies; ++c) {
      slots_.push_back(LinkSlot{static_cast<int>(li), spec, kappa, profile});
    }
  }
  std::stable_sort(slots_.begin(), slots_.end(),
                   [](const LinkSlot& a, const LinkSlot& b) { return a.kappa < b.kappa; });
  if (slots_.size() > cfg_.max_cuts) {
    slots_.resize(cfg_.max_cuts);
  }
  min_wire_kappa_ = slots_.empty() ? 3.0 : std::min<Real>(3.0, slots_.front().kappa);

  if (cfg_.allow_gate_cuts) {
    search_cands_ = graph_.all_candidates();
  } else {
    for (const CutPoint& p : graph_.candidates()) {
      CutCandidate c;
      c.site = CutSite::wire(p);
      search_cands_.push_back(c);
    }
  }
}

Real CutPlanner::kappa_lower_bound(std::size_t candidate) const {
  const CutCandidate& c = search_cands_[candidate];
  return c.site.kind == CutKind::kGate ? c.gate_kappa : min_wire_kappa_;
}

ProtocolAssignment CutPlanner::assign_protocols(const std::vector<std::size_t>& subset) const {
  ProtocolAssignment out;
  std::vector<CutPoint> wire_pts;
  std::vector<std::size_t> gate_ops;
  for (std::size_t idx : subset) {
    QCUT_CHECK(idx < search_cands_.size(), "assign_protocols: candidate index out of range");
    const CutCandidate& c = search_cands_[idx];
    if (c.site.kind == CutKind::kWire) {
      wire_pts.push_back(c.site.point);
    } else {
      gate_ops.push_back(c.site.op_index);
    }
  }

  // Tier 1 — device feasibility: the unmerged fragment widths against the
  // model's caps. Helper/resource qubits are the protocol's business (the
  // entangled resource is physically distributed), so they don't count here.
  const FragmentPartition part = graph_.partition(wire_pts, gate_ops);
  out.device_widths = part.widths_desc();
  if (!model_.fits(out.device_widths, cfg_.max_fragment_width)) {
    out.reason = "fragment widths exceed the device model";
    return out;
  }

  // Map each wire cut back to its index among the wire cuts (grant order) and
  // each subset position to its fragment pair.
  const std::size_t w = wire_pts.size();
  const std::size_t s_max = std::min(w, slots_.size());

  // Tier 2 — simulation feasibility, merge-aware: granting slot i to wire
  // cut i unites the cut's two fragments in the simulator whenever the
  // slot's protocol merges; every entangled cut also contributes its worst
  // branch's helper wires. The all-merge scenario with per-cut max extras
  // dominates every actual QPD term, so checking it once per grant count is
  // sound. Grants go best-slot-to-earliest-cut; when the merged width would
  // exceed the engine cap the planner backs off one pair at a time — the
  // plan is repaired at plan time instead of dying in the fragment backend.
  for (std::size_t s = s_max + 1; s-- > 0;) {
    const std::size_t n_frags = part.widths.size();
    UnionFind uf(n_frags);
    for (std::size_t i = 0; i < s; ++i) {
      if (slots_[i].profile.merges) {
        const auto& [fs, fr] = part.cut_fragments[i];
        uf.unite(static_cast<std::size_t>(fs), static_cast<std::size_t>(fr));
      }
    }
    std::vector<int> comp_width(n_frags, 0);
    for (std::size_t f = 0; f < n_frags; ++f) {
      comp_width[uf.find(f)] += part.widths[f];
    }
    for (std::size_t i = 0; i < s; ++i) {
      const auto& [fs, fr] = part.cut_fragments[i];
      const MergeProfile& mp = slots_[i].profile;
      if (mp.merges) {
        comp_width[uf.find(static_cast<std::size_t>(fs))] += mp.max_extra();
      } else {
        comp_width[uf.find(static_cast<std::size_t>(fs))] += mp.sender_extra;
        comp_width[uf.find(static_cast<std::size_t>(fr))] += mp.receiver_extra;
      }
    }
    std::vector<int> sim;
    int max_sim = 0;
    for (std::size_t f = 0; f < n_frags; ++f) {
      if (uf.find(f) == f) {
        sim.push_back(comp_width[f]);
        max_sim = std::max(max_sim, comp_width[f]);
      }
    }
    if (max_sim > sim_cap_) {
      continue;  // back off one entangled pair and retry
    }
    std::sort(sim.begin(), sim.end(), std::greater<int>());

    // Feasible at grant count s: materialize the assignment. Wire cuts are
    // granted in subset (time) order, so the earliest cuts take the best
    // slots — the legacy greedy in the homogeneous case.
    out.feasible = true;
    out.sim_widths = std::move(sim);
    out.overhead = 1.0;
    std::size_t wire_seen = 0;
    for (std::size_t idx : subset) {
      const CutCandidate& c = search_cands_[idx];
      PlannedCut pc;
      pc.site = c.site;
      if (c.site.kind == CutKind::kGate) {
        pc.spec = ProtocolSpec{ProtocolId::kZzGate, c.gate_theta};
        pc.kappa = c.gate_kappa;
      } else if (wire_seen < s) {
        pc.spec = slots_[wire_seen].spec;
        pc.kappa = slots_[wire_seen].kappa;
        pc.entangled = true;
        pc.link = slots_[wire_seen].link;
        ++wire_seen;
      } else {
        pc.spec = ProtocolSpec{ProtocolId::kHarada, 0.0};
        pc.kappa = 3.0;
        ++wire_seen;
      }
      out.overhead *= pc.kappa * pc.kappa;
      out.cuts.push_back(std::move(pc));
    }
    return out;
  }
  std::ostringstream os;
  os << "merged fragment width exceeds the simulation cap (" << sim_cap_
     << " qubits) even with no entangled pairs granted";
  out.reason = os.str();
  return out;
}

namespace {

/// Shared DFS over candidate subsets in lexicographic index order. With
/// `prune` false this is the plain exhaustive scan; with it true, the
/// branch-and-bound (cost lower bound; never a width bound — fragment width
/// is not monotone under adding cuts).
class SubsetSearch {
 public:
  SubsetSearch(const CutPlanner& planner, bool prune)
      : planner_(planner),
        n_cands_(planner.search_candidates().size()),
        max_cuts_(planner.config().max_cuts),
        max_nodes_(planner.config().max_nodes),
        prune_(prune) {}

  void run() { dfs(0, 1.0); }

  bool found() const noexcept { return found_; }
  const ProtocolAssignment& best() const noexcept { return best_; }
  std::size_t nodes() const noexcept { return nodes_; }
  bool budget_exhausted() const noexcept { return aborted_; }

 private:
  void dfs(std::size_t start, Real lb_cost) {
    if (aborted_) {
      return;
    }
    if (nodes_ >= max_nodes_) {
      aborted_ = true;
      return;
    }
    // Strided cancellation poll: node expansion is the search's quantum, but
    // per-node polling would dominate tiny nodes — every 64th is plenty (a
    // tripped deadline surfaces within microseconds either way).
    if ((nodes_ & 63u) == 0) {
      cancel_poll();
    }
    ++nodes_;
    // Cost first: Π κ_lb² lower-bounds the assignment's overhead, so a node
    // that cannot beat the incumbent never needs the (much more expensive)
    // union-find + protocol assignment — recording only strict improvements
    // makes the skip behavior-identical.
    const bool can_improve = !found_ || lb_cost < best_cost_;
    if (can_improve) {
      ProtocolAssignment assign = planner_.assign_protocols(current_);
      if (assign.feasible && (!found_ || assign.overhead < best_cost_)) {
        found_ = true;
        best_cost_ = assign.overhead;
        best_ = std::move(assign);
      }
    }
    if (current_.size() >= max_cuts_ || start >= n_cands_) {
      return;
    }
    if (prune_) {
      // Cost bound: every per-cut κ is >= 1, so every strict extension's
      // lower bound is >= this node's. (No width-based prune: fragment width
      // is NOT monotone under adding cuts — a split segment's halves can
      // reconnect through other wires and grow a component.)
      if (found_ && lb_cost >= best_cost_) {
        return;
      }
    }
    for (std::size_t i = start; i < n_cands_; ++i) {
      const Real lb = planner_.kappa_lower_bound(i);
      current_.push_back(i);
      dfs(i + 1, lb_cost * lb * lb);
      current_.pop_back();
    }
  }

  const CutPlanner& planner_;
  std::size_t n_cands_;
  std::size_t max_cuts_;
  std::size_t max_nodes_;
  bool prune_;

  std::vector<std::size_t> current_;
  ProtocolAssignment best_;
  Real best_cost_ = std::numeric_limits<Real>::infinity();
  bool found_ = false;
  bool aborted_ = false;
  std::size_t nodes_ = 0;
};

}  // namespace

CutPlan CutPlanner::make_plan(const ProtocolAssignment& assign, std::size_t nodes) const {
  CutPlan plan;
  plan.nodes_explored = nodes;
  plan.cuts = assign.cuts;
  for (const PlannedCut& pc : plan.cuts) {
    plan.total_kappa *= pc.kappa;
  }
  plan.total_overhead = plan.total_kappa * plan.total_kappa;
  plan.target_accuracy = cfg_.target_accuracy;
  plan.predicted_shots = shots_for_accuracy(plan.total_kappa, cfg_.target_accuracy);
  plan.fragment_widths = assign.device_widths;
  plan.max_width = plan.fragment_widths.empty() ? 0 : plan.fragment_widths.front();
  plan.sim_widths = assign.sim_widths;
  plan.max_sim_width = plan.sim_widths.empty() ? 0 : plan.sim_widths.front();
  return plan;
}

Real CutPlanner::reference_overhead() const {
  const std::size_t m = search_cands_.size();
  QCUT_CHECK(m <= 20, "reference_overhead: too many candidates for the 2^m scan");
  Real best = -1.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) {
        subset.push_back(i);
      }
    }
    if (subset.size() > cfg_.max_cuts) {
      continue;
    }
    const ProtocolAssignment assign = assign_protocols(subset);
    if (!assign.feasible) {
      continue;
    }
    if (best < 0.0 || assign.overhead < best) {
      best = assign.overhead;
    }
  }
  return best;
}

CutPlan CutPlanner::plan() const {
  const std::size_t m = search_cands_.size();
  obs::TraceSpan span("plan.search", static_cast<std::uint64_t>(m));
  const int cap = model_.max_cap(cfg_.max_fragment_width);
  // O(1) infeasibility pre-check: a fragment containing a k-qubit op that no
  // cut can sever always holds at least k segments, so no cut set can beat
  // the widest such op — without this, a hopeless width cap would enumerate
  // the entire subset tree before it could throw. Gate cuts sever diagonal
  // two-qubit ops, so allowing them lowers the floor.
  const bool gate_floor = cfg_.allow_gate_cuts && !graph_.gate_candidates().empty();
  if (graph_.min_reachable_width(gate_floor) <= cap) {
    SubsetSearch search(*this, /*prune=*/m > cfg_.exhaustive_limit);
    search.run();
    obs::count(obs::Counter::kPlanNodesExplored, search.nodes());
    if (search.found()) {
      CutPlan plan = make_plan(search.best(), search.nodes());
      plan.budget_exhausted = search.budget_exhausted();
      return plan;
    }
    if (search.budget_exhausted()) {
      std::ostringstream os;
      os << "CutPlanner: search hit max_nodes = " << cfg_.max_nodes
         << " without a feasible cut set (" << model_.describe(cfg_.max_fragment_width) << ", "
         << m << " candidates) — the instance is likely infeasible; raise max_nodes to be sure";
      throw Error(os.str());
    }
  }
  std::ostringstream os;
  os << "CutPlanner: no cut set of <= " << cfg_.max_cuts << " cuts fits the device model ("
     << model_.describe(cfg_.max_fragment_width) << "; widest unseverable op needs "
     << graph_.min_reachable_width(gate_floor) << " qubits; " << m
     << " candidate cuts). Entangled-resource cuts merge both fragments in the simulator (cap "
     << sim_cap_ << " qubits), so pair grants may also have been reduced or rejected.";
  throw Error(os.str());
}

}  // namespace qcut
