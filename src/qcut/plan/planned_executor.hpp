// End-to-end planned execution: turn a CutPlan into a runnable estimate.
//
// The executor instantiates the plan's per-cut protocols from their typed
// ProtocolSpec descriptors (wire cuts via make_protocol; gate cuts by
// factoring the host op into locals ⊗ e^{iθZZ}), splices everything into the
// host circuit via cut_circuit_sites (the product QPD of the n cuts,
// κ = Π κ_i), and estimates the observable on the batched execution engine —
// the same engine-backed path CutExecutor uses for single-wire experiments.
//
// The spliced term circuits are an IR, not an execution obligation: when they
// are wider than the statevector cap (or the caller asks for it), run()
// executes them on the fragment-local backend, which simulates each fragment
// of every term independently and recombines through the cut boundaries'
// classical bits. Total width is then bounded by the plan's max *merged*
// fragment width (CutPlan::max_sim_width): entangled-resource cuts splice a
// pre-shared-state initialize spanning both sides, so the simulator holds
// their two fragments as one. The planner's merge-aware feasibility keeps
// max_sim_width within the engine cap — a plan that cannot fit is rejected
// (or repaired by granting fewer pairs) at plan time, never discovered as a
// width error at run time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qcut/core/cut_executor.hpp"
#include "qcut/plan/cut_planner.hpp"
#include "qcut/sim/observable.hpp"

namespace qcut {

class PlannedExecutor {
 public:
  /// Takes ownership of copies of the circuit and plan; protocols are
  /// instantiated once here (from each cut's ProtocolSpec) and reused across
  /// runs. Gate cuts re-factor their host op so the spliced locals match the
  /// actual gate, not just its entangling angle.
  PlannedExecutor(Circuit circ, CutPlan plan);

  const CutPlan& plan() const noexcept { return plan_; }
  const Circuit& circuit() const noexcept { return circ_; }

  /// The joint (product) QPD realizing all planned cuts for `observable`.
  /// A plan with zero cuts yields the single-term "QPD" that just runs the
  /// circuit and measures the observable.
  Qpd build_qpd(const Observable& observable) const;
  /// String shim: parses (and so validates) the Pauli string, then delegates.
  Qpd build_qpd(const std::string& observable) const;

  /// One estimation run. cfg.shots = 0 uses the plan's predicted budget κ²/ε²
  /// (rounded up).
  ///
  /// Backend routing: when the spliced term circuits are wider than
  /// cfg.auto_fragment_threshold (default: the statevector cap) and the
  /// backend is the default BatchedBranch, the run automatically switches to
  /// the fragment-local backend — execution memory is then bounded by the max
  /// *merged* fragment width, which planner-produced plans keep within the
  /// engine cap (see CutPlan::max_sim_width).
  /// Choosing any non-default backend kind disables the rerouting; a
  /// BatchedBranch request is indistinguishable from the default, so to force
  /// the spliced batched path on a wide run raise auto_fragment_threshold
  /// instead.
  ///
  /// The exact uncut expectation is attached when the circuit is narrow
  /// enough to simulate monolithically; otherwise result.has_exact is false.
  CutRunResult run(const Observable& observable, const CutRunConfig& cfg) const;
  /// String shim: parses the Pauli string, then delegates.
  CutRunResult run(const std::string& observable, const CutRunConfig& cfg) const;

  /// Service hook: run() with the QPD construction hoisted out. `qpd` must be
  /// build_qpd(observable) of THIS executor (possibly cached across requests
  /// by the service layer); everything else — shot-budget resolution, backend
  /// routing, exact reference, report fields — is identical to run(), so a
  /// cached QPD estimates bit-identically to a freshly built one.
  CutRunResult run_with(const Qpd& qpd, const Observable& observable,
                        const CutRunConfig& cfg) const;

  /// The backend kind run() would execute `qpd` on under `cfg` (the
  /// auto-fragment width routing rule). Exposed so the service layer can
  /// construct its cross-request shared backend with the same kind.
  static BackendKind routed_backend(const Qpd& qpd, const CutRunConfig& cfg);

 private:
  Circuit circ_;
  CutPlan plan_;
  std::vector<std::shared_ptr<const CutProtocol>> protocols_;
};

struct PlannedRunResult {
  CutPlan plan;
  CutRunResult run;
};

/// One call from circuit to answer: analyze, plan (throws if infeasible),
/// and execute. rcfg.shots = 0 runs at the planner-predicted budget.
/// Implemented on the service front door (svc::estimate) without caching, so
/// the in-process and daemon paths can never drift.
PlannedRunResult plan_and_run(const Circuit& circ, const Observable& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg);
/// String shim: parses the Pauli string, then delegates.
PlannedRunResult plan_and_run(const Circuit& circ, const std::string& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg);

}  // namespace qcut
