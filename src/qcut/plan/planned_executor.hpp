// End-to-end planned execution: turn a CutPlan into a runnable estimate.
//
// The executor instantiates the plan's per-cut protocols from their typed
// ProtocolSpec descriptors (wire cuts via make_protocol; gate cuts by
// factoring the host op into locals ⊗ e^{iθZZ}), splices everything into the
// host circuit via cut_circuit_sites (the product QPD of the n cuts,
// κ = Π κ_i), and estimates the observable on the batched execution engine —
// the same engine-backed path CutExecutor uses for single-wire experiments.
//
// The spliced term circuits are an IR, not an execution obligation: when they
// are wider than the statevector cap (or the caller asks for it), run()
// executes them on the fragment-local backend, which simulates each fragment
// of every term independently and recombines through the cut boundaries'
// classical bits. Total width is then bounded by the plan's max *merged*
// fragment width (CutPlan::max_sim_width): entangled-resource cuts splice a
// pre-shared-state initialize spanning both sides, so the simulator holds
// their two fragments as one. The planner's merge-aware feasibility keeps
// max_sim_width within the engine cap — a plan that cannot fit is rejected
// (or repaired by granting fewer pairs) at plan time, never discovered as a
// width error at run time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qcut/core/cut_executor.hpp"
#include "qcut/plan/cut_planner.hpp"

namespace qcut {

class PlannedExecutor {
 public:
  /// Takes ownership of copies of the circuit and plan; protocols are
  /// instantiated once here (from each cut's ProtocolSpec) and reused across
  /// runs. Gate cuts re-factor their host op so the spliced locals match the
  /// actual gate, not just its entangling angle.
  PlannedExecutor(Circuit circ, CutPlan plan);

  const CutPlan& plan() const noexcept { return plan_; }
  const Circuit& circuit() const noexcept { return circ_; }

  /// The joint (product) QPD realizing all planned cuts for `observable`.
  /// A plan with zero cuts yields the single-term "QPD" that just runs the
  /// circuit and measures the observable.
  Qpd build_qpd(const std::string& observable) const;

  /// One estimation run. cfg.shots = 0 uses the plan's predicted budget κ²/ε²
  /// (rounded up).
  ///
  /// Backend routing: when the spliced term circuits are wider than
  /// cfg.auto_fragment_threshold (default: the statevector cap) and the
  /// backend is the default BatchedBranch, the run automatically switches to
  /// the fragment-local backend — execution memory is then bounded by the max
  /// *merged* fragment width, which planner-produced plans keep within the
  /// engine cap (see CutPlan::max_sim_width).
  /// Choosing any non-default backend kind disables the rerouting; a
  /// BatchedBranch request is indistinguishable from the default, so to force
  /// the spliced batched path on a wide run raise auto_fragment_threshold
  /// instead.
  ///
  /// The exact uncut expectation is attached when the circuit is narrow
  /// enough to simulate monolithically; otherwise result.has_exact is false.
  CutRunResult run(const std::string& observable, const CutRunConfig& cfg) const;

 private:
  Circuit circ_;
  CutPlan plan_;
  std::vector<std::shared_ptr<const CutProtocol>> protocols_;
};

struct PlannedRunResult {
  CutPlan plan;
  CutRunResult run;
};

/// One call from circuit to answer: analyze, plan (throws if infeasible),
/// and execute. rcfg.shots = 0 runs at the planner-predicted budget.
PlannedRunResult plan_and_run(const Circuit& circ, const std::string& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg);

}  // namespace qcut
