// End-to-end planned execution: turn a CutPlan into a runnable estimate.
//
// The executor instantiates the plan's per-cut protocols, splices every
// gadget into the host circuit via cut_circuit_multi (the product QPD of the
// n cuts, κ = Π κ_i), and estimates the observable on the batched execution
// engine — the same engine-backed path CutExecutor uses for single-wire
// experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qcut/core/cut_executor.hpp"
#include "qcut/plan/cut_planner.hpp"

namespace qcut {

class PlannedExecutor {
 public:
  /// Takes ownership of copies of the circuit and plan; protocols are
  /// instantiated once here and reused across runs.
  PlannedExecutor(Circuit circ, CutPlan plan);

  const CutPlan& plan() const noexcept { return plan_; }
  const Circuit& circuit() const noexcept { return circ_; }

  /// The joint (product) QPD realizing all planned cuts for `observable`.
  /// A plan with zero cuts yields the single-term "QPD" that just runs the
  /// circuit and measures the observable.
  Qpd build_qpd(const std::string& observable) const;

  /// One estimation run against the exact uncut expectation. cfg.shots = 0
  /// uses the plan's predicted budget κ²/ε² (rounded up).
  CutRunResult run(const std::string& observable, const CutRunConfig& cfg) const;

 private:
  Circuit circ_;
  CutPlan plan_;
  std::vector<std::shared_ptr<const WireCutProtocol>> protocols_;
};

struct PlannedRunResult {
  CutPlan plan;
  CutRunResult run;
};

/// One call from circuit to answer: analyze, plan (throws if infeasible),
/// and execute. rcfg.shots = 0 runs at the planner-predicted budget.
PlannedRunResult plan_and_run(const Circuit& circ, const std::string& observable,
                              const PlannerConfig& pcfg, const CutRunConfig& rcfg);

}  // namespace qcut
