// AVX-512 implementation of the run kernels (F+DQ+VL), compiled only for
// this translation unit. Same layout and algebra as the AVX2 tier at twice
// the width: one __m512d holds four complex doubles.
#include "qcut/sim/simd_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace qcut {

namespace {

// c * x for a broadcast complex constant: swap re/im within each 128-bit
// pair (imm 0x55 selects [1, 0] in every lane) and fmaddsub, exactly the
// AVX2 scheme at width 4.
inline __m512d cmul(__m512d x, __m512d cr, __m512d ci) {
  return _mm512_fmaddsub_pd(cr, x, _mm512_mul_pd(ci, _mm512_permute_pd(x, 0x55)));
}

struct BroadcastCplx {
  __m512d re;
  __m512d im;
};

inline BroadcastCplx bc(Cplx c) {
  return {_mm512_set1_pd(c.real()), _mm512_set1_pd(c.imag())};
}

inline double* dp(Cplx* a) { return reinterpret_cast<double*>(a); }
inline const double* dp(const Cplx* a) { return reinterpret_cast<const double*>(a); }

void apply1_run_avx512(Cplx* a0, Cplx* a1, Index count, const Cplx* m) {
  const BroadcastCplx m00 = bc(m[0]), m01 = bc(m[1]), m10 = bc(m[2]), m11 = bc(m[3]);
  Index i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d x0 = _mm512_loadu_pd(dp(a0 + i));
    const __m512d x1 = _mm512_loadu_pd(dp(a1 + i));
    const __m512d y0 = _mm512_add_pd(cmul(x0, m00.re, m00.im), cmul(x1, m01.re, m01.im));
    const __m512d y1 = _mm512_add_pd(cmul(x0, m10.re, m10.im), cmul(x1, m11.re, m11.im));
    _mm512_storeu_pd(dp(a0 + i), y0);
    _mm512_storeu_pd(dp(a1 + i), y1);
  }
  for (; i < count; ++i) {
    const Cplx x0 = a0[i];
    const Cplx x1 = a1[i];
    a0[i] = m[0] * x0 + m[1] * x1;
    a1[i] = m[2] * x0 + m[3] * x1;
  }
}

void apply1_pairs_avx512(Cplx* a, Index npairs, const Cplx* m) {
  // One vector holds two (a0, a1) pairs: duplicate the a0 / a1 elements
  // within each 256-bit half (permutex selectors [0,1,0,1] and [2,3,2,3])
  // and use per-lane constants [m00, m10 | m00, m10] / [m01, m11 | m01, m11].
  const __m512d c0r = _mm512_setr_pd(m[0].real(), m[0].real(), m[2].real(), m[2].real(),
                                     m[0].real(), m[0].real(), m[2].real(), m[2].real());
  const __m512d c0i = _mm512_setr_pd(m[0].imag(), m[0].imag(), m[2].imag(), m[2].imag(),
                                     m[0].imag(), m[0].imag(), m[2].imag(), m[2].imag());
  const __m512d c1r = _mm512_setr_pd(m[1].real(), m[1].real(), m[3].real(), m[3].real(),
                                     m[1].real(), m[1].real(), m[3].real(), m[3].real());
  const __m512d c1i = _mm512_setr_pd(m[1].imag(), m[1].imag(), m[3].imag(), m[3].imag(),
                                     m[1].imag(), m[1].imag(), m[3].imag(), m[3].imag());
  Index p = 0;
  for (; p + 2 <= npairs; p += 2) {
    const __m512d x = _mm512_loadu_pd(dp(a + 2 * p));      // [a0, a1 | a0', a1']
    const __m512d x0 = _mm512_permutex_pd(x, 0x44);        // [a0, a0 | a0', a0']
    const __m512d x1 = _mm512_permutex_pd(x, 0xEE);        // [a1, a1 | a1', a1']
    const __m512d y = _mm512_add_pd(cmul(x0, c0r, c0i), cmul(x1, c1r, c1i));
    _mm512_storeu_pd(dp(a + 2 * p), y);
  }
  for (; p < npairs; ++p) {
    const Cplx x0 = a[2 * p];
    const Cplx x1 = a[2 * p + 1];
    a[2 * p] = m[0] * x0 + m[1] * x1;
    a[2 * p + 1] = m[2] * x0 + m[3] * x1;
  }
}

void apply2_run_avx512(Cplx* p00, Cplx* p01, Cplx* p10, Cplx* p11, Index count, const Cplx* m) {
  BroadcastCplx mm[16];
  for (int e = 0; e < 16; ++e) {
    mm[e] = bc(m[e]);
  }
  Index i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d x0 = _mm512_loadu_pd(dp(p00 + i));
    const __m512d x1 = _mm512_loadu_pd(dp(p01 + i));
    const __m512d x2 = _mm512_loadu_pd(dp(p10 + i));
    const __m512d x3 = _mm512_loadu_pd(dp(p11 + i));
    Cplx* rows[4] = {p00, p01, p10, p11};
    for (int r = 0; r < 4; ++r) {
      const __m512d y = _mm512_add_pd(
          _mm512_add_pd(cmul(x0, mm[4 * r].re, mm[4 * r].im),
                        cmul(x1, mm[4 * r + 1].re, mm[4 * r + 1].im)),
          _mm512_add_pd(cmul(x2, mm[4 * r + 2].re, mm[4 * r + 2].im),
                        cmul(x3, mm[4 * r + 3].re, mm[4 * r + 3].im)));
      _mm512_storeu_pd(dp(rows[r] + i), y);
    }
  }
  for (; i < count; ++i) {
    const Cplx x0 = p00[i], x1 = p01[i], x2 = p10[i], x3 = p11[i];
    p00[i] = m[0] * x0 + m[1] * x1 + m[2] * x2 + m[3] * x3;
    p01[i] = m[4] * x0 + m[5] * x1 + m[6] * x2 + m[7] * x3;
    p10[i] = m[8] * x0 + m[9] * x1 + m[10] * x2 + m[11] * x3;
    p11[i] = m[12] * x0 + m[13] * x1 + m[14] * x2 + m[15] * x3;
  }
}

void scale_run_avx512(Cplx* a, Index count, Cplx factor) {
  const BroadcastCplx f = bc(factor);
  Index i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm512_storeu_pd(dp(a + i), cmul(_mm512_loadu_pd(dp(a + i)), f.re, f.im));
  }
  for (; i < count; ++i) {
    a[i] *= factor;
  }
}

void diag1_pairs_avx512(Cplx* a, Index npairs, Cplx d0, Cplx d1) {
  const __m512d dr = _mm512_setr_pd(d0.real(), d0.real(), d1.real(), d1.real(),
                                    d0.real(), d0.real(), d1.real(), d1.real());
  const __m512d di = _mm512_setr_pd(d0.imag(), d0.imag(), d1.imag(), d1.imag(),
                                    d0.imag(), d0.imag(), d1.imag(), d1.imag());
  Index p = 0;
  for (; p + 2 <= npairs; p += 2) {
    _mm512_storeu_pd(dp(a + 2 * p), cmul(_mm512_loadu_pd(dp(a + 2 * p)), dr, di));
  }
  for (; p < npairs; ++p) {
    a[2 * p] *= d0;
    a[2 * p + 1] *= d1;
  }
}

double norm2_run_avx512(const Cplx* a, Index count) {
  __m512d acc = _mm512_setzero_pd();
  Index i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m512d x = _mm512_loadu_pd(dp(a + i));
    acc = _mm512_fmadd_pd(x, x, acc);
  }
  // Fixed lane-combine order: halves, then the AVX2 scheme on the 256 sum.
  const __m256d half = _mm256_add_pd(_mm512_castpd512_pd256(acc),
                                     _mm512_extractf64x4_pd(acc, 1));
  const __m128d sum2 = _mm_add_pd(_mm256_castpd256_pd128(half),
                                  _mm256_extractf128_pd(half, 1));
  double partial = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < count; ++i) {
    partial += norm2(a[i]);
  }
  return partial;
}

constexpr SimdKernels kAvx512Kernels = {
    &apply1_run_avx512, &apply1_pairs_avx512, &apply2_run_avx512,
    &scale_run_avx512,  &diag1_pairs_avx512,  &norm2_run_avx512,
};

}  // namespace

const SimdKernels* simd_kernels_avx512() { return &kAvx512Kernels; }

}  // namespace qcut

#else  // toolchain cannot target AVX-512: tier absent

namespace qcut {
const SimdKernels* simd_kernels_avx512() { return nullptr; }
}  // namespace qcut

#endif
