// Standard noise channels. Used by the mixed-NME-state experiments (the
// paper's future-work direction, implemented here as an extension) and by
// tests of the channel machinery.
#pragma once

#include "qcut/linalg/channel.hpp"

namespace qcut {

/// Single-qubit depolarizing channel: ρ → (1-p) ρ + p I/2.
Channel depolarizing(Real p);

/// Two-qubit depolarizing channel: ρ → (1-p) ρ + p I/4.
Channel depolarizing2(Real p);

/// Phase damping: off-diagonals shrink by (1-p).
Channel dephasing(Real p);

/// Bit flip with probability p.
Channel bit_flip(Real p);

/// Amplitude damping with decay probability gamma.
Channel amplitude_damping(Real gamma);

/// General Pauli channel: ρ → (1-px-py-pz) ρ + px XρX + py YρY + pz ZρZ.
Channel pauli_channel(Real px, Real py, Real pz);

/// Werner-like noisy NME resource: (1-p)|Φk⟩⟨Φk| + p I/4. The mixed-state
/// resource used by the extension experiments.
Matrix noisy_phi_k(Real k, Real p);

}  // namespace qcut
