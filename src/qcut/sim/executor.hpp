// Circuit execution.
//
// Two modes:
//  * run_shot / run_counts — stochastic shot execution on the Statevector
//    engine (what a quantum device does);
//  * run_branches / run_density — exact enumeration of all measurement
//    branches, giving the precise output distribution / channel action.
//    This is how benches sample cheaply (binomial draws from exact branch
//    probabilities — statistically identical in law to per-shot simulation)
//    and how tests verify channel identities without sampling noise.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qcut/common/rng.hpp"
#include "qcut/sim/circuit.hpp"
#include "qcut/sim/density_matrix.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

struct ShotOutcome {
  std::vector<int> cbits;
  Statevector state;
};

/// Executes one stochastic shot. `initial` overrides the |0..0⟩ start state.
ShotOutcome run_shot(const Circuit& c, Rng& rng);
ShotOutcome run_shot(const Circuit& c, Rng& rng, const Vector& initial);

/// Histogram of classical-bit strings ("c0c1...") over `shots` executions.
std::map<std::string, std::uint64_t> run_counts(const Circuit& c, std::uint64_t shots, Rng& rng);

/// One exact measurement branch: joint probability, classical bits, state.
struct Branch {
  Real prob = 0.0;
  std::vector<int> cbits;
  Statevector state;
};

/// Enumerates all measurement/reset branches exactly. Branches with
/// probability below `prune_tol` are dropped; exactly-zero branches are
/// always dropped (even at prune_tol <= 0) so a p = 0 branch can never be
/// renormalized into NaNs.
std::vector<Branch> run_branches(const Circuit& c, Real prune_tol = 1e-14);
std::vector<Branch> run_branches(const Circuit& c, const Vector& initial,
                                 Real prune_tol = 1e-14);
/// As above with the classical register preset to `initial_cbits` (one entry
/// per cbit) instead of all-zero. Fragment-local execution uses this to fix
/// the bits a fragment reads but another fragment writes.
std::vector<Branch> run_branches(const Circuit& c, const Vector& initial,
                                 const std::vector<int>& initial_cbits,
                                 Real prune_tol = 1e-14);

/// Advances `branches` through ops [op_begin, op_end) of `c` in place: the
/// loop body of run_branches, exposed so enumeration can be *resumed* from a
/// saved intermediate set. The fragment fast path simulates each fragment's
/// unconditioned prefix once and re-runs only the suffix per read-assignment
/// through this hook. Measure/reset ops split branches and prune exactly as
/// run_branches does.
void advance_branches(std::vector<Branch>& branches, const Circuit& c, std::size_t op_begin,
                      std::size_t op_end, Real prune_tol = 1e-14);

/// Exact expectation of an n-qubit Pauli string on the final state, averaged
/// over measurement branches (i.e. the expectation a shot-average converges
/// to).
Real exact_expectation_pauli(const Circuit& c, const std::string& pauli);
Real exact_expectation_pauli(const Circuit& c, const std::string& pauli, const Vector& initial);

/// Exact P(cbit == 1) on the final classical state.
Real exact_prob_cbit(const Circuit& c, int cbit, const Vector& initial);

/// Exact expectation of (-1)^{cbit}: the ±1-valued estimator a Z-basis
/// measurement recorded into `cbit` produces.
Real exact_expectation_cbit_sign(const Circuit& c, int cbit, const Vector& initial);

/// Exact density-operator evolution of the circuit, averaging over all
/// measurement outcomes while honoring classically controlled gates. This is
/// the channel the circuit implements on its input (measurements traced out,
/// qubits kept).
Matrix run_density(const Circuit& c, const Matrix& initial_rho);

/// The channel a circuit implements on a subset of qubits: feeds in basis
/// states, evolves exactly, traces out `discard_qubits`. Input ordering is
/// the circuit's qubit order restricted to the non-discarded qubits.
Channel circuit_channel(const Circuit& c, const std::vector<int>& discard_qubits);

}  // namespace qcut
