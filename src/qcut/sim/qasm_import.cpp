#include "qcut/sim/qasm_import.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

// ---- tokens ----------------------------------------------------------------

enum class Tok {
  kId,      // identifier / keyword
  kInt,     // nonnegative integer literal
  kReal,    // real literal
  kString,  // "..."
  kSym,     // single-char symbol or -> or ==
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;  // spelling (symbol text for kSym)
  Real value = 0.0;  // numeric value for kInt / kReal
  int line = 0;
  int col = 0;
};

[[noreturn]] void fail_at(const std::string& src_name, int line, int col, const std::string& msg) {
  std::ostringstream os;
  os << src_name << ":" << line << ":" << col << ": " << msg;
  throw Error(os.str());
}

[[noreturn]] void fail_at(const std::string& src_name, const Token& t, const std::string& msg) {
  fail_at(src_name, t.line, t.col, msg);
}

std::string describe(const Token& t) {
  switch (t.kind) {
    case Tok::kEof:
      return "end of input";
    case Tok::kString:
      return "string \"" + t.text + "\"";
    default:
      return "'" + t.text + "'";
  }
}

// Splits the whole source into tokens up front; the parser then walks the
// vector (one-token lookahead suffices for this grammar, but the macro
// pre-scan is simpler on a materialized stream).
std::vector<Token> tokenize(const std::string& src, const std::string& src_name) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  // Externally authored files may lead with a UTF-8 BOM; it is whitespace as
  // far as the grammar is concerned.
  std::size_t i = (src.size() >= 3 && src[0] == '\xEF' && src[1] == '\xBB' && src[2] == '\xBF')
                      ? 3
                      : 0;
  const std::size_t n = src.size();
  auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (src[i + j] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += k;
  };
  while (i < n) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') {
        advance(1);
      }
      continue;
    }
    Token t;
    t.line = line;
    t.col = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_')) {
        ++j;
      }
      t.kind = Tok::kId;
      t.text = src.substr(i, j - i);
      advance(j - i);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
        ++j;
      }
      if (j < n && src[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
          ++j;
        }
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) {
          ++k;
        }
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
            ++j;
          }
        }
      }
      t.kind = is_real ? Tok::kReal : Tok::kInt;
      t.text = src.substr(i, j - i);
      // strtod never fails on this spelling and is exact for what it can
      // represent; the C locale-independence concern does not arise because
      // the spelling always uses '.'.
      t.value = std::strtod(t.text.c_str(), nullptr);
      advance(j - i);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"' && src[j] != '\n') {
        ++j;
      }
      if (j >= n || src[j] != '"') {
        fail_at(src_name, line, col, "unterminated string literal");
      }
      t.kind = Tok::kString;
      t.text = src.substr(i + 1, j - i - 1);
      advance(j - i + 1);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      t.kind = Tok::kSym;
      t.text = "->";
      advance(2);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '=' && i + 1 < n && src[i + 1] == '=') {
      t.kind = Tok::kSym;
      t.text = "==";
      advance(2);
      out.push_back(std::move(t));
      continue;
    }
    if (std::string(";,()[]{}+-*/^").find(c) != std::string::npos) {
      t.kind = Tok::kSym;
      t.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(t));
      continue;
    }
    fail_at(src_name, line, col, std::string("unexpected character '") + c + "'");
  }
  Token eof;
  eof.kind = Tok::kEof;
  eof.text = "<eof>";
  eof.line = line;
  eof.col = col;
  out.push_back(std::move(eof));
  return out;
}

// ---- constant-expression AST ----------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kNum, kPi, kParam, kNeg, kBinary, kCall } kind = Kind::kNum;
  Real num = 0.0;       // kNum
  std::string name;     // kParam (parameter reference) / kCall (function name)
  char op = 0;          // kBinary: + - * / ^
  ExprPtr lhs, rhs;     // kBinary (lhs,rhs) / kNeg,kCall (lhs)
  int line = 0, col = 0;
};

Real eval_expr(const Expr& e, const std::map<std::string, Real>& env,
               const std::string& src_name);

/// eval_expr + finiteness check: a divide-by-zero or overflowed angle must
/// not become a NaN gate matrix.
Real eval_param(const Expr& e, const std::map<std::string, Real>& env,
                const std::string& src_name) {
  const Real v = eval_expr(e, env, src_name);
  if (!std::isfinite(v)) {
    fail_at(src_name, e.line, e.col, "parameter expression is not finite");
  }
  return v;
}

Real eval_expr(const Expr& e, const std::map<std::string, Real>& env,
               const std::string& src_name) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      return e.num;
    case Expr::Kind::kPi:
      return kPi;
    case Expr::Kind::kParam: {
      const auto it = env.find(e.name);
      if (it == env.end()) {
        fail_at(src_name, e.line, e.col, "unknown identifier '" + e.name + "' in expression");
      }
      return it->second;
    }
    case Expr::Kind::kNeg:
      return -eval_expr(*e.lhs, env, src_name);
    case Expr::Kind::kCall: {
      const Real x = eval_expr(*e.lhs, env, src_name);
      if (e.name == "sin") return std::sin(x);
      if (e.name == "cos") return std::cos(x);
      if (e.name == "tan") return std::tan(x);
      if (e.name == "exp") return std::exp(x);
      if (e.name == "ln") return std::log(x);
      if (e.name == "sqrt") return std::sqrt(x);
      fail_at(src_name, e.line, e.col, "unknown function '" + e.name + "'");
    }
    case Expr::Kind::kBinary: {
      const Real a = eval_expr(*e.lhs, env, src_name);
      const Real b = eval_expr(*e.rhs, env, src_name);
      switch (e.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
        case '^': return std::pow(a, b);
      }
      break;
    }
  }
  fail_at(src_name, e.line, e.col, "malformed expression");
}

// ---- program structure -----------------------------------------------------

struct Reg {
  bool quantum = true;
  int base = 0;  // flat wire / cbit offset
  int size = 0;
};

/// One op inside a `gate` macro body, kept symbolic until expansion.
struct MacroOp {
  std::string name;  // builtin or earlier macro ("barrier" bodies are dropped at parse)
  std::vector<ExprPtr> params;
  std::vector<std::string> args;  // formal argument names
  int line = 0, col = 0;
};

struct Macro {
  std::vector<std::string> params;
  std::vector<std::string> args;
  std::vector<MacroOp> body;
};

/// A gate operand after register resolution: either one qubit or a whole
/// register to broadcast over.
struct Operand {
  int base = 0;
  int size = 1;       // 1 for an indexed operand
  bool whole = false; // true when the operand names the full register
  int line = 0, col = 0;
};

class Parser {
 public:
  Parser(const std::string& src, std::string src_name)
      : src_name_(std::move(src_name)), toks_(tokenize(src, src_name_)) {
    prescan_registers();
    circ_ = Circuit(n_qubits_ == 0 ? 1 : n_qubits_, n_cbits_);
  }

  Circuit parse() {
    expect_header();
    while (peek().kind != Tok::kEof) {
      statement();
    }
    if (n_qubits_ == 0 && circ_.size() > 0) {
      // Unreachable in practice (ops need operands, operands need qregs);
      // belt and braces for the placeholder 1-wire circuit.
      throw Error(src_name_ + ": program has operations but no qreg");
    }
    return circ_;
  }

 private:
  // -- token helpers ---------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (t.kind != Tok::kEof) {
      ++pos_;
    }
    return t;
  }
  bool at_sym(const char* s) const { return peek().kind == Tok::kSym && peek().text == s; }
  bool at_id(const char* s) const { return peek().kind == Tok::kId && peek().text == s; }
  const Token& expect_sym(const char* s) {
    if (!at_sym(s)) {
      fail_at(src_name_, peek(), std::string("expected '") + s + "', got " + describe(peek()));
    }
    return next();
  }
  Token expect_id(const char* what) {
    if (peek().kind != Tok::kId) {
      fail_at(src_name_, peek(), std::string("expected ") + what + ", got " + describe(peek()));
    }
    return next();
  }
  int expect_int(const char* what) {
    if (peek().kind != Tok::kInt) {
      fail_at(src_name_, peek(), std::string("expected ") + what + ", got " + describe(peek()));
    }
    // The lexed value is a double; casting beyond int range would be UB, so
    // range-check first (no register/index/condition meaningfully exceeds it).
    if (peek().value > 2147483647.0) {
      fail_at(src_name_, peek(), std::string("integer literal out of range for ") + what);
    }
    return static_cast<int>(next().value);
  }

  // -- pre-scan: register sizes must be known before the Circuit exists ------
  void prescan_registers() {
    for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
      const Token& kw = toks_[i];
      if (kw.kind != Tok::kId || (kw.text != "qreg" && kw.text != "creg")) {
        continue;
      }
      // qreg id [ int ] ;  — malformed declarations are diagnosed during the
      // real parse; here we only need the sizes of the well-formed ones.
      if (toks_[i + 1].kind != Tok::kId || !(toks_[i + 2].kind == Tok::kSym &&
                                             toks_[i + 2].text == "[") ||
          toks_[i + 3].kind != Tok::kInt) {
        continue;
      }
      if (toks_[i + 3].value > 2147483647.0) {
        fail_at(src_name_, toks_[i + 3], kw.text + " size out of range");
      }
      const int size = static_cast<int>(toks_[i + 3].value);
      if (size <= 0) {
        fail_at(src_name_, toks_[i + 3], kw.text + " size must be positive");
      }
      // Guard the accumulation itself: `+=` first and compare after would be
      // signed overflow (UB) for sizes near INT_MAX.
      if (kw.text == "qreg") {
        if (size > Circuit::kMaxQubits - n_qubits_) {
          fail_at(src_name_, kw, "total qreg width exceeds the IR cap of " +
                                     std::to_string(Circuit::kMaxQubits) + " qubits");
        }
        n_qubits_ += size;
      } else {
        constexpr int kMaxCbits = 1 << 20;
        if (size > kMaxCbits - n_cbits_) {
          fail_at(src_name_, kw, "total creg width exceeds " + std::to_string(kMaxCbits) +
                                     " bits");
        }
        n_cbits_ += size;
      }
    }
  }

  void expect_header() {
    const Token& kw = peek();
    if (!(kw.kind == Tok::kId && kw.text == "OPENQASM")) {
      fail_at(src_name_, kw, "expected 'OPENQASM 2.0;' header, got " + describe(kw));
    }
    next();
    const Token& ver = peek();
    if (ver.kind != Tok::kReal || ver.text != "2.0") {
      fail_at(src_name_, ver, "unsupported OPENQASM version '" + ver.text + "' (only 2.0)");
    }
    next();
    expect_sym(";");
  }

  // -- statements ------------------------------------------------------------
  void statement() {
    const Token& t = peek();
    if (t.kind != Tok::kId) {
      fail_at(src_name_, t, "expected a statement, got " + describe(t));
    }
    if (t.text == "include") {
      next();
      if (peek().kind != Tok::kString) {
        fail_at(src_name_, peek(), "expected a string after 'include'");
      }
      next();  // the qelib1 gate set is built in; other includes are inert
      expect_sym(";");
      return;
    }
    if (t.text == "qreg" || t.text == "creg") {
      declare_register();
      return;
    }
    if (t.text == "gate") {
      define_macro();
      return;
    }
    if (t.text == "opaque") {
      fail_at(src_name_, t, "'opaque' gates have no body to import");
    }
    qop(/*cond_cbit=*/-1);
  }

  void declare_register() {
    const Token kw = next();  // qreg | creg
    const Token name = expect_id("a register name");
    expect_sym("[");
    const Token& size_tok = peek();
    const int size = expect_int("a register size");
    expect_sym("]");
    expect_sym(";");
    if (size <= 0) {
      fail_at(src_name_, size_tok, kw.text + " size must be positive");
    }
    if (regs_.count(name.text) || macros_.count(name.text)) {
      fail_at(src_name_, name, "redefinition of '" + name.text + "'");
    }
    Reg r;
    r.quantum = (kw.text == "qreg");
    r.size = size;
    r.base = r.quantum ? next_qubit_ : next_cbit_;
    (r.quantum ? next_qubit_ : next_cbit_) += size;
    regs_.emplace(name.text, r);
  }

  // gate name(params)? args { body }
  void define_macro() {
    next();  // gate
    const Token name = expect_id("a gate name");
    if (regs_.count(name.text) || macros_.count(name.text) || is_builtin(name.text)) {
      fail_at(src_name_, name, "redefinition of '" + name.text + "'");
    }
    Macro m;
    if (at_sym("(")) {
      next();
      if (!at_sym(")")) {
        for (;;) {
          const Token p = expect_id("a parameter name");
          // 'pi' and the function names resolve to themselves inside
          // expressions; a parameter spelled that way would be silently
          // shadowed by the constant and import the wrong angle.
          for (const char* reserved : {"pi", "sin", "cos", "tan", "exp", "ln", "sqrt"}) {
            if (p.text == reserved) {
              fail_at(src_name_, p, "'" + p.text + "' is reserved and cannot name a parameter");
            }
          }
          for (const auto& seen : m.params) {
            if (seen == p.text) {
              fail_at(src_name_, p, "duplicate parameter name '" + p.text + "'");
            }
          }
          m.params.push_back(p.text);
          if (!at_sym(",")) {
            break;
          }
          next();
        }
      }
      expect_sym(")");
    }
    for (;;) {
      const Token a = expect_id("a qubit argument name");
      // A duplicate formal would make qmap silently drop all but the last
      // call-site qubit bound to it.
      for (const auto& seen : m.args) {
        if (seen == a.text) {
          fail_at(src_name_, a, "duplicate argument name '" + a.text + "'");
        }
      }
      m.args.push_back(a.text);
      if (!at_sym(",")) {
        break;
      }
      next();
    }
    expect_sym("{");
    while (!at_sym("}")) {
      const Token& op_tok = peek();
      if (op_tok.kind != Tok::kId) {
        fail_at(src_name_, op_tok, "expected a gate operation in body, got " + describe(op_tok));
      }
      if (op_tok.text == "barrier") {
        // Dropped, but parsed strictly: a blind token-skip here would let
        // arbitrary garbage (including text the register prescan counts,
        // like "qreg x[2]") hide inside a body instead of being diagnosed.
        next();
        for (;;) {
          expect_id("a qubit argument");
          if (!at_sym(",")) {
            break;
          }
          next();
        }
        expect_sym(";");
        continue;
      }
      MacroOp mo;
      mo.name = op_tok.text;
      mo.line = op_tok.line;
      mo.col = op_tok.col;
      next();
      if (!is_builtin(mo.name) && !is_prelude(mo.name) && !macros_.count(mo.name)) {
        fail_at(src_name_, op_tok, "unknown gate '" + mo.name + "' in body of '" + name.text +
                                       "' (only builtins and earlier definitions)");
      }
      if (at_sym("(")) {
        next();
        if (!at_sym(")")) {
          for (;;) {
            mo.params.push_back(parse_expr());
            if (!at_sym(",")) {
              break;
            }
            next();
          }
        }
        expect_sym(")");
      }
      for (;;) {
        const Token arg = expect_id("a qubit argument");
        bool known = false;
        for (const auto& a : m.args) {
          known = known || (a == arg.text);
        }
        if (!known) {
          fail_at(src_name_, arg, "'" + arg.text + "' is not an argument of gate '" +
                                      name.text + "'");
        }
        mo.args.push_back(arg.text);
        if (!at_sym(",")) {
          break;
        }
        next();
      }
      expect_sym(";");
      m.body.push_back(std::move(mo));
    }
    next();  // }
    macros_.emplace(name.text, std::move(m));
  }

  // qop: uop | measure | reset | barrier | if (...) qop
  void qop(int cond_cbit) {
    const Token& t = peek();
    if (t.text == "if") {
      if (cond_cbit >= 0) {
        fail_at(src_name_, t, "nested 'if' conditions are not supported");
      }
      next();
      expect_sym("(");
      const Token reg = expect_id("a classical register name");
      expect_sym("==");
      const Token& val_tok = peek();
      const int val = expect_int("an integer condition value");
      expect_sym(")");
      const auto it = regs_.find(reg.text);
      if (it == regs_.end() || it->second.quantum) {
        fail_at(src_name_, reg, "'" + reg.text + "' is not a classical register");
      }
      if (it->second.size != 1) {
        fail_at(src_name_, reg,
                "conditions on multi-bit registers are not representable in the IR "
                "(got " + reg.text + "[" + std::to_string(it->second.size) + "]); "
                "use size-1 registers");
      }
      if (val != 1) {
        fail_at(src_name_, val_tok,
                "only '== 1' conditions are representable in the IR (got == " +
                    std::to_string(val) + ")");
      }
      const Token& inner = peek();
      if (inner.kind == Tok::kId &&
          (inner.text == "measure" || inner.text == "reset" || inner.text == "barrier" ||
           inner.text == "if")) {
        fail_at(src_name_, inner, "'" + inner.text + "' cannot be classically conditioned");
      }
      qop(it->second.base);
      return;
    }
    if (t.text == "measure") {
      next();
      const Operand q = operand(/*quantum=*/true);
      expect_sym("->");
      const Operand c = operand(/*quantum=*/false);
      expect_sym(";");
      if (q.size != c.size) {
        fail_at(src_name_, t, "measure operand widths differ (" + std::to_string(q.size) +
                                  " qubits -> " + std::to_string(c.size) + " bits)");
      }
      for (int j = 0; j < q.size; ++j) {
        circ_.measure(q.base + j, c.base + j);
      }
      return;
    }
    if (t.text == "reset") {
      next();
      const Operand q = operand(/*quantum=*/true);
      expect_sym(";");
      for (int j = 0; j < q.size; ++j) {
        circ_.reset(q.base + j);
      }
      return;
    }
    if (t.text == "barrier") {
      next();
      for (;;) {
        operand(/*quantum=*/true);
        if (!at_sym(",")) {
          break;
        }
        next();
      }
      expect_sym(";");
      return;
    }
    gate_application(cond_cbit);
  }

  // name (exprlist)? operand (, operand)* ;
  void gate_application(int cond_cbit) {
    const Token name = expect_id("a gate name");
    std::vector<Real> params;
    if (at_sym("(")) {
      next();
      if (!at_sym(")")) {
        for (;;) {
          const ExprPtr e = parse_expr();
          params.push_back(eval_param(*e, {}, src_name_));
          if (!at_sym(",")) {
            break;
          }
          next();
        }
      }
      expect_sym(")");
    }
    std::vector<Operand> ops;
    for (;;) {
      ops.push_back(operand(/*quantum=*/true));
      if (!at_sym(",")) {
        break;
      }
      next();
    }
    expect_sym(";");

    // Broadcast: every whole-register operand must share one size; indexed
    // operands are replicated across the broadcast.
    int bsize = 1;
    for (const auto& o : ops) {
      if (!o.whole) {
        continue;
      }
      if (bsize != 1 && o.size != bsize) {
        fail_at(src_name_, name.line, name.col,
                "broadcast register sizes differ (" + std::to_string(bsize) + " vs " +
                    std::to_string(o.size) + ")");
      }
      bsize = o.size;
    }
    for (int j = 0; j < bsize; ++j) {
      std::vector<int> qubits;
      qubits.reserve(ops.size());
      for (const auto& o : ops) {
        qubits.push_back(o.base + (o.whole ? j : 0));
      }
      apply_named(name, params, qubits, cond_cbit);
    }
  }

  // Resolves `id` or `id[idx]` against the declared registers.
  Operand operand(bool quantum) {
    const Token name = expect_id(quantum ? "a qubit operand" : "a classical operand");
    const auto it = regs_.find(name.text);
    if (it == regs_.end()) {
      fail_at(src_name_, name, "unknown register '" + name.text + "'");
    }
    const Reg& r = it->second;
    if (r.quantum != quantum) {
      fail_at(src_name_, name, "'" + name.text + "' is a " +
                                   (r.quantum ? "quantum" : "classical") +
                                   " register; expected the other kind here");
    }
    Operand o;
    o.line = name.line;
    o.col = name.col;
    if (at_sym("[")) {
      next();
      const Token& idx_tok = peek();
      const int idx = expect_int("a register index");
      expect_sym("]");
      if (idx < 0 || idx >= r.size) {
        fail_at(src_name_, idx_tok, "index " + std::to_string(idx) + " out of range for '" +
                                        name.text + "[" + std::to_string(r.size) + "]'");
      }
      o.base = r.base + idx;
      o.size = 1;
      o.whole = false;
    } else {
      o.base = r.base;
      o.size = r.size;
      o.whole = r.size > 1;
    }
    return o;
  }

  // -- gate semantics --------------------------------------------------------
  static bool is_builtin(const std::string& name) {
    static const char* kNames[] = {"h",  "x",  "y",  "z",    "s",  "sdg", "t",  "tdg", "id",
                                   "cx", "CX", "cz", "swap", "rx", "ry",  "rz", "u1",  "u2",
                                   "u3", "U"};
    for (const char* n : kNames) {
      if (name == n) {
        return true;
      }
    }
    return false;
  }

  /// qelib1 composites the importer predefines so corpus circuits need no
  /// in-file macro bodies for them. Deliberately NOT builtins: a program's
  /// own `gate ccx ...` definition shadows the prelude (apply_named checks
  /// macros first, and define_macro does not reject the name).
  static bool is_prelude(const std::string& name) {
    return name == "ccx" || name == "cswap";
  }

  void check_arity(const Token& name, const std::vector<int>& qubits, std::size_t n_qubits,
                   const std::vector<Real>& params, std::size_t n_params) {
    if (qubits.size() != n_qubits) {
      fail_at(src_name_, name, "'" + name.text + "' expects " + std::to_string(n_qubits) +
                                   " qubit(s), got " + std::to_string(qubits.size()));
    }
    if (params.size() != n_params) {
      fail_at(src_name_, name, "'" + name.text + "' expects " + std::to_string(n_params) +
                                   " parameter(s), got " + std::to_string(params.size()));
    }
  }

  void emit(const Token& name, const Matrix& u, const std::vector<int>& qubits,
            std::string label, int cond_cbit) {
    // The builder validates ranges and duplicate qubits; re-brand its
    // diagnostics with the source position.
    try {
      if (cond_cbit >= 0) {
        circ_.gate_if(cond_cbit, u, qubits, std::move(label) + "?");
      } else {
        circ_.gate(u, qubits, std::move(label));
      }
    } catch (const Error& e) {
      fail_at(src_name_, name, std::string("invalid operands: ") + e.what());
    }
  }

  void apply_named(const Token& name, const std::vector<Real>& p, const std::vector<int>& qubits,
                   int cond_cbit) {
    const std::string& g = name.text;
    if (const auto it = macros_.find(g); it != macros_.end()) {
      expand_macro(name, it->second, p, qubits, cond_cbit);
      return;
    }
    if (g == "id") {
      check_arity(name, qubits, 1, p, 0);
      return;  // explicit identity: semantically empty, dropped
    }
    if (g == "ccx") {
      check_arity(name, qubits, 3, p, 0);
      emit(name, gates::ccx(), qubits, "CCX", cond_cbit);
      return;
    }
    if (g == "cswap") {
      check_arity(name, qubits, 3, p, 0);
      emit(name, gates::cswap(), qubits, "CSWAP", cond_cbit);
      return;
    }
    struct Named {
      const char* name;
      const Matrix& (*fn)();
      const char* label;
      std::size_t arity;
    };
    static const Named kFixed[] = {
        {"h", gates::h, "H", 1},        {"x", gates::x, "X", 1},
        {"y", gates::y, "Y", 1},        {"z", gates::z, "Z", 1},
        {"s", gates::s, "S", 1},        {"sdg", gates::sdg, "Sdg", 1},
        {"t", gates::t, "T", 1},        {"tdg", gates::tdg, "Tdg", 1},
        {"cx", gates::cx, "CX", 2},     {"CX", gates::cx, "CX", 2},
        {"cz", gates::cz, "CZ", 2},     {"swap", gates::swap, "SWAP", 2},
    };
    for (const auto& f : kFixed) {
      if (g == f.name) {
        check_arity(name, qubits, f.arity, p, 0);
        emit(name, f.fn(), qubits, f.label, cond_cbit);
        return;
      }
    }
    if (g == "rx" || g == "ry" || g == "rz" || g == "u1") {
      check_arity(name, qubits, 1, p, 1);
      if (g == "rx") emit(name, gates::rx(p[0]), qubits, "Rx", cond_cbit);
      if (g == "ry") emit(name, gates::ry(p[0]), qubits, "Ry", cond_cbit);
      if (g == "rz") emit(name, gates::rz(p[0]), qubits, "Rz", cond_cbit);
      if (g == "u1") emit(name, gates::phase(p[0]), qubits, "U1", cond_cbit);
      return;
    }
    if (g == "u2") {
      check_arity(name, qubits, 1, p, 2);
      emit(name, gates::u3(kPi / 2.0, p[0], p[1]), qubits, "U2", cond_cbit);
      return;
    }
    if (g == "u3" || g == "U") {
      check_arity(name, qubits, 1, p, 3);
      emit(name, gates::u3(p[0], p[1], p[2]), qubits, "U3", cond_cbit);
      return;
    }
    fail_at(src_name_, name, "unknown gate '" + g + "' (not a builtin or defined macro)");
  }

  void expand_macro(const Token& site, const Macro& m, const std::vector<Real>& params,
                    const std::vector<int>& qubits, int cond_cbit) {
    if (params.size() != m.params.size() || qubits.size() != m.args.size()) {
      fail_at(src_name_, site, "'" + site.text + "' expects " + std::to_string(m.params.size()) +
                                   " parameter(s) and " + std::to_string(m.args.size()) +
                                   " qubit(s), got " + std::to_string(params.size()) + " and " +
                                   std::to_string(qubits.size()));
    }
    std::map<std::string, Real> env;
    std::map<std::string, int> qmap;
    for (std::size_t i = 0; i < m.params.size(); ++i) {
      env[m.params[i]] = params[i];
    }
    for (std::size_t i = 0; i < m.args.size(); ++i) {
      qmap[m.args[i]] = qubits[i];
    }
    for (const auto& mo : m.body) {
      std::vector<Real> sub_params;
      sub_params.reserve(mo.params.size());
      for (const auto& e : mo.params) {
        sub_params.push_back(eval_param(*e, env, src_name_));
      }
      std::vector<int> sub_qubits;
      sub_qubits.reserve(mo.args.size());
      for (const auto& a : mo.args) {
        sub_qubits.push_back(qmap.at(a));
      }
      Token inner = site;  // report errors at the call site
      inner.text = mo.name;
      // A conditioned macro call conditions every expanded op: bodies are
      // unitary-only, so the classical bit cannot change mid-expansion.
      apply_named(inner, sub_params, sub_qubits, cond_cbit);
    }
  }

  // -- expressions (precedence climbing) ------------------------------------
  ExprPtr parse_expr() { return parse_additive(); }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at_sym("+") || at_sym("-")) {
      const Token op = next();
      ExprPtr rhs = parse_multiplicative();
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at_sym("*") || at_sym("/")) {
      const Token op = next();
      ExprPtr rhs = parse_unary();
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at_sym("-")) {
      const Token op = next();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNeg;
      e->lhs = parse_unary();
      e->line = op.line;
      e->col = op.col;
      return e;
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_atom();
    if (at_sym("^")) {  // right-associative
      const Token op = next();
      ExprPtr exp = parse_unary();
      base = make_binary(op, std::move(base), std::move(exp));
    }
    return base;
  }

  ExprPtr parse_atom() {
    const Token& t = peek();
    auto e = std::make_unique<Expr>();
    e->line = t.line;
    e->col = t.col;
    if (t.kind == Tok::kInt || t.kind == Tok::kReal) {
      next();
      e->kind = Expr::Kind::kNum;
      e->num = t.value;
      return e;
    }
    if (t.kind == Tok::kId) {
      const Token id = next();
      if (id.text == "pi") {
        e->kind = Expr::Kind::kPi;
        return e;
      }
      if (at_sym("(")) {
        next();
        e->kind = Expr::Kind::kCall;
        e->name = id.text;
        e->lhs = parse_expr();
        expect_sym(")");
        return e;
      }
      e->kind = Expr::Kind::kParam;
      e->name = id.text;
      return e;
    }
    if (t.kind == Tok::kSym && t.text == "(") {
      next();
      ExprPtr inner = parse_expr();
      expect_sym(")");
      return inner;
    }
    fail_at(src_name_, t, "expected an expression, got " + describe(t));
  }

  static ExprPtr make_binary(const Token& op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op.text[0];
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->line = op.line;
    e->col = op.col;
    return e;
  }

  std::string src_name_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int n_qubits_ = 0;
  int n_cbits_ = 0;
  int next_qubit_ = 0;
  int next_cbit_ = 0;
  std::map<std::string, Reg> regs_;
  std::map<std::string, Macro> macros_;
  Circuit circ_;
};

bool vector_equal_up_to_phase(const Vector& a, const Vector& b, Real tol) {
  if (a.size() != b.size()) {
    return false;
  }
  std::size_t am = 0;
  Real best = -1.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i]) > best) {
      best = std::abs(a[i]);
      am = i;
    }
  }
  if (best <= tol) {
    return approx_equal(a, b, tol);
  }
  const Cplx phase = b[am] / a[am];
  if (std::abs(std::abs(phase) - 1.0) > tol) {
    return false;
  }
  return approx_equal(phase * a, b, tol);
}

}  // namespace

bool matrix_equal_up_to_phase(const Matrix& a, const Matrix& b, Real tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  // Anchor the phase at A's largest entry (unitaries always have one with
  // magnitude >= 1/sqrt(dim), far above tol).
  Index ar = 0, ac = 0;
  Real best = -1.0;
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c)) > best) {
        best = std::abs(a(r, c));
        ar = r;
        ac = c;
      }
    }
  }
  if (best <= tol) {
    return a.approx_equal(b, tol);
  }
  const Cplx phase = b(ar, ac) / a(ar, ac);
  if (std::abs(std::abs(phase) - 1.0) > tol) {
    return false;
  }
  return (phase * a).approx_equal(b, tol);
}

Circuit import_qasm(const std::string& source, const std::string& source_name) {
  return Parser(source, source_name).parse();
}

Circuit import_qasm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("import_qasm_file: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return import_qasm(buf.str(), path);
}

Circuit strip_trailing_measurements(const Circuit& c, int* n_stripped) {
  std::size_t keep = c.size();
  while (keep > 0 && c.ops()[keep - 1].kind == OpKind::kMeasure) {
    --keep;
  }
  Circuit out(c.n_qubits(), c.n_cbits());
  for (std::size_t i = 0; i < keep; ++i) {
    const Operation& op = c.ops()[i];
    switch (op.kind) {
      case OpKind::kUnitary:
        out.gate(op.matrix, op.qubits, op.label);
        break;
      case OpKind::kCondUnitary:
        out.gate_if(op.cbit, op.matrix, op.qubits, op.label);
        break;
      case OpKind::kMeasure:
        out.measure(op.qubits[0], op.cbit);
        break;
      case OpKind::kReset:
        out.reset(op.qubits[0]);
        break;
      case OpKind::kInitialize:
        out.initialize(op.qubits, op.init_state, op.label);
        break;
    }
  }
  if (n_stripped != nullptr) {
    *n_stripped = static_cast<int>(c.size() - keep);
  }
  return out;
}

bool circuits_equivalent(const Circuit& a, const Circuit& b, Real tol, std::string* why) {
  const auto mismatch = [&](const std::string& reason) {
    if (why != nullptr) {
      *why = reason;
    }
    return false;
  };
  if (a.n_qubits() != b.n_qubits()) {
    return mismatch("qubit counts differ: " + std::to_string(a.n_qubits()) + " vs " +
                    std::to_string(b.n_qubits()));
  }
  if (a.n_cbits() != b.n_cbits()) {
    return mismatch("cbit counts differ: " + std::to_string(a.n_cbits()) + " vs " +
                    std::to_string(b.n_cbits()));
  }
  if (a.size() != b.size()) {
    return mismatch("op counts differ: " + std::to_string(a.size()) + " vs " +
                    std::to_string(b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Operation& oa = a.ops()[i];
    const Operation& ob = b.ops()[i];
    const std::string at = "op " + std::to_string(i) + " ('" + oa.label + "' vs '" + ob.label +
                           "'): ";
    if (oa.kind != ob.kind) {
      return mismatch(at + "kinds differ");
    }
    if (oa.qubits != ob.qubits) {
      return mismatch(at + "qubit lists differ");
    }
    if (oa.cbit != ob.cbit) {
      return mismatch(at + "classical bits differ");
    }
    switch (oa.kind) {
      case OpKind::kUnitary:
      case OpKind::kCondUnitary:
        if (!matrix_equal_up_to_phase(oa.matrix, ob.matrix, tol)) {
          return mismatch(at + "unitaries differ beyond a global phase");
        }
        break;
      case OpKind::kInitialize:
        if (!vector_equal_up_to_phase(oa.init_state, ob.init_state, tol)) {
          return mismatch(at + "initialize states differ beyond a global phase");
        }
        break;
      case OpKind::kMeasure:
      case OpKind::kReset:
        break;
    }
  }
  return true;
}

}  // namespace qcut
