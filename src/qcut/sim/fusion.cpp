#include "qcut/sim/fusion.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "qcut/obs/metrics.hpp"

namespace qcut {

namespace {

/// Exact identity test (same spirit as classify_gate's exact entry tests):
/// only a matrix that is bit-for-bit the identity may be elided — a
/// global-phase identity would shift amplitudes.
bool is_exact_identity(const Matrix& u) {
  for (Index r = 0; r < u.rows(); ++r) {
    for (Index c = 0; c < u.cols(); ++c) {
      if (u(r, c) != (r == c ? Cplx{1.0, 0.0} : Cplx{0.0, 0.0})) {
        return false;
      }
    }
  }
  return true;
}

std::string fused_label(const std::string& later, const std::string& earlier) {
  std::string l = later + "*" + earlier;
  if (l.size() > 24) {
    l.resize(21);
    l += "...";
  }
  return l;
}

/// Pass 1: single-qubit run composition. Emits into `out` (op list with the
/// original ops' classifications preserved; composed gates are re-classified
/// by Circuit::gate when pass 2 rebuilds the circuit).
class OneQubitFuser {
 public:
  OneQubitFuser(int n_qubits, FusionStats& stats)
      : pending_(static_cast<std::size_t>(n_qubits)), stats_(stats) {}

  void feed(const Operation& op, std::vector<Operation>& out) {
    if (op.kind == OpKind::kUnitary && op.qubits.size() == 1) {
      Pending& p = pending_[static_cast<std::size_t>(op.qubits[0])];
      if (p.active) {
        p.u = op.matrix * p.u;  // op is applied after the pending run
        p.label = fused_label(op.label, p.label);
        ++stats_.fused_1q;
      } else {
        p.active = true;
        p.u = op.matrix;
        p.label = op.label;
      }
      return;
    }
    if (op.kind == OpKind::kUnitary) {
      // Multi-qubit unitary: flush only the wires it touches; pending gates
      // on other wires commute with it exactly and may keep accumulating.
      for (const int q : op.qubits) {
        flush_wire(q, out);
      }
    } else {
      // Branch points (measure/reset) and classically coupled ops
      // (conditional, initialize) flush everything: unitaries are cheapest
      // applied before the state branches, and the trailing-measure run must
      // stay trailing.
      flush_all(out);
    }
    out.push_back(op);
  }

  void flush_all(std::vector<Operation>& out) {
    for (std::size_t q = 0; q < pending_.size(); ++q) {
      flush_wire(static_cast<int>(q), out);
    }
  }

 private:
  struct Pending {
    bool active = false;
    Matrix u;
    std::string label;
  };

  void flush_wire(int q, std::vector<Operation>& out) {
    Pending& p = pending_[static_cast<std::size_t>(q)];
    if (!p.active) {
      return;
    }
    p.active = false;
    if (is_exact_identity(p.u)) {
      ++stats_.dropped_identity;
      return;
    }
    Operation op;
    op.kind = OpKind::kUnitary;
    op.qubits = {q};
    op.matrix = std::move(p.u);
    op.label = std::move(p.label);
    op.gclass = classify_gate(op.matrix);
    out.push_back(std::move(op));
  }

  std::vector<Pending> pending_;
  FusionStats& stats_;
};

bool is_unconditioned_diagonal(const Operation& op) {
  return op.kind == OpKind::kUnitary && op.gclass.structure == GateStructure::kDiagonal;
}

bool is_monomial_unitary(const Operation& op) {
  return op.kind == OpKind::kUnitary && (op.gclass.structure == GateStructure::kDiagonal ||
                                         op.gclass.structure == GateStructure::kPermutation);
}

/// Column form of a product of diagonal / permutation (monomial) gates over a
/// small wire set: column s of the composed operator holds `val[s]` at row
/// `rowof[s]`. Monomial matrices are closed under products, so composing one
/// more gate never leaves this form — and the product is itself diagonal
/// exactly when rowof is the identity (e.g. x·diag·x), a pure permutation
/// exactly when every val is 1 (e.g. x·cx).
struct MonomialState {
  std::vector<int> wires;  ///< wires[0] is the matrix HIGH bit (engine order)
  std::vector<Index> rowof;
  Vector val;

  void init(const std::vector<int>& q) {
    wires = q;
    const std::size_t dim = std::size_t{1} << wires.size();
    rowof.resize(dim);
    val.assign(dim, Cplx{1.0, 0.0});
    for (std::size_t s = 0; s < dim; ++s) {
      rowof[s] = static_cast<Index>(s);
    }
  }

  /// Full-space bit position of `qubit` (wires[0] highest), -1 if absent.
  int bit_of(int qubit) const {
    for (std::size_t j = 0; j < wires.size(); ++j) {
      if (wires[j] == qubit) {
        return static_cast<int>(wires.size() - 1 - j);
      }
    }
    return -1;
  }

  bool covers(const std::vector<int>& q) const {
    for (const int qb : q) {
      if (bit_of(qb) < 0) {
        return false;
      }
    }
    return true;
  }

  /// Re-embeds the composed form into the larger wire set `q` (a superset of
  /// the current wires), adopting q's bit order.
  void expand(const std::vector<int>& q) {
    MonomialState old = *this;
    init(q);
    const int k = static_cast<int>(old.wires.size());
    std::vector<int> bpos(old.wires.size());
    for (std::size_t j = 0; j < old.wires.size(); ++j) {
      bpos[j] = bit_of(old.wires[j]);
    }
    for (std::size_t s = 0; s < rowof.size(); ++s) {
      std::size_t sub = 0;
      for (int j = 0; j < k; ++j) {
        sub |= ((s >> bpos[static_cast<std::size_t>(j)]) & 1u) << (k - 1 - j);
      }
      const auto r = static_cast<std::size_t>(old.rowof[sub]);
      std::size_t row = s;
      for (int j = 0; j < k; ++j) {
        const std::size_t bit = std::size_t{1} << bpos[static_cast<std::size_t>(j)];
        row = ((r >> (k - 1 - j)) & 1u) ? (row | bit) : (row & ~bit);
      }
      rowof[s] = static_cast<Index>(row);
      val[s] = old.val[sub];
    }
  }

  /// Composes a later monomial op (qubits ⊆ wires) into the form.
  void apply(const Operation& op) {
    const int k = static_cast<int>(op.qubits.size());
    const std::size_t subdim = std::size_t{1} << k;
    // The op's own column form: column c → a_val at row a_row. Both gate
    // structures guarantee exactly one nonzero per column.
    std::vector<std::size_t> a_row(subdim, 0);
    Vector a_val(subdim, Cplx{1.0, 0.0});
    for (std::size_t c = 0; c < subdim; ++c) {
      for (std::size_t r = 0; r < subdim; ++r) {
        const Cplx v = op.matrix(static_cast<Index>(r), static_cast<Index>(c));
        if (v != Cplx{0.0, 0.0}) {
          a_row[c] = r;
          a_val[c] = v;
          break;
        }
      }
    }
    std::vector<int> bpos(op.qubits.size());
    for (std::size_t j = 0; j < op.qubits.size(); ++j) {
      bpos[j] = bit_of(op.qubits[j]);
    }
    for (std::size_t s = 0; s < rowof.size(); ++s) {
      auto cur = static_cast<std::size_t>(rowof[s]);
      std::size_t sub = 0;
      for (int j = 0; j < k; ++j) {
        sub |= ((cur >> bpos[static_cast<std::size_t>(j)]) & 1u) << (k - 1 - j);
      }
      for (int j = 0; j < k; ++j) {
        const std::size_t bit = std::size_t{1} << bpos[static_cast<std::size_t>(j)];
        cur = ((a_row[sub] >> (k - 1 - j)) & 1u) ? (cur | bit) : (cur & ~bit);
      }
      rowof[s] = static_cast<Index>(cur);
      val[s] *= a_val[sub];
    }
  }

  bool is_diagonal() const {
    for (std::size_t s = 0; s < rowof.size(); ++s) {
      if (rowof[s] != static_cast<Index>(s)) {
        return false;
      }
    }
    return true;
  }

  bool is_permutation() const {
    for (const Cplx& v : val) {
      if (v != Cplx{1.0, 0.0}) {
        return false;
      }
    }
    return true;
  }

  Matrix to_matrix() const {
    const auto dim = static_cast<Index>(rowof.size());
    Matrix m(dim, dim);
    for (std::size_t s = 0; s < rowof.size(); ++s) {
      m(rowof[s], static_cast<Index>(s)) = val[s];
    }
    return m;
  }
};

/// Pass 1.5: collapse contiguous runs of diagonal / permutation gates on one
/// small wire cluster through the monomial column form. This is what merges
/// ACROSS the diagonal/permutation boundary — x·diag·x is again diagonal,
/// cx·cx cancels outright — patterns the diagonal-only pass 2 cannot see
/// because a permutation breaks its runs. A run extends while the next op's
/// wires stay inside the cluster (or grow it, 1q seed → containing gate, up
/// to 3 wires); it is rewritten only when the composed product classifies
/// better than its pieces (diagonal, permutation, or the exact identity) —
/// a generic monomial product keeps the original structured ops instead.
void merge_monomial_runs(std::vector<Operation>& ops, FusionStats& stats) {
  std::vector<Operation> out;
  out.reserve(ops.size());
  std::size_t i = 0;
  while (i < ops.size()) {
    if (!is_monomial_unitary(ops[i])) {
      out.push_back(std::move(ops[i]));
      ++i;
      continue;
    }
    MonomialState st;
    st.init(ops[i].qubits);
    st.apply(ops[i]);
    std::string label = ops[i].label;
    // Longest prefix of the run whose product is still diagonal/permutation.
    std::size_t best_count = 1;
    MonomialState best_state = st;
    std::string best_label = label;
    std::size_t count = 1;
    for (std::size_t j = i + 1; j < ops.size() && is_monomial_unitary(ops[j]); ++j) {
      const std::vector<int>& q = ops[j].qubits;
      const bool q_covers_wires =
          std::all_of(st.wires.begin(), st.wires.end(), [&q](const int w) {
            return std::find(q.begin(), q.end(), w) != q.end();
          });
      if (st.covers(q)) {
        st.apply(ops[j]);
      } else if (q.size() <= 3 && q_covers_wires) {
        st.expand(q);
        st.apply(ops[j]);
      } else {
        break;
      }
      label = fused_label(ops[j].label, label);
      ++count;
      if (st.is_diagonal() || st.is_permutation()) {
        best_count = count;
        best_state = st;
        best_label = label;
      }
    }
    if (best_count < 2) {
      out.push_back(std::move(ops[i]));
      ++i;
      continue;
    }
    stats.merged_monomial += best_count - 1;
    i += best_count;
    if (best_state.is_diagonal() && best_state.is_permutation()) {
      ++stats.dropped_identity;  // the product is exactly the identity
      continue;
    }
    Operation op;
    op.kind = OpKind::kUnitary;
    op.qubits = best_state.wires;
    op.matrix = best_state.to_matrix();
    op.label = std::move(best_label);
    op.gclass = classify_gate(op.matrix);
    out.push_back(std::move(op));
  }
  ops = std::move(out);
}

/// Pass 2: merge each maximal run of consecutive unconditioned diagonal
/// unitaries, grouping by identical qubit list (diagonal gates commute with
/// one another regardless of wires, so reordering within the run is exact).
/// Merged groups re-enter through Circuit::gate and are re-classified —
/// cu1·cu1 stays a sparse phase, rz·rz† collapses to the identity and is
/// dropped. Everything else replays via push_op, keeping its classification.
void emit_diagonal_merged(const std::vector<Operation>& ops, Circuit& out, FusionStats& stats) {
  std::size_t i = 0;
  while (i < ops.size()) {
    if (!is_unconditioned_diagonal(ops[i])) {
      out.push_op(ops[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < ops.size() && is_unconditioned_diagonal(ops[j])) {
      ++j;
    }
    // Group [i, j) by qubit list, first-occurrence order.
    std::vector<char> used(j - i, 0);
    for (std::size_t a = i; a < j; ++a) {
      if (used[a - i]) {
        continue;
      }
      Vector diag = ops[a].gclass.diag;
      std::string label = ops[a].label;
      std::size_t merged = 0;
      for (std::size_t b = a + 1; b < j; ++b) {
        if (!used[b - i] && ops[b].qubits == ops[a].qubits) {
          used[b - i] = 1;
          ++merged;
          const Vector& d = ops[b].gclass.diag;
          for (std::size_t e = 0; e < diag.size(); ++e) {
            diag[e] *= d[e];
          }
          label = fused_label(ops[b].label, label);
        }
      }
      if (merged == 0) {
        out.push_op(ops[a]);
        continue;
      }
      stats.merged_diagonal += merged;
      if (std::all_of(diag.begin(), diag.end(),
                      [](const Cplx& d) { return d == Cplx{1.0, 0.0}; })) {
        ++stats.dropped_identity;
        continue;
      }
      out.gate(Matrix::diag(diag), ops[a].qubits, label);
    }
    i = j;
  }
}

}  // namespace

Circuit fuse_range(const Circuit& c, std::size_t begin, std::size_t end, FusionStats* stats) {
  QCUT_CHECK(begin <= end && end <= c.size(), "fuse_range: op range out of bounds");
  // Always tally into a fresh local so the metrics registry gets exactly this
  // call's delta even when the caller accumulates across many calls.
  FusionStats st;
  st.ops_before += end - begin;

  std::vector<Operation> pass1;
  pass1.reserve(end - begin);
  OneQubitFuser fuser(c.n_qubits(), st);
  for (std::size_t t = begin; t < end; ++t) {
    fuser.feed(c.ops()[t], pass1);
  }
  fuser.flush_all(pass1);
  merge_monomial_runs(pass1, st);

  Circuit out(c.n_qubits(), c.n_cbits());
  emit_diagonal_merged(pass1, out, st);
  st.ops_after += out.size();

  obs::count(obs::Counter::kFusionOpsBefore, st.ops_before);
  obs::count(obs::Counter::kFusionOpsAfter, st.ops_after);
  obs::count(obs::Counter::kFusionFused1q, st.fused_1q);
  obs::count(obs::Counter::kFusionMergedDiagonal, st.merged_diagonal);
  obs::count(obs::Counter::kFusionMergedMonomial, st.merged_monomial);
  obs::count(obs::Counter::kFusionDroppedIdentity, st.dropped_identity);
  if (stats != nullptr) {
    *stats += st;
  }
  return out;
}

Circuit fuse_circuit(const Circuit& c, FusionStats* stats) {
  return fuse_range(c, 0, c.size(), stats);
}

}  // namespace qcut
