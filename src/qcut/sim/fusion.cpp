#include "qcut/sim/fusion.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "qcut/obs/metrics.hpp"

namespace qcut {

namespace {

/// Exact identity test (same spirit as classify_gate's exact entry tests):
/// only a matrix that is bit-for-bit the identity may be elided — a
/// global-phase identity would shift amplitudes.
bool is_exact_identity(const Matrix& u) {
  for (Index r = 0; r < u.rows(); ++r) {
    for (Index c = 0; c < u.cols(); ++c) {
      if (u(r, c) != (r == c ? Cplx{1.0, 0.0} : Cplx{0.0, 0.0})) {
        return false;
      }
    }
  }
  return true;
}

std::string fused_label(const std::string& later, const std::string& earlier) {
  std::string l = later + "*" + earlier;
  if (l.size() > 24) {
    l.resize(21);
    l += "...";
  }
  return l;
}

/// Pass 1: single-qubit run composition. Emits into `out` (op list with the
/// original ops' classifications preserved; composed gates are re-classified
/// by Circuit::gate when pass 2 rebuilds the circuit).
class OneQubitFuser {
 public:
  OneQubitFuser(int n_qubits, FusionStats& stats)
      : pending_(static_cast<std::size_t>(n_qubits)), stats_(stats) {}

  void feed(const Operation& op, std::vector<Operation>& out) {
    if (op.kind == OpKind::kUnitary && op.qubits.size() == 1) {
      Pending& p = pending_[static_cast<std::size_t>(op.qubits[0])];
      if (p.active) {
        p.u = op.matrix * p.u;  // op is applied after the pending run
        p.label = fused_label(op.label, p.label);
        ++stats_.fused_1q;
      } else {
        p.active = true;
        p.u = op.matrix;
        p.label = op.label;
      }
      return;
    }
    if (op.kind == OpKind::kUnitary) {
      // Multi-qubit unitary: flush only the wires it touches; pending gates
      // on other wires commute with it exactly and may keep accumulating.
      for (const int q : op.qubits) {
        flush_wire(q, out);
      }
    } else {
      // Branch points (measure/reset) and classically coupled ops
      // (conditional, initialize) flush everything: unitaries are cheapest
      // applied before the state branches, and the trailing-measure run must
      // stay trailing.
      flush_all(out);
    }
    out.push_back(op);
  }

  void flush_all(std::vector<Operation>& out) {
    for (std::size_t q = 0; q < pending_.size(); ++q) {
      flush_wire(static_cast<int>(q), out);
    }
  }

 private:
  struct Pending {
    bool active = false;
    Matrix u;
    std::string label;
  };

  void flush_wire(int q, std::vector<Operation>& out) {
    Pending& p = pending_[static_cast<std::size_t>(q)];
    if (!p.active) {
      return;
    }
    p.active = false;
    if (is_exact_identity(p.u)) {
      ++stats_.dropped_identity;
      return;
    }
    Operation op;
    op.kind = OpKind::kUnitary;
    op.qubits = {q};
    op.matrix = std::move(p.u);
    op.label = std::move(p.label);
    op.gclass = classify_gate(op.matrix);
    out.push_back(std::move(op));
  }

  std::vector<Pending> pending_;
  FusionStats& stats_;
};

bool is_unconditioned_diagonal(const Operation& op) {
  return op.kind == OpKind::kUnitary && op.gclass.structure == GateStructure::kDiagonal;
}

/// Pass 2: merge each maximal run of consecutive unconditioned diagonal
/// unitaries, grouping by identical qubit list (diagonal gates commute with
/// one another regardless of wires, so reordering within the run is exact).
/// Merged groups re-enter through Circuit::gate and are re-classified —
/// cu1·cu1 stays a sparse phase, rz·rz† collapses to the identity and is
/// dropped. Everything else replays via push_op, keeping its classification.
void emit_diagonal_merged(const std::vector<Operation>& ops, Circuit& out, FusionStats& stats) {
  std::size_t i = 0;
  while (i < ops.size()) {
    if (!is_unconditioned_diagonal(ops[i])) {
      out.push_op(ops[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < ops.size() && is_unconditioned_diagonal(ops[j])) {
      ++j;
    }
    // Group [i, j) by qubit list, first-occurrence order.
    std::vector<char> used(j - i, 0);
    for (std::size_t a = i; a < j; ++a) {
      if (used[a - i]) {
        continue;
      }
      Vector diag = ops[a].gclass.diag;
      std::string label = ops[a].label;
      std::size_t merged = 0;
      for (std::size_t b = a + 1; b < j; ++b) {
        if (!used[b - i] && ops[b].qubits == ops[a].qubits) {
          used[b - i] = 1;
          ++merged;
          const Vector& d = ops[b].gclass.diag;
          for (std::size_t e = 0; e < diag.size(); ++e) {
            diag[e] *= d[e];
          }
          label = fused_label(ops[b].label, label);
        }
      }
      if (merged == 0) {
        out.push_op(ops[a]);
        continue;
      }
      stats.merged_diagonal += merged;
      if (std::all_of(diag.begin(), diag.end(),
                      [](const Cplx& d) { return d == Cplx{1.0, 0.0}; })) {
        ++stats.dropped_identity;
        continue;
      }
      out.gate(Matrix::diag(diag), ops[a].qubits, label);
    }
    i = j;
  }
}

}  // namespace

Circuit fuse_range(const Circuit& c, std::size_t begin, std::size_t end, FusionStats* stats) {
  QCUT_CHECK(begin <= end && end <= c.size(), "fuse_range: op range out of bounds");
  // Always tally into a fresh local so the metrics registry gets exactly this
  // call's delta even when the caller accumulates across many calls.
  FusionStats st;
  st.ops_before += end - begin;

  std::vector<Operation> pass1;
  pass1.reserve(end - begin);
  OneQubitFuser fuser(c.n_qubits(), st);
  for (std::size_t t = begin; t < end; ++t) {
    fuser.feed(c.ops()[t], pass1);
  }
  fuser.flush_all(pass1);

  Circuit out(c.n_qubits(), c.n_cbits());
  emit_diagonal_merged(pass1, out, st);
  st.ops_after += out.size();

  obs::count(obs::Counter::kFusionOpsBefore, st.ops_before);
  obs::count(obs::Counter::kFusionOpsAfter, st.ops_after);
  obs::count(obs::Counter::kFusionFused1q, st.fused_1q);
  obs::count(obs::Counter::kFusionMergedDiagonal, st.merged_diagonal);
  obs::count(obs::Counter::kFusionDroppedIdentity, st.dropped_identity);
  if (stats != nullptr) {
    *stats += st;
  }
  return out;
}

Circuit fuse_circuit(const Circuit& c, FusionStats* stats) {
  return fuse_range(c, 0, c.size(), stats);
}

}  // namespace qcut
