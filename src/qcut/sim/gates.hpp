// Standard gate matrices. Conventions match Nielsen & Chuang; the controlled
// gates use big-endian qubit order (first listed qubit = control = most
// significant bit), consistent with linalg::embed.
#pragma once

#include "qcut/linalg/matrix.hpp"

namespace qcut::gates {

const Matrix& i2();
const Matrix& h();
const Matrix& x();
const Matrix& y();
const Matrix& z();
const Matrix& s();
const Matrix& sdg();
const Matrix& t();
const Matrix& tdg();

Matrix rx(Real theta);
Matrix ry(Real theta);
Matrix rz(Real theta);
Matrix phase(Real lambda);
/// General single-qubit gate U(θ, φ, λ) in the OpenQASM convention.
Matrix u3(Real theta, Real phi, Real lambda);

const Matrix& cx();
const Matrix& cz();
const Matrix& swap();
const Matrix& ccx();    ///< Toffoli: (control, control, target)
const Matrix& cswap();  ///< Fredkin: (control, target, target)

/// Controlled-U for a single-qubit U (control = first qubit).
Matrix controlled(const Matrix& u);

/// State-preparation unitary: maps |0...0⟩ to the given normalized state.
/// Built by completing the state column to a unitary via Householder QR.
Matrix prep_unitary(const Vector& state);

}  // namespace qcut::gates
