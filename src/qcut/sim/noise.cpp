#include "qcut/sim/noise.hpp"

#include <cmath>

#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"

namespace qcut {

namespace {
void check_prob(Real p, const char* name) {
  QCUT_CHECK(p >= 0.0 && p <= 1.0, std::string(name) + ": probability out of [0,1]");
}
}  // namespace

Channel depolarizing(Real p) {
  check_prob(p, "depolarizing");
  const Real k0 = std::sqrt(1.0 - 3.0 * p / 4.0);
  const Real kp = std::sqrt(p / 4.0);
  return Channel({k0 * pauli_i(), kp * pauli_x(), kp * pauli_y(), kp * pauli_z()});
}

Channel depolarizing2(Real p) {
  check_prob(p, "depolarizing2");
  std::vector<Matrix> ks;
  ks.reserve(16);
  const Real kp = std::sqrt(p / 16.0);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      Matrix k = kron(pauli_matrix(static_cast<Pauli>(a)), pauli_matrix(static_cast<Pauli>(b)));
      if (a == 0 && b == 0) {
        k *= Cplx{std::sqrt(1.0 - 15.0 * p / 16.0), 0.0};
      } else {
        k *= Cplx{kp, 0.0};
      }
      ks.push_back(std::move(k));
    }
  }
  return Channel(std::move(ks));
}

Channel dephasing(Real p) {
  check_prob(p, "dephasing");
  return Channel({std::sqrt(1.0 - p / 2.0) * pauli_i(), std::sqrt(p / 2.0) * pauli_z()});
}

Channel bit_flip(Real p) {
  check_prob(p, "bit_flip");
  return Channel({std::sqrt(1.0 - p) * pauli_i(), std::sqrt(p) * pauli_x()});
}

Channel amplitude_damping(Real gamma) {
  check_prob(gamma, "amplitude_damping");
  Matrix k0(2, 2);
  k0(0, 0) = Cplx{1.0, 0.0};
  k0(1, 1) = Cplx{std::sqrt(1.0 - gamma), 0.0};
  Matrix k1(2, 2);
  k1(0, 1) = Cplx{std::sqrt(gamma), 0.0};
  return Channel({k0, k1});
}

Channel pauli_channel(Real px, Real py, Real pz) {
  check_prob(px, "pauli_channel");
  check_prob(py, "pauli_channel");
  check_prob(pz, "pauli_channel");
  const Real pi = 1.0 - px - py - pz;
  QCUT_CHECK(pi >= -kTightTol, "pauli_channel: probabilities exceed 1");
  return Channel({std::sqrt(std::max<Real>(0.0, pi)) * pauli_i(), std::sqrt(px) * pauli_x(),
                  std::sqrt(py) * pauli_y(), std::sqrt(pz) * pauli_z()});
}

Matrix noisy_phi_k(Real k, Real p) {
  check_prob(p, "noisy_phi_k");
  Matrix rho = phi_k_density(k);
  rho *= Cplx{1.0 - p, 0.0};
  rho += (p / 4.0) * Matrix::identity(4);
  return rho;
}

}  // namespace qcut
