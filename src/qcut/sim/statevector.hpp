// Statevector simulation engine.
//
// Stores 2^n complex amplitudes (big-endian: qubit 0 = most significant bit)
// and applies gates in place with O(2^n) work per single-qubit gate. This is
// the engine behind shot execution; exact channel verification uses the
// DensityMatrix engine instead.
//
// The hot sweeps run on the SIMD run-kernel table (sim/simd_dispatch.hpp) and
// — for states at or above the parallel threshold — are chunked over a
// ThreadPool. Chunk boundaries are fixed in group space, independent of the
// pool size, and every reduction sums per-chunk partials in chunk index
// order, so results are bit-identical for any pool size (including no pool).
#pragma once

#include <vector>

#include "qcut/common/rng.hpp"
#include "qcut/linalg/matrix.hpp"
#include "qcut/sim/gate_class.hpp"

namespace qcut {

class ThreadPool;

class Statevector {
 public:
  /// Hard cap on simulable width: 2^n amplitudes hit the exponential memory
  /// wall (4 GiB of amplitudes at n = 28, doubling per qubit). Circuits wider
  /// than this must be executed fragment-locally (see qcut/cut/fragment.hpp)
  /// — the Circuit IR itself allows up to Circuit::kMaxQubits wires. The
  /// width is validated before the amplitude vector is allocated, so an
  /// over-wide construction throws qcut::Error instead of dying on OOM.
  static constexpr int kMaxQubits = 28;

  /// |0...0⟩ on n qubits.
  explicit Statevector(int n_qubits);
  /// Takes ownership of explicit amplitudes (must have power-of-two size and
  /// unit norm).
  Statevector(int n_qubits, Vector amplitudes);

  int n_qubits() const noexcept { return n_qubits_; }
  const Vector& amplitudes() const noexcept { return amp_; }
  Index dim() const noexcept { return static_cast<Index>(amp_.size()); }

  /// Applies a k-qubit unitary to the listed qubits. Classifies the matrix
  /// structure on the fly; hot paths that hold a precomputed classification
  /// (Operation::gclass) use the three-argument overload instead.
  void apply(const Matrix& u, const std::vector<int>& qubits);

  /// Applies `u` dispatching on a precomputed classification: diagonal gates
  /// run the amplitude-wise multiply kernel (no gather), permutation gates
  /// the amplitude-move kernel (no arithmetic), everything else the dense
  /// kernels. Passing a default-constructed GateClass forces the dense path
  /// (the benchmark yardstick for the specialized kernels).
  void apply(const Matrix& u, const std::vector<int>& qubits, const GateClass& cls);

  /// Probability that measuring `qubit` yields 1.
  Real prob_one(int qubit) const;

  /// Measures `qubit` in the Z basis: collapses the state, returns the
  /// outcome bit.
  int measure(int qubit, Rng& rng);

  /// Deterministic projection: collapse `qubit` to `outcome` and renormalize;
  /// returns the branch probability. A p = 0 branch is left as the all-zero
  /// vector (never divided into NaNs) — the caller must drop it rather than
  /// keep using the state (run_branches prunes such branches unconditionally).
  Real project(int qubit, int outcome);

  /// Projected copy: `src` collapsed to `qubit = outcome` and renormalized,
  /// built in a single pass (same arithmetic as copy-then-project without the
  /// intermediate full copy). This is the branch-enumeration fast path: every
  /// measure/reset op copies each surviving branch's state once per outcome.
  /// A p = 0 projection yields the all-zero vector, exactly like project().
  static Statevector projected(const Statevector& src, int qubit, int outcome);

  /// Collapses `qubit` and re-prepares it in |0⟩.
  void reset(int qubit, Rng& rng);

  /// Sets the listed qubits (which must be in |0..0⟩ and unentangled with the
  /// rest) to `state`.
  void initialize(const std::vector<int>& qubits, const Vector& state);

  /// ⟨ψ|P|ψ⟩ for an n-qubit Pauli string (e.g. "ZII").
  Real expectation_pauli(const std::string& pauli) const;

  /// Full probability distribution over computational basis outcomes.
  std::vector<Real> probabilities() const;

  /// Samples a computational-basis outcome index without collapsing.
  Index sample(Rng& rng) const;

  Real norm() const;

  /// Process-wide threading policy for the amplitude sweeps. States with
  /// n_qubits >= min_parallel_qubits distribute their fixed-size chunks over
  /// `pool` (nullptr = the lazily constructed global_pool(), resolved only
  /// when such a state is actually simulated); narrower states always run
  /// inline. The pool choice NEVER changes results: chunk boundaries and the
  /// reduction order depend only on the state size. Calls from inside a
  /// worker of the chosen pool run inline (nested parallel_for would
  /// deadlock). Intended for startup/test setup; not thread-safe against
  /// concurrent sweeps.
  static void set_parallel_config(ThreadPool* pool, int min_parallel_qubits);
  static int parallel_min_qubits() noexcept;

 private:
  struct Unchecked {};  ///< tag: internal construction of already-valid states
  Statevector(Unchecked, int n_qubits, Vector amplitudes)
      : n_qubits_(n_qubits), amp_(std::move(amplitudes)) {}

  int bitpos(int qubit) const noexcept { return n_qubits_ - 1 - qubit; }

  void apply_diagonal(const GateClass& cls, const std::vector<int>& qubits);
  void apply_permutation(const GateClass& cls, const std::vector<int>& qubits);

  int n_qubits_;
  Vector amp_;
};

}  // namespace qcut
