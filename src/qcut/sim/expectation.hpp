// Observables: weighted sums of Pauli strings, with exact and shot-sampled
// expectation values.
#pragma once

#include <string>
#include <vector>

#include "qcut/sim/density_matrix.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

/// O = Σ w_i P_i with P_i n-qubit Pauli strings.
class PauliObservable {
 public:
  PauliObservable() = default;
  PauliObservable(std::initializer_list<std::pair<Real, std::string>> terms);

  PauliObservable& add(Real weight, std::string pauli);

  const std::vector<std::pair<Real, std::string>>& terms() const noexcept { return terms_; }
  int n_qubits() const;

  Real expectation(const Statevector& sv) const;
  Real expectation(const DensityMatrix& dm) const;

  /// Dense matrix of the observable (for exact cross-checks).
  Matrix to_matrix() const;

 private:
  std::vector<std::pair<Real, std::string>> terms_;
};

}  // namespace qcut
