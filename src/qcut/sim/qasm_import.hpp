// OpenQASM 2.0 import — the inverse bridge of qasm.hpp: externally authored
// circuits (benchmark suites, other toolchains, our own exports) become
// Circuit IR that the planner can analyze, cut, and fragment-execute.
//
// Supported subset (what `to_qasm` emits plus what standard benchmark
// circuits use):
//   * header `OPENQASM 2.0;`, `include "...";` (accepted, ignored — the
//     qelib1 gate set below is built in),
//   * `qreg`/`creg` declarations (multiple registers map to contiguous
//     wire/cbit ranges in declaration order),
//   * named gates h, x, y, z, s, sdg, t, tdg, cx (alias CX), cz, swap,
//     rx, ry, rz, u1, u2, u3 (alias U), id (a no-op, dropped),
//   * `gate name(params) args { ... }` macro definitions, expanded at each
//     call site with parameter/argument substitution,
//   * whole-register broadcast for gate, measure, and reset operands,
//   * `measure q[i] -> c[j];`, `reset q[i];`, `barrier ...;` (dropped),
//   * `if (c == 1) <gate-op>;` classical control on a size-1 creg,
//   * constant-expression angles: literals, `pi`, + - * / ^, parentheses,
//     unary minus, and the qasm builtins sin/cos/tan/exp/ln/sqrt.
//
// Rejected with a `<source>:<line>:<col>: ...` diagnostic: other OPENQASM
// versions, `opaque` declarations, conditions on multi-bit registers or
// against values other than 1 (the IR conditions single bits on 1),
// conditioned measure/reset, out-of-range indices, arity/parameter-count
// mismatches, and any gate name that is neither built in nor a previously
// defined macro.
#pragma once

#include <string>

#include "qcut/sim/circuit.hpp"

namespace qcut {

/// Parses an OpenQASM 2.0 program into a Circuit. `source_name` prefixes
/// diagnostics (a file path, or a label like "<string>").
Circuit import_qasm(const std::string& source, const std::string& source_name = "<qasm>");

/// Reads and parses a .qasm file; throws qcut::Error when unreadable.
Circuit import_qasm_file(const std::string& path);

/// Copy of `c` without its trailing run of measure ops (benchmark circuits
/// conventionally end by measuring every qubit; the planner and the
/// observable-estimation path want the unitary part). Measurements *followed*
/// by other ops — mid-circuit measurement, feed-forward — are kept. The
/// number of dropped ops is written to `*n_stripped` when non-null.
Circuit strip_trailing_measurements(const Circuit& c, int* n_stripped = nullptr);

/// Structural equivalence up to global phase per operation: identical
/// qubit/cbit counts and op sequences (kind, qubits, cbit), with unitary
/// matrices and initialize states compared up to a global phase within
/// `tol`. The round-trip oracle: import(export(C)) must satisfy this against
/// C. On mismatch, a one-line reason is written to `*why` when non-null.
bool circuits_equivalent(const Circuit& a, const Circuit& b, Real tol = 1e-9,
                         std::string* why = nullptr);

/// b ≈ e^{iφ} a entrywise for some phase φ, within `tol`. The comparison
/// circuits_equivalent applies per op, exposed for whole-circuit unitary
/// cross-checks (the u3 serialization drops global phase by construction).
bool matrix_equal_up_to_phase(const Matrix& a, const Matrix& b, Real tol = 1e-9);

}  // namespace qcut
