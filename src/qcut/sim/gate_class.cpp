#include "qcut/sim/gate_class.hpp"

namespace qcut {

namespace {

constexpr Cplx kZero{0.0, 0.0};
constexpr Cplx kOne{1.0, 0.0};

bool is_diagonal(const Matrix& u) {
  for (Index r = 0; r < u.rows(); ++r) {
    for (Index c = 0; c < u.cols(); ++c) {
      if (r != c && u(r, c) != kZero) {
        return false;
      }
    }
  }
  return true;
}

/// Fills `image` when u is exactly a 0/1 permutation matrix.
bool is_permutation(const Matrix& u, std::vector<Index>& image) {
  const Index n = u.rows();
  image.assign(static_cast<std::size_t>(n), -1);
  std::vector<char> row_hit(static_cast<std::size_t>(n), 0);
  for (Index c = 0; c < n; ++c) {
    Index one_row = -1;
    for (Index r = 0; r < n; ++r) {
      const Cplx v = u(r, c);
      if (v == kOne) {
        if (one_row >= 0) {
          return false;  // two ones in a column
        }
        one_row = r;
      } else if (v != kZero) {
        return false;
      }
    }
    if (one_row < 0 || row_hit[static_cast<std::size_t>(one_row)]) {
      return false;
    }
    row_hit[static_cast<std::size_t>(one_row)] = 1;
    image[static_cast<std::size_t>(c)] = one_row;
  }
  return true;
}

std::vector<std::vector<Index>> permutation_cycles(const std::vector<Index>& image) {
  std::vector<std::vector<Index>> cycles;
  std::vector<char> seen(image.size(), 0);
  for (std::size_t s = 0; s < image.size(); ++s) {
    if (seen[s] || image[s] == static_cast<Index>(s)) {
      continue;  // fixed point
    }
    std::vector<Index> cycle;
    Index cur = static_cast<Index>(s);
    while (!seen[static_cast<std::size_t>(cur)]) {
      seen[static_cast<std::size_t>(cur)] = 1;
      cycle.push_back(cur);
      cur = image[static_cast<std::size_t>(cur)];
    }
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

}  // namespace

GateClass classify_gate(const Matrix& u) {
  GateClass cls;
  if (u.empty() || !u.square()) {
    return cls;
  }
  if (is_diagonal(u)) {
    cls.structure = GateStructure::kDiagonal;
    cls.dim = u.rows();
    cls.diag.resize(static_cast<std::size_t>(u.rows()));
    Index not_one = -1;
    int n_not_one = 0;
    for (Index i = 0; i < u.rows(); ++i) {
      cls.diag[static_cast<std::size_t>(i)] = u(i, i);
      if (u(i, i) != kOne) {
        not_one = i;
        ++n_not_one;
      }
    }
    if (n_not_one <= 1) {
      // n_not_one == 0 is the identity: mark sub-index 0, whose unit phase
      // the kernels skip.
      cls.phase_index = n_not_one == 1 ? not_one : 0;
    }
    return cls;
  }
  std::vector<Index> image;
  if (is_permutation(u, image)) {
    cls.structure = GateStructure::kPermutation;
    cls.dim = u.rows();
    cls.cycles = permutation_cycles(image);
    return cls;
  }
  return cls;
}

}  // namespace qcut
