#include "qcut/sim/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "qcut/linalg/kron.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

Circuit::Circuit(int n_qubits, int n_cbits) : n_qubits_(n_qubits), n_cbits_(n_cbits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= kMaxQubits, "Circuit: unsupported qubit count");
  QCUT_CHECK(n_cbits >= 0, "Circuit: negative classical bit count");
}

void Circuit::check_qubits(const std::vector<int>& qubits) const {
  QCUT_CHECK(!qubits.empty(), "Circuit: operation needs at least one qubit");
  for (int q : qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits_, "Circuit: qubit index out of range");
    QCUT_CHECK(std::count(qubits.begin(), qubits.end(), q) == 1, "Circuit: duplicate qubit");
  }
}

void Circuit::check_cbit(int cbit) const {
  QCUT_CHECK(cbit >= 0 && cbit < n_cbits_, "Circuit: classical bit index out of range");
}

Circuit& Circuit::gate(const Matrix& u, const std::vector<int>& qubits, std::string label) {
  check_qubits(qubits);
  const Index dim = Index{1} << static_cast<Index>(qubits.size());
  QCUT_CHECK(u.rows() == dim && u.cols() == dim, "Circuit::gate: matrix/qubit-count mismatch");
  ops_.push_back({OpKind::kUnitary, qubits, u, {}, -1, std::move(label), classify_gate(u)});
  return *this;
}

Circuit& Circuit::gate_if(int cbit, const Matrix& u, const std::vector<int>& qubits,
                          std::string label) {
  check_qubits(qubits);
  check_cbit(cbit);
  const Index dim = Index{1} << static_cast<Index>(qubits.size());
  QCUT_CHECK(u.rows() == dim && u.cols() == dim, "Circuit::gate_if: matrix/qubit-count mismatch");
  ops_.push_back({OpKind::kCondUnitary, qubits, u, {}, cbit, std::move(label), classify_gate(u)});
  return *this;
}

Circuit& Circuit::h(int q) { return gate(gates::h(), {q}, "H"); }
Circuit& Circuit::x(int q) { return gate(gates::x(), {q}, "X"); }
Circuit& Circuit::y(int q) { return gate(gates::y(), {q}, "Y"); }
Circuit& Circuit::z(int q) { return gate(gates::z(), {q}, "Z"); }
Circuit& Circuit::s(int q) { return gate(gates::s(), {q}, "S"); }
Circuit& Circuit::sdg(int q) { return gate(gates::sdg(), {q}, "Sdg"); }
Circuit& Circuit::t(int q) { return gate(gates::t(), {q}, "T"); }
Circuit& Circuit::rx(int q, Real theta) { return gate(gates::rx(theta), {q}, "Rx"); }
Circuit& Circuit::ry(int q, Real theta) { return gate(gates::ry(theta), {q}, "Ry"); }
Circuit& Circuit::rz(int q, Real theta) { return gate(gates::rz(theta), {q}, "Rz"); }
Circuit& Circuit::cx(int control, int target) { return gate(gates::cx(), {control, target}, "CX"); }
Circuit& Circuit::cz(int control, int target) { return gate(gates::cz(), {control, target}, "CZ"); }
Circuit& Circuit::swap_gate(int a, int b) { return gate(gates::swap(), {a, b}, "SWAP"); }

Circuit& Circuit::x_if(int cbit, int q) { return gate_if(cbit, gates::x(), {q}, "X?"); }
Circuit& Circuit::z_if(int cbit, int q) { return gate_if(cbit, gates::z(), {q}, "Z?"); }

Circuit& Circuit::measure(int q, int cbit) {
  check_qubits({q});
  check_cbit(cbit);
  ops_.push_back({OpKind::kMeasure, {q}, Matrix{}, {}, cbit, "measure", {}});
  return *this;
}

Circuit& Circuit::reset(int q) {
  check_qubits({q});
  ops_.push_back({OpKind::kReset, {q}, Matrix{}, {}, -1, "reset", {}});
  return *this;
}

Circuit& Circuit::initialize(const std::vector<int>& qubits, const Vector& state,
                             std::string label) {
  check_qubits(qubits);
  const Index dim = Index{1} << static_cast<Index>(qubits.size());
  QCUT_CHECK(static_cast<Index>(state.size()) == dim,
             "Circuit::initialize: state/qubit-count mismatch");
  QCUT_CHECK(approx_eq(vec_norm(state), 1.0, 1e-9), "Circuit::initialize: unnormalized state");
  ops_.push_back({OpKind::kInitialize, qubits, Matrix{}, state, -1, std::move(label), {}});
  return *this;
}

Circuit& Circuit::append(const Circuit& other, int qubit_offset, int cbit_offset) {
  QCUT_CHECK(qubit_offset >= 0 && qubit_offset + other.n_qubits_ <= n_qubits_,
             "Circuit::append: qubit range does not fit");
  QCUT_CHECK((cbit_offset >= 0 && cbit_offset + other.n_cbits_ <= n_cbits_) ||
                 other.n_cbits_ == 0,
             "Circuit::append: classical range does not fit");
  for (Operation op : other.ops_) {
    for (int& q : op.qubits) {
      q += qubit_offset;
    }
    if (op.cbit >= 0) {
      op.cbit += cbit_offset;
    }
    ops_.push_back(std::move(op));
  }
  return *this;
}

Circuit& Circuit::push_op(Operation op) {
  check_qubits(op.qubits);
  const Index dim = Index{1} << static_cast<Index>(op.qubits.size());
  switch (op.kind) {
    case OpKind::kUnitary:
      QCUT_CHECK(op.matrix.rows() == dim && op.matrix.cols() == dim,
                 "Circuit::push_op: matrix/qubit-count mismatch");
      break;
    case OpKind::kCondUnitary:
      QCUT_CHECK(op.matrix.rows() == dim && op.matrix.cols() == dim,
                 "Circuit::push_op: matrix/qubit-count mismatch");
      check_cbit(op.cbit);
      break;
    case OpKind::kMeasure:
      QCUT_CHECK(op.qubits.size() == 1, "Circuit::push_op: measure takes one qubit");
      check_cbit(op.cbit);
      break;
    case OpKind::kReset:
      QCUT_CHECK(op.qubits.size() == 1, "Circuit::push_op: reset takes one qubit");
      break;
    case OpKind::kInitialize:
      QCUT_CHECK(static_cast<Index>(op.init_state.size()) == dim,
                 "Circuit::push_op: state/qubit-count mismatch");
      break;
  }
  ops_.push_back(std::move(op));
  return *this;
}

Matrix Circuit::to_unitary() const {
  QCUT_CHECK(n_qubits_ <= 20, "Circuit::to_unitary: circuit too wide for a dense unitary");
  Matrix acc = Matrix::identity(Index{1} << n_qubits_);
  for (const auto& op : ops_) {
    QCUT_CHECK(op.kind == OpKind::kUnitary,
               "Circuit::to_unitary: circuit contains non-unitary operations");
    acc = embed(op.matrix, op.qubits, n_qubits_) * acc;
  }
  return acc;
}

int Circuit::count_measurements() const {
  int n = 0;
  for (const auto& op : ops_) {
    n += (op.kind == OpKind::kMeasure) ? 1 : 0;
  }
  return n;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "Circuit(" << n_qubits_ << " qubits, " << n_cbits_ << " cbits):\n";
  for (const auto& op : ops_) {
    os << "  ";
    switch (op.kind) {
      case OpKind::kUnitary:
        os << op.label << " q[";
        break;
      case OpKind::kCondUnitary:
        os << op.label << " if c" << op.cbit << " q[";
        break;
      case OpKind::kMeasure:
        os << "measure -> c" << op.cbit << " q[";
        break;
      case OpKind::kReset:
        os << "reset q[";
        break;
      case OpKind::kInitialize:
        os << op.label << " q[";
        break;
    }
    for (std::size_t i = 0; i < op.qubits.size(); ++i) {
      os << op.qubits[i] << (i + 1 < op.qubits.size() ? "," : "");
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace qcut
