// Circuit intermediate representation.
//
// A Circuit is an ordered list of operations over `n_qubits` quantum wires
// and `n_cbits` classical bits. Mid-circuit measurement and classically
// controlled gates are first-class citizens because every cut fragment the
// protocols emit contains them (teleportation corrections, measure-and-
// prepare branches).
//
// Qubit convention: big-endian, qubit 0 is the most significant basis-index
// bit — the top wire of the paper's circuit diagrams.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qcut/linalg/matrix.hpp"
#include "qcut/sim/gate_class.hpp"

namespace qcut {

enum class OpKind {
  kUnitary,      ///< unitary gate on listed qubits
  kCondUnitary,  ///< unitary applied iff the classical bit equals 1
  kMeasure,      ///< Z-basis measurement of one qubit into a classical bit
  kReset,        ///< collapse one qubit and set it to |0⟩
  kInitialize,   ///< set listed (fresh / reset) qubits to a given pure state
};

struct Operation {
  OpKind kind = OpKind::kUnitary;
  std::vector<int> qubits;
  Matrix matrix;       ///< gate for kUnitary / kCondUnitary
  Vector init_state;   ///< target state for kInitialize
  int cbit = -1;       ///< destination for kMeasure, condition for kCondUnitary
  std::string label;
  /// Structure of `matrix` (diagonal / permutation / generic), classified
  /// once when the op enters a Circuit; the statevector engine dispatches its
  /// specialized kernels on this tag instead of re-inspecting the matrix.
  GateClass gclass;
};

class Circuit {
 public:
  /// IR width cap. The IR is an op list — no amplitudes — so it only needs to
  /// keep basis-index arithmetic (Index{1} << n) well defined; Index is a
  /// *signed* 64-bit type, so the largest shift that stays positive is 62.
  /// Simulability is an engine property, not an IR property: monolithic
  /// statevector execution caps at Statevector::kMaxQubits, wider circuits
  /// run fragment-locally (qcut/cut/fragment.hpp).
  static constexpr int kMaxQubits = 62;

  /// Default: a trivial one-qubit, one-cbit circuit (placeholder for
  /// aggregate members that are assigned before use).
  Circuit() : Circuit(1, 1) {}
  Circuit(int n_qubits, int n_cbits);
  explicit Circuit(int n_qubits) : Circuit(n_qubits, 0) {}

  int n_qubits() const noexcept { return n_qubits_; }
  int n_cbits() const noexcept { return n_cbits_; }
  const std::vector<Operation>& ops() const noexcept { return ops_; }
  std::size_t size() const noexcept { return ops_.size(); }

  // -- builder interface (returns *this for chaining) -----------------------
  Circuit& gate(const Matrix& u, const std::vector<int>& qubits, std::string label = "U");
  Circuit& gate_if(int cbit, const Matrix& u, const std::vector<int>& qubits,
                   std::string label = "U?");

  Circuit& h(int q);
  Circuit& x(int q);
  Circuit& y(int q);
  Circuit& z(int q);
  Circuit& s(int q);
  Circuit& sdg(int q);
  Circuit& t(int q);
  Circuit& rx(int q, Real theta);
  Circuit& ry(int q, Real theta);
  Circuit& rz(int q, Real theta);
  Circuit& cx(int control, int target);
  Circuit& cz(int control, int target);
  Circuit& swap_gate(int a, int b);

  Circuit& x_if(int cbit, int q);
  Circuit& z_if(int cbit, int q);

  Circuit& measure(int q, int cbit);
  Circuit& reset(int q);
  /// Prepares `state` on the listed qubits, which must currently be in |0..0⟩
  /// (true for fresh wires or immediately after reset/measure-to-zero).
  Circuit& initialize(const std::vector<int>& qubits, const Vector& state,
                      std::string label = "init");

  /// Appends all ops of `other` with qubit/cbit index offsets.
  Circuit& append(const Circuit& other, int qubit_offset = 0, int cbit_offset = 0);

  /// Appends a fully formed Operation (validated against this circuit's
  /// registers), preserving its gate classification. This is the remap path
  /// of the fragment splitter: replaying ops into per-fragment circuits must
  /// not re-classify (or re-copy-check) every gadget matrix per QPD term.
  Circuit& push_op(Operation op);

  /// Total unitary of a measurement-free circuit (throws otherwise).
  Matrix to_unitary() const;

  /// Number of measurement operations.
  int count_measurements() const;

  /// One-line-per-op textual rendering for logs and examples.
  std::string to_string() const;

 private:
  void check_qubits(const std::vector<int>& qubits) const;
  void check_cbit(int cbit) const;

  int n_qubits_;
  int n_cbits_;
  std::vector<Operation> ops_;
};

}  // namespace qcut
