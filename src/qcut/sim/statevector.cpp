#include "qcut/sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "qcut/linalg/pauli.hpp"

namespace qcut {

namespace {

// Width must be validated BEFORE the 2^n amplitude vector is allocated: with
// the Circuit IR now wider than the engine cap, a check placed after the
// allocation would surface as an OOM kill / bad_alloc instead of the Error.
std::size_t checked_dim(int n_qubits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= Statevector::kMaxQubits,
             "Statevector: unsupported qubit count");
  return std::size_t{1} << n_qubits;
}

/// Inserts a zero bit at the position of `stride` (a power of two): bits at or
/// above the position shift up by one, bits below stay. Repeated over the
/// participating qubits' strides in ascending order, this expands a dense
/// group id into the canonical (all participating bits zero) basis index —
/// the stride-based replacement for scanning all 2^n indices and skipping the
/// masked ones.
inline Index insert_zero(Index g, Index stride) {
  return ((g & ~(stride - 1)) << 1) | (g & (stride - 1));
}

/// Calls f(base) for every basis index with zero bits at all of `sorted`
/// (ascending strides). The k = 1 and k = 2 shapes unroll into contiguous
/// inner runs, which is what the dense and specialized kernels want.
template <typename F>
inline void for_each_group_base(Index dim, const Index* sorted, int k, F&& f) {
  if (k == 1) {
    const Index s = sorted[0];
    for (Index b = 0; b < dim; b += s << 1) {
      for (Index i = b; i < b + s; ++i) {
        f(i);
      }
    }
  } else if (k == 2) {
    const Index lo = sorted[0];
    const Index hi = sorted[1];
    for (Index b2 = 0; b2 < dim; b2 += hi << 1) {
      for (Index b1 = b2; b1 < b2 + hi; b1 += lo << 1) {
        for (Index i = b1; i < b1 + lo; ++i) {
          f(i);
        }
      }
    }
  } else {
    const Index groups = dim >> k;
    for (Index g = 0; g < groups; ++g) {
      Index idx = g;
      for (int j = 0; j < k; ++j) {
        idx = insert_zero(idx, sorted[j]);
      }
      f(idx);
    }
  }
}

}  // namespace

Statevector::Statevector(int n_qubits)
    : n_qubits_(n_qubits), amp_(checked_dim(n_qubits), Cplx{0.0, 0.0}) {
  amp_[0] = Cplx{1.0, 0.0};
}

Statevector::Statevector(int n_qubits, Vector amplitudes)
    : n_qubits_(n_qubits), amp_(std::move(amplitudes)) {
  (void)checked_dim(n_qubits);
  QCUT_CHECK(amp_.size() == (std::size_t{1} << n_qubits),
             "Statevector: amplitude count mismatch");
  QCUT_CHECK(approx_eq(vec_norm(amp_), 1.0, 1e-8), "Statevector: state must be normalized");
}

void Statevector::apply(const Matrix& u, const std::vector<int>& qubits) {
  apply(u, qubits, classify_gate(u));
}

void Statevector::apply(const Matrix& u, const std::vector<int>& qubits, const GateClass& cls) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(u.rows() == subdim && u.cols() == subdim,
             "Statevector::apply: matrix/qubit-count mismatch");
  for (int q : qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits_, "Statevector::apply: qubit out of range");
  }
  for (std::size_t a = 0; a < qubits.size(); ++a) {
    for (std::size_t b = a + 1; b < qubits.size(); ++b) {
      QCUT_CHECK(qubits[a] != qubits[b], "Statevector::apply: duplicate qubit");
    }
  }

  switch (cls.structure) {
    case GateStructure::kDiagonal:
      QCUT_CHECK(cls.dim == subdim && static_cast<Index>(cls.diag.size()) == subdim,
                 "Statevector::apply: classification/matrix mismatch");
      apply_diagonal(cls, qubits);
      return;
    case GateStructure::kPermutation:
      QCUT_CHECK(cls.dim == subdim, "Statevector::apply: classification/matrix mismatch");
      apply_permutation(cls, qubits);
      return;
    case GateStructure::kGeneric:
      break;
  }

  const Index dim_ = dim();
  if (k == 1) {
    // Dense single-qubit kernel: contiguous runs of the zero-bit half, no
    // masked-skip trips over the other half.
    const Index s = Index{1} << bitpos(qubits[0]);
    const Cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    for_each_group_base(dim_, &s, 1, [&](Index i0) {
      const std::size_t j0 = static_cast<std::size_t>(i0);
      const std::size_t j1 = static_cast<std::size_t>(i0 + s);
      const Cplx a0 = amp_[j0];
      const Cplx a1 = amp_[j1];
      amp_[j0] = u00 * a0 + u01 * a1;
      amp_[j1] = u10 * a0 + u11 * a1;
    });
    return;
  }

  if (k == 2) {
    // Dense two-qubit kernel. Sub-index convention matches the generic path:
    // qubits[0] is the high bit, qubits[1] the low bit.
    const Index s0 = Index{1} << bitpos(qubits[0]);
    const Index s1 = Index{1} << bitpos(qubits[1]);
    const Index sorted[2] = {std::min(s0, s1), std::max(s0, s1)};
    Cplx m[4][4];
    for (Index r = 0; r < 4; ++r) {
      for (Index c = 0; c < 4; ++c) {
        m[r][c] = u(r, c);
      }
    }
    for_each_group_base(dim_, sorted, 2, [&](Index i) {
      const std::size_t i00 = static_cast<std::size_t>(i);
      const std::size_t i01 = static_cast<std::size_t>(i + s1);
      const std::size_t i10 = static_cast<std::size_t>(i + s0);
      const std::size_t i11 = static_cast<std::size_t>(i + s0 + s1);
      const Cplx a0 = amp_[i00], a1 = amp_[i01], a2 = amp_[i10], a3 = amp_[i11];
      amp_[i00] = m[0][0] * a0 + m[0][1] * a1 + m[0][2] * a2 + m[0][3] * a3;
      amp_[i01] = m[1][0] * a0 + m[1][1] * a1 + m[1][2] * a2 + m[1][3] * a3;
      amp_[i10] = m[2][0] * a0 + m[2][1] * a1 + m[2][2] * a2 + m[2][3] * a3;
      amp_[i11] = m[3][0] * a0 + m[3][1] * a1 + m[3][2] * a2 + m[3][3] * a3;
    });
    return;
  }

  // General k-qubit path: gather/scatter over the 2^k amplitudes of each row
  // group, enumerating the canonical representatives directly.
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());
  std::vector<Cplx> scratch(static_cast<std::size_t>(subdim));
  for_each_group_base(dim_, sorted.data(), k, [&](Index base) {
    // Gather.
    for (Index sub = 0; sub < subdim; ++sub) {
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((sub >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      scratch[static_cast<std::size_t>(sub)] = amp_[static_cast<std::size_t>(idx)];
    }
    // Multiply and scatter.
    for (Index row = 0; row < subdim; ++row) {
      Cplx acc{0.0, 0.0};
      for (Index col = 0; col < subdim; ++col) {
        acc += u(row, col) * scratch[static_cast<std::size_t>(col)];
      }
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((row >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      amp_[static_cast<std::size_t>(idx)] = acc;
    }
  });
}

void Statevector::apply_diagonal(const GateClass& cls, const std::vector<int>& qubits) {
  const int k = static_cast<int>(qubits.size());
  const Index dim_ = dim();
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }

  if (cls.phase_index >= 0) {
    // Sparse phase: every diagonal entry but one is exactly 1 — only the
    // matching 2^{n-k} amplitude slice is touched (a quarter of the state for
    // the cu1/cp gates that dominate QFT circuits).
    const Cplx phase = cls.diag[static_cast<std::size_t>(cls.phase_index)];
    if (phase == Cplx{1.0, 0.0}) {
      return;  // identity
    }
    Index offset = 0;
    for (int j = 0; j < k; ++j) {
      if ((cls.phase_index >> (k - 1 - j)) & 1) {
        offset |= strides[static_cast<std::size_t>(j)];
      }
    }
    std::vector<Index> sorted = strides;
    std::sort(sorted.begin(), sorted.end());
    for_each_group_base(dim_, sorted.data(), k, [&](Index base) {
      amp_[static_cast<std::size_t>(base + offset)] *= phase;
    });
    return;
  }

  // Dense diagonal: one multiply per amplitude, no gather.
  if (k == 1) {
    const Index s = strides[0];
    const Cplx d0 = cls.diag[0], d1 = cls.diag[1];
    for_each_group_base(dim_, &s, 1, [&](Index i) {
      amp_[static_cast<std::size_t>(i)] *= d0;
      amp_[static_cast<std::size_t>(i + s)] *= d1;
    });
    return;
  }
  if (k == 2) {
    const Index s0 = strides[0];
    const Index s1 = strides[1];
    const Index sorted[2] = {std::min(s0, s1), std::max(s0, s1)};
    const Cplx d0 = cls.diag[0], d1 = cls.diag[1], d2 = cls.diag[2], d3 = cls.diag[3];
    for_each_group_base(dim_, sorted, 2, [&](Index i) {
      amp_[static_cast<std::size_t>(i)] *= d0;
      amp_[static_cast<std::size_t>(i + s1)] *= d1;
      amp_[static_cast<std::size_t>(i + s0)] *= d2;
      amp_[static_cast<std::size_t>(i + s0 + s1)] *= d3;
    });
    return;
  }
  for (Index i = 0; i < dim_; ++i) {
    Index sub = 0;
    for (int j = 0; j < k; ++j) {
      if (i & strides[static_cast<std::size_t>(j)]) {
        sub |= Index{1} << (k - 1 - j);
      }
    }
    amp_[static_cast<std::size_t>(i)] *= cls.diag[static_cast<std::size_t>(sub)];
  }
}

void Statevector::apply_permutation(const GateClass& cls, const std::vector<int>& qubits) {
  if (cls.cycles.empty()) {
    return;  // identity permutation
  }
  const int k = static_cast<int>(qubits.size());
  const Index dim_ = dim();
  const Index subdim = Index{1} << k;
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }
  std::vector<Index> offs(static_cast<std::size_t>(subdim), 0);
  for (Index sub = 0; sub < subdim; ++sub) {
    for (int j = 0; j < k; ++j) {
      if ((sub >> (k - 1 - j)) & 1) {
        offs[static_cast<std::size_t>(sub)] |= strides[static_cast<std::size_t>(j)];
      }
    }
  }
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());

  if (cls.cycles.size() == 1 && cls.cycles[0].size() == 2) {
    // The ubiquitous involution shape (x, cx, swap): one pairwise swap per
    // group, touching only the cycle's slice of the state.
    const Index oa = offs[static_cast<std::size_t>(cls.cycles[0][0])];
    const Index ob = offs[static_cast<std::size_t>(cls.cycles[0][1])];
    for_each_group_base(dim_, sorted.data(), k, [&](Index base) {
      std::swap(amp_[static_cast<std::size_t>(base + oa)],
                amp_[static_cast<std::size_t>(base + ob)]);
    });
    return;
  }

  for_each_group_base(dim_, sorted.data(), k, [&](Index base) {
    for (const std::vector<Index>& cyc : cls.cycles) {
      // image[s_i] = s_{i+1}: new[s_{i+1}] = old[s_i], rotated in place.
      const std::size_t m = cyc.size();
      Cplx t = amp_[static_cast<std::size_t>(base + offs[static_cast<std::size_t>(cyc[m - 1])])];
      for (std::size_t i = m - 1; i >= 1; --i) {
        amp_[static_cast<std::size_t>(base + offs[static_cast<std::size_t>(cyc[i])])] =
            amp_[static_cast<std::size_t>(base + offs[static_cast<std::size_t>(cyc[i - 1])])];
      }
      amp_[static_cast<std::size_t>(base + offs[static_cast<std::size_t>(cyc[0])])] = t;
    }
  });
}

Real Statevector::prob_one(int qubit) const {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "prob_one: qubit out of range");
  const Index s = Index{1} << bitpos(qubit);
  Real p = 0.0;
  const Index dim_ = dim();
  // Enumerates the set-bit half directly in ascending index order (the same
  // summation order as the old full-dim masked scan, at half the trips).
  for (Index b = 0; b < dim_; b += s << 1) {
    for (Index i = b + s; i < b + (s << 1); ++i) {
      p += norm2(amp_[static_cast<std::size_t>(i)]);
    }
  }
  return p;
}

int Statevector::measure(int qubit, Rng& rng) {
  const Real p1 = prob_one(qubit);
  const int outcome = rng.bernoulli(p1) ? 1 : 0;
  project(qubit, outcome);
  return outcome;
}

Real Statevector::project(int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "project: qubit out of range");
  QCUT_CHECK(outcome == 0 || outcome == 1, "project: outcome must be 0/1");
  const Index s = Index{1} << bitpos(qubit);
  Real p = 0.0;
  const Index dim_ = dim();
  for (Index b = 0; b < dim_; b += s << 1) {
    const Index live = outcome ? b + s : b;
    const Index dead = outcome ? b : b + s;
    for (Index i = live; i < live + s; ++i) {
      p += norm2(amp_[static_cast<std::size_t>(i)]);
    }
    for (Index i = dead; i < dead + s; ++i) {
      amp_[static_cast<std::size_t>(i)] = Cplx{0.0, 0.0};
    }
  }
  if (p > 0.0) {
    const Real inv = 1.0 / std::sqrt(p);
    for (auto& a : amp_) {
      a *= inv;
    }
  }
  return p;
}

Statevector Statevector::projected(const Statevector& src, int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < src.n_qubits_, "projected: qubit out of range");
  QCUT_CHECK(outcome == 0 || outcome == 1, "projected: outcome must be 0/1");
  const Index s = Index{1} << src.bitpos(qubit);
  const Index dim_ = src.dim();
  // Same renormalization constant as project(): the live-half norm summed in
  // ascending index order.
  Real p = 0.0;
  for (Index b = 0; b < dim_; b += s << 1) {
    const Index live = outcome ? b + s : b;
    for (Index i = live; i < live + s; ++i) {
      p += norm2(src.amp_[static_cast<std::size_t>(i)]);
    }
  }
  Vector out(static_cast<std::size_t>(dim_), Cplx{0.0, 0.0});
  if (p > 0.0) {
    const Real inv = 1.0 / std::sqrt(p);
    for (Index b = 0; b < dim_; b += s << 1) {
      const Index live = outcome ? b + s : b;
      for (Index i = live; i < live + s; ++i) {
        out[static_cast<std::size_t>(i)] = src.amp_[static_cast<std::size_t>(i)] * inv;
      }
    }
  }
  return Statevector(Unchecked{}, src.n_qubits_, std::move(out));
}

void Statevector::reset(int qubit, Rng& rng) {
  const int outcome = measure(qubit, rng);
  if (outcome == 1) {
    // Flip back to |0⟩.
    const Index s = Index{1} << bitpos(qubit);
    const Index dim_ = dim();
    for (Index b = 0; b < dim_; b += s << 1) {
      for (Index i = b; i < b + s; ++i) {
        std::swap(amp_[static_cast<std::size_t>(i)], amp_[static_cast<std::size_t>(i + s)]);
      }
    }
  }
}

void Statevector::initialize(const std::vector<int>& qubits, const Vector& state) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(static_cast<Index>(state.size()) == subdim,
             "initialize: state/qubit-count mismatch");
  Index mask = 0;
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
    mask |= strides[static_cast<std::size_t>(j)];
  }
  const Index dim_ = dim();
  // The qubits must currently be |0..0⟩: all amplitude weight on indices with
  // zero bits under `mask`. Checked unconditionally — a violated precondition
  // would silently scale surviving amplitudes by stale weight and corrupt
  // every downstream probability. The masked-norm sweep is O(2^n), the same
  // cost as the distribute loop below.
  Real leaked = 0.0;
  for (Index i = 0; i < dim_; ++i) {
    if ((i & mask) != 0) {
      leaked += norm2(amp_[static_cast<std::size_t>(i)]);
    }
  }
  QCUT_CHECK(leaked <= 1e-12, "initialize: qubits are not in |0..0⟩");
  // Distribute: amp[base | bits(sub)] = amp[base] * state[sub].
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());
  for_each_group_base(dim_, sorted.data(), k, [&](Index base) {
    const Cplx a = amp_[static_cast<std::size_t>(base)];
    for (Index sub = subdim - 1; sub >= 0; --sub) {
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((sub >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      amp_[static_cast<std::size_t>(idx)] = a * state[static_cast<std::size_t>(sub)];
      if (sub == 0) {
        break;
      }
    }
  });
}

Real Statevector::expectation_pauli(const std::string& pauli) const {
  QCUT_CHECK(static_cast<int>(pauli.size()) == n_qubits_,
             "expectation_pauli: string length must equal qubit count");
  // I/Z-only strings (every cut observable the library measures natively) are
  // a single sign-weighted probability sweep — no state copy, no gate
  // applications.
  std::uint64_t zmask = 0;
  bool zi_only = true;
  for (int q = 0; q < n_qubits_; ++q) {
    const char c = pauli[static_cast<std::size_t>(q)];
    if (c == 'Z') {
      zmask |= std::uint64_t{1} << bitpos(q);
    } else if (c != 'I') {
      zi_only = false;
    }
  }
  if (zi_only) {
    Real acc = 0.0;
    const Index dim_ = dim();
    for (Index i = 0; i < dim_; ++i) {
      const Real w = norm2(amp_[static_cast<std::size_t>(i)]);
      acc += parity64(static_cast<std::uint64_t>(i) & zmask) ? -w : w;
    }
    return acc;
  }
  // Apply the Pauli string to a copy and take the inner product (X/Y factors
  // dispatch to the permutation/diagonal kernels).
  Statevector copy = *this;
  for (int q = 0; q < n_qubits_; ++q) {
    const char c = pauli[static_cast<std::size_t>(q)];
    if (c == 'I') {
      continue;
    }
    copy.apply(pauli_matrix(pauli_from_char(c)), {q});
  }
  return inner(amp_, copy.amp_).real();
}

std::vector<Real> Statevector::probabilities() const {
  std::vector<Real> p(amp_.size());
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    p[i] = norm2(amp_[i]);
  }
  return p;
}

Index Statevector::sample(Rng& rng) const {
  Real r = rng.uniform();
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    const Real p = norm2(amp_[i]);
    if (r < p) {
      return static_cast<Index>(i);
    }
    r -= p;
  }
  return static_cast<Index>(amp_.size()) - 1;
}

Real Statevector::norm() const { return vec_norm(amp_); }

}  // namespace qcut
