#include "qcut/sim/statevector.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "qcut/common/threadpool.hpp"
#include "qcut/linalg/pauli.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/sim/simd_dispatch.hpp"

namespace qcut {

namespace {

// Width must be validated BEFORE the 2^n amplitude vector is allocated: with
// the Circuit IR now wider than the engine cap, a check placed after the
// allocation would surface as an OOM kill / bad_alloc instead of the Error.
std::size_t checked_dim(int n_qubits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= Statevector::kMaxQubits,
             "Statevector: unsupported qubit count");
  return std::size_t{1} << n_qubits;
}

/// Inserts a zero bit at the position of `stride` (a power of two): bits at or
/// above the position shift up by one, bits below stay. Repeated over the
/// participating qubits' strides in ascending order, this expands a dense
/// group id into the canonical (all participating bits zero) basis index —
/// the stride-based replacement for scanning all 2^n indices and skipping the
/// masked ones.
inline Index insert_zero(Index g, Index stride) {
  return ((g & ~(stride - 1)) << 1) | (g & (stride - 1));
}

// ---- threading policy -------------------------------------------------------
//
// Sweeps are chunked in *group space* with a fixed chunk size. The chunk
// boundaries depend only on the sweep's group count — never on the pool, its
// size, or whether the chunks actually run concurrently — and reductions sum
// per-chunk partials in chunk index order, so every sweep is bit-identical
// for any pool configuration. The pool only decides wall-clock, not values.

std::atomic<ThreadPool*> g_parallel_pool{nullptr};
std::atomic<int> g_parallel_min_qubits{22};

constexpr Index kChunkGroups = Index{1} << 16;

/// The pool to distribute chunks over, or nullptr for inline execution.
/// Inline when: the state is below the parallel threshold (keeps the
/// fragment hot path allocation-free), the pool has a single worker, or the
/// caller already runs on one of its workers (nested parallel_for would
/// deadlock on the pool's own futures). The global pool is constructed
/// lazily, and only once a >= threshold state is actually swept.
ThreadPool* sweep_pool(int n_qubits) {
  if (n_qubits < g_parallel_min_qubits.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  ThreadPool* pool = g_parallel_pool.load(std::memory_order_acquire);
  if (pool == nullptr) {
    pool = &global_pool();
  }
  if (pool->size() < 2 || pool->on_worker_thread()) {
    return nullptr;
  }
  return pool;
}

/// Runs body(g0, g1) over the fixed chunks of [0, groups).
template <typename Body>
void sweep(Index groups, int n_qubits, const Body& body) {
  if (groups <= kChunkGroups) {
    body(Index{0}, groups);
    return;
  }
  if (ThreadPool* pool = sweep_pool(n_qubits)) {
    pool->parallel_for_chunked(
        0, static_cast<std::size_t>(groups), static_cast<std::size_t>(kChunkGroups),
        [&body](std::size_t lo, std::size_t hi) {
          body(static_cast<Index>(lo), static_cast<Index>(hi));
        });
    return;
  }
  for (Index g = 0; g < groups; g += kChunkGroups) {
    body(g, std::min(groups, g + kChunkGroups));
  }
}

/// Reduction over the same fixed chunks: body(g0, g1) returns its chunk's
/// partial sum; partials are combined in chunk index order regardless of
/// which thread produced them.
template <typename Body>
Real sweep_reduce(Index groups, int n_qubits, const Body& body) {
  if (groups <= kChunkGroups) {
    return body(Index{0}, groups);
  }
  const Index n_chunks = (groups + kChunkGroups - 1) / kChunkGroups;
  std::vector<Real> partial(static_cast<std::size_t>(n_chunks), 0.0);
  const auto run_chunk = [&](std::size_t c) {
    const Index g0 = static_cast<Index>(c) * kChunkGroups;
    partial[c] = body(g0, std::min(groups, g0 + kChunkGroups));
  };
  if (ThreadPool* pool = sweep_pool(n_qubits)) {
    pool->parallel_for(0, static_cast<std::size_t>(n_chunks), run_chunk);
  } else {
    for (std::size_t c = 0; c < static_cast<std::size_t>(n_chunks); ++c) {
      run_chunk(c);
    }
  }
  Real acc = 0.0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(n_chunks); ++c) {
    acc += partial[c];
  }
  return acc;
}

/// Calls f(base, len) for the maximal contiguous index segments of the group
/// id range [g0, g1): a group id expands through insert_zero over the sorted
/// strides, and ids that agree above the lowest stride expand to consecutive
/// indices — the contiguous runs the SIMD kernels consume.
template <typename F>
inline void for_runs(Index g0, Index g1, const Index* sorted, int k, F&& f) {
  const Index lo = sorted[0];
  Index g = g0;
  while (g < g1) {
    const Index len = std::min(lo - (g & (lo - 1)), g1 - g);
    Index idx = g;
    for (int j = 0; j < k; ++j) {
      idx = insert_zero(idx, sorted[j]);
    }
    f(idx, len);
    g += len;
  }
}

}  // namespace

void Statevector::set_parallel_config(ThreadPool* pool, int min_parallel_qubits) {
  QCUT_CHECK(min_parallel_qubits >= 1, "set_parallel_config: threshold must be >= 1");
  g_parallel_pool.store(pool, std::memory_order_release);
  g_parallel_min_qubits.store(min_parallel_qubits, std::memory_order_relaxed);
}

int Statevector::parallel_min_qubits() noexcept {
  return g_parallel_min_qubits.load(std::memory_order_relaxed);
}

Statevector::Statevector(int n_qubits)
    : n_qubits_(n_qubits), amp_(checked_dim(n_qubits), Cplx{0.0, 0.0}) {
  amp_[0] = Cplx{1.0, 0.0};
}

Statevector::Statevector(int n_qubits, Vector amplitudes)
    : n_qubits_(n_qubits), amp_(std::move(amplitudes)) {
  (void)checked_dim(n_qubits);
  QCUT_CHECK(amp_.size() == (std::size_t{1} << n_qubits),
             "Statevector: amplitude count mismatch");
  QCUT_CHECK(approx_eq(vec_norm(amp_), 1.0, 1e-8), "Statevector: state must be normalized");
}

void Statevector::apply(const Matrix& u, const std::vector<int>& qubits) {
  apply(u, qubits, classify_gate(u));
}

void Statevector::apply(const Matrix& u, const std::vector<int>& qubits, const GateClass& cls) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(u.rows() == subdim && u.cols() == subdim,
             "Statevector::apply: matrix/qubit-count mismatch");
  for (int q : qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits_, "Statevector::apply: qubit out of range");
  }
  for (std::size_t a = 0; a < qubits.size(); ++a) {
    for (std::size_t b = a + 1; b < qubits.size(); ++b) {
      QCUT_CHECK(qubits[a] != qubits[b], "Statevector::apply: duplicate qubit");
    }
  }

  switch (cls.structure) {
    case GateStructure::kDiagonal:
      QCUT_CHECK(cls.dim == subdim && static_cast<Index>(cls.diag.size()) == subdim,
                 "Statevector::apply: classification/matrix mismatch");
      obs::count(cls.phase_index >= 0 ? obs::Counter::kDispatchSparsePhase
                                      : obs::Counter::kDispatchDiagonal);
      apply_diagonal(cls, qubits);
      return;
    case GateStructure::kPermutation:
      QCUT_CHECK(cls.dim == subdim, "Statevector::apply: classification/matrix mismatch");
      obs::count(obs::Counter::kDispatchPermutation);
      apply_permutation(cls, qubits);
      return;
    case GateStructure::kGeneric:
      obs::count(k == 1   ? obs::Counter::kDispatchDense1q
                 : k == 2 ? obs::Counter::kDispatchDense2q
                          : obs::Counter::kDispatchGeneric);
      break;
  }

  const Index dim_ = dim();
  const SimdKernels& kr = active_kernels();
  Cplx* amp = amp_.data();

  if (k == 1) {
    // Dense single-qubit kernel: contiguous zero-half / one-half runs, or the
    // interleaved-pair kernel when the target is the least significant bit.
    const Index s = Index{1} << bitpos(qubits[0]);
    const Cplx m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
    sweep(dim_ >> 1, n_qubits_, [&](Index g0, Index g1) {
      if (s == 1) {
        kr.apply1_pairs(amp + 2 * g0, g1 - g0, m);
        return;
      }
      for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
        kr.apply1_run(amp + base, amp + base + s, len, m);
      });
    });
    return;
  }

  if (k == 2) {
    // Dense two-qubit kernel. Sub-index convention matches the generic path:
    // qubits[0] is the high bit, qubits[1] the low bit.
    const Index s0 = Index{1} << bitpos(qubits[0]);
    const Index s1 = Index{1} << bitpos(qubits[1]);
    const Index sorted[2] = {std::min(s0, s1), std::max(s0, s1)};
    Cplx m[16];
    for (Index r = 0; r < 4; ++r) {
      for (Index c = 0; c < 4; ++c) {
        m[4 * r + c] = u(r, c);
      }
    }
    sweep(dim_ >> 2, n_qubits_, [&](Index g0, Index g1) {
      for_runs(g0, g1, sorted, 2, [&](Index base, Index len) {
        kr.apply2_run(amp + base, amp + base + s1, amp + base + s0, amp + base + s0 + s1, len,
                      m);
      });
    });
    return;
  }

  // General k-qubit path: gather/scatter over the 2^k amplitudes of each row
  // group, enumerating the canonical representatives directly. Groups write
  // disjoint slots, so the sweep chunks distribute safely.
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());
  sweep(dim_ >> k, n_qubits_, [&](Index g0, Index g1) {
    std::vector<Cplx> scratch(static_cast<std::size_t>(subdim));
    for (Index g = g0; g < g1; ++g) {
      Index base = g;
      for (int j = 0; j < k; ++j) {
        base = insert_zero(base, sorted[static_cast<std::size_t>(j)]);
      }
      // Gather.
      for (Index sub = 0; sub < subdim; ++sub) {
        Index idx = base;
        for (int j = 0; j < k; ++j) {
          if ((sub >> (k - 1 - j)) & 1) {
            idx |= strides[static_cast<std::size_t>(j)];
          }
        }
        scratch[static_cast<std::size_t>(sub)] = amp[idx];
      }
      // Multiply and scatter.
      for (Index row = 0; row < subdim; ++row) {
        Cplx acc{0.0, 0.0};
        for (Index col = 0; col < subdim; ++col) {
          acc += u(row, col) * scratch[static_cast<std::size_t>(col)];
        }
        Index idx = base;
        for (int j = 0; j < k; ++j) {
          if ((row >> (k - 1 - j)) & 1) {
            idx |= strides[static_cast<std::size_t>(j)];
          }
        }
        amp[idx] = acc;
      }
    }
  });
}

void Statevector::apply_diagonal(const GateClass& cls, const std::vector<int>& qubits) {
  const int k = static_cast<int>(qubits.size());
  const Index dim_ = dim();
  const SimdKernels& kr = active_kernels();
  Cplx* amp = amp_.data();
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }

  if (cls.phase_index >= 0) {
    // Sparse phase: every diagonal entry but one is exactly 1 — only the
    // matching 2^{n-k} amplitude slice is touched (a quarter of the state for
    // the cu1/cp gates that dominate QFT circuits), one phase sweep per run.
    const Cplx phase = cls.diag[static_cast<std::size_t>(cls.phase_index)];
    if (phase == Cplx{1.0, 0.0}) {
      return;  // identity
    }
    Index offset = 0;
    for (int j = 0; j < k; ++j) {
      if ((cls.phase_index >> (k - 1 - j)) & 1) {
        offset |= strides[static_cast<std::size_t>(j)];
      }
    }
    std::vector<Index> sorted = strides;
    std::sort(sorted.begin(), sorted.end());
    sweep(dim_ >> k, n_qubits_, [&](Index g0, Index g1) {
      for_runs(g0, g1, sorted.data(), k, [&](Index base, Index len) {
        kr.scale_run(amp + base + offset, len, phase);
      });
    });
    return;
  }

  // Dense diagonal: one multiply per amplitude, no gather.
  if (k == 1) {
    const Index s = strides[0];
    const Cplx d0 = cls.diag[0], d1 = cls.diag[1];
    sweep(dim_ >> 1, n_qubits_, [&](Index g0, Index g1) {
      if (s == 1) {
        kr.diag1_pairs(amp + 2 * g0, g1 - g0, d0, d1);
        return;
      }
      for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
        kr.scale_run(amp + base, len, d0);
        kr.scale_run(amp + base + s, len, d1);
      });
    });
    return;
  }
  if (k == 2) {
    const Index s0 = strides[0];
    const Index s1 = strides[1];
    const Index sorted[2] = {std::min(s0, s1), std::max(s0, s1)};
    const Cplx d0 = cls.diag[0], d1 = cls.diag[1], d2 = cls.diag[2], d3 = cls.diag[3];
    sweep(dim_ >> 2, n_qubits_, [&](Index g0, Index g1) {
      for_runs(g0, g1, sorted, 2, [&](Index base, Index len) {
        kr.scale_run(amp + base, len, d0);
        kr.scale_run(amp + base + s1, len, d1);
        kr.scale_run(amp + base + s0, len, d2);
        kr.scale_run(amp + base + s0 + s1, len, d3);
      });
    });
    return;
  }
  sweep(dim_, n_qubits_, [&](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      Index sub = 0;
      for (int j = 0; j < k; ++j) {
        if (i & strides[static_cast<std::size_t>(j)]) {
          sub |= Index{1} << (k - 1 - j);
        }
      }
      amp[i] *= cls.diag[static_cast<std::size_t>(sub)];
    }
  });
}

void Statevector::apply_permutation(const GateClass& cls, const std::vector<int>& qubits) {
  if (cls.cycles.empty()) {
    return;  // identity permutation
  }
  const int k = static_cast<int>(qubits.size());
  const Index dim_ = dim();
  const Index subdim = Index{1} << k;
  Cplx* amp = amp_.data();
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }
  std::vector<Index> offs(static_cast<std::size_t>(subdim), 0);
  for (Index sub = 0; sub < subdim; ++sub) {
    for (int j = 0; j < k; ++j) {
      if ((sub >> (k - 1 - j)) & 1) {
        offs[static_cast<std::size_t>(sub)] |= strides[static_cast<std::size_t>(j)];
      }
    }
  }
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());

  if (cls.cycles.size() == 1 && cls.cycles[0].size() == 2) {
    // The ubiquitous involution shape (x, cx, swap): one pairwise swap per
    // group, touching only the cycle's slice of the state. Distinct offsets
    // differ by at least the lowest stride, so the swapped runs never overlap.
    const Index oa = offs[static_cast<std::size_t>(cls.cycles[0][0])];
    const Index ob = offs[static_cast<std::size_t>(cls.cycles[0][1])];
    sweep(dim_ >> k, n_qubits_, [&](Index g0, Index g1) {
      for_runs(g0, g1, sorted.data(), k, [&](Index base, Index len) {
        std::swap_ranges(amp + base + oa, amp + base + oa + len, amp + base + ob);
      });
    });
    return;
  }

  sweep(dim_ >> k, n_qubits_, [&](Index g0, Index g1) {
    for (Index g = g0; g < g1; ++g) {
      Index base = g;
      for (int j = 0; j < k; ++j) {
        base = insert_zero(base, sorted[static_cast<std::size_t>(j)]);
      }
      for (const std::vector<Index>& cyc : cls.cycles) {
        // image[s_i] = s_{i+1}: new[s_{i+1}] = old[s_i], rotated in place.
        const std::size_t m = cyc.size();
        Cplx t = amp[base + offs[static_cast<std::size_t>(cyc[m - 1])]];
        for (std::size_t i = m - 1; i >= 1; --i) {
          amp[base + offs[static_cast<std::size_t>(cyc[i])]] =
              amp[base + offs[static_cast<std::size_t>(cyc[i - 1])]];
        }
        amp[base + offs[static_cast<std::size_t>(cyc[0])]] = t;
      }
    }
  });
}

Real Statevector::prob_one(int qubit) const {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "prob_one: qubit out of range");
  const Index s = Index{1} << bitpos(qubit);
  const Index dim_ = dim();
  const SimdKernels& kr = active_kernels();
  const Cplx* amp = amp_.data();
  // Sums the set-bit half, one norm2 run per group (runs combine in ascending
  // index order within a chunk, chunks in index order — see sweep_reduce).
  return sweep_reduce(dim_ >> 1, n_qubits_, [&](Index g0, Index g1) {
    Real acc = 0.0;
    if (s == 1) {
      for (Index g = g0; g < g1; ++g) {
        acc += norm2(amp[2 * g + 1]);
      }
      return acc;
    }
    for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
      acc += kr.norm2_run(amp + base + s, len);
    });
    return acc;
  });
}

int Statevector::measure(int qubit, Rng& rng) {
  const Real p1 = prob_one(qubit);
  const int outcome = rng.bernoulli(p1) ? 1 : 0;
  project(qubit, outcome);
  return outcome;
}

Real Statevector::project(int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "project: qubit out of range");
  QCUT_CHECK(outcome == 0 || outcome == 1, "project: outcome must be 0/1");
  const Index s = Index{1} << bitpos(qubit);
  const Index dim_ = dim();
  const SimdKernels& kr = active_kernels();
  Cplx* amp = amp_.data();
  const Real p = sweep_reduce(dim_ >> 1, n_qubits_, [&](Index g0, Index g1) {
    Real acc = 0.0;
    if (s == 1) {
      for (Index g = g0; g < g1; ++g) {
        acc += norm2(amp[2 * g + outcome]);
        amp[2 * g + (1 - outcome)] = Cplx{0.0, 0.0};
      }
      return acc;
    }
    for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
      const Index live = outcome ? base + s : base;
      const Index dead = outcome ? base : base + s;
      acc += kr.norm2_run(amp + live, len);
      std::fill(amp + dead, amp + dead + len, Cplx{0.0, 0.0});
    });
    return acc;
  });
  if (p > 0.0) {
    const Cplx inv{1.0 / std::sqrt(p), 0.0};
    sweep(dim_, n_qubits_, [&](Index i0, Index i1) { kr.scale_run(amp + i0, i1 - i0, inv); });
  }
  return p;
}

Statevector Statevector::projected(const Statevector& src, int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < src.n_qubits_, "projected: qubit out of range");
  QCUT_CHECK(outcome == 0 || outcome == 1, "projected: outcome must be 0/1");
  const Index s = Index{1} << src.bitpos(qubit);
  const Index dim_ = src.dim();
  const SimdKernels& kr = active_kernels();
  const Cplx* in = src.amp_.data();
  // Same renormalization constant as project(): identical chunking, identical
  // run kernels over the live half, identical combine order.
  const Real p = sweep_reduce(dim_ >> 1, src.n_qubits_, [&](Index g0, Index g1) {
    Real acc = 0.0;
    if (s == 1) {
      for (Index g = g0; g < g1; ++g) {
        acc += norm2(in[2 * g + outcome]);
      }
      return acc;
    }
    for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
      acc += kr.norm2_run(in + (outcome ? base + s : base), len);
    });
    return acc;
  });
  Vector out(static_cast<std::size_t>(dim_), Cplx{0.0, 0.0});
  if (p > 0.0) {
    const Cplx inv{1.0 / std::sqrt(p), 0.0};
    Cplx* dst = out.data();
    sweep(dim_ >> 1, src.n_qubits_, [&](Index g0, Index g1) {
      if (s == 1) {
        for (Index g = g0; g < g1; ++g) {
          dst[2 * g + outcome] = in[2 * g + outcome] * inv;
        }
        return;
      }
      for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
        const Index live = outcome ? base + s : base;
        std::copy(in + live, in + live + len, dst + live);
        kr.scale_run(dst + live, len, inv);
      });
    });
  }
  return Statevector(Unchecked{}, src.n_qubits_, std::move(out));
}

void Statevector::reset(int qubit, Rng& rng) {
  const int outcome = measure(qubit, rng);
  if (outcome == 1) {
    // Flip back to |0⟩.
    const Index s = Index{1} << bitpos(qubit);
    const Index dim_ = dim();
    Cplx* amp = amp_.data();
    sweep(dim_ >> 1, n_qubits_, [&](Index g0, Index g1) {
      if (s == 1) {
        for (Index g = g0; g < g1; ++g) {
          std::swap(amp[2 * g], amp[2 * g + 1]);
        }
        return;
      }
      for_runs(g0, g1, &s, 1, [&](Index base, Index len) {
        std::swap_ranges(amp + base, amp + base + len, amp + base + s);
      });
    });
  }
}

void Statevector::initialize(const std::vector<int>& qubits, const Vector& state) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(static_cast<Index>(state.size()) == subdim,
             "initialize: state/qubit-count mismatch");
  Index mask = 0;
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
    mask |= strides[static_cast<std::size_t>(j)];
  }
  const Index dim_ = dim();
  // The qubits must currently be |0..0⟩: all amplitude weight on indices with
  // zero bits under `mask`. Checked unconditionally — a violated precondition
  // would silently scale surviving amplitudes by stale weight and corrupt
  // every downstream probability. The masked-norm sweep is O(2^n), the same
  // cost as the distribute loop below.
  Real leaked = 0.0;
  for (Index i = 0; i < dim_; ++i) {
    if ((i & mask) != 0) {
      leaked += norm2(amp_[static_cast<std::size_t>(i)]);
    }
  }
  QCUT_CHECK(leaked <= 1e-12, "initialize: qubits are not in |0..0⟩");
  // Distribute: amp[base | bits(sub)] = amp[base] * state[sub].
  std::vector<Index> sorted = strides;
  std::sort(sorted.begin(), sorted.end());
  Cplx* amp = amp_.data();
  sweep(dim_ >> k, n_qubits_, [&](Index g0, Index g1) {
    for (Index g = g0; g < g1; ++g) {
      Index base = g;
      for (int j = 0; j < k; ++j) {
        base = insert_zero(base, sorted[static_cast<std::size_t>(j)]);
      }
      const Cplx a = amp[base];
      for (Index sub = subdim - 1; sub >= 0; --sub) {
        Index idx = base;
        for (int j = 0; j < k; ++j) {
          if ((sub >> (k - 1 - j)) & 1) {
            idx |= strides[static_cast<std::size_t>(j)];
          }
        }
        amp[idx] = a * state[static_cast<std::size_t>(sub)];
        if (sub == 0) {
          break;
        }
      }
    }
  });
}

Real Statevector::expectation_pauli(const std::string& pauli) const {
  QCUT_CHECK(static_cast<int>(pauli.size()) == n_qubits_,
             "expectation_pauli: string length must equal qubit count");
  // I/Z-only strings (every cut observable the library measures natively) are
  // a single sign-weighted probability sweep — no state copy, no gate
  // applications.
  std::uint64_t zmask = 0;
  bool zi_only = true;
  for (int q = 0; q < n_qubits_; ++q) {
    const char c = pauli[static_cast<std::size_t>(q)];
    if (c == 'Z') {
      zmask |= std::uint64_t{1} << bitpos(q);
    } else if (c != 'I') {
      zi_only = false;
    }
  }
  if (zi_only) {
    const Index dim_ = dim();
    const SimdKernels& kr = active_kernels();
    const Cplx* amp = amp_.data();
    if (zmask == 0) {
      return sweep_reduce(dim_, n_qubits_, [&](Index i0, Index i1) {
        return kr.norm2_run(amp + i0, i1 - i0);
      });
    }
    // The sign parity64(i & zmask) is constant over each aligned block of
    // `lo` indices (lo = lowest Z stride): one signed norm2 run per block.
    const Index lo = static_cast<Index>(zmask & (~zmask + 1));
    return sweep_reduce(dim_ / lo, n_qubits_, [&](Index b0, Index b1) {
      Real acc = 0.0;
      for (Index b = b0; b < b1; ++b) {
        const Index base = b * lo;
        const Real w = kr.norm2_run(amp + base, lo);
        acc += parity64(static_cast<std::uint64_t>(base) & zmask) ? -w : w;
      }
      return acc;
    });
  }
  // Apply the Pauli string to a copy and take the inner product (X/Y factors
  // dispatch to the permutation/diagonal kernels).
  Statevector copy = *this;
  for (int q = 0; q < n_qubits_; ++q) {
    const char c = pauli[static_cast<std::size_t>(q)];
    if (c == 'I') {
      continue;
    }
    copy.apply(pauli_matrix(pauli_from_char(c)), {q});
  }
  return inner(amp_, copy.amp_).real();
}

std::vector<Real> Statevector::probabilities() const {
  std::vector<Real> p(amp_.size());
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    p[i] = norm2(amp_[i]);
  }
  return p;
}

Index Statevector::sample(Rng& rng) const {
  Real r = rng.uniform();
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    const Real p = norm2(amp_[i]);
    if (r < p) {
      return static_cast<Index>(i);
    }
    r -= p;
  }
  return static_cast<Index>(amp_.size()) - 1;
}

Real Statevector::norm() const { return vec_norm(amp_); }

}  // namespace qcut
