#include "qcut/sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "qcut/linalg/pauli.hpp"

namespace qcut {

namespace {

// Width must be validated BEFORE the 2^n amplitude vector is allocated: with
// the Circuit IR now wider than the engine cap, a check placed after the
// allocation would surface as an OOM kill / bad_alloc instead of the Error.
std::size_t checked_dim(int n_qubits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= Statevector::kMaxQubits,
             "Statevector: unsupported qubit count");
  return std::size_t{1} << n_qubits;
}

}  // namespace

Statevector::Statevector(int n_qubits)
    : n_qubits_(n_qubits), amp_(checked_dim(n_qubits), Cplx{0.0, 0.0}) {
  amp_[0] = Cplx{1.0, 0.0};
}

Statevector::Statevector(int n_qubits, Vector amplitudes)
    : n_qubits_(n_qubits), amp_(std::move(amplitudes)) {
  (void)checked_dim(n_qubits);
  QCUT_CHECK(amp_.size() == (std::size_t{1} << n_qubits),
             "Statevector: amplitude count mismatch");
  QCUT_CHECK(approx_eq(vec_norm(amp_), 1.0, 1e-8), "Statevector: state must be normalized");
}

void Statevector::apply(const Matrix& u, const std::vector<int>& qubits) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(u.rows() == subdim && u.cols() == subdim,
             "Statevector::apply: matrix/qubit-count mismatch");
  for (int q : qubits) {
    QCUT_CHECK(q >= 0 && q < n_qubits_, "Statevector::apply: qubit out of range");
  }
  for (std::size_t a = 0; a < qubits.size(); ++a) {
    for (std::size_t b = a + 1; b < qubits.size(); ++b) {
      QCUT_CHECK(qubits[a] != qubits[b], "Statevector::apply: duplicate qubit");
    }
  }

  if (k == 1) {
    // Fast path: single-qubit gate.
    const Index stride = Index{1} << bitpos(qubits[0]);
    const Cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
    const Index dim_ = dim();
    for (Index base = 0; base < dim_; ++base) {
      if (base & stride) {
        continue;
      }
      const Index i0 = base;
      const Index i1 = base | stride;
      const Cplx a0 = amp_[static_cast<std::size_t>(i0)];
      const Cplx a1 = amp_[static_cast<std::size_t>(i1)];
      amp_[static_cast<std::size_t>(i0)] = u00 * a0 + u01 * a1;
      amp_[static_cast<std::size_t>(i1)] = u10 * a0 + u11 * a1;
    }
    return;
  }

  if (k == 2) {
    // Fast path: two-qubit gate (the CNOT-heavy cut gadgets hit this on
    // every entangling gate). Sub-index convention matches the generic path:
    // qubits[0] is the high bit, qubits[1] the low bit.
    const Index s0 = Index{1} << bitpos(qubits[0]);
    const Index s1 = Index{1} << bitpos(qubits[1]);
    const Index mask = s0 | s1;
    Cplx m[4][4];
    for (Index r = 0; r < 4; ++r) {
      for (Index c = 0; c < 4; ++c) {
        m[r][c] = u(r, c);
      }
    }
    const Index dim_ = dim();
    for (Index base = 0; base < dim_; ++base) {
      if (base & mask) {
        continue;
      }
      const std::size_t i00 = static_cast<std::size_t>(base);
      const std::size_t i01 = static_cast<std::size_t>(base | s1);
      const std::size_t i10 = static_cast<std::size_t>(base | s0);
      const std::size_t i11 = static_cast<std::size_t>(base | mask);
      const Cplx a0 = amp_[i00], a1 = amp_[i01], a2 = amp_[i10], a3 = amp_[i11];
      amp_[i00] = m[0][0] * a0 + m[0][1] * a1 + m[0][2] * a2 + m[0][3] * a3;
      amp_[i01] = m[1][0] * a0 + m[1][1] * a1 + m[1][2] * a2 + m[1][3] * a3;
      amp_[i10] = m[2][0] * a0 + m[2][1] * a1 + m[2][2] * a2 + m[2][3] * a3;
      amp_[i11] = m[3][0] * a0 + m[3][1] * a1 + m[3][2] * a2 + m[3][3] * a3;
    }
    return;
  }

  // General k-qubit path: gather/scatter over the 2^k amplitudes of each
  // "row group" determined by the non-participating qubits.
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
  }
  Index mask = 0;
  for (Index s : strides) {
    mask |= s;
  }
  std::vector<Cplx> scratch(static_cast<std::size_t>(subdim));
  const Index dim_ = dim();
  for (Index base = 0; base < dim_; ++base) {
    if (base & mask) {
      continue;  // enumerate only the canonical representative of each group
    }
    // Gather.
    for (Index sub = 0; sub < subdim; ++sub) {
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((sub >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      scratch[static_cast<std::size_t>(sub)] = amp_[static_cast<std::size_t>(idx)];
    }
    // Multiply and scatter.
    for (Index row = 0; row < subdim; ++row) {
      Cplx acc{0.0, 0.0};
      for (Index col = 0; col < subdim; ++col) {
        acc += u(row, col) * scratch[static_cast<std::size_t>(col)];
      }
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((row >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      amp_[static_cast<std::size_t>(idx)] = acc;
    }
  }
}

Real Statevector::prob_one(int qubit) const {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "prob_one: qubit out of range");
  const Index stride = Index{1} << bitpos(qubit);
  Real p = 0.0;
  const Index dim_ = dim();
  for (Index i = 0; i < dim_; ++i) {
    if (i & stride) {
      p += norm2(amp_[static_cast<std::size_t>(i)]);
    }
  }
  return p;
}

int Statevector::measure(int qubit, Rng& rng) {
  const Real p1 = prob_one(qubit);
  const int outcome = rng.bernoulli(p1) ? 1 : 0;
  project(qubit, outcome);
  return outcome;
}

Real Statevector::project(int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "project: qubit out of range");
  QCUT_CHECK(outcome == 0 || outcome == 1, "project: outcome must be 0/1");
  const Index stride = Index{1} << bitpos(qubit);
  Real p = 0.0;
  const Index dim_ = dim();
  for (Index i = 0; i < dim_; ++i) {
    const bool bit = (i & stride) != 0;
    if (bit == (outcome == 1)) {
      p += norm2(amp_[static_cast<std::size_t>(i)]);
    } else {
      amp_[static_cast<std::size_t>(i)] = Cplx{0.0, 0.0};
    }
  }
  if (p > 0.0) {
    const Real inv = 1.0 / std::sqrt(p);
    for (auto& a : amp_) {
      a *= inv;
    }
  }
  return p;
}

void Statevector::reset(int qubit, Rng& rng) {
  const int outcome = measure(qubit, rng);
  if (outcome == 1) {
    // Flip back to |0⟩.
    const Index stride = Index{1} << bitpos(qubit);
    const Index dim_ = dim();
    for (Index i = 0; i < dim_; ++i) {
      if (!(i & stride)) {
        std::swap(amp_[static_cast<std::size_t>(i)], amp_[static_cast<std::size_t>(i | stride)]);
      }
    }
  }
}

void Statevector::initialize(const std::vector<int>& qubits, const Vector& state) {
  const int k = static_cast<int>(qubits.size());
  const Index subdim = Index{1} << k;
  QCUT_CHECK(static_cast<Index>(state.size()) == subdim,
             "initialize: state/qubit-count mismatch");
  Index mask = 0;
  std::vector<Index> strides(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    strides[static_cast<std::size_t>(j)] = Index{1} << bitpos(qubits[static_cast<std::size_t>(j)]);
    mask |= strides[static_cast<std::size_t>(j)];
  }
  const Index dim_ = dim();
  // The qubits must currently be |0..0⟩: all amplitude weight on indices with
  // zero bits under `mask`. Checked unconditionally — a violated precondition
  // would silently scale surviving amplitudes by stale weight and corrupt
  // every downstream probability. The masked-norm sweep is O(2^n), the same
  // cost as the distribute loop below.
  Real leaked = 0.0;
  for (Index i = 0; i < dim_; ++i) {
    if ((i & mask) != 0) {
      leaked += norm2(amp_[static_cast<std::size_t>(i)]);
    }
  }
  QCUT_CHECK(leaked <= 1e-12, "initialize: qubits are not in |0..0⟩");
  // Distribute: amp[base | bits(sub)] = amp[base] * state[sub].
  for (Index base = 0; base < dim_; ++base) {
    if (base & mask) {
      continue;
    }
    const Cplx a = amp_[static_cast<std::size_t>(base)];
    for (Index sub = subdim - 1; sub >= 0; --sub) {
      Index idx = base;
      for (int j = 0; j < k; ++j) {
        if ((sub >> (k - 1 - j)) & 1) {
          idx |= strides[static_cast<std::size_t>(j)];
        }
      }
      amp_[static_cast<std::size_t>(idx)] = a * state[static_cast<std::size_t>(sub)];
      if (sub == 0) {
        break;
      }
    }
  }
}

Real Statevector::expectation_pauli(const std::string& pauli) const {
  QCUT_CHECK(static_cast<int>(pauli.size()) == n_qubits_,
             "expectation_pauli: string length must equal qubit count");
  // Apply the Pauli string to a copy and take the inner product.
  Statevector copy = *this;
  for (int q = 0; q < n_qubits_; ++q) {
    const char c = pauli[static_cast<std::size_t>(q)];
    if (c == 'I') {
      continue;
    }
    copy.apply(pauli_matrix(pauli_from_char(c)), {q});
  }
  return inner(amp_, copy.amp_).real();
}

std::vector<Real> Statevector::probabilities() const {
  std::vector<Real> p(amp_.size());
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    p[i] = norm2(amp_[i]);
  }
  return p;
}

Index Statevector::sample(Rng& rng) const {
  Real r = rng.uniform();
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    const Real p = norm2(amp_[i]);
    if (r < p) {
      return static_cast<Index>(i);
    }
    r -= p;
  }
  return static_cast<Index>(amp_.size()) - 1;
}

Real Statevector::norm() const { return vec_norm(amp_); }

}  // namespace qcut
