// Portable scalar implementation of the run kernels — the correctness
// yardstick every vector tier is tested against, and the fallback on
// machines without AVX2. Compiled with the project's baseline flags only
// (no -m options), so it runs anywhere.
#include "qcut/sim/simd_kernels.hpp"

namespace qcut {

namespace {

void apply1_run_scalar(Cplx* a0, Cplx* a1, Index count, const Cplx* m) {
  const Cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (Index i = 0; i < count; ++i) {
    const Cplx x0 = a0[i];
    const Cplx x1 = a1[i];
    a0[i] = m00 * x0 + m01 * x1;
    a1[i] = m10 * x0 + m11 * x1;
  }
}

void apply1_pairs_scalar(Cplx* a, Index npairs, const Cplx* m) {
  const Cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (Index p = 0; p < npairs; ++p) {
    const Cplx x0 = a[2 * p];
    const Cplx x1 = a[2 * p + 1];
    a[2 * p] = m00 * x0 + m01 * x1;
    a[2 * p + 1] = m10 * x0 + m11 * x1;
  }
}

void apply2_run_scalar(Cplx* p00, Cplx* p01, Cplx* p10, Cplx* p11, Index count, const Cplx* m) {
  for (Index i = 0; i < count; ++i) {
    const Cplx x0 = p00[i], x1 = p01[i], x2 = p10[i], x3 = p11[i];
    p00[i] = m[0] * x0 + m[1] * x1 + m[2] * x2 + m[3] * x3;
    p01[i] = m[4] * x0 + m[5] * x1 + m[6] * x2 + m[7] * x3;
    p10[i] = m[8] * x0 + m[9] * x1 + m[10] * x2 + m[11] * x3;
    p11[i] = m[12] * x0 + m[13] * x1 + m[14] * x2 + m[15] * x3;
  }
}

void scale_run_scalar(Cplx* a, Index count, Cplx factor) {
  for (Index i = 0; i < count; ++i) {
    a[i] *= factor;
  }
}

void diag1_pairs_scalar(Cplx* a, Index npairs, Cplx d0, Cplx d1) {
  for (Index p = 0; p < npairs; ++p) {
    a[2 * p] *= d0;
    a[2 * p + 1] *= d1;
  }
}

double norm2_run_scalar(const Cplx* a, Index count) {
  double acc = 0.0;
  for (Index i = 0; i < count; ++i) {
    acc += norm2(a[i]);
  }
  return acc;
}

constexpr SimdKernels kScalarKernels = {
    &apply1_run_scalar, &apply1_pairs_scalar, &apply2_run_scalar,
    &scale_run_scalar,  &diag1_pairs_scalar,  &norm2_run_scalar,
};

}  // namespace

const SimdKernels* simd_kernels_scalar() { return &kScalarKernels; }

}  // namespace qcut
