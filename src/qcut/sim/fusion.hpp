// Gate fusion over the Circuit IR.
//
// Two rewrite passes that reduce the number of full-state sweeps a circuit
// costs, without changing its semantics:
//
//  1. Single-qubit run composition: maximal runs of 1q unitaries on the same
//     wire compose into one 2x2 product (applied-last times applied-first).
//     A pending 1q gate may drift *later* in the op list — past multi-qubit
//     unitaries on other wires, with which it commutes exactly — but never
//     earlier. Measure / reset / conditional / initialize ops flush every
//     pending gate first: they are branch points, and applying unitaries
//     before the branch point both preserves the trailing-measure fold and
//     avoids re-applying them per branch.
//  2. Monomial-run collapse: a contiguous run of diagonal / permutation
//     gates on one small wire cluster composes exactly in monomial column
//     form (one nonzero per column). The run is rewritten whenever the
//     product classifies better than its pieces — x·diag·x is diagonal
//     again, cx·cx is the identity and drops out — merges ACROSS the
//     diagonal/permutation boundary that the diagonal-run pass cannot see.
//     A generic monomial product keeps the original structured ops.
//  3. Diagonal-run merge: within a consecutive run of unconditioned diagonal
//     unitaries (all of which commute, regardless of wires), the ops sharing
//     one qubit list merge into a single diagonal sweep (elementwise product
//     of their diagonals), emitted in first-occurrence order.
//
// Fused ops re-enter the IR through Circuit::gate, so they are re-classified
// (GateClass) and the statevector engine dispatches its specialized kernels
// on the *fused* structure — e.g. rz·rz stays a diagonal sweep, x·x drops
// out entirely. Only gates that are exactly the identity are dropped; a
// global-phase identity is kept (amplitude-level equivalence is the
// contract, not just probability-level).
//
// Equivalence: fused and unfused circuits agree on all branch probabilities,
// classical bits, and amplitudes to ~1e-12 (matrix products round at the
// usual float level). The fusion-equivalence property test pins this.
#pragma once

#include <cstddef>

#include "qcut/sim/circuit.hpp"

namespace qcut {

struct FusionStats {
  std::size_t ops_before = 0;        ///< ops seen across fused ranges
  std::size_t ops_after = 0;         ///< ops emitted
  std::size_t fused_1q = 0;          ///< 1q unitaries absorbed into a run product
  std::size_t merged_diagonal = 0;   ///< diagonal ops absorbed into a merged sweep
  std::size_t merged_monomial = 0;   ///< diag/perm ops absorbed into a monomial collapse
  std::size_t dropped_identity = 0;  ///< exact-identity ops elided

  FusionStats& operator+=(const FusionStats& other) {
    ops_before += other.ops_before;
    ops_after += other.ops_after;
    fused_1q += other.fused_1q;
    merged_diagonal += other.merged_diagonal;
    merged_monomial += other.merged_monomial;
    dropped_identity += other.dropped_identity;
    return *this;
  }
};

/// Fuses the op range [begin, end) of `c` into a fresh circuit over the same
/// registers. Exposed (rather than whole-circuit only) for callers that must
/// respect an internal boundary — the fragment evaluator's unconditioned
/// prefix / conditional suffix split fuses each side separately so no op
/// crosses the prefix-caching boundary.
Circuit fuse_range(const Circuit& c, std::size_t begin, std::size_t end,
                   FusionStats* stats = nullptr);

/// Fuses the whole circuit.
Circuit fuse_circuit(const Circuit& c, FusionStats* stats = nullptr);

}  // namespace qcut
