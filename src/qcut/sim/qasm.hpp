// OpenQASM 2.0 export of circuits — the bridge from simulated fragments to
// real hardware. The QPD subcircuits a cut produces can be dumped as QASM and
// executed on any provider; the sampling/recombination pipeline stays here.
//
// Supported ops: named gates from the builder (h, x, y, z, s, sdg, t, cx, cz,
// swap, rx/ry/rz), arbitrary single-qubit unitaries (via ZYZ → u3), two-qubit
// `initialize` ops (via Schmidt synthesis: ry + cx + local u3s), measurement,
// reset, and classically controlled single-qubit gates (`if (c == 1)`).
// Larger initializes and unlabeled multi-qubit unitaries are rejected —
// decompose them upstream.
#pragma once

#include <string>

#include "qcut/sim/circuit.hpp"

namespace qcut {

/// Serializes the circuit as an OpenQASM 2.0 program.
std::string to_qasm(const Circuit& c);

/// The exporter's number formatting: locale-independent (classic "C" locale)
/// and round-trip exact — strtod(qasm_format_real(x)) == x bit-identically
/// (max_digits10 significant digits). Exposed so tests can pin the property.
std::string qasm_format_real(Real x);

}  // namespace qcut
