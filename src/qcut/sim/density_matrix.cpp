#include "qcut/sim/density_matrix.hpp"

#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"

namespace qcut {

DensityMatrix::DensityMatrix(int n_qubits)
    : n_qubits_(n_qubits), rho_(Index{1} << n_qubits, Index{1} << n_qubits) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= 10, "DensityMatrix: unsupported qubit count");
  rho_(0, 0) = Cplx{1.0, 0.0};
}

DensityMatrix::DensityMatrix(int n_qubits, Matrix rho) : n_qubits_(n_qubits), rho_(std::move(rho)) {
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= 10, "DensityMatrix: unsupported qubit count");
  const Index dim = Index{1} << n_qubits;
  QCUT_CHECK(rho_.rows() == dim && rho_.cols() == dim, "DensityMatrix: dimension mismatch");
}

DensityMatrix DensityMatrix::from_statevector(int n_qubits, const Vector& psi) {
  return DensityMatrix(n_qubits, density(psi));
}

void DensityMatrix::apply_unitary(const Matrix& u, const std::vector<int>& qubits) {
  const Matrix full = embed(u, qubits, n_qubits_);
  rho_ = full * rho_ * full.dagger();
}

void DensityMatrix::apply_channel(const Channel& e, const std::vector<int>& qubits) {
  const Index dim = Index{1} << n_qubits_;
  Matrix acc(dim, dim);
  for (const auto& k : e.kraus()) {
    const Matrix full = embed(k, qubits, n_qubits_);
    acc += full * rho_ * full.dagger();
  }
  rho_ = std::move(acc);
}

Real DensityMatrix::prob_one(int qubit) const {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "prob_one: qubit out of range");
  const Index stride = Index{1} << (n_qubits_ - 1 - qubit);
  Real p = 0.0;
  const Index dim = Index{1} << n_qubits_;
  for (Index i = 0; i < dim; ++i) {
    if (i & stride) {
      p += rho_(i, i).real();
    }
  }
  return p;
}

Real DensityMatrix::project_unnormalized(int qubit, int outcome) {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "project: qubit out of range");
  const Index stride = Index{1} << (n_qubits_ - 1 - qubit);
  const Index dim = Index{1} << n_qubits_;
  Real p = 0.0;
  for (Index r = 0; r < dim; ++r) {
    const bool rbit = (r & stride) != 0;
    for (Index c = 0; c < dim; ++c) {
      const bool cbit = (c & stride) != 0;
      if (rbit != (outcome == 1) || cbit != (outcome == 1)) {
        rho_(r, c) = Cplx{0.0, 0.0};
      } else if (r == c) {
        p += rho_(r, c).real();
      }
    }
  }
  return p;
}

void DensityMatrix::dephase(int qubit) {
  QCUT_CHECK(qubit >= 0 && qubit < n_qubits_, "dephase: qubit out of range");
  const Index stride = Index{1} << (n_qubits_ - 1 - qubit);
  const Index dim = Index{1} << n_qubits_;
  for (Index r = 0; r < dim; ++r) {
    for (Index c = 0; c < dim; ++c) {
      if (((r & stride) != 0) != ((c & stride) != 0)) {
        rho_(r, c) = Cplx{0.0, 0.0};
      }
    }
  }
}

void DensityMatrix::reset(int qubit) {
  // Reset channel: |0⟩⟨0| ρ |0⟩⟨0| + |0⟩⟨1| ρ |1⟩⟨0| on the target qubit.
  Matrix k0(2, 2);
  k0(0, 0) = Cplx{1.0, 0.0};
  Matrix k1(2, 2);
  k1(0, 1) = Cplx{1.0, 0.0};
  apply_channel(Channel({k0, k1}), {qubit});
}

Real DensityMatrix::expectation_pauli(const std::string& pauli) const {
  QCUT_CHECK(static_cast<int>(pauli.size()) == n_qubits_,
             "expectation_pauli: string length must equal qubit count");
  return expectation(pauli_string(pauli), rho_).real();
}

Real DensityMatrix::trace() const { return rho_.trace().real(); }

void DensityMatrix::renormalize() {
  const Real t = trace();
  QCUT_CHECK(t > 0.0, "renormalize: zero trace");
  rho_ *= Cplx{1.0 / t, 0.0};
}

}  // namespace qcut
