#include "qcut/sim/expectation.hpp"

#include "qcut/linalg/pauli.hpp"

namespace qcut {

PauliObservable::PauliObservable(std::initializer_list<std::pair<Real, std::string>> terms)
    : terms_(terms) {
  for (const auto& [w, p] : terms_) {
    (void)w;
    QCUT_CHECK(!p.empty(), "PauliObservable: empty Pauli string");
    QCUT_CHECK(p.size() == terms_.front().second.size(),
               "PauliObservable: inconsistent string lengths");
  }
}

PauliObservable& PauliObservable::add(Real weight, std::string pauli) {
  QCUT_CHECK(!pauli.empty(), "PauliObservable::add: empty Pauli string");
  if (!terms_.empty()) {
    QCUT_CHECK(pauli.size() == terms_.front().second.size(),
               "PauliObservable::add: inconsistent string lengths");
  }
  terms_.emplace_back(weight, std::move(pauli));
  return *this;
}

int PauliObservable::n_qubits() const {
  QCUT_CHECK(!terms_.empty(), "PauliObservable: empty observable");
  return static_cast<int>(terms_.front().second.size());
}

Real PauliObservable::expectation(const Statevector& sv) const {
  Real acc = 0.0;
  for (const auto& [w, p] : terms_) {
    acc += w * sv.expectation_pauli(p);
  }
  return acc;
}

Real PauliObservable::expectation(const DensityMatrix& dm) const {
  Real acc = 0.0;
  for (const auto& [w, p] : terms_) {
    acc += w * dm.expectation_pauli(p);
  }
  return acc;
}

Matrix PauliObservable::to_matrix() const {
  QCUT_CHECK(!terms_.empty(), "PauliObservable: empty observable");
  const Index dim = Index{1} << n_qubits();
  Matrix acc(dim, dim);
  for (const auto& [w, p] : terms_) {
    acc += Cplx{w, 0.0} * pauli_string(p);
  }
  return acc;
}

}  // namespace qcut
