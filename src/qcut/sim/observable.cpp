#include "qcut/sim/observable.hpp"

#include "qcut/common/error.hpp"

namespace qcut {

Observable Observable::parse(const std::string& pauli) {
  QCUT_CHECK(!pauli.empty(), "Observable: empty Pauli string");
  for (std::size_t i = 0; i < pauli.size(); ++i) {
    const char c = pauli[i];
    QCUT_CHECK(c == 'I' || c == 'X' || c == 'Y' || c == 'Z',
               std::string("Observable: invalid Pauli character '") + c + "' at qubit " +
                   std::to_string(i) + " (expected one of I, X, Y, Z)");
  }
  return Observable(pauli);
}

Observable Observable::z_all(int n) {
  QCUT_CHECK(n >= 1, "Observable::z_all: need at least one qubit");
  return Observable(std::string(static_cast<std::size_t>(n), 'Z'));
}

Observable Observable::x_all(int n) {
  QCUT_CHECK(n >= 1, "Observable::x_all: need at least one qubit");
  return Observable(std::string(static_cast<std::size_t>(n), 'X'));
}

char Observable::pauli(int q) const {
  QCUT_CHECK(q >= 0 && q < n_qubits(), "Observable: qubit index out of range");
  return pauli_[static_cast<std::size_t>(q)];
}

bool Observable::is_identity() const noexcept {
  for (char c : pauli_) {
    if (c != 'I') {
      return false;
    }
  }
  return true;
}

}  // namespace qcut
