// Run-granular SIMD kernel table for the statevector engine.
//
// The statevector hot loops all reduce to a handful of operations over
// *contiguous runs* of interleaved complex<double> amplitudes (the layout
// std::vector<std::complex<double>> already has: re, im, re, im, ...).
// This header defines a function-pointer table of exactly those run
// operations; one translation unit per ISA tier (scalar / AVX2 / AVX-512)
// provides an implementation, and sim/simd_dispatch.cpp selects one table at
// startup. statevector.cpp enumerates the runs (strides, group bases, chunk
// boundaries) and stays ISA-agnostic.
//
// Determinism contract: for a fixed tier, every kernel is a pure function of
// its inputs with a fixed internal evaluation order — norm2_run accumulates
// its lanes in a fixed pattern — so results are bit-identical across calls
// and across thread counts (chunk boundaries are chosen by the caller,
// independent of the pool size). Different tiers may round differently
// (vector lanes reassociate sums); cross-tier agreement is 1e-12-level, not
// bitwise, and the equivalence tests pin exactly that.
#pragma once

#include "qcut/common/types.hpp"

namespace qcut {

/// One ISA tier's run kernels. All pointers are non-null in a published
/// table. `count` is the run length in complex elements; runs may overlap
/// only in the trivial sense of aliasing the same statevector — the pointer
/// arguments of one call are always mutually disjoint.
struct SimdKernels {
  /// Dense 1q gate on runs: for i in [0, count):
  ///   (a0[i], a1[i]) <- (m[0] a0[i] + m[1] a1[i], m[2] a0[i] + m[3] a1[i]).
  /// a0/a1 are the zero-bit and one-bit halves of each group (a1 = a0 + s).
  void (*apply1_run)(Cplx* a0, Cplx* a1, Index count, const Cplx* m);

  /// Dense 1q gate on stride-1 interleaved pairs (target qubit = least
  /// significant index bit): for p in [0, npairs):
  ///   (a[2p], a[2p+1]) <- (m[0] a[2p] + m[1] a[2p+1], m[2] a[2p] + m[3] a[2p+1]).
  void (*apply1_pairs)(Cplx* a, Index npairs, const Cplx* m);

  /// Dense 2q gate on runs: p00..p11 are the four sub-basis slices of each
  /// group (row-major m[16], sub-index 2*bit(qubits[0]) + bit(qubits[1])):
  ///   p_r[i] <- sum_c m[4r + c] p_c[i].
  void (*apply2_run)(Cplx* p00, Cplx* p01, Cplx* p10, Cplx* p11, Index count, const Cplx* m);

  /// a[i] *= factor for i in [0, count). Covers the diagonal and sparse-phase
  /// sweeps (one call per constant-diagonal run) and renormalization.
  void (*scale_run)(Cplx* a, Index count, Cplx factor);

  /// Stride-1 diagonal 1q gate: a[2p] *= d0, a[2p+1] *= d1 for p in [0, npairs).
  void (*diag1_pairs)(Cplx* a, Index npairs, Cplx d0, Cplx d1);

  /// Sum of |a[i]|^2 over the run, in a fixed per-tier evaluation order.
  double (*norm2_run)(const Cplx* a, Index count);
};

/// Per-tier table accessors, defined one per translation unit so each can be
/// compiled with its own -m flags. A tier the build does not support (non-x86
/// target, missing compiler flags) returns nullptr and is simply absent from
/// dispatch.
const SimdKernels* simd_kernels_scalar();
const SimdKernels* simd_kernels_avx2();
const SimdKernels* simd_kernels_avx512();

}  // namespace qcut
