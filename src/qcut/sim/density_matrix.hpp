// Density-matrix simulation engine.
//
// Used for exact, sampling-free verification: QPD reconstruction identities,
// teleportation channels with arbitrary (mixed) resource states, and noise
// studies. O(4^n) memory, fine for the <= 6-qubit fragments the cut
// protocols produce.
#pragma once

#include <vector>

#include "qcut/linalg/channel.hpp"
#include "qcut/linalg/matrix.hpp"

namespace qcut {

class DensityMatrix {
 public:
  /// |0..0⟩⟨0..0| on n qubits.
  explicit DensityMatrix(int n_qubits);
  /// From an explicit density operator (must be 2^n x 2^n).
  DensityMatrix(int n_qubits, Matrix rho);
  /// From a pure state.
  static DensityMatrix from_statevector(int n_qubits, const Vector& psi);

  int n_qubits() const noexcept { return n_qubits_; }
  const Matrix& rho() const noexcept { return rho_; }
  Matrix& rho() noexcept { return rho_; }

  /// ρ ← (U ⊗ I) ρ (U ⊗ I)† on the listed qubits.
  void apply_unitary(const Matrix& u, const std::vector<int>& qubits);

  /// Applies a Kraus channel on the listed qubits.
  void apply_channel(const Channel& e, const std::vector<int>& qubits);

  /// Probability of measuring 1 on `qubit` (no collapse).
  Real prob_one(int qubit) const;

  /// Projects onto outcome of `qubit` WITHOUT renormalizing; returns the
  /// branch probability. The unnormalized branch is what quasiprobability
  /// bookkeeping wants.
  Real project_unnormalized(int qubit, int outcome);

  /// Non-selective measurement: dephases `qubit` in the Z basis.
  void dephase(int qubit);

  /// Collapse-average reset of `qubit` to |0⟩ (the trace-preserving reset
  /// channel).
  void reset(int qubit);

  /// Tr[P ρ] for an n-qubit Pauli string.
  Real expectation_pauli(const std::string& pauli) const;

  Real trace() const;
  void renormalize();

 private:
  int n_qubits_;
  Matrix rho_;
};

}  // namespace qcut
