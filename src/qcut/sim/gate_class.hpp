// Gate-structure classification for kernel dispatch.
//
// A k-qubit unitary is a dense 2^k x 2^k matrix to the generic apply path,
// but most gates in real workloads are far more structured:
//  * diagonal gates (z, s, t, rz, u1/phase, cz, cu1/cp) only scale each
//    amplitude — no gather, no cross-amplitude arithmetic. The QFT family is
//    dominated by these. Most are "sparse phases": every diagonal entry is 1
//    except one, so only a 2^{n-k} slice of the state is touched at all.
//  * permutation gates (x, cx, swap) only move amplitudes — no complex
//    arithmetic whatsoever, and for the ubiquitous involutions the move is a
//    plain swap.
//
// classify_gate inspects the matrix entries with *exact* zero/one tests, so
// dispatching on the classification never changes what arithmetic runs on
// nonzero entries — the specialized kernels produce the same amplitudes the
// dense multiply would (up to the sign of floating-point zeros).
//
// Classification is computed once per Operation when the circuit is built
// (Circuit::gate / gate_if) and rides along through append/remap, so the hot
// simulation paths (run_branches, run_shot, fragment enumeration) dispatch on
// a precomputed tag instead of re-inspecting matrices per application.
#pragma once

#include <cstdint>
#include <vector>

#include "qcut/linalg/matrix.hpp"

namespace qcut {

enum class GateStructure : std::uint8_t {
  kGeneric = 0,   ///< dense: full 2^k x 2^k sub-matrix multiply
  kDiagonal,      ///< diagonal matrix: amplitude-wise multiply, no gather
  kPermutation,   ///< 0/1 permutation matrix: amplitude moves, no arithmetic
};

struct GateClass {
  GateStructure structure = GateStructure::kGeneric;
  /// Sub-dimension (2^k) of the matrix the classification was computed from,
  /// for kDiagonal / kPermutation — the kernels' dispatch-consistency check.
  Index dim = 0;

  // -- kDiagonal --------------------------------------------------------------
  /// The 2^k diagonal entries.
  Vector diag;
  /// When >= 0: every diagonal entry except this sub-index equals exactly 1
  /// ("sparse phase", e.g. cu1/cp/t) — kernels touch only the matching
  /// 2^{n-k} amplitude slice. The identity classifies as a sparse phase whose
  /// phase entry is itself 1 (kernels skip it entirely).
  Index phase_index = -1;

  // -- kPermutation -----------------------------------------------------------
  /// Nontrivial cycles (length >= 2) of the permutation |s> -> |r> with
  /// u(r, s) = 1, precomputed so the kernel rotates amplitudes in place
  /// without revisiting fixed points. Involutions (x, cx, swap) yield
  /// length-2 cycles — plain swaps. The full image is not retained: cycles
  /// are all the kernel needs, and every Operation carries this struct.
  std::vector<std::vector<Index>> cycles;
};

/// Classifies `u` by exact entry inspection. Non-square or empty matrices
/// classify as kGeneric (the caller's dimension checks will reject them).
GateClass classify_gate(const Matrix& u);

}  // namespace qcut
