#include "qcut/sim/executor.hpp"

#include <algorithm>
#include <cstdint>

#include "qcut/common/cancel.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/ptrace.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

Vector default_initial(int n_qubits) {
  // Reject over-wide circuits before allocating 2^n amplitudes — the check
  // must come first or a 30-qubit monolithic run dies on bad_alloc/OOM
  // instead of the statevector cap's Error.
  QCUT_CHECK(n_qubits >= 1 && n_qubits <= Statevector::kMaxQubits,
             "run: circuit too wide for monolithic simulation — use the fragment path");
  Vector v(std::size_t{1} << n_qubits, Cplx{0.0, 0.0});
  v[0] = Cplx{1.0, 0.0};
  return v;
}

}  // namespace

ShotOutcome run_shot(const Circuit& c, Rng& rng) {
  return run_shot(c, rng, default_initial(c.n_qubits()));
}

ShotOutcome run_shot(const Circuit& c, Rng& rng, const Vector& initial) {
  Statevector sv(c.n_qubits(), initial);
  std::vector<int> cbits(static_cast<std::size_t>(c.n_cbits()), 0);
  for (const auto& op : c.ops()) {
    switch (op.kind) {
      case OpKind::kUnitary:
        sv.apply(op.matrix, op.qubits, op.gclass);
        break;
      case OpKind::kCondUnitary:
        if (cbits[static_cast<std::size_t>(op.cbit)] == 1) {
          sv.apply(op.matrix, op.qubits, op.gclass);
        }
        break;
      case OpKind::kMeasure:
        cbits[static_cast<std::size_t>(op.cbit)] = sv.measure(op.qubits[0], rng);
        break;
      case OpKind::kReset:
        sv.reset(op.qubits[0], rng);
        break;
      case OpKind::kInitialize:
        sv.initialize(op.qubits, op.init_state);
        break;
    }
  }
  return {std::move(cbits), std::move(sv)};
}

std::map<std::string, std::uint64_t> run_counts(const Circuit& c, std::uint64_t shots, Rng& rng) {
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t s = 0; s < shots; ++s) {
    const ShotOutcome out = run_shot(c, rng);
    std::string key(out.cbits.size(), '0');
    for (std::size_t i = 0; i < out.cbits.size(); ++i) {
      key[i] = out.cbits[i] ? '1' : '0';
    }
    ++counts[key];
  }
  return counts;
}

std::vector<Branch> run_branches(const Circuit& c, Real prune_tol) {
  return run_branches(c, default_initial(c.n_qubits()), prune_tol);
}

std::vector<Branch> run_branches(const Circuit& c, const Vector& initial, Real prune_tol) {
  return run_branches(c, initial, std::vector<int>(static_cast<std::size_t>(c.n_cbits()), 0),
                      prune_tol);
}

std::vector<Branch> run_branches(const Circuit& c, const Vector& initial,
                                 const std::vector<int>& initial_cbits, Real prune_tol) {
  QCUT_CHECK(initial_cbits.size() == static_cast<std::size_t>(c.n_cbits()),
             "run_branches: initial_cbits/register size mismatch");
  std::vector<Branch> branches;
  branches.push_back({1.0, initial_cbits, Statevector(c.n_qubits(), initial)});
  advance_branches(branches, c, 0, c.ops().size(), prune_tol);
  return branches;
}

void advance_branches(std::vector<Branch>& branches, const Circuit& c, std::size_t op_begin,
                      std::size_t op_end, Real prune_tol) {
  QCUT_CHECK(op_begin <= op_end && op_end <= c.ops().size(),
             "advance_branches: op range out of bounds");
  for (std::size_t t = op_begin; t < op_end; ++t) {
    // Op steps are branch enumeration's cancellation quantum: each step
    // sweeps every live branch, so polling here is coarse even when the
    // branch population is huge — and never reaches inside the kernels.
    cancel_poll();
    const Operation& op = c.ops()[t];
    switch (op.kind) {
      case OpKind::kUnitary:
        for (auto& b : branches) {
          b.state.apply(op.matrix, op.qubits, op.gclass);
        }
        break;
      case OpKind::kCondUnitary:
        for (auto& b : branches) {
          if (b.cbits[static_cast<std::size_t>(op.cbit)] == 1) {
            b.state.apply(op.matrix, op.qubits, op.gclass);
          }
        }
        break;
      case OpKind::kInitialize:
        for (auto& b : branches) {
          b.state.initialize(op.qubits, op.init_state);
        }
        break;
      case OpKind::kMeasure:
      case OpKind::kReset: {
        std::vector<Branch> next;
        next.reserve(branches.size() * 2);
        const int q = op.qubits[0];
        std::uint64_t pruned = 0;
        for (auto& b : branches) {
          const Real p1 = b.state.prob_one(q);
          for (int outcome = 0; outcome <= 1; ++outcome) {
            const Real p = outcome ? p1 : 1.0 - p1;
            // `!(p > ...)` instead of `p <= ...`: a p = 0 branch must be
            // dropped even when the caller passes prune_tol < 0 (a zero state
            // would renormalize to NaN downstream), and a NaN p (corrupt
            // upstream state) must not survive either.
            if (!(p > prune_tol) || !(p > 0.0)) {
              ++pruned;
              continue;
            }
            // Projected copy in one pass — the measure-heavy path's dominant
            // cost used to be copy + project + renormalize sweeps per branch.
            Branch nb{b.prob * p, b.cbits, Statevector::projected(b.state, q, outcome)};
            if (op.kind == OpKind::kMeasure) {
              nb.cbits[static_cast<std::size_t>(op.cbit)] = outcome;
            } else if (outcome == 1) {
              nb.state.apply(gates::x(), {q});  // reset: flip |1⟩ back to |0⟩
            }
            next.push_back(std::move(nb));
          }
        }
        obs::count(obs::Counter::kBranchesEnumerated, next.size());
        obs::count(obs::Counter::kBranchesPruned, pruned);
        branches = std::move(next);
        break;
      }
    }
  }
}

Real exact_expectation_pauli(const Circuit& c, const std::string& pauli) {
  return exact_expectation_pauli(c, pauli, default_initial(c.n_qubits()));
}

Real exact_expectation_pauli(const Circuit& c, const std::string& pauli, const Vector& initial) {
  Real acc = 0.0;
  for (const auto& b : run_branches(c, initial)) {
    acc += b.prob * b.state.expectation_pauli(pauli);
  }
  return acc;
}

Real exact_prob_cbit(const Circuit& c, int cbit, const Vector& initial) {
  QCUT_CHECK(cbit >= 0 && cbit < c.n_cbits(), "exact_prob_cbit: cbit out of range");
  Real acc = 0.0;
  for (const auto& b : run_branches(c, initial)) {
    if (b.cbits[static_cast<std::size_t>(cbit)] == 1) {
      acc += b.prob;
    }
  }
  return acc;
}

Real exact_expectation_cbit_sign(const Circuit& c, int cbit, const Vector& initial) {
  return 1.0 - 2.0 * exact_prob_cbit(c, cbit, initial);
}

Matrix run_density(const Circuit& c, const Matrix& initial_rho) {
  struct DBranch {
    std::vector<int> cbits;
    DensityMatrix dm;
  };
  std::vector<DBranch> branches;
  branches.push_back({std::vector<int>(static_cast<std::size_t>(c.n_cbits()), 0),
                      DensityMatrix(c.n_qubits(), initial_rho)});

  for (const auto& op : c.ops()) {
    switch (op.kind) {
      case OpKind::kUnitary:
        for (auto& b : branches) {
          b.dm.apply_unitary(op.matrix, op.qubits);
        }
        break;
      case OpKind::kCondUnitary:
        for (auto& b : branches) {
          if (b.cbits[static_cast<std::size_t>(op.cbit)] == 1) {
            b.dm.apply_unitary(op.matrix, op.qubits);
          }
        }
        break;
      case OpKind::kInitialize: {
        // Prepare via the state-preparation unitary: the affected qubits are
        // in |0..0⟩ in every branch (library contract), so U_prep acts as the
        // intended initialization.
        const Matrix u = gates::prep_unitary(op.init_state);
        for (auto& b : branches) {
          b.dm.apply_unitary(u, op.qubits);
        }
        break;
      }
      case OpKind::kMeasure: {
        std::vector<DBranch> next;
        next.reserve(branches.size() * 2);
        const int q = op.qubits[0];
        for (auto& b : branches) {
          for (int outcome = 0; outcome <= 1; ++outcome) {
            DBranch nb{b.cbits, b.dm};
            (void)nb.dm.project_unnormalized(q, outcome);
            // Prune on matrix norm, not trace: run_density is also used with
            // non-PSD inputs (matrix units, for Choi construction), whose
            // projected branches can be traceless yet nonzero.
            if (nb.dm.rho().norm() <= 1e-15) {
              continue;
            }
            nb.cbits[static_cast<std::size_t>(op.cbit)] = outcome;
            next.push_back(std::move(nb));
          }
        }
        branches = std::move(next);
        break;
      }
      case OpKind::kReset:
        for (auto& b : branches) {
          b.dm.reset(op.qubits[0]);
        }
        break;
    }
  }

  const Index dim = Index{1} << c.n_qubits();
  Matrix acc(dim, dim);
  for (const auto& b : branches) {
    acc += b.dm.rho();
  }
  return acc;
}

Channel circuit_channel(const Circuit& c, const std::vector<int>& discard_qubits) {
  // Build the Choi matrix of the induced map on the kept qubits by feeding in
  // matrix units |i⟩⟨j| (via linearity of run_density).
  std::vector<int> kept;
  for (int q = 0; q < c.n_qubits(); ++q) {
    if (std::find(discard_qubits.begin(), discard_qubits.end(), q) == discard_qubits.end()) {
      kept.push_back(q);
    }
  }
  const int nk = static_cast<int>(kept.size());
  QCUT_CHECK(nk >= 1, "circuit_channel: all qubits discarded");
  const Index din = Index{1} << c.n_qubits();
  const Index dkept = Index{1} << nk;

  Matrix choi(dkept * dkept, dkept * dkept);
  // The map is defined on the kept qubits; discarded qubits start in |0⟩.
  // Scatter the kept sub-index into a full-circuit basis index.
  auto expand = [&](Index sub) {
    Index idx = 0;
    for (int j = 0; j < nk; ++j) {
      const Index bit = (sub >> (nk - 1 - j)) & 1;
      idx |= bit << (c.n_qubits() - 1 - kept[static_cast<std::size_t>(j)]);
    }
    return idx;
  };

  for (Index i = 0; i < dkept; ++i) {
    for (Index j = 0; j < dkept; ++j) {
      Matrix ein(din, din);
      ein(expand(i), expand(j)) = Cplx{1.0, 0.0};
      const Matrix out_full = run_density(c, ein);
      const Matrix out = partial_trace(out_full, discard_qubits, c.n_qubits());
      for (Index r = 0; r < dkept; ++r) {
        for (Index col = 0; col < dkept; ++col) {
          choi(i * dkept + r, j * dkept + col) += out(r, col);
        }
      }
    }
  }
  return choi_to_kraus(choi, dkept, dkept, 1e-10);
}

}  // namespace qcut
