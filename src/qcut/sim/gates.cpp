#include "qcut/sim/gates.hpp"

#include <cmath>

#include "qcut/linalg/decomp.hpp"

namespace qcut::gates {

const Matrix& i2() {
  static const Matrix m = Matrix::identity(2);
  return m;
}

const Matrix& h() {
  static const Matrix m{{Cplx{kInvSqrt2, 0}, Cplx{kInvSqrt2, 0}},
                        {Cplx{kInvSqrt2, 0}, Cplx{-kInvSqrt2, 0}}};
  return m;
}

const Matrix& x() {
  static const Matrix m{{Cplx{0, 0}, Cplx{1, 0}}, {Cplx{1, 0}, Cplx{0, 0}}};
  return m;
}

const Matrix& y() {
  static const Matrix m{{Cplx{0, 0}, Cplx{0, -1}}, {Cplx{0, 1}, Cplx{0, 0}}};
  return m;
}

const Matrix& z() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{-1, 0}}};
  return m;
}

const Matrix& s() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{0, 1}}};
  return m;
}

const Matrix& sdg() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{0, -1}}};
  return m;
}

const Matrix& t() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{kInvSqrt2, kInvSqrt2}}};
  return m;
}

const Matrix& tdg() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{kInvSqrt2, -kInvSqrt2}}};
  return m;
}

Matrix rx(Real theta) {
  const Real c = std::cos(theta / 2.0);
  const Real sn = std::sin(theta / 2.0);
  return Matrix{{Cplx{c, 0}, Cplx{0, -sn}}, {Cplx{0, -sn}, Cplx{c, 0}}};
}

Matrix ry(Real theta) {
  const Real c = std::cos(theta / 2.0);
  const Real sn = std::sin(theta / 2.0);
  return Matrix{{Cplx{c, 0}, Cplx{-sn, 0}}, {Cplx{sn, 0}, Cplx{c, 0}}};
}

Matrix rz(Real theta) {
  const Cplx em = std::exp(Cplx{0, -theta / 2.0});
  const Cplx ep = std::exp(Cplx{0, theta / 2.0});
  return Matrix{{em, Cplx{0, 0}}, {Cplx{0, 0}, ep}};
}

Matrix phase(Real lambda) {
  return Matrix{{Cplx{1, 0}, Cplx{0, 0}}, {Cplx{0, 0}, std::exp(Cplx{0, lambda})}};
}

Matrix u3(Real theta, Real phi, Real lambda) {
  const Real c = std::cos(theta / 2.0);
  const Real sn = std::sin(theta / 2.0);
  return Matrix{{Cplx{c, 0}, -std::exp(Cplx{0, lambda}) * sn},
                {std::exp(Cplx{0, phi}) * sn, std::exp(Cplx{0, phi + lambda}) * c}};
}

const Matrix& cx() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}}};
  return m;
}

const Matrix& cz() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{-1, 0}}};
  return m;
}

const Matrix& swap() {
  static const Matrix m{{Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}},
                        {Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}}};
  return m;
}

const Matrix& ccx() {
  // Toffoli on (control, control, target); qubits[0] is the high index bit,
  // so |110⟩ ↔ |111⟩ (rows 6 and 7).
  static const Matrix m = [] {
    Matrix t = Matrix::identity(8);
    t(6, 6) = t(7, 7) = Cplx{0.0, 0.0};
    t(6, 7) = t(7, 6) = Cplx{1.0, 0.0};
    return t;
  }();
  return m;
}

const Matrix& cswap() {
  // Fredkin on (control, target, target): |101⟩ ↔ |110⟩ (rows 5 and 6).
  static const Matrix m = [] {
    Matrix t = Matrix::identity(8);
    t(5, 5) = t(6, 6) = Cplx{0.0, 0.0};
    t(5, 6) = t(6, 5) = Cplx{1.0, 0.0};
    return t;
  }();
  return m;
}

Matrix controlled(const Matrix& u) {
  QCUT_CHECK(u.rows() == 2 && u.cols() == 2, "controlled: expects a single-qubit gate");
  Matrix m = Matrix::identity(4);
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 2; ++c) {
      m(2 + r, 2 + c) = u(r, c);
    }
  }
  return m;
}

Matrix prep_unitary(const Vector& state) {
  const Index dim = static_cast<Index>(state.size());
  QCUT_CHECK(dim >= 2 && (dim & (dim - 1)) == 0, "prep_unitary: dimension must be a power of 2");
  QCUT_CHECK(approx_eq(vec_norm(state), 1.0, 1e-9), "prep_unitary: state must be normalized");
  // QR of [state | I]: the first column of Q is the state up to a phase.
  Matrix aug(dim, dim + 1);
  for (Index i = 0; i < dim; ++i) {
    aug(i, 0) = state[static_cast<std::size_t>(i)];
    aug(i, i + 1) = Cplx{1.0, 0.0};
  }
  QrResult f = qr(aug);
  Matrix u(dim, dim);
  // Fix the global phase so that U|0..0> equals `state` exactly.
  Cplx ph{0.0, 0.0};
  for (Index i = 0; i < dim; ++i) {
    ph += std::conj(f.q(i, 0)) * state[static_cast<std::size_t>(i)];
  }
  const Real aph = std::abs(ph);
  const Cplx rot = aph > 0.0 ? ph / aph : Cplx{1.0, 0.0};
  for (Index j = 0; j < dim; ++j) {
    for (Index i = 0; i < dim; ++i) {
      u(i, j) = f.q(i, j) * (j == 0 ? rot : Cplx{1.0, 0.0});
    }
  }
  return u;
}

}  // namespace qcut::gates
