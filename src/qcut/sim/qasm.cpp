#include "qcut/sim/qasm.hpp"

#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "qcut/ent/schmidt.hpp"
#include "qcut/linalg/zyz.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

std::string fmt(Real x) { return qasm_format_real(x); }

// u3(θ, φ, λ) in QASM equals e^{iα} Rz(φ) Ry(θ) Rz(λ) up to global phase,
// so ZYZ angles map directly: θ = γ, φ = β, λ = δ.
void emit_u3(std::ostringstream& os, const Matrix& u, int q, const std::string& cond) {
  const ZyzAngles a = zyz_decompose(u);
  os << cond << "u3(" << fmt(a.gamma) << "," << fmt(a.beta) << "," << fmt(a.delta) << ") q["
     << q << "];\n";
}

// Fixed 1-qubit gates emit by qelib1 name instead of a synthesized u3: the
// importer maps the name back to the same gates::* matrix, so the QASM form
// of a builder circuit re-imports with bit-identical matrices — which is what
// lets the service's canonical circuit hash treat the two forms as one
// circuit. The matrix check guards against user ops that merely reuse a
// builder label.
bool emit_named_one_qubit(std::ostringstream& os, const Operation& op, const std::string& cond) {
  std::string label = op.label;
  if (!label.empty() && label.back() == '?') {
    label.pop_back();
  }
  struct Named {
    const char* label;
    const Matrix& (*matrix)();
    const char* name;
  };
  static const Named kFixed[] = {
      {"H", gates::h, "h"}, {"X", gates::x, "x"},       {"Y", gates::y, "y"},
      {"Z", gates::z, "z"}, {"S", gates::s, "s"},       {"Sdg", gates::sdg, "sdg"},
      {"T", gates::t, "t"}, {"Tdg", gates::tdg, "tdg"},
  };
  for (const auto& f : kFixed) {
    if (label == f.label && op.matrix.approx_equal(f.matrix(), 1e-12)) {
      os << cond << f.name << " q[" << op.qubits[0] << "];\n";
      return true;
    }
  }
  return false;
}

// Named two-qubit gates the builder produces. Conditional variants carry the
// builder's '?' label suffix (e.g. an imported "if (c == 1) cx" is 'CX?');
// conditionality is already encoded in op.kind, so the suffix is ignored.
bool emit_named_two_qubit(std::ostringstream& os, const Operation& op, const std::string& cond) {
  std::string label = op.label;
  if (!label.empty() && label.back() == '?') {
    label.pop_back();
  }
  if (label == "CX") {
    os << cond << "cx q[" << op.qubits[0] << "],q[" << op.qubits[1] << "];\n";
    return true;
  }
  if (label == "CZ") {
    os << cond << "cz q[" << op.qubits[0] << "],q[" << op.qubits[1] << "];\n";
    return true;
  }
  if (label == "SWAP") {
    os << cond << "swap q[" << op.qubits[0] << "],q[" << op.qubits[1] << "];\n";
    return true;
  }
  return false;
}

/// Three-qubit qelib1 composites the importer predefines (ccx / cswap) emit
/// by name — the only 3q ops the exporter supports.
bool emit_named_three_qubit(std::ostringstream& os, const Operation& op,
                            const std::string& cond) {
  std::string label = op.label;
  if (!label.empty() && label.back() == '?') {
    label.pop_back();
  }
  const char* name = nullptr;
  if (label == "CCX" && op.matrix.approx_equal(gates::ccx(), 1e-12)) {
    name = "ccx";
  } else if (label == "CSWAP" && op.matrix.approx_equal(gates::cswap(), 1e-12)) {
    name = "cswap";
  }
  if (name == nullptr) {
    return false;
  }
  os << cond << name << " q[" << op.qubits[0] << "],q[" << op.qubits[1] << "],q["
     << op.qubits[2] << "];\n";
  return true;
}

// Synthesizes an arbitrary two-qubit pure state |ψ⟩ = (UA⊗UB)(cosθ|00⟩ +
// sinθ|11⟩) from its Schmidt decomposition: ry(2θ) on a, cx(a,b), then the
// local basis changes.
void emit_two_qubit_init(std::ostringstream& os, const Operation& op) {
  const SchmidtResult s = schmidt_decompose(op.init_state, 1, 1);
  const Real theta = 2.0 * std::atan2(s.coeffs[1], s.coeffs[0]);
  const int qa = op.qubits[0];
  const int qb = op.qubits[1];
  os << "ry(" << fmt(theta) << ") q[" << qa << "];\n";
  os << "cx q[" << qa << "],q[" << qb << "];\n";
  Matrix ua(2, 2), ub(2, 2);
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 2; ++c) {
      ua(r, c) = s.basis_a(r, c);
      ub(r, c) = s.basis_b(r, c);
    }
  }
  if (!ua.approx_equal(Matrix::identity(2), 1e-12)) {
    emit_u3(os, ua, qa, "");
  }
  if (!ub.approx_equal(Matrix::identity(2), 1e-12)) {
    emit_u3(os, ub, qb, "");
  }
}

}  // namespace

// Round-trip-exact and locale-independent: max_digits10 significant digits
// guarantee strtod of the spelling recovers x bit-identically, and the
// classic locale pins '.' as the decimal separator whatever the
// process-global locale says.
std::string qasm_format_real(Real x) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(std::numeric_limits<Real>::max_digits10);
  os << x;
  return os.str();
}

std::string to_qasm(const Circuit& c) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << c.n_qubits() << "];\n";
  if (c.n_cbits() > 0) {
    // One register per classical bit so `if` statements can address them
    // individually (QASM 2.0 conditions whole registers).
    for (int i = 0; i < c.n_cbits(); ++i) {
      os << "creg c" << i << "[1];\n";
    }
  }

  for (const auto& op : c.ops()) {
    std::string cond;
    if (op.kind == OpKind::kCondUnitary) {
      cond = "if (c" + std::to_string(op.cbit) + " == 1) ";
    }
    switch (op.kind) {
      case OpKind::kUnitary:
      case OpKind::kCondUnitary:
        if (op.qubits.size() == 1) {
          if (!emit_named_one_qubit(os, op, cond)) {
            emit_u3(os, op.matrix, op.qubits[0], cond);
          }
        } else if (op.qubits.size() == 2 && emit_named_two_qubit(os, op, cond)) {
          // emitted
        } else if (op.qubits.size() == 3 && emit_named_three_qubit(os, op, cond)) {
          // emitted
        } else {
          throw Error("to_qasm: unsupported multi-qubit gate '" + op.label +
                      "' (decompose it first)");
        }
        break;
      case OpKind::kMeasure:
        os << "measure q[" << op.qubits[0] << "] -> c" << op.cbit << "[0];\n";
        break;
      case OpKind::kReset:
        os << "reset q[" << op.qubits[0] << "];\n";
        break;
      case OpKind::kInitialize:
        if (op.qubits.size() == 1) {
          // Single-qubit prep from |0⟩.
          emit_u3(os, gates::prep_unitary(op.init_state), op.qubits[0], "");
        } else if (op.qubits.size() == 2) {
          emit_two_qubit_init(os, op);
        } else {
          throw Error("to_qasm: initialize on >2 qubits is not supported");
        }
        break;
    }
  }
  return os.str();
}

}  // namespace qcut
