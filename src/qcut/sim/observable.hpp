// Typed observable: a validated Pauli string, constructed once, passed by
// value everywhere a raw std::string used to travel.
//
// The estimation entry points (PlannedExecutor, plan_and_run, the service
// front door) historically took observables as bare strings and validated
// them deep inside the cutter, so a typo'd "ZZIZ" on a 5-qubit circuit
// surfaced as a cut_circuit error three layers down. Observable moves that
// validation to construction: parse() accepts exactly the characters
// {I, X, Y, Z}, records the qubit count, and round-trips through to_string()
// unchanged — so every layer below can trust the value and the service's
// wire protocol can ship it as its string form without a second validation
// pass on the far side.
//
// String overloads remain on the public entry points as thin shims that
// construct an Observable and delegate; new code should pass the typed value.
#pragma once

#include <string>

namespace qcut {

class Observable {
 public:
  /// A single-qubit Z — the least surprising default for aggregate members.
  Observable() : pauli_("Z") {}

  /// Validates and wraps a Pauli string: one of {I, X, Y, Z} per qubit,
  /// length >= 1. Throws qcut::Error with the offending character and
  /// position otherwise. The identity string ("II…I") is representable —
  /// its expectation is trivially 1 — but the estimation pipeline rejects
  /// it downstream, where the trivial answer is called out explicitly.
  static Observable parse(const std::string& pauli);

  /// Z on every one of `n` qubits — the estimation default.
  static Observable z_all(int n);

  /// X on every one of `n` qubits.
  static Observable x_all(int n);

  int n_qubits() const noexcept { return static_cast<int>(pauli_.size()); }

  /// The Pauli letter acting on qubit `q` (bounds-checked).
  char pauli(int q) const;

  /// True when every factor is the identity.
  bool is_identity() const noexcept;

  /// The canonical string form; parse(to_string()) == *this exactly.
  const std::string& to_string() const noexcept { return pauli_; }

  friend bool operator==(const Observable& a, const Observable& b) noexcept {
    return a.pauli_ == b.pauli_;
  }
  friend bool operator!=(const Observable& a, const Observable& b) noexcept {
    return !(a == b);
  }

 private:
  explicit Observable(std::string pauli) : pauli_(std::move(pauli)) {}

  std::string pauli_;
};

}  // namespace qcut
