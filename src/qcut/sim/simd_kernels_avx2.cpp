// AVX2+FMA implementation of the run kernels. This translation unit is the
// only one compiled with -mavx2 -mfma (see CMakeLists.txt); the guard below
// keeps the build working when the toolchain targets a non-x86 architecture
// or the flags are unavailable — the accessor then reports the tier absent.
#include "qcut/sim/simd_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace qcut {

namespace {

// Layout: one __m256d holds two complex doubles [re0, im0, re1, im1].
//
// Multiplying a vector of complex values x by a complex constant c = cr + i*ci
// (cr/ci pre-broadcast):
//   swap  = [im0, re0, im1, re1]
//   cmul  = fmaddsub(cr, x, ci * swap)
//         = [cr*re0 - ci*im0, cr*im0 + ci*re0, ...]   (exactly c * x)
inline __m256d cmul(__m256d x, __m256d cr, __m256d ci) {
  return _mm256_fmaddsub_pd(cr, x, _mm256_mul_pd(ci, _mm256_permute_pd(x, 0x5)));
}

struct BroadcastCplx {
  __m256d re;
  __m256d im;
};

inline BroadcastCplx bc(Cplx c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

inline double* dp(Cplx* a) { return reinterpret_cast<double*>(a); }
inline const double* dp(const Cplx* a) { return reinterpret_cast<const double*>(a); }

void apply1_run_avx2(Cplx* a0, Cplx* a1, Index count, const Cplx* m) {
  const BroadcastCplx m00 = bc(m[0]), m01 = bc(m[1]), m10 = bc(m[2]), m11 = bc(m[3]);
  Index i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d x0 = _mm256_loadu_pd(dp(a0 + i));
    const __m256d x1 = _mm256_loadu_pd(dp(a1 + i));
    const __m256d y0 = _mm256_add_pd(cmul(x0, m00.re, m00.im), cmul(x1, m01.re, m01.im));
    const __m256d y1 = _mm256_add_pd(cmul(x0, m10.re, m10.im), cmul(x1, m11.re, m11.im));
    _mm256_storeu_pd(dp(a0 + i), y0);
    _mm256_storeu_pd(dp(a1 + i), y1);
  }
  for (; i < count; ++i) {
    const Cplx x0 = a0[i];
    const Cplx x1 = a1[i];
    a0[i] = m[0] * x0 + m[1] * x1;
    a1[i] = m[2] * x0 + m[3] * x1;
  }
}

void apply1_pairs_avx2(Cplx* a, Index npairs, const Cplx* m) {
  // One __m256d holds exactly one (a0, a1) pair: y = [m00 a0 + m01 a1,
  // m10 a0 + m11 a1] needs per-lane constants instead of broadcasts.
  const __m256d c0r = _mm256_setr_pd(m[0].real(), m[0].real(), m[2].real(), m[2].real());
  const __m256d c0i = _mm256_setr_pd(m[0].imag(), m[0].imag(), m[2].imag(), m[2].imag());
  const __m256d c1r = _mm256_setr_pd(m[1].real(), m[1].real(), m[3].real(), m[3].real());
  const __m256d c1i = _mm256_setr_pd(m[1].imag(), m[1].imag(), m[3].imag(), m[3].imag());
  for (Index p = 0; p < npairs; ++p) {
    const __m256d x = _mm256_loadu_pd(dp(a + 2 * p));  // [re0, im0, re1, im1]
    const __m256d x0 = _mm256_permute2f128_pd(x, x, 0x00);  // [a0, a0]
    const __m256d x1 = _mm256_permute2f128_pd(x, x, 0x11);  // [a1, a1]
    const __m256d y = _mm256_add_pd(cmul(x0, c0r, c0i), cmul(x1, c1r, c1i));
    _mm256_storeu_pd(dp(a + 2 * p), y);
  }
}

void apply2_run_avx2(Cplx* p00, Cplx* p01, Cplx* p10, Cplx* p11, Index count, const Cplx* m) {
  BroadcastCplx mm[16];
  for (int e = 0; e < 16; ++e) {
    mm[e] = bc(m[e]);
  }
  Index i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d x0 = _mm256_loadu_pd(dp(p00 + i));
    const __m256d x1 = _mm256_loadu_pd(dp(p01 + i));
    const __m256d x2 = _mm256_loadu_pd(dp(p10 + i));
    const __m256d x3 = _mm256_loadu_pd(dp(p11 + i));
    for (int r = 0; r < 4; ++r) {
      const __m256d y = _mm256_add_pd(
          _mm256_add_pd(cmul(x0, mm[4 * r].re, mm[4 * r].im),
                        cmul(x1, mm[4 * r + 1].re, mm[4 * r + 1].im)),
          _mm256_add_pd(cmul(x2, mm[4 * r + 2].re, mm[4 * r + 2].im),
                        cmul(x3, mm[4 * r + 3].re, mm[4 * r + 3].im)));
      Cplx* rows[4] = {p00, p01, p10, p11};
      _mm256_storeu_pd(dp(rows[r] + i), y);
    }
  }
  for (; i < count; ++i) {
    const Cplx x0 = p00[i], x1 = p01[i], x2 = p10[i], x3 = p11[i];
    p00[i] = m[0] * x0 + m[1] * x1 + m[2] * x2 + m[3] * x3;
    p01[i] = m[4] * x0 + m[5] * x1 + m[6] * x2 + m[7] * x3;
    p10[i] = m[8] * x0 + m[9] * x1 + m[10] * x2 + m[11] * x3;
    p11[i] = m[12] * x0 + m[13] * x1 + m[14] * x2 + m[15] * x3;
  }
}

void scale_run_avx2(Cplx* a, Index count, Cplx factor) {
  const BroadcastCplx f = bc(factor);
  Index i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm256_storeu_pd(dp(a + i), cmul(_mm256_loadu_pd(dp(a + i)), f.re, f.im));
  }
  for (; i < count; ++i) {
    a[i] *= factor;
  }
}

void diag1_pairs_avx2(Cplx* a, Index npairs, Cplx d0, Cplx d1) {
  const __m256d dr = _mm256_setr_pd(d0.real(), d0.real(), d1.real(), d1.real());
  const __m256d di = _mm256_setr_pd(d0.imag(), d0.imag(), d1.imag(), d1.imag());
  for (Index p = 0; p < npairs; ++p) {
    _mm256_storeu_pd(dp(a + 2 * p), cmul(_mm256_loadu_pd(dp(a + 2 * p)), dr, di));
  }
}

double norm2_run_avx2(const Cplx* a, Index count) {
  __m256d acc = _mm256_setzero_pd();
  Index i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d x = _mm256_loadu_pd(dp(a + i));
    acc = _mm256_fmadd_pd(x, x, acc);
  }
  // Fixed lane-combine order: (lane0 + lane2) + (lane1 + lane3).
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  double partial = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < count; ++i) {
    partial += norm2(a[i]);
  }
  return partial;
}

constexpr SimdKernels kAvx2Kernels = {
    &apply1_run_avx2, &apply1_pairs_avx2, &apply2_run_avx2,
    &scale_run_avx2,  &diag1_pairs_avx2,  &norm2_run_avx2,
};

}  // namespace

const SimdKernels* simd_kernels_avx2() { return &kAvx2Kernels; }

}  // namespace qcut

#else  // toolchain cannot target AVX2: tier absent

namespace qcut {
const SimdKernels* simd_kernels_avx2() { return nullptr; }
}  // namespace qcut

#endif
