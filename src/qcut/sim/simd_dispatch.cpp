#include "qcut/sim/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qcut/common/error.hpp"

namespace qcut {

namespace {

bool cpu_supports(SimdTier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return tier == SimdTier::kScalar;
#endif
}

const SimdKernels* compiled_table(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return simd_kernels_scalar();
    case SimdTier::kAvx2:
      return simd_kernels_avx2();
    case SimdTier::kAvx512:
      return simd_kernels_avx512();
  }
  return nullptr;
}

SimdTier detect_tier() {
  // Environment override first: the CI forced-dispatch knob. An unknown or
  // unavailable value throws — a silently ignored QCUT_SIMD would let a
  // forced-AVX2 CI job quietly measure the wrong tier.
  if (const char* env = std::getenv("QCUT_SIMD")) {
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "avx2") == 0 ||
        std::strcmp(env, "avx512") == 0) {
      const SimdTier t = std::strcmp(env, "scalar") == 0
                             ? SimdTier::kScalar
                             : (std::strcmp(env, "avx2") == 0 ? SimdTier::kAvx2
                                                              : SimdTier::kAvx512);
      QCUT_CHECK(simd_tier_available(t),
                 std::string("QCUT_SIMD requests tier '") + env +
                     "' which this build/CPU does not support");
      return t;
    }
    throw Error(std::string("QCUT_SIMD: unknown tier '") + env +
                "' (expected scalar|avx2|avx512)");
  }
  for (const SimdTier t : {SimdTier::kAvx512, SimdTier::kAvx2}) {
    if (simd_tier_available(t)) {
      return t;
    }
  }
  return SimdTier::kScalar;
}

struct Dispatch {
  std::atomic<const SimdKernels*> table;
  std::atomic<int> tier;

  Dispatch() {
    const SimdTier t = detect_tier();
    table.store(compiled_table(t), std::memory_order_relaxed);
    tier.store(static_cast<int>(t), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool simd_tier_available(SimdTier tier) {
  return compiled_table(tier) != nullptr && cpu_supports(tier);
}

SimdTier active_simd_tier() {
  return static_cast<SimdTier>(dispatch().tier.load(std::memory_order_acquire));
}

const SimdKernels& active_kernels() {
  return *dispatch().table.load(std::memory_order_acquire);
}

void force_simd_tier(SimdTier tier) {
  QCUT_CHECK(simd_tier_available(tier),
             std::string("force_simd_tier: tier '") + simd_tier_name(tier) +
                 "' is not available on this build/CPU");
  Dispatch& d = dispatch();
  d.tier.store(static_cast<int>(tier), std::memory_order_release);
  d.table.store(compiled_table(tier), std::memory_order_release);
}

}  // namespace qcut
