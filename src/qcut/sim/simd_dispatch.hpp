// Runtime SIMD tier selection for the statevector run kernels.
//
// The library ships every tier the toolchain could compile (scalar always,
// AVX2 / AVX-512 on x86 — each in its own translation unit with its own -m
// flags) and picks the widest one the executing CPU supports, once, on first
// use. The choice can be overridden:
//   * environment: QCUT_SIMD=scalar|avx2|avx512, read at first dispatch —
//     the debugging/CI knob (forcing a tier the CPU lacks throws);
//   * programmatic: force_simd_tier(), used by the equivalence tests and
//     bench_sim_perf to measure every available tier in one process.
//
// Thread-safety: the active table is a single atomic pointer. force_simd_tier
// is intended for test/bench setup (call it while no simulation is running);
// concurrent readers always see *some* valid table.
#pragma once

#include "qcut/sim/simd_kernels.hpp"

namespace qcut {

enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar" / "avx2" / "avx512".
const char* simd_tier_name(SimdTier tier);

/// True when `tier` was compiled in AND the executing CPU supports it.
/// kScalar is always available.
bool simd_tier_available(SimdTier tier);

/// The tier whose kernels active_kernels() currently returns.
SimdTier active_simd_tier();

/// The active kernel table (never null; defaults to the widest available
/// tier, or the QCUT_SIMD override, resolved on first call).
const SimdKernels& active_kernels();

/// Forces dispatch to `tier`. Throws qcut::Error when the tier is not
/// available on this build/CPU.
void force_simd_tier(SimdTier tier);

}  // namespace qcut
