#include "qcut/cut/wire_cut.hpp"

#include "qcut/linalg/pauli.hpp"
#include "qcut/qpd/estimator.hpp"

namespace qcut {

Matrix reconstruct(const WireCutProtocol& protocol, const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 2 && rho.cols() == 2, "reconstruct: single-qubit input expected");
  Matrix acc(2, 2);
  for (const auto& [c, f] : protocol.channel_terms()) {
    acc += Cplx{c, 0.0} * f.apply(rho);
  }
  return acc;
}

Real exact_cut_expectation(const WireCutProtocol& protocol, const CutInput& input) {
  return exact_value(protocol.build_qpd(input));
}

Real uncut_expectation(const CutInput& input) {
  const Vector psi = input.prep * basis_vector(2, 0);
  const Matrix obs = pauli_matrix(pauli_from_char(input.observable));
  return expectation(obs, psi).real();
}

}  // namespace qcut
