// Fragment extraction: split one QPD term's spliced circuit into
// independently simulable sub-circuits, so a cut circuit's execution cost is
// bounded by the widest *fragment*, not the total spliced width.
//
// Model: the wire-cut gadgets couple the two sides of a cut only through
// classical bits — the sender side *measures* (harada / peng measure-and-
// prepare branches, the Bell-measurement half of a teleport) and the receiver
// side *prepares*, via classically controlled gates reading the sender's
// bits. Wires connected by a multi-qubit op must share a device; wires that
// talk only classically need not. A fragment is therefore a connected
// component of the term circuit's qubit-interaction graph, and every op lies
// entirely inside one fragment by construction.
//
// Entangled-resource gadgets (NmeCut / DistillCut) splice a two-qubit
// initialize spanning the sender helper and the receiver wire; that op merges
// the two sides into one component — the split stays *correct*, the fragment
// is just wider (shared entanglement genuinely cannot be simulated by
// classical message passing). Entanglement-free protocols (harada, peng)
// split fully.
//
// Recombination (fragment_term_prob_one): the joint distribution of the
// term's classical bits factorizes over fragments by the chain rule,
//   P(bits) = Π_F P_F(bits_F | cross bits F reads),
// because a fragment's quantum state depends only on its own ops, its own
// measurement outcomes, and the foreign bits its conditional gates read.
// Each factor is one exact branch enumeration of a ≤ max-fragment-width
// statevector (run_branches with the read bits preset); the product is summed
// over assignments of the cross-fragment bits, tracking the estimate-bit
// parity. The full spliced state is never materialized.
//
// Fast path: all the structure above — components, local indices, classical-
// bit roles — depends only on the op *skeleton* of the term circuit (kinds,
// qubit lists, cbits), never on the gadget matrices. All gadget variants of
// one cut plan share that skeleton, so FragmentBackend computes it once per
// structure (SplitSkeletonCache) and per-term splitting reduces to replaying
// ops with remapped qubits. Evaluation then simulates each fragment's
// unconditioned prefix once, re-runs only the read-dependent suffix per
// cross-bit assignment, and can distribute the (fragment, read-assignment)
// work units over a ThreadPool — with a fixed-order reduction, so the result
// is bit-identical for any pool size (including none).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qcut/common/threadpool.hpp"
#include "qcut/qpd/qpd.hpp"
#include "qcut/sim/fusion.hpp"

namespace qcut {

/// One independently simulable piece of a QPD term circuit.
struct TermFragment {
  /// The fragment's ops, qubits remapped onto [0, wires.size()). The
  /// classical register keeps the term's full width so cbit indices stay
  /// global across fragments.
  Circuit circuit;
  /// Host wires of the term circuit, ascending: local qubit q is host wire
  /// wires[q].
  std::vector<int> wires;
  /// Foreign cbits this fragment's conditional gates read (ascending): the
  /// cut-boundary *prepare* role.
  std::vector<int> reads;
  /// Own cbits read by other fragments (ascending): the cut-boundary
  /// *measure* role.
  std::vector<int> writes;
  /// The term's estimate cbits measured inside this fragment.
  std::vector<int> estimate_cbits;
  /// First fragment-local op index that reads a cross-fragment bit: ops
  /// before it are identical for every read assignment (the unconditioned
  /// prefix the evaluator simulates once). Equals circuit.size() when the
  /// fragment reads nothing.
  std::size_t cond_suffix_begin = 0;
};

/// A term circuit split into fragments.
struct FragmentSplit {
  std::vector<TermFragment> fragments;
  /// Union of all cross-fragment cbits, ascending.
  std::vector<int> cross_cbits;
  /// Widest fragment — the statevector a device (or the simulator) needs.
  int max_width = 0;
};

/// The term-independent structure of a split: fragment membership, local
/// qubit indices, and classical-bit roles. These depend only on (a) the
/// *set* of multi-qubit interactions (which wires must share a device) and
/// (b) the ordered subsequence of classical events (measure and conditional
/// ops with their cbits) — never on the gadget matrices, 1-qubit gates, or
/// op counts. All gadget variants of one cut plan point that keep the same
/// connectivity and classical protocol therefore share one skeleton.
struct SplitSkeleton {
  int n_qubits = 0;
  int n_cbits = 0;
  std::vector<int> frag_of_wire;             ///< host wire -> fragment id
  std::vector<int> local_index;              ///< host wire -> fragment-local qubit
  std::vector<std::vector<int>> wires_of;    ///< per fragment, ascending
  std::vector<std::vector<int>> reads_of;    ///< per fragment, ascending
  std::vector<std::vector<int>> writes_of;   ///< per fragment, ascending
  std::vector<int> writer_frag;              ///< per cbit; -1 = never written
  std::vector<char> multi_frag_write;        ///< per cbit
  std::vector<int> cross_cbits;              ///< ascending
  int max_width = 0;
};

/// Computes the split skeleton of `c`. Throws qcut::Error for circuits
/// outside the supported classical-coupling structure (a cross-fragment cbit
/// written more than once, written in two fragments, or read before it is
/// written).
SplitSkeleton build_split_skeleton(const Circuit& c);

/// Splits `term`'s circuit into connected components of the qubit-interaction
/// graph. Equivalent to instantiating a freshly built skeleton.
FragmentSplit split_term(const QpdTerm& term);

/// Cheap split: replays `term`'s ops into fragments laid out by `skel`
/// (which must have been built from a circuit with the same structural key —
/// the replay re-checks that every op stays inside one fragment).
FragmentSplit split_term(const QpdTerm& term, const SplitSkeleton& skel);

/// Structural signature: equal keys guarantee interchangeable skeletons. The
/// key encodes register sizes, the sorted-unique multi-qubit interaction
/// sets, and the ordered classical-event subsequence (measure / conditional
/// ops with their wire and cbit). Matrices, init states, single-qubit gates,
/// and op counts are deliberately excluded — they do not affect the split
/// structure, so gadget variants that only differ there share a skeleton.
std::string split_structure_key(const Circuit& c);

/// Thread-safe cache of split skeletons keyed by structure. One instance per
/// QPD amortizes skeleton construction over all 8^K gadget variants; the
/// service layer shares one *process-lifetime* instance across requests
/// (bounded by `capacity`), so repeated estimations of the same circuit
/// family skip skeleton construction entirely.
class SplitSkeletonCache {
 public:
  /// `capacity` = 0: unbounded (the per-run default — a run touches one cut
  /// plan's handful of structures). Non-zero: at most `capacity` skeletons
  /// are retained, evicting least-recently-used — the cross-request setting.
  /// Evicted skeletons stay alive for callers still holding their shared_ptr.
  explicit SplitSkeletonCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the shared skeleton for circuits structurally identical to `c`,
  /// building it on first use.
  std::shared_ptr<const SplitSkeleton> get(const Circuit& c);

  /// Distinct structures currently cached (introspection for tests/benches).
  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const SplitSkeleton> skeleton;
    std::uint64_t last_use = 0;
  };

  std::size_t capacity_ = 0;
  mutable std::mutex mu_;
  mutable std::uint64_t tick_ = 0;
  std::unordered_map<std::string, Entry> by_key_;
};

/// Rewrites every fragment circuit of `split` through the gate-fusion passes
/// (sim/fusion.hpp), in place. The unconditioned prefix [0, cond_suffix_begin)
/// and the conditional suffix are fused *separately* — no op may drift across
/// the prefix-caching boundary — and cond_suffix_begin is remapped onto the
/// fused op list. Exact up to float reassociation in the composed 2x2
/// products; fragment_term_prob_one on a fused split matches the unfused
/// value to ~1e-12.
void fuse_split_circuits(FragmentSplit& split, FusionStats* stats = nullptr);

/// Exact P(outcome = −1) of the term — the parity-one probability of its
/// estimate cbits — computed fragment-locally from `split`. Identical (up to
/// float reassociation ≲ 1e-15) to term_prob_one on the spliced circuit, but
/// memory-bounded by split.max_width instead of the spliced width.
///
/// The evaluator simulates each fragment's unconditioned prefix once,
/// re-runs only the read-dependent suffix per cross-bit assignment, and —
/// when `pool` is non-null, has more than one worker, and the caller is not
/// already one of its workers — distributes the (fragment, read-assignment)
/// work units across the pool. Per-unit results land in preassigned slots
/// and the final reduction runs in fixed index order, so the value is
/// bit-identical for every pool size, including the serial fallback.
Real fragment_term_prob_one(const FragmentSplit& split, ThreadPool* pool = nullptr);

/// Convenience: split_term + fragment_term_prob_one (serial).
Real fragment_term_prob_one(const QpdTerm& term);

/// Reference evaluator retained from the pre-fast-path implementation: one
/// full branch enumeration per (fragment, read assignment), no prefix
/// sharing, strictly serial. The equivalence tests pin the fast path against
/// it, and bench_sim_perf uses it as the serial-baseline yardstick.
Real fragment_term_prob_one_baseline(const FragmentSplit& split);

}  // namespace qcut
