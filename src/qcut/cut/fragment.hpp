// Fragment extraction: split one QPD term's spliced circuit into
// independently simulable sub-circuits, so a cut circuit's execution cost is
// bounded by the widest *fragment*, not the total spliced width.
//
// Model: the wire-cut gadgets couple the two sides of a cut only through
// classical bits — the sender side *measures* (harada / peng measure-and-
// prepare branches, the Bell-measurement half of a teleport) and the receiver
// side *prepares*, via classically controlled gates reading the sender's
// bits. Wires connected by a multi-qubit op must share a device; wires that
// talk only classically need not. A fragment is therefore a connected
// component of the term circuit's qubit-interaction graph, and every op lies
// entirely inside one fragment by construction.
//
// Entangled-resource gadgets (NmeCut / DistillCut) splice a two-qubit
// initialize spanning the sender helper and the receiver wire; that op merges
// the two sides into one component — the split stays *correct*, the fragment
// is just wider (shared entanglement genuinely cannot be simulated by
// classical message passing). Entanglement-free protocols (harada, peng)
// split fully.
//
// Recombination (fragment_term_prob_one): the joint distribution of the
// term's classical bits factorizes over fragments by the chain rule,
//   P(bits) = Π_F P_F(bits_F | cross bits F reads),
// because a fragment's quantum state depends only on its own ops, its own
// measurement outcomes, and the foreign bits its conditional gates read.
// Each factor is one exact branch enumeration of a ≤ max-fragment-width
// statevector (run_branches with the read bits preset); the product is summed
// over assignments of the cross-fragment bits, tracking the estimate-bit
// parity. The full spliced state is never materialized.
#pragma once

#include <vector>

#include "qcut/qpd/qpd.hpp"

namespace qcut {

/// One independently simulable piece of a QPD term circuit.
struct TermFragment {
  /// The fragment's ops, qubits remapped onto [0, wires.size()). The
  /// classical register keeps the term's full width so cbit indices stay
  /// global across fragments.
  Circuit circuit;
  /// Host wires of the term circuit, ascending: local qubit q is host wire
  /// wires[q].
  std::vector<int> wires;
  /// Foreign cbits this fragment's conditional gates read (ascending): the
  /// cut-boundary *prepare* role.
  std::vector<int> reads;
  /// Own cbits read by other fragments (ascending): the cut-boundary
  /// *measure* role.
  std::vector<int> writes;
  /// The term's estimate cbits measured inside this fragment.
  std::vector<int> estimate_cbits;
};

/// A term circuit split into fragments.
struct FragmentSplit {
  std::vector<TermFragment> fragments;
  /// Union of all cross-fragment cbits, ascending.
  std::vector<int> cross_cbits;
  /// Widest fragment — the statevector a device (or the simulator) needs.
  int max_width = 0;
};

/// Splits `term`'s circuit into connected components of the qubit-interaction
/// graph. Always succeeds for circuits the cutter emits; throws qcut::Error
/// for circuits outside the supported classical-coupling structure (a
/// cross-fragment cbit written more than once, written in two fragments, or
/// read before it is written).
FragmentSplit split_term(const QpdTerm& term);

/// Exact P(outcome = −1) of the term — the parity-one probability of its
/// estimate cbits — computed fragment-locally from `split`. Identical (up to
/// float reassociation ≲ 1e-15) to term_prob_one on the spliced circuit, but
/// memory-bounded by split.max_width instead of the spliced width.
Real fragment_term_prob_one(const FragmentSplit& split);

/// Convenience: split_term + fragment_term_prob_one.
Real fragment_term_prob_one(const QpdTerm& term);

}  // namespace qcut
