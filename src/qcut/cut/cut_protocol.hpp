// The unified cut-candidate model: one abstraction for every cut the system
// can make.
//
// A cut replaces a non-local element of the host circuit — the identity
// channel on a *wire* (wire cut) or a two-qubit *gate* (gate cut) — by a
// quasiprobability mixture of local subcircuits. Every protocol, regardless
// of kind, is characterized by the same three quantities the planner needs:
//   * κ            — the sampling overhead Σ|c_i| of its QPD,
//   * pairs/sample — expected NME resource pairs consumed per QPD sample
//                    (0 for entanglement-free protocols and all gate cuts),
//   * merge semantics — whether some branch splices a quantum operation
//     across the two sides of the cut. Entangled-resource wire cuts do (the
//     pre-shared |Φk⟩ initialize spans the sender helper and the receiver
//     wire), so at run time the two fragments execute as ONE statevector;
//     entanglement-free wire cuts and every gate cut split fully.
//
// Merge semantics are not hand-maintained constants: merge_profile() derives
// them by splicing the protocol into a tiny probe circuit and splitting every
// QPD term — the numbers the planner's feasibility model uses are, by
// construction, the numbers the fragment evaluator will see.
//
// ProtocolSpec is the typed descriptor that travels through a CutPlan in
// place of the old "nme"/"harada" string field: planner, executor, and
// make_protocol all speak it.
#pragma once

#include <string>

#include "qcut/common/error.hpp"
#include "qcut/common/types.hpp"

namespace qcut {

/// What a cut removes from the host circuit.
enum class CutKind {
  kWire,  ///< the identity channel on one wire (state transfer)
  kGate,  ///< one two-qubit gate (Mitarai–Fujii style decomposition)
};

const char* to_string(CutKind kind);

/// Every concrete protocol the system can instantiate.
enum class ProtocolId {
  kHarada,    ///< entanglement-free optimum, κ = 3
  kPeng,      ///< Pauli measure-and-prepare, κ = 4 (historical baseline)
  kTeleport,  ///< physical |Φ⟩ teleportation, κ = 1
  kNme,       ///< Theorem-2 cut over pure |Φk⟩, κ = 2/f − 1
  kDistill,   ///< virtually distilled teleport, same κ as kNme, +2 qubits
  kMixedNme,  ///< twirled teleport over a mixed resource, κ = (7−4qI)/(4qI−1)
  kZzGate,    ///< gate cut of e^{iθ Z⊗Z}, κ = 1 + 2|sin 2θ|
};

const char* to_string(ProtocolId id);

/// Typed protocol descriptor: everything needed to re-instantiate a planned
/// cut's protocol. `param` is the family parameter — Schmidt k for
/// kNme/kDistill, Bell-identity weight q_I for kMixedNme, the ZZ angle θ for
/// kZzGate; unused otherwise.
struct ProtocolSpec {
  ProtocolId id = ProtocolId::kHarada;
  Real param = 0.0;
};

inline bool operator==(const ProtocolSpec& a, const ProtocolSpec& b) {
  return a.id == b.id && a.param == b.param;
}

/// κ of the described protocol, by the closed forms of the paper.
Real spec_kappa(const ProtocolSpec& spec);

/// Which kind of cut the described protocol performs.
CutKind spec_kind(const ProtocolSpec& spec);

/// Human-readable form, e.g. "nme(k=0.5)" or "zz(theta=0.785)".
std::string to_string(const ProtocolSpec& spec);

/// The common interface of every cut protocol. WireCutProtocol (wire_cut.hpp)
/// and GateCutProtocol (gate_cut.hpp) specialize it; the generic splicer
/// (circuit_cutter.hpp) and the planner (plan/) work against this base.
class CutProtocol {
 public:
  virtual ~CutProtocol() = default;

  virtual CutKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Theoretical sampling overhead κ = Σ|c_i| of this protocol's QPD.
  virtual Real kappa() const = 0;

  /// Expected entangled resource pairs consumed per QPD sample; 0 means the
  /// protocol is entanglement-free.
  virtual Real pairs_per_sample() const = 0;
};

/// Fragment-merge semantics of one cut, as the fragment evaluator will see
/// them. All widths are *extra* wires beyond the host circuit's own segments.
struct MergeProfile {
  /// Some branch unites the sender- and receiver-side fragments (shared
  /// entanglement cannot be simulated by classical message passing).
  bool merges = false;
  /// Max helper wires a merging branch adds to the merged component.
  int merged_extra = 0;
  /// Max helper wires a non-merging branch attaches to the sender fragment.
  int sender_extra = 0;
  /// Max helper wires a non-merging branch attaches to the receiver fragment.
  int receiver_extra = 0;

  /// Worst extra width any single branch can add to the component(s) this
  /// cut touches — sound per-cut bound for the all-merge width scenario.
  int max_extra() const {
    const int split = sender_extra + receiver_extra;
    return merged_extra > split ? merged_extra : split;
  }
};

/// Derives `protocol`'s merge semantics empirically: splices it into a
/// two-qubit probe circuit, splits every QPD term into fragments, and records
/// which branches merge the two sides and how many helper wires each branch
/// adds. Gate cuts never splice quantum ops across the partition, so their
/// profile is all-zero by construction.
MergeProfile merge_profile(const CutProtocol& protocol);

}  // namespace qcut
