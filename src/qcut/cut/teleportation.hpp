// Quantum teleportation (Sec. II-E): circuit builders and the exact channel
// E^ρ_tel realized when the resource state ρ is not maximally entangled
// (Eq. 22).
#pragma once

#include "qcut/linalg/channel.hpp"
#include "qcut/sim/circuit.hpp"

namespace qcut {

/// Appends the standard teleportation protocol: Bell measurement of
/// (src, res_sender) into (cbit_z, cbit_x), then feed-forward X/Z corrections
/// on res_receiver. After this, res_receiver holds the state src carried
/// (exactly, if the resource on (res_sender, res_receiver) was |Φ⟩).
void append_teleport(Circuit& c, int src, int res_sender, int res_receiver, int cbit_z,
                     int cbit_x);

/// Appends the preparation of |Φk⟩ = K(|00⟩+k|11⟩) on qubits (a, b):
/// Ry(2·atan(k)) on a, then CX(a→b).
void append_phi_k_prep(Circuit& c, int a, int b, Real k);

/// Appends a measurement of the single-qubit Pauli `basis` ∈ {X, Y, Z} on
/// `qubit` into `cbit` (pre-rotation + Z measurement). The recorded bit b
/// encodes the eigenvalue (−1)^b.
void append_pauli_measurement(Circuit& c, int qubit, char basis, int cbit);

/// E^ρ_tel for an arbitrary two-qubit resource ρ (Eq. 22): the Pauli channel
/// with Kraus operators √⟨Φσ|ρ|Φσ⟩ · σ.
Channel teleport_channel(const Matrix& resource_rho);

/// Closed form for ρ = Φk (Eq. 59): I with weight (k+1)²/(2(k²+1)) and Z with
/// weight (k−1)²/(2(k²+1)).
Channel teleport_channel_phi_k(Real k);

/// Teleportation fidelity of state |ψ⟩ through resource ρ: ⟨ψ|E^ρ_tel(ψ)|ψ⟩.
Real teleport_fidelity(const Vector& psi, const Matrix& resource_rho);

}  // namespace qcut
