// Wire cutting with MIXED NME resource states — the paper's explicit
// future-work direction ("exploring wire cutting protocols using mixed NME
// states, considering … noise inherent in contemporary quantum devices").
//
// Construction. Teleportation through ANY two-qubit resource ρ realizes the
// Pauli channel E^ρ(φ) = Σ_σ q_σ σφσ with q_σ = ⟨Φσ|ρ|Φσ⟩ (Eq. 22) — the
// protocol twirls arbitrary resources into Pauli noise. Conjugating the
// teleport by powers of the axis-cycling Clifford C = SH (which maps
// X→Z→Y→X) and summing the three rotations gives
//     S(φ) = Σ_{i=0}^{2} C^i E^ρ(C^{-i} φ C^i) C^{-i}
//          = 3 q_I φ + q_E (XφX + YφY + ZφZ),   q_E := 1 − q_I.
// With the two measure-and-prepare channels
//     flip(φ) = ½(XφX + YφY)   (Eq. 74, the Theorem-2 corrective branch)
//     deph(φ) = ½(φ + ZφZ)     (measure Z, re-prepare the outcome)
// we have XφX + YφY + ZφZ = 2·flip + 2·deph − φ, hence the exact QPD
//     I = [ S − 2 q_E·flip − 2 q_E·deph ] / (3 q_I − q_E),
// valid whenever q_I > 1/4, with sampling overhead
//     κ_mixed = (3 + 4 q_E) / (3 − 4 q_E).
//
// κ_mixed is NOT optimal in general (Theorem 1's bound is 2/f(ρ) − 1; for
// pure Φk Theorem 2 beats this construction), but it is an exact,
// noise-robust protocol for arbitrary mixed resources; bench_mixed_resource
// quantifies the gap to the Theorem-1 lower bound.
#pragma once

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

class MixedNmeCut final : public WireCutProtocol {
 public:
  /// `resource` is any two-qubit density operator with Bell-identity weight
  /// q_I = ⟨Φ|ρ|Φ⟩ > 1/4.
  explicit MixedNmeCut(Matrix resource);

  /// Bell-identity weight q_I of the resource.
  Real q_identity() const noexcept { return q_identity_; }

  std::string name() const override;
  Real kappa() const override;
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;

 private:
  Matrix resource_;
  Vector purified_;  ///< purification on 2 ancilla qubits
  Real q_identity_;
};

/// κ_mixed(q_I) = (3 + 4(1 − q_I)) / (3 − 4(1 − q_I)) = (7 − 4 q_I)/(4 q_I − 1).
Real mixed_cut_overhead(Real q_identity);

/// The Werner resource with Bell-identity weight q_I: q_I |Φ⟩⟨Φ| plus the
/// remaining weight spread evenly over the other three Bell states. The
/// canonical one-parameter mixed resource (what a depolarized Bell pair looks
/// like) — the planner's DeviceModel instantiates mixed links through it.
Matrix werner_resource(Real q_identity);

}  // namespace qcut
