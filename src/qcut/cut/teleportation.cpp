#include "qcut/cut/teleportation.hpp"

#include <cmath>

#include "qcut/linalg/bell.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

void append_teleport(Circuit& c, int src, int res_sender, int res_receiver, int cbit_z,
                     int cbit_x) {
  // Bell measurement on (src, res_sender).
  c.cx(src, res_sender);
  c.h(src);
  c.measure(src, cbit_z);
  c.measure(res_sender, cbit_x);
  // Feed-forward corrections on the receiver half.
  c.x_if(cbit_x, res_receiver);
  c.z_if(cbit_z, res_receiver);
}

void append_phi_k_prep(Circuit& c, int a, int b, Real k) {
  QCUT_CHECK(k >= 0.0, "append_phi_k_prep: k must be non-negative");
  // Modeled as state *distribution*, not a local circuit: the pre-shared
  // |Φk⟩ pair arrives from an entanglement source, so it enters the fragment
  // as an initialize op rather than cross-device gates (which would violate
  // the LOCC structure the cut is defined by).
  c.initialize({a, b}, phi_k_state(k), "phi_k");
}

void append_pauli_measurement(Circuit& c, int qubit, char basis, int cbit) {
  switch (basis) {
    case 'Z':
      break;
    case 'X':
      c.h(qubit);
      break;
    case 'Y':
      c.sdg(qubit);
      c.h(qubit);
      break;
    default:
      throw Error(std::string("append_pauli_measurement: invalid basis '") + basis + "'");
  }
  c.measure(qubit, cbit);
}

Channel teleport_channel(const Matrix& resource_rho) {
  const auto overlaps = bell_overlaps(resource_rho);
  std::vector<Matrix> ks;
  static const Pauli kPaulis[] = {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z};
  for (std::size_t i = 0; i < 4; ++i) {
    if (overlaps[i] <= 1e-14) {
      continue;
    }
    ks.push_back(std::sqrt(overlaps[i]) * pauli_matrix(kPaulis[i]));
  }
  QCUT_CHECK(!ks.empty(), "teleport_channel: degenerate resource");
  return Channel(std::move(ks));
}

Channel teleport_channel_phi_k(Real k) {
  const auto w = phi_k_bell_overlaps(k);
  std::vector<Matrix> ks;
  ks.push_back(std::sqrt(w[0]) * pauli_i());
  if (w[3] > 1e-14) {
    ks.push_back(std::sqrt(w[3]) * pauli_z());
  }
  return Channel(std::move(ks));
}

Real teleport_fidelity(const Vector& psi, const Matrix& resource_rho) {
  QCUT_CHECK(psi.size() == 2, "teleport_fidelity: single-qubit state expected");
  const Channel e = teleport_channel(resource_rho);
  const Matrix out = e.apply(density(psi));
  return fidelity(psi, out);
}

}  // namespace qcut
