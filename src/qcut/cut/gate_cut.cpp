#include "qcut/cut/gate_cut.hpp"

#include <cmath>
#include <sstream>

#include "qcut/cut/teleportation.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

// e^{iαπ/4 Z} = Rz(−απ/2) up to global phase.
Matrix quarter_rotation(Real alpha) { return gates::rz(-alpha * kPi / 2.0); }

}  // namespace

Real zz_gate_cut_overhead(Real theta) { return 1.0 + 2.0 * std::abs(std::sin(2.0 * theta)); }

ZzGateCut::ZzGateCut(Real theta)
    : theta_(theta), local_a_(Matrix::identity(2)), local_b_(Matrix::identity(2)) {}

ZzGateCut::ZzGateCut(Real theta, Matrix local_a, Matrix local_b)
    : theta_(theta), local_a_(std::move(local_a)), local_b_(std::move(local_b)) {
  QCUT_CHECK(local_a_.rows() == 2 && local_a_.cols() == 2 && local_b_.rows() == 2 &&
                 local_b_.cols() == 2,
             "ZzGateCut: locals must be 2x2");
}

std::string ZzGateCut::name() const {
  std::ostringstream os;
  os << "zz-gate(theta=" << theta_ << ")";
  return os.str();
}

ZzFactorization zz_factor_diagonal(const Matrix& u) {
  ZzFactorization out;
  if (u.rows() != 4 || u.cols() != 4) {
    return out;
  }
  constexpr Real tol = 1e-9;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (r != c && std::abs(u(r, c)) > tol) {
        return out;  // not diagonal
      }
    }
    if (std::abs(std::abs(u(r, r)) - 1.0) > tol) {
      return out;  // not unitary-diagonal
    }
  }
  const Cplx d00 = u(0, 0), d01 = u(1, 1), d10 = u(2, 2), d11 = u(3, 3);
  // diag(U) = (a0,a1) ⊗ (b0,b1) · diag(e^{iθ}, e^{-iθ}, e^{-iθ}, e^{iθ}):
  // the product d00·d11·conj(d01)·conj(d10) = e^{4iθ} isolates θ, and the
  // locals follow by back-substitution with a0 = 1 (the global phase lands
  // in b0/b1).
  out.theta = std::arg(d00 * d11 * std::conj(d01) * std::conj(d10)) / 4.0;
  const Cplx eitheta = std::polar<Real>(1.0, out.theta);
  const Cplx b0 = d00 / eitheta;
  const Cplx b1 = d01 * eitheta;
  const Cplx a1 = d10 * eitheta / b0;
  out.local_a = Matrix::identity(2);
  out.local_a(1, 1) = a1;
  out.local_b = Matrix::identity(2);
  out.local_b(0, 0) = b0;
  out.local_b(1, 1) = b1;
  QCUT_CHECK(std::abs(a1 * b1 * eitheta - d11) < 1e-8,
             "zz_factor_diagonal: factorization check failed");
  out.ok = true;
  return out;
}

std::vector<GateCutTerm> zz_gate_cut_terms(Real theta) {
  const Real c = std::cos(theta);
  const Real s = std::sin(theta);
  std::vector<GateCutTerm> out;

  {
    GateCutTerm t;
    t.coefficient = c * c;
    t.cbits = 0;
    t.label = "zz-identity";
    t.append = [](Circuit&, int, int, int) {};
    out.push_back(std::move(t));
  }
  {
    GateCutTerm t;
    t.coefficient = s * s;
    t.cbits = 0;
    t.label = "zz-both-z";
    t.append = [](Circuit& c2, int qa, int qb, int) {
      c2.z(qa);
      c2.z(qb);
    };
    out.push_back(std::move(t));
  }
  const Real cs = c * s;
  if (std::abs(cs) > 1e-15) {
    for (int mirror = 0; mirror < 2; ++mirror) {
      for (Real alpha : {1.0, -1.0}) {
        GateCutTerm t;
        t.coefficient = alpha * cs;
        t.cbits = 1;
        t.sign_cbit = 0;
        t.label = std::string(mirror ? "zz-mirror-" : "zz-") + (alpha > 0 ? "plus" : "minus");
        t.append = [alpha, mirror](Circuit& c2, int qa, int qb, int cbit0) {
          const int measured = mirror ? qb : qa;
          const int rotated = mirror ? qa : qb;
          c2.measure(measured, cbit0);  // signed measurement: ±1 multiplies the estimate
          c2.gate(quarter_rotation(alpha), {rotated}, "Rz(aπ/2)");
        };
        out.push_back(std::move(t));
      }
    }
  }
  return out;
}

Qpd cut_zz_gate(const Circuit& circ, std::size_t pos, int qa, int qb, Real theta,
                const std::string& observable) {
  const int n = circ.n_qubits();
  QCUT_CHECK(circ.n_cbits() == 0, "cut_zz_gate: input circuit must be purely quantum");
  QCUT_CHECK(qa >= 0 && qa < n && qb >= 0 && qb < n && qa != qb,
             "cut_zz_gate: invalid gate qubits");
  QCUT_CHECK(pos <= circ.size(), "cut_zz_gate: position out of range");
  QCUT_CHECK(static_cast<int>(observable.size()) == n,
             "cut_zz_gate: observable length must match circuit width");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "cut_zz_gate: input circuit must contain only unitary/initialize ops");
  }

  std::vector<std::pair<int, char>> sites;
  for (int q = 0; q < n; ++q) {
    const char p = observable[static_cast<std::size_t>(q)];
    if (p == 'I') {
      continue;
    }
    QCUT_CHECK(p == 'X' || p == 'Y' || p == 'Z', "cut_zz_gate: invalid Pauli character");
    sites.emplace_back(q, p);
  }
  QCUT_CHECK(!sites.empty(), "cut_zz_gate: observable is the identity");

  Qpd qpd;
  for (const GateCutTerm& g : zz_gate_cut_terms(theta)) {
    const int n_cbits = g.cbits + static_cast<int>(sites.size());
    Circuit c(n, n_cbits);
    std::size_t idx = 0;
    for (; idx < pos; ++idx) {
      const Operation& op = circ.ops()[idx];
      if (op.kind == OpKind::kInitialize) {
        c.initialize(op.qubits, op.init_state, op.label);
      } else {
        c.gate(op.matrix, op.qubits, op.label);
      }
    }
    g.append(c, qa, qb, /*cbit0=*/0);
    for (; idx < circ.size(); ++idx) {
      const Operation& op = circ.ops()[idx];
      if (op.kind == OpKind::kInitialize) {
        c.initialize(op.qubits, op.init_state, op.label);
      } else {
        c.gate(op.matrix, op.qubits, op.label);
      }
    }

    QpdTerm term;
    term.estimate_cbits.clear();
    if (g.sign_cbit >= 0) {
      term.estimate_cbits.push_back(g.sign_cbit);  // the signed measurement
    }
    int cbit = g.cbits;
    for (const auto& [q, p] : sites) {
      append_pauli_measurement(c, q, p, cbit);
      term.estimate_cbits.push_back(cbit);
      ++cbit;
    }
    term.coefficient = g.coefficient;
    term.circuit = std::move(c);
    term.entangled_pairs = 0;
    term.label = g.label;
    qpd.add(std::move(term));
  }
  return qpd;
}

Qpd cut_cz_gate(const Circuit& circ, std::size_t pos, int qa, int qb,
                const std::string& observable) {
  // CZ = e^{-iπ/4} e^{-iπ/4 ZZ} (e^{iπ/4 Z} ⊗ e^{iπ/4 Z}); the global phase
  // is irrelevant to expectation values. Insert the local corrections at
  // `pos`, then cut the remaining ZZ rotation right after them.
  Circuit with_local(circ.n_qubits(), 0);
  std::size_t idx = 0;
  for (; idx < pos; ++idx) {
    const Operation& op = circ.ops()[idx];
    if (op.kind == OpKind::kInitialize) {
      with_local.initialize(op.qubits, op.init_state, op.label);
    } else {
      with_local.gate(op.matrix, op.qubits, op.label);
    }
  }
  const Matrix local = gates::rz(-kPi / 2.0);  // e^{iπ/4 Z}
  with_local.gate(local, {qa}, "Rz");
  with_local.gate(local, {qb}, "Rz");
  for (; idx < circ.size(); ++idx) {
    const Operation& op = circ.ops()[idx];
    if (op.kind == OpKind::kInitialize) {
      with_local.initialize(op.qubits, op.init_state, op.label);
    } else {
      with_local.gate(op.matrix, op.qubits, op.label);
    }
  }
  return cut_zz_gate(with_local, pos + 2, qa, qb, -kPi / 4.0, observable);
}

Matrix zz_gate_cut_reconstruct(Real theta, const Matrix& rho) {
  QCUT_CHECK(rho.rows() == 4 && rho.cols() == 4, "zz_gate_cut_reconstruct: two-qubit input");
  Matrix acc(4, 4);
  Matrix p0(2, 2), p1(2, 2);
  p0(0, 0) = Cplx{1, 0};
  p1(1, 1) = Cplx{1, 0};
  for (const GateCutTerm& g : zz_gate_cut_terms(theta)) {
    Matrix branch(4, 4);
    if (g.label == "zz-identity") {
      branch = rho;
    } else if (g.label == "zz-both-z") {
      const Matrix zz = kron(pauli_z(), pauli_z());
      branch = zz * rho * zz;
    } else {
      const bool mirror = g.label.find("mirror") != std::string::npos;
      const Real alpha = g.label.find("plus") != std::string::npos ? 1.0 : -1.0;
      const Matrix rot = quarter_rotation(alpha);
      // Signed measurement: Σ_a a K_a ρ K_a†.
      for (int a = 0; a < 2; ++a) {
        const Matrix proj = a == 0 ? p0 : p1;
        const Matrix k = mirror ? kron(rot, proj) : kron(proj, rot);
        const Real sign = a == 0 ? 1.0 : -1.0;
        branch += Cplx{sign, 0.0} * (k * rho * k.dagger());
      }
    }
    acc += Cplx{g.coefficient, 0.0} * branch;
  }
  return acc;
}

}  // namespace qcut
