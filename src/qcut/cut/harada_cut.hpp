// The optimal entanglement-free wire cut of Harada et al. (Eq. 20 / Fig. 2),
// with sampling overhead κ = γ(I) = 3. This is the paper's baseline: the
// f(ρ) = 1/2 endpoint of the NME continuum.
#pragma once

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

class HaradaCut final : public WireCutProtocol {
 public:
  std::string name() const override { return "harada"; }
  Real kappa() const override { return 3.0; }
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;
};

/// Shared gadget: the measure-and-flip branch of the negative term in both
/// Eq. (20) and Theorem 2 — Σ_j Tr[|j⟩⟨j|ρ] X|j⟩⟨j|X realized as
/// "measure sender, prepare the flipped outcome at the receiver".
CutGadget make_measure_flip_gadget(Real coefficient);

/// Shared gadget: deph(ρ) = Σ_j Tr[|j⟩⟨j|ρ] |j⟩⟨j| — measure sender,
/// re-prepare the observed outcome (used by the mixed-resource cut).
CutGadget make_measure_same_gadget(Real coefficient);

/// Channel of the measure-and-flip branch (Kraus {|1⟩⟨0|, |0⟩⟨1|}).
Channel measure_flip_channel();

/// Channel of the measure-and-re-prepare branch (Kraus {|0⟩⟨0|, |1⟩⟨1|}).
Channel measure_same_channel();

}  // namespace qcut
