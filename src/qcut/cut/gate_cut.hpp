// Gate cutting (the alternative circuit-cutting technique of Sec. V):
// quasiprobability decomposition of the two-qubit rotation e^{iθ Z⊗Z} into
// local operations, after Mitarai & Fujii [12].
//
//   e^{iθZZ} ρ e^{-iθZZ} = cos²θ [I] + sin²θ [Z⊗Z]
//        + cosθ·sinθ Σ_{α=±1} α ( [B_α] + [B'_α] ),
//
// where [B_α] measures qubit a in the Z basis — the ±1 outcome multiplies
// the estimator (a signed measurement) — and applies e^{iαπ/4 Z} to qubit b;
// [B'_α] is the mirror image. No quantum operation crosses the partition and
// no communication is needed at all (the outcome sign is classical
// post-processing), so the decomposition is LOCC.
//
// Sampling overhead: κ = 1 + 2|sin 2θ|, giving κ = 3 for a CZ (θ = ±π/4) —
// equal to the optimal single-wire cut without entanglement. The NME
// continuum of this paper applies to wire cuts only; extending it to gate
// cuts is the paper's stated open question, and bench_gate_vs_wire
// quantifies today's trade-off.
#pragma once

#include <functional>
#include <string>

#include "qcut/cut/cut_protocol.hpp"
#include "qcut/qpd/qpd.hpp"

namespace qcut {

/// One branch of the gate-cut QPD: ops spliced in place of the ZZ rotation.
/// `sign_cbit` (if >= 0, relative to cbit0) records a signed measurement
/// whose outcome multiplies the estimate.
struct GateCutTerm {
  Real coefficient = 0.0;
  int cbits = 0;       ///< classical bits consumed (0 or 1)
  int sign_cbit = -1;  ///< relative index of the signed-measurement bit
  std::string label;
  std::function<void(Circuit&, int qa, int qb, int cbit0)> append;
};

/// The QPD branches of e^{iθ Z⊗Z}.
std::vector<GateCutTerm> zz_gate_cut_terms(Real theta);

/// κ(θ) = 1 + 2|sin 2θ|.
Real zz_gate_cut_overhead(Real theta);

/// A cut protocol that replaces one two-qubit gate of the host circuit by a
/// QPD of local branches. No branch ever splices a quantum op across the
/// partition (the signed measurement's outcome is classical post-processing),
/// so gate cuts always split fragments fully and consume no resource pairs.
class GateCutProtocol : public CutProtocol {
 public:
  CutKind kind() const final { return CutKind::kGate; }
  Real pairs_per_sample() const final { return 0.0; }

  /// The QPD branches spliced in place of the host op.
  virtual std::vector<GateCutTerm> terms() const = 0;

  /// Branch-independent local corrections applied at the host op's position
  /// on each gate qubit (identity for a pure ZZ rotation). The generic
  /// splicer (circuit_cutter.cpp) appends them before every branch.
  virtual Matrix local_a() const = 0;
  virtual Matrix local_b() const = 0;
};

/// The Mitarai–Fujii cut of (A ⊗ B)·e^{iθ Z⊗Z} — via zz_factor_diagonal this
/// covers every diagonal two-qubit unitary (cz, cp, crz, rzz, fused diagonal
/// runs, …), with κ = 1 + 2|sin 2θ| ≤ 3.
class ZzGateCut final : public GateCutProtocol {
 public:
  /// Pure e^{iθ Z⊗Z} (identity locals).
  explicit ZzGateCut(Real theta);
  /// (local_a ⊗ local_b)·e^{iθ Z⊗Z}; the locals must be 2×2.
  ZzGateCut(Real theta, Matrix local_a, Matrix local_b);

  Real theta() const noexcept { return theta_; }

  std::string name() const override;
  Real kappa() const override { return zz_gate_cut_overhead(theta_); }
  std::vector<GateCutTerm> terms() const override { return zz_gate_cut_terms(theta_); }
  Matrix local_a() const override { return local_a_; }
  Matrix local_b() const override { return local_b_; }

 private:
  Real theta_;
  Matrix local_a_, local_b_;
};

/// Factorization of a diagonal two-qubit unitary U = (A ⊗ B)·e^{iθ Z⊗Z}
/// (up to nothing — the locals absorb the global phase). Exists for every
/// diagonal unitary; `ok` is false when U is not diagonal-unitary.
struct ZzFactorization {
  bool ok = false;
  Real theta = 0.0;  ///< principal angle in (−π/4, π/4]
  Matrix local_a, local_b;
};

/// Computes the factorization: θ = arg(U00·U11·conj(U01)·conj(U10))/4, locals
/// by back-substitution, verified against U to 1e-9.
ZzFactorization zz_factor_diagonal(const Matrix& u);

/// Cuts the rotation e^{iθ Z_qa ⊗ Z_qb} that would act after `pos` ops of
/// `circ` (which must not contain the gate itself), measuring the Pauli
/// string `observable` on the circuit output. Estimates include the signed
/// measurement bits automatically.
Qpd cut_zz_gate(const Circuit& circ, std::size_t pos, int qa, int qb, Real theta,
                const std::string& observable);

/// CZ via the gate cut: CZ = e^{-iπ/4} · e^{-iπ/4 Z⊗Z} · (e^{iπ/4Z} ⊗ e^{iπ/4Z}).
/// Appends the local Rz corrections to the circuit copies and cuts the ZZ
/// part (θ = −π/4, κ = 3). `pos` is where the CZ would act in `circ`.
Qpd cut_cz_gate(const Circuit& circ, std::size_t pos, int qa, int qb,
                const std::string& observable);

/// Exact quasi-mix Σ c_i F_i(ρ) of the zz gate-cut terms applied to a
/// two-qubit ρ (signed branches included analytically). Equals
/// e^{iθZZ} ρ e^{-iθZZ} — the identity tests verify this.
Matrix zz_gate_cut_reconstruct(Real theta, const Matrix& rho);

}  // namespace qcut
