// Gate cutting (the alternative circuit-cutting technique of Sec. V):
// quasiprobability decomposition of the two-qubit rotation e^{iθ Z⊗Z} into
// local operations, after Mitarai & Fujii [12].
//
//   e^{iθZZ} ρ e^{-iθZZ} = cos²θ [I] + sin²θ [Z⊗Z]
//        + cosθ·sinθ Σ_{α=±1} α ( [B_α] + [B'_α] ),
//
// where [B_α] measures qubit a in the Z basis — the ±1 outcome multiplies
// the estimator (a signed measurement) — and applies e^{iαπ/4 Z} to qubit b;
// [B'_α] is the mirror image. No quantum operation crosses the partition and
// no communication is needed at all (the outcome sign is classical
// post-processing), so the decomposition is LOCC.
//
// Sampling overhead: κ = 1 + 2|sin 2θ|, giving κ = 3 for a CZ (θ = ±π/4) —
// equal to the optimal single-wire cut without entanglement. The NME
// continuum of this paper applies to wire cuts only; extending it to gate
// cuts is the paper's stated open question, and bench_gate_vs_wire
// quantifies today's trade-off.
#pragma once

#include <functional>
#include <string>

#include "qcut/qpd/qpd.hpp"

namespace qcut {

/// One branch of the gate-cut QPD: ops spliced in place of the ZZ rotation.
/// `sign_cbit` (if >= 0, relative to cbit0) records a signed measurement
/// whose outcome multiplies the estimate.
struct GateCutTerm {
  Real coefficient = 0.0;
  int cbits = 0;       ///< classical bits consumed (0 or 1)
  int sign_cbit = -1;  ///< relative index of the signed-measurement bit
  std::string label;
  std::function<void(Circuit&, int qa, int qb, int cbit0)> append;
};

/// The QPD branches of e^{iθ Z⊗Z}.
std::vector<GateCutTerm> zz_gate_cut_terms(Real theta);

/// κ(θ) = 1 + 2|sin 2θ|.
Real zz_gate_cut_overhead(Real theta);

/// Cuts the rotation e^{iθ Z_qa ⊗ Z_qb} that would act after `pos` ops of
/// `circ` (which must not contain the gate itself), measuring the Pauli
/// string `observable` on the circuit output. Estimates include the signed
/// measurement bits automatically.
Qpd cut_zz_gate(const Circuit& circ, std::size_t pos, int qa, int qb, Real theta,
                const std::string& observable);

/// CZ via the gate cut: CZ = e^{-iπ/4} · e^{-iπ/4 Z⊗Z} · (e^{iπ/4Z} ⊗ e^{iπ/4Z}).
/// Appends the local Rz corrections to the circuit copies and cuts the ZZ
/// part (θ = −π/4, κ = 3). `pos` is where the CZ would act in `circ`.
Qpd cut_cz_gate(const Circuit& circ, std::size_t pos, int qa, int qb,
                const std::string& observable);

/// Exact quasi-mix Σ c_i F_i(ρ) of the zz gate-cut terms applied to a
/// two-qubit ρ (signed branches included analytically). Equals
/// e^{iθZZ} ρ e^{-iθZZ} — the identity tests verify this.
Matrix zz_gate_cut_reconstruct(Real theta, const Matrix& rho);

}  // namespace qcut
