// Multi-wire cutting by independent composition (Sec. V discussion).
//
// Cutting n wires independently multiplies the QPDs: the joint decomposition
// has Π m_i terms, coefficient products, and total overhead κ = Π κ_i —
// exponential in the number of cuts, which is exactly the cost the paper's
// NME resources mitigate (each κ_i shrinks toward 1 as f → 1).
#pragma once

#include <vector>

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

/// Builds the product QPD of n single-wire cuts executed side by side. The
/// joint observable is the tensor product of the per-wire observables; each
/// joint term's estimate is the parity of the per-wire estimates.
Qpd product_qpd(const std::vector<const WireCutProtocol*>& protocols,
                const std::vector<CutInput>& inputs);

/// κ of the product decomposition (= Π κ_i). The product law is
/// kind-agnostic — the planner applies the same composition to mixed
/// wire/gate cut sets via CutProtocol::kappa(); this overload keeps the
/// established wire-only call sites working unambiguously.
Real product_kappa(const std::vector<const WireCutProtocol*>& protocols);

}  // namespace qcut
