#include "qcut/cut/nme_cut.hpp"

#include <cmath>
#include <sstream>

#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/teleportation.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

NmeCut::NmeCut(Real k) : k_(k) {
  QCUT_CHECK(k >= 0.0 && k <= 1.0 + kTightTol, "NmeCut: k must lie in [0, 1]");
  k_ = std::min<Real>(k_, 1.0);
}

NmeCut NmeCut::from_overlap(Real f) { return NmeCut(k_for_overlap(f)); }

Real NmeCut::coeff_a() const noexcept { return (k_ * k_ + 1.0) / ((k_ + 1.0) * (k_ + 1.0)); }

Real NmeCut::coeff_b() const noexcept {
  return (k_ - 1.0) * (k_ - 1.0) / ((k_ + 1.0) * (k_ + 1.0));
}

std::string NmeCut::name() const {
  std::ostringstream os;
  os << "nme(k=" << k_ << ")";
  return os.str();
}

Real NmeCut::kappa() const { return nme_cut_overhead(k_); }

Real nme_cut_overhead(Real k) {
  QCUT_CHECK(k >= 0.0, "nme_cut_overhead: k must be non-negative");
  return 4.0 * (k * k + 1.0) / ((k + 1.0) * (k + 1.0)) - 1.0;
}

std::vector<CutGadget> NmeCut::gadgets() const {
  // Gadget layout (Fig. 5): src = A (data, sender), helpers[0] = B (sender
  // half of the resource), dst = C (receiver half). The pre-shared |Φk⟩
  // enters as an initialize op on (B, C); teleport A → C with feed-forward;
  // U_i conjugation around the teleport per Theorem 2.
  std::vector<CutGadget> out;
  const Real a = coeff_a();
  const Real b = coeff_b();
  const Real k = k_;

  for (int i = 1; i <= 2; ++i) {
    CutGadget g;
    g.coefficient = a;
    g.extra_qubits = 1;  // B
    g.cbits = 2;
    g.entangled_pairs = 1;
    g.label = i == 1 ? "teleport-H" : "teleport-SH";
    g.append = [i, k](Circuit& c, int src, int dst, const std::vector<int>& helpers,
                      int cbit0) {
      // U_i† on the state to be sent: U1† = H; U2† = (SH)† applied as Sdg, H.
      if (i == 2) {
        c.sdg(src);
      }
      c.h(src);
      // Pre-shared resource |Φk⟩ on (B, C).
      c.initialize({helpers[0], dst}, phi_k_state(k), "phi_k");
      // Teleport A → C.
      append_teleport(c, src, helpers[0], dst, cbit0, cbit0 + 1);
      // U_i on the received state: U1 = H; U2 = SH applied as H, S.
      c.h(dst);
      if (i == 2) {
        c.s(dst);
      }
    };
    out.push_back(std::move(g));
  }

  // The corrective measure-and-flip branch vanishes at k = 1 (b = 0), where
  // the protocol degenerates to plain teleportation.
  if (b > 1e-15) {
    out.push_back(make_measure_flip_gadget(-b));
  }
  return out;
}

std::vector<std::pair<Real, Channel>> NmeCut::channel_terms() const {
  std::vector<std::pair<Real, Channel>> out;
  const Real a = coeff_a();
  const Real b = coeff_b();
  const Channel tel = teleport_channel_phi_k(k_);
  for (int i = 1; i <= 2; ++i) {
    const Matrix u = i == 2 ? gates::s() * gates::h() : gates::h();
    // U_i E_tel(U_i† ρ U_i) U_i†: conjugate every Kraus operator.
    std::vector<Matrix> ks;
    for (const auto& kop : tel.kraus()) {
      ks.push_back(u * kop * u.dagger());
    }
    out.emplace_back(a, Channel(std::move(ks)));
  }
  if (b > 1e-15) {
    out.emplace_back(-b, measure_flip_channel());
  }
  return out;
}

}  // namespace qcut
