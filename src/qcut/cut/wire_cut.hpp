// Wire-cut protocol interface.
//
// A wire cut replaces the identity channel on one circuit wire by a
// quasiprobability mixture of LOCC-implementable subcircuits (Sec. II-D).
// Each protocol provides:
//   * gadgets      — per-QPD-term circuit fragments that transfer the state
//     of a sender wire onto a fresh receiver wire. The generic circuit
//     cutter (circuit_cutter.hpp) splices these into arbitrary circuits;
//     build_qpd is the single-wire convenience built on the same path.
//   * channel_terms — the exact single-qubit CPTN channels of the branches,
//     whose quasi-mix must equal the identity channel (what tests verify).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qcut/cut/cut_protocol.hpp"
#include "qcut/linalg/channel.hpp"
#include "qcut/qpd/qpd.hpp"

namespace qcut {

/// Input to a single-wire cut experiment: the state φ = prep·|0⟩ entering the
/// cut wire, and the single-qubit Pauli measured on the receiving wire.
struct CutInput {
  Matrix prep = Matrix::identity(2);  ///< single-qubit preparation unitary W
  char observable = 'Z';              ///< 'X', 'Y', or 'Z'
};

/// One QPD branch as a reusable circuit fragment. `append` splices the
/// branch's operations into a host circuit: it consumes the state on `src`
/// (sender side), delivers the branch's output state on `dst` (receiver
/// side), may use `helpers` scratch/resource qubits (all fresh |0⟩), and may
/// write classical bits [cbit0, cbit0 + cbits).
struct CutGadget {
  Real coefficient = 0.0;
  int extra_qubits = 0;    ///< helper qubits needed beyond src and dst
  int cbits = 0;           ///< classical bits consumed
  int entangled_pairs = 0; ///< NME resources per execution
  std::string label;
  std::function<void(Circuit&, int src, int dst, const std::vector<int>& helpers, int cbit0)>
      append;
};

class WireCutProtocol : public CutProtocol {
 public:
  CutKind kind() const final { return CutKind::kWire; }

  /// Σ (|c_i|/κ)·pairs_i over the QPD branches — derived generically from
  /// gadgets(), so protocols only declare per-branch consumption.
  Real pairs_per_sample() const override;

  /// The branch fragments; coefficients must sum to 1 and Σ|c_i| = kappa().
  virtual std::vector<CutGadget> gadgets() const = 0;

  /// The branch channels (c_i, F_i) acting on the cut wire; Σ c_i F_i = I.
  virtual std::vector<std::pair<Real, Channel>> channel_terms() const = 0;

  /// Single-wire convenience: executable QPD whose circuits prepare φ on the
  /// sender wire, cut, and measure `observable` on the receiving wire.
  /// Implemented generically on top of gadgets() (see circuit_cutter.cpp).
  Qpd build_qpd(const CutInput& input) const;
};

/// Σ c_i F_i(ρ) over the protocol's channel terms — equals ρ for a correct
/// wire cut (Eq. 19). Used by tests and the examples.
Matrix reconstruct(const WireCutProtocol& protocol, const Matrix& rho);

/// Exact value the protocol's estimator converges to for this input;
/// must equal ⟨observable⟩ on prep·|0⟩.
Real exact_cut_expectation(const WireCutProtocol& protocol, const CutInput& input);

/// ⟨observable⟩ on W|0⟩ computed directly (no cutting) — the experiment's
/// classical reference value (Sec. IV).
Real uncut_expectation(const CutInput& input);

}  // namespace qcut
