// The paper's contribution (Theorem 2): optimal wire cutting with pure
// non-maximally entangled resource states |Φk⟩.
//
//   I(·) = a · Σ_{i∈{1,2}} U_i E^{Φk}_tel(U_i† · U_i) U_i†
//        − b · Σ_j Tr[|j⟩⟨j| ·] X|j⟩⟨j|X,
//   a = (k²+1)/(k+1)²,  b = (k−1)²/(k+1)²,  U1 = H, U2 = SH.
//
// Sampling overhead κ = 2a + b = 4(k²+1)/(k+1)² − 1 (Corollary 1), which is
// optimal by Theorem 1. k = 1 recovers cost-free teleportation (κ = 1);
// k = 0 recovers the entanglement-free optimum (κ = 3).
#pragma once

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

class NmeCut final : public WireCutProtocol {
 public:
  /// `k` is the Schmidt parameter of the resource |Φk⟩ ∈ [0, ∞); values and
  /// 1/k give the same state up to local flips, so we require k ∈ [0, 1].
  explicit NmeCut(Real k);

  /// Protocol using the resource with maximal overlap f = f(Φk) ∈ [1/2, 1].
  static NmeCut from_overlap(Real f);

  Real k() const noexcept { return k_; }
  /// a = (k²+1)/(k+1)² — the teleport-term coefficient.
  Real coeff_a() const noexcept;
  /// b = (k−1)²/(k+1)² — the measure-flip-term coefficient magnitude.
  Real coeff_b() const noexcept;

  std::string name() const override;
  Real kappa() const override;
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;

 private:
  Real k_;
};

/// Corollary 1 in closed form: γ^{Φk}(I) = 4(k²+1)/(k+1)² − 1.
Real nme_cut_overhead(Real k);

}  // namespace qcut
