#include "qcut/cut/mixed_cut.hpp"

#include <sstream>

#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/teleportation.hpp"
#include "qcut/ent/purify.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

// C = SH cycles the Pauli axes: C X C† = Z, C Z C† = Y, C Y C† = X.
Matrix cycling_clifford() { return gates::s() * gates::h(); }

// Applies C^power as circuit ops (power ∈ {0, 1, 2}).
void append_c_power(Circuit& c, int q, int power) {
  for (int i = 0; i < power; ++i) {
    c.h(q);
    c.s(q);
  }
}

// Applies (C†)^power as circuit ops.
void append_c_dagger_power(Circuit& c, int q, int power) {
  for (int i = 0; i < power; ++i) {
    c.sdg(q);
    c.h(q);
  }
}

}  // namespace

Real mixed_cut_overhead(Real q_identity) {
  QCUT_CHECK(q_identity > 0.25 + 1e-12,
             "mixed_cut_overhead: requires Bell-identity weight q_I > 1/4");
  const Real qe = 1.0 - q_identity;
  return (3.0 + 4.0 * qe) / (3.0 - 4.0 * qe);
}

Matrix werner_resource(Real q_identity) {
  QCUT_CHECK(q_identity > 0.25 + 1e-12 && q_identity <= 1.0 + kTightTol,
             "werner_resource: q_identity must lie in (1/4, 1]");
  const std::array<Vector, 4> basis = bell_basis();
  Matrix rho = Cplx{q_identity, 0.0} * density(basis[0]);
  const Real rest = (1.0 - q_identity) / 3.0;
  for (std::size_t i = 1; i < 4; ++i) {
    rho += Cplx{rest, 0.0} * density(basis[i]);
  }
  return rho;
}

MixedNmeCut::MixedNmeCut(Matrix resource) : resource_(std::move(resource)) {
  QCUT_CHECK(resource_.rows() == 4 && resource_.cols() == 4,
             "MixedNmeCut: resource must be a two-qubit density operator");
  QCUT_CHECK(resource_.is_hermitian(1e-8), "MixedNmeCut: resource must be Hermitian");
  QCUT_CHECK(approx_eq(resource_.trace().real(), 1.0, 1e-8),
             "MixedNmeCut: resource must have unit trace");
  q_identity_ = bell_overlaps(resource_)[0];
  QCUT_CHECK(q_identity_ > 0.25 + 1e-9,
             "MixedNmeCut: resource too noisy (needs ⟨Φ|ρ|Φ⟩ > 1/4)");
  purified_ = purify(resource_, /*n_anc=*/2);
}

std::string MixedNmeCut::name() const {
  std::ostringstream os;
  os << "mixed(qI=" << q_identity_ << ")";
  return os.str();
}

Real MixedNmeCut::kappa() const { return mixed_cut_overhead(q_identity_); }

std::vector<CutGadget> MixedNmeCut::gadgets() const {
  const Real qe = 1.0 - q_identity_;
  const Real denom = 3.0 - 4.0 * qe;  // = 3 q_I − q_E
  const Real a = 1.0 / denom;
  const Real b = 2.0 * qe / denom;
  const Vector purified = purified_;

  std::vector<CutGadget> out;
  for (int i = 0; i < 3; ++i) {
    // helpers[0] = B (sender half), helpers[1..2] = purification ancillas.
    CutGadget g;
    g.coefficient = a;
    g.extra_qubits = 3;
    g.cbits = 2;
    g.entangled_pairs = 1;
    g.label = "teleport-C" + std::to_string(i);
    g.append = [i, purified](Circuit& c, int src, int dst, const std::vector<int>& h,
                             int cbit0) {
      append_c_dagger_power(c, src, i);
      // Purified resource on (B, C, anc, anc); ancillas stay untouched.
      c.initialize({h[0], dst, h[1], h[2]}, purified, "resource");
      append_teleport(c, src, h[0], dst, cbit0, cbit0 + 1);
      append_c_power(c, dst, i);
    };
    out.push_back(std::move(g));
  }
  if (b > 1e-15) {
    out.push_back(make_measure_flip_gadget(-b));
    out.push_back(make_measure_same_gadget(-b));
  }
  return out;
}

std::vector<std::pair<Real, Channel>> MixedNmeCut::channel_terms() const {
  const Real qe = 1.0 - q_identity_;
  const Real denom = 3.0 - 4.0 * qe;
  const Real a = 1.0 / denom;
  const Real b = 2.0 * qe / denom;

  const Channel tel = teleport_channel(resource_);
  const Matrix c_op = cycling_clifford();

  std::vector<std::pair<Real, Channel>> out;
  Matrix conj = Matrix::identity(2);
  for (int i = 0; i < 3; ++i) {
    std::vector<Matrix> ks;
    for (const auto& k : tel.kraus()) {
      ks.push_back(conj * k * conj.dagger());
    }
    out.emplace_back(a, Channel(std::move(ks)));
    conj = c_op * conj;
  }
  if (b > 1e-15) {
    out.emplace_back(-b, measure_flip_channel());
    out.emplace_back(-b, measure_same_channel());
  }
  return out;
}

}  // namespace qcut
