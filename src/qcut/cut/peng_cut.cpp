#include "qcut/cut/peng_cut.hpp"

#include "qcut/sim/gates.hpp"

namespace qcut {

// Decomposition used (equivalent to Peng et al. up to term grouping):
//   ρ = ½ Tr[ρ](|0⟩⟨0| + |1⟩⟨1|)
//     + ½ Σ_{B∈{X,Y,Z}} ( F_same^B(ρ) − F_flip^B(ρ) )
// where F_same^B measures basis B and re-prepares the observed eigenstate,
// F_flip^B prepares the opposite one. Eight circuits, |c_i| = ½, κ = 4.
//
// Correctness: F_same^B − F_flip^B = Tr[Bρ]·B, and
// ½(Tr[ρ]I + Σ_B Tr[Bρ]B) = ρ is the Pauli expansion.

namespace {

// Basis index: 0 = Z, 1 = X, 2 = Y. Rotation V_B maps Z eigenstates to B
// eigenstates: V_Z = I, V_X = H, V_Y = SH.
void append_v_dagger(Circuit& c, int q, int b) {
  if (b == 2) {
    c.sdg(q);
  }
  if (b != 0) {
    c.h(q);
  }
}

void append_v(Circuit& c, int q, int b) {
  if (b != 0) {
    c.h(q);
  }
  if (b == 2) {
    c.s(q);
  }
}

Matrix v_matrix(int b) {
  if (b == 0) {
    return Matrix::identity(2);
  }
  if (b == 1) {
    return gates::h();
  }
  return gates::s() * gates::h();
}

CutGadget make_prep_gadget(int bit) {
  // Tr[ρ] · |bit⟩⟨bit|: sender measures and discards; receiver prepares |bit⟩.
  CutGadget g;
  g.coefficient = 0.5;
  g.extra_qubits = 0;
  g.cbits = 1;
  g.label = bit == 1 ? "prep-one" : "prep-zero";
  g.append = [bit](Circuit& c, int src, int dst, const std::vector<int>&, int cbit0) {
    c.measure(src, cbit0);  // discarded
    if (bit == 1) {
      c.x(dst);
    }
  };
  return g;
}

CutGadget make_basis_gadget(int b, bool flip) {
  CutGadget g;
  g.coefficient = flip ? -0.5 : 0.5;
  g.extra_qubits = 0;
  g.cbits = 1;
  static const char* kNames[] = {"Z", "X", "Y"};
  g.label = std::string(flip ? "flip-" : "same-") + kNames[b];
  g.append = [b, flip](Circuit& c, int src, int dst, const std::vector<int>&, int cbit0) {
    append_v_dagger(c, src, b);
    c.measure(src, cbit0);
    c.x_if(cbit0, dst);
    if (flip) {
      c.x(dst);
    }
    append_v(c, dst, b);
  };
  return g;
}

}  // namespace

std::vector<CutGadget> PengCut::gadgets() const {
  std::vector<CutGadget> out;
  out.push_back(make_prep_gadget(0));
  out.push_back(make_prep_gadget(1));
  for (int b = 0; b < 3; ++b) {
    out.push_back(make_basis_gadget(b, /*flip=*/false));
    out.push_back(make_basis_gadget(b, /*flip=*/true));
  }
  return out;
}

std::vector<std::pair<Real, Channel>> PengCut::channel_terms() const {
  std::vector<std::pair<Real, Channel>> out;
  // Prep terms: Tr[ρ]|bit⟩⟨bit| has Kraus {|bit⟩⟨0|, |bit⟩⟨1|}.
  for (int bit = 0; bit < 2; ++bit) {
    std::vector<Matrix> ks;
    for (Index j = 0; j < 2; ++j) {
      Matrix k(2, 2);
      k(bit, j) = Cplx{1.0, 0.0};
      ks.push_back(std::move(k));
    }
    out.emplace_back(0.5, Channel(std::move(ks)));
  }
  for (int b = 0; b < 3; ++b) {
    const Matrix v = v_matrix(b);
    for (int flip = 0; flip < 2; ++flip) {
      std::vector<Matrix> ks;
      for (Index j = 0; j < 2; ++j) {
        Matrix proj(2, 2);
        proj(flip ? 1 - j : j, j) = Cplx{1.0, 0.0};  // |j±flip⟩⟨j| in the Z basis
        ks.push_back(v * proj * v.dagger());
      }
      out.emplace_back(flip ? -0.5 : 0.5, Channel(std::move(ks)));
    }
  }
  return out;
}

}  // namespace qcut
