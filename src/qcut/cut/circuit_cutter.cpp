#include "qcut/cut/circuit_cutter.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/cut/teleportation.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

/// Observable sites to measure (original indexing), validated. `ctx` names
/// the entry point for the error messages.
std::vector<std::pair<int, char>> parse_observable(const std::string& observable, int n_orig,
                                                   const std::string& ctx) {
  QCUT_CHECK(static_cast<int>(observable.size()) == n_orig,
             ctx + ": observable length must match circuit width");
  std::vector<std::pair<int, char>> sites;
  for (int q = 0; q < n_orig; ++q) {
    const char p = observable[static_cast<std::size_t>(q)];
    if (p == 'I') {
      continue;
    }
    QCUT_CHECK(p == 'X' || p == 'Y' || p == 'Z', ctx + ": invalid Pauli character");
    sites.emplace_back(q, p);
  }
  QCUT_CHECK(!sites.empty(), ctx + ": observable is the identity");
  return sites;
}

/// True iff the state `wire` carries at op index `pos` is ever observed by a
/// later op: the first op from `pos` on that touches the wire must consume
/// it, not overwrite it — an initialize covering the wire discards the state,
/// so a cut feeding only into an initialize is as dead as one feeding nothing.
bool wire_used_from(const Circuit& circ, std::size_t pos, int wire) {
  for (std::size_t t = pos; t < circ.size(); ++t) {
    const Operation& op = circ.ops()[t];
    if (std::find(op.qubits.begin(), op.qubits.end(), wire) != op.qubits.end()) {
      return op.kind != OpKind::kInitialize;
    }
  }
  return false;
}

void append_original_op(Circuit& c, const Operation& op, const std::vector<int>& cur) {
  std::vector<int> qs = op.qubits;
  for (int& q : qs) {
    q = cur[static_cast<std::size_t>(q)];
  }
  if (op.kind == OpKind::kInitialize) {
    c.initialize(qs, op.init_state, op.label);
  } else {
    c.gate(op.matrix, qs, op.label);
  }
}

}  // namespace

Qpd cut_circuit_sites(const Circuit& circ, const std::vector<CutSite>& cut_sites,
                      const std::vector<const CutProtocol*>& protocols,
                      const std::string& observable) {
  const int n_orig = circ.n_qubits();
  const std::size_t n_cuts = cut_sites.size();
  QCUT_CHECK(n_cuts > 0, "cut_circuit: no cut sites");
  QCUT_CHECK(protocols.size() == n_cuts, "cut_circuit: cut/protocol count mismatch");
  QCUT_CHECK(circ.n_cbits() == 0, "cut_circuit: input circuit must be purely quantum");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "cut_circuit: input circuit must contain only unitary/initialize ops");
  }
  const auto sites = parse_observable(observable, n_orig, "cut_circuit");

  // Per-site validation. Receiver wires are allocated to wire sites only, in
  // input order; gate sites map 1:1 onto the host op they replace.
  std::vector<int> receiver(n_cuts, -1);
  int n_receivers = 0;
  std::vector<std::size_t> gate_site_at(circ.size(), n_cuts);  // op index -> site
  for (std::size_t j = 0; j < n_cuts; ++j) {
    QCUT_CHECK(protocols[j] != nullptr, "cut_circuit: null protocol");
    QCUT_CHECK(protocols[j]->kind() == cut_sites[j].kind,
               "cut_circuit: protocol kind does not match cut site kind");
    if (cut_sites[j].kind == CutKind::kWire) {
      const CutPoint& p = cut_sites[j].point;
      QCUT_CHECK(p.qubit >= 0 && p.qubit < n_orig, "cut_circuit: cut qubit out of range");
      QCUT_CHECK(p.after_op <= circ.size(), "cut_circuit: cut position out of range");
      // Dead-cut check: after the cut, the wire must be touched by some op or
      // measured by the observable — otherwise the teleported state is never
      // observed and the cut only inflates the sampling overhead by κ².
      const bool measured = observable[static_cast<std::size_t>(p.qubit)] != 'I';
      QCUT_CHECK(measured || wire_used_from(circ, p.after_op, p.qubit),
                 "cut_circuit: cut wire has no operations or observable after the cut");
      receiver[j] = n_orig + n_receivers;
      ++n_receivers;
    } else {
      QCUT_CHECK(cut_sites[j].op_index < circ.size(), "cut_circuit: gate-cut op out of range");
      const Operation& op = circ.ops()[cut_sites[j].op_index];
      QCUT_CHECK(op.kind == OpKind::kUnitary && op.qubits.size() == 2,
                 "cut_circuit: gate cuts apply to two-qubit unitary ops");
      QCUT_CHECK(gate_site_at[cut_sites[j].op_index] == n_cuts,
                 "cut_circuit: op cut by more than one gate cut");
      gate_site_at[cut_sites[j].op_index] = j;
    }
  }

  // One uniform branch view per site: wire gadgets or gate-cut terms.
  struct Branch {
    Real coefficient = 0.0;
    int extra_qubits = 0;
    int cbits = 0;
    int pairs = 0;
    int sign_cbit = -1;
    const std::string* label = nullptr;
    const CutGadget* wire = nullptr;
    const GateCutTerm* gate = nullptr;
  };
  std::vector<std::vector<CutGadget>> wire_gadgets(n_cuts);
  std::vector<std::vector<GateCutTerm>> gate_terms(n_cuts);
  std::vector<Matrix> gate_local_a(n_cuts), gate_local_b(n_cuts);
  std::vector<std::vector<Branch>> branch_sets(n_cuts);
  std::size_t total_terms = 1;
  for (std::size_t j = 0; j < n_cuts; ++j) {
    if (cut_sites[j].kind == CutKind::kWire) {
      const auto* wp = dynamic_cast<const WireCutProtocol*>(protocols[j]);
      QCUT_CHECK(wp != nullptr, "cut_circuit: wire-kind protocol must be a WireCutProtocol");
      wire_gadgets[j] = wp->gadgets();
      for (const CutGadget& g : wire_gadgets[j]) {
        QCUT_CHECK(g.append != nullptr, "cut_circuit: gadget without append function");
        Branch b;
        b.coefficient = g.coefficient;
        b.extra_qubits = g.extra_qubits;
        b.cbits = g.cbits;
        b.pairs = g.entangled_pairs;
        b.label = &g.label;
        b.wire = &g;
        branch_sets[j].push_back(b);
      }
    } else {
      const auto* gp = dynamic_cast<const GateCutProtocol*>(protocols[j]);
      QCUT_CHECK(gp != nullptr, "cut_circuit: gate-kind protocol must be a GateCutProtocol");
      gate_terms[j] = gp->terms();
      gate_local_a[j] = gp->local_a();
      gate_local_b[j] = gp->local_b();
      for (const GateCutTerm& g : gate_terms[j]) {
        QCUT_CHECK(g.append != nullptr, "cut_circuit: gate-cut term without append function");
        Branch b;
        b.coefficient = g.coefficient;
        b.cbits = g.cbits;
        b.sign_cbit = g.sign_cbit;
        b.label = &g.label;
        b.gate = &g;
        branch_sets[j].push_back(b);
      }
    }
    QCUT_CHECK(!branch_sets[j].empty(), "cut_circuit: protocol with no branches");
    total_terms *= branch_sets[j].size();
    QCUT_CHECK(total_terms <= 100000, "cut_circuit: term explosion");
  }

  // Splice order of the wire sites: by position, ties in input order
  // (stable). Receiver wire and classical-bit layout stay keyed to the input
  // order so the term structure is independent of how the cuts are sorted.
  // Gate sites need no ordering — each fires exactly when its host op does.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < n_cuts; ++j) {
    if (cut_sites[j].kind == CutKind::kWire) {
      order.push_back(j);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&cut_sites](std::size_t a, std::size_t b) {
    return cut_sites[a].point.after_op < cut_sites[b].point.after_op;
  });

  const auto is_identity2 = [](const Matrix& m) {
    return std::abs(m(0, 0) - Cplx{1, 0}) < 1e-15 && std::abs(m(1, 1) - Cplx{1, 0}) < 1e-15 &&
           std::abs(m(0, 1)) < 1e-15 && std::abs(m(1, 0)) < 1e-15;
  };

  Qpd qpd;
  std::vector<std::size_t> idx(n_cuts, 0);  // current branch per cut
  for (std::size_t t = 0; t < total_terms; ++t) {
    // Layout for this branch tuple: receivers, then per-cut helper blocks,
    // then per-cut classical-bit blocks followed by the observable bits.
    int n_qubits = n_orig + n_receivers;
    std::vector<int> helper_base(n_cuts), cbit_base(n_cuts);
    int cbit = 0;
    Real coeff = 1.0;
    int pairs = 0;
    std::string label;
    for (std::size_t j = 0; j < n_cuts; ++j) {
      const Branch& b = branch_sets[j][idx[j]];
      helper_base[j] = n_qubits;
      n_qubits += b.extra_qubits;
      cbit_base[j] = cbit;
      cbit += b.cbits;
      coeff *= b.coefficient;
      pairs += b.pairs;
      label += (j ? "*" : "") + *b.label;
    }
    Circuit c(n_qubits, cbit + static_cast<int>(sites.size()));

    QpdTerm term;
    term.estimate_cbits.clear();

    // Current carrier wire of each original qubit.
    std::vector<int> cur(static_cast<std::size_t>(n_orig));
    std::iota(cur.begin(), cur.end(), 0);

    std::size_t next_cut = 0;
    for (std::size_t pos = 0; pos <= circ.size(); ++pos) {
      while (next_cut < order.size() && cut_sites[order[next_cut]].point.after_op == pos) {
        const std::size_t j = order[next_cut];
        const Branch& b = branch_sets[j][idx[j]];
        const int dst = receiver[j];
        std::vector<int> helpers;
        for (int h = 0; h < b.extra_qubits; ++h) {
          helpers.push_back(helper_base[j] + h);
        }
        const int src = cur[static_cast<std::size_t>(cut_sites[j].point.qubit)];
        b.wire->append(c, src, dst, helpers, cbit_base[j]);
        cur[static_cast<std::size_t>(cut_sites[j].point.qubit)] = dst;
        ++next_cut;
      }
      if (pos < circ.size()) {
        const std::size_t j = gate_site_at[pos];
        if (j < n_cuts) {
          // Gate cut: branch-independent locals, then this branch's ops, in
          // place of the host op — on the op's *current* carrier wires.
          const Branch& b = branch_sets[j][idx[j]];
          const Operation& op = circ.ops()[pos];
          const int qa = cur[static_cast<std::size_t>(op.qubits[0])];
          const int qb = cur[static_cast<std::size_t>(op.qubits[1])];
          if (!is_identity2(gate_local_a[j])) {
            c.gate(gate_local_a[j], {qa}, "gc-local");
          }
          if (!is_identity2(gate_local_b[j])) {
            c.gate(gate_local_b[j], {qb}, "gc-local");
          }
          b.gate->append(c, qa, qb, cbit_base[j]);
          if (b.sign_cbit >= 0) {
            term.estimate_cbits.push_back(cbit_base[j] + b.sign_cbit);
          }
        } else {
          append_original_op(c, circ.ops()[pos], cur);
        }
      }
    }

    // Observable measurements; estimate = parity of the recorded bits
    // (signed gate-cut measurements included above).
    for (const auto& [q, p] : sites) {
      append_pauli_measurement(c, cur[static_cast<std::size_t>(q)], p, cbit);
      term.estimate_cbits.push_back(cbit);
      ++cbit;
    }
    term.coefficient = coeff;
    term.circuit = std::move(c);
    term.entangled_pairs = pairs;
    term.label = std::move(label);
    qpd.add(std::move(term));

    // Advance the branch-index tuple (last cut fastest).
    for (std::size_t j = n_cuts; j-- > 0;) {
      if (++idx[j] < branch_sets[j].size()) {
        break;
      }
      idx[j] = 0;
    }
  }
  return qpd;
}

Qpd cut_circuit_multi(const Circuit& circ, const std::vector<CutPoint>& points,
                      const std::vector<const WireCutProtocol*>& protocols,
                      const std::string& observable) {
  std::vector<CutSite> sites;
  sites.reserve(points.size());
  for (const CutPoint& p : points) {
    sites.push_back(CutSite::wire(p));
  }
  std::vector<const CutProtocol*> protos(protocols.begin(), protocols.end());
  return cut_circuit_sites(circ, sites, protos, observable);
}

Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable) {
  return cut_circuit_multi(circ, {point}, {&protocol}, observable);
}

Qpd uncut_qpd(const Circuit& circ, const std::string& observable) {
  QCUT_CHECK(circ.n_cbits() == 0, "uncut_qpd: input circuit must be purely quantum");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "uncut_qpd: input circuit must contain only unitary/initialize ops");
  }
  const auto sites = parse_observable(observable, circ.n_qubits(), "uncut_qpd");
  Circuit c(circ.n_qubits(), static_cast<int>(sites.size()));
  std::vector<int> cur(static_cast<std::size_t>(circ.n_qubits()));
  std::iota(cur.begin(), cur.end(), 0);
  for (const auto& op : circ.ops()) {
    append_original_op(c, op, cur);
  }
  QpdTerm term;
  term.coefficient = 1.0;
  term.estimate_cbits.clear();
  int cbit = 0;
  for (const auto& [q, p] : sites) {
    append_pauli_measurement(c, q, p, cbit);
    term.estimate_cbits.push_back(cbit);
    ++cbit;
  }
  term.circuit = std::move(c);
  term.label = "uncut";
  Qpd qpd;
  qpd.add(std::move(term));
  return qpd;
}

Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable) {
  return exact_expectation_pauli(circ, observable);
}

// The single-wire convenience path, shared by every protocol.
Qpd WireCutProtocol::build_qpd(const CutInput& input) const {
  Circuit prep(1, 0);
  prep.gate(input.prep, {0}, "W");
  return cut_circuit(prep, CutPoint{1, 0}, *this, std::string(1, input.observable));
}

}  // namespace qcut
