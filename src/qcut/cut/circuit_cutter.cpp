#include "qcut/cut/circuit_cutter.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/cut/teleportation.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

/// Observable sites to measure (original indexing), validated. `ctx` names
/// the entry point for the error messages.
std::vector<std::pair<int, char>> parse_observable(const std::string& observable, int n_orig,
                                                   const std::string& ctx) {
  QCUT_CHECK(static_cast<int>(observable.size()) == n_orig,
             ctx + ": observable length must match circuit width");
  std::vector<std::pair<int, char>> sites;
  for (int q = 0; q < n_orig; ++q) {
    const char p = observable[static_cast<std::size_t>(q)];
    if (p == 'I') {
      continue;
    }
    QCUT_CHECK(p == 'X' || p == 'Y' || p == 'Z', ctx + ": invalid Pauli character");
    sites.emplace_back(q, p);
  }
  QCUT_CHECK(!sites.empty(), ctx + ": observable is the identity");
  return sites;
}

/// True iff the state `wire` carries at op index `pos` is ever observed by a
/// later op: the first op from `pos` on that touches the wire must consume
/// it, not overwrite it — an initialize covering the wire discards the state,
/// so a cut feeding only into an initialize is as dead as one feeding nothing.
bool wire_used_from(const Circuit& circ, std::size_t pos, int wire) {
  for (std::size_t t = pos; t < circ.size(); ++t) {
    const Operation& op = circ.ops()[t];
    if (std::find(op.qubits.begin(), op.qubits.end(), wire) != op.qubits.end()) {
      return op.kind != OpKind::kInitialize;
    }
  }
  return false;
}

void append_original_op(Circuit& c, const Operation& op, const std::vector<int>& cur) {
  std::vector<int> qs = op.qubits;
  for (int& q : qs) {
    q = cur[static_cast<std::size_t>(q)];
  }
  if (op.kind == OpKind::kInitialize) {
    c.initialize(qs, op.init_state, op.label);
  } else {
    c.gate(op.matrix, qs, op.label);
  }
}

}  // namespace

Qpd cut_circuit_multi(const Circuit& circ, const std::vector<CutPoint>& points,
                      const std::vector<const WireCutProtocol*>& protocols,
                      const std::string& observable) {
  const int n_orig = circ.n_qubits();
  const std::size_t n_cuts = points.size();
  QCUT_CHECK(n_cuts > 0, "cut_circuit: no cut points");
  QCUT_CHECK(protocols.size() == n_cuts, "cut_circuit: cut/protocol count mismatch");
  QCUT_CHECK(circ.n_cbits() == 0, "cut_circuit: input circuit must be purely quantum");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "cut_circuit: input circuit must contain only unitary/initialize ops");
  }
  const auto sites = parse_observable(observable, n_orig, "cut_circuit");

  for (std::size_t j = 0; j < n_cuts; ++j) {
    QCUT_CHECK(protocols[j] != nullptr, "cut_circuit: null protocol");
    QCUT_CHECK(points[j].qubit >= 0 && points[j].qubit < n_orig,
               "cut_circuit: cut qubit out of range");
    QCUT_CHECK(points[j].after_op <= circ.size(), "cut_circuit: cut position out of range");
    // Dead-cut check: after the cut, the wire must be touched by some op or
    // measured by the observable — otherwise the teleported state is never
    // observed and the cut only inflates the sampling overhead by κ².
    const bool measured = observable[static_cast<std::size_t>(points[j].qubit)] != 'I';
    QCUT_CHECK(measured || wire_used_from(circ, points[j].after_op, points[j].qubit),
               "cut_circuit: cut wire has no operations or observable after the cut");
  }

  // Per-cut gadget lists and the product-term count.
  std::vector<std::vector<CutGadget>> gadget_sets;
  gadget_sets.reserve(n_cuts);
  std::size_t total_terms = 1;
  for (std::size_t j = 0; j < n_cuts; ++j) {
    gadget_sets.push_back(protocols[j]->gadgets());
    for (const CutGadget& g : gadget_sets.back()) {
      QCUT_CHECK(g.append != nullptr, "cut_circuit: gadget without append function");
    }
    total_terms *= gadget_sets.back().size();
    QCUT_CHECK(total_terms <= 100000, "cut_circuit: term explosion");
  }

  // Splice order: by position, ties in input order (stable). Receiver wire
  // and classical-bit layout stay keyed to the input order so the term
  // structure is independent of how the cuts are sorted.
  std::vector<std::size_t> order(n_cuts);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&points](std::size_t a, std::size_t b) {
    return points[a].after_op < points[b].after_op;
  });

  Qpd qpd;
  std::vector<std::size_t> idx(n_cuts, 0);  // current gadget per cut
  for (std::size_t t = 0; t < total_terms; ++t) {
    // Layout for this gadget tuple: receivers, then per-cut helper blocks,
    // then per-cut classical-bit blocks followed by the observable bits.
    int n_qubits = n_orig + static_cast<int>(n_cuts);
    std::vector<int> helper_base(n_cuts), cbit_base(n_cuts);
    int cbit = 0;
    Real coeff = 1.0;
    int pairs = 0;
    std::string label;
    for (std::size_t j = 0; j < n_cuts; ++j) {
      const CutGadget& g = gadget_sets[j][idx[j]];
      helper_base[j] = n_qubits;
      n_qubits += g.extra_qubits;
      cbit_base[j] = cbit;
      cbit += g.cbits;
      coeff *= g.coefficient;
      pairs += g.entangled_pairs;
      label += (j ? "*" : "") + g.label;
    }
    Circuit c(n_qubits, cbit + static_cast<int>(sites.size()));

    // Current carrier wire of each original qubit.
    std::vector<int> cur(static_cast<std::size_t>(n_orig));
    std::iota(cur.begin(), cur.end(), 0);

    std::size_t next_cut = 0;
    for (std::size_t pos = 0; pos <= circ.size(); ++pos) {
      while (next_cut < n_cuts && points[order[next_cut]].after_op == pos) {
        const std::size_t j = order[next_cut];
        const CutGadget& g = gadget_sets[j][idx[j]];
        const int dst = n_orig + static_cast<int>(j);
        std::vector<int> helpers;
        for (int h = 0; h < g.extra_qubits; ++h) {
          helpers.push_back(helper_base[j] + h);
        }
        const int src = cur[static_cast<std::size_t>(points[j].qubit)];
        g.append(c, src, dst, helpers, cbit_base[j]);
        cur[static_cast<std::size_t>(points[j].qubit)] = dst;
        ++next_cut;
      }
      if (pos < circ.size()) {
        append_original_op(c, circ.ops()[pos], cur);
      }
    }

    // Observable measurements; estimate = parity of the recorded bits.
    QpdTerm term;
    term.estimate_cbits.clear();
    for (const auto& [q, p] : sites) {
      append_pauli_measurement(c, cur[static_cast<std::size_t>(q)], p, cbit);
      term.estimate_cbits.push_back(cbit);
      ++cbit;
    }
    term.coefficient = coeff;
    term.circuit = std::move(c);
    term.entangled_pairs = pairs;
    term.label = std::move(label);
    qpd.add(std::move(term));

    // Advance the gadget-index tuple (last cut fastest).
    for (std::size_t j = n_cuts; j-- > 0;) {
      if (++idx[j] < gadget_sets[j].size()) {
        break;
      }
      idx[j] = 0;
    }
  }
  return qpd;
}

Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable) {
  return cut_circuit_multi(circ, {point}, {&protocol}, observable);
}

Qpd uncut_qpd(const Circuit& circ, const std::string& observable) {
  QCUT_CHECK(circ.n_cbits() == 0, "uncut_qpd: input circuit must be purely quantum");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "uncut_qpd: input circuit must contain only unitary/initialize ops");
  }
  const auto sites = parse_observable(observable, circ.n_qubits(), "uncut_qpd");
  Circuit c(circ.n_qubits(), static_cast<int>(sites.size()));
  std::vector<int> cur(static_cast<std::size_t>(circ.n_qubits()));
  std::iota(cur.begin(), cur.end(), 0);
  for (const auto& op : circ.ops()) {
    append_original_op(c, op, cur);
  }
  QpdTerm term;
  term.coefficient = 1.0;
  term.estimate_cbits.clear();
  int cbit = 0;
  for (const auto& [q, p] : sites) {
    append_pauli_measurement(c, q, p, cbit);
    term.estimate_cbits.push_back(cbit);
    ++cbit;
  }
  term.circuit = std::move(c);
  term.label = "uncut";
  Qpd qpd;
  qpd.add(std::move(term));
  return qpd;
}

Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable) {
  return exact_expectation_pauli(circ, observable);
}

// The single-wire convenience path, shared by every protocol.
Qpd WireCutProtocol::build_qpd(const CutInput& input) const {
  Circuit prep(1, 0);
  prep.gate(input.prep, {0}, "W");
  return cut_circuit(prep, CutPoint{1, 0}, *this, std::string(1, input.observable));
}

}  // namespace qcut
