#include "qcut/cut/circuit_cutter.hpp"

#include "qcut/cut/teleportation.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable) {
  const int n_orig = circ.n_qubits();
  QCUT_CHECK(circ.n_cbits() == 0, "cut_circuit: input circuit must be purely quantum");
  QCUT_CHECK(point.qubit >= 0 && point.qubit < n_orig, "cut_circuit: cut qubit out of range");
  QCUT_CHECK(point.after_op <= circ.size(), "cut_circuit: cut position out of range");
  QCUT_CHECK(static_cast<int>(observable.size()) == n_orig,
             "cut_circuit: observable length must match circuit width");
  for (const auto& op : circ.ops()) {
    QCUT_CHECK(op.kind == OpKind::kUnitary || op.kind == OpKind::kInitialize,
               "cut_circuit: input circuit must contain only unitary/initialize ops");
  }

  // Observable sites to measure (original indexing).
  std::vector<std::pair<int, char>> sites;
  for (int q = 0; q < n_orig; ++q) {
    const char p = observable[static_cast<std::size_t>(q)];
    if (p == 'I') {
      continue;
    }
    QCUT_CHECK(p == 'X' || p == 'Y' || p == 'Z', "cut_circuit: invalid Pauli character");
    sites.emplace_back(q, p);
  }
  QCUT_CHECK(!sites.empty(), "cut_circuit: observable is the identity");

  const int dst = n_orig;  // the receiver wire the cut state lands on

  Qpd qpd;
  for (const CutGadget& g : protocol.gadgets()) {
    QCUT_CHECK(g.append != nullptr, "cut_circuit: gadget without append function");
    const int n_qubits = n_orig + 1 + g.extra_qubits;
    const int n_cbits = g.cbits + static_cast<int>(sites.size());
    Circuit c(n_qubits, n_cbits);

    // Pre-cut segment, untouched.
    std::size_t idx = 0;
    for (; idx < point.after_op; ++idx) {
      const Operation& op = circ.ops()[idx];
      if (op.kind == OpKind::kInitialize) {
        c.initialize(op.qubits, op.init_state, op.label);
      } else {
        c.gate(op.matrix, op.qubits, op.label);
      }
    }

    // The gadget: consumes `point.qubit`, delivers onto `dst`.
    std::vector<int> helpers;
    for (int h = 0; h < g.extra_qubits; ++h) {
      helpers.push_back(n_orig + 1 + h);
    }
    g.append(c, point.qubit, dst, helpers, /*cbit0=*/0);

    // Post-cut segment: the cut wire now lives on `dst`.
    for (; idx < circ.size(); ++idx) {
      Operation op = circ.ops()[idx];
      for (int& q : op.qubits) {
        if (q == point.qubit) {
          q = dst;
        }
      }
      if (op.kind == OpKind::kInitialize) {
        c.initialize(op.qubits, op.init_state, op.label);
      } else {
        c.gate(op.matrix, op.qubits, op.label);
      }
    }

    // Observable measurements; estimate = parity of the recorded bits.
    QpdTerm term;
    int cbit = g.cbits;
    term.estimate_cbits.clear();
    for (const auto& [q, p] : sites) {
      const int wire = (q == point.qubit) ? dst : q;
      append_pauli_measurement(c, wire, p, cbit);
      term.estimate_cbits.push_back(cbit);
      ++cbit;
    }
    term.coefficient = g.coefficient;
    term.circuit = std::move(c);
    term.entangled_pairs = g.entangled_pairs;
    term.label = g.label;
    qpd.add(std::move(term));
  }
  return qpd;
}

Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable) {
  return exact_expectation_pauli(circ, observable);
}

// The single-wire convenience path, shared by every protocol.
Qpd WireCutProtocol::build_qpd(const CutInput& input) const {
  Circuit prep(1, 0);
  prep.gate(input.prep, {0}, "W");
  return cut_circuit(prep, CutPoint{1, 0}, *this, std::string(1, input.observable));
}

}  // namespace qcut
