#include "qcut/cut/cut_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/cut/fragment.hpp"
#include "qcut/cut/gate_cut.hpp"
#include "qcut/cut/mixed_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/cut/wire_cut.hpp"

namespace qcut {

const char* to_string(CutKind kind) {
  return kind == CutKind::kWire ? "wire" : "gate";
}

const char* to_string(ProtocolId id) {
  switch (id) {
    case ProtocolId::kHarada:
      return "harada";
    case ProtocolId::kPeng:
      return "peng";
    case ProtocolId::kTeleport:
      return "teleport";
    case ProtocolId::kNme:
      return "nme";
    case ProtocolId::kDistill:
      return "distill";
    case ProtocolId::kMixedNme:
      return "mixed";
    case ProtocolId::kZzGate:
      return "zz-gate";
  }
  return "?";
}

Real spec_kappa(const ProtocolSpec& spec) {
  switch (spec.id) {
    case ProtocolId::kHarada:
      return 3.0;
    case ProtocolId::kPeng:
      return 4.0;
    case ProtocolId::kTeleport:
      return 1.0;
    case ProtocolId::kNme:
    case ProtocolId::kDistill:
      return nme_cut_overhead(spec.param);
    case ProtocolId::kMixedNme:
      return mixed_cut_overhead(spec.param);
    case ProtocolId::kZzGate:
      return zz_gate_cut_overhead(spec.param);
  }
  throw Error("spec_kappa: unknown protocol id");
}

CutKind spec_kind(const ProtocolSpec& spec) {
  return spec.id == ProtocolId::kZzGate ? CutKind::kGate : CutKind::kWire;
}

std::string to_string(const ProtocolSpec& spec) {
  std::ostringstream os;
  os << to_string(spec.id);
  switch (spec.id) {
    case ProtocolId::kNme:
    case ProtocolId::kDistill:
      os << "(k=" << spec.param << ")";
      break;
    case ProtocolId::kMixedNme:
      os << "(qI=" << spec.param << ")";
      break;
    case ProtocolId::kZzGate:
      os << "(theta=" << spec.param << ")";
      break;
    default:
      break;
  }
  return os.str();
}

MergeProfile merge_profile(const CutProtocol& protocol) {
  MergeProfile mp;
  if (protocol.kind() == CutKind::kGate) {
    // Gate-cut branches act locally on each side (the signed measurement is
    // classical post-processing); nothing to probe.
    return mp;
  }
  const auto* wire = dynamic_cast<const WireCutProtocol*>(&protocol);
  QCUT_CHECK(wire != nullptr, "merge_profile: wire-kind protocol must be a WireCutProtocol");

  // Probe: cx ties wires 0 and 1 into the sender fragment; the trailing h
  // keeps the cut wire alive past the cut. Base partition of the spliced
  // term: sender fragment {wire 0, wire 1 pre-cut} (2 segments), receiver
  // fragment {wire 2} (1 segment); everything beyond that is gadget helpers.
  Circuit probe(2, 0);
  probe.cx(0, 1);
  probe.h(1);
  const Qpd qpd = cut_circuit(probe, CutPoint{1, 1}, *wire, "ZZ");
  for (const QpdTerm& term : qpd.terms()) {
    const SplitSkeleton skel = build_split_skeleton(term.circuit);
    const int sender = skel.frag_of_wire[0];
    const int receiver = skel.frag_of_wire[2];
    const auto width = [&skel](int frag) {
      return static_cast<int>(skel.wires_of[static_cast<std::size_t>(frag)].size());
    };
    if (sender == receiver) {
      mp.merges = true;
      mp.merged_extra = std::max(mp.merged_extra, width(sender) - 3);
    } else {
      mp.sender_extra = std::max(mp.sender_extra, width(sender) - 2);
      mp.receiver_extra = std::max(mp.receiver_extra, width(receiver) - 1);
    }
  }
  return mp;
}

// WireCutProtocol's generic resource accounting lives here next to the other
// protocol-level derivations: Σ (|c_i|/κ)·pairs_i over the QPD branches.
Real WireCutProtocol::pairs_per_sample() const {
  const Real k = kappa();
  Real acc = 0.0;
  for (const CutGadget& g : gadgets()) {
    acc += std::abs(g.coefficient) / k * static_cast<Real>(g.entangled_pairs);
  }
  return acc;
}

}  // namespace qcut
