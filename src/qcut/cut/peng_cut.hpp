// The original wire cut of Peng et al. (the paper's reference [13]): Pauli
// basis measure-and-prepare with κ = 4. Provided as the historical baseline
// against which the optimal κ = 3 cut and the NME continuum are compared.
#pragma once

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

class PengCut final : public WireCutProtocol {
 public:
  std::string name() const override { return "peng"; }
  Real kappa() const override { return 4.0; }
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;
};

}  // namespace qcut
