#include "qcut/cut/distill_cut.hpp"

#include <cmath>
#include <sstream>

#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/teleportation.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/sim/gates.hpp"

namespace qcut {

DistillCut::DistillCut(Real k) : k_(k) {
  QCUT_CHECK(k >= 0.0 && k <= 1.0 + kTightTol, "DistillCut: k must lie in [0, 1]");
  k_ = std::min<Real>(k_, 1.0);
}

DistillCut DistillCut::from_overlap(Real f) { return DistillCut(k_for_overlap(f)); }

std::string DistillCut::name() const {
  std::ostringstream os;
  os << "distill(k=" << k_ << ")";
  return os.str();
}

Real DistillCut::kappa() const { return nme_cut_overhead(k_); }

std::vector<CutGadget> DistillCut::gadgets() const {
  // Gadget layout per branch:
  //  helpers[0], helpers[1] = locally prepared Bell pair at the sender
  //  helpers[2]             = sender half of |Φk⟩ (teleport branches only)
  //  dst                    = receiver wire
  // The helpers[1] → dst wire is cut with the Theorem-2 branch; afterwards
  // (helpers[0], dst) hold the virtual Bell pair over which `src` is
  // teleported. Classical bits: [cbit0, cbit0+1] inner cut, [+2, +3] outer
  // teleport.
  const NmeCut inner(k_);
  const Real a = inner.coeff_a();
  const Real b = inner.coeff_b();
  const Real k = k_;

  std::vector<CutGadget> out;
  for (int i = 1; i <= 2; ++i) {
    CutGadget g;
    g.coefficient = a;
    g.extra_qubits = 3;
    g.cbits = 4;
    g.entangled_pairs = 1;
    g.label = i == 1 ? "distill-teleport-H" : "distill-teleport-SH";
    g.append = [i, k](Circuit& c, int src, int dst, const std::vector<int>& h, int cbit0) {
      // Local Bell pair Φ on (h0, h1).
      c.h(h[0]);
      c.cx(h[0], h[1]);
      // --- inner NME-cut teleport branch on the h1 → dst wire ---
      if (i == 2) {
        c.sdg(h[1]);
      }
      c.h(h[1]);
      c.initialize({h[2], dst}, phi_k_state(k), "phi_k");
      append_teleport(c, h[1], h[2], dst, cbit0, cbit0 + 1);
      c.h(dst);
      if (i == 2) {
        c.s(dst);
      }
      // --- outer teleportation of src over the virtual pair (h0, dst) ---
      append_teleport(c, src, h[0], dst, cbit0 + 2, cbit0 + 3);
    };
    out.push_back(std::move(g));
  }

  if (b > 1e-15) {
    CutGadget g;
    g.coefficient = -b;
    g.extra_qubits = 3;  // h2 unused; kept for a uniform layout
    g.cbits = 4;
    g.entangled_pairs = 0;
    g.label = "distill-measure-flip";
    g.append = [](Circuit& c, int src, int dst, const std::vector<int>& h, int cbit0) {
      c.h(h[0]);
      c.cx(h[0], h[1]);
      // Inner measure-and-flip branch on the h1 → dst wire.
      c.measure(h[1], cbit0);
      c.x_if(cbit0, dst);
      c.x(dst);
      // Outer teleportation over the (h0, dst) pair.
      append_teleport(c, src, h[0], dst, cbit0 + 2, cbit0 + 3);
    };
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<std::pair<Real, Channel>> DistillCut::channel_terms() const {
  // Exact branch channels: the inner cut branch acts on half of Φ, producing
  // the pair σ_i = (I ⊗ F_i)(Φ); the outer teleportation over resource σ
  // maps the data qubit through teleport_channel(σ). Because teleport_channel
  // is linear in the resource, the quasi-mix over branches reproduces
  // teleportation over Φ, i.e. the identity.
  const NmeCut inner(k_);
  std::vector<std::pair<Real, Channel>> out;
  const Matrix phi = density(bell_phi());
  for (const auto& [ci, fi] : inner.channel_terms()) {
    const Channel lifted = Channel::identity(2).tensor(fi);
    const Matrix sigma = lifted.apply(phi);
    out.emplace_back(ci, teleport_channel(sigma));
  }
  return out;
}

std::vector<CutGadget> TeleportCut::gadgets() const {
  CutGadget g;
  g.coefficient = 1.0;
  g.extra_qubits = 1;  // sender half of the Bell pair
  g.cbits = 2;
  g.entangled_pairs = 1;
  g.label = "teleport";
  g.append = [](Circuit& c, int src, int dst, const std::vector<int>& h, int cbit0) {
    c.initialize({h[0], dst}, phi_k_state(1.0), "phi");
    append_teleport(c, src, h[0], dst, cbit0, cbit0 + 1);
  };
  return {std::move(g)};
}

std::vector<std::pair<Real, Channel>> TeleportCut::channel_terms() const {
  return {{1.0, Channel::identity(2)}};
}

}  // namespace qcut
