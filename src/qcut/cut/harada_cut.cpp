#include "qcut/cut/harada_cut.hpp"

#include "qcut/sim/gates.hpp"

namespace qcut {

namespace {

// U_1 = H, U_2 = SH (Eq. 20): the measurement/re-preparation bases.
// As circuits, U_i† on the sender is "Sdg then H" for i = 2; U_i on the
// receiver is "H then S".
void append_u_dagger(Circuit& c, int q, int i) {
  if (i == 2) {
    c.sdg(q);
  }
  c.h(q);
}

void append_u(Circuit& c, int q, int i) {
  c.h(q);
  if (i == 2) {
    c.s(q);
  }
}

Matrix u_matrix(int i) { return i == 2 ? gates::s() * gates::h() : gates::h(); }

}  // namespace

CutGadget make_measure_flip_gadget(Real coefficient) {
  CutGadget g;
  g.coefficient = coefficient;
  g.extra_qubits = 0;
  g.cbits = 1;
  g.entangled_pairs = 0;
  g.label = "measure-flip";
  g.append = [](Circuit& c, int src, int dst, const std::vector<int>&, int cbit0) {
    c.measure(src, cbit0);
    c.x_if(cbit0, dst);  // prepare |j⟩ on the receiver
    c.x(dst);            // flip: X|j⟩⟨j|X
  };
  return g;
}

CutGadget make_measure_same_gadget(Real coefficient) {
  CutGadget g;
  g.coefficient = coefficient;
  g.extra_qubits = 0;
  g.cbits = 1;
  g.entangled_pairs = 0;
  g.label = "measure-same";
  g.append = [](Circuit& c, int src, int dst, const std::vector<int>&, int cbit0) {
    c.measure(src, cbit0);
    c.x_if(cbit0, dst);
  };
  return g;
}

Channel measure_flip_channel() {
  Matrix k0(2, 2);
  k0(1, 0) = Cplx{1.0, 0.0};  // |1⟩⟨0|
  Matrix k1(2, 2);
  k1(0, 1) = Cplx{1.0, 0.0};  // |0⟩⟨1|
  return Channel({k0, k1});
}

Channel measure_same_channel() {
  Matrix k0(2, 2);
  k0(0, 0) = Cplx{1.0, 0.0};
  Matrix k1(2, 2);
  k1(1, 1) = Cplx{1.0, 0.0};
  return Channel({k0, k1});
}

std::vector<CutGadget> HaradaCut::gadgets() const {
  std::vector<CutGadget> out;
  for (int i = 1; i <= 2; ++i) {
    CutGadget g;
    g.coefficient = 1.0;
    g.extra_qubits = 0;
    g.cbits = 1;
    g.entangled_pairs = 0;
    g.label = i == 1 ? "measure-prepare-H" : "measure-prepare-SH";
    g.append = [i](Circuit& c, int src, int dst, const std::vector<int>&, int cbit0) {
      append_u_dagger(c, src, i);
      c.measure(src, cbit0);  // outcome j with prob ⟨j|U†ρU|j⟩
      c.x_if(cbit0, dst);     // receiver: |j⟩
      append_u(c, dst, i);    // receiver: U|j⟩
    };
    out.push_back(std::move(g));
  }
  out.push_back(make_measure_flip_gadget(-1.0));
  return out;
}

std::vector<std::pair<Real, Channel>> HaradaCut::channel_terms() const {
  std::vector<std::pair<Real, Channel>> out;
  for (int i = 1; i <= 2; ++i) {
    const Matrix u = u_matrix(i);
    std::vector<Matrix> ks;
    for (Index j = 0; j < 2; ++j) {
      // Kraus U|j⟩⟨j|U†: measure in the U basis, re-prepare the outcome.
      Matrix proj(2, 2);
      proj(j, j) = Cplx{1.0, 0.0};
      ks.push_back(u * proj * u.dagger());
    }
    out.emplace_back(1.0, Channel(std::move(ks)));
  }
  out.emplace_back(-1.0, measure_flip_channel());
  return out;
}

}  // namespace qcut
