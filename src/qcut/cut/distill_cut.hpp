// Teleportation over a virtually distilled Bell pair — the construction from
// the upper-bound direction of Theorem 1's proof (Appendix B).
//
// A Bell pair is prepared locally at the sender; one half is transported to
// the receiver through the Theorem-2 NME cut, producing a *virtual* maximally
// entangled pair in quasiprobability semantics; the data qubit is then
// teleported over that virtual pair. The overall sampling overhead equals the
// direct NME cut's (κ = 2/f − 1), but each branch needs two extra qubits and
// one extra Bell measurement — the ablation bench quantifies that cost.
//
// Also exposes TeleportCut: the κ = 1 endpoint using a physical |Φ⟩
// (standard teleportation, f = 1).
#pragma once

#include "qcut/cut/nme_cut.hpp"
#include "qcut/cut/wire_cut.hpp"

namespace qcut {

class DistillCut final : public WireCutProtocol {
 public:
  explicit DistillCut(Real k);
  static DistillCut from_overlap(Real f);

  Real k() const noexcept { return k_; }

  std::string name() const override;
  Real kappa() const override;
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;

 private:
  Real k_;
};

/// Plain quantum teleportation with a maximally entangled pair: a single
/// term with coefficient 1 (κ = 1). The f = 1 endpoint of the continuum.
class TeleportCut final : public WireCutProtocol {
 public:
  std::string name() const override { return "teleport"; }
  Real kappa() const override { return 1.0; }
  std::vector<CutGadget> gadgets() const override;
  std::vector<std::pair<Real, Channel>> channel_terms() const override;
};

}  // namespace qcut
