#include "qcut/cut/fragment.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/common/cancel.hpp"
#include "qcut/common/fault.hpp"
#include "qcut/common/union_find.hpp"
#include "qcut/obs/metrics.hpp"
#include "qcut/obs/trace.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

namespace {

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

void append_u16(std::string& key, int v) {
  key.push_back(static_cast<char>(v & 0xff));
  key.push_back(static_cast<char>((v >> 8) & 0xff));
}

/// Per-fragment conditional tables: [fragment][read asg][write pattern * 2 +
/// estimate parity].
using FragTables = std::vector<std::vector<std::vector<Real>>>;

/// Folds one fragment's final branches into its table row for read
/// assignment `ra`, using hoisted cbit positions.
void fold_branches(const std::vector<Branch>& branches, const std::vector<std::size_t>& wr_idx,
                   const std::vector<std::size_t>& est_idx, std::vector<Real>& tab_ra) {
  for (const Branch& b : branches) {
    std::size_t wp = 0;
    for (std::size_t j = 0; j < wr_idx.size(); ++j) {
      wp |= static_cast<std::size_t>(b.cbits[wr_idx[j]] & 1) << j;
    }
    int parity = 0;
    for (const std::size_t e : est_idx) {
      parity ^= b.cbits[e];
    }
    tab_ra[wp * 2 + static_cast<std::size_t>(parity)] += b.prob;
  }
}

/// The trailing-measurement fold: every QPD term circuit ends with a run of
/// Z-basis estimate measurements, and enumerating those one by one doubles
/// (then prunes) branches per measure, copying a full statevector each time.
/// Once ONLY measures remain, the joint outcome distribution is simply the
/// state's basis-probability distribution restricted to the measured qubits,
/// so the whole tail folds in one amplitude sweep per branch. `tail_src` maps
/// each cbit written in the tail to the *last* tail measure's qubit stride
/// (later writes win, matching sequential semantics).
struct TailFold {
  std::size_t tail_begin = 0;  ///< first op of the trailing all-measure run
  /// Per write position j: branch-sourced cbit (idx >= 0) or tail-sourced
  /// basis-index stride.
  std::vector<std::ptrdiff_t> wr_cbit;
  std::vector<std::uint64_t> wr_stride;
  /// Estimate parity: branch-sourced cbits, plus the XOR-combined stride mask
  /// of the tail-sourced bits (XOR, not OR — a qubit feeding two estimate
  /// cbits must cancel out of the parity).
  std::vector<std::size_t> est_cbit;
  std::uint64_t est_mask = 0;
};

TailFold make_tail_fold(const TermFragment& tf) {
  const std::vector<Operation>& ops = tf.circuit.ops();
  TailFold tail;
  tail.tail_begin = ops.size();
  while (tail.tail_begin > 0 && ops[tail.tail_begin - 1].kind == OpKind::kMeasure) {
    --tail.tail_begin;
  }
  const int nq = tf.circuit.n_qubits();
  std::vector<std::ptrdiff_t> src_qubit(static_cast<std::size_t>(tf.circuit.n_cbits()), -1);
  for (std::size_t t = tail.tail_begin; t < ops.size(); ++t) {
    src_qubit[static_cast<std::size_t>(ops[t].cbit)] = ops[t].qubits[0];
  }
  const auto stride_of = [nq](std::ptrdiff_t q) {
    return std::uint64_t{1} << (nq - 1 - static_cast<int>(q));
  };
  for (const int cb : tf.writes) {
    const std::ptrdiff_t q = src_qubit[static_cast<std::size_t>(cb)];
    tail.wr_cbit.push_back(q >= 0 ? -1 : static_cast<std::ptrdiff_t>(cb));
    tail.wr_stride.push_back(q >= 0 ? stride_of(q) : 0);
  }
  for (const int cb : tf.estimate_cbits) {
    const std::ptrdiff_t q = src_qubit[static_cast<std::size_t>(cb)];
    if (q >= 0) {
      tail.est_mask ^= stride_of(q);
    } else {
      tail.est_cbit.push_back(static_cast<std::size_t>(cb));
    }
  }
  return tail;
}

/// Folds branches advanced up to tail.tail_begin, aggregating the trailing
/// measures directly from each branch's amplitudes.
void fold_branches_tail(const std::vector<Branch>& branches, const TailFold& tail,
                        std::vector<Real>& tab_ra) {
  const std::size_t nw = tail.wr_cbit.size();
  for (const Branch& b : branches) {
    std::size_t wp_base = 0;
    std::uint64_t wr_any = 0;
    for (std::size_t j = 0; j < nw; ++j) {
      if (tail.wr_cbit[j] >= 0) {
        wp_base |= static_cast<std::size_t>(
                       b.cbits[static_cast<std::size_t>(tail.wr_cbit[j])] & 1)
                   << j;
      } else {
        wr_any |= tail.wr_stride[j];
      }
    }
    int par_base = 0;
    for (const std::size_t e : tail.est_cbit) {
      par_base ^= b.cbits[e];
    }
    const Vector& amp = b.state.amplitudes();
    if (wr_any == 0) {
      // Common shape: all write bits were measured before the tail; only the
      // estimate parity reads the basis index.
      Real acc0 = 0.0;
      Real acc1 = 0.0;
      for (std::size_t i = 0; i < amp.size(); ++i) {
        const Real w = norm2(amp[i]);
        if (parity64(static_cast<std::uint64_t>(i) & tail.est_mask)) {
          acc1 += w;
        } else {
          acc0 += w;
        }
      }
      tab_ra[wp_base * 2 + static_cast<std::size_t>(par_base)] += b.prob * acc0;
      tab_ra[wp_base * 2 + static_cast<std::size_t>(par_base ^ 1)] += b.prob * acc1;
      continue;
    }
    for (std::size_t i = 0; i < amp.size(); ++i) {
      const Real w = norm2(amp[i]);
      if (w == 0.0) {
        continue;
      }
      std::size_t wp = wp_base;
      for (std::size_t j = 0; j < nw; ++j) {
        if (tail.wr_cbit[j] < 0 && (static_cast<std::uint64_t>(i) & tail.wr_stride[j]) != 0) {
          wp |= std::size_t{1} << j;
        }
      }
      const int par = par_base ^ parity64(static_cast<std::uint64_t>(i) & tail.est_mask);
      tab_ra[wp * 2 + static_cast<std::size_t>(par)] += b.prob * w;
    }
  }
}

/// Chain-rule product over fragments, summed over cross-bit assignments,
/// with a running XOR of the per-fragment estimate parities. The 2^n_cross
/// sigma sweep is chunked at a fixed size and the per-chunk partial sums are
/// combined in chunk index order — deterministic for any pool (including
/// none), so both evaluators and every pool size produce the same bits.
constexpr std::uint64_t kSigmaChunk = 1024;

Real recombine(const FragmentSplit& split, const FragTables& tables, ThreadPool* pool) {
  obs::TraceSpan span("fragment.recombine",
                      static_cast<std::uint64_t>(split.cross_cbits.size()));
  const std::vector<int>& cross = split.cross_cbits;
  const std::size_t n_cross = cross.size();
  const auto cross_pos = [&cross](int cbit) {
    return static_cast<std::size_t>(
        std::lower_bound(cross.begin(), cross.end(), cbit) - cross.begin());
  };

  // Cross-bit positions are loop-invariant: hoist them out of the 2^n_cross
  // sigma sweep below.
  std::vector<std::vector<std::size_t>> read_pos(split.fragments.size());
  std::vector<std::vector<std::size_t>> write_pos(split.fragments.size());
  for (std::size_t f = 0; f < split.fragments.size(); ++f) {
    for (const int cb : split.fragments[f].reads) {
      read_pos[f].push_back(cross_pos(cb));
    }
    for (const int cb : split.fragments[f].writes) {
      write_pos[f].push_back(cross_pos(cb));
    }
  }

  const auto sigma_range = [&](std::uint64_t s0, std::uint64_t s1) {
    Real acc = 0.0;
    for (std::uint64_t sigma = s0; sigma < s1; ++sigma) {
      Real p0 = 1.0;
      Real p1 = 0.0;
      for (std::size_t f = 0; f < split.fragments.size(); ++f) {
        std::size_t ra = 0;
        for (std::size_t j = 0; j < read_pos[f].size(); ++j) {
          ra |= static_cast<std::size_t>((sigma >> read_pos[f][j]) & 1) << j;
        }
        std::size_t wp = 0;
        for (std::size_t j = 0; j < write_pos[f].size(); ++j) {
          wp |= static_cast<std::size_t>((sigma >> write_pos[f][j]) & 1) << j;
        }
        const Real f0 = tables[f][ra][wp * 2];
        const Real f1 = tables[f][ra][wp * 2 + 1];
        const Real n0 = p0 * f0 + p1 * f1;
        const Real n1 = p0 * f1 + p1 * f0;
        p0 = n0;
        p1 = n1;
        if (p0 + p1 <= 0.0) {
          break;  // this cross-bit assignment never occurs
        }
      }
      acc += p1;
    }
    return acc;
  };

  const std::uint64_t n_sigma = std::uint64_t{1} << n_cross;
  if (n_sigma <= kSigmaChunk) {
    return sigma_range(0, n_sigma);
  }
  // Both powers of two, so the chunks tile [0, 2^n_cross) exactly; the chunk
  // count depends only on n_cross, never on the pool.
  const std::size_t n_chunks = static_cast<std::size_t>(n_sigma / kSigmaChunk);
  std::vector<Real> partial(n_chunks, 0.0);
  const auto run_chunk = [&](std::size_t c) {
    const std::uint64_t s0 = static_cast<std::uint64_t>(c) * kSigmaChunk;
    partial[c] = sigma_range(s0, s0 + kSigmaChunk);
  };
  if (pool != nullptr && pool->size() > 1 && !pool->on_worker_thread()) {
    pool->parallel_for(0, n_chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      run_chunk(c);
    }
  }
  Real acc = 0.0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    acc += partial[c];
  }
  return acc;
}

void check_split_limits(const FragmentSplit& split) {
  QCUT_CHECK(split.cross_cbits.size() <= 20,
             "fragment_term_prob_one: too many cross-fragment cbits");
  for (const TermFragment& tf : split.fragments) {
    QCUT_CHECK(tf.reads.size() <= 16,
               "fragment_term_prob_one: fragment reads too many cross bits");
    QCUT_CHECK(tf.circuit.n_qubits() <= Statevector::kMaxQubits,
               "fragment_term_prob_one: fragment wider than the statevector cap");
  }
}

std::vector<std::size_t> hoisted_positions(const std::vector<int>& cbits) {
  std::vector<std::size_t> idx;
  idx.reserve(cbits.size());
  for (const int cb : cbits) {
    idx.push_back(static_cast<std::size_t>(cb));
  }
  return idx;
}

}  // namespace

SplitSkeleton build_split_skeleton(const Circuit& c) {
  const int n = c.n_qubits();
  const int n_cbits = c.n_cbits();

  SplitSkeleton skel;
  skel.n_qubits = n;
  skel.n_cbits = n_cbits;

  // Connected components of the qubit-interaction graph: every multi-qubit op
  // (unitary or entangled-resource initialize alike) merges its wires.
  UnionFind uf(static_cast<std::size_t>(n));
  for (const Operation& op : c.ops()) {
    for (std::size_t i = 1; i < op.qubits.size(); ++i) {
      uf.unite(static_cast<std::size_t>(op.qubits[0]), static_cast<std::size_t>(op.qubits[i]));
    }
  }

  // Fragment ids in order of each component's smallest wire; wires ascending.
  std::vector<int> frag_of_root(static_cast<std::size_t>(n), -1);
  skel.frag_of_wire.assign(static_cast<std::size_t>(n), -1);
  skel.local_index.assign(static_cast<std::size_t>(n), -1);
  for (int q = 0; q < n; ++q) {
    const int r = static_cast<int>(uf.find(static_cast<std::size_t>(q)));
    if (frag_of_root[static_cast<std::size_t>(r)] < 0) {
      frag_of_root[static_cast<std::size_t>(r)] = static_cast<int>(skel.wires_of.size());
      skel.wires_of.emplace_back();
    }
    const int f = frag_of_root[static_cast<std::size_t>(r)];
    skel.frag_of_wire[static_cast<std::size_t>(q)] = f;
    skel.local_index[static_cast<std::size_t>(q)] =
        static_cast<int>(skel.wires_of[static_cast<std::size_t>(f)].size());
    skel.wires_of[static_cast<std::size_t>(f)].push_back(q);
  }
  const std::size_t n_frags = skel.wires_of.size();
  for (const auto& wires : skel.wires_of) {
    skel.max_width = std::max(skel.max_width, static_cast<int>(wires.size()));
  }

  // Classical-bit bookkeeping: who writes each cbit (measure) and who reads
  // it (classically controlled gates), in host op order.
  struct CbitInfo {
    int writer_frag = -1;      ///< fragment of the first write, -1 = never written
    int writes = 0;            ///< total measure ops targeting the bit
    std::size_t write_op = 0;  ///< op index of the first write
    bool multi_frag_write = false;
  };
  std::vector<CbitInfo> info(static_cast<std::size_t>(n_cbits));
  struct Read {
    int cbit;
    int frag;
    std::size_t op;
  };
  std::vector<Read> reads;
  for (std::size_t t = 0; t < c.ops().size(); ++t) {
    const Operation& op = c.ops()[t];
    const int f = skel.frag_of_wire[static_cast<std::size_t>(op.qubits[0])];
    if (op.kind == OpKind::kMeasure) {
      CbitInfo& ci = info[static_cast<std::size_t>(op.cbit)];
      if (ci.writes == 0) {
        ci.writer_frag = f;
        ci.write_op = t;
      } else if (ci.writer_frag != f) {
        ci.multi_frag_write = true;
      }
      ++ci.writes;
    } else if (op.kind == OpKind::kCondUnitary) {
      reads.push_back({op.cbit, f, t});
    }
  }
  skel.writer_frag.assign(static_cast<std::size_t>(n_cbits), -1);
  skel.multi_frag_write.assign(static_cast<std::size_t>(n_cbits), 0);
  for (int cb = 0; cb < n_cbits; ++cb) {
    skel.writer_frag[static_cast<std::size_t>(cb)] = info[static_cast<std::size_t>(cb)].writer_frag;
    skel.multi_frag_write[static_cast<std::size_t>(cb)] =
        info[static_cast<std::size_t>(cb)].multi_frag_write ? 1 : 0;
  }

  // Cross-fragment bits: written in one fragment, read in another. The
  // chain-rule recombination fixes one value per cross bit, so it needs the
  // classical protocol structure the gadgets actually emit: a single write
  // that precedes every foreign read.
  skel.reads_of.resize(n_frags);
  skel.writes_of.resize(n_frags);
  for (const Read& rd : reads) {
    const CbitInfo& ci = info[static_cast<std::size_t>(rd.cbit)];
    if (ci.writer_frag < 0 || ci.writer_frag == rd.frag) {
      continue;  // constant-0 bit or purely local feed-forward
    }
    QCUT_CHECK(!ci.multi_frag_write && ci.writes == 1,
               "split_term: cross-fragment cbit written more than once");
    QCUT_CHECK(ci.write_op < rd.op, "split_term: cross-fragment cbit read before written");
    skel.reads_of[static_cast<std::size_t>(rd.frag)].push_back(rd.cbit);
    skel.writes_of[static_cast<std::size_t>(ci.writer_frag)].push_back(rd.cbit);
    skel.cross_cbits.push_back(rd.cbit);
  }
  for (std::size_t f = 0; f < n_frags; ++f) {
    sort_unique(skel.reads_of[f]);
    sort_unique(skel.writes_of[f]);
  }
  sort_unique(skel.cross_cbits);
  return skel;
}

FragmentSplit split_term(const QpdTerm& term, const SplitSkeleton& skel) {
  const Circuit& c = term.circuit;
  QCUT_CHECK(c.n_qubits() == skel.n_qubits && c.n_cbits() == skel.n_cbits,
             "split_term: term does not match the skeleton's registers");

  FragmentSplit split;
  split.max_width = skel.max_width;
  split.cross_cbits = skel.cross_cbits;
  const std::size_t n_frags = skel.wires_of.size();
  split.fragments.resize(n_frags);
  for (std::size_t f = 0; f < n_frags; ++f) {
    TermFragment& tf = split.fragments[f];
    tf.wires = skel.wires_of[f];
    tf.reads = skel.reads_of[f];
    tf.writes = skel.writes_of[f];
    tf.circuit = Circuit(static_cast<int>(tf.wires.size()), skel.n_cbits);
  }

  // Estimate bits belong to the fragment that measures them; a bit no
  // fragment writes is the constant 0 and drops out of the parity.
  for (const int cb : term.estimate_cbits) {
    QCUT_CHECK(cb >= 0 && cb < skel.n_cbits, "split_term: estimate cbit out of range");
    const int wf = skel.writer_frag[static_cast<std::size_t>(cb)];
    if (wf < 0) {
      continue;
    }
    QCUT_CHECK(!skel.multi_frag_write[static_cast<std::size_t>(cb)],
               "split_term: estimate cbit written in two fragments");
    split.fragments[static_cast<std::size_t>(wf)].estimate_cbits.push_back(cb);
  }

  // Replay the ops into their fragments, qubits remapped to local indices.
  // push_op keeps each op's precomputed gate classification — the gadget
  // matrices are never re-inspected per term. The unconditioned-prefix
  // boundary (first fragment-local op reading a cross bit) is term-specific
  // — op counts differ across gadget variants — so it is computed here, not
  // in the skeleton.
  std::vector<char> suffix_found(n_frags, 0);
  for (const Operation& op : c.ops()) {
    const std::size_t f =
        static_cast<std::size_t>(skel.frag_of_wire[static_cast<std::size_t>(op.qubits[0])]);
    Operation copy = op;
    for (std::size_t i = 0; i < copy.qubits.size(); ++i) {
      // Every op must lie inside one fragment — the cheap structural guard
      // that catches a term instantiated against a foreign skeleton.
      QCUT_CHECK(static_cast<std::size_t>(
                     skel.frag_of_wire[static_cast<std::size_t>(op.qubits[i])]) == f,
                 "split_term: term interaction structure does not match the skeleton");
      copy.qubits[i] = skel.local_index[static_cast<std::size_t>(op.qubits[i])];
    }
    TermFragment& tf = split.fragments[f];
    if (!suffix_found[f] && op.kind == OpKind::kCondUnitary && contains(tf.reads, op.cbit)) {
      tf.cond_suffix_begin = tf.circuit.size();
      suffix_found[f] = 1;
    }
    tf.circuit.push_op(std::move(copy));
  }
  for (std::size_t f = 0; f < n_frags; ++f) {
    if (!suffix_found[f]) {
      split.fragments[f].cond_suffix_begin = split.fragments[f].circuit.size();
    }
  }
  return split;
}

FragmentSplit split_term(const QpdTerm& term) {
  return split_term(term, build_split_skeleton(term.circuit));
}

std::string split_structure_key(const Circuit& c) {
  // Interaction edges: the sorted-unique multi-qubit op wire sets (order and
  // multiplicity never change the union-find partition).
  std::vector<std::string> edges;
  for (const Operation& op : c.ops()) {
    if (op.qubits.size() < 2) {
      continue;
    }
    std::vector<int> qs = op.qubits;
    std::sort(qs.begin(), qs.end());
    std::string e;
    e.reserve(qs.size() * 2);
    for (const int q : qs) {
      // Two bytes per index: Circuit::kMaxQubits is 62 today, but the key
      // must never collide if that cap ever rises past one byte.
      append_u16(e, q);
    }
    edges.push_back(std::move(e));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::string key;
  key.reserve(8 + edges.size() * 4 + c.ops().size() * 4);
  append_u16(key, c.n_qubits());
  append_u16(key, c.n_cbits());
  for (const std::string& e : edges) {
    key.push_back(static_cast<char>(e.size()));
    key += e;
  }
  key.push_back('\x7f');  // edges / events separator
  // Classical events in program order: the cbit-role analysis (who writes,
  // who reads, write-before-read) sees exactly this subsequence.
  for (const Operation& op : c.ops()) {
    if (op.kind == OpKind::kMeasure) {
      key.push_back('M');
      append_u16(key, op.qubits[0]);
      append_u16(key, op.cbit);
    } else if (op.kind == OpKind::kCondUnitary) {
      key.push_back('C');
      append_u16(key, op.qubits[0]);
      append_u16(key, op.cbit);
    }
  }
  return key;
}

std::shared_ptr<const SplitSkeleton> SplitSkeletonCache::get(const Circuit& c) {
  const std::string key = split_structure_key(c);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      obs::count(obs::Counter::kSkeletonCacheHit);
      it->second.last_use = ++tick_;
      return it->second.skeleton;
    }
  }
  obs::count(obs::Counter::kSkeletonCacheMiss);
  // Built outside the lock: distinct structures may build concurrently, and a
  // racing duplicate build is harmless (first insert wins, same content).
  obs::TraceSpan span("skeleton.build");
  auto skel = std::make_shared<const SplitSkeleton>(build_split_skeleton(c));
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = by_key_[key];
  if (entry.skeleton == nullptr) {
    entry.skeleton = std::move(skel);
  }
  entry.last_use = ++tick_;
  if (capacity_ > 0 && by_key_.size() > capacity_) {
    // Evict the least-recently-used entry. Linear scan: capacities are small
    // (hundreds) and eviction only runs past the bound, never per hit.
    auto victim = by_key_.begin();
    for (auto it = by_key_.begin(); it != by_key_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim->first != key) {
      by_key_.erase(victim);
    }
  }
  return by_key_[key].skeleton;
}

std::size_t SplitSkeletonCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_key_.size();
}

void fuse_split_circuits(FragmentSplit& split, FusionStats* stats) {
  for (TermFragment& tf : split.fragments) {
    const std::size_t csb = tf.cond_suffix_begin;
    Circuit fused = fuse_range(tf.circuit, 0, csb, stats);
    const std::size_t new_csb = fused.size();
    const Circuit suffix = fuse_range(tf.circuit, csb, tf.circuit.size(), stats);
    for (const Operation& op : suffix.ops()) {
      fused.push_op(op);
    }
    tf.circuit = std::move(fused);
    tf.cond_suffix_begin = new_csb;
  }
}

Real fragment_term_prob_one(const FragmentSplit& split, ThreadPool* pool) {
  check_split_limits(split);
  const std::size_t n_frags = split.fragments.size();
  obs::TraceSpan eval_span("fragment.eval", static_cast<std::uint64_t>(n_frags));

  struct FragEval {
    std::vector<Branch> prefix;             ///< branches after the unconditioned prefix
    std::vector<std::vector<Real>> tab;     ///< [read asg][write pattern * 2 + parity]
    std::vector<std::size_t> wr_idx;        ///< hoisted write-cbit positions
    std::vector<std::size_t> est_idx;       ///< hoisted estimate-cbit positions
    TailFold tail;                          ///< trailing-measure fold plan
    std::size_t prefix_end = 0;             ///< ops [0, prefix_end) run once
  };
  std::vector<FragEval> ev(n_frags);

  // Flattened (fragment, read assignment) work units — one independent
  // enumeration each, with a preassigned result slot.
  std::vector<std::pair<std::size_t, std::size_t>> units;
  for (std::size_t f = 0; f < n_frags; ++f) {
    const TermFragment& tf = split.fragments[f];
    const std::size_t r = tf.reads.size();
    const std::size_t w = tf.writes.size();
    ev[f].tab.assign(std::size_t{1} << r,
                     std::vector<Real>((std::size_t{1} << w) * 2, 0.0));
    ev[f].wr_idx = hoisted_positions(tf.writes);
    ev[f].est_idx = hoisted_positions(tf.estimate_cbits);
    ev[f].tail = make_tail_fold(tf);
    ev[f].prefix_end = std::min(tf.cond_suffix_begin, ev[f].tail.tail_begin);
    for (std::size_t ra = 0; ra < (std::size_t{1} << r); ++ra) {
      units.emplace_back(f, ra);
    }
  }
  obs::count(obs::Counter::kFragmentUnits, units.size());
  obs::count(obs::Counter::kFragmentPrefixRuns, n_frags);

  // Parallel only when the caller is not already a worker of `pool`:
  // re-entering parallel_for from a worker would deadlock (the engine's
  // batch-parallel driver funnels here from workers — those calls run
  // inline; the engine already parallelizes across terms).
  const bool parallel = pool != nullptr && pool->size() > 1 && !pool->on_worker_thread();

  // Units are the fragment path's cancellation quantum; the token is
  // captured here and re-installed inside the lambdas, which may run on pool
  // workers carrying no thread-local scope of their own.
  CancelToken* cancel = current_cancel_token();

  // Stage A: simulate each fragment's unconditioned prefix once.
  const auto run_prefix = [&, cancel](std::size_t f) {
    ScopedCancelScope cancel_scope(cancel);
    cancel_poll();
    obs::TraceSpan span("fragment.prefix", static_cast<std::uint64_t>(f));
    const TermFragment& tf = split.fragments[f];
    const int nq = tf.circuit.n_qubits();
    Vector initial(std::size_t{1} << nq, Cplx{0.0, 0.0});
    initial[0] = Cplx{1.0, 0.0};
    std::vector<Branch> branches;
    branches.push_back({1.0, std::vector<int>(static_cast<std::size_t>(tf.circuit.n_cbits()), 0),
                        Statevector(nq, initial)});
    advance_branches(branches, tf.circuit, 0, ev[f].prefix_end);
    ev[f].prefix = std::move(branches);
  };
  if (parallel && n_frags > 1) {
    pool->parallel_for(0, n_frags, run_prefix);
  } else {
    for (std::size_t f = 0; f < n_frags; ++f) {
      run_prefix(f);
    }
  }

  // Stage B: per unit, continue the prefix through the read-dependent suffix
  // with the read bits preset, then fold the branches into the unit's table
  // row. Units touch disjoint slots, so scheduling cannot change the result.
  const auto run_unit = [&, cancel](std::size_t u) {
    ScopedCancelScope cancel_scope(cancel);
    cancel_poll();
    fault::maybe_inject(fault::Site::kFragmentUnit);
    obs::TraceSpan span("fragment.unit", static_cast<std::uint64_t>(u));
    const std::size_t f = units[u].first;
    const std::size_t ra = units[u].second;
    const TermFragment& tf = split.fragments[f];
    const std::size_t r = tf.reads.size();
    const std::size_t tail_begin = ev[f].tail.tail_begin;
    std::vector<Branch> branches;
    if (r == 0) {
      // Sole unit of this fragment: the prefix can be consumed in place.
      branches = std::move(ev[f].prefix);
    } else {
      branches = ev[f].prefix;
      for (Branch& b : branches) {
        for (std::size_t j = 0; j < r; ++j) {
          b.cbits[static_cast<std::size_t>(tf.reads[j])] = static_cast<int>((ra >> j) & 1);
        }
      }
      advance_branches(branches, tf.circuit, ev[f].prefix_end, tail_begin);
    }
    if (tail_begin < tf.circuit.size()) {
      fold_branches_tail(branches, ev[f].tail, ev[f].tab[ra]);
    } else {
      fold_branches(branches, ev[f].wr_idx, ev[f].est_idx, ev[f].tab[ra]);
    }
  };
  if (parallel && units.size() > 1) {
    pool->parallel_for(0, units.size(), run_unit);
  } else {
    for (std::size_t u = 0; u < units.size(); ++u) {
      run_unit(u);
    }
  }

  FragTables tables(n_frags);
  for (std::size_t f = 0; f < n_frags; ++f) {
    tables[f] = std::move(ev[f].tab);
  }
  return recombine(split, tables, pool);
}

Real fragment_term_prob_one_baseline(const FragmentSplit& split) {
  check_split_limits(split);
  FragTables tables(split.fragments.size());
  for (std::size_t f = 0; f < split.fragments.size(); ++f) {
    const TermFragment& tf = split.fragments[f];
    const std::size_t r = tf.reads.size();
    const std::size_t w = tf.writes.size();
    // Allocations hoisted out of the read-assignment loop: the initial state
    // and the classical register are reused across all 2^r enumerations.
    Vector initial(std::size_t{1} << tf.circuit.n_qubits(), Cplx{0.0, 0.0});
    initial[0] = Cplx{1.0, 0.0};
    std::vector<int> init_cbits(static_cast<std::size_t>(tf.circuit.n_cbits()), 0);
    const std::vector<std::size_t> wr_idx = hoisted_positions(tf.writes);
    const std::vector<std::size_t> est_idx = hoisted_positions(tf.estimate_cbits);
    auto& tab = tables[f];
    tab.assign(std::size_t{1} << r, std::vector<Real>((std::size_t{1} << w) * 2, 0.0));
    for (std::size_t ra = 0; ra < (std::size_t{1} << r); ++ra) {
      for (std::size_t j = 0; j < r; ++j) {
        init_cbits[static_cast<std::size_t>(tf.reads[j])] = static_cast<int>((ra >> j) & 1);
      }
      fold_branches(run_branches(tf.circuit, initial, init_cbits), wr_idx, est_idx, tab[ra]);
    }
  }
  return recombine(split, tables, nullptr);
}

Real fragment_term_prob_one(const QpdTerm& term) {
  return fragment_term_prob_one(split_term(term), nullptr);
}

}  // namespace qcut
