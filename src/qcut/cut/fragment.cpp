#include "qcut/cut/fragment.hpp"

#include <algorithm>
#include <numeric>

#include "qcut/common/union_find.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {

namespace {

void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

FragmentSplit split_term(const QpdTerm& term) {
  const Circuit& c = term.circuit;
  const int n = c.n_qubits();
  const int n_cbits = c.n_cbits();

  // Connected components of the qubit-interaction graph: every multi-qubit op
  // (unitary or entangled-resource initialize alike) merges its wires.
  UnionFind uf(static_cast<std::size_t>(n));
  for (const Operation& op : c.ops()) {
    for (std::size_t i = 1; i < op.qubits.size(); ++i) {
      uf.unite(static_cast<std::size_t>(op.qubits[0]), static_cast<std::size_t>(op.qubits[i]));
    }
  }

  // Fragment ids in order of each component's smallest wire; wires ascending.
  std::vector<int> frag_of_root(static_cast<std::size_t>(n), -1);
  std::vector<int> frag_of_wire(static_cast<std::size_t>(n), -1);
  std::vector<int> local_index(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> wires_of;
  for (int q = 0; q < n; ++q) {
    const int r = static_cast<int>(uf.find(static_cast<std::size_t>(q)));
    if (frag_of_root[static_cast<std::size_t>(r)] < 0) {
      frag_of_root[static_cast<std::size_t>(r)] = static_cast<int>(wires_of.size());
      wires_of.emplace_back();
    }
    const int f = frag_of_root[static_cast<std::size_t>(r)];
    frag_of_wire[static_cast<std::size_t>(q)] = f;
    local_index[static_cast<std::size_t>(q)] = static_cast<int>(wires_of[static_cast<std::size_t>(f)].size());
    wires_of[static_cast<std::size_t>(f)].push_back(q);
  }
  const std::size_t n_frags = wires_of.size();

  // Classical-bit bookkeeping: who writes each cbit (measure) and who reads
  // it (classically controlled gates), in host op order.
  struct CbitInfo {
    int writer_frag = -1;        ///< fragment of the first write, -1 = never written
    int writes = 0;              ///< total measure ops targeting the bit
    std::size_t write_op = 0;    ///< op index of the first write
    bool multi_frag_write = false;
  };
  std::vector<CbitInfo> info(static_cast<std::size_t>(n_cbits));
  struct Read {
    int cbit;
    int frag;
    std::size_t op;
  };
  std::vector<Read> reads;
  for (std::size_t t = 0; t < c.ops().size(); ++t) {
    const Operation& op = c.ops()[t];
    const int f = frag_of_wire[static_cast<std::size_t>(op.qubits[0])];
    if (op.kind == OpKind::kMeasure) {
      CbitInfo& ci = info[static_cast<std::size_t>(op.cbit)];
      if (ci.writes == 0) {
        ci.writer_frag = f;
        ci.write_op = t;
      } else if (ci.writer_frag != f) {
        ci.multi_frag_write = true;
      }
      ++ci.writes;
    } else if (op.kind == OpKind::kCondUnitary) {
      reads.push_back({op.cbit, f, t});
    }
  }

  FragmentSplit split;
  split.fragments.resize(n_frags);
  for (std::size_t f = 0; f < n_frags; ++f) {
    TermFragment& tf = split.fragments[f];
    tf.wires = wires_of[f];
    tf.circuit = Circuit(static_cast<int>(tf.wires.size()), n_cbits);
    split.max_width = std::max(split.max_width, static_cast<int>(tf.wires.size()));
  }

  // Cross-fragment bits: written in one fragment, read in another. The
  // chain-rule recombination fixes one value per cross bit, so it needs the
  // classical protocol structure the gadgets actually emit: a single write
  // that precedes every foreign read.
  for (const Read& rd : reads) {
    const CbitInfo& ci = info[static_cast<std::size_t>(rd.cbit)];
    if (ci.writer_frag < 0 || ci.writer_frag == rd.frag) {
      continue;  // constant-0 bit or purely local feed-forward
    }
    QCUT_CHECK(!ci.multi_frag_write && ci.writes == 1,
               "split_term: cross-fragment cbit written more than once");
    QCUT_CHECK(ci.write_op < rd.op, "split_term: cross-fragment cbit read before written");
    split.fragments[static_cast<std::size_t>(rd.frag)].reads.push_back(rd.cbit);
    split.fragments[static_cast<std::size_t>(ci.writer_frag)].writes.push_back(rd.cbit);
    split.cross_cbits.push_back(rd.cbit);
  }
  for (TermFragment& tf : split.fragments) {
    sort_unique(tf.reads);
    sort_unique(tf.writes);
  }
  sort_unique(split.cross_cbits);

  // Estimate bits belong to the fragment that measures them; a bit no
  // fragment writes is the constant 0 and drops out of the parity.
  for (const int cb : term.estimate_cbits) {
    QCUT_CHECK(cb >= 0 && cb < n_cbits, "split_term: estimate cbit out of range");
    const CbitInfo& ci = info[static_cast<std::size_t>(cb)];
    if (ci.writer_frag < 0) {
      continue;
    }
    QCUT_CHECK(!ci.multi_frag_write, "split_term: estimate cbit written in two fragments");
    split.fragments[static_cast<std::size_t>(ci.writer_frag)].estimate_cbits.push_back(cb);
  }

  // Replay the ops into their fragments, qubits remapped to local indices.
  // Every op lands in exactly one fragment by construction of the components.
  for (const Operation& op : c.ops()) {
    const int f = frag_of_wire[static_cast<std::size_t>(op.qubits[0])];
    Circuit& fc = split.fragments[static_cast<std::size_t>(f)].circuit;
    std::vector<int> qs(op.qubits.size());
    for (std::size_t i = 0; i < op.qubits.size(); ++i) {
      qs[i] = local_index[static_cast<std::size_t>(op.qubits[i])];
    }
    switch (op.kind) {
      case OpKind::kUnitary:
        fc.gate(op.matrix, qs, op.label);
        break;
      case OpKind::kCondUnitary:
        fc.gate_if(op.cbit, op.matrix, qs, op.label);
        break;
      case OpKind::kMeasure:
        fc.measure(qs[0], op.cbit);
        break;
      case OpKind::kReset:
        fc.reset(qs[0]);
        break;
      case OpKind::kInitialize:
        fc.initialize(qs, op.init_state, op.label);
        break;
    }
  }
  return split;
}

Real fragment_term_prob_one(const FragmentSplit& split) {
  const std::vector<int>& cross = split.cross_cbits;
  const std::size_t n_cross = cross.size();
  QCUT_CHECK(n_cross <= 20, "fragment_term_prob_one: too many cross-fragment cbits");
  const auto cross_pos = [&cross](int cbit) {
    return static_cast<std::size_t>(
        std::lower_bound(cross.begin(), cross.end(), cbit) - cross.begin());
  };

  // Per fragment: one branch enumeration per assignment of its read bits,
  // aggregated into P(write-bit pattern, estimate parity | read assignment).
  // This is the per-fragment analogue of the BranchCache's per-term
  // enumeration; each enumeration touches only a 2^{fragment width} state.
  struct Table {
    std::vector<std::vector<Real>> by_read;  ///< [read asg][write pattern * 2 + parity]
  };
  std::vector<Table> tables(split.fragments.size());
  for (std::size_t f = 0; f < split.fragments.size(); ++f) {
    const TermFragment& tf = split.fragments[f];
    const std::size_t r = tf.reads.size();
    const std::size_t w = tf.writes.size();
    QCUT_CHECK(r <= 16, "fragment_term_prob_one: fragment reads too many cross bits");
    QCUT_CHECK(tf.circuit.n_qubits() <= Statevector::kMaxQubits,
               "fragment_term_prob_one: fragment wider than the statevector cap");
    Vector initial(std::size_t{1} << tf.circuit.n_qubits(), Cplx{0.0, 0.0});
    initial[0] = Cplx{1.0, 0.0};
    auto& tab = tables[f].by_read;
    tab.assign(std::size_t{1} << r,
               std::vector<Real>((std::size_t{1} << w) * 2, 0.0));
    for (std::size_t ra = 0; ra < (std::size_t{1} << r); ++ra) {
      std::vector<int> init_cbits(static_cast<std::size_t>(tf.circuit.n_cbits()), 0);
      for (std::size_t j = 0; j < r; ++j) {
        init_cbits[static_cast<std::size_t>(tf.reads[j])] = static_cast<int>((ra >> j) & 1);
      }
      for (const Branch& b : run_branches(tf.circuit, initial, init_cbits)) {
        std::size_t wp = 0;
        for (std::size_t j = 0; j < w; ++j) {
          wp |= static_cast<std::size_t>(b.cbits[static_cast<std::size_t>(tf.writes[j])] & 1)
                << j;
        }
        int parity = 0;
        for (const int cb : tf.estimate_cbits) {
          parity ^= b.cbits[static_cast<std::size_t>(cb)];
        }
        tab[ra][wp * 2 + static_cast<std::size_t>(parity)] += b.prob;
      }
    }
  }

  // Cross-bit positions are loop-invariant: hoist them out of the 2^n_cross
  // sigma sweep below.
  std::vector<std::vector<std::size_t>> read_pos(split.fragments.size());
  std::vector<std::vector<std::size_t>> write_pos(split.fragments.size());
  for (std::size_t f = 0; f < split.fragments.size(); ++f) {
    for (const int cb : split.fragments[f].reads) {
      read_pos[f].push_back(cross_pos(cb));
    }
    for (const int cb : split.fragments[f].writes) {
      write_pos[f].push_back(cross_pos(cb));
    }
  }

  // Chain-rule product over fragments, summed over cross-bit assignments,
  // with a running XOR of the per-fragment estimate parities.
  Real acc = 0.0;
  for (std::uint64_t sigma = 0; sigma < (std::uint64_t{1} << n_cross); ++sigma) {
    Real p0 = 1.0;
    Real p1 = 0.0;
    for (std::size_t f = 0; f < split.fragments.size(); ++f) {
      std::size_t ra = 0;
      for (std::size_t j = 0; j < read_pos[f].size(); ++j) {
        ra |= static_cast<std::size_t>((sigma >> read_pos[f][j]) & 1) << j;
      }
      std::size_t wp = 0;
      for (std::size_t j = 0; j < write_pos[f].size(); ++j) {
        wp |= static_cast<std::size_t>((sigma >> write_pos[f][j]) & 1) << j;
      }
      const Real f0 = tables[f].by_read[ra][wp * 2];
      const Real f1 = tables[f].by_read[ra][wp * 2 + 1];
      const Real n0 = p0 * f0 + p1 * f1;
      const Real n1 = p0 * f1 + p1 * f0;
      p0 = n0;
      p1 = n1;
      if (p0 + p1 <= 0.0) {
        break;  // this cross-bit assignment never occurs
      }
    }
    acc += p1;
  }
  return acc;
}

Real fragment_term_prob_one(const QpdTerm& term) {
  return fragment_term_prob_one(split_term(term));
}

}  // namespace qcut
