#include "qcut/cut/multiwire.hpp"

#include <numeric>

namespace qcut {

Qpd product_qpd(const std::vector<const WireCutProtocol*>& protocols,
                const std::vector<CutInput>& inputs) {
  QCUT_CHECK(!protocols.empty(), "product_qpd: no protocols");
  QCUT_CHECK(protocols.size() == inputs.size(), "product_qpd: protocol/input count mismatch");

  // Per-wire QPDs.
  std::vector<Qpd> parts;
  parts.reserve(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    QCUT_CHECK(protocols[i] != nullptr, "product_qpd: null protocol");
    parts.push_back(protocols[i]->build_qpd(inputs[i]));
  }

  // Cartesian product of term indices.
  std::size_t total_terms = 1;
  for (const auto& p : parts) {
    total_terms *= p.size();
    QCUT_CHECK(total_terms <= 100000, "product_qpd: term explosion");
  }

  Qpd joint;
  std::vector<std::size_t> idx(parts.size(), 0);
  for (std::size_t t = 0; t < total_terms; ++t) {
    // Build the joint term for the current index tuple.
    int n_qubits = 0;
    int n_cbits = 0;
    Real coeff = 1.0;
    int pairs = 0;
    std::string label;
    for (std::size_t w = 0; w < parts.size(); ++w) {
      const QpdTerm& term = parts[w].terms()[idx[w]];
      n_qubits += term.circuit.n_qubits();
      n_cbits += term.circuit.n_cbits();
      coeff *= term.coefficient;
      pairs += term.entangled_pairs;
      label += (w ? "*" : "") + term.label;
    }
    Circuit c(n_qubits, n_cbits);
    std::vector<int> est;
    int q_off = 0;
    int c_off = 0;
    for (std::size_t w = 0; w < parts.size(); ++w) {
      const QpdTerm& term = parts[w].terms()[idx[w]];
      c.append(term.circuit, q_off, c_off);
      for (int cb : term.estimate_cbits) {
        est.push_back(cb + c_off);
      }
      q_off += term.circuit.n_qubits();
      c_off += term.circuit.n_cbits();
    }
    QpdTerm jt;
    jt.coefficient = coeff;
    jt.circuit = std::move(c);
    jt.estimate_cbits = std::move(est);
    jt.entangled_pairs = pairs;
    jt.label = std::move(label);
    joint.add(std::move(jt));

    // Advance the index tuple.
    for (std::size_t w = parts.size(); w-- > 0;) {
      if (++idx[w] < parts[w].size()) {
        break;
      }
      idx[w] = 0;
    }
  }
  return joint;
}

Real product_kappa(const std::vector<const WireCutProtocol*>& protocols) {
  Real k = 1.0;
  for (const auto* p : protocols) {
    QCUT_CHECK(p != nullptr, "product_kappa: null protocol");
    k *= p->kappa();
  }
  return k;
}

}  // namespace qcut
