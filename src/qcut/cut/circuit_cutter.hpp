// Generic circuit cutting: splice wire-cut protocol gadgets into an
// arbitrary unitary circuit, producing the executable QPD for a Pauli
// observable on the cut circuit's output.
//
// This is the API a downstream user calls to distribute a real circuit:
//   Circuit big(4);
//   big.h(0).cx(0,1).cx(1,2).cx(2,3);          // too wide for one device
//   Qpd qpd = cut_circuit(big, {/*after_op=*/2, /*qubit=*/1},
//                         NmeCut{0.6}, "ZZZZ");
// After the cut, everything the original circuit did on the cut wire happens
// on a fresh receiver wire (a different device); the sender-side wire is
// consumed by the gadget.
//
// cut_circuit_multi is the n-cut generalization: each cut consumes the
// current carrier of its wire and delivers onto a fresh receiver, so cuts may
// chain along one wire. The joint QPD is the product decomposition — Π m_i
// terms, coefficient products, κ = Π κ_i — exactly product_qpd's semantics
// realized inside one host circuit. This is what the automatic planner
// (qcut/plan/) executes.
#pragma once

#include <string>
#include <vector>

#include "qcut/cut/gate_cut.hpp"
#include "qcut/cut/wire_cut.hpp"

namespace qcut {

struct CutPoint {
  std::size_t after_op = 0;  ///< gadget is inserted after this many ops
  int qubit = 0;             ///< the wire being cut
};

inline bool operator==(const CutPoint& a, const CutPoint& b) {
  return a.after_op == b.after_op && a.qubit == b.qubit;
}

/// One cut location under the unified candidate model: a wire cut at a
/// CutPoint, or a gate cut replacing the host op at `op_index`.
struct CutSite {
  CutKind kind = CutKind::kWire;
  CutPoint point{};          ///< wire cuts only
  std::size_t op_index = 0;  ///< gate cuts only

  static CutSite wire(CutPoint p) {
    CutSite s;
    s.kind = CutKind::kWire;
    s.point = p;
    return s;
  }
  static CutSite gate(std::size_t op_index) {
    CutSite s;
    s.kind = CutKind::kGate;
    s.op_index = op_index;
    return s;
  }
  /// The splice position on the host op timeline.
  std::size_t position() const noexcept {
    return kind == CutKind::kWire ? point.after_op : op_index;
  }
};

inline bool operator==(const CutSite& a, const CutSite& b) {
  return a.kind == b.kind &&
         (a.kind == CutKind::kWire ? a.point == b.point : a.op_index == b.op_index);
}

/// Cuts `circ` (unitary ops only, no classical bits) at `point` with
/// `protocol`, measuring the n-qubit Pauli string `observable` (indexed by
/// the original circuit's qubits) on the final state. Each QPD term's
/// estimate is the parity of the per-site measurement bits.
///
/// Rejects (qcut::Error) out-of-range positions/wires and dead cuts: a cut
/// on a wire that no later op touches and the observable does not measure
/// would silently burn a κ² shot-cost factor on a state nobody looks at.
Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable);

/// The unified n-cut splicer: cuts `circ` at every `sites[i]` with
/// `protocols[i]` (whose kind() must match the site's kind), producing the
/// product QPD of the n independent decompositions spliced into one host
/// circuit.
///
/// Wire cuts consume the current carrier of their wire and deliver onto a
/// fresh receiver wire (receiver i = circ.n_qubits() + the site's rank among
/// the wire sites, input order); gadget helper qubits follow the receivers.
/// Gate cuts replace the two-qubit host op at their `op_index` with the
/// protocol's branch-independent locals plus the branch ops; a branch's
/// signed-measurement bit joins the term's estimate parity. Sites are spliced
/// in time order (ties: input order), so cuts may chain along one wire.
/// Validation is cut_circuit's, applied per site; gate sites additionally
/// require a two-qubit unitary host op cut by at most one site.
Qpd cut_circuit_sites(const Circuit& circ, const std::vector<CutSite>& sites,
                      const std::vector<const CutProtocol*>& protocols,
                      const std::string& observable);

/// Wire-cut-only convenience over cut_circuit_sites (the pre-gate-cut API).
Qpd cut_circuit_multi(const Circuit& circ, const std::vector<CutPoint>& points,
                      const std::vector<const WireCutProtocol*>& protocols,
                      const std::string& observable);

/// The single-term "QPD" of the uncut circuit: coefficient 1, κ = 1, the
/// observable's parity measured directly. What planned execution runs when
/// the circuit already fits on one device; shares cut_circuit's observable
/// validation.
Qpd uncut_qpd(const Circuit& circ, const std::string& observable);

/// The reference value ⟨observable⟩ on the uncut circuit, computed exactly.
Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable);

}  // namespace qcut
