// Generic circuit cutting: splice a wire-cut protocol's gadgets into an
// arbitrary unitary circuit, producing the executable QPD for a Pauli
// observable on the cut circuit's output.
//
// This is the API a downstream user calls to distribute a real circuit:
//   Circuit big(4);
//   big.h(0).cx(0,1).cx(1,2).cx(2,3);          // too wide for one device
//   Qpd qpd = cut_circuit(big, {/*after_op=*/2, /*qubit=*/1},
//                         NmeCut{0.6}, "ZZZZ");
// After the cut, everything the original circuit did on the cut wire happens
// on a fresh receiver wire (a different device); the sender-side wire is
// consumed by the gadget.
#pragma once

#include <string>

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

struct CutPoint {
  std::size_t after_op = 0;  ///< gadget is inserted after this many ops
  int qubit = 0;             ///< the wire being cut
};

/// Cuts `circ` (unitary ops only, no classical bits) at `point` with
/// `protocol`, measuring the n-qubit Pauli string `observable` (indexed by
/// the original circuit's qubits) on the final state. Each QPD term's
/// estimate is the parity of the per-site measurement bits.
Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable);

/// The reference value ⟨observable⟩ on the uncut circuit, computed exactly.
Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable);

}  // namespace qcut
