// Generic circuit cutting: splice wire-cut protocol gadgets into an
// arbitrary unitary circuit, producing the executable QPD for a Pauli
// observable on the cut circuit's output.
//
// This is the API a downstream user calls to distribute a real circuit:
//   Circuit big(4);
//   big.h(0).cx(0,1).cx(1,2).cx(2,3);          // too wide for one device
//   Qpd qpd = cut_circuit(big, {/*after_op=*/2, /*qubit=*/1},
//                         NmeCut{0.6}, "ZZZZ");
// After the cut, everything the original circuit did on the cut wire happens
// on a fresh receiver wire (a different device); the sender-side wire is
// consumed by the gadget.
//
// cut_circuit_multi is the n-cut generalization: each cut consumes the
// current carrier of its wire and delivers onto a fresh receiver, so cuts may
// chain along one wire. The joint QPD is the product decomposition — Π m_i
// terms, coefficient products, κ = Π κ_i — exactly product_qpd's semantics
// realized inside one host circuit. This is what the automatic planner
// (qcut/plan/) executes.
#pragma once

#include <string>
#include <vector>

#include "qcut/cut/wire_cut.hpp"

namespace qcut {

struct CutPoint {
  std::size_t after_op = 0;  ///< gadget is inserted after this many ops
  int qubit = 0;             ///< the wire being cut
};

inline bool operator==(const CutPoint& a, const CutPoint& b) {
  return a.after_op == b.after_op && a.qubit == b.qubit;
}

/// Cuts `circ` (unitary ops only, no classical bits) at `point` with
/// `protocol`, measuring the n-qubit Pauli string `observable` (indexed by
/// the original circuit's qubits) on the final state. Each QPD term's
/// estimate is the parity of the per-site measurement bits.
///
/// Rejects (qcut::Error) out-of-range positions/wires and dead cuts: a cut
/// on a wire that no later op touches and the observable does not measure
/// would silently burn a κ² shot-cost factor on a state nobody looks at.
Qpd cut_circuit(const Circuit& circ, const CutPoint& point, const WireCutProtocol& protocol,
                const std::string& observable);

/// Cuts `circ` at every `points[i]` with `protocols[i]`, producing the
/// product QPD of the n independent single-wire decompositions spliced into
/// one host circuit. Receiver wire i is `circ.n_qubits() + i`; gadget helper
/// qubits follow the receivers. Cuts are spliced in time order (ties: input
/// order), so two cuts on one wire chain sender → receiver → receiver.
/// Validation is the same as cut_circuit, applied per cut.
Qpd cut_circuit_multi(const Circuit& circ, const std::vector<CutPoint>& points,
                      const std::vector<const WireCutProtocol*>& protocols,
                      const std::string& observable);

/// The single-term "QPD" of the uncut circuit: coefficient 1, κ = 1, the
/// observable's parity measured directly. What planned execution runs when
/// the circuit already fits on one device; shares cut_circuit's observable
/// validation.
Qpd uncut_qpd(const Circuit& circ, const std::string& observable);

/// The reference value ⟨observable⟩ on the uncut circuit, computed exactly.
Real uncut_circuit_expectation(const Circuit& circ, const std::string& observable);

}  // namespace qcut
