// qcut-server: the estimation daemon. Binds, prints the bound port, serves
// until SIGINT/SIGTERM — SIGTERM (and the first SIGINT) triggers a graceful
// drain: stop accepting, let in-flight requests finish within --drain-ms,
// then cancel the rest (their clients get clean `cancelled` responses).
//
//   qcut-server [--host 127.0.0.1] [--port 0] [--workers N]
//               [--max-inflight N] [--max-deadline-ms MS] [--drain-ms MS]
//               [--port-file PATH]
//
// --port 0 (the default) binds an ephemeral port; scripts read it from the
// "listening on HOST:PORT" stdout line or from --port-file (written once the
// socket is live, so waiting for the file is a race-free readiness check).
// --max-deadline-ms clamps (and, when clients ask for nothing, imposes) the
// per-request deadline; 0 disables the ceiling.
#include <csignal>
#include <cstdio>
#include <fstream>

#include "qcut/common/cli.hpp"
#include "qcut/common/error.hpp"
#include "qcut/svc/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  qcut::Cli cli(argc, argv);

  qcut::svc::ServerConfig cfg;
  cfg.host = cli.get("host", "127.0.0.1");
  cfg.port = static_cast<int>(cli.get_int("port", 0));
  cfg.workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  cfg.max_inflight = static_cast<std::size_t>(cli.get_int("max-inflight", 0));
  cfg.caches.plan_capacity = static_cast<std::size_t>(cli.get_int("plan-cache", 64));
  cfg.caches.eval_capacity = static_cast<std::size_t>(cli.get_int("eval-cache", 32));
  cfg.max_deadline_ms = static_cast<std::uint64_t>(cli.get_int("max-deadline-ms", 0));
  cfg.drain_ms = static_cast<std::uint64_t>(cli.get_int("drain-ms", 2000));
  const std::string port_file = cli.get("port-file", "");

  try {
    qcut::svc::QcutServer server(cfg);
    server.start();
    std::printf("qcut-server listening on %s:%d\n", cfg.host.c_str(), server.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    sigset_t mask;
    sigemptyset(&mask);
    while (g_stop == 0) {
      sigsuspend(&mask);  // sleep until a signal arrives
    }
    std::printf("qcut-server: draining (budget %llu ms)\n",
                static_cast<unsigned long long>(cfg.drain_ms));
    std::fflush(stdout);
    const bool clean = server.drain();
    std::printf("qcut-server: %s\n", clean ? "drained cleanly" : "drained with cancellations");
  } catch (const qcut::Error& e) {
    std::fprintf(stderr, "qcut-server: %s\n", e.what());
    return 1;
  }
  return 0;
}
