// qcut-client: command-line driver for a running qcut-server.
//
//   qcut-client --port P [--host H] estimate --qasm FILE --obs ZZZ
//               [--epsilon 0.05] [--shots 0] [--shot-cap 0] [--seed 1234]
//               [--repeat 1] [--concurrency 1] [--request-id ID]
//               [--deadline-ms 0]
//   qcut-client --port P [--host H] metrics
//
// `estimate` sends the same request --repeat times from --concurrency
// connections (round-robin) and prints one line per response:
//
//   estimate=<…17g> ci=<…> shots=<N> plan_cache_hit=<0|1> eval_cache_hit=<0|1>
//   coalesced=<0|1> status=<ok|retry_after|error>
//
// Retryable responses — retry_after rejections and `overloaded` errors — are
// retried up to 5 times with jittered exponential backoff (floored at the
// server's retry_after_ms hint); permanent failures (invalid_request,
// deadline_exceeded, cancelled, internal) are reported immediately.
// `metrics` prints the server's plaintext counter dump verbatim.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qcut/common/cli.hpp"
#include "qcut/common/error.hpp"
#include "qcut/svc/server.hpp"
#include "qcut/svc/wire.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  QCUT_CHECK(in.good(), "qcut-client: cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const char* status_name(std::uint8_t status) {
  switch (static_cast<qcut::svc::WireStatus>(status)) {
    case qcut::svc::WireStatus::kOk:
      return "ok";
    case qcut::svc::WireStatus::kRetryAfter:
      return "retry_after";
    case qcut::svc::WireStatus::kError:
      return "error";
  }
  return "unknown";
}

/// Retryable: the server said "come back later" (admission rejection or a
/// typed `overloaded` error). Everything else — invalid_request,
/// deadline_exceeded, cancelled, internal — is permanent for THIS request:
/// resending the identical bytes reproduces the identical failure.
bool retryable(const qcut::svc::WireEstimateResponse& resp) {
  if (resp.status == static_cast<std::uint8_t>(qcut::svc::WireStatus::kRetryAfter)) {
    return true;
  }
  return resp.status == static_cast<std::uint8_t>(qcut::svc::WireStatus::kError) &&
         resp.code == static_cast<std::uint8_t>(qcut::ErrorCode::kOverloaded);
}

qcut::svc::WireEstimateResponse estimate_with_retry(qcut::svc::QcutClient& client,
                                                    const qcut::svc::WireEstimateRequest& req,
                                                    std::uint64_t jitter_seed) {
  constexpr std::uint64_t kSleepCapMs = 5000;
  qcut::svc::WireEstimateResponse resp;
  std::mt19937_64 rng(jitter_seed);
  std::uint64_t backoff_ms = 10;
  for (int attempt = 0; attempt < 5; ++attempt) {
    resp = client.estimate(req);
    if (!retryable(resp)) {
      return resp;
    }
    // Exponential base, floored at the server's hint, with multiplicative
    // jitter in [1, 2) so synchronized clients don't re-collide in lockstep.
    std::uniform_real_distribution<double> jitter(1.0, 2.0);
    const std::uint64_t base = std::max(backoff_ms, resp.retry_after_ms);
    const std::uint64_t sleep_ms = std::min(
        kSleepCapMs, static_cast<std::uint64_t>(static_cast<double>(base) * jitter(rng)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(kSleepCapMs, backoff_ms * 2);
  }
  return resp;
}

}  // namespace

int main(int argc, char** argv) {
  qcut::Cli cli(argc, argv);
  const std::string host = cli.get("host", "127.0.0.1");
  const int port = static_cast<int>(cli.get_int("port", 0));
  const std::string command = cli.positional().size() > 1 ? cli.positional()[1] : "";

  try {
    QCUT_CHECK(port > 0, "qcut-client: --port is required");
    if (command == "metrics") {
      qcut::svc::QcutClient client(host, port);
      std::fputs(client.metrics().c_str(), stdout);
      return 0;
    }
    QCUT_CHECK(command == "estimate",
               "qcut-client: expected a command: estimate | metrics (got '" + command + "')");

    qcut::svc::WireEstimateRequest req;
    const std::string qasm_path = cli.get("qasm", "");
    QCUT_CHECK(!qasm_path.empty(), "qcut-client: estimate needs --qasm FILE");
    req.circuit_qasm = read_file(qasm_path);
    req.observable = cli.get("obs", "");
    QCUT_CHECK(!req.observable.empty(), "qcut-client: estimate needs --obs PAULISTRING");
    req.epsilon = cli.get_real("epsilon", 0.0);
    req.shots = static_cast<std::uint64_t>(cli.get_int("shots", 0));
    req.shot_cap = static_cast<std::uint64_t>(cli.get_int("shot-cap", 0));
    req.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1234));
    req.target_accuracy = cli.get_real("accuracy", 0.05);
    req.max_fragment_width = static_cast<std::int32_t>(cli.get_int("max-width", 0));
    req.request_id = cli.get("request-id", "");
    req.deadline_ms = static_cast<std::uint64_t>(cli.get_int("deadline-ms", 0));

    const int repeat = static_cast<int>(cli.get_int("repeat", 1));
    const int concurrency = static_cast<int>(cli.get_int("concurrency", 1));
    QCUT_CHECK(repeat >= 1 && concurrency >= 1,
               "qcut-client: --repeat and --concurrency must be >= 1");

    std::mutex print_mu;
    bool any_error = false;
    auto worker = [&](int thread_idx) {
      qcut::svc::QcutClient client(host, port);
      for (int r = thread_idx; r < repeat; r += concurrency) {
        const std::uint64_t jitter_seed =
            req.seed ^ (static_cast<std::uint64_t>(thread_idx) << 32) ^
            static_cast<std::uint64_t>(r);
        const qcut::svc::WireEstimateResponse resp = estimate_with_retry(client, req, jitter_seed);
        std::lock_guard<std::mutex> lock(print_mu);
        if (resp.status == static_cast<std::uint8_t>(qcut::svc::WireStatus::kOk)) {
          std::printf(
              "estimate=%.17g ci=%.17g shots=%llu plan_cache_hit=%d eval_cache_hit=%d "
              "coalesced=%d status=%s\n",
              resp.estimate, resp.ci_halfwidth,
              static_cast<unsigned long long>(resp.shots_used), resp.plan_cache_hit,
              resp.eval_cache_hit, resp.coalesced, status_name(resp.status));
        } else {
          any_error = true;
          std::printf("status=%s code=%s error=%s\n", status_name(resp.status),
                      qcut::error_code_name(static_cast<qcut::ErrorCode>(resp.code)),
                      resp.error.c_str());
        }
      }
    };

    if (concurrency == 1) {
      worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(concurrency));
      for (int t = 0; t < concurrency; ++t) {
        threads.emplace_back(worker, t);
      }
      for (auto& t : threads) {
        t.join();
      }
    }
    return any_error ? 1 : 0;
  } catch (const qcut::Error& e) {
    std::fprintf(stderr, "qcut-client: %s\n", e.what());
    return 1;
  }
}
