// Cross-protocol invariants: properties every wire-cut protocol must satisfy,
// checked uniformly over the whole registry, plus negative controls that
// prove the tests can fail.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "qcut/cut/distill_cut.hpp"
#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/mixed_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/cut/peng_cut.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/noise.hpp"
#include "qcut/sim/qasm.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

std::vector<std::shared_ptr<const WireCutProtocol>> all_protocols() {
  return {
      std::make_shared<PengCut>(),
      std::make_shared<HaradaCut>(),
      std::make_shared<TeleportCut>(),
      std::make_shared<NmeCut>(0.0),
      std::make_shared<NmeCut>(0.35),
      std::make_shared<NmeCut>(0.8),
      std::make_shared<NmeCut>(1.0),
      std::make_shared<DistillCut>(0.5),
      std::make_shared<MixedNmeCut>(noisy_phi_k(1.0, 0.25)),
      std::make_shared<MixedNmeCut>(noisy_phi_k(0.7, 0.15)),
  };
}

class ProtocolInvariantTest
    : public ::testing::TestWithParam<std::shared_ptr<const WireCutProtocol>> {};

TEST_P(ProtocolInvariantTest, GadgetCoefficientsSumToOneAndMatchKappa) {
  const auto& proto = GetParam();
  Real sum = 0.0, kappa = 0.0;
  for (const auto& g : proto->gadgets()) {
    sum += g.coefficient;
    kappa += std::abs(g.coefficient);
    EXPECT_TRUE(g.append != nullptr) << proto->name();
    EXPECT_GE(g.extra_qubits, 0);
    EXPECT_GE(g.cbits, 0);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10) << proto->name();
  EXPECT_NEAR(kappa, proto->kappa(), 1e-10) << proto->name();
}

TEST_P(ProtocolInvariantTest, GadgetAndChannelTermCountsAgree) {
  const auto& proto = GetParam();
  EXPECT_EQ(proto->gadgets().size(), proto->channel_terms().size()) << proto->name();
}

TEST_P(ProtocolInvariantTest, ChannelCoefficientsMatchGadgets) {
  const auto& proto = GetParam();
  const auto gs = proto->gadgets();
  const auto cs = proto->channel_terms();
  ASSERT_EQ(gs.size(), cs.size());
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i].coefficient, cs[i].first, 1e-10) << proto->name() << " term " << i;
  }
}

TEST_P(ProtocolInvariantTest, IdentityReconstructionOnRandomStates) {
  const auto& proto = GetParam();
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix rho = random_density(2, rng);
    testing::expect_matrix_near(reconstruct(*proto, rho), rho, 1e-8, proto->name().c_str());
  }
}

TEST_P(ProtocolInvariantTest, ExactValueInvariantUnderGlobalPhase) {
  const auto& proto = GetParam();
  Rng rng(8);
  const Matrix w = haar_unitary(2, rng);
  const Matrix w_phased = std::exp(Cplx{0.0, 0.77}) * w;
  const CutInput a{w, 'Z'};
  const CutInput b{w_phased, 'Z'};
  EXPECT_NEAR(exact_cut_expectation(*proto, a), exact_cut_expectation(*proto, b), 1e-9)
      << proto->name();
}

TEST_P(ProtocolInvariantTest, EstimateCbitsAreValid) {
  const auto& proto = GetParam();
  Rng rng(9);
  const Qpd qpd = proto->build_qpd(CutInput{haar_unitary(2, rng), 'X'});
  for (const auto& term : qpd.terms()) {
    ASSERT_FALSE(term.estimate_cbits.empty());
    for (int cb : term.estimate_cbits) {
      EXPECT_GE(cb, 0);
      EXPECT_LT(cb, term.circuit.n_cbits());
    }
  }
}

TEST_P(ProtocolInvariantTest, SampledAndAllocatedEstimatorsAgreeInExpectation) {
  const auto& proto = GetParam();
  Rng rng(10);
  const CutInput input{haar_unitary(2, rng), 'Z'};
  const Qpd qpd = proto->build_qpd(input);
  const auto probs = exact_term_prob_one(qpd);
  const Real target = uncut_expectation(input);

  Real acc_s = 0.0, acc_a = 0.0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    Rng trng(11, static_cast<std::uint64_t>(t));
    acc_s += estimate_sampled_fast(qpd, probs, 800, trng).estimate;
    acc_a += estimate_allocated_fast(qpd, probs, 800, trng).estimate;
  }
  const Real tol = 6.0 * qpd.kappa() / std::sqrt(800.0 * trials) + 1e-6;
  EXPECT_NEAR(acc_s / trials, target, tol) << proto->name();
  EXPECT_NEAR(acc_a / trials, target, tol) << proto->name();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ProtocolInvariantTest, ::testing::ValuesIn(all_protocols()),
    [](const ::testing::TestParamInfo<std::shared_ptr<const WireCutProtocol>>& info) {
      std::string n = info.param->name();
      for (char& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return n + "_" + std::to_string(info.index);
    });

// ---------------------------------------------------------------------------
// Negative controls: corrupting a decomposition must break the identity —
// proving the positive tests above are discriminating.
// ---------------------------------------------------------------------------

TEST(ProtocolNegativeControls, WrongSignBreaksReconstruction) {
  const HaradaCut proto;
  Rng rng(12);
  const Matrix rho = random_density(2, rng);
  Matrix acc(2, 2);
  for (const auto& [c, f] : proto.channel_terms()) {
    acc += Cplx{std::abs(c), 0.0} * f.apply(rho);  // corrupt: all signs positive
  }
  EXPECT_GT((acc - rho).norm(), 0.1);
}

TEST(ProtocolNegativeControls, WrongKBreaksCoefficients) {
  // Theorem-2 coefficients for k = 0.3 do not reconstruct with the channel
  // for k = 0.6.
  const NmeCut right(0.3);
  const NmeCut wrong(0.6);
  Rng rng(13);
  const Matrix rho = random_density(2, rng);
  Matrix acc(2, 2);
  const auto coeffs = right.channel_terms();
  const auto chans = wrong.channel_terms();
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    acc += Cplx{coeffs[i].first, 0.0} * chans[i].second.apply(rho);
  }
  EXPECT_GT((acc - rho).norm(), 0.01);
}

TEST(ProtocolNegativeControls, DroppingTheFlipTermBiasesTheEstimate) {
  const NmeCut proto(0.4);
  Rng rng(14);
  const CutInput input{haar_unitary(2, rng), 'Z'};
  Qpd truncated;
  const Qpd full = proto.build_qpd(input);
  for (const auto& term : full.terms()) {
    if (term.label != "measure-flip") {
      QpdTerm copy = term;
      truncated.add(std::move(copy));
    }
  }
  EXPECT_GT(std::abs(exact_value(truncated) - uncut_expectation(input)), 1e-3);
}

// ---------------------------------------------------------------------------
// QASM export coverage across the registry.
// ---------------------------------------------------------------------------

TEST(ProtocolQasm, FragmentsExportWherePossible) {
  Rng rng(15);
  const CutInput input{haar_unitary(2, rng), 'Z'};
  for (const auto& proto : all_protocols()) {
    const bool has_big_init = proto->name().rfind("mixed", 0) == 0;  // 4-qubit purification
    const Qpd qpd = proto->build_qpd(input);
    for (const auto& term : qpd.terms()) {
      if (has_big_init && term.entangled_pairs > 0) {
        EXPECT_THROW((void)to_qasm(term.circuit), Error) << proto->name();
      } else {
        EXPECT_NO_THROW((void)to_qasm(term.circuit)) << proto->name() << " " << term.label;
      }
    }
  }
}

}  // namespace
}  // namespace qcut
