// OpenQASM 2.0 import: parser subset, diagnostics, and the round-trip
// properties gating the corpus — import(export(C)) ≡ C per op, and
// export(import(P)) re-imports stably for every corpus program.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "qcut/linalg/random.hpp"
#include "qcut/sim/executor.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/qasm.hpp"
#include "qcut/sim/qasm_import.hpp"
#include "test_helpers.hpp"

#ifndef QCUT_QASM_CORPUS_DIR
#define QCUT_QASM_CORPUS_DIR "tests/qasm_corpus"
#endif

namespace qcut {
namespace {

using testing::expect_matrix_near;

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(QCUT_QASM_CORPUS_DIR)) {
    if (e.path().extension() == ".qasm") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Random builder circuit over the full importable op set: named gates,
/// measure, reset, and classically controlled single-qubit gates.
Circuit random_importable_circuit(int n_qubits, int n_cbits, int depth, Rng& rng) {
  Circuit c(n_qubits, n_cbits);
  int measured = 0;
  for (int d = 0; d < depth; ++d) {
    const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n_qubits)));
    switch (rng.uniform_u64(10)) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.rz(q, rng.uniform() * 4.0 - 2.0);
        break;
      case 2:
        c.ry(q, rng.uniform() * 4.0 - 2.0);
        break;
      case 3:
        c.gate(haar_unitary(2, rng), {q}, "U1q");
        break;
      case 4:
        if (n_qubits >= 2) {
          const int p = (q + 1) % n_qubits;
          rng.bernoulli(0.5) ? c.cx(q, p) : c.cz(q, p);
        }
        break;
      case 5:
        if (n_qubits >= 2) {
          c.swap_gate(q, (q + 1) % n_qubits);
        }
        break;
      case 6:
        if (measured < n_cbits) {
          c.measure(q, measured++);
        }
        break;
      case 7:
        if (measured > 0) {
          rng.bernoulli(0.5) ? c.x_if(measured - 1, q) : c.z_if(measured - 1, q);
        }
        break;
      case 8:
        c.reset(q);
        break;
      default:
        c.t(q);
        break;
    }
  }
  return c;
}

// ---- parser basics ---------------------------------------------------------

TEST(QasmImport, ParsesRegistersAndNamedGates) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[3];\n"
      "creg c[2];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n"
      "rz(pi/2) q[2];\n"
      "measure q[0] -> c[1];\n");
  EXPECT_EQ(c.n_qubits(), 3);
  EXPECT_EQ(c.n_cbits(), 2);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.ops()[0].label, "H");
  expect_matrix_near(c.ops()[0].matrix, gates::h(), 1e-15);
  EXPECT_EQ(c.ops()[1].label, "CX");
  EXPECT_EQ(c.ops()[1].qubits, (std::vector<int>{0, 1}));
  expect_matrix_near(c.ops()[2].matrix, gates::rz(kPi / 2.0), 1e-15);
  EXPECT_EQ(c.ops()[3].kind, OpKind::kMeasure);
  EXPECT_EQ(c.ops()[3].qubits, (std::vector<int>{0}));
  EXPECT_EQ(c.ops()[3].cbit, 1);
}

TEST(QasmImport, MultipleRegistersMapToFlatOffsets) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "qreg a[2];\nqreg b[2];\ncreg m[1];\ncreg n[2];\n"
      "x b[1];\ncx a[1],b[0];\nmeasure b[0] -> n[1];\n");
  EXPECT_EQ(c.n_qubits(), 4);
  EXPECT_EQ(c.n_cbits(), 3);
  EXPECT_EQ(c.ops()[0].qubits, (std::vector<int>{3}));
  EXPECT_EQ(c.ops()[1].qubits, (std::vector<int>{1, 2}));
  EXPECT_EQ(c.ops()[2].cbit, 2);
}

TEST(QasmImport, BroadcastsWholeRegisterOperands) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "qreg q[3];\nqreg r[3];\ncreg c[3];\n"
      "h q;\n"          // 3 ops
      "cx q,r;\n"       // 3 ops, pairwise
      "cx q[0],r;\n"    // 3 ops, fixed control
      "measure q -> c;\n");
  ASSERT_EQ(c.size(), 12u);
  EXPECT_EQ(c.ops()[4].qubits, (std::vector<int>{1, 4}));
  EXPECT_EQ(c.ops()[7].qubits, (std::vector<int>{0, 4}));
  EXPECT_EQ(c.ops()[10].kind, OpKind::kMeasure);
  EXPECT_EQ(c.ops()[10].qubits, (std::vector<int>{1}));
  EXPECT_EQ(c.ops()[10].cbit, 1);
}

TEST(QasmImport, PreludeCompositesNeedNoInFileDefinitions) {
  // ccx / cswap are predefined qelib1 composites: each imports as ONE 3q
  // permutation op, with no `gate ...` body in the program.
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[3];\n"
      "ccx q[0],q[1],q[2];\n"
      "cswap q[2],q[0],q[1];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ops()[0].label, "CCX");
  expect_matrix_near(c.ops()[0].matrix, gates::ccx(), 1e-15);
  EXPECT_EQ(c.ops()[0].qubits, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.ops()[0].gclass.structure, GateStructure::kPermutation);
  EXPECT_EQ(c.ops()[1].label, "CSWAP");
  expect_matrix_near(c.ops()[1].matrix, gates::cswap(), 1e-15);

  // Semantics: |110⟩ --ccx--> |111⟩; Toffoli arity is enforced.
  Statevector sv(3);
  sv.apply(gates::x(), {0}, classify_gate(gates::x()));
  sv.apply(gates::x(), {1}, classify_gate(gates::x()));
  sv.apply(c.ops()[0].matrix, c.ops()[0].qubits, c.ops()[0].gclass);
  EXPECT_NEAR(std::abs(sv.amplitudes()[7]), 1.0, 1e-12);
  EXPECT_THROW(import_qasm("OPENQASM 2.0;\nqreg q[2];\nccx q[0],q[1];\n"), Error);

  // And they round-trip through the exporter by name.
  const Circuit back = import_qasm(to_qasm(c));
  std::string why;
  EXPECT_TRUE(circuits_equivalent(c, back, 1e-12, &why)) << why;
}

TEST(QasmImport, InFileDefinitionsShadowThePrelude) {
  // A program's own `gate ccx ...` wins over the prelude: the application
  // expands the macro body instead of emitting the 3q composite. ccx_adder
  // in the corpus relies on exactly this.
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "gate ccx a,b,c { h c; cx a,b; }\n"
      "qreg q[3];\n"
      "ccx q[0],q[1],q[2];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ops()[0].label, "H");
  EXPECT_EQ(c.ops()[1].label, "CX");
}

TEST(QasmImport, PreludeCompositesWorkInsideMacroBodies) {
  // qelib1's majority gate, written against the prelude Toffoli.
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n"
      "qreg q[3];\n"
      "majority q[0],q[1],q[2];\n");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.ops()[2].label, "CCX");
  EXPECT_EQ(c.ops()[2].qubits, (std::vector<int>{0, 1, 2}));
}

TEST(QasmImport, GateMacrosExpandWithParameterSubstitution) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "gate foo(t) a,b { ry(t) a; cx a,b; ry(-t/2) b; }\n"
      "qreg q[2];\n"
      "foo(pi/3) q[1],q[0];\n");
  ASSERT_EQ(c.size(), 3u);
  expect_matrix_near(c.ops()[0].matrix, gates::ry(kPi / 3.0), 1e-15);
  EXPECT_EQ(c.ops()[0].qubits, (std::vector<int>{1}));
  EXPECT_EQ(c.ops()[1].qubits, (std::vector<int>{1, 0}));
  expect_matrix_near(c.ops()[2].matrix, gates::ry(-kPi / 6.0), 1e-15);
}

TEST(QasmImport, ConditionalTwoQubitGatesRoundTrip) {
  // Regression: conditioned named two-qubit gates import with a '?' label
  // suffix and must still export through the named-gate branch.
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\nqreg q[3];\ncreg t[1];\n"
      "measure q[0] -> t[0];\n"
      "if (t == 1) cx q[1],q[2];\nif (t == 1) swap q[0],q[2];\n");
  std::string exported;
  ASSERT_NO_THROW(exported = to_qasm(c));
  EXPECT_NE(exported.find("if (c0 == 1) cx q[1],q[2];"), std::string::npos) << exported;
  EXPECT_NE(exported.find("if (c0 == 1) swap q[0],q[2];"), std::string::npos) << exported;
  std::string why;
  EXPECT_TRUE(circuits_equivalent(c, import_qasm(exported), 1e-12, &why)) << why;
}

TEST(QasmImport, ConditionalGatesMapToCondUnitary) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "qreg q[2];\ncreg c0[1];\ncreg c1[1];\n"
      "measure q[0] -> c1[0];\n"
      "if (c1 == 1) x q[1];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ops()[1].kind, OpKind::kCondUnitary);
  EXPECT_EQ(c.ops()[1].cbit, 1);
  expect_matrix_near(c.ops()[1].matrix, gates::x(), 1e-15);
}

TEST(QasmImport, BarrierAndIdAreDropped) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\n"
      "qreg q[2];\n"
      "h q[0];\nbarrier q;\nid q[1];\nbarrier q[0],q[1];\ncx q[0],q[1];\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ops()[0].label, "H");
  EXPECT_EQ(c.ops()[1].label, "CX");
}

TEST(QasmImport, ConstantExpressionsEvaluate) {
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\nqreg q[1];\n"
      "rx(3*pi/4) q[0];\n"
      "ry(-pi/8+pi/16) q[0];\n"
      "rz(pi^2/10) q[0];\n"
      "rx(sqrt(2)/2) q[0];\n"
      "ry(sin(pi/6)) q[0];\n");
  expect_matrix_near(c.ops()[0].matrix, gates::rx(3.0 * kPi / 4.0), 1e-15);
  expect_matrix_near(c.ops()[1].matrix, gates::ry(-kPi / 8.0 + kPi / 16.0), 1e-15);
  expect_matrix_near(c.ops()[2].matrix, gates::rz(kPi * kPi / 10.0), 1e-15);
  expect_matrix_near(c.ops()[3].matrix, gates::rx(std::sqrt(2.0) / 2.0), 1e-15);
  expect_matrix_near(c.ops()[4].matrix, gates::ry(std::sin(kPi / 6.0)), 1e-15);
}

TEST(QasmImport, SkipsUtf8ByteOrderMark) {
  const Circuit c = import_qasm("\xEF\xBB\xBFOPENQASM 2.0;\nqreg q[1];\nh q[0];\n");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.ops()[0].label, "H");
}

TEST(QasmImport, SemanticsMatchExecutor) {
  // The imported GHZ-3 must have the GHZ correlations, not just the op list.
  const Circuit c = import_qasm(
      "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n");
  EXPECT_NEAR(exact_expectation_pauli(c, "XXX"), 1.0, 1e-12);
  EXPECT_NEAR(exact_expectation_pauli(c, "ZZI"), 1.0, 1e-12);
  EXPECT_NEAR(exact_expectation_pauli(c, "ZII"), 0.0, 1e-12);
}

// ---- diagnostics -----------------------------------------------------------

void expect_rejects(const std::string& src, const std::string& needle) {
  try {
    import_qasm(src);
    FAIL() << "expected rejection containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(QasmImport, DiagnosticsCarryLineAndColumn) {
  try {
    import_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n");
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    // The bad index sits at line 3, column 5.
    EXPECT_NE(std::string(e.what()).find("<qasm>:3:5"), std::string::npos) << e.what();
  }
}

TEST(QasmImport, RejectsOutsideTheSubset) {
  expect_rejects("OPENQASM 3.0;\nqreg q[1];\n", "version");
  expect_rejects("qreg q[1];\n", "OPENQASM");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n", "unknown gate");
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\nh q[3];\n", "out of range");
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\ncx q[1],q[1];\n", "invalid operands");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nrx() q[0];\n", "1 parameter");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nrx(0.5,0.5) q[0];\n", "1 parameter");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\ncx q[0];\n", "2 qubit");
  expect_rejects("OPENQASM 2.0;\nopaque magic a;\n", "opaque");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nh r[0];\n", "unknown register");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\n", "redefinition");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nh q[0]\n", "expected ';'");
  expect_rejects("OPENQASM 2.0;\nqreg q[63];\n", "exceeds the IR cap");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\ncreg c[2];\nif (c == 1) x q[0];\n",
                 "multi-bit");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 0) x q[0];\n",
                 "only '== 1'");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) measure q[0] -> c[0];\n",
                 "cannot be classically conditioned");
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\nqreg r[3];\ncx q,r;\n", "sizes differ");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\nrx(1/0) q[0];\n", "not finite");
  // Truncated input must diagnose, never loop (regression: the barrier skip
  // inside a gate body used to spin at EOF).
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\ngate g a { barrier a", "expected ';'");
  // Reserved expression names cannot be shadowed by macro parameters — that
  // would silently import the wrong angle.
  expect_rejects("OPENQASM 2.0;\ngate g(pi) a { rx(pi) a; }\nqreg q[1];\ng(0.5) q[0];\n",
                 "reserved");
  // Out-of-int-range literals are rejected, not cast (UB).
  expect_rejects("OPENQASM 2.0;\nqreg q[9999999999];\n", "out of range");
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\nh q[9999999999];\n", "out of range");
  // Duplicate macro formals would silently drop call-site qubits/params.
  expect_rejects("OPENQASM 2.0;\ngate g a,a { h a; }\nqreg q[2];\ng q[0],q[1];\n",
                 "duplicate argument");
  expect_rejects("OPENQASM 2.0;\ngate g(t,t) a { rx(t) a; }\nqreg q[1];\ng(1,2) q[0];\n",
                 "duplicate parameter");
  // Barrier operand lists are comma-separated like everything else, and a
  // body barrier must not blind-skip tokens the register prescan counts.
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\nbarrier q[0] q[1];\n", "expected ';'");
  expect_rejects("OPENQASM 2.0;\nqreg q[2];\ngate g a { barrier qreg x[2]; h a; }\ng q[0];\n",
                 "expected");
  // Register widths near INT_MAX must diagnose, not overflow the accumulator.
  expect_rejects("OPENQASM 2.0;\nqreg a[62];\nqreg b[2147483647];\n", "exceeds the IR cap");
  expect_rejects("OPENQASM 2.0;\nqreg q[1];\ncreg c[2147483647];\n", "exceeds");
  expect_rejects("OPENQASM 2.0;\ninclude \"qelib1.inc\nqreg q[1];\n", "unterminated");
  expect_rejects("OPENQASM 2.0;\ngate g a { h b; }\nqreg q[1];\n", "not an argument");
}

// ---- round-trip properties -------------------------------------------------

TEST(QasmImport, ExportedFloatsReimportBitIdentically) {
  // The exporter's angle formatting is the substrate of every round-trip
  // guarantee: strtod(qasm_format_real(x)) must be exactly x.
  Rng rng(11);
  std::vector<Real> xs = {0.0,        1.0,       -1.0,    kPi,     -kPi / 3.0, 1.0 / 3.0,
                          1e-17,      -2.5e-13,  1e17,    0.1,     2.0 / 7.0,  std::sqrt(2.0),
                          6.02214e23, 5e-324,    1.5e308};
  for (int i = 0; i < 1000; ++i) {
    xs.push_back((rng.uniform() * 2.0 - 1.0) * std::pow(10.0, rng.uniform() * 40.0 - 20.0));
  }
  for (const Real x : xs) {
    const std::string s = qasm_format_real(x);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), x) << "spelling: " << s;
  }
}

TEST(QasmImport, ImportOfExportIsEquivalentForRandomCircuits) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_u64(4));
    const Circuit c = random_importable_circuit(n, 3, 12, rng);
    const Circuit back = import_qasm(to_qasm(c));
    std::string why;
    EXPECT_TRUE(circuits_equivalent(c, back, 1e-9, &why))
        << "trial " << trial << ": " << why << "\n" << to_qasm(c);
  }
}

TEST(QasmImport, ImportOfExportPreservesTotalUnitary) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_u64(2));
    Circuit c(n, 0);
    for (int d = 0; d < 8; ++d) {
      if (rng.bernoulli(0.5)) {
        c.gate(haar_unitary(2, rng),
               {static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)))}, "U1q");
      } else {
        const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n - 1)));
        c.cx(q, q + 1);
      }
    }
    const Circuit back = import_qasm(to_qasm(c));
    // The u3 serialization drops global phase by construction.
    EXPECT_TRUE(matrix_equal_up_to_phase(c.to_unitary(), back.to_unitary(), 1e-8))
        << "total unitary changed across the round trip (trial " << trial << ")";
  }
}

TEST(QasmImport, CorpusImportsAndRoundTrips) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 20u) << "corpus went missing from " << QCUT_QASM_CORPUS_DIR;
  for (const auto& f : files) {
    SCOPED_TRACE(f.string());
    Circuit c1;
    ASSERT_NO_THROW(c1 = import_qasm_file(f.string()));
    EXPECT_GT(c1.size(), 0u);
    // export(import(P)) must re-import to an equivalent circuit...
    const std::string exported = to_qasm(c1);
    Circuit c2;
    ASSERT_NO_THROW(c2 = import_qasm(exported, f.filename().string() + ":reimport"));
    std::string why;
    EXPECT_TRUE(circuits_equivalent(c1, c2, 1e-9, &why)) << why;
    // ...and the export itself is deterministic.
    EXPECT_EQ(exported, to_qasm(c1));
  }
}

TEST(QasmImport, CorpusCoversTheAdvertisedScenarios) {
  const auto files = corpus_files();
  std::size_t wide = 0, conditional = 0, macros = 0;
  for (const auto& f : files) {
    const Circuit c = import_qasm_file(f.string());
    wide += (c.n_qubits() >= 30) ? 1 : 0;
    for (const auto& op : c.ops()) {
      if (op.kind == OpKind::kCondUnitary) {
        ++conditional;
        break;
      }
    }
  }
  for (const auto& f : files) {
    std::ifstream in(f);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    macros += (text.find("\ngate ") != std::string::npos) ? 1 : 0;
  }
  EXPECT_GE(wide, 2u) << "corpus must keep 30-qubit cases";
  EXPECT_GE(conditional, 2u) << "corpus must keep classically controlled cases";
  EXPECT_GE(macros, 4u) << "corpus must keep gate-macro cases";
}

// ---- plumbing helpers ------------------------------------------------------

TEST(QasmImport, StripTrailingMeasurementsKeepsMidCircuitOnes) {
  Circuit c(2, 2);
  c.h(0).measure(0, 0).x_if(0, 1).cx(0, 1).measure(0, 0).measure(1, 1);
  int stripped = 0;
  const Circuit s = strip_trailing_measurements(c, &stripped);
  EXPECT_EQ(stripped, 2);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.ops()[1].kind, OpKind::kMeasure);  // the mid-circuit one survives

  const Circuit none = strip_trailing_measurements(s, &stripped);
  EXPECT_EQ(stripped, 0);
  EXPECT_EQ(none.size(), s.size());
}

TEST(QasmImport, CircuitsEquivalentDetectsMismatches) {
  Circuit a(2, 0);
  a.h(0).cx(0, 1);
  Circuit b(2, 0);
  b.h(0).cx(1, 0);
  std::string why;
  EXPECT_FALSE(circuits_equivalent(a, b, 1e-9, &why));
  EXPECT_NE(why.find("qubit lists"), std::string::npos);

  Circuit c(2, 0);
  c.h(0).cz(0, 1);
  EXPECT_FALSE(circuits_equivalent(a, c, 1e-9, &why));
  EXPECT_NE(why.find("unitaries"), std::string::npos);

  // Global phase alone is not a difference.
  Circuit d(2, 0);
  d.gate(Cplx{0.0, 1.0} * gates::h(), {0}, "H'").cx(0, 1);
  EXPECT_TRUE(circuits_equivalent(a, d, 1e-9, &why)) << why;
}

}  // namespace
}  // namespace qcut
