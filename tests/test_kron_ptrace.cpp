// Kronecker products, operator embedding, and partial traces.
#include <gtest/gtest.h>

#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"
#include "qcut/linalg/ptrace.hpp"
#include "qcut/linalg/random.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

using testing::expect_matrix_near;
using testing::expect_vector_near;

TEST(Kron, DimensionsAndValues) {
  const Matrix a{{Cplx{1, 0}, Cplx{2, 0}}, {Cplx{3, 0}, Cplx{4, 0}}};
  const Matrix b{{Cplx{0, 1}}};
  const Matrix k = kron(a, b);
  EXPECT_EQ(k.rows(), 2);
  EXPECT_EQ(k.cols(), 2);
  EXPECT_EQ(k(1, 0), (Cplx{0, 3}));
}

TEST(Kron, PauliAlgebraIdentity) {
  // (X ⊗ Z)(X ⊗ Z) = I ⊗ I.
  const Matrix xz = kron(pauli_x(), pauli_z());
  expect_matrix_near(xz * xz, Matrix::identity(4), 1e-12);
}

TEST(Kron, MixedProductProperty) {
  Rng rng(1);
  const Matrix a = haar_unitary(2, rng);
  const Matrix b = haar_unitary(2, rng);
  const Matrix c = haar_unitary(2, rng);
  const Matrix d = haar_unitary(2, rng);
  // (A⊗B)(C⊗D) = (AC)⊗(BD)
  expect_matrix_near(kron(a, b) * kron(c, d), kron(a * c, b * d), 1e-10);
}

TEST(Kron, Vectors) {
  const Vector u = {Cplx{1, 0}, Cplx{0, 0}};
  const Vector v = {Cplx{0, 0}, Cplx{1, 0}};
  const Vector k = kron(u, v);  // |01>
  expect_vector_near(k, basis_vector(4, 1));
}

TEST(Kron, KronAll) {
  const Matrix x3 = kron_all({pauli_x(), pauli_x(), pauli_x()});
  EXPECT_EQ(x3.rows(), 8);
  expect_matrix_near(x3, pauli_string("XXX"), 1e-12);
  EXPECT_THROW(kron_all(std::vector<Matrix>{}), Error);
}

TEST(Embed, SingleQubitMatchesKron) {
  // Qubit 0 is the most significant bit: embed on qubit 0 of 2 = U ⊗ I.
  const Matrix u = pauli_x();
  expect_matrix_near(embed(u, {0}, 2), kron(u, Matrix::identity(2)), 1e-12);
  expect_matrix_near(embed(u, {1}, 2), kron(Matrix::identity(2), u), 1e-12);
}

TEST(Embed, TwoQubitOrdering) {
  Rng rng(2);
  const Matrix u = haar_unitary(4, rng);
  // Embedding on (0,1) of a 2-qubit system is the matrix itself.
  expect_matrix_near(embed(u, {0, 1}, 2), u, 1e-12);
  // Embedding on (1,0) swaps the tensor factors.
  const Matrix sw{{Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}},
                  {Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}},
                  {Cplx{0, 0}, Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}},
                  {Cplx{0, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{1, 0}}};
  expect_matrix_near(embed(u, {1, 0}, 2), sw * u * sw, 1e-12);
}

TEST(Embed, ThreeQubitMiddle) {
  const Matrix z = pauli_z();
  expect_matrix_near(embed(z, {1}, 3), pauli_string("IZI"), 1e-12);
}

TEST(Embed, RejectsBadArguments) {
  EXPECT_THROW(embed(pauli_x(), {0, 0}, 2), Error);   // duplicate
  EXPECT_THROW(embed(pauli_x(), {2}, 2), Error);      // out of range
  EXPECT_THROW(embed(Matrix::identity(4), {0}, 2), Error);  // dim mismatch
}

TEST(PartialTrace, ProductStateFactorizes) {
  Rng rng(3);
  const Matrix rho_a = random_density(2, rng);
  const Matrix rho_b = random_density(2, rng);
  const Matrix joint = kron(rho_a, rho_b);
  expect_matrix_near(partial_trace(joint, {1}, 2), rho_a, 1e-10);
  expect_matrix_near(partial_trace(joint, {0}, 2), rho_b, 1e-10);
}

TEST(PartialTrace, PreservesTrace) {
  Rng rng(4);
  const Matrix rho = random_density(8, rng);
  for (const auto& traced : std::vector<std::vector<int>>{{0}, {1}, {2}, {0, 2}}) {
    const Matrix red = partial_trace(rho, traced, 3);
    EXPECT_NEAR(red.trace().real(), 1.0, 1e-10);
  }
}

TEST(PartialTrace, BellStateGivesMaximallyMixed) {
  const Vector bell = {Cplx{kInvSqrt2, 0}, Cplx{0, 0}, Cplx{0, 0}, Cplx{kInvSqrt2, 0}};
  const Matrix red = partial_trace(density(bell), {0}, 2);
  expect_matrix_near(red, 0.5 * Matrix::identity(2), 1e-12);
}

TEST(PartialTrace, TraceAllButOneOfGhz) {
  // GHZ: reduced single-qubit state is the classical mixture of |0>,|1>.
  Vector ghz(8, Cplx{0, 0});
  ghz[0] = Cplx{kInvSqrt2, 0};
  ghz[7] = Cplx{kInvSqrt2, 0};
  const Matrix red = partial_trace(density(ghz), {0, 1}, 3);
  Matrix expected(2, 2);
  expected(0, 0) = Cplx{0.5, 0};
  expected(1, 1) = Cplx{0.5, 0};
  expect_matrix_near(red, expected, 1e-12);
}

TEST(ReducedDensity, KeepsRequestedOrder) {
  Rng rng(5);
  const Matrix rho_a = random_density(2, rng);
  const Matrix rho_b = random_density(2, rng);
  const Matrix joint = kron(rho_a, rho_b);
  // Keeping {1, 0} must swap the factors.
  const Matrix red = reduced_density(joint, {1, 0}, 2);
  expect_matrix_near(red, kron(rho_b, rho_a), 1e-10);
}

TEST(ReducedDensity, PureStateOverload) {
  Rng rng(6);
  const Vector a = random_statevector(2, rng);
  const Vector b = random_statevector(2, rng);
  const Vector joint = kron(a, b);
  expect_matrix_near(reduced_density(joint, {0}, 2), density(a), 1e-10);
}

TEST(PartialTrace, RejectsBadArguments) {
  const Matrix rho = Matrix::identity(4);
  EXPECT_THROW(partial_trace(rho, {2}, 2), Error);
  EXPECT_THROW(partial_trace(rho, {0, 0}, 2), Error);
  EXPECT_THROW(partial_trace(Matrix::identity(3), {0}, 2), Error);
}

}  // namespace
}  // namespace qcut
