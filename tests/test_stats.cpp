// Streaming statistics used by the experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "qcut/common/error.hpp"
#include "qcut/common/rng.hpp"
#include "qcut/common/stats.hpp"

namespace qcut {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<Real> xs = {1.0, 2.5, -3.0, 4.25, 0.0, 7.5};
  RunningStats rs;
  for (Real x : xs) {
    rs.add(x);
  }
  Real mean = 0.0;
  for (Real x : xs) {
    mean += x;
  }
  mean /= static_cast<Real>(xs.size());
  Real var = 0.0;
  for (Real x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<Real>(xs.size() - 1);

  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(var), 1e-12);
  EXPECT_NEAR(rs.sem(), std::sqrt(var / static_cast<Real>(xs.size())), 1e-12);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), 7.5);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(5.0);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const Real x = rng.normal() * 3.0 + 1.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(WeightedStats, TracksWeightedSamples) {
  WeightedStats ws;
  ws.add(1.0, 3.0);   // 3
  ws.add(-1.0, 3.0);  // -3
  EXPECT_NEAR(ws.estimate(), 0.0, 1e-12);
  EXPECT_NEAR(ws.variance(), 18.0, 1e-12);  // samples 3, -3
}

TEST(LinearFit, ExactLine) {
  const std::vector<Real> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<Real> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  Rng rng(4);
  std::vector<Real> x, y;
  for (int i = 0; i < 500; ++i) {
    const Real xi = static_cast<Real>(i) / 50.0;
    x.push_back(xi);
    y.push_back(-0.5 * xi + 2.0 + 0.01 * rng.normal());
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1.0}, {2.0}), Error);
  EXPECT_THROW(linear_fit({1.0, 2.0}, {1.0}), Error);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.77);  // bin 3
  h.add(-5.0);  // clamps to bin 0
  h.add(5.0);   // clamps to bin 3
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_NEAR(h.bin_lo(1), 0.25, 1e-12);
  EXPECT_NEAR(h.bin_hi(1), 0.5, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace qcut
