// Gate library and circuit IR.
#include <gtest/gtest.h>

#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/sim/circuit.hpp"
#include "qcut/sim/gates.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

using testing::expect_matrix_near;

TEST(Gates, AllUnitary) {
  for (const Matrix& g : {gates::h(), gates::x(), gates::y(), gates::z(), gates::s(),
                          gates::sdg(), gates::t(), gates::tdg(), gates::cx(), gates::cz(),
                          gates::swap(), gates::rx(0.7), gates::ry(1.3), gates::rz(-2.1),
                          gates::phase(0.4), gates::u3(0.3, 1.1, -0.6)}) {
    EXPECT_TRUE(g.is_unitary(1e-12));
  }
}

TEST(Gates, KnownIdentities) {
  expect_matrix_near(gates::h() * gates::h(), Matrix::identity(2), 1e-12);
  expect_matrix_near(gates::s() * gates::sdg(), Matrix::identity(2), 1e-12);
  expect_matrix_near(gates::t() * gates::t(), gates::s(), 1e-12);
  // HZH = X.
  expect_matrix_near(gates::h() * gates::z() * gates::h(), gates::x(), 1e-12);
  // (SH) Z (SH)† = Y — the identity behind U2 in Theorem 2 (Eq. 65).
  const Matrix u2 = gates::s() * gates::h();
  expect_matrix_near(u2 * gates::z() * u2.dagger(), gates::y(), 1e-12);
}

TEST(Gates, RotationsAtSpecialAngles) {
  expect_matrix_near(gates::rx(0.0), Matrix::identity(2), 1e-12);
  // Ry(π)|0⟩ = |1⟩.
  const Vector v = gates::ry(kPi) * basis_vector(2, 0);
  EXPECT_NEAR(std::abs(v[1]), 1.0, 1e-12);
  // Rz(θ) is diagonal.
  const Matrix rz = gates::rz(0.8);
  EXPECT_NEAR(std::abs(rz(0, 1)), 0.0, 1e-14);
}

TEST(Gates, ControlledConstruction) {
  expect_matrix_near(gates::controlled(gates::x()), gates::cx(), 1e-12);
  expect_matrix_near(gates::controlled(gates::z()), gates::cz(), 1e-12);
  EXPECT_THROW(gates::controlled(Matrix::identity(4)), Error);
}

TEST(Gates, PrepUnitaryMapsZeroToState) {
  Rng rng(1);
  for (Index dim : {2, 4, 8}) {
    const Vector target = random_statevector(dim, rng);
    const Matrix u = gates::prep_unitary(target);
    EXPECT_TRUE(u.is_unitary(1e-9)) << "dim=" << dim;
    const Vector got = u * basis_vector(dim, 0);
    for (std::size_t i = 0; i < target.size(); ++i) {
      EXPECT_NEAR(std::abs(got[i] - target[i]), 0.0, 1e-9);
    }
  }
  EXPECT_THROW(gates::prep_unitary(Vector{Cplx{2, 0}, Cplx{0, 0}}), Error);
  EXPECT_THROW(gates::prep_unitary(Vector{Cplx{1, 0}, Cplx{0, 0}, Cplx{0, 0}}), Error);
}

TEST(Circuit, BuilderValidation) {
  Circuit c(2, 1);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.measure(0, 1), Error);
  EXPECT_THROW(c.cx(0, 0), Error);
  EXPECT_THROW(c.gate(Matrix::identity(4), {0}), Error);
  EXPECT_THROW(c.gate_if(1, gates::x(), {0}), Error);
  EXPECT_THROW(c.initialize({0}, Vector{Cplx{1, 0}, Cplx{1, 0}}), Error);  // unnormalized
}

TEST(Circuit, ToUnitaryComposesInOrder) {
  Circuit c(1, 0);
  c.h(0).z(0);
  // Z·H applied in circuit order.
  expect_matrix_near(c.to_unitary(), gates::z() * gates::h(), 1e-12);
}

TEST(Circuit, ToUnitaryMultiQubit) {
  Circuit c(2, 0);
  c.h(0).cx(0, 1);
  const Matrix expected = gates::cx() * kron(gates::h(), Matrix::identity(2));
  expect_matrix_near(c.to_unitary(), expected, 1e-12);
}

TEST(Circuit, ToUnitaryRejectsMeasurement) {
  Circuit c(1, 1);
  c.measure(0, 0);
  EXPECT_THROW(c.to_unitary(), Error);
}

TEST(Circuit, AppendOffsetsIndices) {
  Circuit inner(1, 1);
  inner.h(0).measure(0, 0);
  Circuit outer(3, 2);
  outer.append(inner, /*qubit_offset=*/2, /*cbit_offset=*/1);
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.ops()[0].qubits[0], 2);
  EXPECT_EQ(outer.ops()[1].cbit, 1);
  EXPECT_THROW(outer.append(inner, 3, 0), Error);
}

TEST(Circuit, CountMeasurements) {
  Circuit c(2, 2);
  c.h(0).measure(0, 0).measure(1, 1);
  EXPECT_EQ(c.count_measurements(), 2);
}

TEST(Circuit, ToStringListsOps) {
  Circuit c(2, 1);
  c.h(0).cx(0, 1).measure(1, 0).x_if(0, 0);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("H"), std::string::npos);
  EXPECT_NE(s.find("CX"), std::string::npos);
  EXPECT_NE(s.find("measure -> c0"), std::string::npos);
  EXPECT_NE(s.find("if c0"), std::string::npos);
}

TEST(Circuit, RejectsUnsupportedSizes) {
  EXPECT_THROW(Circuit(0, 0), Error);
  EXPECT_THROW(Circuit(Circuit::kMaxQubits + 1, 0), Error);
  EXPECT_THROW(Circuit(1, -1), Error);
}

TEST(Circuit, IrWidthExceedsSimulableWidth) {
  // The IR holds circuits far wider than any monolithic statevector: wide
  // circuits are built here and *executed* fragment-locally. Dense-unitary
  // conversion of a wide circuit must fail loudly, not bad_alloc.
  Circuit wide(30, 0);
  wide.h(0);
  for (int q = 0; q + 1 < 30; ++q) {
    wide.cx(q, q + 1);
  }
  EXPECT_EQ(wide.n_qubits(), 30);
  EXPECT_THROW(wide.to_unitary(), Error);
}

}  // namespace
}  // namespace qcut
