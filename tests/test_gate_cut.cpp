// Gate cutting (Mitarai-Fujii virtual ZZ gate) — Sec. V's alternative
// technique, implemented as a comparison substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "qcut/common/stats.hpp"
#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/cut/gate_cut.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/pauli.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/qpd/estimator.hpp"
#include "qcut/sim/gates.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

using testing::expect_matrix_near;

Matrix zz_unitary(Real theta) {
  return Cplx{std::cos(theta), 0.0} * Matrix::identity(4) +
         Cplx{0.0, std::sin(theta)} * kron(pauli_z(), pauli_z());
}

class ZzThetaTest : public ::testing::TestWithParam<Real> {};

TEST_P(ZzThetaTest, ReconstructsTheGateChannelExactly) {
  const Real theta = GetParam();
  const Matrix u = zz_unitary(theta);
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const Matrix rho = random_density(4, rng);
    expect_matrix_near(zz_gate_cut_reconstruct(theta, rho), u * rho * u.dagger(), 1e-10,
                       "MF identity");
  }
}

TEST_P(ZzThetaTest, KappaFormula) {
  const Real theta = GetParam();
  Real kappa = 0.0;
  Real sum = 0.0;
  for (const auto& t : zz_gate_cut_terms(theta)) {
    kappa += std::abs(t.coefficient);
    sum += t.coefficient;
  }
  EXPECT_NEAR(kappa, zz_gate_cut_overhead(theta), 1e-12);
  EXPECT_NEAR(sum, 1.0, 1e-12);  // cos² + sin² (signed terms cancel)
}

INSTANTIATE_TEST_SUITE_P(Angles, ZzThetaTest,
                         ::testing::Values(0.0, 0.1, kPi / 8, kPi / 4, -kPi / 4, 1.0),
                         [](const ::testing::TestParamInfo<Real>& info) {
                           return "theta" +
                                  std::to_string(static_cast<int>(std::round(
                                      (info.param + 2.0) * 1000)));
                         });

TEST(GateCut, CzOverheadIsThree) {
  EXPECT_NEAR(zz_gate_cut_overhead(kPi / 4.0), 3.0, 1e-12);
  EXPECT_NEAR(zz_gate_cut_overhead(-kPi / 4.0), 3.0, 1e-12);
  EXPECT_NEAR(zz_gate_cut_overhead(0.0), 1.0, 1e-12);  // identity gate is free
}

TEST(GateCut, CutZzInsideCircuitMatchesUncut) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    Circuit circ(3, 0);
    circ.gate(haar_unitary(8, rng), {0, 1, 2}, "U");
    // Reference: same circuit WITH the ZZ gate on (0, 2).
    const Real theta = rng.uniform(-1.5, 1.5);
    Circuit with_gate(3, 0);
    with_gate.gate(circ.ops()[0].matrix, {0, 1, 2}, "U");
    with_gate.gate(zz_unitary(theta), {0, 2}, "ZZ");

    const Qpd qpd = cut_zz_gate(circ, /*pos=*/1, 0, 2, theta, "ZXZ");
    EXPECT_NEAR(exact_value(qpd), uncut_circuit_expectation(with_gate, "ZXZ"), 1e-9)
        << "theta=" << theta;
  }
}

TEST(GateCut, CutCzMatchesRealCz) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Circuit base(2, 0);
    base.gate(haar_unitary(4, rng), {0, 1}, "U");
    Circuit with_cz(2, 0);
    with_cz.gate(base.ops()[0].matrix, {0, 1}, "U");
    with_cz.cz(0, 1);
    for (const std::string& obs : {"ZZ", "XI", "YX"}) {
      const Qpd qpd = cut_cz_gate(base, /*pos=*/1, 0, 1, obs);
      EXPECT_NEAR(exact_value(qpd), uncut_circuit_expectation(with_cz, obs), 1e-9) << obs;
      EXPECT_NEAR(qpd.kappa(), 3.0, 1e-10);
    }
  }
}

TEST(GateCut, SignedEstimatorConverges) {
  // Sampling through the signed-measurement branches stays unbiased.
  Rng rng(4);
  Circuit base(2, 0);
  base.h(0).h(1);
  Circuit with_cz(2, 0);
  with_cz.h(0).h(1).cz(0, 1);
  const Qpd qpd = cut_cz_gate(base, 2, 0, 1, "XX");
  const auto probs = exact_term_prob_one(qpd);
  const Real target = uncut_circuit_expectation(with_cz, "XX");

  RunningStats stats;
  for (int t = 0; t < 300; ++t) {
    Rng trng(5, static_cast<std::uint64_t>(t));
    stats.add(estimate_sampled_fast(qpd, probs, 400, trng).estimate);
  }
  EXPECT_NEAR(stats.mean(), target, 5.0 * stats.sem() + 1e-6);
}

TEST(GateCut, TermStructure) {
  // θ generic: 6 branches; θ = 0: the rotation part vanishes.
  EXPECT_EQ(zz_gate_cut_terms(0.7).size(), 6u);
  EXPECT_EQ(zz_gate_cut_terms(0.0).size(), 2u);
  // Gate-cut branches never consume entangled pairs. (The Qpd must be bound
  // to a local: ranging over `temporary.terms()` dangles — the temporary dies
  // before the loop body runs.)
  Circuit base(2, 0);
  base.h(0);
  const Qpd qpd = cut_zz_gate(base, 1, 0, 1, 0.5, "ZZ");
  for (const auto& term : qpd.terms()) {
    EXPECT_EQ(term.entangled_pairs, 0);
  }
}

TEST(GateCut, BranchesAreLocal) {
  // No multi-qubit unitary touches both gate qubits in any branch.
  Circuit base(2, 0);
  base.h(0).h(1);
  const Qpd qpd = cut_zz_gate(base, 2, 0, 1, 0.9, "ZZ");
  for (const auto& term : qpd.terms()) {
    for (const auto& op : term.circuit.ops()) {
      if (op.kind == OpKind::kUnitary) {
        EXPECT_LE(op.qubits.size(), 1u) << term.label << ": non-local op in gate-cut branch";
      }
    }
  }
}

TEST(GateCut, RejectsInvalidRequests) {
  Circuit base(2, 0);
  base.h(0);
  EXPECT_THROW(cut_zz_gate(base, 0, 0, 0, 0.5, "ZZ"), Error);  // same qubit
  EXPECT_THROW(cut_zz_gate(base, 5, 0, 1, 0.5, "ZZ"), Error);  // bad position
  EXPECT_THROW(cut_zz_gate(base, 0, 0, 1, 0.5, "Z"), Error);   // wrong obs length
  EXPECT_THROW(cut_zz_gate(base, 0, 0, 1, 0.5, "II"), Error);  // identity obs
}

}  // namespace
}  // namespace qcut
