// RNG: determinism, stream independence, and distributional sanity of the
// samplers the Monte-Carlo machinery relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "qcut/common/rng.hpp"

namespace qcut {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamsAreDistinct) {
  Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(8);
  Real sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Real u = rng.uniform();
    sum += u;
    sumsq += u * u;
  }
  const Real mean = sum / n;
  const Real var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(9);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int total = 70000;
  for (int i = 0; i < total; ++i) {
    ++counts[rng.uniform_u64(n)];
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<Real>(counts[i]) / total, 1.0 / static_cast<Real>(n), 0.01);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  Real sum = 0.0, sumsq = 0.0, sumc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.normal();
    sum += x;
    sumsq += x * x;
    sumc += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
  EXPECT_NEAR(sumc / n, 0.0, 0.05);  // symmetry
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

class BinomialMomentsTest : public ::testing::TestWithParam<std::pair<std::uint64_t, Real>> {};

TEST_P(BinomialMomentsTest, MeanAndVariance) {
  const auto [n, p] = GetParam();
  Rng rng(12);
  const int trials = 20000;
  Real sum = 0.0, sumsq = 0.0;
  for (int t = 0; t < trials; ++t) {
    const Real x = static_cast<Real>(rng.binomial(n, p));
    ASSERT_LE(x, static_cast<Real>(n));
    sum += x;
    sumsq += x * x;
  }
  const Real mean = sum / trials;
  const Real var = sumsq / trials - mean * mean;
  const Real true_mean = static_cast<Real>(n) * p;
  const Real true_var = true_mean * (1.0 - p);
  const Real mean_tol = 5.0 * std::sqrt(true_var / trials) + 1e-9;
  EXPECT_NEAR(mean, true_mean, std::max(mean_tol, 0.02 * true_mean + 0.01));
  EXPECT_NEAR(var, true_var, std::max(0.08 * true_var, 0.05));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLarge, BinomialMomentsTest,
                         ::testing::Values(std::pair<std::uint64_t, Real>{10, 0.5},
                                           std::pair<std::uint64_t, Real>{10, 0.05},
                                           std::pair<std::uint64_t, Real>{1000, 0.01},
                                           std::pair<std::uint64_t, Real>{1000, 0.5},
                                           std::pair<std::uint64_t, Real>{5000, 0.9},
                                           std::pair<std::uint64_t, Real>{100, 0.99}));

TEST(Rng, BinomialEdgeCases) {
  Rng rng(13);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(14);
  const std::vector<Real> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(w.size(), 0);
  const int total = 100000;
  for (int i = 0; i < total; ++i) {
    ++counts[rng.categorical(w)];
  }
  EXPECT_NEAR(counts[0] / static_cast<Real>(total), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<Real>(total), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<Real>(total), 0.6, 0.01);
}

TEST(Rng, MultinomialSumsToN) {
  Rng rng(15);
  const std::vector<Real> p = {0.2, 0.5, 0.3};
  for (int t = 0; t < 100; ++t) {
    const auto counts = multinomial(rng, 1234, p);
    std::uint64_t sum = 0;
    for (auto c : counts) {
      sum += c;
    }
    ASSERT_EQ(sum, 1234u);
  }
}

TEST(Rng, MultinomialMarginals) {
  Rng rng(16);
  const std::vector<Real> p = {0.25, 0.5, 0.25};
  std::vector<Real> mean(p.size(), 0.0);
  const int trials = 5000;
  const std::uint64_t n = 400;
  for (int t = 0; t < trials; ++t) {
    const auto counts = multinomial(rng, n, p);
    for (std::size_t i = 0; i < p.size(); ++i) {
      mean[i] += static_cast<Real>(counts[i]);
    }
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, static_cast<Real>(n) * p[i], 1.5);
  }
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(77);
  Rng b = a;
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitmixKnownValue) {
  // First output from state 0 is a fixed published value of splitmix64.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace qcut
