// Shared test utilities.
#pragma once

#include <gtest/gtest.h>

#include "qcut/linalg/matrix.hpp"

namespace qcut::testing {

inline void expect_matrix_near(const Matrix& a, const Matrix& b, Real tol = 1e-9,
                               const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_TRUE(a.approx_equal(b, tol)) << what << "\nlhs =\n"
                                      << a.to_string() << "\nrhs =\n"
                                      << b.to_string();
}

inline void expect_vector_near(const Vector& a, const Vector& b, Real tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "entry " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "entry " << i;
  }
}

}  // namespace qcut::testing
