// Shared test utilities.
#pragma once

#include <gtest/gtest.h>

#include "qcut/linalg/matrix.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/sim/circuit.hpp"

namespace qcut::testing {

/// h(0), cx(0,1), ..., cx(n-2,n-1): the canonical chain workload of the
/// cutter and planner suites.
inline Circuit ghz_line(int n) {
  Circuit c(n, 0);
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  return c;
}

/// Random mix of Haar 1- and 2-qubit (nearest-neighbor) gates.
inline Circuit random_unitary_circuit(int n, int depth, Rng& rng) {
  Circuit c(n, 0);
  for (int d = 0; d < depth; ++d) {
    if (n >= 2 && rng.bernoulli(0.5)) {
      const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n - 1)));
      c.gate(haar_unitary(4, rng), {q, q + 1}, "U2");
    } else {
      const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      c.gate(haar_unitary(2, rng), {q}, "U1");
    }
  }
  return c;
}

inline void expect_matrix_near(const Matrix& a, const Matrix& b, Real tol = 1e-9,
                               const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_TRUE(a.approx_equal(b, tol)) << what << "\nlhs =\n"
                                      << a.to_string() << "\nrhs =\n"
                                      << b.to_string();
}

inline void expect_vector_near(const Vector& a, const Vector& b, Real tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "entry " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "entry " << i;
  }
}

}  // namespace qcut::testing
