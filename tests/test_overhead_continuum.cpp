// Theorem 1 / Corollary 1 formulas and the continuum analysis.
#include <gtest/gtest.h>

#include "qcut/core/continuum.hpp"
#include "qcut/core/overhead.hpp"
#include "qcut/ent/measures.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/random.hpp"

namespace qcut {
namespace {

TEST(Overhead, Theorem1Endpoints) {
  EXPECT_NEAR(optimal_overhead_from_f(0.5), 3.0, 1e-12);  // γ(I) = 3 without entanglement
  EXPECT_NEAR(optimal_overhead_from_f(1.0), 1.0, 1e-12);  // free teleportation
  EXPECT_THROW(optimal_overhead_from_f(0.4), Error);
  EXPECT_THROW(optimal_overhead_from_f(1.2), Error);
}

TEST(Overhead, Corollary1MatchesTheorem1ThroughEq10) {
  for (Real k = 0.0; k <= 1.0 + 1e-12; k += 0.1) {
    EXPECT_NEAR(optimal_overhead_phi_k(k), optimal_overhead_from_f(f_phi_k(k)), 1e-10)
        << "k=" << k;
  }
}

TEST(Overhead, PureStateOverheadIsLocalUnitaryInvariant) {
  Rng rng(1);
  const Real k = 0.45;
  const Vector psi = kron(haar_unitary(2, rng), haar_unitary(2, rng)) * phi_k_state(k);
  EXPECT_NEAR(optimal_overhead_pure(psi), optimal_overhead_phi_k(k), 1e-7);
}

TEST(Overhead, VirtualDistillationSharesTheFormula) {
  // Eq. 17 and Theorem 1 agree — that equality is the theorem's content.
  for (Real f : {0.5, 0.7, 0.9, 1.0}) {
    EXPECT_EQ(virtual_distillation_overhead(f), optimal_overhead_from_f(f));
  }
}

TEST(Overhead, ShotAccuracyRelations) {
  EXPECT_NEAR(shots_for_accuracy(3.0, 0.1), 900.0, 1e-9);
  EXPECT_NEAR(accuracy_for_shots(3.0, 900.0), 0.1, 1e-12);
  // Round trip.
  const Real eps = accuracy_for_shots(1.8, shots_for_accuracy(1.8, 0.05));
  EXPECT_NEAR(eps, 0.05, 1e-12);
  EXPECT_THROW(shots_for_accuracy(3.0, 0.0), Error);
  EXPECT_THROW(accuracy_for_shots(3.0, 0.0), Error);
}

TEST(Overhead, PairConsumptionIdentities) {
  // 2a = 1/f (Sec. III): the paper's ⟨Φ|Φk|Φ⟩⁻¹ pair weight.
  for (Real k : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(pair_consumption_weight(k), 1.0 / f_phi_k(k), 1e-12);
  }
  // At k = 1 every sample teleports: exactly one pair per sample.
  EXPECT_NEAR(expected_pairs_per_sample_phi_k(1.0), 1.0, 1e-12);
  // At k = 0: 2a/κ = 2/3 of samples are (useless) teleport branches.
  EXPECT_NEAR(expected_pairs_per_sample_phi_k(0.0), 2.0 / 3.0, 1e-12);
}

TEST(Continuum, PointFieldsConsistent) {
  for (Real f : {0.5, 0.6, 0.75, 0.9, 1.0}) {
    const ContinuumPoint p = continuum_point(f);
    EXPECT_NEAR(p.f, f, 1e-12);
    EXPECT_NEAR(f_phi_k(p.k), f, 1e-9);
    EXPECT_NEAR(p.kappa, 2.0 / f - 1.0, 1e-10);
    EXPECT_NEAR(p.shots_rel, p.kappa * p.kappa, 1e-9);
    EXPECT_NEAR(p.pairs_weight, 1.0 / f, 1e-9);
  }
}

TEST(Continuum, SweepIsMonotone) {
  const auto sweep = continuum_sweep(11);
  ASSERT_EQ(sweep.size(), 11u);
  EXPECT_NEAR(sweep.front().f, 0.5, 1e-12);
  EXPECT_NEAR(sweep.back().f, 1.0, 1e-12);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].kappa, sweep[i - 1].kappa);       // overhead falls
    EXPECT_GT(sweep[i].k, sweep[i - 1].k);               // entanglement rises
    EXPECT_LT(sweep[i].pairs_weight, sweep[i - 1].pairs_weight);  // fewer pairs per estimate
  }
  EXPECT_THROW(continuum_sweep(1), Error);
}

TEST(Continuum, BudgetPlanner) {
  // High entanglement: ε = 0.1 needs κ²/ε² = 100 shots, 1 pair each.
  const BudgetPlan rich = plan_budget(1.0, 0.1, 200.0);
  EXPECT_NEAR(rich.shots_needed, 100.0, 1e-9);
  EXPECT_NEAR(rich.pairs_needed, 100.0, 1e-9);
  EXPECT_TRUE(rich.feasible);

  // Same accuracy with f = 0.6 costs κ = 2/0.6−1 ≈ 2.33 → ~544 shots.
  const BudgetPlan poor = plan_budget(0.6, 0.1, 200.0);
  EXPECT_GT(poor.shots_needed, rich.shots_needed);
  EXPECT_FALSE(poor.feasible);
  EXPECT_THROW(plan_budget(0.9, 0.1, -1.0), Error);
}

}  // namespace
}  // namespace qcut
