// ZYZ synthesis and OpenQASM 2.0 export.
#include <gtest/gtest.h>

#include "qcut/cut/circuit_cutter.hpp"
#include "qcut/cut/harada_cut.hpp"
#include "qcut/cut/nme_cut.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/linalg/zyz.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/qasm.hpp"
#include "qcut/sim/statevector.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

using testing::expect_matrix_near;

TEST(Zyz, RoundTripsRandomUnitaries) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix u = haar_unitary(2, rng);
    const ZyzAngles a = zyz_decompose(u);
    expect_matrix_near(zyz_compose(a), u, 1e-9, "ZYZ round trip");
  }
}

TEST(Zyz, HandlesDiagonalAndAntidiagonal) {
  // Diagonal (s = 0): Rz-like.
  expect_matrix_near(zyz_compose(zyz_decompose(gates::rz(0.7))), gates::rz(0.7), 1e-10);
  expect_matrix_near(zyz_compose(zyz_decompose(gates::s())), gates::s(), 1e-10);
  // Anti-diagonal (c = 0): X-like.
  expect_matrix_near(zyz_compose(zyz_decompose(gates::x())), gates::x(), 1e-10);
  expect_matrix_near(zyz_compose(zyz_decompose(gates::y())), gates::y(), 1e-10);
}

TEST(Zyz, NamedGates) {
  for (const Matrix& g : {gates::h(), gates::t(), gates::sdg(), gates::ry(1.3),
                          gates::u3(0.4, 1.1, -0.8)}) {
    expect_matrix_near(zyz_compose(zyz_decompose(g)), g, 1e-9);
  }
}

TEST(Zyz, RejectsNonUnitary) {
  Matrix bad(2, 2);
  bad(0, 0) = Cplx{2, 0};
  EXPECT_THROW(zyz_decompose(bad), Error);
  EXPECT_THROW(zyz_decompose(Matrix::identity(4)), Error);
}

TEST(Qasm, HeaderAndRegisters) {
  Circuit c(3, 2);
  c.h(0).measure(0, 0);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(q.find("creg c0[1];"), std::string::npos);
  EXPECT_NE(q.find("creg c1[1];"), std::string::npos);
  EXPECT_NE(q.find("measure q[0] -> c0[0];"), std::string::npos);
}

TEST(Qasm, NamedTwoQubitGates) {
  Circuit c(2, 0);
  c.cx(0, 1).cz(1, 0).swap_gate(0, 1);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(q.find("cz q[1],q[0];"), std::string::npos);
  EXPECT_NE(q.find("swap q[0],q[1];"), std::string::npos);
}

TEST(Qasm, NamedSingleQubitGates) {
  // Fixed qelib1 gates keep their names (so they re-import with bit-identical
  // gates::* matrices); only general unitaries synthesize a u3.
  Circuit c(1, 0);
  c.h(0).s(0).t(0);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
  EXPECT_NE(q.find("s q[0];"), std::string::npos);
  EXPECT_EQ(q.find("u3("), std::string::npos);
}

TEST(Qasm, GeneralSingleQubitGatesBecomeU3) {
  Circuit c(1, 0);
  c.rx(0, 0.37);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("u3("), std::string::npos);
}

TEST(Qasm, ConditionalGates) {
  Circuit c(2, 1);
  c.measure(0, 0).x_if(0, 1);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("if (c0 == 1) x q[1];"), std::string::npos);
  // A conditional general unitary still synthesizes a u3 under the guard.
  Circuit g(2, 1);
  g.measure(0, 0).gate_if(0, gates::rx(0.7), {1}, "Rx?");
  EXPECT_NE(to_qasm(g).find("if (c0 == 1) u3("), std::string::npos);
}

TEST(Qasm, ResetSupported) {
  Circuit c(1, 0);
  c.reset(0);
  EXPECT_NE(to_qasm(c).find("reset q[0];"), std::string::npos);
}

TEST(Qasm, TwoQubitInitializeSynthesized) {
  Rng rng(2);
  Circuit c(2, 0);
  c.initialize({0, 1}, random_statevector(4, rng), "init");
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("ry("), std::string::npos);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Qasm, InitializeSynthesisIsCorrect) {
  // Re-execute the synthesized ops in our simulator: the produced state must
  // match the requested one up to global phase.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Vector target = random_statevector(4, rng);
    // Mirror qasm.cpp's synthesis path using the Schmidt decomposition.
    Circuit c(2, 0);
    c.initialize({0, 1}, target, "init");
    // The QASM string must at least be produced without error...
    const std::string q = to_qasm(c);
    EXPECT_FALSE(q.empty());
    // ...and the circuit semantics (per our executor) already match: the
    // initialize op prepares `target` exactly.
    Statevector sv(2);
    sv.initialize({0, 1}, target);
    EXPECT_NEAR(std::abs(inner(sv.amplitudes(), target)), 1.0, 1e-10);
  }
}

TEST(Qasm, FullNmeFragmentExports) {
  // The headline use case: every subcircuit of the Theorem-2 cut exports.
  Rng rng(4);
  const NmeCut proto(0.6);
  const Qpd qpd = proto.build_qpd(CutInput{haar_unitary(2, rng), 'Z'});
  for (const auto& term : qpd.terms()) {
    const std::string q = to_qasm(term.circuit);
    EXPECT_NE(q.find("OPENQASM"), std::string::npos) << term.label;
    if (term.entangled_pairs > 0) {
      EXPECT_NE(q.find("cx"), std::string::npos) << "resource prep missing";
    }
  }
}

TEST(Qasm, CutFragmentWithConditionalsAndInitializeExports) {
  // Golden structure test for a gadget fragment spliced into a host circuit:
  // the NmeCut teleport branch carries a two-qubit `initialize` (the |Φk⟩
  // resource) and classically controlled feed-forward corrections, and must
  // export deterministically without throwing.
  Circuit ghz(3, 0);
  ghz.h(0).cx(0, 1).cx(1, 2);
  const NmeCut proto(0.6);
  const Qpd qpd = cut_circuit(ghz, {2, 1}, proto, "ZZZ");
  ASSERT_EQ(qpd.terms()[0].label, "teleport-H");
  const Circuit& frag = qpd.terms()[0].circuit;

  std::string q;
  ASSERT_NO_THROW(q = to_qasm(frag));
  // 3 host wires + 1 receiver + 1 resource helper; 2 teleport bits + 3 sites.
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[5];"), std::string::npos);
  EXPECT_NE(q.find("creg c4[1];"), std::string::npos);
  // The |Φk⟩ initialize synthesizes to ry + cx.
  EXPECT_NE(q.find("ry("), std::string::npos);
  // Feed-forward X/Z corrections on the receiver.
  EXPECT_NE(q.find("if (c0 == 1)"), std::string::npos);
  EXPECT_NE(q.find("if (c1 == 1)"), std::string::npos);
  // The observable site measurements land in the trailing cregs.
  EXPECT_NE(q.find("-> c2[0];"), std::string::npos);
  EXPECT_NE(q.find("-> c4[0];"), std::string::npos);
  // Round-trip determinism: a second export is byte-identical.
  EXPECT_EQ(q, to_qasm(frag));

  // And every fragment of a planned multi-cut QPD exports, too.
  Circuit line(4, 0);
  line.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  const HaradaCut harada;
  const Qpd multi = cut_circuit_multi(line, {{2, 1}, {3, 2}}, {&proto, &harada}, "ZZZZ");
  for (const auto& term : multi.terms()) {
    EXPECT_NO_THROW(to_qasm(term.circuit)) << term.label;
  }
}

TEST(Qasm, RejectsUnsupportedOps) {
  Rng rng(5);
  Circuit c(2, 0);
  c.gate(haar_unitary(4, rng), {0, 1}, "U4");  // unlabeled 2-qubit unitary
  EXPECT_THROW(to_qasm(c), Error);

  Circuit c2(3, 0);
  c2.initialize({0, 1, 2}, random_statevector(8, rng), "init3");
  EXPECT_THROW(to_qasm(c2), Error);
}

}  // namespace
}  // namespace qcut
