// Purification of mixed states.
#include <gtest/gtest.h>

#include "qcut/ent/purify.hpp"
#include "qcut/linalg/bell.hpp"
#include "qcut/linalg/kron.hpp"
#include "qcut/linalg/ptrace.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/sim/noise.hpp"
#include "test_helpers.hpp"

namespace qcut {
namespace {

using testing::expect_matrix_near;

TEST(Purify, RoundTripsRandomDensities) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const Matrix rho = random_density(4, rng);
    const Vector psi = purify(rho, 2);
    ASSERT_EQ(psi.size(), 16u);
    EXPECT_NEAR(vec_norm(psi), 1.0, 1e-10);
    // Tracing out the two ancillas (qubits 2, 3 in big-endian layout)
    // recovers rho.
    const Matrix back = partial_trace(density(psi), {2, 3}, 4);
    expect_matrix_near(back, rho, 1e-7, "purification round trip");
  }
}

TEST(Purify, PureStateNeedsNoAncilla) {
  Rng rng(2);
  const Vector psi = random_statevector(4, rng);
  const Vector purified = purify(density(psi), 0);
  // Equal up to a global phase: overlap magnitude 1.
  EXPECT_NEAR(std::abs(inner(psi, purified)), 1.0, 1e-8);
}

TEST(Purify, SingleQubitMixedState) {
  Rng rng(3);
  const Matrix rho = random_density(2, rng);
  const Vector psi = purify(rho, 1);
  const Matrix back = partial_trace(density(psi), {1}, 2);
  expect_matrix_near(back, rho, 1e-8);
}

TEST(Purify, WernerStates) {
  for (Real p : {0.0, 0.3, 0.7, 1.0}) {
    const Matrix rho = noisy_phi_k(1.0, p);
    const Vector psi = purify(rho, 2);
    const Matrix back = partial_trace(density(psi), {2, 3}, 4);
    expect_matrix_near(back, rho, 1e-7, "Werner purification");
  }
}

TEST(Purify, AncillaCountByRank) {
  Rng rng(4);
  // Pure state: rank 1 → 0 ancillas.
  EXPECT_EQ(purification_ancillas(density(random_statevector(4, rng))), 0);
  // Rank-2 mixture → 1 ancilla.
  const Matrix rank2 = random_density(4, rng, 2);
  EXPECT_EQ(purification_ancillas(rank2), 1);
  // Full-rank four-dimensional state → 2 ancillas.
  EXPECT_EQ(purification_ancillas(random_density(4, rng)), 2);
}

TEST(Purify, RejectsInsufficientAncillas) {
  Rng rng(5);
  const Matrix full_rank = random_density(4, rng);
  EXPECT_THROW(purify(full_rank, 1), Error);
}

TEST(Purify, RejectsNonPsd) {
  Matrix bad = Matrix::identity(2);
  bad(1, 1) = Cplx{-0.5, 0};
  EXPECT_THROW(purify(bad, 1), Error);
}

}  // namespace
}  // namespace qcut
