// The Fig. 6 harness (scaled down): error ordering by entanglement level,
// 1/√N decay, determinism across pool sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "qcut/core/experiment.hpp"
#include "qcut/cut/distill_cut.hpp"

namespace qcut {
namespace {

Fig6Config small_config() {
  Fig6Config cfg;
  cfg.n_states = 60;
  cfg.shot_grid = {500, 2000, 4500};
  cfg.overlaps = {0.5, 0.8, 1.0};
  cfg.seed = 7;
  return cfg;
}

TEST(Fig6, RowLayout) {
  const auto rows = run_fig6(small_config());
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows[0].f, 0.5);
  EXPECT_EQ(rows[0].shots, 500u);
  EXPECT_EQ(rows[8].f, 1.0);
  EXPECT_EQ(rows[8].shots, 4500u);
  EXPECT_NEAR(rows[0].kappa, 3.0, 1e-10);
  EXPECT_NEAR(rows[8].kappa, 1.0, 1e-10);
}

TEST(Fig6, ErrorDecreasesWithShots) {
  const auto rows = run_fig6(small_config());
  // Within each overlap block, error at 4500 shots < error at 500 shots.
  for (std::size_t block = 0; block < 3; ++block) {
    const Real early = rows[block * 3 + 0].mean_error;
    const Real late = rows[block * 3 + 2].mean_error;
    EXPECT_LT(late, early) << "f=" << rows[block * 3].f;
  }
}

TEST(Fig6, HigherEntanglementGivesLowerError) {
  // The paper's headline ordering, at the largest shot count.
  const auto rows = run_fig6(small_config());
  const Real err_f05 = rows[2].mean_error;   // f=0.5, 4500 shots
  const Real err_f08 = rows[5].mean_error;   // f=0.8
  const Real err_f10 = rows[8].mean_error;   // f=1.0
  EXPECT_GT(err_f05, err_f08);
  EXPECT_GT(err_f08, err_f10);
}

TEST(Fig6, ErrorScalesRoughlyAsKappaOverSqrtShots) {
  // ε ≈ c·κ/√N with c O(1): check the ratio between f=0.5 and f=1.0 at equal
  // shots is near κ ratio 3 (loose bounds — finite-sample noise).
  Fig6Config cfg = small_config();
  cfg.n_states = 150;
  cfg.shot_grid = {4000};
  cfg.overlaps = {0.5, 1.0};
  const auto rows = run_fig6(cfg);
  const Real ratio = rows[0].mean_error / rows[1].mean_error;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 4.5);
}

TEST(Fig6, DeterministicAcrossPoolSizes) {
  ThreadPool p1(1), p4(4);
  const auto rows1 = run_fig6(small_config(), &p1);
  const auto rows4 = run_fig6(small_config(), &p4);
  ASSERT_EQ(rows1.size(), rows4.size());
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows1[i].mean_error, rows4[i].mean_error) << "row " << i;
  }
}

TEST(Fig6, SemShrinksWithMoreStates) {
  Fig6Config small = small_config();
  small.shot_grid = {1000};
  small.overlaps = {0.7};
  Fig6Config big = small;
  big.n_states = 240;
  const Real sem_small = run_fig6(small)[0].sem;
  const Real sem_big = run_fig6(big)[0].sem;
  EXPECT_LT(sem_big, sem_small);
}

TEST(Fig6, CustomProtocolFactory) {
  // Swapping in the distillation-based cut must give statistically similar
  // errors (same κ). Use the default NME run as reference.
  Fig6Config cfg = small_config();
  cfg.overlaps = {0.8};
  cfg.shot_grid = {2000};
  const auto nme_rows = run_fig6(cfg);

  cfg.protocol_factory = [](Real f) -> std::shared_ptr<const WireCutProtocol> {
    return std::make_shared<DistillCut>(DistillCut::from_overlap(f));
  };
  const auto distill_rows = run_fig6(cfg);
  ASSERT_EQ(distill_rows.size(), 1u);
  EXPECT_NEAR(distill_rows[0].kappa, nme_rows[0].kappa, 1e-9);
  EXPECT_NEAR(distill_rows[0].mean_error, nme_rows[0].mean_error,
              6.0 * (distill_rows[0].sem + nme_rows[0].sem));
}

TEST(Fig6, FormatterProducesBlocks) {
  const auto rows = run_fig6(small_config());
  const std::string s = format_fig6(rows);
  EXPECT_NE(s.find("f(Phi_k) = 0.500"), std::string::npos);
  EXPECT_NE(s.find("f(Phi_k) = 1.000"), std::string::npos);
  EXPECT_NE(s.find("kappa"), std::string::npos);
}

TEST(Fig6, RejectsEmptyConfig) {
  Fig6Config cfg = small_config();
  cfg.overlaps.clear();
  EXPECT_THROW(run_fig6(cfg), Error);
  cfg = small_config();
  cfg.shot_grid.clear();
  EXPECT_THROW(run_fig6(cfg), Error);
  cfg = small_config();
  cfg.n_states = 0;
  EXPECT_THROW(run_fig6(cfg), Error);
}

}  // namespace
}  // namespace qcut
