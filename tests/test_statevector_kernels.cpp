// Specialized statevector kernels: gate-structure classification pins, and
// the property test that the diagonal / permutation / dense dispatch paths
// agree with the generic gather path on random states to 1e-12 — including
// the n = 1 and qubit-adjacency edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "qcut/common/threadpool.hpp"
#include "qcut/linalg/random.hpp"
#include "qcut/sim/circuit.hpp"
#include "qcut/sim/gate_class.hpp"
#include "qcut/sim/gates.hpp"
#include "qcut/sim/simd_dispatch.hpp"
#include "qcut/sim/statevector.hpp"

namespace qcut {
namespace {

// ---- classification pins ----------------------------------------------------

TEST(GateClass, ClassifiesStandardGates) {
  EXPECT_EQ(classify_gate(gates::h()).structure, GateStructure::kGeneric);
  EXPECT_EQ(classify_gate(gates::y()).structure, GateStructure::kGeneric);
  EXPECT_EQ(classify_gate(gates::rx(0.3)).structure, GateStructure::kGeneric);

  EXPECT_EQ(classify_gate(gates::z()).structure, GateStructure::kDiagonal);
  EXPECT_EQ(classify_gate(gates::s()).structure, GateStructure::kDiagonal);
  EXPECT_EQ(classify_gate(gates::t()).structure, GateStructure::kDiagonal);
  EXPECT_EQ(classify_gate(gates::rz(0.7)).structure, GateStructure::kDiagonal);
  EXPECT_EQ(classify_gate(gates::cz()).structure, GateStructure::kDiagonal);
  EXPECT_EQ(classify_gate(gates::controlled(gates::phase(0.4))).structure,
            GateStructure::kDiagonal);

  EXPECT_EQ(classify_gate(gates::x()).structure, GateStructure::kPermutation);
  EXPECT_EQ(classify_gate(gates::cx()).structure, GateStructure::kPermutation);
  EXPECT_EQ(classify_gate(gates::swap()).structure, GateStructure::kPermutation);
}

TEST(GateClass, SparsePhaseDetection) {
  // z = diag(1, -1): one non-unit entry at sub-index 1.
  const GateClass z = classify_gate(gates::z());
  EXPECT_EQ(z.phase_index, 1);
  // cz = diag(1, 1, 1, -1): non-unit entry at sub-index 3.
  const GateClass cz = classify_gate(gates::cz());
  EXPECT_EQ(cz.phase_index, 3);
  // rz has two non-unit entries: a dense diagonal, no sparse phase.
  EXPECT_EQ(classify_gate(gates::rz(0.7)).phase_index, -1);
  // The identity is a sparse phase whose phase entry is 1 (a no-op).
  const GateClass id = classify_gate(Matrix::identity(2));
  EXPECT_EQ(id.structure, GateStructure::kDiagonal);
  EXPECT_GE(id.phase_index, 0);
}

TEST(GateClass, PermutationCyclesArePrecomputed) {
  const GateClass cx = classify_gate(gates::cx());
  ASSERT_EQ(cx.cycles.size(), 1u);
  EXPECT_EQ(cx.cycles[0], (std::vector<Index>{2, 3}));
  const GateClass sw = classify_gate(gates::swap());
  ASSERT_EQ(sw.cycles.size(), 1u);
  EXPECT_EQ(sw.cycles[0], (std::vector<Index>{1, 2}));
  // A 4-cycle: |s> -> |s+1 mod 4>.
  Matrix rot(4, 4);
  rot(1, 0) = rot(2, 1) = rot(3, 2) = rot(0, 3) = Cplx{1.0, 0.0};
  const GateClass rc = classify_gate(rot);
  ASSERT_EQ(rc.structure, GateStructure::kPermutation);
  ASSERT_EQ(rc.cycles.size(), 1u);
  EXPECT_EQ(rc.cycles[0].size(), 4u);
}

TEST(GateClass, NearZeroEntriesStayGeneric) {
  // Classification is by exact entry tests: an almost-diagonal matrix must
  // NOT classify as diagonal (the kernels would silently drop the residue).
  Matrix m = Matrix::identity(2);
  m(0, 1) = Cplx{1e-30, 0.0};
  EXPECT_EQ(classify_gate(m).structure, GateStructure::kGeneric);
}

// ---- kernel equivalence ----------------------------------------------------

/// Applies `u` on a copy of `sv` twice — once via the classified dispatch,
/// once forced down the dense path — and requires amplitude agreement.
void expect_kernel_equivalence(const Statevector& sv, const Matrix& u,
                               const std::vector<int>& qubits, const char* what) {
  const GateClass cls = classify_gate(u);
  const GateClass dense{};
  Statevector a = sv;
  Statevector b = sv;
  a.apply(u, qubits, cls);
  b.apply(u, qubits, dense);
  const Vector& va = a.amplitudes();
  const Vector& vb = b.amplitudes();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i].real(), vb[i].real(), 1e-12) << what << " amp " << i;
    EXPECT_NEAR(va[i].imag(), vb[i].imag(), 1e-12) << what << " amp " << i;
  }
}

Matrix random_diagonal(int k, Rng& rng, bool sparse) {
  const Index dim = Index{1} << k;
  Matrix m(dim, dim);
  for (Index i = 0; i < dim; ++i) {
    m(i, i) = Cplx{1.0, 0.0};
  }
  if (sparse) {
    const Index hot = static_cast<Index>(rng.uniform_u64(static_cast<std::uint64_t>(dim)));
    const Real phi = rng.uniform(0.0, 2.0 * kPi);
    m(hot, hot) = Cplx{std::cos(phi), std::sin(phi)};
  } else {
    for (Index i = 0; i < dim; ++i) {
      const Real phi = rng.uniform(0.0, 2.0 * kPi);
      m(i, i) = Cplx{std::cos(phi), std::sin(phi)};
    }
  }
  return m;
}

Matrix random_permutation_matrix(int k, Rng& rng) {
  const Index dim = Index{1} << k;
  std::vector<Index> perm(static_cast<std::size_t>(dim));
  for (Index i = 0; i < dim; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_u64(i)]);
  }
  Matrix m(dim, dim);
  for (Index s = 0; s < dim; ++s) {
    m(perm[static_cast<std::size_t>(s)], s) = Cplx{1.0, 0.0};
  }
  return m;
}

TEST(KernelEquivalence, SingleQubitOnOneQubitState) {
  // n = 1: the stride loops degenerate to a single group.
  Rng rng(5);
  const Statevector sv(1, random_statevector(2, rng));
  expect_kernel_equivalence(sv, gates::z(), {0}, "z n=1");
  expect_kernel_equivalence(sv, gates::x(), {0}, "x n=1");
  expect_kernel_equivalence(sv, gates::rz(0.9), {0}, "rz n=1");
  expect_kernel_equivalence(sv, random_diagonal(1, rng, false), {0}, "diag n=1");
}

TEST(KernelEquivalence, QubitAdjacencyEdgeCases) {
  // Two-qubit kernels across every adjacency shape: neighbors at the top,
  // neighbors at the bottom, the extreme non-neighbors, and reversed operand
  // order (sub-index convention: qubits[0] is the high bit).
  Rng rng(7);
  const int n = 6;
  const Statevector sv(n, random_statevector(Index{1} << n, rng));
  const std::vector<std::vector<int>> pairs = {
      {0, 1}, {1, 0}, {n - 2, n - 1}, {n - 1, n - 2}, {0, n - 1}, {n - 1, 0}, {2, 4}};
  for (const auto& qs : pairs) {
    const std::string tag = "pair {" + std::to_string(qs[0]) + "," + std::to_string(qs[1]) + "}";
    expect_kernel_equivalence(sv, gates::cx(), qs, (tag + " cx").c_str());
    expect_kernel_equivalence(sv, gates::swap(), qs, (tag + " swap").c_str());
    expect_kernel_equivalence(sv, gates::cz(), qs, (tag + " cz").c_str());
    expect_kernel_equivalence(sv, gates::controlled(gates::phase(0.8)), qs,
                              (tag + " cu1").c_str());
    expect_kernel_equivalence(sv, random_diagonal(2, rng, false), qs, (tag + " diag").c_str());
    expect_kernel_equivalence(sv, random_permutation_matrix(2, rng), qs,
                              (tag + " perm").c_str());
  }
}

TEST(KernelEquivalence, RandomGatesOnRandomStates) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_u64(7));  // 1..7
    const Statevector sv(n, random_statevector(Index{1} << n, rng));
    // Random qubit selection, k in 1..min(3, n), order shuffled.
    const int k = 1 + static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(
                          std::min(3, n))));
    std::vector<int> qs;
    while (static_cast<int>(qs.size()) < k) {
      const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
      bool dup = false;
      for (const int existing : qs) {
        dup = dup || existing == q;
      }
      if (!dup) {
        qs.push_back(q);
      }
    }
    const std::string tag = "trial " + std::to_string(trial);
    expect_kernel_equivalence(sv, random_diagonal(k, rng, /*sparse=*/false), qs,
                              (tag + " diag").c_str());
    expect_kernel_equivalence(sv, random_diagonal(k, rng, /*sparse=*/true), qs,
                              (tag + " sparse").c_str());
    expect_kernel_equivalence(sv, random_permutation_matrix(k, rng), qs,
                              (tag + " perm").c_str());
    expect_kernel_equivalence(sv, haar_unitary(Index{1} << k, rng), qs,
                              (tag + " haar").c_str());
  }
}

TEST(KernelEquivalence, CircuitBuilderClassificationMatchesOnTheFly) {
  // Ops classified once at build time must behave exactly like per-apply
  // classification: run the same gate sequence both ways.
  Rng rng(13);
  const int n = 5;
  Circuit c(n, 0);
  c.h(0).cx(0, 1).rz(1, 0.4).cz(1, 2).swap_gate(2, 3).t(4).cx(3, 4).z(0);
  Statevector via_ops(n, random_statevector(Index{1} << n, rng));
  Statevector via_fresh = via_ops;
  for (const Operation& op : c.ops()) {
    via_ops.apply(op.matrix, op.qubits, op.gclass);
    via_fresh.apply(op.matrix, op.qubits);
  }
  for (std::size_t i = 0; i < via_ops.amplitudes().size(); ++i) {
    EXPECT_EQ(via_ops.amplitudes()[i], via_fresh.amplitudes()[i]) << "amp " << i;
  }
}

TEST(KernelEquivalence, ProjectedMatchesCopyThenProject) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_u64(5));
    const Statevector sv(n, random_statevector(Index{1} << n, rng));
    for (int q = 0; q < n; ++q) {
      for (int outcome = 0; outcome <= 1; ++outcome) {
        Statevector copy = sv;
        copy.project(q, outcome);
        const Statevector one_pass = Statevector::projected(sv, q, outcome);
        for (std::size_t i = 0; i < copy.amplitudes().size(); ++i) {
          EXPECT_EQ(copy.amplitudes()[i], one_pass.amplitudes()[i])
              << "q=" << q << " outcome=" << outcome << " amp " << i;
        }
      }
    }
  }
}

TEST(KernelEquivalence, ZOnlyExpectationMatchesGenericPath) {
  // The I/Z fast path in expectation_pauli vs. the copy-and-apply route
  // (forced by including an X in a companion string on the same state).
  Rng rng(19);
  const int n = 4;
  const Statevector sv(n, random_statevector(Index{1} << n, rng));
  // Reference by explicit basis sweep.
  for (const std::string& pauli : {"ZZZZ", "ZIIZ", "IIII", "IZII"}) {
    Real expect = 0.0;
    for (Index i = 0; i < sv.dim(); ++i) {
      int parity = 0;
      for (int q = 0; q < n; ++q) {
        if (pauli[static_cast<std::size_t>(q)] == 'Z' && (i >> (n - 1 - q)) & 1) {
          parity ^= 1;
        }
      }
      const Real w = norm2(sv.amplitudes()[static_cast<std::size_t>(i)]);
      expect += parity ? -w : w;
    }
    EXPECT_NEAR(sv.expectation_pauli(pauli), expect, 1e-12) << pauli;
  }
}

// ---- SIMD tier equivalence --------------------------------------------------

/// Restores the dispatch tier on scope exit, so a failing assertion cannot
/// leak a forced tier into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(active_simd_tier()) {}
  ~TierGuard() { force_simd_tier(saved_); }

 private:
  SimdTier saved_;
};

/// A circuit mixing every kernel family: dense 1q/2q, diagonal (dense and
/// sparse-phase), and permutation gates, spread over all wires including the
/// LSB (the s == 1 pair-kernel path) and non-adjacent pairs.
Circuit kernel_mix_circuit(int n, int depth, Rng& rng) {
  Circuit c(n, 0);
  for (int d = 0; d < depth; ++d) {
    const int q = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    const int r = (q + 1 + static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n - 1)))) % n;
    switch (rng.uniform_u64(7)) {
      case 0:
        c.gate(haar_unitary(2, rng), {q}, "u1q");
        break;
      case 1:
        c.gate(haar_unitary(4, rng), {q, r}, "u2q");
        break;
      case 2:
        c.rz(q, rng.uniform(0.0, 2.0 * kPi));
        break;
      case 3:
        c.cz(q, r);
        break;
      case 4:
        c.cx(q, r);
        break;
      case 5:
        c.gate(random_diagonal(2, rng, /*sparse=*/false), {q, r}, "diag2");
        break;
      default:
        c.t(q);
        break;
    }
  }
  return c;
}

TEST(SimdTiers, EveryAvailableTierMatchesScalar) {
  // The same random circuit applied under each compiled-and-supported
  // dispatch tier must agree with the scalar tier on amplitudes, measurement
  // probabilities, projections, and Z expectations to 1e-12 (FMA contraction
  // reorders roundoff, so bit-identity across tiers is NOT required).
  TierGuard guard;
  Rng rng(29);
  const int n = 9;
  const Circuit c = kernel_mix_circuit(n, 60, rng);
  const Vector amps = random_statevector(Index{1} << n, rng);

  struct TierResult {
    Vector amp;
    std::vector<Real> probs;
    Real zexp = 0.0;
    Vector projected;
  };
  const auto run_under = [&](SimdTier tier) {
    force_simd_tier(tier);
    TierResult res;
    Statevector sv(n, amps);
    for (const Operation& op : c.ops()) {
      sv.apply(op.matrix, op.qubits, op.gclass);
    }
    res.amp = sv.amplitudes();
    for (int q = 0; q < n; ++q) {
      res.probs.push_back(sv.prob_one(q));
    }
    res.zexp = sv.expectation_pauli(std::string(static_cast<std::size_t>(n), 'Z'));
    sv.project(n - 1, 1);  // LSB wire: exercises the s == 1 project path
    sv.project(0, 0);
    res.projected = sv.amplitudes();
    return res;
  };

  const TierResult scalar = run_under(SimdTier::kScalar);
  int tiers_run = 1;
  for (const SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!simd_tier_available(tier)) {
      continue;
    }
    ++tiers_run;
    const TierResult got = run_under(tier);
    const char* name = simd_tier_name(tier);
    ASSERT_EQ(got.amp.size(), scalar.amp.size());
    for (std::size_t i = 0; i < got.amp.size(); ++i) {
      EXPECT_NEAR(got.amp[i].real(), scalar.amp[i].real(), 1e-12) << name << " amp " << i;
      EXPECT_NEAR(got.amp[i].imag(), scalar.amp[i].imag(), 1e-12) << name << " amp " << i;
    }
    for (int q = 0; q < n; ++q) {
      EXPECT_NEAR(got.probs[static_cast<std::size_t>(q)],
                  scalar.probs[static_cast<std::size_t>(q)], 1e-12)
          << name << " prob_one(" << q << ")";
    }
    EXPECT_NEAR(got.zexp, scalar.zexp, 1e-12) << name;
    for (std::size_t i = 0; i < got.projected.size(); ++i) {
      EXPECT_NEAR(got.projected[i].real(), scalar.projected[i].real(), 1e-12)
          << name << " projected amp " << i;
      EXPECT_NEAR(got.projected[i].imag(), scalar.projected[i].imag(), 1e-12)
          << name << " projected amp " << i;
    }
  }
  // On x86 CI runners at least AVX2 must actually have been exercised.
  RecordProperty("tiers_run", tiers_run);
}

TEST(SimdTiers, ForcingAnUnavailableTierThrows) {
  TierGuard guard;
  for (const SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!simd_tier_available(tier)) {
      EXPECT_THROW(force_simd_tier(tier), Error) << simd_tier_name(tier);
    }
  }
}

// ---- parallel sweep bit-identity --------------------------------------------

/// Restores the process-wide parallel config on scope exit.
class ParallelConfigGuard {
 public:
  ~ParallelConfigGuard() { Statevector::set_parallel_config(nullptr, 22); }
};

TEST(ParallelSweeps, PoolSizeBitIdentity) {
  // Chunk boundaries are fixed in group space and reductions sum per-chunk
  // partials in chunk order, so amplitudes, probabilities, and projections
  // must be BIT-identical for any pool size — compared here against the
  // serial run at n = 18 (two or more fixed chunks per sweep).
  ParallelConfigGuard guard;
  Rng rng(31);
  const int n = 18;
  const Vector amps = random_statevector(Index{1} << n, rng);
  const Circuit c = kernel_mix_circuit(n, 24, rng);

  const auto run_with = [&](ThreadPool* pool, int threshold) {
    Statevector::set_parallel_config(pool, threshold);
    Statevector sv(n, amps);
    for (const Operation& op : c.ops()) {
      sv.apply(op.matrix, op.qubits, op.gclass);
    }
    const Real p = sv.prob_one(3);
    sv.project(3, p >= 0.5 ? 1 : 0);
    return std::make_pair(sv.amplitudes(), p);
  };

  // Serial reference: the default threshold (22) keeps an 18-qubit state
  // inline even if a pool is configured.
  const auto ref = run_with(nullptr, 22);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(workers);
    const auto got = run_with(&pool, n);
    EXPECT_EQ(got.second, ref.second) << "prob, pool size " << workers;
    ASSERT_EQ(got.first.size(), ref.first.size());
    for (std::size_t i = 0; i < got.first.size(); ++i) {
      ASSERT_EQ(got.first[i], ref.first[i]) << "pool size " << workers << " amp " << i;
    }
  }
}

}  // namespace
}  // namespace qcut
