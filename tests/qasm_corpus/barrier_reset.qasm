// Barriers (dropped on import) and mid-circuit reset with qubit reuse.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[2];
h q[0];
cx q[0],q[1];
barrier q;
measure q[1] -> c[0];
reset q[1];
barrier q[0],q[2];
h q[1];
cx q[1],q[2];
reset q;
x q[0];
measure q[0] -> c[1];
