// Hardware-efficient VQE ansatz: ry rotation layer, linear cx entangler,
// second rotation layer. Angles are pi fractions a classical optimizer
// might emit.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
ry(pi/8) q[0];
ry(3*pi/8) q[1];
ry(-pi/4) q[2];
ry(7*pi/16) q[3];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
ry(pi/3) q[0];
ry(-3*pi/5) q[1];
ry(2*pi/7) q[2];
ry(pi/9) q[3];
