// 1-bit full adder from an explicitly defined Toffoli (qelib1's ccx body) —
// a long macro over the t/tdg/h/cx builtins.
OPENQASM 2.0;
include "qelib1.inc";
gate ccx a,b,c {
  h c;
  cx b,c;
  tdg c;
  cx a,c;
  t c;
  cx b,c;
  tdg c;
  cx a,c;
  t b;
  t c;
  h c;
  cx a,b;
  t a;
  tdg b;
  cx a,b;
}
qreg q[4];
creg c[2];
x q[0];
x q[1];
ccx q[0],q[1],q[3];
cx q[0],q[1];
ccx q[1],q[2],q[3];
cx q[1],q[2];
cx q[0],q[1];
measure q[2] -> c[0];
measure q[3] -> c[1];
