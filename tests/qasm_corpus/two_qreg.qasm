// Two quantum and two classical registers: flat-index mapping follows
// declaration order (a -> wires 0-1, b -> wires 2-4).
OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[3];
creg m[2];
creg n[3];
h a[0];
cx a[0],a[1];
h b;
cx a[1],b[0];
cz b[1],b[2];
measure a -> m;
measure b -> n;
