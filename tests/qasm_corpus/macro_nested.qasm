// Macros calling earlier macros, with parameter expressions flowing through
// two levels of substitution.
OPENQASM 2.0;
include "qelib1.inc";
gate rot(t) a {
  rz(t/2) a;
  ry(t) a;
  rz(-t/2) a;
}
gate entangle(t) a,b {
  rot(t) a;
  rot(2*t) b;
  cx a,b;
  rot(-t/3) b;
}
qreg q[3];
entangle(pi/5) q[0],q[1];
entangle(3*pi/7) q[1],q[2];
rot(pi/2) q[0];
