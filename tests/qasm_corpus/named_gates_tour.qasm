// Every supported named gate at least once, including the U/CX primitive
// spellings and the dropped `id`.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
x q[1];
y q[2];
z q[0];
s q[1];
sdg q[2];
t q[0];
tdg q[1];
id q[2];
rx(pi/7) q[0];
ry(pi/11) q[1];
rz(pi/13) q[2];
u1(pi/3) q[0];
u2(pi/5,-pi/5) q[1];
u3(pi/2,pi/4,pi/8) q[2];
U(0.1,0.2,0.3) q[0];
cx q[0],q[1];
CX q[1],q[2];
cz q[0],q[2];
swap q[1],q[2];
