// Teleportation of an arbitrary rx/rz-prepared state, conditional
// corrections on size-1 registers, plus a final verification measurement.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg m0[1];
creg m1[1];
creg out[1];
rx(0.3) q[0];
rz(5*pi/7) q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> m0[0];
measure q[1] -> m1[0];
if (m1 == 1) x q[2];
if (m0 == 1) z q[2];
measure q[2] -> out[0];
