// Comment and whitespace stress: the token stream must be identical to the
// compact spelling of the same program.
OPENQASM 2.0; // trailing comment after the header
include "qelib1.inc";
// a register
qreg q[2]; creg c[2];

   h   q[0]   ;   // indented, padded
cx // comment splitting an operation across lines
  q[0],
  q[1];
rz( pi / 2 ) q[ 1 ];
measure q[0]->c[0];
measure q [ 1 ] -> c [ 1 ] ;
