// Parameterless macro applied at several sites.
OPENQASM 2.0;
include "qelib1.inc";
gate bell a,b {
  h a;
  cx a,b;
}
qreg q[6];
bell q[0],q[1];
bell q[2],q[3];
bell q[4],q[5];
cz q[1],q[2];
cz q[3],q[4];
