// 3-qubit QFT. qelib1's controlled-phase is not built in, so the file
// defines it the way qelib1 does — exercising parameterized gate macros.
OPENQASM 2.0;
include "qelib1.inc";
gate cu1(lambda) a,b {
  u1(lambda/2) a;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
  u1(lambda/2) b;
}
qreg q[3];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
h q[2];
swap q[0],q[2];
