// Classically controlled two-qubit gates: the conditional path through the
// named-gate (not u3) exporter branch.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg t[1];
h q[0];
measure q[0] -> t[0];
if (t == 1) cx q[1],q[2];
if (t == 1) cz q[2],q[3];
if (t == 1) swap q[1],q[3];
if (t == 1) h q[1];
cx q[2],q[3];
