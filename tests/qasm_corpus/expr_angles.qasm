// Constant-expression torture: precedence, parentheses, unary minus,
// power, and the qasm builtin functions.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rx(pi/2) q[0];
ry(3*pi/4) q[1];
rz(-pi/8+pi/16) q[0];
rx(2*(pi-1)/3) q[1];
ry(pi^2/10) q[0];
rz(sin(pi/6)) q[1];
rx(cos(0)) q[0];
ry(sqrt(2)/2) q[1];
rz(ln(2.718281828459045)) q[0];
rx(exp(0.5)) q[1];
ry(tan(pi/8)) q[0];
rz(-(pi/3)) q[1];
rx(1/2+1/4+1/8) q[0];
cx q[0],q[1];
