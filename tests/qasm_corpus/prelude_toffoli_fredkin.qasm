// Reversible majority-vote-and-swap using the importer's PREDEFINED qelib1
// composites: no in-file `gate ccx` / `gate cswap` macro bodies needed
// (contrast with ccx_adder.qasm, which carries its own Toffoli definition).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[2];
x q[0];
h q[1];
ccx q[0],q[1],q[2];
cswap q[2],q[0],q[3];
ccx q[1],q[3],q[2];
cx q[2],q[1];
measure q[2] -> c[0];
measure q[3] -> c[1];
