// 5-qubit QFT with final broadcast measurement, as benchmark suites emit it.
OPENQASM 2.0;
include "qelib1.inc";
gate cu1(lambda) a,b {
  u1(lambda/2) a;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
  u1(lambda/2) b;
}
qreg q[5];
creg c[5];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
cu1(pi/16) q[4],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
cu1(pi/8) q[4],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
cu1(pi/4) q[4],q[2];
h q[3];
cu1(pi/2) q[4],q[3];
h q[4];
swap q[0],q[4];
swap q[1],q[3];
measure q -> c;
