// W state on 3 qubits via literal-angle ry cascades and controlled mixing
// (the standard F-gate construction, cx-conjugated).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
ry(1.9106332362490186) q[0];
cz q[0],q[1];
ry(-0.78539816339744828) q[1];
cz q[0],q[1];
ry(0.78539816339744828) q[1];
cx q[1],q[2];
cx q[0],q[1];
x q[0];
