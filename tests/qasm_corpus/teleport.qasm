// Textbook teleportation with classically controlled corrections —
// one size-1 creg per correction bit, exactly the form `to_qasm` emits.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
h q[0];
t q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c0[0];
measure q[1] -> c1[0];
if (c1 == 1) x q[2];
if (c0 == 1) z q[2];
