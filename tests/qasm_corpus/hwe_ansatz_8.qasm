// 8-qubit hardware-efficient ansatz defined through a layer macro — the
// macro's body mixes parameterized and fixed gates.
OPENQASM 2.0;
include "qelib1.inc";
gate layer(a,b) x0,x1 {
  ry(a) x0;
  ry(b) x1;
  cx x0,x1;
}
qreg q[8];
layer(pi/4,pi/8) q[0],q[1];
layer(pi/16,3*pi/16) q[2],q[3];
layer(-pi/4,-pi/8) q[4],q[5];
layer(pi/2,pi/3) q[6],q[7];
layer(0.1,0.2) q[1],q[2];
layer(0.3,0.4) q[3],q[4];
layer(0.5,0.6) q[5],q[6];
